file(REMOVE_RECURSE
  "CMakeFiles/test_phy_zigbee.dir/test_phy_zigbee.cpp.o"
  "CMakeFiles/test_phy_zigbee.dir/test_phy_zigbee.cpp.o.d"
  "test_phy_zigbee"
  "test_phy_zigbee.pdb"
  "test_phy_zigbee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_zigbee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
