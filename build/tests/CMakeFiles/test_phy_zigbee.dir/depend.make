# Empty dependencies file for test_phy_zigbee.
# This may be replaced when dependencies are built.
