file(REMOVE_RECURSE
  "CMakeFiles/test_core_env.dir/test_core_env.cpp.o"
  "CMakeFiles/test_core_env.dir/test_core_env.cpp.o.d"
  "test_core_env"
  "test_core_env.pdb"
  "test_core_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
