# Empty dependencies file for test_core_env.
# This may be replaced when dependencies are built.
