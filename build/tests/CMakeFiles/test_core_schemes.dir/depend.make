# Empty dependencies file for test_core_schemes.
# This may be replaced when dependencies are built.
