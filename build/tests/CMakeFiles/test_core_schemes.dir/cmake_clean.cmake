file(REMOVE_RECURSE
  "CMakeFiles/test_core_schemes.dir/test_core_schemes.cpp.o"
  "CMakeFiles/test_core_schemes.dir/test_core_schemes.cpp.o.d"
  "test_core_schemes"
  "test_core_schemes.pdb"
  "test_core_schemes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
