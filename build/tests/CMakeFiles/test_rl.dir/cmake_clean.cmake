file(REMOVE_RECURSE
  "CMakeFiles/test_rl.dir/test_rl.cpp.o"
  "CMakeFiles/test_rl.dir/test_rl.cpp.o.d"
  "test_rl"
  "test_rl.pdb"
  "test_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
