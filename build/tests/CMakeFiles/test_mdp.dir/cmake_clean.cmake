file(REMOVE_RECURSE
  "CMakeFiles/test_mdp.dir/test_mdp.cpp.o"
  "CMakeFiles/test_mdp.dir/test_mdp.cpp.o.d"
  "test_mdp"
  "test_mdp.pdb"
  "test_mdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
