# Empty compiler generated dependencies file for test_mdp.
# This may be replaced when dependencies are built.
