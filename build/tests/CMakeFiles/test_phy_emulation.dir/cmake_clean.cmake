file(REMOVE_RECURSE
  "CMakeFiles/test_phy_emulation.dir/test_phy_emulation.cpp.o"
  "CMakeFiles/test_phy_emulation.dir/test_phy_emulation.cpp.o.d"
  "test_phy_emulation"
  "test_phy_emulation.pdb"
  "test_phy_emulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
