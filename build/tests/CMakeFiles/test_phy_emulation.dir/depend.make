# Empty dependencies file for test_phy_emulation.
# This may be replaced when dependencies are built.
