# Empty dependencies file for test_phy_dsp.
# This may be replaced when dependencies are built.
