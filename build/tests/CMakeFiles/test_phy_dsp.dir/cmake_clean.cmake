file(REMOVE_RECURSE
  "CMakeFiles/test_phy_dsp.dir/test_phy_dsp.cpp.o"
  "CMakeFiles/test_phy_dsp.dir/test_phy_dsp.cpp.o.d"
  "test_phy_dsp"
  "test_phy_dsp.pdb"
  "test_phy_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
