# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_phy_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_phy_zigbee[1]_include.cmake")
include("/root/repo/build/tests/test_phy_emulation[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_mdp[1]_include.cmake")
include("/root/repo/build/tests/test_rl[1]_include.cmake")
include("/root/repo/build/tests/test_jammer[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_core_env[1]_include.cmake")
include("/root/repo/build/tests/test_core_schemes[1]_include.cmake")
include("/root/repo/build/tests/test_field[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions2[1]_include.cmake")
