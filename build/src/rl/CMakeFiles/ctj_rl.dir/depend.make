# Empty dependencies file for ctj_rl.
# This may be replaced when dependencies are built.
