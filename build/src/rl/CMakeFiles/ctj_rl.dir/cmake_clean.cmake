file(REMOVE_RECURSE
  "CMakeFiles/ctj_rl.dir/dqn.cpp.o"
  "CMakeFiles/ctj_rl.dir/dqn.cpp.o.d"
  "CMakeFiles/ctj_rl.dir/matrix.cpp.o"
  "CMakeFiles/ctj_rl.dir/matrix.cpp.o.d"
  "CMakeFiles/ctj_rl.dir/nn.cpp.o"
  "CMakeFiles/ctj_rl.dir/nn.cpp.o.d"
  "CMakeFiles/ctj_rl.dir/qlearning.cpp.o"
  "CMakeFiles/ctj_rl.dir/qlearning.cpp.o.d"
  "CMakeFiles/ctj_rl.dir/replay.cpp.o"
  "CMakeFiles/ctj_rl.dir/replay.cpp.o.d"
  "libctj_rl.a"
  "libctj_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
