file(REMOVE_RECURSE
  "libctj_rl.a"
)
