file(REMOVE_RECURSE
  "CMakeFiles/ctj_net.dir/mac.cpp.o"
  "CMakeFiles/ctj_net.dir/mac.cpp.o.d"
  "CMakeFiles/ctj_net.dir/medium.cpp.o"
  "CMakeFiles/ctj_net.dir/medium.cpp.o.d"
  "CMakeFiles/ctj_net.dir/node.cpp.o"
  "CMakeFiles/ctj_net.dir/node.cpp.o.d"
  "CMakeFiles/ctj_net.dir/star_network.cpp.o"
  "CMakeFiles/ctj_net.dir/star_network.cpp.o.d"
  "CMakeFiles/ctj_net.dir/timing.cpp.o"
  "CMakeFiles/ctj_net.dir/timing.cpp.o.d"
  "libctj_net.a"
  "libctj_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
