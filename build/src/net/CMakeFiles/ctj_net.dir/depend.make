# Empty dependencies file for ctj_net.
# This may be replaced when dependencies are built.
