file(REMOVE_RECURSE
  "libctj_net.a"
)
