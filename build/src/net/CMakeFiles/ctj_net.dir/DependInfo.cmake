
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/mac.cpp" "src/net/CMakeFiles/ctj_net.dir/mac.cpp.o" "gcc" "src/net/CMakeFiles/ctj_net.dir/mac.cpp.o.d"
  "/root/repo/src/net/medium.cpp" "src/net/CMakeFiles/ctj_net.dir/medium.cpp.o" "gcc" "src/net/CMakeFiles/ctj_net.dir/medium.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/ctj_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/ctj_net.dir/node.cpp.o.d"
  "/root/repo/src/net/star_network.cpp" "src/net/CMakeFiles/ctj_net.dir/star_network.cpp.o" "gcc" "src/net/CMakeFiles/ctj_net.dir/star_network.cpp.o.d"
  "/root/repo/src/net/timing.cpp" "src/net/CMakeFiles/ctj_net.dir/timing.cpp.o" "gcc" "src/net/CMakeFiles/ctj_net.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ctj_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ctj_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
