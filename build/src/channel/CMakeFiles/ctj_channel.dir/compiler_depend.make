# Empty compiler generated dependencies file for ctj_channel.
# This may be replaced when dependencies are built.
