
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/link.cpp" "src/channel/CMakeFiles/ctj_channel.dir/link.cpp.o" "gcc" "src/channel/CMakeFiles/ctj_channel.dir/link.cpp.o.d"
  "/root/repo/src/channel/pathloss.cpp" "src/channel/CMakeFiles/ctj_channel.dir/pathloss.cpp.o" "gcc" "src/channel/CMakeFiles/ctj_channel.dir/pathloss.cpp.o.d"
  "/root/repo/src/channel/spectrum.cpp" "src/channel/CMakeFiles/ctj_channel.dir/spectrum.cpp.o" "gcc" "src/channel/CMakeFiles/ctj_channel.dir/spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
