file(REMOVE_RECURSE
  "CMakeFiles/ctj_channel.dir/link.cpp.o"
  "CMakeFiles/ctj_channel.dir/link.cpp.o.d"
  "CMakeFiles/ctj_channel.dir/pathloss.cpp.o"
  "CMakeFiles/ctj_channel.dir/pathloss.cpp.o.d"
  "CMakeFiles/ctj_channel.dir/spectrum.cpp.o"
  "CMakeFiles/ctj_channel.dir/spectrum.cpp.o.d"
  "libctj_channel.a"
  "libctj_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
