file(REMOVE_RECURSE
  "libctj_channel.a"
)
