src/common/CMakeFiles/ctj_common.dir/modes.cpp.o: \
 /root/repo/src/common/modes.cpp /usr/include/stdc-predef.h \
 /root/repo/src/common/modes.hpp
