file(REMOVE_RECURSE
  "CMakeFiles/ctj_common.dir/logging.cpp.o"
  "CMakeFiles/ctj_common.dir/logging.cpp.o.d"
  "CMakeFiles/ctj_common.dir/math_util.cpp.o"
  "CMakeFiles/ctj_common.dir/math_util.cpp.o.d"
  "CMakeFiles/ctj_common.dir/modes.cpp.o"
  "CMakeFiles/ctj_common.dir/modes.cpp.o.d"
  "CMakeFiles/ctj_common.dir/rng.cpp.o"
  "CMakeFiles/ctj_common.dir/rng.cpp.o.d"
  "CMakeFiles/ctj_common.dir/stats.cpp.o"
  "CMakeFiles/ctj_common.dir/stats.cpp.o.d"
  "CMakeFiles/ctj_common.dir/table.cpp.o"
  "CMakeFiles/ctj_common.dir/table.cpp.o.d"
  "libctj_common.a"
  "libctj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
