file(REMOVE_RECURSE
  "libctj_common.a"
)
