# Empty compiler generated dependencies file for ctj_common.
# This may be replaced when dependencies are built.
