
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdp/analysis.cpp" "src/mdp/CMakeFiles/ctj_mdp.dir/analysis.cpp.o" "gcc" "src/mdp/CMakeFiles/ctj_mdp.dir/analysis.cpp.o.d"
  "/root/repo/src/mdp/antijam_mdp.cpp" "src/mdp/CMakeFiles/ctj_mdp.dir/antijam_mdp.cpp.o" "gcc" "src/mdp/CMakeFiles/ctj_mdp.dir/antijam_mdp.cpp.o.d"
  "/root/repo/src/mdp/mdp.cpp" "src/mdp/CMakeFiles/ctj_mdp.dir/mdp.cpp.o" "gcc" "src/mdp/CMakeFiles/ctj_mdp.dir/mdp.cpp.o.d"
  "/root/repo/src/mdp/value_iteration.cpp" "src/mdp/CMakeFiles/ctj_mdp.dir/value_iteration.cpp.o" "gcc" "src/mdp/CMakeFiles/ctj_mdp.dir/value_iteration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
