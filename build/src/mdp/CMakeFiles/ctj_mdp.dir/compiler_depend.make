# Empty compiler generated dependencies file for ctj_mdp.
# This may be replaced when dependencies are built.
