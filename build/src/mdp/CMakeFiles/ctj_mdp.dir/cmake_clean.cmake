file(REMOVE_RECURSE
  "CMakeFiles/ctj_mdp.dir/analysis.cpp.o"
  "CMakeFiles/ctj_mdp.dir/analysis.cpp.o.d"
  "CMakeFiles/ctj_mdp.dir/antijam_mdp.cpp.o"
  "CMakeFiles/ctj_mdp.dir/antijam_mdp.cpp.o.d"
  "CMakeFiles/ctj_mdp.dir/mdp.cpp.o"
  "CMakeFiles/ctj_mdp.dir/mdp.cpp.o.d"
  "CMakeFiles/ctj_mdp.dir/value_iteration.cpp.o"
  "CMakeFiles/ctj_mdp.dir/value_iteration.cpp.o.d"
  "libctj_mdp.a"
  "libctj_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
