file(REMOVE_RECURSE
  "libctj_mdp.a"
)
