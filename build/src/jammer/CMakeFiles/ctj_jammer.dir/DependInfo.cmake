
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jammer/adaptive_jammer.cpp" "src/jammer/CMakeFiles/ctj_jammer.dir/adaptive_jammer.cpp.o" "gcc" "src/jammer/CMakeFiles/ctj_jammer.dir/adaptive_jammer.cpp.o.d"
  "/root/repo/src/jammer/detector.cpp" "src/jammer/CMakeFiles/ctj_jammer.dir/detector.cpp.o" "gcc" "src/jammer/CMakeFiles/ctj_jammer.dir/detector.cpp.o.d"
  "/root/repo/src/jammer/stealth.cpp" "src/jammer/CMakeFiles/ctj_jammer.dir/stealth.cpp.o" "gcc" "src/jammer/CMakeFiles/ctj_jammer.dir/stealth.cpp.o.d"
  "/root/repo/src/jammer/sweep_jammer.cpp" "src/jammer/CMakeFiles/ctj_jammer.dir/sweep_jammer.cpp.o" "gcc" "src/jammer/CMakeFiles/ctj_jammer.dir/sweep_jammer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ctj_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
