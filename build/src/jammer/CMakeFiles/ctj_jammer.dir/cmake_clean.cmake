file(REMOVE_RECURSE
  "CMakeFiles/ctj_jammer.dir/adaptive_jammer.cpp.o"
  "CMakeFiles/ctj_jammer.dir/adaptive_jammer.cpp.o.d"
  "CMakeFiles/ctj_jammer.dir/detector.cpp.o"
  "CMakeFiles/ctj_jammer.dir/detector.cpp.o.d"
  "CMakeFiles/ctj_jammer.dir/stealth.cpp.o"
  "CMakeFiles/ctj_jammer.dir/stealth.cpp.o.d"
  "CMakeFiles/ctj_jammer.dir/sweep_jammer.cpp.o"
  "CMakeFiles/ctj_jammer.dir/sweep_jammer.cpp.o.d"
  "libctj_jammer.a"
  "libctj_jammer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_jammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
