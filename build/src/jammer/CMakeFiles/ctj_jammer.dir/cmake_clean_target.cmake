file(REMOVE_RECURSE
  "libctj_jammer.a"
)
