# Empty compiler generated dependencies file for ctj_jammer.
# This may be replaced when dependencies are built.
