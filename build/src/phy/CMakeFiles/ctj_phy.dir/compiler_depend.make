# Empty compiler generated dependencies file for ctj_phy.
# This may be replaced when dependencies are built.
