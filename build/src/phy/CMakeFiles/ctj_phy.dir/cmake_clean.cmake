file(REMOVE_RECURSE
  "CMakeFiles/ctj_phy.dir/bits.cpp.o"
  "CMakeFiles/ctj_phy.dir/bits.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/convolutional.cpp.o"
  "CMakeFiles/ctj_phy.dir/convolutional.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/emulation.cpp.o"
  "CMakeFiles/ctj_phy.dir/emulation.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/fft.cpp.o"
  "CMakeFiles/ctj_phy.dir/fft.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/interleaver.cpp.o"
  "CMakeFiles/ctj_phy.dir/interleaver.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/iq.cpp.o"
  "CMakeFiles/ctj_phy.dir/iq.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/ofdm.cpp.o"
  "CMakeFiles/ctj_phy.dir/ofdm.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/qam.cpp.o"
  "CMakeFiles/ctj_phy.dir/qam.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/scrambler.cpp.o"
  "CMakeFiles/ctj_phy.dir/scrambler.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/wifi_phy.cpp.o"
  "CMakeFiles/ctj_phy.dir/wifi_phy.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/wifi_preamble.cpp.o"
  "CMakeFiles/ctj_phy.dir/wifi_preamble.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/zigbee_packet.cpp.o"
  "CMakeFiles/ctj_phy.dir/zigbee_packet.cpp.o.d"
  "CMakeFiles/ctj_phy.dir/zigbee_phy.cpp.o"
  "CMakeFiles/ctj_phy.dir/zigbee_phy.cpp.o.d"
  "libctj_phy.a"
  "libctj_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
