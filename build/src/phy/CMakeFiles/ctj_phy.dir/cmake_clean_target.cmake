file(REMOVE_RECURSE
  "libctj_phy.a"
)
