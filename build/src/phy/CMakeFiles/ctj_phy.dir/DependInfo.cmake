
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/bits.cpp" "src/phy/CMakeFiles/ctj_phy.dir/bits.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/bits.cpp.o.d"
  "/root/repo/src/phy/convolutional.cpp" "src/phy/CMakeFiles/ctj_phy.dir/convolutional.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/convolutional.cpp.o.d"
  "/root/repo/src/phy/emulation.cpp" "src/phy/CMakeFiles/ctj_phy.dir/emulation.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/emulation.cpp.o.d"
  "/root/repo/src/phy/fft.cpp" "src/phy/CMakeFiles/ctj_phy.dir/fft.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/fft.cpp.o.d"
  "/root/repo/src/phy/interleaver.cpp" "src/phy/CMakeFiles/ctj_phy.dir/interleaver.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/interleaver.cpp.o.d"
  "/root/repo/src/phy/iq.cpp" "src/phy/CMakeFiles/ctj_phy.dir/iq.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/iq.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/phy/CMakeFiles/ctj_phy.dir/ofdm.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy/qam.cpp" "src/phy/CMakeFiles/ctj_phy.dir/qam.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/qam.cpp.o.d"
  "/root/repo/src/phy/scrambler.cpp" "src/phy/CMakeFiles/ctj_phy.dir/scrambler.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/scrambler.cpp.o.d"
  "/root/repo/src/phy/wifi_phy.cpp" "src/phy/CMakeFiles/ctj_phy.dir/wifi_phy.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/wifi_phy.cpp.o.d"
  "/root/repo/src/phy/wifi_preamble.cpp" "src/phy/CMakeFiles/ctj_phy.dir/wifi_preamble.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/wifi_preamble.cpp.o.d"
  "/root/repo/src/phy/zigbee_packet.cpp" "src/phy/CMakeFiles/ctj_phy.dir/zigbee_packet.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/zigbee_packet.cpp.o.d"
  "/root/repo/src/phy/zigbee_phy.cpp" "src/phy/CMakeFiles/ctj_phy.dir/zigbee_phy.cpp.o" "gcc" "src/phy/CMakeFiles/ctj_phy.dir/zigbee_phy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
