# Empty dependencies file for ctj_core.
# This may be replaced when dependencies are built.
