file(REMOVE_RECURSE
  "CMakeFiles/ctj_core.dir/energy.cpp.o"
  "CMakeFiles/ctj_core.dir/energy.cpp.o.d"
  "CMakeFiles/ctj_core.dir/environment.cpp.o"
  "CMakeFiles/ctj_core.dir/environment.cpp.o.d"
  "CMakeFiles/ctj_core.dir/experiment.cpp.o"
  "CMakeFiles/ctj_core.dir/experiment.cpp.o.d"
  "CMakeFiles/ctj_core.dir/field.cpp.o"
  "CMakeFiles/ctj_core.dir/field.cpp.o.d"
  "CMakeFiles/ctj_core.dir/mdp_scheme.cpp.o"
  "CMakeFiles/ctj_core.dir/mdp_scheme.cpp.o.d"
  "CMakeFiles/ctj_core.dir/metrics.cpp.o"
  "CMakeFiles/ctj_core.dir/metrics.cpp.o.d"
  "CMakeFiles/ctj_core.dir/passive_fh.cpp.o"
  "CMakeFiles/ctj_core.dir/passive_fh.cpp.o.d"
  "CMakeFiles/ctj_core.dir/qlearning_scheme.cpp.o"
  "CMakeFiles/ctj_core.dir/qlearning_scheme.cpp.o.d"
  "CMakeFiles/ctj_core.dir/random_fh.cpp.o"
  "CMakeFiles/ctj_core.dir/random_fh.cpp.o.d"
  "CMakeFiles/ctj_core.dir/rl_fh.cpp.o"
  "CMakeFiles/ctj_core.dir/rl_fh.cpp.o.d"
  "CMakeFiles/ctj_core.dir/trainer.cpp.o"
  "CMakeFiles/ctj_core.dir/trainer.cpp.o.d"
  "libctj_core.a"
  "libctj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
