file(REMOVE_RECURSE
  "libctj_core.a"
)
