
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/ctj_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/environment.cpp" "src/core/CMakeFiles/ctj_core.dir/environment.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/environment.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/ctj_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/field.cpp" "src/core/CMakeFiles/ctj_core.dir/field.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/field.cpp.o.d"
  "/root/repo/src/core/mdp_scheme.cpp" "src/core/CMakeFiles/ctj_core.dir/mdp_scheme.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/mdp_scheme.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/ctj_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/passive_fh.cpp" "src/core/CMakeFiles/ctj_core.dir/passive_fh.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/passive_fh.cpp.o.d"
  "/root/repo/src/core/qlearning_scheme.cpp" "src/core/CMakeFiles/ctj_core.dir/qlearning_scheme.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/qlearning_scheme.cpp.o.d"
  "/root/repo/src/core/random_fh.cpp" "src/core/CMakeFiles/ctj_core.dir/random_fh.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/random_fh.cpp.o.d"
  "/root/repo/src/core/rl_fh.cpp" "src/core/CMakeFiles/ctj_core.dir/rl_fh.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/rl_fh.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/ctj_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/ctj_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ctj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/ctj_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/mdp/CMakeFiles/ctj_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/jammer/CMakeFiles/ctj_jammer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ctj_net.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ctj_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ctj_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
