file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_action_success.dir/bench_fig8_action_success.cpp.o"
  "CMakeFiles/bench_fig8_action_success.dir/bench_fig8_action_success.cpp.o.d"
  "bench_fig8_action_success"
  "bench_fig8_action_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_action_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
