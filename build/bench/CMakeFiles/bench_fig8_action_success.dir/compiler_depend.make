# Empty compiler generated dependencies file for bench_fig8_action_success.
# This may be replaced when dependencies are built.
