# Empty compiler generated dependencies file for bench_fig1_emulation.
# This may be replaced when dependencies are built.
