file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_emulation.dir/bench_fig1_emulation.cpp.o"
  "CMakeFiles/bench_fig1_emulation.dir/bench_fig1_emulation.cpp.o.d"
  "bench_fig1_emulation"
  "bench_fig1_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
