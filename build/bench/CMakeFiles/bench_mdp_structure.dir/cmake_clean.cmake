file(REMOVE_RECURSE
  "CMakeFiles/bench_mdp_structure.dir/bench_mdp_structure.cpp.o"
  "CMakeFiles/bench_mdp_structure.dir/bench_mdp_structure.cpp.o.d"
  "bench_mdp_structure"
  "bench_mdp_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdp_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
