# Empty compiler generated dependencies file for bench_mdp_structure.
# This may be replaced when dependencies are built.
