# Empty dependencies file for bench_ablation_dqn.
# This may be replaced when dependencies are built.
