file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dqn.dir/bench_ablation_dqn.cpp.o"
  "CMakeFiles/bench_ablation_dqn.dir/bench_ablation_dqn.cpp.o.d"
  "bench_ablation_dqn"
  "bench_ablation_dqn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dqn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
