file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_goodput.dir/bench_fig10_goodput.cpp.o"
  "CMakeFiles/bench_fig10_goodput.dir/bench_fig10_goodput.cpp.o.d"
  "bench_fig10_goodput"
  "bench_fig10_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
