
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_goodput.cpp" "bench/CMakeFiles/bench_fig10_goodput.dir/bench_fig10_goodput.cpp.o" "gcc" "bench/CMakeFiles/bench_fig10_goodput.dir/bench_fig10_goodput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ctj_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ctj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ctj_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/ctj_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/mdp/CMakeFiles/ctj_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/jammer/CMakeFiles/ctj_jammer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ctj_net.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ctj_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
