# Empty dependencies file for bench_fig2b_jamming_effect.
# This may be replaced when dependencies are built.
