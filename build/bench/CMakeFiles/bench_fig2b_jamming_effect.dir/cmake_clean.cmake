file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_jamming_effect.dir/bench_fig2b_jamming_effect.cpp.o"
  "CMakeFiles/bench_fig2b_jamming_effect.dir/bench_fig2b_jamming_effect.cpp.o.d"
  "bench_fig2b_jamming_effect"
  "bench_fig2b_jamming_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_jamming_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
