file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_metrics.dir/bench_table1_metrics.cpp.o"
  "CMakeFiles/bench_table1_metrics.dir/bench_table1_metrics.cpp.o.d"
  "bench_table1_metrics"
  "bench_table1_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
