# Empty dependencies file for bench_table1_metrics.
# This may be replaced when dependencies are built.
