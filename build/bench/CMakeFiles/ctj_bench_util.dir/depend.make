# Empty dependencies file for ctj_bench_util.
# This may be replaced when dependencies are built.
