file(REMOVE_RECURSE
  "libctj_bench_util.a"
)
