file(REMOVE_RECURSE
  "CMakeFiles/ctj_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ctj_bench_util.dir/bench_util.cpp.o.d"
  "libctj_bench_util.a"
  "libctj_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
