file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_stealth.dir/bench_energy_stealth.cpp.o"
  "CMakeFiles/bench_energy_stealth.dir/bench_energy_stealth.cpp.o.d"
  "bench_energy_stealth"
  "bench_energy_stealth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_stealth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
