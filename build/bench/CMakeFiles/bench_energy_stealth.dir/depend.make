# Empty dependencies file for bench_energy_stealth.
# This may be replaced when dependencies are built.
