# Empty compiler generated dependencies file for bench_fig6_success_rate.
# This may be replaced when dependencies are built.
