file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_success_rate.dir/bench_fig6_success_rate.cpp.o"
  "CMakeFiles/bench_fig6_success_rate.dir/bench_fig6_success_rate.cpp.o.d"
  "bench_fig6_success_rate"
  "bench_fig6_success_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_success_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
