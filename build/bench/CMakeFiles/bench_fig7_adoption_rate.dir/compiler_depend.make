# Empty compiler generated dependencies file for bench_fig7_adoption_rate.
# This may be replaced when dependencies are built.
