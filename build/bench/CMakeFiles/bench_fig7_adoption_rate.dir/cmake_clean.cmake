file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_adoption_rate.dir/bench_fig7_adoption_rate.cpp.o"
  "CMakeFiles/bench_fig7_adoption_rate.dir/bench_fig7_adoption_rate.cpp.o.d"
  "bench_fig7_adoption_rate"
  "bench_fig7_adoption_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_adoption_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
