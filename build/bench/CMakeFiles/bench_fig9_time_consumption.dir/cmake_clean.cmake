file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_time_consumption.dir/bench_fig9_time_consumption.cpp.o"
  "CMakeFiles/bench_fig9_time_consumption.dir/bench_fig9_time_consumption.cpp.o.d"
  "bench_fig9_time_consumption"
  "bench_fig9_time_consumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_time_consumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
