# Empty compiler generated dependencies file for bench_fig9_time_consumption.
# This may be replaced when dependencies are built.
