# Empty compiler generated dependencies file for ctj_cli.
# This may be replaced when dependencies are built.
