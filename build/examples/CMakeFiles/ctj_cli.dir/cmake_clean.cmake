file(REMOVE_RECURSE
  "CMakeFiles/ctj_cli.dir/ctj_cli.cpp.o"
  "CMakeFiles/ctj_cli.dir/ctj_cli.cpp.o.d"
  "ctj_cli"
  "ctj_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctj_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
