file(REMOVE_RECURSE
  "CMakeFiles/adaptive_jammer_duel.dir/adaptive_jammer_duel.cpp.o"
  "CMakeFiles/adaptive_jammer_duel.dir/adaptive_jammer_duel.cpp.o.d"
  "adaptive_jammer_duel"
  "adaptive_jammer_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_jammer_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
