# Empty compiler generated dependencies file for adaptive_jammer_duel.
# This may be replaced when dependencies are built.
