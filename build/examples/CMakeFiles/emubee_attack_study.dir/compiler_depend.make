# Empty compiler generated dependencies file for emubee_attack_study.
# This may be replaced when dependencies are built.
