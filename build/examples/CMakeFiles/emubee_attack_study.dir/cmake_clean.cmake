file(REMOVE_RECURSE
  "CMakeFiles/emubee_attack_study.dir/emubee_attack_study.cpp.o"
  "CMakeFiles/emubee_attack_study.dir/emubee_attack_study.cpp.o.d"
  "emubee_attack_study"
  "emubee_attack_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emubee_attack_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
