file(REMOVE_RECURSE
  "CMakeFiles/warehouse.dir/warehouse.cpp.o"
  "CMakeFiles/warehouse.dir/warehouse.cpp.o.d"
  "warehouse"
  "warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
