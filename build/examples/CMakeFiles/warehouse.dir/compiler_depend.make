# Empty compiler generated dependencies file for warehouse.
# This may be replaced when dependencies are built.
