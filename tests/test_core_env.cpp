// Tests for the slot-level competition environment: its sampled transition
// frequencies must match the MDP kernel of Eqs. (6)–(14), and the Table-I
// metrics accumulator must match hand-computed values.
#include <gtest/gtest.h>

#include <map>

#include "core/environment.hpp"
#include "core/metrics.hpp"

namespace ctj::core {
namespace {

TEST(EnvironmentConfig, DefaultsMatchPaper) {
  const auto c = EnvironmentConfig::defaults();
  EXPECT_EQ(c.num_channels, 16);
  EXPECT_EQ(c.channels_per_sweep, 4);
  EXPECT_EQ(c.sweep_cycle(), 4);
  EXPECT_EQ(c.tx_levels.size(), 10u);
  EXPECT_DOUBLE_EQ(c.loss_jam, 100.0);
  EXPECT_DOUBLE_EQ(c.loss_hop, 50.0);
}

TEST(Environment, InitialState) {
  CompetitionEnvironment env(EnvironmentConfig::defaults());
  EXPECT_EQ(env.current_channel(), 0);
  EXPECT_EQ(env.hidden_kind(), CompetitionEnvironment::HiddenKind::kCounting);
  EXPECT_EQ(env.hidden_n(), 1);
}

TEST(Environment, RewardMatchesEq5) {
  auto config = EnvironmentConfig::defaults();
  config.seed = 42;
  CompetitionEnvironment env(config);
  for (int i = 0; i < 200; ++i) {
    const bool hop = i % 3 == 0;
    const int channel = hop ? (env.current_channel() + 1) % 16
                            : env.current_channel();
    const std::size_t power = static_cast<std::size_t>(i % 10);
    const EnvStep step = env.step(channel, power);
    double expected = -config.tx_levels[power];
    if (hop) expected -= config.loss_hop;
    if (!step.success) expected -= config.loss_jam;
    EXPECT_DOUBLE_EQ(step.reward, expected);
    EXPECT_EQ(step.hopped, hop);
  }
}

TEST(Environment, StayingForeverIsEventuallyJammed) {
  // With max-power jamming and no hops, the sweep finds the victim within
  // one cycle and then jams every slot.
  auto config = EnvironmentConfig::defaults();
  config.mode = JammerPowerMode::kMaxPower;
  CompetitionEnvironment env(config);
  int first_jam = -1;
  for (int slot = 0; slot < 10; ++slot) {
    const EnvStep step = env.step(0, 0);
    if (step.outcome != SlotOutcome::kClear && first_jam < 0) first_jam = slot;
  }
  ASSERT_GE(first_jam, 0);
  EXPECT_LT(first_jam, 4);  // ⌈K/m⌉ = 4 slots max
  // After discovery, staying keeps the victim jammed (Case 5).
  for (int slot = 0; slot < 5; ++slot) {
    EXPECT_NE(env.step(0, 0).outcome, SlotOutcome::kClear);
  }
}

TEST(Environment, HoppingFromJammedStateAlwaysEscapes) {
  // Case 6 / Eq. (14): P(1 | T_J or J, hop) = 1.
  auto config = EnvironmentConfig::defaults();
  config.seed = 7;
  CompetitionEnvironment env(config);
  int escapes = 0, opportunities = 0;
  for (int slot = 0; slot < 5000; ++slot) {
    const bool jammed_now =
        env.hidden_kind() != CompetitionEnvironment::HiddenKind::kCounting;
    if (jammed_now) {
      ++opportunities;
      const int next = (env.current_channel() + 5) % 16;
      const EnvStep step = env.step(next, 0);
      if (step.outcome == SlotOutcome::kClear) ++escapes;
    } else {
      env.step(env.current_channel(), 0);  // stay until jammed
    }
  }
  ASSERT_GT(opportunities, 100);
  EXPECT_EQ(escapes, opportunities);
}

TEST(Environment, MaxPowerModeNeverSurvivesJamming) {
  auto config = EnvironmentConfig::defaults();
  config.mode = JammerPowerMode::kMaxPower;
  config.seed = 9;
  CompetitionEnvironment env(config);
  for (int slot = 0; slot < 2000; ++slot) {
    const EnvStep step = env.step(env.current_channel(), 9);  // max tx power
    EXPECT_NE(step.outcome, SlotOutcome::kJammedSurvived);
    if (step.outcome == SlotOutcome::kJammedFailed) {
      env.step((env.current_channel() + 3) % 16, 9);
    }
  }
}

TEST(Environment, RandomModeSurvivalFrequencyMatchesQ) {
  // In the random-power mode with tx level 15 (index 9), q = 0.5: given the
  // slot was jammed, the victim survives about half the time (Eqs. 7–8).
  auto config = EnvironmentConfig::defaults();
  config.mode = JammerPowerMode::kRandomPower;
  config.seed = 11;
  CompetitionEnvironment env(config);
  int jammed = 0, survived = 0;
  for (int slot = 0; slot < 40000; ++slot) {
    const EnvStep step = env.step(env.current_channel(), 9);
    if (step.outcome != SlotOutcome::kClear) {
      ++jammed;
      if (step.outcome == SlotOutcome::kJammedSurvived) ++survived;
      // Escape so the statistic is not dominated by dwell slots.
      env.step((env.current_channel() + 7) % 16, 9);
    }
  }
  ASSERT_GT(jammed, 2000);
  EXPECT_NEAR(static_cast<double>(survived) / jammed, 0.5, 0.03);
}

TEST(Environment, StayHazardMatchesKernel) {
  // Empirical check of Eq. (6): conditioned on the hidden state n, staying
  // is jammed with probability 1/(4−n).
  auto config = EnvironmentConfig::defaults();
  config.seed = 13;
  CompetitionEnvironment env(config);
  std::map<int, std::pair<int, int>> jams_by_n;  // n → (jammed, total)
  for (int slot = 0; slot < 60000; ++slot) {
    if (env.hidden_kind() == CompetitionEnvironment::HiddenKind::kCounting) {
      const int n = env.hidden_n();
      const EnvStep step = env.step(env.current_channel(), 0);
      auto& [jammed, total] = jams_by_n[n];
      ++total;
      if (step.outcome != SlotOutcome::kClear) ++jammed;
    } else {
      env.step((env.current_channel() + 5) % 16, 0);  // escape the group
    }
  }
  for (int n = 1; n <= 3; ++n) {
    const auto [jammed, total] = jams_by_n[n];
    ASSERT_GT(total, 1000) << "n = " << n;
    EXPECT_NEAR(static_cast<double>(jammed) / total, 1.0 / (4 - n), 0.03)
        << "n = " << n;
  }
}

TEST(Environment, HopRiskMatchesKernel) {
  // Empirical check of Eqs. (9)–(11): hopping from state n is jammed with
  // probability (4−n−1)/((4−1)(4−n)).
  auto config = EnvironmentConfig::defaults();
  config.seed = 17;
  CompetitionEnvironment env(config);
  std::map<int, std::pair<int, int>> jams_by_n;
  for (int slot = 0; slot < 60000; ++slot) {
    if (env.hidden_kind() == CompetitionEnvironment::HiddenKind::kCounting) {
      const int n = env.hidden_n();
      // +5 always lands in a different 4-channel group (a *real* hop).
      const EnvStep step = env.step((env.current_channel() + 5) % 16, 0);
      auto& [jammed, total] = jams_by_n[n];
      ++total;
      if (step.outcome != SlotOutcome::kClear) ++jammed;
    } else {
      env.step((env.current_channel() + 5) % 16, 0);
    }
  }
  for (int n = 1; n <= 3; ++n) {
    const auto [jammed, total] = jams_by_n[n];
    if (total < 500) continue;
    const double expected = (4.0 - n - 1.0) / (3.0 * (4.0 - n));
    EXPECT_NEAR(static_cast<double>(jammed) / total, expected, 0.03)
        << "n = " << n;
  }
}

TEST(Environment, SweepCycleTwoHasOnlyOneCountingState) {
  auto config = EnvironmentConfig::defaults();
  config.num_channels = 8;
  config.channels_per_sweep = 4;  // cycle = 2
  CompetitionEnvironment env(config);
  for (int slot = 0; slot < 200; ++slot) {
    env.step(env.current_channel(), 0);
    if (env.hidden_kind() == CompetitionEnvironment::HiddenKind::kCounting) {
      EXPECT_EQ(env.hidden_n(), 1);
    }
  }
}

TEST(Environment, RejectsInvalidArguments) {
  CompetitionEnvironment env(EnvironmentConfig::defaults());
  EXPECT_THROW(env.step(-1, 0), CheckFailure);
  EXPECT_THROW(env.step(16, 0), CheckFailure);
  EXPECT_THROW(env.step(0, 10), CheckFailure);
}

TEST(Environment, ResetRestoresInitialState) {
  CompetitionEnvironment env(EnvironmentConfig::defaults());
  for (int i = 0; i < 20; ++i) env.step(i % 16, 3);
  env.reset();
  EXPECT_EQ(env.current_channel(), 0);
  EXPECT_EQ(env.hidden_n(), 1);
}

// ------------------------------------------------------------- metrics ----

TEST(Metrics, HandComputedRates) {
  MetricsAccumulator acc;
  // 4 slots: (success, fh, pc): (1,1,0), (0,1,1), (1,0,1), (1,0,0).
  acc.record(true, true, false, -10.0);
  acc.record(false, true, true, -160.0);
  acc.record(true, false, true, -15.0);
  acc.record(true, false, false, -6.0);
  const auto r = acc.report();
  EXPECT_DOUBLE_EQ(r.st, 0.75);
  EXPECT_DOUBLE_EQ(r.ah, 0.5);
  EXPECT_DOUBLE_EQ(r.ap, 0.5);
  EXPECT_DOUBLE_EQ(r.sh, 0.5);   // one of the two FH slots succeeded
  EXPECT_DOUBLE_EQ(r.sp, 0.5);   // one of the two PC slots succeeded
  EXPECT_DOUBLE_EQ(r.mean_reward, (-10.0 - 160.0 - 15.0 - 6.0) / 4.0);
  EXPECT_EQ(r.slots, 4u);
}

TEST(Metrics, EnvStepOverloadDerivesPcFromPowerIndex) {
  MetricsAccumulator acc;
  EnvStep step;
  step.success = true;
  step.hopped = false;
  step.reward = -6.0;
  acc.record(step, 0);  // base power: no PC
  acc.record(step, 3);  // raised power: PC
  const auto r = acc.report();
  EXPECT_DOUBLE_EQ(r.ap, 0.5);
}

TEST(Metrics, EmptyReportIsZero) {
  MetricsAccumulator acc;
  const auto r = acc.report();
  EXPECT_DOUBLE_EQ(r.st, 0.0);
  EXPECT_DOUBLE_EQ(r.sh, 0.0);
  EXPECT_EQ(r.slots, 0u);
}

TEST(Metrics, ResetClears) {
  MetricsAccumulator acc;
  acc.record(true, true, true, -1.0);
  acc.reset();
  EXPECT_EQ(acc.report().slots, 0u);
}

TEST(SlotOutcome, Names) {
  EXPECT_STREQ(to_string(SlotOutcome::kClear), "clear");
  EXPECT_STREQ(to_string(SlotOutcome::kJammedSurvived), "jammed-survived");
  EXPECT_STREQ(to_string(SlotOutcome::kJammedFailed), "jammed-failed");
}

}  // namespace
}  // namespace ctj::core
