// Tier-1 slice of the kernel-conformance harness (fast slot budgets; the
// deep multi-million-slot sweep lives in bench_conformance). Also pins the
// regressions the harness originally caught: the exact-channel-match jammed
// flag in StarNetwork and the sweep jammer's lock-loss refill hazard.
#include <gtest/gtest.h>

#include <optional>

#include "conformance/conformance.hpp"
#include "jammer/sweep_jammer.hpp"
#include "net/star_network.hpp"

namespace ctj {
namespace {

using conformance::KernelCheckOptions;
using conformance::KernelCheckResult;

KernelCheckOptions fast_options(std::uint64_t seed) {
  KernelCheckOptions options;
  options.slots = 150000;
  options.seed = seed;
  return options;
}

void expect_conformant(const KernelCheckResult& result) {
  EXPECT_GT(result.cells_checked, 0u);
  for (const auto& d : result.divergences) ADD_FAILURE() << d.describe();
}

// ------------------------------------------------ environment vs oracle ----

TEST(Conformance, EnvironmentMatchesMdpMaxPower) {
  const auto result = conformance::check_environment(
      core::EnvironmentConfig::defaults(), fast_options(11), "default_max");
  expect_conformant(result);
  // The environment is Markov in its hidden state: every slot is binnable.
  EXPECT_EQ(result.binned, result.slots);
}

TEST(Conformance, EnvironmentMatchesMdpRandomPower) {
  auto config = core::EnvironmentConfig::defaults();
  config.mode = JammerPowerMode::kRandomPower;
  const auto result =
      conformance::check_environment(config, fast_options(12), "default_random");
  expect_conformant(result);
}

TEST(Conformance, EnvironmentMatchesMdpNarrowbandJammer) {
  // m = 1, K = 6: a six-state cycle exercises every counting transition.
  auto config = core::EnvironmentConfig::defaults();
  config.mode = JammerPowerMode::kRandomPower;
  config.num_channels = 6;
  config.channels_per_sweep = 1;
  const auto result =
      conformance::check_environment(config, fast_options(13), "n6_random");
  expect_conformant(result);
}

// ----------------------------------------------- sweep jammer vs oracle ----

TEST(Conformance, SweepJammerKernelMatchesMdp) {
  auto config = jammer::SweepJammerConfig::defaults();
  config.mode = JammerPowerMode::kRandomPower;
  const std::vector<double> tx_levels = {6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  const auto result = conformance::check_sweep_jammer(
      config, tx_levels, /*loss_jam=*/100.0, /*loss_hop=*/50.0,
      fast_options(14), "default_random");
  expect_conformant(result);
  // Alignment tracking excludes some counting slots, never the majority.
  EXPECT_GT(result.binned, result.slots / 2);
}

// ---------------------------------------------------- policy structure ----

TEST(Conformance, PolicyStructureMatchesTheorems) {
  const auto result =
      conformance::check_policy_structure(conformance::StructureCheckOptions::defaults());
  EXPECT_GT(result.points.size(), 0u);
  for (const auto& d : result.divergences) ADD_FAILURE() << d.describe();
}

// ----------------------------------- regression: group-aware jammed flag ----

net::StarNetworkConfig quick_net_config() {
  net::StarNetworkConfig c;
  c.num_peripherals = 4;
  c.slot_duration_s = 1.0;
  c.timing.jitter_fraction = 0.0;
  c.timing.node_loss_probability = 0.0;
  c.seed = 11;
  return c;
}

net::ActiveJamming group_jam(int group_start) {
  net::ActiveJamming jam;
  jam.channel = group_start;
  jam.width = 4;
  jam.type = channel::JammingSignalType::kEmuBee;
  jam.tx_power_dbm = 20.0;
  jam.distance_m = 8.0;
  return jam;
}

TEST(Conformance, StarNetworkJammedFlagIsGroupAware) {
  // A Wi-Fi emission starting at channel 0 covers channels 0..3; a victim on
  // channel 3 is inside the group even though 3 != 0. The old exact-match
  // stats.jammed missed this.
  net::StarNetwork network(quick_net_config());
  net::SlotDecision decision;
  decision.channel = 3;
  decision.tx_power_dbm = -4.0;
  const auto stats = network.run_slot(decision, group_jam(0));
  EXPECT_TRUE(stats.jammed);
  EXPECT_FALSE(stats.success);
}

TEST(Conformance, StarNetworkOutsideJammedGroupIsClean) {
  net::StarNetwork network(quick_net_config());
  net::SlotDecision decision;
  decision.channel = 5;  // group 1, outside the 0..3 emission
  decision.tx_power_dbm = 0.0;
  const auto stats = network.run_slot(decision, group_jam(0));
  EXPECT_FALSE(stats.jammed);
  EXPECT_TRUE(stats.success);
}

// -------------------------------- regression: lock-loss refill semantics ----

// Drive the jammer until it locks onto `channel` (bounded slot count).
void lock_onto(jammer::SweepJammer& jam, int channel) {
  for (int slot = 0; slot < 64 && !jam.locked(); ++slot) jam.step(channel);
  ASSERT_TRUE(jam.locked());
}

TEST(Conformance, SweepJammerEscapeSlotIsSafe) {
  // MDP Case 6: the hop out of T_J/J always succeeds for one slot — the
  // jammer spends that slot discovering the loss.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    jammer::SweepJammer jam(jammer::SweepJammerConfig::defaults(), seed);
    lock_onto(jam, 1);
    const auto report = jam.step(6);  // victim hops to group 1
    EXPECT_FALSE(report.hit);
    EXPECT_FALSE(jam.locked());
  }
}

TEST(Conformance, SweepJammerExcludesVacatedGroupAfterEscape) {
  // After losing the lock the jammer has just ruled out the vacated group, so
  // the refreshed sweep covers the other N−1 groups first. A victim hopping
  // straight back into the vacated group survives that whole partial cycle.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    jammer::SweepJammer jam(jammer::SweepJammerConfig::defaults(), seed);
    lock_onto(jam, 1);
    ASSERT_FALSE(jam.step(6).hit);  // escape slot: lock lost on group 0
    bool found = false;
    for (int slot = 0; slot < 3; ++slot) {
      // Victim back on the vacated group: unreachable for N−1 = 3 slots.
      EXPECT_FALSE(jam.step(1).hit);
    }
    // The next full cycle includes group 0 again: found within N slots.
    for (int slot = 0; slot < 4 && !found; ++slot) found = jam.step(1).hit;
    EXPECT_TRUE(found);
  }
}

TEST(Conformance, SweepJammerPostEscapeHazardIsOneOverNMinusOne) {
  // The first post-escape sweep slot must find a stationary victim with
  // probability 1/(N−1) = 1/3 — the MDP's n = 1 hazard (the pre-fix refill
  // over all N groups gave 1/4).
  const int episodes = 6000;
  int found = 0;
  for (int episode = 0; episode < episodes; ++episode) {
    jammer::SweepJammer jam(jammer::SweepJammerConfig::defaults(),
                            1000 + static_cast<std::uint64_t>(episode));
    lock_onto(jam, 2);
    ASSERT_FALSE(jam.step(6).hit);        // escape slot
    if (jam.step(6).hit) ++found;         // first post-escape sweep slot
  }
  const double hazard = static_cast<double>(found) / episodes;
  EXPECT_NEAR(hazard, 1.0 / 3.0, 0.03);
}

}  // namespace
}  // namespace ctj
