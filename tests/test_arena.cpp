// Self-play arena: the learned jammer's archetype contract (invariants,
// determinism, save/restore, freeze semantics), the extended JammerSpec
// codec, and the SelfPlay driver's kill/resume bit-identity across a
// generation boundary.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arena/learned_jammer.hpp"
#include "arena/self_play.hpp"
#include "common/rng.hpp"
#include "conformance/conformance.hpp"
#include "core/checkpoint.hpp"
#include "core/environment.hpp"
#include "core/rl_fh.hpp"
#include "io/container.hpp"
#include "rl/nn.hpp"

using namespace ctj;
using arena::LearnedJammer;
using arena::LearnedJammerConfig;
using jammer::JammerSpec;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

JammerSpec learned_spec() {
  JammerSpec spec = JammerSpec::defaults("learned");
  // Small network so the per-slot online training stays test-fast.
  spec.learn_hidden = 16;
  spec.learn_history = 4;
  return spec;
}

conformance::KernelCheckOptions smoke_options(std::uint64_t seed,
                                              std::size_t slots) {
  conformance::KernelCheckOptions options;
  options.slots = slots;
  options.seed = seed;
  return options;
}

bool reports_equal(const jammer::JammerSlotReport& a,
                   const jammer::JammerSlotReport& b) {
  return a.hit == b.hit && a.power == b.power &&
         a.jammed_group_start == b.jammed_group_start &&
         a.emitting == b.emitting;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

// ------------------------------------------------------ archetype contract ----

TEST(LearnedJammer, RegistryIntegration) {
  arena::ensure_registered();
  EXPECT_TRUE(jammer::is_registered("learned"));
  const auto jam = jammer::make_jammer(learned_spec(), 7);
  EXPECT_EQ(jam->archetype(), "learned");
  EXPECT_EQ(jam->num_channels(), 16);
  EXPECT_EQ(jam->channels_per_sweep(), 4);
}

TEST(LearnedJammer, InvariantsMaxPowerMode) {
  arena::ensure_registered();
  const auto result = conformance::check_jammer_invariants(
      learned_spec(), smoke_options(31, 4000), "learned");
  for (const auto& d : result.divergences) ADD_FAILURE() << d.describe();
}

TEST(LearnedJammer, InvariantsRandomPowerMode) {
  arena::ensure_registered();
  JammerSpec spec = learned_spec();
  spec.mode = JammerPowerMode::kRandomPower;
  const auto result = conformance::check_jammer_invariants(
      spec, smoke_options(32, 4000), "learned_random");
  for (const auto& d : result.divergences) ADD_FAILURE() << d.describe();
}

TEST(LearnedJammer, SingleGroupGeometryPadsTheActionSet) {
  // K == m in max-power mode leaves one real action; the DQN pads to two
  // and the fold-back keeps every report on the only group.
  arena::ensure_registered();
  JammerSpec spec = learned_spec();
  spec.num_channels = 4;
  spec.channels_per_sweep = 4;
  const auto jam = jammer::make_jammer(spec, 3);
  for (int slot = 0; slot < 200; ++slot) {
    const auto report = jam->step(slot % 4);
    EXPECT_EQ(report.jammed_group_start, 0);
    EXPECT_TRUE(report.hit);
  }
}

TEST(LearnedJammer, SameSeedTwinsAndMidRunRestore) {
  arena::ensure_registered();
  const JammerSpec spec = learned_spec();
  const auto a = jammer::make_jammer(spec, 99);
  const auto b = jammer::make_jammer(spec, 99);
  Rng victim(5);
  int channel = 0;
  std::string saved;
  for (int slot = 0; slot < 600; ++slot) {
    if (slot == 300) {
      io::ByteWriter out;
      a->save_state(out);
      saved = out.take();
    }
    if (victim.bernoulli(0.3)) channel = static_cast<int>(victim.index(16));
    const auto ra = a->step(channel);
    const auto rb = b->step(channel);
    ASSERT_TRUE(reports_equal(ra, rb)) << "twin diverged at slot " << slot;
  }
  // Restore the halfway state into a shell built with a different seed and
  // replay the same victim tail: the stream must match the original's.
  const auto resumed = jammer::make_jammer(spec, 1234);
  {
    io::ByteReader in(saved);
    resumed->load_state(in);
    in.expect_end();
  }
  const auto reference = jammer::make_jammer(spec, 99);
  Rng victim2(5);
  channel = 0;
  for (int slot = 0; slot < 600; ++slot) {
    if (victim2.bernoulli(0.3)) channel = static_cast<int>(victim2.index(16));
    const auto rr = reference->step(channel);
    if (slot < 300) continue;
    const auto rs = resumed->step(channel);
    ASSERT_TRUE(reports_equal(rr, rs)) << "resume diverged at slot " << slot;
  }
}

TEST(LearnedJammer, FrozenPlaysAFixedPolicy) {
  arena::ensure_registered();
  LearnedJammerConfig config = LearnedJammerConfig::defaults();
  config.hidden = 16;
  config.history = 4;
  LearnedJammer jam(config, 11);
  // Warm up live so the policy is mid-training, then freeze.
  for (int slot = 0; slot < 300; ++slot) jam.step(slot % 16);
  jam.set_frozen(true);
  const std::size_t env_steps = jam.agent().steps();
  const std::size_t grad_steps = jam.agent().gradient_steps();
  auto twin = jam.clone();
  for (int slot = 0; slot < 200; ++slot) {
    const auto a = jam.step((slot * 5) % 16);
    const auto b = twin->step((slot * 5) % 16);
    ASSERT_TRUE(reports_equal(a, b));
  }
  // No exploration draws, no replay writes, no gradient steps while frozen.
  EXPECT_EQ(jam.agent().steps(), env_steps);
  EXPECT_EQ(jam.agent().gradient_steps(), grad_steps);
  jam.set_frozen(false);
  for (int slot = 0; slot < 100; ++slot) jam.step(slot % 16);
  EXPECT_GT(jam.agent().steps(), env_steps);
}

TEST(LearnedJammer, LoadRejectsCorruptPayloadUntouched) {
  arena::ensure_registered();
  const JammerSpec spec = learned_spec();
  const auto jam = jammer::make_jammer(spec, 21);
  for (int slot = 0; slot < 150; ++slot) jam->step(slot % 16);
  io::ByteWriter out;
  jam->save_state(out);
  std::string bytes = out.take();
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-container
  {
    io::ByteReader in(bytes);
    EXPECT_THROW(jam->load_state(in), io::IoError);
  }
  // The failed load left the jammer unchanged: it still matches its clone.
  const auto twin = jam->clone();
  for (int slot = 0; slot < 100; ++slot) {
    ASSERT_TRUE(reports_equal(jam->step(slot % 16), twin->step(slot % 16)));
  }
}

// ------------------------------------------------------------- spec codec ----

TEST(JammerSpecCodec, LearnedFieldsRoundTrip) {
  JammerSpec spec = JammerSpec::defaults("learned");
  spec.learn_history = 6;
  spec.learn_hidden = 40;
  spec.learn_rate = 5e-4;
  spec.learn_epsilon_decay = 777;
  spec.learn_emit_cost = 0.125;
  io::ByteWriter out;
  spec.encode(out);
  const std::string bytes = out.take();
  io::ByteReader in(bytes);
  const JammerSpec decoded = JammerSpec::decode(in);
  in.expect_end();
  EXPECT_EQ(decoded, spec);
}

TEST(JammerSpecCodec, NonLearnedLayoutCarriesNoLearnedFields) {
  // The learned tunables are serialized only for the "learned" archetype,
  // so a pre-arena spec keeps its exact byte image and decodes with the
  // learn_* defaults regardless of what the writer had in those fields.
  JammerSpec spec = JammerSpec::defaults("sweep");
  spec.learn_history = 99;
  io::ByteWriter out;
  spec.encode(out);
  const std::string bytes = out.take();
  io::ByteReader in(bytes);
  const JammerSpec decoded = JammerSpec::decode(in);
  in.expect_end();
  EXPECT_EQ(decoded.learn_history, JammerSpec{}.learn_history);
}

TEST(JammerSpecCodec, LearnedDecodeValidatesTunables) {
  JammerSpec spec = JammerSpec::defaults("learned");
  spec.learn_hidden = 0;
  io::ByteWriter out;
  spec.encode(out);
  const std::string bytes = out.take();
  io::ByteReader in(bytes);
  try {
    JammerSpec::decode(in);
    FAIL() << "expected kBadPayload";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kBadPayload);
  }
}

TEST(JammerSpecCodec, JamrcfgMismatchRejectsLearnedDrift) {
  JammerSpec spec = learned_spec();
  io::ContainerWriter out;
  core::write_jammer_config(out, spec);
  const io::ContainerReader in =
      io::ContainerReader::from_bytes(out.to_bytes());
  EXPECT_NO_THROW(core::check_jammer_config(in, spec));
  JammerSpec drifted = spec;
  drifted.learn_hidden += 8;
  try {
    core::check_jammer_config(in, drifted);
    FAIL() << "expected kStateMismatch";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
}

// --------------------------------------------------------- environment mode ----

TEST(LearnedEnvironment, BehaviouralModeSaveRestoreContinues) {
  arena::ensure_registered();
  core::EnvironmentConfig config = core::EnvironmentConfig::defaults();
  config.jammer = learned_spec();
  config.seed = 17;
  core::CompetitionEnvironment env(config);
  for (int slot = 0; slot < 200; ++slot) env.step(slot % 16, slot % 10);

  io::ByteWriter out;
  env.save_state(out);
  const std::string bytes = out.take();
  core::CompetitionEnvironment restored(config);
  io::ByteReader in(bytes);
  restored.load_state(in);
  in.expect_end();

  for (int slot = 0; slot < 200; ++slot) {
    const auto a = env.step(slot % 16, (slot * 3) % 10);
    const auto b = restored.step(slot % 16, (slot * 3) % 10);
    ASSERT_EQ(a.reward, b.reward) << "diverged at slot " << slot;
    ASSERT_EQ(a.outcome, b.outcome);
  }
}

// ------------------------------------------------------------- self-play ----

namespace {

arena::SelfPlayConfig small_arena(std::uint64_t seed) {
  arena::SelfPlayConfig config = arena::SelfPlayConfig::defaults();
  config.jammer = learned_spec();
  config.defender.history = 2;
  config.defender.hidden = {12, 12};
  config.defender.epsilon_decay_steps = 600;
  config.defender.seed = seed + 7;
  config.generations = 3;
  config.warmup_slots = 400;
  config.jammer_slots = 400;
  config.defender_slots = 400;
  config.eval_slots = 150;
  config.pool_capacity = 4;
  config.seed = seed;
  config.env.seed = seed + 1;
  return config;
}

}  // namespace

TEST(SelfPlay, RunsAndReportsGenerations) {
  arena::SelfPlayConfig config = small_arena(41);
  arena::SelfPlay arena_run(config);
  const arena::SelfPlayResult result = arena_run.run();
  ASSERT_EQ(result.generations.size(), 3u);
  EXPECT_FALSE(result.resumed);
  // Pools: untrained generation 0 plus one entry per generation.
  ASSERT_EQ(result.defender_generations.size(), 4u);
  ASSERT_EQ(result.jammer_generations.size(), 4u);
  EXPECT_EQ(result.defender_generations.front(), 0u);
  EXPECT_EQ(result.jammer_generations.back(), 3u);
  ASSERT_EQ(result.cross_table.size(), 4u);
  for (const auto& row : result.cross_table) ASSERT_EQ(row.size(), 4u);
  EXPECT_GT(result.slots_total, 3 * (400 + 400));
  for (std::size_t g = 0; g < result.generations.size(); ++g) {
    EXPECT_EQ(result.generations[g].generation, g);
    EXPECT_GE(result.generations[g].jammer_hit_rate, 0.0);
    EXPECT_LE(result.generations[g].jammer_hit_rate, 1.0);
  }
}

TEST(SelfPlay, KillResumeIsBitIdentical) {
  const std::string path_a = temp_path("ctj_arena_uninterrupted.ctjs");
  const std::string path_b = temp_path("ctj_arena_resumed.ctjs");
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);

  // Run A: three generations straight through.
  arena::SelfPlayConfig config_a = small_arena(43);
  config_a.checkpoint = core::CheckpointOptions{path_a, 0, true};
  std::vector<arena::GenerationResult> stream_a;
  config_a.on_generation = [&](const arena::GenerationResult& r) {
    stream_a.push_back(r);
  };
  const arena::SelfPlayResult result_a = arena::SelfPlay(config_a).run();

  // Run B: killed after generation 2 (budget exhausted), then resumed with
  // the full budget — the checkpoint must carry everything.
  arena::SelfPlayConfig config_b = small_arena(43);
  config_b.checkpoint = core::CheckpointOptions{path_b, 0, true};
  config_b.generations = 2;
  arena::SelfPlay(config_b).run();
  config_b.generations = 3;
  std::vector<arena::GenerationResult> stream_b;
  config_b.on_generation = [&](const arena::GenerationResult& r) {
    stream_b.push_back(r);
  };
  const arena::SelfPlayResult result_b = arena::SelfPlay(config_b).run();
  EXPECT_TRUE(result_b.resumed);

  // The final checkpoints are byte-for-byte identical...
  const std::string bytes_a = file_bytes(path_a);
  const std::string bytes_b = file_bytes(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b) << "kill/resume drifted from the uninterrupted run";

  // ...and so are the result streams (run B replays generations 1-2 from
  // the stored history) and the head-to-head cross table.
  ASSERT_EQ(result_b.generations.size(), result_a.generations.size());
  for (std::size_t g = 0; g < result_a.generations.size(); ++g) {
    EXPECT_EQ(result_a.generations[g].exploitability,
              result_b.generations[g].exploitability);
    EXPECT_EQ(result_a.generations[g].jammer_hit_rate,
              result_b.generations[g].jammer_hit_rate);
    EXPECT_EQ(result_a.generations[g].defender_train_reward,
              result_b.generations[g].defender_train_reward);
  }
  EXPECT_EQ(result_a.cross_table, result_b.cross_table);
  EXPECT_EQ(result_a.slots_total, result_b.slots_total);
  // Run B's live third generation matches run A's slot for slot.
  ASSERT_EQ(stream_b.size(), 1u);
  EXPECT_EQ(stream_a.back().exploitability, stream_b.back().exploitability);

  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
}

TEST(SelfPlay, ResumeRejectsConfigDrift) {
  const std::string path = temp_path("ctj_arena_drift.ctjs");
  std::filesystem::remove(path);
  arena::SelfPlayConfig config = small_arena(47);
  config.generations = 1;
  config.checkpoint = core::CheckpointOptions{path, 0, true};
  arena::SelfPlay(config).run();

  {
    arena::SelfPlayConfig drifted = config;
    drifted.jammer_slots += 100;
    try {
      arena::SelfPlay(drifted).run();
      FAIL() << "expected kStateMismatch for jammer_slots drift";
    } catch (const io::IoError& e) {
      EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
    }
  }
  {
    // The learned spec travels through JAMRCFG: resuming against a jammer
    // with a different brain is a state mismatch, not a silent swap.
    arena::SelfPlayConfig drifted = config;
    drifted.jammer.learn_hidden += 8;
    try {
      arena::SelfPlay(drifted).run();
      FAIL() << "expected kStateMismatch for learned spec drift";
    } catch (const io::IoError& e) {
      EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
    }
  }
  std::filesystem::remove(path);
}

// ------------------------------------------- target-network options (rl) ----

TEST(TargetNetwork, LerpParametersMovesToward) {
  Rng rng_a(1);
  Rng rng_b(2);
  rl::Mlp a({4, 8, 3}, rng_a);
  rl::Mlp b({4, 8, 3}, rng_b);
  rl::Mlp frozen = a;
  a.lerp_parameters_from(b, 0.0);
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    EXPECT_EQ(a.layer(l).weights().data()[0], frozen.layer(l).weights().data()[0]);
  }
  rl::Mlp full = a;
  full.lerp_parameters_from(b, 1.0);
  std::vector<double> want(b.param_count()), got(full.param_count());
  b.copy_flat_to(want);
  full.copy_flat_to(got);
  EXPECT_EQ(want, got);
  rl::Mlp half = a;
  half.lerp_parameters_from(b, 0.5);
  std::vector<double> flat_a(a.param_count()), flat_b(b.param_count()),
      flat_h(half.param_count());
  a.copy_flat_to(flat_a);
  b.copy_flat_to(flat_b);
  half.copy_flat_to(flat_h);
  for (std::size_t i = 0; i < flat_h.size(); ++i) {
    EXPECT_DOUBLE_EQ(flat_h[i], flat_a[i] + 0.5 * (flat_b[i] - flat_a[i]));
  }
}

TEST(TargetNetwork, SoftTauTrainsAndCheckpointPinsIt) {
  core::DqnScheme::Config config;
  config.history = 2;
  config.hidden = {10, 10};
  config.target_tau = 0.01;
  config.target_sync_interval = 250;
  config.seed = 91;
  core::DqnScheme scheme(config);
  core::EnvironmentConfig env_config = core::EnvironmentConfig::defaults();
  env_config.seed = 92;
  core::CompetitionEnvironment env(env_config);
  core::TrainerConfig trainer;
  trainer.max_slots = 400;
  trainer.reward_window = 100;
  core::train(scheme, env, trainer);
  EXPECT_GT(scheme.agent().gradient_steps(), 0u);

  io::ContainerWriter out;
  scheme.save_state(out);
  const io::ContainerReader in =
      io::ContainerReader::from_bytes(out.to_bytes());
  core::DqnScheme same(config);
  EXPECT_NO_THROW(same.load_state(in));

  core::DqnScheme::Config other = config;
  other.target_tau = 0.0;
  core::DqnScheme hard(other);
  try {
    hard.load_state(in);
    FAIL() << "expected kStateMismatch for target_tau drift";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
}
