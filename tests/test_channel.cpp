// Tests for the 2.4 GHz channel substrate: spectrum layout, path loss and
// the SINR→BER→PER link model with cross-technology jammer suppression.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/link.hpp"
#include "channel/pathloss.hpp"
#include "channel/spectrum.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace ctj::channel {
namespace {

// ------------------------------------------------------------- spectrum ----

TEST(Spectrum, ZigbeeChannelCenters) {
  EXPECT_DOUBLE_EQ(zigbee_center_hz(0), 2405e6);   // channel 11
  EXPECT_DOUBLE_EQ(zigbee_center_hz(15), 2480e6);  // channel 26
  EXPECT_EQ(zigbee_channel_number(0), 11);
  EXPECT_EQ(zigbee_channel_number(15), 26);
}

TEST(Spectrum, WifiChannelCenters) {
  EXPECT_DOUBLE_EQ(wifi_center_hz(1), 2412e6);
  EXPECT_DOUBLE_EQ(wifi_center_hz(6), 2437e6);
  EXPECT_DOUBLE_EQ(wifi_center_hz(11), 2462e6);
}

TEST(Spectrum, WifiChannelCoversExactlyFourZigbeeChannels) {
  // The paper's m = 4: one Wi-Fi channel can jam 4 consecutive ZigBee
  // channels at once.
  for (int w = 1; w <= 11; ++w) {
    const auto covered = zigbee_channels_covered(w);
    EXPECT_EQ(covered.size(), 4u) << "wifi channel " << w;
    for (std::size_t i = 1; i < covered.size(); ++i) {
      EXPECT_EQ(covered[i], covered[i - 1] + 1);  // consecutive
    }
  }
}

TEST(Spectrum, KnownOverlapWifi1) {
  // Wi-Fi channel 1 (2402–2422 MHz) fully covers ZigBee 11–14
  // (indices 0–3).
  const auto covered = zigbee_channels_covered(1);
  EXPECT_EQ(covered, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Spectrum, OverlapFractionBounds) {
  for (int z = 0; z < kZigbeeChannelCount; ++z) {
    for (int w = 1; w <= 11; ++w) {
      const double f = overlap_fraction(z, w);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
}

TEST(Spectrum, CoveringChannelIsConsistent) {
  for (int z = 0; z < kZigbeeChannelCount; ++z) {
    const int w = wifi_channel_covering(z);
    if (w > 0) {
      EXPECT_DOUBLE_EQ(overlap_fraction(z, w), 1.0);
    }
  }
  // Every ZigBee channel except the topmost ones is covered by some Wi-Fi
  // channel 1..11 (ZigBee 25/26 sit above Wi-Fi 11's band edge).
  EXPECT_GT(wifi_channel_covering(0), 0);
  EXPECT_GT(wifi_channel_covering(10), 0);
}

TEST(Spectrum, RejectsOutOfRange) {
  EXPECT_THROW(zigbee_center_hz(16), CheckFailure);
  EXPECT_THROW(wifi_center_hz(0), CheckFailure);
  EXPECT_THROW(wifi_center_hz(12), CheckFailure);
}

// ------------------------------------------------------------- path loss ----

TEST(PathLoss, FreeSpaceKnownValue) {
  // FSPL at 1 m, 2.44 GHz ≈ 40.2 dB.
  EXPECT_NEAR(LogDistancePathLoss::free_space_db(1.0, 2.44e9), 40.2, 0.3);
}

TEST(PathLoss, MonotonicInDistance) {
  LogDistancePathLoss pl;
  double prev = pl.mean_loss_db(1.0);
  for (double d = 2.0; d <= 30.0; d += 1.0) {
    const double cur = pl.mean_loss_db(d);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(PathLoss, ExponentControlsSlope) {
  LogDistancePathLoss::Config c2;
  c2.exponent = 2.0;
  LogDistancePathLoss::Config c4;
  c4.exponent = 4.0;
  const LogDistancePathLoss pl2(c2), pl4(c4);
  const double slope2 = pl2.mean_loss_db(10.0) - pl2.mean_loss_db(1.0);
  const double slope4 = pl4.mean_loss_db(10.0) - pl4.mean_loss_db(1.0);
  EXPECT_NEAR(slope2, 20.0, 0.1);  // 10·n per decade
  EXPECT_NEAR(slope4, 40.0, 0.1);
}

TEST(PathLoss, ClampsBelowReference) {
  LogDistancePathLoss pl;
  EXPECT_DOUBLE_EQ(pl.mean_loss_db(0.2), pl.mean_loss_db(1.0));
}

TEST(PathLoss, ShadowingZeroSigmaIsDeterministic) {
  LogDistancePathLoss pl;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(pl.sample_loss_db(5.0, rng), pl.mean_loss_db(5.0));
}

TEST(PathLoss, ShadowingSpread) {
  LogDistancePathLoss::Config c;
  c.shadowing_sigma_db = 4.0;
  const LogDistancePathLoss pl(c);
  Rng rng(2);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(pl.sample_loss_db(5.0, rng));
  EXPECT_NEAR(stats.mean(), pl.mean_loss_db(5.0), 0.2);
  EXPECT_NEAR(stats.stddev(), 4.0, 0.2);
}

TEST(Position, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// ------------------------------------------------------------ link model ----

TEST(Link, DsssProcessingGain) {
  EXPECT_NEAR(dsss_processing_gain_db(), 9.03, 0.05);
}

TEST(Link, SuppressionRanking) {
  // EmuBee suffers almost no suppression; plain Wi-Fi is suppressed by the
  // in-band fraction (10 dB) plus the processing gain (9 dB).
  EXPECT_LT(jammer_suppression_db(JammingSignalType::kEmuBee), 1.0);
  EXPECT_NEAR(jammer_suppression_db(JammingSignalType::kWifi), 19.0, 0.5);
  EXPECT_DOUBLE_EQ(jammer_suppression_db(JammingSignalType::kZigbee), 0.0);
}

TEST(Link, BerMonotonicInSinr) {
  double prev = 0.5;
  for (double sinr_db = -10.0; sinr_db <= 10.0; sinr_db += 0.5) {
    const double ber = zigbee_ber(db_to_ratio(sinr_db));
    EXPECT_LE(ber, prev + 1e-12);
    prev = ber;
  }
}

TEST(Link, BerLimits) {
  EXPECT_NEAR(zigbee_ber(100.0), 0.0, 1e-12);
  EXPECT_GT(zigbee_ber(0.01), 0.2);  // deep in the noise: near coin-flip
}

TEST(Link, PerIncreasesWithPacketSize) {
  const double sinr_db = 1.0;
  EXPECT_LT(zigbee_per(sinr_db, 16), zigbee_per(sinr_db, 128));
}

TEST(Link, SinrWithoutJammerIsSnr) {
  ZigbeeLink link;
  const double rx = -70.0;
  EXPECT_NEAR(link.sinr_db(rx), rx - link.noise_floor_dbm(), 1e-9);
}

TEST(Link, JammerLowersSinr) {
  ZigbeeLink link;
  const double clean = link.sinr_db(-70.0);
  const double jammed =
      link.sinr_db(-70.0, -60.0, JammingSignalType::kEmuBee);
  EXPECT_LT(jammed, clean);
}

TEST(Link, ZeroOverlapMeansNoInterference) {
  ZigbeeLink link;
  EXPECT_NEAR(link.sinr_db(-70.0, -40.0, JammingSignalType::kEmuBee, 0.0),
              link.sinr_db(-70.0), 1e-9);
}

TEST(Link, JammingEffectRankingMatchesPaper) {
  // Fig. 2(b): same jammer position, realistic transmit powers — the EmuBee
  // jammer (Wi-Fi class, 100 mW) jams hardest, a conventional ZigBee jammer
  // (5 dBm) second, a plain Wi-Fi jammer (100 mW but DSSS-suppressed) least.
  ZigbeeLink link;
  const double signal = -60.0;
  const double jam_distance = 10.0;
  auto sinr_for = [&](double tx_dbm, JammingSignalType type) {
    const double jam_rx = link.received_power_dbm(tx_dbm, jam_distance);
    return link.sinr_db(signal, jam_rx, type);
  };
  // Lower SINR == stronger jamming effect (PER is monotone in SINR).
  const double sinr_emubee = sinr_for(20.0, JammingSignalType::kEmuBee);
  const double sinr_zigbee_jam = sinr_for(5.0, JammingSignalType::kZigbee);
  const double sinr_wifi = sinr_for(20.0, JammingSignalType::kWifi);
  EXPECT_LT(sinr_emubee, sinr_zigbee_jam);
  EXPECT_LT(sinr_zigbee_jam, sinr_wifi);
  // And at these operating points the PERs are ordered the same way.
  EXPECT_GE(link.per(sinr_emubee), link.per(sinr_zigbee_jam));
  EXPECT_GE(link.per(sinr_zigbee_jam), link.per(sinr_wifi));
  // At *equal received power*, EmuBee and a native ZigBee signal are within
  // ~1 dB of each other (both bypass the processing gain).
  const double jam_rx = -74.0;
  EXPECT_NEAR(link.sinr_db(signal, jam_rx, JammingSignalType::kEmuBee),
              link.sinr_db(signal, jam_rx, JammingSignalType::kZigbee), 1.0);
}

TEST(Link, PerWithJammerDecreasesWithJammerDistance) {
  // The distance trend of Fig. 2(b): a farther jammer hurts less.
  ZigbeeLink link;
  double prev = 1.1;
  for (double d = 1.0; d <= 15.0; d += 1.0) {
    const double per = link.per_with_jammer(
        /*tx_power_dbm=*/0.0, /*tx_distance_m=*/2.0,
        /*jam_power_dbm=*/20.0, /*jam_distance_m=*/d,
        JammingSignalType::kEmuBee);
    EXPECT_LE(per, prev + 1e-9);
    prev = per;
  }
}

TEST(Link, FullPowerDuel) {
  // A 100 mW EmuBee jammer at 8 m crushes a 1 mW ZigBee link at 3 m, but a
  // +5 dBm (max ZigBee-class) transmitter has a fighting chance against the
  // jammer's low power levels.
  ZigbeeLink link;
  const double per_weak = link.per_with_jammer(0.0, 3.0, 20.0, 8.0,
                                               JammingSignalType::kEmuBee);
  EXPECT_GT(per_weak, 0.9);
  const double per_strong = link.per_with_jammer(5.0, 3.0, 11.0, 8.0,
                                                 JammingSignalType::kEmuBee);
  EXPECT_LT(per_strong, per_weak);
}

TEST(Link, ToStringNames) {
  EXPECT_STREQ(to_string(JammingSignalType::kEmuBee), "EmuBee");
  EXPECT_STREQ(to_string(JammingSignalType::kWifi), "WiFi");
  EXPECT_STREQ(to_string(JammingSignalType::kZigbee), "ZigBee");
}

}  // namespace
}  // namespace ctj::channel
