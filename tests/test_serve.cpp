// Tests for the fleet-scale serve subsystem (src/serve): the MPMC ready
// ring, the JobSpec/JobResult codecs, tenant-runner determinism against the
// standalone trainer, bit-identical evict/revive on a different thread,
// wrong-spec revival rejection, engine determinism across worker counts and
// under forced eviction, and the unix-socket wire protocol end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/mpmc_queue.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "io/container.hpp"
#include "io/crc32.hpp"
#include "io/format.hpp"
#include "serve/engine.hpp"
#include "serve/job.hpp"
#include "serve/tenant.hpp"
#include "serve/wire.hpp"

using namespace ctj;

namespace {

/// Fresh per-test scratch directory (spool files, checkpoints, sockets).
std::string scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ctj_serve_test_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

serve::JobSpec small_spec(const std::string& scheme, std::uint64_t seed) {
  serve::JobSpec spec;
  spec.scheme = scheme;
  spec.seed = seed;
  spec.reward_window = 128;
  spec.record_rewards = true;
  if (scheme == "dqn") {
    spec.slots = 512;
    spec.replicas = 4;
    spec.history = 4;
    spec.hidden = {16, 16};
  } else {
    spec.slots = 600;
  }
  return spec;
}

/// Every determinism-relevant field of a JobResult (everything except the
/// scheduling-dependent eviction count).
void expect_results_identical(const serve::JobResult& a,
                              const serve::JobResult& b) {
  EXPECT_EQ(a.slots_run, b.slots_run);
  EXPECT_EQ(a.reward_crc, b.reward_crc);
  EXPECT_EQ(a.state_crc, b.state_crc);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.jammed_slots, b.jammed_slots);
  EXPECT_EQ(a.hops, b.hops);
  // Exact FP equality is intended: same spec must mean same bits.
  EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
  EXPECT_EQ(a.reward_sum, b.reward_sum);
  ASSERT_EQ(a.rewards.size(), b.rewards.size());
  for (std::size_t i = 0; i < a.rewards.size(); ++i) {
    EXPECT_EQ(a.rewards[i], b.rewards[i]) << "slot " << i;
  }
}

// ---------------------------------------------------------------------------
// MPMC ready ring

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<std::uint64_t> q(4);
  std::uint64_t v = 0;
  EXPECT_FALSE(q.try_pop(v));
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(5);  // rounds to 8
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(8));
}

TEST(MpmcQueue, ConcurrentProducersConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpmcQueue<std::uint64_t> q(256);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t v = 0;
      while (popped.load() < kProducers * kPerProducer) {
        if (q.try_pop(v)) {
          sum.fetch_add(v);
          popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);  // values were 1..n exactly once
}

// ---------------------------------------------------------------------------
// Job codecs

TEST(JobCodec, SpecRoundTrip) {
  serve::JobSpec spec;
  spec.scheme = "dqn";
  spec.jammer = jammer::JammerSpec::defaults("adaptive");
  spec.num_channels = 12;
  spec.channels_per_sweep = 3;
  spec.mode = JammerPowerMode::kRandomPower;
  spec.loss_jam = 80.0;
  spec.loss_hop = 40.0;
  spec.seed = 42;
  spec.slots = 1024;
  spec.replicas = 8;
  spec.reward_window = 500;
  spec.history = 6;
  spec.hidden = {24, 24, 12};
  spec.record_rewards = true;

  io::ByteWriter out;
  spec.encode(out);
  io::ByteReader in(out.buffer());
  const serve::JobSpec back = serve::JobSpec::decode(in);
  in.expect_end();
  EXPECT_EQ(back, spec);
}

TEST(JobCodec, SpecRejectsTruncationAndBadVersion) {
  serve::JobSpec spec;
  io::ByteWriter out;
  spec.encode(out);
  const std::string bytes = out.buffer();
  // Truncation at every prefix length must throw, never misdecode.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    io::ByteReader in(std::string_view(bytes).substr(0, len));
    EXPECT_THROW(
        {
          serve::JobSpec::decode(in);
          in.expect_end();
        },
        io::IoError)
        << "prefix " << len;
  }
  std::string versioned = bytes;
  versioned[0] = 99;
  io::ByteReader in(versioned);
  EXPECT_THROW(serve::JobSpec::decode(in), io::IoError);
}

TEST(JobCodec, ResultAndStatusRoundTrip) {
  serve::JobResult result;
  result.slots_run = 4000;
  result.final_mean_reward = -12.5;
  result.reward_sum = -50000.25;
  result.successes = 3000;
  result.jammed_slots = 700;
  result.hops = 300;
  result.reward_crc = 0xDEADBEEF;
  result.state_crc = 0xCAFEF00D;
  result.evictions = 3;
  result.rewards = {1.0, -100.0, 0.5};
  io::ByteWriter out;
  result.encode(out);
  io::ByteReader in(out.buffer());
  const serve::JobResult back = serve::JobResult::decode(in);
  in.expect_end();
  EXPECT_EQ(back.slots_run, result.slots_run);
  EXPECT_EQ(back.reward_crc, result.reward_crc);
  EXPECT_EQ(back.state_crc, result.state_crc);
  EXPECT_EQ(back.evictions, result.evictions);
  EXPECT_EQ(back.rewards, result.rewards);

  serve::JobStatus status;
  status.state = serve::JobState::kRunning;
  status.slots_done = 128;
  status.slots_total = 4000;
  status.evictions = 2;
  status.resident = true;
  io::ByteWriter sout;
  status.encode(sout);
  io::ByteReader sin(sout.buffer());
  const serve::JobStatus sback = serve::JobStatus::decode(sin);
  sin.expect_end();
  EXPECT_EQ(sback.state, status.state);
  EXPECT_EQ(sback.slots_done, status.slots_done);
  EXPECT_TRUE(sback.resident);
}

TEST(JobCodec, ValidateRejectsBadSpecs) {
  serve::JobSpec spec;
  spec.scheme = "nope";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = serve::JobSpec{};
  spec.jammer.archetype = "unregistered_archetype";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = serve::JobSpec{};
  spec.slots = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = serve::JobSpec{};
  spec.scheme = "dqn";
  spec.slots = 1001;
  spec.replicas = 4;  // 1001 % 4 != 0
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = serve::JobSpec{};
  spec.channels_per_sweep = 99;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Tenant determinism against the standalone trainer

TEST(TenantRunner, DqnTenantMatchesTrainBatched) {
  const serve::JobSpec spec = small_spec("dqn", 11);

  auto runner = serve::TenantRunner::create(spec);
  ASSERT_EQ(runner->run(1u << 30), spec.slots);
  EXPECT_TRUE(runner->done());
  const serve::JobResult result = runner->result();

  // The reference: core::train_batched on an identically constructed scheme.
  core::DqnScheme scheme(spec.dqn_config());
  std::vector<double> reference;
  core::TrainerConfig trainer;
  trainer.max_slots = static_cast<std::size_t>(spec.slots);
  trainer.reward_window = static_cast<std::size_t>(spec.reward_window);
  trainer.on_slot = [&](std::size_t, double reward) {
    reference.push_back(reward);
  };
  const auto stats = core::train_batched(
      scheme, spec.env_config(), trainer,
      static_cast<std::size_t>(spec.replicas));

  ASSERT_EQ(result.rewards.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(result.rewards[i], reference[i]) << "slot " << i;
  }
  EXPECT_EQ(result.final_mean_reward, stats.final_mean_reward);

  // Final weights bit-identical: the serialized scheme state must hash the
  // same as the tenant's state_crc.
  io::ContainerWriter out;
  scheme.save_state(out);
  EXPECT_EQ(result.state_crc, io::crc32(out.to_bytes()));
}

TEST(TenantRunner, QuantumSizeIsInvisible) {
  for (const char* scheme : {"dqn", "ql", "passive", "random"}) {
    const serve::JobSpec spec = small_spec(scheme, 21);
    auto one_shot = serve::TenantRunner::create(spec);
    one_shot->run(1u << 30);
    auto chunked = serve::TenantRunner::create(spec);
    while (!chunked->done()) chunked->run(16);
    auto odd = serve::TenantRunner::create(spec);
    while (!odd->done()) odd->run(77);
    expect_results_identical(one_shot->result(), chunked->result());
    expect_results_identical(one_shot->result(), odd->result());
  }
}

TEST(TenantRunner, EvictReviveOnAnotherThreadIsBitIdentical) {
  const std::string dir = scratch_dir("revive");
  for (const char* scheme : {"dqn", "ql", "passive", "random"}) {
    serve::JobSpec spec = small_spec(scheme, 33);
    spec.jammer = jammer::JammerSpec::defaults("sweep");

    auto uninterrupted = serve::TenantRunner::create(spec);
    uninterrupted->run(1u << 30);

    auto first_half = serve::TenantRunner::create(spec);
    first_half->run(static_cast<std::size_t>(spec.slots) / 2);
    const std::string path = dir + "/" + scheme + ".ctjs";
    first_half->save(path);
    first_half.reset();  // evicted

    // Revive and finish on a different thread (the engine's "different
    // worker" case) — thread identity must not matter.
    serve::JobResult revived_result;
    std::thread other([&] {
      auto revived = serve::TenantRunner::load(path, spec);
      EXPECT_EQ(revived->slots_done(), spec.slots / 2);
      revived->run(1u << 30);
      revived_result = revived->result();
    });
    other.join();

    expect_results_identical(uninterrupted->result(), revived_result);
  }
  std::filesystem::remove_all(dir);
}

TEST(TenantRunner, LoadRejectsDifferentSpec) {
  const std::string dir = scratch_dir("reject");
  serve::JobSpec spec = small_spec("ql", 5);
  spec.jammer = jammer::JammerSpec::defaults("sweep");
  auto runner = serve::TenantRunner::create(spec);
  runner->run(64);
  const std::string path = dir + "/tenant.ctjs";
  runner->save(path);

  // A different seed is a different tenant.
  serve::JobSpec other = spec;
  other.seed += 1;
  try {
    serve::TenantRunner::load(path, other);
    FAIL() << "expected kStateMismatch";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }

  // A different adversary archetype is too.
  serve::JobSpec adversary = spec;
  adversary.jammer = jammer::JammerSpec::defaults("reactive");
  try {
    serve::TenantRunner::load(path, adversary);
    FAIL() << "expected kStateMismatch";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
  std::filesystem::remove_all(dir);
}

TEST(TenantRunner, LoadRejectsTamperedJammerConfig) {
  const std::string dir = scratch_dir("tamper");
  serve::JobSpec spec = small_spec("ql", 6);
  spec.jammer = jammer::JammerSpec::defaults("sweep");
  auto runner = serve::TenantRunner::create(spec);
  runner->run(64);
  const std::string path = dir + "/tenant.ctjs";
  runner->save(path);

  // Rebuild the container with every chunk intact except JAMRCFG, which now
  // claims a different adversary — the revival gate must catch it even
  // though the stored JobSpec still matches.
  const auto in = io::ContainerReader::from_file(path);
  io::ContainerWriter tampered;
  bool replaced = false;
  for (const auto& info : in.chunks()) {
    if (info.tag == "JAMRCFG") {
      core::write_jammer_config(tampered,
                                jammer::JammerSpec::defaults("reactive"));
      replaced = true;
    } else {
      tampered.add_chunk(info.tag, std::string(in.chunk(info.tag)));
    }
  }
  ASSERT_TRUE(replaced) << "checkpoint unexpectedly had no JAMRCFG chunk";
  const std::string tampered_path = dir + "/tampered.ctjs";
  tampered.write_file(tampered_path);
  try {
    serve::TenantRunner::load(tampered_path, spec);
    FAIL() << "expected kStateMismatch";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Engine

std::vector<serve::JobSpec> mixed_fleet() {
  std::vector<serve::JobSpec> jobs;
  const char* schemes[] = {"ql", "passive", "random", "dqn"};
  for (int i = 0; i < 12; ++i) {
    serve::JobSpec spec = small_spec(schemes[i % 4], 200 + i);
    if (i % 3 == 0) spec.jammer = jammer::JammerSpec::defaults("sweep");
    jobs.push_back(spec);
  }
  return jobs;
}

std::vector<serve::JobResult> run_fleet(std::size_t workers,
                                        std::size_t max_resident,
                                        const std::string& spool,
                                        serve::EngineStats* stats_out) {
  serve::ServeConfig config;
  config.workers = workers;
  config.max_resident = max_resident;
  config.quantum_slots = 64;
  config.spool_dir = spool;
  serve::ServeEngine engine(config);
  std::vector<std::uint64_t> ids;
  for (const auto& spec : mixed_fleet()) ids.push_back(engine.submit(spec));
  engine.wait_all();
  std::vector<serve::JobResult> results;
  for (std::uint64_t id : ids) results.push_back(*engine.try_result(id));
  if (stats_out != nullptr) *stats_out = engine.stats();
  return results;
}

TEST(ServeEngine, BitIdenticalAcrossWorkerCounts) {
  const std::string dir = scratch_dir("workers");
  const auto one = run_fleet(1, 1024, dir + "/w1", nullptr);
  const auto two = run_fleet(2, 1024, dir + "/w2", nullptr);
  const auto four = run_fleet(4, 1024, dir + "/w4", nullptr);
  ASSERT_EQ(one.size(), two.size());
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_results_identical(one[i], two[i]);
    expect_results_identical(one[i], four[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(ServeEngine, EvictionIsInvisibleInResults) {
  const std::string dir = scratch_dir("evict");
  serve::EngineStats capped_stats;
  const auto unbounded = run_fleet(2, 1024, dir + "/free", nullptr);
  const auto capped = run_fleet(2, 2, dir + "/capped", &capped_stats);
  // 12 tenants through 2 resident slots: eviction must actually happen.
  EXPECT_GT(capped_stats.evictions, 0u);
  EXPECT_GT(capped_stats.revivals, 0u);
  ASSERT_EQ(unbounded.size(), capped.size());
  std::uint64_t evictions_reported = 0;
  for (std::size_t i = 0; i < unbounded.size(); ++i) {
    expect_results_identical(unbounded[i], capped[i]);
    evictions_reported += capped[i].evictions;
  }
  EXPECT_EQ(evictions_reported, capped_stats.evictions);
  EXPECT_EQ(capped_stats.resident, 0u);  // everything finished and released
  std::filesystem::remove_all(dir);
}

TEST(ServeEngine, RejectsInvalidSpecAndUnknownIds) {
  serve::ServeConfig config;
  config.spool_dir = scratch_dir("invalid");
  serve::ServeEngine engine(config);
  serve::JobSpec bad;
  bad.scheme = "nope";
  EXPECT_THROW(engine.submit(bad), std::invalid_argument);
  EXPECT_THROW(engine.status(1234), std::out_of_range);
  EXPECT_THROW(engine.try_result(1234), std::out_of_range);
  EXPECT_EQ(engine.stats().submitted, 0u);
  std::filesystem::remove_all(config.spool_dir);
}

TEST(ServeEngine, StatusTracksCompletion) {
  serve::ServeConfig config;
  config.spool_dir = scratch_dir("status");
  serve::ServeEngine engine(config);
  const serve::JobSpec spec = small_spec("passive", 3);
  const auto id = engine.submit(spec);
  const serve::JobResult result = engine.wait(id);
  EXPECT_EQ(result.slots_run, spec.slots);
  const serve::JobStatus status = engine.status(id);
  EXPECT_EQ(status.state, serve::JobState::kDone);
  EXPECT_EQ(status.slots_done, status.slots_total);
  EXPECT_FALSE(status.resident);
  std::filesystem::remove_all(config.spool_dir);
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(Wire, EndToEndOverUnixSocket) {
  const std::string dir = scratch_dir("wire");
  const std::string socket_path = "/tmp/ctj_wire_" +
                                  std::to_string(::getpid()) + ".sock";
  serve::ServeConfig config;
  config.workers = 2;
  config.spool_dir = dir + "/spool";
  serve::ServeEngine engine(config);
  std::thread server([&] { serve::run_server(engine, socket_path); });
  // Wait for the socket to appear.
  for (int i = 0; i < 500 && !std::filesystem::exists(socket_path); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  {
    serve::ServeClient client(socket_path);
    const serve::JobSpec spec = small_spec("ql", 77);
    const std::uint64_t id = client.submit(spec);
    EXPECT_GE(id, 1u);

    const auto result = client.result(id, /*wait=*/true);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->slots_run, spec.slots);

    // The wire result must equal the in-process result bit for bit.
    auto reference = serve::TenantRunner::create(spec);
    reference->run(1u << 30);
    expect_results_identical(*result, reference->result());

    const serve::JobStatus status = client.status(id);
    EXPECT_EQ(status.state, serve::JobState::kDone);

    const serve::EngineStats stats = client.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.completed, 1u);

    // Unknown id → server relays the error as an exception.
    EXPECT_THROW(client.status(999), std::runtime_error);

    client.shutdown();
  }
  server.join();
  EXPECT_FALSE(std::filesystem::exists(socket_path));
  std::filesystem::remove_all(dir);
}

TEST(Wire, MalformedFramesGetErrorReplies) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::ServeConfig config;
  config.spool_dir = scratch_dir("malformed");
  serve::ServeEngine engine(config);
  std::atomic<bool> shutdown_requested{false};
  std::thread server([&] {
    serve::serve_connection(fds[0], engine, shutdown_requested);
    ::close(fds[0]);
  });

  const auto expect_error = [&](std::string_view payload) {
    serve::write_frame(fds[1], payload);
    std::string reply;
    ASSERT_TRUE(serve::read_frame(fds[1], reply));
    ASSERT_FALSE(reply.empty());
    EXPECT_EQ(static_cast<std::uint8_t>(reply[0]), serve::wire::kError);
  };

  expect_error("\x63");             // unknown opcode 99
  expect_error(std::string(1, 1));  // kSubmit with no spec payload
  {
    // kSubmit with a corrupt spec (bad version byte).
    io::ByteWriter out;
    out.u8(serve::wire::kSubmit);
    out.u8(250);
    expect_error(out.buffer());
  }
  {
    // kStatus for an id that does not exist.
    io::ByteWriter out;
    out.u8(serve::wire::kStatus);
    out.u64(4242);
    expect_error(out.buffer());
  }
  // The connection must still be healthy: a valid request now succeeds.
  {
    io::ByteWriter out;
    out.u8(serve::wire::kStats);
    serve::write_frame(fds[1], out.buffer());
    std::string reply;
    ASSERT_TRUE(serve::read_frame(fds[1], reply));
    EXPECT_EQ(static_cast<std::uint8_t>(reply[0]), serve::wire::kStatsReply);
  }
  ::close(fds[1]);  // EOF ends serve_connection
  server.join();
  std::filesystem::remove_all(config.spool_dir);
}

}  // namespace
