// Tests for the ZigBee O-QPSK/DSSS PHY and the 802.15.4 frame format.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "phy/zigbee_packet.hpp"
#include "phy/zigbee_phy.hpp"

namespace ctj::phy {
namespace {

// ----------------------------------------------------------- chip table ----

TEST(ChipTable, AllSequencesHave32Chips) {
  for (std::size_t s = 0; s < ChipTable::kSymbols; ++s) {
    const auto& chips = ChipTable::chips(s);
    EXPECT_EQ(chips.size(), 32u);
    for (std::uint8_t c : chips) EXPECT_LE(c, 1);
  }
}

TEST(ChipTable, SequencesAreDistinct) {
  for (std::size_t a = 0; a < 16; ++a) {
    for (std::size_t b = a + 1; b < 16; ++b) {
      EXPECT_NE(ChipTable::chips(a), ChipTable::chips(b));
    }
  }
}

TEST(ChipTable, CyclicShiftStructure) {
  // Symbol s (1..7) is symbol 0 right-rotated by 4s chips.
  for (std::size_t s = 1; s < 8; ++s) {
    const auto& base = ChipTable::chips(0);
    const auto& seq = ChipTable::chips(s);
    for (std::size_t c = 0; c < 32; ++c) {
      EXPECT_EQ(seq[c], base[(c + 32 - 4 * s) % 32]);
    }
  }
}

TEST(ChipTable, UpperHalfInvertsOddChips) {
  for (std::size_t s = 0; s < 8; ++s) {
    const auto& lo = ChipTable::chips(s);
    const auto& hi = ChipTable::chips(s + 8);
    for (std::size_t c = 0; c < 32; ++c) {
      if (c % 2 == 1) {
        EXPECT_EQ(hi[c], 1 - lo[c]);
      } else {
        EXPECT_EQ(hi[c], lo[c]);
      }
    }
  }
}

TEST(ChipTable, LargeMinimumPairwiseDistance) {
  // Near-orthogonality is what gives DSSS its processing gain; the 802.15.4
  // family has a minimum pairwise Hamming distance of at least 12 chips.
  EXPECT_GE(ChipTable::min_pairwise_distance(), 12u);
}

TEST(ChipTable, DespreadRecoversCleanSymbols) {
  for (std::size_t s = 0; s < 16; ++s) {
    std::vector<double> soft(32);
    const auto& chips = ChipTable::chips(s);
    for (std::size_t c = 0; c < 32; ++c) soft[c] = chips[c] ? 1.0 : -1.0;
    EXPECT_EQ(ChipTable::despread(soft), s);
  }
}

TEST(ChipTable, DespreadTolerates8ChipErrors) {
  Rng rng(1);
  for (std::size_t s = 0; s < 16; ++s) {
    std::vector<double> soft(32);
    const auto& chips = ChipTable::chips(s);
    for (std::size_t c = 0; c < 32; ++c) soft[c] = chips[c] ? 1.0 : -1.0;
    // Flip 5 random chips (below half the min distance).
    std::vector<std::size_t> idx(32);
    for (std::size_t i = 0; i < 32; ++i) idx[i] = i;
    rng.shuffle(idx);
    for (std::size_t k = 0; k < 5; ++k) soft[idx[k]] = -soft[idx[k]];
    EXPECT_EQ(ChipTable::despread(soft), s);
  }
}

// ---------------------------------------------------------------- modem ----

TEST(ZigbeePhy, WaveformLength) {
  ZigbeePhy phy(4);
  const std::vector<std::size_t> syms = {1, 2, 3};
  const IqBuffer wave = phy.modulate_symbols(syms);
  EXPECT_EQ(wave.size(), 3 * phy.samples_per_symbol() + phy.samples_per_chip());
}

TEST(ZigbeePhy, CleanRoundTripAllSymbols) {
  ZigbeePhy phy(4);
  std::vector<std::size_t> syms(16);
  for (std::size_t s = 0; s < 16; ++s) syms[s] = s;
  const IqBuffer wave = phy.modulate_symbols(syms);
  EXPECT_EQ(phy.demodulate_symbols(wave, syms.size()), syms);
}

TEST(ZigbeePhy, CleanRoundTripRandomStream) {
  Rng rng(2);
  ZigbeePhy phy(4);
  std::vector<std::size_t> syms(200);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  const IqBuffer wave = phy.modulate_symbols(syms);
  EXPECT_EQ(phy.demodulate_symbols(wave, syms.size()), syms);
}

TEST(ZigbeePhy, ByteRoundTrip) {
  Rng rng(3);
  ZigbeePhy phy(4);
  std::vector<std::uint8_t> bytes(64);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const IqBuffer wave = phy.modulate_bytes(bytes);
  EXPECT_EQ(phy.demodulate_bytes(wave, bytes.size()), bytes);
}

class ZigbeePhyNoise : public ::testing::TestWithParam<double> {};

TEST_P(ZigbeePhyNoise, DsssSurvivesAwgn) {
  const double noise_std = GetParam();
  Rng rng(4);
  ZigbeePhy phy(4);
  std::vector<std::size_t> syms(100);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  IqBuffer wave = phy.modulate_symbols(syms);
  for (Cplx& v : wave) {
    v += Cplx(rng.normal(0.0, noise_std), rng.normal(0.0, noise_std));
  }
  const auto decoded = phy.demodulate_symbols(wave, syms.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < syms.size(); ++i) {
    errors += decoded[i] != syms[i] ? 1 : 0;
  }
  // 32-chip despreading keeps the symbol error rate tiny even at 0 dB
  // chip SNR (noise_std = 1 per rail ≈ unit signal amplitude).
  EXPECT_LE(errors, 2u);
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, ZigbeePhyNoise,
                         ::testing::Values(0.3, 0.6, 1.0));

TEST(ZigbeePhy, ChipErrorRateZeroOnCleanWaveform) {
  ZigbeePhy phy(4);
  const std::vector<std::size_t> syms = {0, 5, 9, 15};
  const IqBuffer wave = phy.modulate_symbols(syms);
  EXPECT_DOUBLE_EQ(phy.chip_error_rate(wave, syms), 0.0);
}

TEST(ZigbeePhy, ChipErrorRateHalfOnNoise) {
  Rng rng(5);
  ZigbeePhy phy(4);
  const std::vector<std::size_t> syms = {0, 1, 2, 3, 4, 5, 6, 7};
  IqBuffer wave(syms.size() * phy.samples_per_symbol() + phy.samples_per_chip());
  for (Cplx& v : wave) v = Cplx(rng.normal(), rng.normal());
  EXPECT_NEAR(phy.chip_error_rate(wave, syms), 0.5, 0.12);
}

TEST(ZigbeePhy, RejectsTooFewSamplesPerChip) {
  EXPECT_THROW(ZigbeePhy(1), CheckFailure);
}

TEST(ZigbeePhy, ConstantEnvelopeOnRails) {
  // O-QPSK/half-sine (MSK-like) waveforms have near-constant envelope away
  // from the symbol edges.
  ZigbeePhy phy(8);
  const std::vector<std::size_t> syms = {3, 12, 7};
  const IqBuffer wave = phy.modulate_symbols(syms);
  // Skip the ramp-up/down half-chips at both ends.
  for (std::size_t i = phy.samples_per_chip();
       i < wave.size() - 2 * phy.samples_per_chip(); ++i) {
    EXPECT_NEAR(std::abs(wave[i]), 1.0, 0.02);
  }
}

// --------------------------------------------------------------- frames ----

TEST(ZigbeeFrame, BuildLayout) {
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  const auto frame = ZigbeeFrame::build(payload);
  ASSERT_EQ(frame.size(), 4u + 1 + 1 + 3 + 2);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(frame[static_cast<std::size_t>(i)], 0x00);
  EXPECT_EQ(frame[4], ZigbeeFrameFormat::kSfd);
  EXPECT_EQ(frame[5], 5);  // PSDU length: 3 payload + 2 FCS
  EXPECT_EQ(frame[6], 0xAA);
}

TEST(ZigbeeFrame, InspectValidFrame) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto frame = ZigbeeFrame::build(payload);
  const auto result = ZigbeeFrame::inspect(frame);
  EXPECT_EQ(result.status, FrameStatus::kOk);
  EXPECT_EQ(result.payload, payload);
  EXPECT_GT(result.occupied_symbol_periods, 0u);
}

TEST(ZigbeeFrame, MaxPayloadAcceptedOversizedRejected) {
  const std::vector<std::uint8_t> max_payload(125, 0x11);  // 125 + 2 FCS = 127
  EXPECT_EQ(ZigbeeFrame::inspect(ZigbeeFrame::build(max_payload)).status,
            FrameStatus::kOk);
  const std::vector<std::uint8_t> too_big(126, 0x11);
  EXPECT_THROW(ZigbeeFrame::build(too_big), CheckFailure);
}

TEST(ZigbeeFrame, DetectsCorruptedPayload) {
  const std::vector<std::uint8_t> payload = {10, 20, 30};
  auto frame = ZigbeeFrame::build(payload);
  frame[7] ^= 0xFF;  // corrupt payload byte
  EXPECT_EQ(ZigbeeFrame::inspect(frame).status, FrameStatus::kBadFcs);
}

TEST(ZigbeeFrame, DetectsBadPreamble) {
  const std::vector<std::uint8_t> payload = {10, 20, 30};
  auto frame = ZigbeeFrame::build(payload);
  frame[1] = 0x55;
  const auto result = ZigbeeFrame::inspect(frame);
  EXPECT_EQ(result.status, FrameStatus::kBadPreamble);
  // The receiver drops out quickly — no stealth stall.
  EXPECT_LT(result.occupied_symbol_periods, 20u);
}

TEST(ZigbeeFrame, EmuBeeStealthStall) {
  // The EmuBee jammer sends a valid preamble and then garbage instead of the
  // SFD: the receiver stalls for the whole decode timeout — the paper's
  // "meaningless decoding" stealth effect (Sec. II.A.2).
  std::vector<std::uint8_t> jam(64, 0x00);
  jam[4] = 0x13;  // not the SFD
  const auto result = ZigbeeFrame::inspect(jam, 256);
  EXPECT_EQ(result.status, FrameStatus::kBadSfd);
  EXPECT_EQ(result.occupied_symbol_periods, 256u);
}

TEST(ZigbeeFrame, PreambleOnlyStallsUntilTimeout) {
  const std::vector<std::uint8_t> preamble_only(4, 0x00);
  const auto result = ZigbeeFrame::inspect(preamble_only, 128);
  EXPECT_EQ(result.status, FrameStatus::kTooShort);
  EXPECT_EQ(result.occupied_symbol_periods, 128u);
}

TEST(ZigbeeFrame, BadLengthDetected) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  auto frame = ZigbeeFrame::build(payload);
  frame[5] = 127;  // claims a PSDU the stream does not contain
  EXPECT_EQ(ZigbeeFrame::inspect(frame).status, FrameStatus::kBadLength);
}

TEST(ZigbeeFrame, StatusStrings) {
  EXPECT_STREQ(to_string(FrameStatus::kOk), "ok");
  EXPECT_STREQ(to_string(FrameStatus::kBadSfd), "bad-sfd");
}

// End-to-end: frame bytes over the modem.
TEST(ZigbeeFrame, FrameSurvivesModemRoundTrip) {
  Rng rng(6);
  ZigbeePhy phy(4);
  std::vector<std::uint8_t> payload(40);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto frame = ZigbeeFrame::build(payload);
  const IqBuffer wave = phy.modulate_bytes(frame);
  const auto received = phy.demodulate_bytes(wave, frame.size());
  const auto result = ZigbeeFrame::inspect(received);
  EXPECT_EQ(result.status, FrameStatus::kOk);
  EXPECT_EQ(result.payload, payload);
}

}  // namespace
}  // namespace ctj::phy
