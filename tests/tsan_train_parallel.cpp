// ThreadSanitizer driver for the parallel actor-learner trainer: a
// deterministic run at 1 and 4 threads (results must match bit for bit)
// plus a free-running throughput run, all under TSan instrumentation.
//
// Standalone (non-gtest) so it can be built with -fsanitize=thread in an
// otherwise uninstrumented build; train_parallel.cpp, policy_bus.cpp and
// replay_shard.cpp are compiled into this binary directly (see
// tests/CMakeLists.txt) so the lock-free index protocol, the bus atomics
// and the pause gate are all instrumented — TSan cannot see into the
// library's uninstrumented copies.
#include <cstdio>
#include <vector>

#include "core/train_parallel.hpp"
#include "core/trainer.hpp"
#include "io/container.hpp"

using namespace ctj;
using namespace ctj::core;

namespace {

DqnScheme::Config scheme_config() {
  DqnScheme::Config config;
  config.history = 2;
  config.hidden = {8};
  config.epsilon_decay_steps = 200;
  config.seed = 99;
  return config;
}

EnvironmentConfig env_config() {
  auto config = EnvironmentConfig::defaults();
  config.seed = 5;
  return config;
}

std::string scheme_bytes(const DqnScheme& scheme) {
  io::ContainerWriter out;
  scheme.save_state(out);
  return out.to_bytes();
}

}  // namespace

int main() {
  TrainerConfig config;
  config.max_slots = 480;  // 60 rounds of 4 actors × 2 replicas
  config.reward_window = 50;

  ParallelTrainerConfig pconfig;
  pconfig.actors = 4;
  pconfig.replicas_per_actor = 2;
  pconfig.sync_every_rounds = 8;
  pconfig.queue_capacity = 4;  // tiny ring: exercise the full/empty edges

  std::string ref_bytes;
  std::vector<double> ref_rewards;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<double> rewards;
    config.on_slot = [&](std::size_t, double r) { rewards.push_back(r); };
    pconfig.threads = threads;
    pconfig.deterministic = true;
    DqnScheme scheme(scheme_config());
    const auto stats = train_parallel(scheme, env_config(), config, pconfig);
    if (stats.slots_trained != config.max_slots) {
      std::fprintf(stderr, "threads=%zu trained %zu slots, expected %zu\n",
                   threads, stats.slots_trained, config.max_slots);
      return 1;
    }
    if (threads == 1) {
      ref_bytes = scheme_bytes(scheme);
      ref_rewards = rewards;
    } else {
      if (rewards != ref_rewards) {
        std::fprintf(stderr,
                     "threads=%zu reward stream differs from threads=1\n",
                     threads);
        return 1;
      }
      if (scheme_bytes(scheme) != ref_bytes) {
        std::fprintf(stderr,
                     "threads=%zu final state differs from threads=1\n",
                     threads);
        return 1;
      }
    }
  }

  // Throughput mode: no determinism claim, but it must be race-free and
  // hit the budget exactly.
  config.on_slot = nullptr;
  pconfig.deterministic = false;
  pconfig.threads = 4;
  DqnScheme scheme(scheme_config());
  const auto stats = train_parallel(scheme, env_config(), config, pconfig);
  if (stats.slots_trained != config.max_slots) {
    std::fprintf(stderr, "throughput mode trained %zu slots, expected %zu\n",
                 stats.slots_trained, config.max_slots);
    return 1;
  }
  std::printf("tsan_train_parallel: OK\n");
  return 0;
}
