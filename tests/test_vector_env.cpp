// Vectorized rollout engine: replica trajectories must equal standalone
// environments seed for seed, ObservationWindows must reproduce DqnScheme's
// sliding window, and the batched agent/eval/train paths must match their
// sequential counterparts where exactness is promised.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"
#include "core/vector_env.hpp"

namespace ctj::core {
namespace {

EnvironmentConfig test_env_config(std::uint64_t seed) {
  EnvironmentConfig config = EnvironmentConfig::defaults();
  config.seed = seed;
  return config;
}

TEST(VectorEnv, ReplicasMatchSequentialTrajectoriesSeedForSeed) {
  const std::size_t R = 4, slots = 400;
  const EnvironmentConfig base = test_env_config(71);
  VectorEnv venv(base, R);
  ASSERT_EQ(venv.size(), R);

  std::vector<CompetitionEnvironment> solo;
  for (std::size_t r = 0; r < R; ++r) {
    EnvironmentConfig c = base;
    c.seed = base.seed + r;
    solo.emplace_back(c);
  }

  // A deterministic per-replica action schedule (any policy works — the
  // claim is about the environment dynamics, not the agent).
  Rng action_rng(5);
  std::vector<int> channels(R);
  std::vector<std::size_t> powers(R);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    for (std::size_t r = 0; r < R; ++r) {
      channels[r] = action_rng.uniform_int(0, base.num_channels - 1);
      powers[r] = action_rng.index(base.num_power_levels());
    }
    venv.step(channels, powers);
    for (std::size_t r = 0; r < R; ++r) {
      const EnvStep expect = solo[r].step(channels[r], powers[r]);
      EXPECT_EQ(venv.rewards()[r], expect.reward) << "slot " << slot;
      EXPECT_EQ(venv.successes()[r] != 0, expect.success);
      EXPECT_EQ(venv.jammed()[r] != 0, expect.outcome != SlotOutcome::kClear);
      EXPECT_EQ(venv.hopped()[r] != 0, expect.hopped);
      EXPECT_EQ(venv.channels()[r], expect.channel);
      EXPECT_EQ(venv.outcomes()[r], expect.outcome);
    }
  }
}

TEST(ObservationWindows, MatchesDqnSchemeObservation) {
  DqnScheme::Config sc;
  sc.training = false;
  sc.deploy_epsilon = 0.0;
  DqnScheme scheme(sc);
  ObservationWindows windows(2, sc.history, sc.num_channels,
                             sc.num_power_levels);

  // Initial histories are all-zero on both sides.
  const auto initial = scheme.observation();
  const auto row0 = windows.row(0);
  ASSERT_EQ(initial.size(), row0.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    EXPECT_EQ(initial[i], row0[i]);
  }

  Rng rng(9);
  for (int slot = 0; slot < 30; ++slot) {
    const bool success = rng.bernoulli(0.6);
    const int channel = rng.uniform_int(0, sc.num_channels - 1);
    const std::size_t power = rng.index(sc.num_power_levels);

    SlotFeedback fb;
    fb.success = success;
    fb.channel = channel;
    fb.power_index = power;
    scheme.feedback(fb);
    windows.push(0, success, channel, power);

    const auto obs = scheme.observation();
    const auto row = windows.row(0);
    ASSERT_EQ(obs.size(), row.size());
    for (std::size_t i = 0; i < obs.size(); ++i) {
      EXPECT_EQ(obs[i], row[i]) << "slot " << slot << " elem " << i;
    }
  }
  // Replica 1 was never pushed and must still hold the zero history.
  for (double v : windows.row(1)) EXPECT_EQ(v, 0.0);
}

TEST(BatchedInference, ActGreedyBatchMatchesPerStateActGreedy) {
  rl::DqnConfig config;
  config.seed = 3;
  rl::DqnAgent agent(config);
  const std::size_t R = 7;
  Rng rng(21);
  rl::Matrix states(R, config.state_dim);
  for (std::size_t i = 0; i < states.size(); ++i) {
    states.data()[i] = rng.uniform();
  }

  rl::Matrix q_batch;
  agent.q_values_batch(states, q_batch);
  std::vector<std::size_t> actions(R);
  agent.act_greedy_batch(states, actions);
  for (std::size_t r = 0; r < R; ++r) {
    const auto state = states.row_span(r);
    EXPECT_EQ(actions[r], agent.act_greedy(state)) << "replica " << r;
    const std::vector<double> q = agent.q_values(state);
    ASSERT_EQ(q.size(), config.num_actions);
    for (std::size_t a = 0; a < q.size(); ++a) {
      EXPECT_EQ(q[a], q_batch.at(r, a)) << "replica " << r << " action " << a;
    }
  }
}

TEST(BatchedEvaluate, SingleReplicaGreedyMatchesSequentialEvaluate) {
  DqnScheme::Config sc;
  sc.training = false;
  sc.deploy_epsilon = 0.0;
  sc.seed = 41;
  DqnScheme scheme(sc);

  const EnvironmentConfig env_config = test_env_config(97);
  const std::size_t slots = 600;

  CompetitionEnvironment env(env_config);
  scheme.reset();
  const MetricsReport sequential = evaluate(scheme, env, slots);

  scheme.reset();
  const MetricsReport batched = evaluate_batched(scheme, env_config, slots, 1);

  EXPECT_EQ(batched.slots, sequential.slots);
  EXPECT_EQ(batched.st, sequential.st);
  EXPECT_EQ(batched.ah, sequential.ah);
  EXPECT_EQ(batched.sh, sequential.sh);
  EXPECT_EQ(batched.ap, sequential.ap);
  EXPECT_EQ(batched.sp, sequential.sp);
  EXPECT_EQ(batched.mean_reward, sequential.mean_reward);
}

TEST(BatchedEvaluate, MultiReplicaAggregatesIndependentRollouts) {
  DqnScheme::Config sc;
  sc.training = false;
  sc.deploy_epsilon = 0.0;
  sc.seed = 43;
  DqnScheme scheme(sc);

  const EnvironmentConfig base = test_env_config(131);
  const std::size_t R = 3, slots = 300;

  double success_total = 0.0, reward_total = 0.0;
  for (std::size_t r = 0; r < R; ++r) {
    EnvironmentConfig c = base;
    c.seed = base.seed + r;
    CompetitionEnvironment env(c);
    scheme.reset();
    const MetricsReport rep = evaluate(scheme, env, slots);
    success_total += rep.st * static_cast<double>(rep.slots);
    reward_total += rep.mean_reward * static_cast<double>(rep.slots);
  }

  scheme.reset();
  const MetricsReport batched = evaluate_batched(scheme, base, slots, R);
  EXPECT_EQ(batched.slots, R * slots);
  EXPECT_NEAR(batched.st * static_cast<double>(batched.slots), success_total,
              1e-9);
  EXPECT_NEAR(batched.mean_reward * static_cast<double>(batched.slots),
              reward_total, 1e-6);
}

TEST(BatchedTrain, SingleReplicaReproducesSequentialTrainer) {
  DqnScheme::Config sc;
  sc.seed = 77;
  const EnvironmentConfig env_config = test_env_config(303);

  TrainerConfig tc;
  tc.max_slots = 600;
  tc.reward_window = 100;

  DqnScheme sequential_scheme(sc);
  CompetitionEnvironment env(env_config);
  const TrainingStats sequential = train(sequential_scheme, env, tc);

  DqnScheme batched_scheme(sc);
  const TrainingStats batched =
      train_batched(batched_scheme, env_config, tc, 1);

  EXPECT_EQ(batched.slots_trained, sequential.slots_trained);
  EXPECT_EQ(batched.early_stopped, sequential.early_stopped);
  EXPECT_EQ(batched.final_mean_reward, sequential.final_mean_reward);

  // The learned networks must be bit-identical: probe Q-values on a state.
  std::vector<double> probe(sc.history * 3, 0.25);
  const auto q_seq = sequential_scheme.agent().q_values(probe);
  const auto q_bat = batched_scheme.agent().q_values(probe);
  ASSERT_EQ(q_seq.size(), q_bat.size());
  for (std::size_t a = 0; a < q_seq.size(); ++a) {
    EXPECT_EQ(q_seq[a], q_bat[a]) << "action " << a;
  }
}

TEST(BatchedTrain, MultiReplicaRunsAndCountsTransitions) {
  DqnScheme::Config sc;
  sc.seed = 79;
  const EnvironmentConfig env_config = test_env_config(307);

  TrainerConfig tc;
  tc.max_slots = 400;
  tc.reward_window = 100;

  DqnScheme scheme(sc);
  const TrainingStats stats = train_batched(scheme, env_config, tc, 4);
  EXPECT_EQ(stats.slots_trained, tc.max_slots);
  EXPECT_FALSE(stats.early_stopped);
  EXPECT_TRUE(std::isfinite(stats.final_mean_reward));
  EXPECT_GT(scheme.agent().steps(), 0u);
}

}  // namespace
}  // namespace ctj::core
