// Parallel actor-learner trainer tests: the SPSC transition plumbing, the
// sharded replay buffer, the policy bus, and the headline properties —
// deterministic mode is bit-identical across thread counts, and a killed
// and resumed parallel run reproduces an uninterrupted one exactly (both
// from periodic epoch-gate cuts and from a finished run's mid-epoch final
// cut when the budget is extended).
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/train_parallel.hpp"
#include "core/trainer.hpp"
#include "io/container.hpp"
#include "rl/policy_bus.hpp"
#include "rl/replay_shard.hpp"

using namespace ctj;
using namespace ctj::core;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

DqnScheme::Config small_scheme_config() {
  DqnScheme::Config config;
  config.history = 2;
  config.hidden = {8};
  config.epsilon_decay_steps = 200;
  config.seed = 99;
  return config;
}

EnvironmentConfig small_env_config() {
  auto config = EnvironmentConfig::defaults();
  config.seed = 5;
  return config;
}

std::string scheme_bytes(const DqnScheme& scheme) {
  io::ContainerWriter out;
  scheme.save_state(out);
  return out.to_bytes();
}

void fill_record(double* rec, std::size_t state_dim, double tag) {
  rec[rl::kTransAction] = tag;
  rec[rl::kTransReward] = tag + 0.5;
  rec[rl::kTransDone] = 0.0;
  for (std::size_t i = 0; i < 2 * state_dim; ++i) {
    rec[rl::kTransState + i] = tag + static_cast<double>(i);
  }
}

}  // namespace

TEST(TransitionQueue, CapacityRoundsUpAndFifoOrder) {
  rl::TransitionQueue queue(5, /*state_dim=*/2);
  EXPECT_EQ(queue.capacity(), 8u);
  EXPECT_EQ(queue.stride(), rl::transition_stride(2));
  EXPECT_EQ(queue.try_front(), nullptr);  // empty

  for (std::size_t i = 0; i < queue.capacity(); ++i) {
    double* rec = queue.try_acquire();
    ASSERT_NE(rec, nullptr);
    fill_record(rec, 2, static_cast<double>(i));
    queue.commit();
  }
  EXPECT_EQ(queue.try_acquire(), nullptr);  // full

  for (std::size_t i = 0; i < queue.capacity(); ++i) {
    const double* rec = queue.try_front();
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec[rl::kTransAction], static_cast<double>(i));
    EXPECT_EQ(rec[rl::kTransReward], static_cast<double>(i) + 0.5);
    queue.pop();
  }
  EXPECT_EQ(queue.try_front(), nullptr);
}

TEST(TransitionQueue, ConcurrentStreamArrivesInOrderIntact) {
  constexpr std::size_t kCount = 20000;
  constexpr std::size_t kStateDim = 3;
  rl::TransitionQueue queue(8, kStateDim);

  std::thread producer([&] {
    for (std::size_t i = 0; i < kCount; ++i) {
      double* rec;
      while ((rec = queue.try_acquire()) == nullptr) std::this_thread::yield();
      fill_record(rec, kStateDim, static_cast<double>(i));
      queue.commit();
    }
  });

  std::size_t corrupt = 0;
  for (std::size_t i = 0; i < kCount; ++i) {
    const double* rec;
    while ((rec = queue.try_front()) == nullptr) std::this_thread::yield();
    const double tag = static_cast<double>(i);
    if (rec[rl::kTransAction] != tag) ++corrupt;
    for (std::size_t j = 0; j < 2 * kStateDim; ++j) {
      if (rec[rl::kTransState + j] != tag + static_cast<double>(j)) ++corrupt;
    }
    queue.pop();
  }
  producer.join();
  EXPECT_EQ(corrupt, 0u);
  EXPECT_EQ(queue.try_front(), nullptr);  // fully drained
}

TEST(ShardedReplay, WrapSampleAndRoundTrip) {
  constexpr std::size_t kStateDim = 2;
  const std::size_t stride = rl::transition_stride(kStateDim);
  rl::ShardedReplay replay(/*shards=*/2, /*capacity_per_shard=*/4, kStateDim);
  std::vector<double> rec(stride);
  // Shard 0 wraps (6 appends into capacity 4), shard 1 stays partial.
  for (std::size_t i = 0; i < 6; ++i) {
    fill_record(rec.data(), kStateDim, 100.0 + static_cast<double>(i));
    replay.append(0, rec.data());
  }
  for (std::size_t i = 0; i < 3; ++i) {
    fill_record(rec.data(), kStateDim, 200.0 + static_cast<double>(i));
    replay.append(1, rec.data());
  }
  EXPECT_EQ(replay.size(), 7u);

  // Identical RNG streams sample identical minibatches.
  rl::Matrix s1, n1, s2, n2;
  std::vector<std::size_t> a1, a2;
  std::vector<double> r1, r2;
  std::vector<std::uint8_t> d1, d2;
  Rng rng1(7), rng2(7);
  replay.sample_into(16, rng1, s1, n1, a1, r1, d1);
  replay.sample_into(16, rng2, s2, n2, a2, r2, d2);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(r1, r2);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.data()[i], s2.data()[i]);
  }
  // Every sampled reward is one of the appended ones (wrapped shard holds
  // only the last 4 of its 6).
  for (double reward : r1) {
    const double tag = reward - 0.5;
    const bool from_shard0 = tag >= 102.0 && tag <= 105.0;
    const bool from_shard1 = tag >= 200.0 && tag <= 202.0;
    EXPECT_TRUE(from_shard0 || from_shard1) << "sampled stale entry " << tag;
  }

  // save → load → save is byte-identical, and the loaded buffer samples
  // the same stream.
  io::ByteWriter w1;
  replay.save_state(w1);
  const std::string bytes = w1.take();
  rl::ShardedReplay loaded(2, 4, kStateDim);
  io::ByteReader in(bytes);
  loaded.load_state(in);
  in.expect_end();
  io::ByteWriter w2;
  loaded.save_state(w2);
  EXPECT_EQ(bytes, w2.take());

  Rng rng3(7);
  loaded.sample_into(16, rng3, s2, n2, a2, r2, d2);
  EXPECT_EQ(r1, r2);
}

TEST(ShardedReplay, TopologyMismatchThrowsWithoutMutating) {
  constexpr std::size_t kStateDim = 2;
  rl::ShardedReplay replay(2, 4, kStateDim);
  std::vector<double> rec(rl::transition_stride(kStateDim));
  fill_record(rec.data(), kStateDim, 1.0);
  replay.append(0, rec.data());
  io::ByteWriter w;
  replay.save_state(w);
  const std::string bytes = w.take();

  rl::ShardedReplay other(3, 4, kStateDim);  // different shard count
  fill_record(rec.data(), kStateDim, 9.0);
  other.append(2, rec.data());
  io::ByteReader in(bytes);
  try {
    other.load_state(in);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
  EXPECT_EQ(other.size(), 1u);  // untouched
}

TEST(PolicyBus, VersionsFetchAndStop) {
  rl::PolicyBus bus(3);
  std::vector<double> weights(3);
  double eps = -1.0;
  std::uint64_t last_seen = 0;
  EXPECT_EQ(bus.version(), 0u);
  EXPECT_FALSE(bus.fetch_if_newer(last_seen, weights, eps));

  bus.publish(std::vector<double>{1.0, 2.0, 3.0}, 0.25, 1);
  EXPECT_EQ(bus.version(), 1u);
  EXPECT_TRUE(bus.fetch_if_newer(last_seen, weights, eps));
  EXPECT_EQ(last_seen, 1u);
  EXPECT_EQ(weights, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(eps, 0.25);
  EXPECT_FALSE(bus.fetch_if_newer(last_seen, weights, eps));  // no news

  // wait_version returns immediately once satisfied, and a blocked waiter
  // is released by publish.
  EXPECT_TRUE(bus.wait_version(1, weights, eps));
  std::thread waiter([&bus] {
    std::vector<double> w(3);
    double e;
    EXPECT_TRUE(bus.wait_version(2, w, e));
    EXPECT_EQ(w[0], 4.0);
  });
  EXPECT_TRUE(bus.wait_waiters(1));
  bus.publish(std::vector<double>{4.0, 5.0, 6.0}, 0.1, 2);
  waiter.join();

  // stop() releases pending waits with false.
  std::thread stopped([&bus] {
    std::vector<double> w(3);
    double e;
    EXPECT_FALSE(bus.wait_version(99, w, e));
  });
  EXPECT_TRUE(bus.wait_waiters(1));
  bus.stop();
  stopped.join();
  EXPECT_FALSE(bus.wait_version(99, weights, eps));
}

TEST(TrainParallel, DeterministicModeIsBitIdenticalAcrossThreadCounts) {
  TrainerConfig config;
  config.max_slots = 400;  // 50 rounds of 4 actors × 2 replicas
  config.reward_window = 50;
  ParallelTrainerConfig pconfig;
  pconfig.actors = 4;
  pconfig.replicas_per_actor = 2;
  pconfig.sync_every_rounds = 8;

  std::string ref_bytes;
  std::vector<double> ref_rewards;
  for (std::size_t threads : {1u, 2u, 4u}) {
    std::vector<double> rewards;
    config.on_slot = [&](std::size_t, double r) { rewards.push_back(r); };
    pconfig.threads = threads;
    DqnScheme scheme(small_scheme_config());
    const auto stats =
        train_parallel(scheme, small_env_config(), config, pconfig);
    EXPECT_EQ(stats.slots_trained, 400u);
    if (threads == 1) {
      ref_bytes = scheme_bytes(scheme);
      ref_rewards = rewards;
      ASSERT_EQ(ref_rewards.size(), 400u);
    } else {
      EXPECT_EQ(rewards, ref_rewards) << "threads=" << threads;
      EXPECT_EQ(scheme_bytes(scheme), ref_bytes) << "threads=" << threads;
    }
  }
}

TEST(TrainParallel, KillResumeIsBitIdenticalFromEpochGateCut) {
  const std::string path = temp_path("ctj_resume_parallel.ctjs");
  std::filesystem::remove(path);

  TrainerConfig config;
  config.max_slots = 320;  // 80 rounds of 2 × 2
  config.reward_window = 50;
  ParallelTrainerConfig pconfig;
  pconfig.actors = 2;
  pconfig.replicas_per_actor = 2;
  pconfig.sync_every_rounds = 4;
  pconfig.threads = 2;

  std::vector<double> ref_rewards;
  config.on_slot = [&](std::size_t, double r) { ref_rewards.push_back(r); };
  DqnScheme ref(small_scheme_config());
  const auto ref_stats =
      train_parallel(ref, small_env_config(), config, pconfig);
  ASSERT_EQ(ref_rewards.size(), 320u);

  std::vector<double> rewards;
  config.on_slot = [&](std::size_t, double r) { rewards.push_back(r); };
  config.checkpoint = CheckpointOptions{path, 100, true};
  {
    TrainerConfig phase1 = config;
    phase1.max_slots = 160;
    DqnScheme scheme(small_scheme_config());
    train_parallel(scheme, small_env_config(), phase1, pconfig);
  }
  DqnScheme resumed(small_scheme_config());
  const auto stats =
      train_parallel(resumed, small_env_config(), config, pconfig);

  EXPECT_EQ(stats.slots_trained, 320u);
  EXPECT_EQ(stats.final_mean_reward, ref_stats.final_mean_reward);
  EXPECT_EQ(rewards, ref_rewards);
  EXPECT_EQ(scheme_bytes(resumed), scheme_bytes(ref));
  std::filesystem::remove(path);
}

TEST(TrainParallel, BudgetExtensionResumesFromMidEpochFinalCut) {
  const std::string path = temp_path("ctj_resume_parallel_ext.ctjs");
  std::filesystem::remove(path);

  TrainerConfig config;
  config.max_slots = 64;  // 16 rounds of 2 × 2
  config.reward_window = 20;
  ParallelTrainerConfig pconfig;
  pconfig.actors = 2;
  pconfig.replicas_per_actor = 2;
  pconfig.sync_every_rounds = 4;
  pconfig.threads = 2;

  std::vector<double> ref_rewards;
  config.on_slot = [&](std::size_t, double r) { ref_rewards.push_back(r); };
  DqnScheme ref(small_scheme_config());
  train_parallel(ref, small_env_config(), config, pconfig);
  ASSERT_EQ(ref_rewards.size(), 64u);

  // Phase 1 finishes a 24-slot run: its final cut lands at round 6 — a
  // round boundary but *not* an epoch gate (6 % 4 != 0). The resumed run
  // must re-apply the stored mid-epoch snapshot, not fresh weights.
  std::vector<double> rewards;
  config.on_slot = [&](std::size_t, double r) { rewards.push_back(r); };
  config.checkpoint = CheckpointOptions{path, 0, true};
  {
    TrainerConfig phase1 = config;
    phase1.max_slots = 24;
    DqnScheme scheme(small_scheme_config());
    train_parallel(scheme, small_env_config(), phase1, pconfig);
  }
  DqnScheme resumed(small_scheme_config());
  const auto stats =
      train_parallel(resumed, small_env_config(), config, pconfig);

  EXPECT_EQ(stats.slots_trained, 64u);
  EXPECT_EQ(rewards, ref_rewards);
  EXPECT_EQ(scheme_bytes(resumed), scheme_bytes(ref));
  std::filesystem::remove(path);
}

TEST(TrainParallel, ThroughputModeTrainsToBudgetAndResumes) {
  const std::string path = temp_path("ctj_resume_parallel_async.ctjs");
  std::filesystem::remove(path);

  TrainerConfig config;
  config.max_slots = 400;
  config.reward_window = 50;
  config.checkpoint = CheckpointOptions{path, 150, true};
  ParallelTrainerConfig pconfig;
  pconfig.actors = 2;
  pconfig.replicas_per_actor = 2;
  pconfig.sync_every_rounds = 4;
  pconfig.threads = 2;
  pconfig.deterministic = false;

  {
    TrainerConfig phase1 = config;
    phase1.max_slots = 200;
    DqnScheme scheme(small_scheme_config());
    const auto stats =
        train_parallel(scheme, small_env_config(), phase1, pconfig);
    EXPECT_EQ(stats.slots_trained, 200u);
    EXPECT_FALSE(stats.early_stopped);
  }
  // Resume picks the checkpoint up and completes the full budget. (No
  // bit-identity claim in throughput mode — only clean continuation.)
  DqnScheme resumed(small_scheme_config());
  const auto stats =
      train_parallel(resumed, small_env_config(), config, pconfig);
  EXPECT_EQ(stats.slots_trained, 400u);
  EXPECT_GT(resumed.agent().gradient_steps(), 0u);
  std::filesystem::remove(path);
}

TEST(TrainParallel, EarlyStopTriggersInBothModes) {
  TrainerConfig config;
  config.max_slots = 4000;
  config.reward_window = 40;
  config.target_mean_reward = -1e9;  // satisfied as soon as the window fills
  ParallelTrainerConfig pconfig;
  pconfig.actors = 2;
  pconfig.replicas_per_actor = 2;
  pconfig.threads = 2;

  for (bool deterministic : {true, false}) {
    pconfig.deterministic = deterministic;
    DqnScheme scheme(small_scheme_config());
    const auto stats =
        train_parallel(scheme, small_env_config(), config, pconfig);
    EXPECT_TRUE(stats.early_stopped);
    EXPECT_EQ(stats.slots_trained, 40u);
  }
}

TEST(TrainParallel, ResumeValidatesShardTopology) {
  const std::string path = temp_path("ctj_resume_parallel_cfg.ctjs");
  std::filesystem::remove(path);

  TrainerConfig config;
  config.max_slots = 64;
  config.reward_window = 20;
  config.checkpoint = CheckpointOptions{path, 0, true};
  ParallelTrainerConfig pconfig;
  pconfig.actors = 2;
  pconfig.replicas_per_actor = 2;
  pconfig.sync_every_rounds = 4;
  {
    DqnScheme scheme(small_scheme_config());
    train_parallel(scheme, small_env_config(), config, pconfig);
  }

  // Same total replica count but a different actor split: the TRAINPRG
  // digest passes, the PARTRNST one must not.
  ParallelTrainerConfig resplit = pconfig;
  resplit.actors = 4;
  resplit.replicas_per_actor = 1;
  DqnScheme scheme(small_scheme_config());
  try {
    train_parallel(scheme, small_env_config(), config, resplit);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }

  // A different schedule (sync cadence) is also part of the digest.
  ParallelTrainerConfig resync = pconfig;
  resync.sync_every_rounds = 8;
  DqnScheme scheme2(small_scheme_config());
  try {
    train_parallel(scheme2, small_env_config(), config, resync);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
  std::filesystem::remove(path);
}

TEST(TrainParallel, DeterministicModeRejectsIndivisibleBudget) {
  TrainerConfig config;
  config.max_slots = 10;  // not divisible by 2 × 2
  config.reward_window = 5;
  ParallelTrainerConfig pconfig;
  pconfig.actors = 2;
  pconfig.replicas_per_actor = 2;
  DqnScheme scheme(small_scheme_config());
  EXPECT_THROW(train_parallel(scheme, small_env_config(), config, pconfig),
               CheckFailure);
}
