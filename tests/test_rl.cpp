// Tests for the from-scratch RL stack: matrix algebra, MLP backprop
// (finite-difference gradient check), optimizers, replay buffer and the DQN
// agent (including the Fig. 4 architecture's parameter footprint).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>

#include "common/rng.hpp"
#include "rl/dqn.hpp"
#include "rl/matrix.hpp"
#include "rl/nn.hpp"
#include "rl/replay.hpp"

namespace ctj::rl {
namespace {

// --------------------------------------------------------------- matrix ----

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(Matrix, MatmulHandComputed) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, TransposedProductsMatchExplicit) {
  Rng rng(1);
  Matrix a = Matrix::he_normal(4, 3, rng);
  Matrix b = Matrix::he_normal(4, 5, rng);
  const Matrix atb = matmul_at_b(a, b);  // 3×5
  // Explicit transpose.
  Matrix at(3, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  const Matrix expected = matmul(at, b);
  for (std::size_t i = 0; i < atb.size(); ++i) {
    EXPECT_NEAR(atb.data()[i], expected.data()[i], 1e-12);
  }

  Matrix c = Matrix::he_normal(5, 3, rng);
  Matrix d = Matrix::he_normal(2, 3, rng);
  const Matrix cdt = matmul_a_bt(c, d);  // 5×2
  Matrix dt(3, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) dt.at(j, i) = d.at(i, j);
  }
  const Matrix expected2 = matmul(c, dt);
  for (std::size_t i = 0; i < cdt.size(); ++i) {
    EXPECT_NEAR(cdt.data()[i], expected2.data()[i], 1e-12);
  }
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), CheckFailure);
}

namespace {

Matrix reference_matmul(const Matrix& a, const Matrix& b) {
  // Plain ikj triple loop with the same per-element k-accumulation order the
  // blocked kernel promises to preserve.
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix random_dense(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

}  // namespace

TEST(Matrix, BlockedMatmulMatchesReference) {
  Rng rng(3);
  // Sizes straddling the blocking factors (32 in i, 128 in j), including
  // odd remainders and the shapes the Fig. 4 network actually multiplies.
  const std::size_t shapes[][3] = {
      {1, 24, 45}, {32, 45, 160}, {33, 7, 129}, {64, 64, 64}, {5, 200, 300}};
  for (const auto& s : shapes) {
    const Matrix a = random_dense(s[0], s[1], rng);
    const Matrix b = random_dense(s[1], s[2], rng);
    const Matrix expected = reference_matmul(a, b);
    Matrix c;
    matmul_into(c, a, b);
    ASSERT_EQ(c.rows(), expected.rows());
    ASSERT_EQ(c.cols(), expected.cols());
    for (std::size_t i = 0; i < c.size(); ++i) {
      // The kernel accumulates each element in the same k order as the
      // reference; the only admissible difference is the compiler
      // contracting mul+add in one loop but not the other, which is
      // bounded by ~1 ulp per term.
      const double tol =
          1e-12 * std::max(1.0, std::abs(expected.data()[i]));
      ASSERT_NEAR(c.data()[i], expected.data()[i], tol)
          << s[0] << "x" << s[1] << "x" << s[2] << " elem " << i;
    }
  }
}

TEST(Matrix, IntoVariantsReuseBuffersAndMatchAllocatingOnes) {
  Rng rng(4);
  const Matrix a = random_dense(6, 9, rng);
  const Matrix b = random_dense(9, 4, rng);
  Matrix c;
  matmul_into(c, a, b);
  const double* buffer = c.data();
  matmul_into(c, a, b);  // same shape: the allocation must be reused
  EXPECT_EQ(c.data(), buffer);
  const Matrix expected = matmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.data()[i], expected.data()[i]);
  }

  const Matrix x = random_dense(9, 6, rng);
  Matrix atb;
  matmul_at_b_into(atb, x, b);
  const Matrix atb_expected = matmul_at_b(x, b);
  for (std::size_t i = 0; i < atb.size(); ++i) {
    EXPECT_EQ(atb.data()[i], atb_expected.data()[i]);
  }

  const Matrix y = random_dense(4, 9, rng);
  Matrix abt;
  matmul_a_bt_into(abt, a, y);
  const Matrix abt_expected = matmul_a_bt(a, y);
  for (std::size_t i = 0; i < abt.size(); ++i) {
    EXPECT_EQ(abt.data()[i], abt_expected.data()[i]);
  }
}

TEST(Matrix, AtBAccAccumulatesOnTopOfExisting) {
  Rng rng(5);
  const Matrix a = random_dense(7, 3, rng);
  const Matrix b = random_dense(7, 5, rng);
  Matrix acc(3, 5, 1.0);
  matmul_at_b_acc(acc, a, b);
  const Matrix product = matmul_at_b(a, b);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    // Near, not equal: accumulating term-by-term on top of 1.0 associates
    // the sum differently than 1.0 + (full product).
    EXPECT_NEAR(acc.data()[i], 1.0 + product.data()[i], 1e-12);
  }

  // Accumulation from zero is exactly the product — the case the backward
  // pass relies on after zero_grad.
  Matrix from_zero(3, 5, 0.0);
  matmul_at_b_acc(from_zero, a, b);
  for (std::size_t i = 0; i < from_zero.size(); ++i) {
    EXPECT_EQ(from_zero.data()[i], product.data()[i]);
  }
}

TEST(Matrix, ResizeReusesCapacityAndResetsContents) {
  Matrix m(10, 10, 3.0);
  m.resize(4, 6, -1.0);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 6u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.data()[i], -1.0);
  }
  m.resize(2, 2);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Matrix, SaveLoadRoundTrip) {
  Rng rng(2);
  Matrix m = Matrix::he_normal(7, 5, rng);
  std::stringstream ss;
  m.save(ss);
  const Matrix loaded = Matrix::load(ss);
  ASSERT_EQ(loaded.rows(), 7u);
  ASSERT_EQ(loaded.cols(), 5u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.data()[i], m.data()[i]);
  }
}

// ------------------------------------------------------------------ MLP ----

TEST(Mlp, OutputShape) {
  Rng rng(3);
  Mlp net({4, 8, 8, 2}, rng);
  Matrix x(5, 4, 0.1);
  const Matrix y = net.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Mlp, ForwardConstMatchesForward) {
  Rng rng(4);
  Mlp net({3, 6, 2}, rng);
  Matrix x(2, 3);
  Rng data_rng(5);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = data_rng.normal();
  const Matrix a = net.forward(x);
  const Matrix b = net.forward_const(x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Mlp, ParamCountFig4Architecture) {
  // The paper's deployed network stores ~10 664 float parameters (~42.7 KB).
  // Our Fig. 4 instantiation (3·8 inputs, two 45-neuron hidden layers,
  // 16·10 outputs) has 10 555 parameters ≈ 42.2 KB as 32-bit floats.
  Rng rng(6);
  Mlp net({24, 45, 45, 160}, rng);
  EXPECT_EQ(net.param_count(),
            24u * 45 + 45 + 45u * 45 + 45 + 45u * 160 + 160);
  EXPECT_EQ(net.param_count(), 10555u);
  EXPECT_NEAR(static_cast<double>(net.param_count() * 4) / 1024.0, 42.7, 2.0);
}

TEST(Mlp, GradientCheckFiniteDifferences) {
  // The decisive correctness test for manual backprop: analytic gradients
  // must match central finite differences on a scalar loss.
  Rng rng(7);
  Mlp net({3, 5, 4, 2}, rng);
  Matrix x(4, 3);
  Rng data_rng(8);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = data_rng.normal();

  // Loss: sum of squares of outputs → dL/dy = 2y.
  auto loss = [&](Mlp& n) {
    const Matrix y = n.forward_const(x);
    double l = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) l += y.data()[i] * y.data()[i];
    return l;
  };

  const Matrix y = net.forward(x);
  Matrix grad(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i) grad.data()[i] = 2.0 * y.data()[i];
  net.zero_grad();
  net.backward(grad);

  const double eps = 1e-6;
  for (std::size_t layer = 0; layer < net.num_layers(); ++layer) {
    auto& w = net.layer(layer).weights();
    const auto& gw = net.layer(layer).weight_grad();
    for (std::size_t k = 0; k < w.size(); k += 3) {  // sample every 3rd param
      const double orig = w.data()[k];
      w.data()[k] = orig + eps;
      const double lp = loss(net);
      w.data()[k] = orig - eps;
      const double lm = loss(net);
      w.data()[k] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(gw.data()[k], numeric, 1e-4 * (1.0 + std::abs(numeric)))
          << "layer " << layer << " weight " << k;
    }
    auto& b = net.layer(layer).bias();
    const auto& gb = net.layer(layer).bias_grad();
    for (std::size_t k = 0; k < b.size(); ++k) {
      const double orig = b.data()[k];
      b.data()[k] = orig + eps;
      const double lp = loss(net);
      b.data()[k] = orig - eps;
      const double lm = loss(net);
      b.data()[k] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(gb.data()[k], numeric, 1e-4 * (1.0 + std::abs(numeric)))
          << "layer " << layer << " bias " << k;
    }
  }
}

TEST(Mlp, SgdLearnsLinearRegression) {
  Rng rng(9);
  Mlp net({2, 1}, rng);  // single linear layer
  Rng data_rng(10);
  // Target: y = 3x0 − 2x1 + 0.5.
  for (int step = 0; step < 4000; ++step) {
    Matrix x(8, 2);
    Matrix target(8, 1);
    for (std::size_t r = 0; r < 8; ++r) {
      x.at(r, 0) = data_rng.normal();
      x.at(r, 1) = data_rng.normal();
      target.at(r, 0) = 3.0 * x.at(r, 0) - 2.0 * x.at(r, 1) + 0.5;
    }
    const Matrix y = net.forward(x);
    Matrix grad(8, 1);
    for (std::size_t r = 0; r < 8; ++r) {
      grad.at(r, 0) = 2.0 * (y.at(r, 0) - target.at(r, 0)) / 8.0;
    }
    net.zero_grad();
    net.backward(grad);
    sgd_step(net, 0.05);
  }
  EXPECT_NEAR(net.layer(0).weights().at(0, 0), 3.0, 0.01);
  EXPECT_NEAR(net.layer(0).weights().at(1, 0), -2.0, 0.01);
  EXPECT_NEAR(net.layer(0).bias().at(0, 0), 0.5, 0.01);
}

TEST(Mlp, AdamLearnsNonlinearFunction) {
  Rng rng(11);
  Mlp net({1, 24, 24, 1}, rng);
  AdamOptimizer adam(net, {.lr = 3e-3, .beta1 = 0.9, .beta2 = 0.999, .epsilon = 1e-8});
  Rng data_rng(12);
  for (int step = 0; step < 3000; ++step) {
    Matrix x(16, 1);
    Matrix target(16, 1);
    for (std::size_t r = 0; r < 16; ++r) {
      const double v = data_rng.uniform(-1.0, 1.0);
      x.at(r, 0) = v;
      target.at(r, 0) = std::sin(3.0 * v);
    }
    const Matrix y = net.forward(x);
    Matrix grad(16, 1);
    for (std::size_t r = 0; r < 16; ++r) {
      grad.at(r, 0) = 2.0 * (y.at(r, 0) - target.at(r, 0)) / 16.0;
    }
    net.zero_grad();
    net.backward(grad);
    adam.step(net);
  }
  // Evaluate fit.
  double mse = 0.0;
  for (double v = -0.9; v <= 0.9; v += 0.1) {
    Matrix x(1, 1);
    x.at(0, 0) = v;
    const double y = net.forward_const(x).at(0, 0);
    mse += (y - std::sin(3.0 * v)) * (y - std::sin(3.0 * v));
  }
  EXPECT_LT(mse / 19.0, 0.02);
}

TEST(Mlp, CopyParametersMakesNetworksIdentical) {
  Rng rng(13);
  Mlp a({4, 6, 3}, rng), b({4, 6, 3}, rng);
  b.copy_parameters_from(a);
  Matrix x(2, 4, 0.3);
  const Matrix ya = a.forward_const(x), yb = b.forward_const(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(Mlp, SaveLoadRoundTrip) {
  Rng rng(14);
  Mlp a({5, 7, 2}, rng), b({5, 7, 2}, rng);
  std::stringstream ss;
  a.save(ss);
  b.load(ss);
  Matrix x(3, 5, -0.2);
  const Matrix ya = a.forward_const(x), yb = b.forward_const(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(Mlp, HuberGradClamps) {
  EXPECT_DOUBLE_EQ(huber_grad(0.3), 0.3);
  EXPECT_DOUBLE_EQ(huber_grad(5.0), 1.0);
  EXPECT_DOUBLE_EQ(huber_grad(-5.0), -1.0);
}

// --------------------------------------------------------------- replay ----

TEST(Replay, PushAndSize) {
  ReplayBuffer buf(4);
  for (int i = 0; i < 3; ++i) buf.push({{1.0}, 0, 0.0, {1.0}, false});
  EXPECT_EQ(buf.size(), 3u);
}

TEST(Replay, RingOverwritesOldest) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) {
    buf.push({{static_cast<double>(i)}, 0, 0.0, {0.0}, false});
  }
  EXPECT_EQ(buf.size(), 3u);
  // Entries 0 and 1 must have been overwritten by 3 and 4.
  std::set<double> seen;
  for (std::size_t i = 0; i < buf.size(); ++i) seen.insert(buf.at(i).state[0]);
  EXPECT_EQ(seen.count(0.0), 0u);
  EXPECT_EQ(seen.count(1.0), 0u);
  EXPECT_EQ(seen.count(4.0), 1u);
}

TEST(Replay, WraparoundReplacesOldestFirst) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 4; ++i) {
    buf.push({{static_cast<double>(i)}, 0, 0.0, {0.0}, false});
  }
  // The ring cursor starts at slot 0 once full: pushing 3 evicts 0 (the
  // oldest), leaving 1 and 2 in place.
  EXPECT_DOUBLE_EQ(buf.at(0).state[0], 3.0);
  EXPECT_DOUBLE_EQ(buf.at(1).state[0], 1.0);
  EXPECT_DOUBLE_EQ(buf.at(2).state[0], 2.0);
  buf.push({{4.0}, 0, 0.0, {0.0}, false});  // evicts 1
  buf.push({{5.0}, 0, 0.0, {0.0}, false});  // evicts 2
  buf.push({{6.0}, 0, 0.0, {0.0}, false});  // cursor wrapped: evicts 3
  EXPECT_DOUBLE_EQ(buf.at(0).state[0], 6.0);
  EXPECT_DOUBLE_EQ(buf.at(1).state[0], 4.0);
  EXPECT_DOUBLE_EQ(buf.at(2).state[0], 5.0);
}

TEST(Replay, ClearThenRefillRestartsRing) {
  ReplayBuffer buf(2);
  for (int i = 0; i < 3; ++i) {
    buf.push({{static_cast<double>(i)}, 0, 0.0, {0.0}, false});
  }
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 2u);
  // A refilled buffer behaves exactly like a fresh one, cursor included.
  for (int i = 7; i < 10; ++i) {
    buf.push({{static_cast<double>(i)}, 0, 0.0, {0.0}, false});
  }
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_DOUBLE_EQ(buf.at(0).state[0], 9.0);
  EXPECT_DOUBLE_EQ(buf.at(1).state[0], 8.0);
}

TEST(Replay, SampleIsDeterministicGivenSeed) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 8; ++i) {
    buf.push({{static_cast<double>(i)}, 0, 0.0, {0.0}, false});
  }
  Rng a(42);
  Rng b(42);
  const auto sample_a = buf.sample(64, a);
  const auto sample_b = buf.sample(64, b);
  ASSERT_EQ(sample_a.size(), sample_b.size());
  for (std::size_t i = 0; i < sample_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(sample_a[i]->state[0], sample_b[i]->state[0]);
  }
}

TEST(Replay, SampleFromEmptyThrows) {
  ReplayBuffer buf(2);
  Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), CheckFailure);
}

TEST(Replay, SampleCoversBuffer) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 8; ++i) {
    buf.push({{static_cast<double>(i)}, 0, 0.0, {0.0}, false});
  }
  Rng rng(2);
  std::set<double> seen;
  for (const auto* t : buf.sample(400, rng)) seen.insert(t->state[0]);
  EXPECT_EQ(seen.size(), 8u);
}

// ------------------------------------------------------------------ DQN ----

DqnConfig small_config() {
  DqnConfig c;
  c.state_dim = 2;
  c.num_actions = 2;
  c.hidden = {16, 16};
  c.learning_rate = 2e-3;
  c.gamma = 0.5;
  c.reward_scale = 1.0;
  c.epsilon_start = 1.0;
  c.epsilon_end = 0.05;
  c.epsilon_decay_steps = 500;
  c.batch_size = 16;
  c.replay_capacity = 2000;
  c.min_replay_before_training = 64;
  c.target_sync_interval = 50;
  c.seed = 3;
  return c;
}

TEST(Dqn, EpsilonDecaysLinearly) {
  DqnAgent agent(small_config());
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
  const std::vector<double> s = {0.0, 0.0};
  for (int i = 0; i < 250; ++i) {
    agent.observe({s, 0, 0.0, s, false});
  }
  EXPECT_NEAR(agent.epsilon(), 0.525, 0.01);
  for (int i = 0; i < 500; ++i) {
    agent.observe({s, 0, 0.0, s, false});
  }
  EXPECT_NEAR(agent.epsilon(), 0.05, 1e-9);
}

TEST(Dqn, QValuesHaveActionArity) {
  DqnAgent agent(small_config());
  const auto q = agent.q_values(std::vector<double>{0.1, -0.3});
  EXPECT_EQ(q.size(), 2u);
}

TEST(Dqn, LearnsContextualBandit) {
  // Two states; action must match the state to earn reward 1 (else 0).
  DqnAgent agent(small_config());
  Rng rng(4);
  for (int step = 0; step < 3000; ++step) {
    const bool which = rng.bernoulli(0.5);
    const std::vector<double> s = {which ? 1.0 : 0.0, which ? 0.0 : 1.0};
    const std::size_t a = agent.act(s);
    const double r = (a == (which ? 1u : 0u)) ? 1.0 : 0.0;
    const bool next_which = rng.bernoulli(0.5);
    const std::vector<double> s2 = {next_which ? 1.0 : 0.0,
                                    next_which ? 0.0 : 1.0};
    agent.observe({s, a, r, s2, false});
  }
  EXPECT_EQ(agent.act_greedy(std::vector<double>{0.0, 1.0}), 0u);
  EXPECT_EQ(agent.act_greedy(std::vector<double>{1.0, 0.0}), 1u);
}

TEST(Dqn, LearnsDelayedRewardChain) {
  // A 2-step chain: from state A, action 1 leads to state B (reward 0),
  // where action 1 earns reward 1. Requires bootstrapping through γ.
  auto config = small_config();
  config.gamma = 0.9;
  DqnAgent agent(config);
  Rng rng(5);
  const std::vector<double> A = {1.0, 0.0};
  const std::vector<double> B = {0.0, 1.0};
  for (int episode = 0; episode < 1200; ++episode) {
    const std::size_t a0 = agent.act(A);
    if (a0 == 1) {
      agent.observe({A, a0, 0.0, B, false});
      const std::size_t a1 = agent.act(B);
      agent.observe({B, a1, a1 == 1 ? 1.0 : 0.0, A, true});
    } else {
      agent.observe({A, a0, 0.0, A, true});
    }
  }
  EXPECT_EQ(agent.act_greedy(A), 1u);
  EXPECT_EQ(agent.act_greedy(B), 1u);
  // Q(A, 1) should approach γ·1 = 0.9.
  const auto qa = agent.q_values(A);
  EXPECT_NEAR(qa[1], 0.9, 0.25);
}

TEST(Dqn, SaveLoadPreservesPolicy) {
  DqnAgent a(small_config());
  const std::vector<double> s = {0.4, -0.8};
  // Perturb the network with a few training steps.
  for (int i = 0; i < 200; ++i) {
    a.observe({s, i % 2 == 0 ? 0u : 1u, 0.3, s, false});
  }
  const std::string path = "/tmp/ctj_dqn_test.bin";
  a.save_file(path);
  DqnAgent b(small_config());
  b.load_file(path);
  const auto qa = a.q_values(s), qb = b.q_values(s);
  for (std::size_t i = 0; i < qa.size(); ++i) {
    EXPECT_DOUBLE_EQ(qa[i], qb[i]);
  }
  std::filesystem::remove(path);
}

TEST(Dqn, DeployedSizeMatchesPaperScale) {
  DqnConfig c;  // defaults: 24-45-45-160
  DqnAgent agent(c);
  EXPECT_EQ(agent.param_count(), 10555u);
  EXPECT_NEAR(static_cast<double>(agent.deployed_size_bytes()) / 1024.0, 42.7,
              2.0);
}

TEST(Dqn, TrainStepRequiresMinimumReplay) {
  DqnAgent agent(small_config());
  EXPECT_FALSE(agent.train_step().has_value());
}

TEST(Dqn, EpsilonGreedyExploresUniformlyOverAllActions) {
  // Textbook convention: with probability ε the agent draws uniformly over
  // ALL actions, so the greedy action's total frequency is 1−ε+ε/A and every
  // other action's is ε/A.
  auto config = small_config();
  config.num_actions = 4;
  config.hidden = {8, 8};
  config.epsilon_start = 0.4;
  config.epsilon_end = 0.4;  // hold ε constant for the frequency estimate
  DqnAgent agent(config);
  const std::vector<double> state = {0.3, -0.2};
  const std::size_t greedy = agent.act_greedy(state);
  const int trials = 20000;
  std::vector<int> counts(config.num_actions, 0);
  for (int i = 0; i < trials; ++i) ++counts[agent.act(state)];
  const double eps = 0.4;
  const double uniform = eps / static_cast<double>(config.num_actions);
  for (std::size_t a = 0; a < config.num_actions; ++a) {
    const double freq = static_cast<double>(counts[a]) / trials;
    const double expected = (a == greedy) ? 1.0 - eps + uniform : uniform;
    EXPECT_NEAR(freq, expected, 0.02) << "action " << a;
  }
}

}  // namespace
}  // namespace ctj::rl
