// Property-style parameterized sweeps across modules: invariants that must
// hold over whole parameter grids, not just at single points.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/link.hpp"
#include "common/rng.hpp"
#include "core/environment.hpp"
#include "mdp/analysis.hpp"
#include "phy/convolutional.hpp"
#include "phy/emulation.hpp"
#include "phy/fft.hpp"
#include "phy/qam.hpp"
#include "phy/zigbee_phy.hpp"

namespace ctj {
namespace {

// ------------------------------------------------------------------- FFT ----

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, RoundTripAndParseval) {
  const std::size_t n = GetParam();
  Rng rng(n);
  phy::IqBuffer x(n);
  for (auto& v : x) v = phy::Cplx(rng.normal(), rng.normal());
  const phy::IqBuffer X = phy::fft(x);
  EXPECT_NEAR(phy::energy(X) / static_cast<double>(n), phy::energy(x), 1e-6);
  const phy::IqBuffer y = phy::ifft(X);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512));

// --------------------------------------------------------- convolutional ----

class ConvLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvLengths, RoundTripAtAllRates) {
  Rng rng(GetParam());
  const phy::Bits info = phy::random_bits(GetParam(), rng);
  for (auto rate : {phy::CodeRate::kRate1of2, phy::CodeRate::kRate2of3,
                    phy::CodeRate::kRate3of4}) {
    const phy::Bits coded = phy::ConvolutionalCode::encode(info, rate);
    EXPECT_EQ(phy::ConvolutionalCode::decode(coded, rate), info);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ConvLengths,
                         ::testing::Values(6, 12, 48, 144, 216, 288));

// ------------------------------------------------------------------- QAM ----

TEST(QamProperty, QuantizeIsIdempotent) {
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    const phy::Cplx t(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0));
    const double alpha = rng.uniform(0.1, 3.0);
    const phy::Cplx q1 = phy::Qam64::quantize(t, alpha);
    const phy::Cplx q2 = phy::Qam64::quantize(q1, alpha);
    EXPECT_NEAR(std::abs(q2 - q1), 0.0, 1e-12);
  }
}

TEST(QamProperty, QuantizationErrorScalesQuadratically) {
  // E(α; scaled targets) == s² · E(α/s; targets) — homogeneity of Eq. (1).
  Rng rng(10);
  phy::IqBuffer targets(32);
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  const double s = 2.5;
  phy::IqBuffer scaled = targets;
  for (auto& t : scaled) t *= s;
  const double alpha = 1.3;
  EXPECT_NEAR(phy::quantization_error(scaled, alpha * s),
              s * s * phy::quantization_error(targets, alpha), 1e-9);
}

// -------------------------------------------------------------- chip table ----

class ChipSymbols : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChipSymbols, DespreadIsExactOnEverySymbolUnderBias) {
  // A constant DC bias on the soft chips must not flip the decision
  // (sequences are balanced enough).
  const std::size_t sym = GetParam();
  const auto& chips = phy::ChipTable::chips(sym);
  std::vector<double> soft(32);
  for (std::size_t c = 0; c < 32; ++c) {
    soft[c] = (chips[c] ? 1.0 : -1.0) + 0.15;
  }
  EXPECT_EQ(phy::ChipTable::despread(soft), sym);
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, ChipSymbols,
                         ::testing::Range<std::size_t>(0, 16));

// ------------------------------------------------------------------ link ----

TEST(LinkProperty, PerMonotoneInJammerPower) {
  channel::ZigbeeLink link;
  double prev = -1.0;
  for (double jam_dbm = 0.0; jam_dbm <= 30.0; jam_dbm += 2.0) {
    const double per = link.per_with_jammer(0.0, 3.0, jam_dbm, 8.0,
                                            channel::JammingSignalType::kEmuBee);
    EXPECT_GE(per, prev - 1e-12);
    prev = per;
  }
}

TEST(LinkProperty, PerMonotoneInTxPower) {
  channel::ZigbeeLink link;
  double prev = 2.0;
  for (double tx_dbm = -10.0; tx_dbm <= 10.0; tx_dbm += 1.0) {
    const double per = link.per_with_jammer(tx_dbm, 3.0, 14.0, 8.0,
                                            channel::JammingSignalType::kEmuBee);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
}

TEST(LinkProperty, OverlapFractionMonotoneInInterference) {
  channel::ZigbeeLink link;
  double prev = 100.0;
  for (double overlap = 0.0; overlap <= 1.0; overlap += 0.1) {
    const double sinr = link.sinr_db(-70.0, -65.0,
                                     channel::JammingSignalType::kEmuBee,
                                     overlap);
    EXPECT_LE(sinr, prev + 1e-12);
    prev = sinr;
  }
}

// ------------------------------------------------------------ environment ----

class EnvKernelGrid
    : public ::testing::TestWithParam<std::tuple<int, JammerPowerMode>> {};

TEST_P(EnvKernelGrid, RewardsBoundedAndOutcomesConsistent) {
  auto config = core::EnvironmentConfig::defaults();
  config.num_channels = std::get<0>(GetParam());
  config.channels_per_sweep = 1;
  config.mode = std::get<1>(GetParam());
  config.seed = static_cast<std::uint64_t>(config.num_channels) * 7;
  core::CompetitionEnvironment env(config);
  Rng rng(3);
  const double min_reward =
      -config.tx_levels.back() - config.loss_hop - config.loss_jam;
  for (int slot = 0; slot < 3000; ++slot) {
    const int channel = rng.uniform_int(0, config.num_channels - 1);
    const auto power = rng.index(config.num_power_levels());
    const auto step = env.step(channel, power);
    EXPECT_GE(step.reward, min_reward);
    EXPECT_LE(step.reward, -config.tx_levels.front());
    EXPECT_EQ(step.success,
              step.outcome != core::SlotOutcome::kJammedFailed);
    // The hidden counter never exceeds the cycle bound.
    if (env.hidden_kind() ==
        core::CompetitionEnvironment::HiddenKind::kCounting) {
      EXPECT_GE(env.hidden_n(), 1);
      EXPECT_LE(env.hidden_n(), config.sweep_cycle() - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CycleAndMode, EnvKernelGrid,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(JammerPowerMode::kMaxPower,
                                         JammerPowerMode::kRandomPower)));

// ------------------------------------------------------------------- MDP ----

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, OptimalValueDominatesArbitraryPolicies) {
  auto params = mdp::AntijamParams::defaults();
  params.gamma = GetParam();
  params.mode = JammerPowerMode::kRandomPower;
  const mdp::AntijamMdp model(params);
  mdp::ValueIterationOptions options;
  options.gamma = params.gamma;
  const auto sol = mdp::value_iteration(model.mdp(), options);
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::size_t> policy(model.num_states());
    for (auto& a : policy) a = rng.index(model.num_actions());
    const auto v_pi =
        mdp::policy_evaluation(model.mdp(), params.gamma, policy);
    for (std::size_t s = 0; s < v_pi.size(); ++s) {
      EXPECT_LE(v_pi[s], sol.value[s] + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.99));

// --------------------------------------------------------------- ZigBee ----

class SamplesPerChip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SamplesPerChip, ModemRoundTripAtAnyResolution) {
  phy::ZigbeePhy phy(GetParam());
  Rng rng(GetParam() * 13);
  std::vector<std::size_t> syms(50);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  const auto wave = phy.modulate_symbols(syms);
  EXPECT_EQ(phy.demodulate_symbols(wave, syms.size()), syms);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, SamplesPerChip,
                         ::testing::Values(2, 3, 4, 8, 10));

}  // namespace
}  // namespace ctj
