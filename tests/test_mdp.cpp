// Tests for the MDP substrate: the generic solver, the paper's anti-jamming
// MDP (Eqs. 3–14), and the structural results (Lemmas III.2–III.3,
// Theorems III.4–III.5).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "mdp/analysis.hpp"
#include "mdp/antijam_mdp.hpp"
#include "mdp/mdp.hpp"
#include "mdp/value_iteration.hpp"

namespace ctj::mdp {
namespace {

// ------------------------------------------------------------ generic MDP ----

TEST(Mdp, ValidateAcceptsProperKernel) {
  Mdp m(2, 1);
  m.set_transition(0, 0, 1, 1.0);
  m.set_transition(1, 0, 0, 0.5);
  m.set_transition(1, 0, 1, 0.5);
  EXPECT_NO_THROW(m.validate());
}

TEST(Mdp, ValidateRejectsNonStochasticRow) {
  Mdp m(2, 1);
  m.set_transition(0, 0, 1, 0.7);
  m.set_transition(1, 0, 0, 1.0);
  EXPECT_THROW(m.validate(), CheckFailure);
}

TEST(Mdp, AddTransitionAccumulates) {
  Mdp m(2, 1);
  m.add_transition(0, 0, 1, 0.3);
  m.add_transition(0, 0, 1, 0.7);
  EXPECT_DOUBLE_EQ(m.transition(0, 0, 1), 1.0);
}

TEST(ValueIteration, TwoStateClosedForm) {
  // State 0: action 0 gives reward 1 and stays; γ = 0.5 → V = 1/(1−γ) = 2.
  Mdp m(1, 1);
  m.set_reward(0, 0, 1.0);
  m.set_transition(0, 0, 0, 1.0);
  ValueIterationOptions opt;
  opt.gamma = 0.5;
  const Solution sol = value_iteration(m, opt);
  EXPECT_NEAR(sol.value[0], 2.0, 1e-8);
}

TEST(ValueIteration, PicksBetterAction) {
  // Two actions in one absorbing state: reward 1 vs reward 3.
  Mdp m(1, 2);
  m.set_reward(0, 0, 1.0);
  m.set_reward(0, 1, 3.0);
  m.set_transition(0, 0, 0, 1.0);
  m.set_transition(0, 1, 0, 1.0);
  ValueIterationOptions opt;
  opt.gamma = 0.9;
  const Solution sol = value_iteration(m, opt);
  EXPECT_EQ(sol.policy[0], 1u);
  EXPECT_NEAR(sol.value[0], 30.0, 1e-6);
}

TEST(ValueIteration, HandComputedChain) {
  // s0 --a0--> s1 (r=0); s1 absorbing r=1 per step. γ=0.9.
  // V(s1) = 10, V(s0) = 0 + 0.9·10 = 9.
  Mdp m(2, 1);
  m.set_reward(0, 0, 0.0);
  m.set_reward(1, 0, 1.0);
  m.set_transition(0, 0, 1, 1.0);
  m.set_transition(1, 0, 1, 1.0);
  ValueIterationOptions opt;
  opt.gamma = 0.9;
  const Solution sol = value_iteration(m, opt);
  EXPECT_NEAR(sol.value[1], 10.0, 1e-6);
  EXPECT_NEAR(sol.value[0], 9.0, 1e-6);
}

TEST(ValueIteration, BellmanResidualIsZeroAtFixpoint) {
  // Theorem III.1 / Banach: the solution must satisfy V = T V.
  AntijamParams params = AntijamParams::defaults();
  params.mode = JammerPowerMode::kRandomPower;
  const AntijamMdp model(params);
  const Solution sol = solve(model);
  const auto backed_up = bellman_backup(model.mdp(), params.gamma, sol.value);
  for (std::size_t s = 0; s < sol.value.size(); ++s) {
    EXPECT_NEAR(backed_up[s], sol.value[s], 1e-7);
  }
}

TEST(ValueIteration, ContractionConvergesFromAnyStart) {
  // Run the Bellman operator from two different initializations; both must
  // land on the same fixed point (uniqueness per the contraction argument).
  AntijamParams params = AntijamParams::defaults();
  const AntijamMdp model(params);
  std::vector<double> v1(model.num_states(), 0.0);
  std::vector<double> v2(model.num_states(), 500.0);
  for (int it = 0; it < 500; ++it) {
    v1 = bellman_backup(model.mdp(), params.gamma, v1);
    v2 = bellman_backup(model.mdp(), params.gamma, v2);
  }
  for (std::size_t s = 0; s < v1.size(); ++s) {
    EXPECT_NEAR(v1[s], v2[s], 1e-6);
  }
}

TEST(ValueIteration, PolicyEvaluationMatchesOptimalForGreedyPolicy) {
  AntijamParams params = AntijamParams::defaults();
  params.mode = JammerPowerMode::kRandomPower;
  const AntijamMdp model(params);
  const Solution sol = solve(model);
  const auto v_pi =
      policy_evaluation(model.mdp(), params.gamma, sol.policy);
  for (std::size_t s = 0; s < v_pi.size(); ++s) {
    EXPECT_NEAR(v_pi[s], sol.value[s], 1e-6);
  }
}

// -------------------------------------------------------- anti-jam MDP ----

TEST(AntijamParams, DefaultsMatchPaper) {
  const auto p = AntijamParams::defaults();
  EXPECT_EQ(p.sweep_cycle, 4);
  EXPECT_EQ(p.tx_levels.size(), 10u);
  EXPECT_DOUBLE_EQ(p.tx_levels.front(), 6.0);
  EXPECT_DOUBLE_EQ(p.tx_levels.back(), 15.0);
  EXPECT_DOUBLE_EQ(p.jam_levels.front(), 11.0);
  EXPECT_DOUBLE_EQ(p.jam_levels.back(), 20.0);
  EXPECT_DOUBLE_EQ(p.loss_jam, 100.0);
  EXPECT_DOUBLE_EQ(p.loss_hop, 50.0);
}

TEST(AntijamParams, MaxPowerModeSuccessProb) {
  const auto p = AntijamParams::defaults();
  // Max jammer power is 20; no tx level in [6,15] reaches it.
  for (std::size_t i = 0; i < p.tx_levels.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.success_prob(i), 0.0);
  }
}

TEST(AntijamParams, RandomPowerModeSuccessProb) {
  auto p = AntijamParams::defaults();
  p.mode = JammerPowerMode::kRandomPower;
  // tx level 15 survives jam levels 11..15 → 5/10.
  EXPECT_DOUBLE_EQ(p.success_prob(9), 0.5);
  // tx level 11 survives only jam level 11 → 1/10.
  EXPECT_DOUBLE_EQ(p.success_prob(5), 0.1);
  // tx level 6..10 survive nothing.
  EXPECT_DOUBLE_EQ(p.success_prob(0), 0.0);
}

class AntijamKernel
    : public ::testing::TestWithParam<std::tuple<int, JammerPowerMode>> {};

TEST_P(AntijamKernel, AllRowsAreDistributions) {
  auto params = AntijamParams::defaults();
  params.sweep_cycle = std::get<0>(GetParam());
  params.mode = std::get<1>(GetParam());
  const AntijamMdp model(params);
  EXPECT_NO_THROW(model.mdp().validate(1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    SweepAndMode, AntijamKernel,
    ::testing::Combine(::testing::Values(2, 3, 4, 8, 16),
                       ::testing::Values(JammerPowerMode::kMaxPower,
                                         JammerPowerMode::kRandomPower)));

TEST(AntijamMdp, StateIndexing) {
  const AntijamMdp model(AntijamParams::defaults());
  EXPECT_EQ(model.num_states(), 5u);  // n=1..3, T_J, J
  EXPECT_EQ(model.state_n(1), 0u);
  EXPECT_EQ(model.state_n(3), 2u);
  EXPECT_EQ(model.state_tj(), 3u);
  EXPECT_EQ(model.state_j(), 4u);
  EXPECT_THROW(model.state_n(0), ctj::CheckFailure);
  EXPECT_THROW(model.state_n(4), ctj::CheckFailure);
}

TEST(AntijamMdp, ActionIndexing) {
  const AntijamMdp model(AntijamParams::defaults());
  EXPECT_EQ(model.num_actions(), 20u);
  EXPECT_FALSE(model.is_hop(model.action_stay(3)));
  EXPECT_TRUE(model.is_hop(model.action_hop(3)));
  EXPECT_EQ(model.power_index_of(model.action_stay(7)), 7u);
  EXPECT_EQ(model.power_index_of(model.action_hop(7)), 7u);
}

TEST(AntijamMdp, TransitionsMatchEq6Through8) {
  // Sweep cycle 4, stay at n=1: P(2) = 1 − 1/3; P(T_J)+P(J) = 1/3 split by q.
  auto params = AntijamParams::defaults();
  params.mode = JammerPowerMode::kRandomPower;
  const AntijamMdp model(params);
  const std::size_t i = 9;  // tx level 15, q = 0.5
  const double q = params.success_prob(i);
  const auto& m = model.mdp();
  const std::size_t s1 = model.state_n(1);
  EXPECT_NEAR(m.transition(s1, model.action_stay(i), model.state_n(2)),
              1.0 - 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.transition(s1, model.action_stay(i), model.state_tj()),
              q / 3.0, 1e-12);
  EXPECT_NEAR(m.transition(s1, model.action_stay(i), model.state_j()),
              (1.0 - q) / 3.0, 1e-12);
}

TEST(AntijamMdp, TransitionsMatchEq9Through11) {
  // Hop from n=1 at N=4: r = (4−1−1)/((4−1)(4−1)) = 2/9.
  auto params = AntijamParams::defaults();
  params.mode = JammerPowerMode::kRandomPower;
  const AntijamMdp model(params);
  const std::size_t i = 9;
  const double q = params.success_prob(i);
  const double r = 2.0 / 9.0;
  const auto& m = model.mdp();
  const std::size_t s1 = model.state_n(1);
  EXPECT_NEAR(m.transition(s1, model.action_hop(i), model.state_n(1)),
              1.0 - r, 1e-12);
  EXPECT_NEAR(m.transition(s1, model.action_hop(i), model.state_tj()),
              r * q, 1e-12);
  EXPECT_NEAR(m.transition(s1, model.action_hop(i), model.state_j()),
              r * (1.0 - q), 1e-12);
}

TEST(AntijamMdp, TransitionsMatchEq12Through14) {
  auto params = AntijamParams::defaults();
  params.mode = JammerPowerMode::kRandomPower;
  const AntijamMdp model(params);
  const std::size_t i = 9;
  const double q = params.success_prob(i);
  const auto& m = model.mdp();
  for (std::size_t s : {model.state_tj(), model.state_j()}) {
    EXPECT_NEAR(m.transition(s, model.action_stay(i), model.state_tj()), q,
                1e-12);
    EXPECT_NEAR(m.transition(s, model.action_stay(i), model.state_j()),
                1.0 - q, 1e-12);
    EXPECT_NEAR(m.transition(s, model.action_hop(i), model.state_n(1)), 1.0,
                1e-12);
  }
}

TEST(AntijamMdp, HopFromLastCountingStateIsSafe) {
  // At n = N−1 = 3, r = (4−3−1)/((3)(1)) = 0: a hop cannot be jammed, and a
  // stay is jammed with certainty.
  const AntijamMdp model(AntijamParams::defaults());
  const auto& m = model.mdp();
  const std::size_t s3 = model.state_n(3);
  EXPECT_NEAR(m.transition(s3, model.action_hop(0), model.state_n(1)), 1.0,
              1e-12);
  EXPECT_NEAR(m.transition(s3, model.action_stay(0), model.state_n(1)), 0.0,
              1e-12);
  EXPECT_NEAR(m.transition(s3, model.action_stay(0), model.state_j()) +
                  m.transition(s3, model.action_stay(0), model.state_tj()),
              1.0, 1e-12);
}

TEST(AntijamMdp, RewardsMatchEq5) {
  // Expected reward of stay at n with power i:
  // −L_p − L_J·(1−q)/(N−n)  (Eq. 23).
  auto params = AntijamParams::defaults();
  params.mode = JammerPowerMode::kRandomPower;
  const AntijamMdp model(params);
  const std::size_t i = 9;
  const double q = params.success_prob(i);
  const double lp = params.tx_levels[i];
  const auto& m = model.mdp();
  EXPECT_NEAR(m.reward(model.state_n(1), model.action_stay(i)),
              -lp - params.loss_jam * (1.0 - q) / 3.0, 1e-12);
  // Hop adds L_H (Eq. 24 with the r factor).
  const double r = 2.0 / 9.0;
  EXPECT_NEAR(m.reward(model.state_n(1), model.action_hop(i)),
              -lp - params.loss_hop - params.loss_jam * r * (1.0 - q), 1e-12);
}

TEST(AntijamMdp, RejectsDegenerateSweepCycle) {
  auto params = AntijamParams::defaults();
  params.sweep_cycle = 1;
  EXPECT_THROW(AntijamMdp{params}, ctj::CheckFailure);
}

// ------------------------------------------- structural results (III.2-5) ----

class QStructure : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(QStructure, LemmasHoldAcrossParameters) {
  auto params = AntijamParams::defaults();
  params.sweep_cycle = std::get<0>(GetParam());
  params.loss_jam = std::get<1>(GetParam());
  params.loss_hop = std::get<2>(GetParam());
  params.mode = JammerPowerMode::kRandomPower;
  const AntijamMdp model(params);
  const Solution sol = solve(model);
  for (std::size_t i : {0u, 5u, 9u}) {
    const QCurves curves = q_curves(model, sol, i);
    EXPECT_TRUE(stay_curve_decreasing(curves))
        << "Lemma III.2 violated at power " << i;
    EXPECT_TRUE(hop_curve_increasing(curves))
        << "Lemma III.3 violated at power " << i;
  }
  EXPECT_TRUE(policy_has_threshold_form(model, sol)) << "Theorem III.4";
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, QStructure,
    ::testing::Combine(::testing::Values(3, 4, 8),
                       ::testing::Values(20.0, 100.0, 300.0),
                       ::testing::Values(10.0, 50.0, 120.0)));

TEST(Threshold, DecreasesWithLossJam) {
  // Theorem III.5: larger L_J → hop earlier (smaller n*).
  auto params = AntijamParams::defaults();
  params.sweep_cycle = 8;
  params.mode = JammerPowerMode::kRandomPower;
  int prev = 1 << 20;
  for (double lj : {10.0, 60.0, 150.0, 400.0}) {
    params.loss_jam = lj;
    const AntijamMdp model(params);
    const int n_star = threshold_n_star(model, solve(model));
    EXPECT_LE(n_star, prev) << "L_J = " << lj;
    prev = n_star;
  }
}

TEST(Threshold, IncreasesWithLossHop) {
  auto params = AntijamParams::defaults();
  params.sweep_cycle = 8;
  params.mode = JammerPowerMode::kRandomPower;
  int prev = 0;
  for (double lh : {5.0, 30.0, 80.0, 200.0}) {
    params.loss_hop = lh;
    const AntijamMdp model(params);
    const int n_star = threshold_n_star(model, solve(model));
    EXPECT_GE(n_star, prev) << "L_H = " << lh;
    prev = n_star;
  }
}

TEST(Threshold, IncreasesWithSweepCycle) {
  auto params = AntijamParams::defaults();
  params.mode = JammerPowerMode::kRandomPower;
  int prev = 0;
  for (int cycle : {3, 4, 8, 16}) {
    params.sweep_cycle = cycle;
    const AntijamMdp model(params);
    const int n_star = threshold_n_star(model, solve(model));
    EXPECT_GE(n_star, prev) << "sweep cycle = " << cycle;
    prev = n_star;
  }
}

TEST(Threshold, ExtremeCasesClampPerTheorem34) {
  // Huge L_H: never hop → n* = sweep_cycle. Huge L_J: hop immediately → 1.
  auto params = AntijamParams::defaults();
  params.mode = JammerPowerMode::kRandomPower;
  params.loss_hop = 1e6;
  params.loss_jam = 100.0;
  EXPECT_EQ(threshold_n_star(AntijamMdp(params), solve(AntijamMdp(params))),
            params.sweep_cycle);
  params.loss_hop = 0.1;
  params.loss_jam = 1e6;
  EXPECT_EQ(threshold_n_star(AntijamMdp(params), solve(AntijamMdp(params))), 1);
}

}  // namespace
}  // namespace ctj::mdp
