// ThreadSanitizer harness for the parallel sweep engine (plain binary, no
// gtest: TSan reports arrive on stderr and flip the exit code via
// halt_on_error). Drives parallel_map over a mini RL sweep at several
// thread counts and cross-checks the results against the sequential run, so
// one process exercises both the race-freedom and the determinism claims.
#include <cstdio>
#include <vector>

#include "common/parallel.hpp"
#include "core/experiment.hpp"

namespace {

ctj::core::MetricsReport mini_rl_point(std::size_t index) {
  ctj::core::RlExperimentConfig config;
  config.env = ctj::core::EnvironmentConfig::defaults();
  config.env.loss_jam = 40.0 + 20.0 * static_cast<double>(index);
  config.env.seed = 7 + index;
  config.eval_seed = 1007 + index;
  config.scheme.history = 2;
  config.scheme.hidden = {8, 8};
  config.scheme.epsilon_decay_steps = 200;
  config.scheme.seed = 507 + index;
  config.train_slots = 400;
  config.eval_slots = 200;
  return ctj::core::run_rl_experiment(config).metrics;
}

bool identical(const ctj::core::MetricsReport& a,
               const ctj::core::MetricsReport& b) {
  return a.st == b.st && a.ah == b.ah && a.sh == b.sh && a.ap == b.ap &&
         a.sp == b.sp && a.mean_reward == b.mean_reward && a.slots == b.slots;
}

}  // namespace

int main() {
  constexpr std::size_t kPoints = 4;
  const auto sequential = ctj::parallel_map(kPoints, mini_rl_point, 1);

  int failures = 0;
  for (std::size_t threads : {2u, 4u}) {
    const auto parallel = ctj::parallel_map(kPoints, mini_rl_point, threads);
    for (std::size_t i = 0; i < kPoints; ++i) {
      if (!identical(sequential[i], parallel[i])) {
        std::fprintf(stderr,
                     "FAIL: point %zu diverges at %zu threads "
                     "(st %.17g vs %.17g)\n",
                     i, threads, sequential[i].st, parallel[i].st);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("tsan determinism check: %zu points identical at 1/2/4 "
                "threads\n",
                kPoints);
  }
  return failures == 0 ? 0 : 1;
}
