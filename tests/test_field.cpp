// Integration tests of the field-experiment simulator: the full
// network + jammer + scheme stack behind Figs. 2(b), 9, 10 and 11.
#include <gtest/gtest.h>

#include "core/field.hpp"
#include "core/mdp_scheme.hpp"
#include "core/passive_fh.hpp"
#include "core/random_fh.hpp"

namespace ctj::core {
namespace {

FieldConfig quick_field(std::uint64_t seed) {
  FieldConfig c = FieldConfig::defaults();
  c.network.num_peripherals = 3;
  c.network.slot_duration_s = 1.0;
  c.network.seed = seed;
  c.network.timing.node_loss_probability = 0.01;
  c.jammer_slot_s = 1.0;
  c.seed = seed + 1;
  return c;
}

TEST(Field, NoJammerDeliversHighGoodput) {
  RandomFhScheme scheme{RandomFhScheme::Config{}};
  FieldConfig config = quick_field(1);
  config.jammer_enabled = false;
  FieldExperiment experiment(config, scheme);
  const auto result = experiment.run(200);
  // The occasional lost-node renegotiation can consume a whole 1 s slot, so
  // a handful of slots may carry no packets even without a jammer.
  EXPECT_GT(result.metrics.st, 0.97);
  EXPECT_GT(result.goodput_packets_per_slot, 100.0);
  EXPECT_GT(result.utilization, 0.9);
}

TEST(Field, JammerHurtsPassiveScheme) {
  PassiveFhScheme::Config pc;
  PassiveFhScheme no_jam_scheme(pc);
  FieldConfig config = quick_field(2);
  config.jammer_enabled = false;
  FieldExperiment clean(config, no_jam_scheme);
  const double clean_goodput = clean.run(300).goodput_packets_per_slot;

  PassiveFhScheme jammed_scheme(pc);
  config = quick_field(2);
  config.jammer_enabled = true;
  FieldExperiment jammed(config, jammed_scheme);
  const double jammed_goodput = jammed.run(300).goodput_packets_per_slot;

  EXPECT_LT(jammed_goodput, 0.8 * clean_goodput);
}

TEST(Field, OracleBeatsPassiveUnderJamming) {
  // Scheme ordering of Fig. 11(a), with the MDP oracle standing in for the
  // trained DQN (same threshold structure, no training time in the test).
  PassiveFhScheme::Config pc;
  PassiveFhScheme passive(pc);
  FieldConfig config = quick_field(3);
  FieldExperiment exp_passive(config, passive);
  const auto r_passive = exp_passive.run(500);

  MdpOracleScheme::Config oc;
  MdpOracleScheme oracle(oc);
  config = quick_field(3);
  FieldExperiment exp_oracle(config, oracle);
  const auto r_oracle = exp_oracle.run(500);

  EXPECT_GT(r_oracle.metrics.st, r_passive.metrics.st);
  EXPECT_GT(r_oracle.goodput_packets_per_slot,
            r_passive.goodput_packets_per_slot);
}

TEST(Field, EmuBeeJamsHarderThanPlainWifi) {
  // Fig. 2(b)'s ranking at the system level: with the same passive victim,
  // the EmuBee jammer destroys more goodput than a plain Wi-Fi jammer.
  auto run_with = [&](channel::JammingSignalType type) {
    PassiveFhScheme::Config pc;
    pc.detector_window = 4;  // sluggish victim, so jamming effect shows
    PassiveFhScheme scheme(pc);
    FieldConfig config = quick_field(4);
    config.signal_type = type;
    config.jammer_distance_m = 10.0;
    FieldExperiment experiment(config, scheme);
    return experiment.run(400).goodput_packets_per_slot;
  };
  const double g_emubee = run_with(channel::JammingSignalType::kEmuBee);
  const double g_wifi = run_with(channel::JammingSignalType::kWifi);
  EXPECT_LT(g_emubee, g_wifi);
}

TEST(Field, FartherJammerHurtsLess) {
  auto run_at = [&](double distance) {
    PassiveFhScheme::Config pc;
    pc.detector_window = 4;
    PassiveFhScheme scheme(pc);
    FieldConfig config = quick_field(5);
    config.jammer_distance_m = distance;
    FieldExperiment experiment(config, scheme);
    return experiment.run(400).goodput_packets_per_slot;
  };
  EXPECT_LT(run_at(4.0), run_at(40.0));
}

TEST(Field, UtilizationImprovesWithSlotDuration) {
  auto run_with_duration = [&](double duration) {
    RandomFhScheme scheme{RandomFhScheme::Config{}};
    FieldConfig config = quick_field(6);
    config.jammer_enabled = false;
    config.network.slot_duration_s = duration;
    FieldExperiment experiment(config, scheme);
    return experiment.run(100).utilization;
  };
  EXPECT_LT(run_with_duration(1.0), run_with_duration(5.0));
}

TEST(Field, MismatchedJammerClockChangesDuty) {
  // Sanity for Fig. 11(b): the simulator runs with jammer slot durations
  // different from the victim's without losing accounting consistency.
  for (double jx_slot : {0.5, 1.0, 3.0}) {
    MdpOracleScheme::Config oc;
    MdpOracleScheme oracle(oc);
    FieldConfig config = quick_field(7);
    config.jammer_slot_s = jx_slot;
    FieldExperiment experiment(config, oracle);
    const auto result = experiment.run(300);
    EXPECT_EQ(result.slots, 300u);
    EXPECT_GT(result.goodput_packets_per_slot, 0.0);
  }
}

TEST(Field, NegotiationTimeIsAccounted) {
  RandomFhScheme scheme{RandomFhScheme::Config{}};
  FieldConfig config = quick_field(8);
  FieldExperiment experiment(config, scheme);
  const auto result = experiment.run(100);
  // 3 peripherals × 13.1 ms ≈ 39 ms plus occasional lost-node recovery.
  EXPECT_GT(result.mean_negotiation_s, 0.030);
  EXPECT_LT(result.mean_negotiation_s, 0.5);
}

TEST(Field, ConfigValidation) {
  RandomFhScheme scheme{RandomFhScheme::Config{}};
  FieldConfig config = quick_field(9);
  config.tx_levels.clear();
  EXPECT_THROW(FieldExperiment(config, scheme), CheckFailure);
}

}  // namespace
}  // namespace ctj::core
