// Tests for the Wi-Fi PHY chain and the EmuBee emulation (Sec. II.A, Fig. 1,
// Eqs. 1–2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "phy/emulation.hpp"
#include "phy/ofdm.hpp"
#include "phy/qam.hpp"
#include "phy/wifi_phy.hpp"

namespace ctj::phy {
namespace {

// ------------------------------------------------------------- Wi-Fi PHY ----

TEST(WifiPhy, InfoBitsPerSymbol) {
  EXPECT_EQ(WifiPhy(CodeRate::kRate1of2).info_bits_per_symbol(), 144u);
  EXPECT_EQ(WifiPhy(CodeRate::kRate2of3).info_bits_per_symbol(), 192u);
  EXPECT_EQ(WifiPhy(CodeRate::kRate3of4).info_bits_per_symbol(), 216u);
}

TEST(WifiPhy, CleanTxRxRoundTripSingleSymbol) {
  Rng rng(1);
  WifiPhy phy;
  const Bits info = random_bits(phy.info_bits_per_symbol(), rng);
  const IqBuffer wave = phy.transmit(info);
  EXPECT_EQ(wave.size(), Ofdm::kSymbolLength);
  EXPECT_EQ(phy.receive(wave), info);
}

TEST(WifiPhy, CleanTxRxRoundTripMultiSymbol) {
  Rng rng(2);
  for (CodeRate rate : {CodeRate::kRate1of2, CodeRate::kRate3of4}) {
    WifiPhy phy(rate);
    const Bits info = random_bits(phy.info_bits_per_symbol() * 5, rng);
    EXPECT_EQ(phy.receive(phy.transmit(info)), info);
  }
}

TEST(WifiPhy, SurvivesMildAwgn) {
  Rng rng(3);
  WifiPhy phy;
  const Bits info = random_bits(phy.info_bits_per_symbol() * 4, rng);
  IqBuffer wave = phy.transmit(info);
  // QAM points have unit average power spread over 64 bins -> time-domain
  // average power ~52/64/64; keep noise well below that scale.
  for (Cplx& v : wave) {
    v += Cplx(rng.normal(0.0, 0.004), rng.normal(0.0, 0.004));
  }
  EXPECT_EQ(phy.receive(wave), info);
}

TEST(WifiPhy, RejectsPartialSymbols) {
  WifiPhy phy;
  const Bits info(100, 0);
  EXPECT_THROW(phy.transmit(info), CheckFailure);
}

// ------------------------------------------------- quantization (Eq. 1) ----

TEST(QuantizationError, ZeroWhenTargetsOnGrid) {
  IqBuffer targets;
  for (std::size_t i = 0; i < 64; ++i) targets.push_back(Qam64::point(i) * 3.0);
  EXPECT_NEAR(quantization_error(targets, 3.0), 0.0, 1e-18);
}

TEST(QuantizationError, PositiveOffGrid) {
  const IqBuffer targets = {Cplx(0.123, 0.456), Cplx(-0.7, 0.2)};
  EXPECT_GT(quantization_error(targets, 1.0), 0.0);
}

TEST(QuantizationError, MatchesBruteForce) {
  Rng rng(4);
  IqBuffer targets(32);
  for (Cplx& t : targets) t = Cplx(rng.normal(), rng.normal());
  for (double alpha : {0.3, 1.0, 2.7}) {
    double brute = 0.0;
    for (const Cplx& t : targets) {
      double best = 1e300;
      for (std::size_t i = 0; i < 64; ++i) {
        best = std::min(best, std::norm(Qam64::point(i) * alpha - t));
      }
      brute += best;
    }
    EXPECT_NEAR(quantization_error(targets, alpha), brute, 1e-9);
  }
}

class OptimalAlpha : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalAlpha, BeatsFineGridScan) {
  Rng rng(GetParam());
  IqBuffer targets(48);
  const double scale = rng.uniform(0.2, 4.0);
  for (Cplx& t : targets) {
    t = Cplx(rng.normal(0.0, scale), rng.normal(0.0, scale));
  }
  const double alpha = optimal_alpha(targets);
  const double e_opt = quantization_error(targets, alpha);
  // Compare to a fine grid scan — Eq. (2)'s optimum must be no worse.
  for (double a : linspace(0.05, 5.0 * scale, 400)) {
    EXPECT_LE(e_opt, quantization_error(targets, a) + 1e-7)
        << "grid alpha " << a << " beats the optimizer";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalAlpha,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(OptimalAlpha, RecoversKnownScale) {
  // Targets exactly on a scaled grid: the optimizer must find that scale.
  Rng rng(6);
  IqBuffer targets;
  for (int i = 0; i < 48; ++i) {
    targets.push_back(Qam64::point(rng.index(64)) * 1.85);
  }
  EXPECT_NEAR(optimal_alpha(targets), 1.85, 1e-3);
}

// ------------------------------------------------------ EmuBee emulation ----

TEST(EmuBee, EmulatedWaveformIsWifiTransmittable) {
  // Whatever payload the inverse chain recovers, the forward chain must be
  // able to transmit it and reproduce result.emulated exactly — that is the
  // whole point: the attack uses a commodity Wi-Fi card.
  Rng rng(7);
  std::vector<std::size_t> syms(8);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  const IqBuffer designed = design_zigbee_waveform(syms);
  EmuBeeEmulator emulator;
  const auto result = emulator.emulate(designed);
  EXPECT_EQ(result.payload_bits.size() % 144, 0u);
  WifiPhy wifi;
  const IqBuffer tx = wifi.transmit(result.payload_bits);
  // Strip CPs and rescale as the emulator does.
  std::size_t idx = 0;
  for (std::size_t b = 0; b < tx.size() / Ofdm::kSymbolLength; ++b) {
    for (std::size_t i = 0; i < Ofdm::kFftSize; ++i) {
      const Cplx expected =
          tx[b * Ofdm::kSymbolLength + Ofdm::kCpLength + i] * result.alpha;
      EXPECT_NEAR(std::abs(expected - result.emulated[idx]), 0.0, 1e-9);
      ++idx;
    }
  }
}

TEST(EmuBee, OptimizedAlphaBeatsNaiveScale) {
  Rng rng(8);
  std::vector<std::size_t> syms(16);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  const IqBuffer designed = design_zigbee_waveform(syms);

  EmuBeeEmulator::Config optimized;
  optimized.optimize_alpha = true;
  EmuBeeEmulator::Config naive;
  naive.optimize_alpha = false;
  naive.fixed_alpha = 1.0;  // ignores the waveform's spectral scale

  const auto opt = EmuBeeEmulator(optimized).emulate(designed);
  const auto raw = EmuBeeEmulator(naive).emulate(designed);
  EXPECT_LT(opt.quantization_error, raw.quantization_error);
}

TEST(EmuBee, ChipErrorRateFoolsDespreader) {
  // The acid test of Sec. II.A: a ZigBee receiver despreading the *emulated*
  // waveform should recover most chips — enough to treat it as a ZigBee
  // signal rather than noise (~50 % CER).
  Rng rng(9);
  std::vector<std::size_t> syms(32);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  const IqBuffer designed = design_zigbee_waveform(syms);
  const auto result = EmuBeeEmulator().emulate(designed);
  const auto fidelity = assess_fidelity(result, syms);
  EXPECT_LT(fidelity.chip_error_rate, 0.25);
  // The Viterbi codeword projection distorts the waveform substantially
  // (only rate-1/2 codewords are transmittable), yet the despreader still
  // recovers the chips — exactly the WeBee-style emulation trade-off.
  EXPECT_LT(fidelity.evm, 2.0);
}

TEST(EmuBee, EmulationPreservesEnoughStructureForSymbols) {
  Rng rng(10);
  std::vector<std::size_t> syms(32);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  const auto result = EmuBeeEmulator().emulate(design_zigbee_waveform(syms));
  const auto fidelity = assess_fidelity(result, syms);
  // DSSS margin: with CER below ~25 %, most symbols despread correctly.
  EXPECT_LT(fidelity.symbol_error_rate, 0.2);
}

TEST(EmuBee, PadsToWholeOfdmSymbols) {
  IqBuffer designed(100, Cplx(0.5, 0.0));  // not a multiple of 64
  const auto result = EmuBeeEmulator().emulate(designed);
  EXPECT_EQ(result.designed.size() % Ofdm::kFftSize, 0u);
  EXPECT_EQ(result.designed.size(), result.emulated.size());
}

TEST(EmuBee, FrequencyShiftedChannelStillEmulates) {
  // Emulating a ZigBee channel offset from the Wi-Fi center (the usual case:
  // a 2 MHz channel inside the 20 MHz band).
  Rng rng(11);
  std::vector<std::size_t> syms(16);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  const double offset_hz = 5e6;
  const IqBuffer designed = design_zigbee_waveform(syms, offset_hz);
  const auto result = EmuBeeEmulator().emulate(designed);
  const auto fidelity = assess_fidelity(result, syms, offset_hz);
  EXPECT_LT(fidelity.chip_error_rate, 0.3);
}

TEST(EmuBee, DesignWaveformLengthAndRate) {
  const std::vector<std::size_t> syms = {0, 1};
  const IqBuffer wave = design_zigbee_waveform(syms);
  // 10 samples/chip at 20 Msps: 2 symbols × 320 + 10 tail samples.
  EXPECT_EQ(wave.size(), 2 * 320 + 10u);
}

}  // namespace
}  // namespace ctj::phy
