// threshold_solve vs the value-iteration oracle (ctest label: phy).
//
// The Thm. III.4–III.5 threshold-family solver must return the same optimal
// value function and an optimal policy for every anti-jamming MDP the full
// Bellman fixed-point solver handles — on the paper's defaults, across
// randomized parameterizations in both jammer power modes, and when driving
// the conformance structure checker in place of mdp::solve.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "conformance/conformance.hpp"
#include "mdp/analysis.hpp"
#include "mdp/antijam_mdp.hpp"
#include "mdp/value_iteration.hpp"

namespace {

using namespace ctj;

// L∞ scale-aware comparison of the two solvers on one model.
void expect_matches_oracle(const mdp::AntijamMdp& model,
                           const std::string& label) {
  const mdp::Solution vi = mdp::solve(model);
  const mdp::ThresholdSolution ts = mdp::threshold_solve(model);

  double vmax = 1.0;
  for (double v : vi.value) vmax = std::max(vmax, std::abs(v));
  const double tol = 1e-6 * vmax;

  ASSERT_EQ(ts.solution.value.size(), vi.value.size()) << label;
  for (std::size_t s = 0; s < vi.value.size(); ++s) {
    ASSERT_NEAR(ts.solution.value[s], vi.value[s], tol)
        << label << " state " << s;
  }
  // Policy optimality is judged against the oracle's Q, not by action
  // equality: ties between actions may break differently.
  for (std::size_t s = 0; s < vi.value.size(); ++s) {
    const double best = *std::max_element(vi.q[s].begin(), vi.q[s].end());
    ASSERT_NEAR(vi.q[s][ts.solution.policy[s]], best, tol)
        << label << " state " << s;
  }
}

TEST(MdpThreshold, MatchesOracleOnPaperDefaults) {
  for (JammerPowerMode mode :
       {JammerPowerMode::kMaxPower, JammerPowerMode::kRandomPower}) {
    auto params = mdp::AntijamParams::defaults();
    params.mode = mode;
    const mdp::AntijamMdp model(params);
    expect_matches_oracle(model, mode == JammerPowerMode::kMaxPower
                                     ? "defaults/max"
                                     : "defaults/random");

    // On the paper's parameters the certificate must hold (no fallback) and
    // the winning family must agree with the analysis module's threshold
    // extracted from the oracle solution.
    const mdp::ThresholdSolution ts = mdp::threshold_solve(model);
    EXPECT_TRUE(ts.certified);
    EXPECT_FALSE(ts.fell_back);
    const mdp::Solution vi = mdp::solve(model);
    EXPECT_EQ(static_cast<int>(ts.n_star),
              mdp::threshold_n_star(model, vi));
  }
}

TEST(MdpThreshold, MatchesOracleOnRandomizedInstances) {
  Rng rng(211);
  for (std::size_t trial = 0; trial < 40; ++trial) {
    mdp::AntijamParams params;
    params.sweep_cycle = 2 + static_cast<int>(rng.index(9));
    const std::size_t num_tx = 1 + rng.index(5);
    params.tx_levels.clear();
    params.jam_levels.clear();
    for (std::size_t i = 0; i < num_tx; ++i) {
      params.tx_levels.push_back(5.0 + 10.0 * rng.uniform());
      params.jam_levels.push_back(8.0 + 12.0 * rng.uniform());
    }
    params.loss_jam = 200.0 * rng.uniform();
    params.loss_hop = 150.0 * rng.uniform();
    params.gamma = 0.5 + 0.45 * rng.uniform();
    params.mode = rng.uniform() < 0.5 ? JammerPowerMode::kMaxPower
                                      : JammerPowerMode::kRandomPower;
    const mdp::AntijamMdp model(params);
    expect_matches_oracle(model, "trial " + std::to_string(trial));
  }
}

TEST(MdpThreshold, DegenerateCornersStillMatchOracle) {
  // L_H = 0 (free hopping) and L_J = 0 (harmless jamming) sit outside the
  // premises of Lemmas III.2–III.3; whether threshold_solve certifies or
  // falls back, the result must still match the oracle.
  for (double loss_hop : {0.0, 50.0}) {
    for (double loss_jam : {0.0, 100.0}) {
      auto params = mdp::AntijamParams::defaults();
      params.loss_hop = loss_hop;
      params.loss_jam = loss_jam;
      const mdp::AntijamMdp model(params);
      expect_matches_oracle(model, "L_H=" + std::to_string(loss_hop) +
                                       " L_J=" + std::to_string(loss_jam));
    }
  }
}

TEST(MdpThreshold, SolutionInvariants) {
  const mdp::AntijamMdp model(mdp::AntijamParams::defaults());
  const mdp::ThresholdSolution ts = mdp::threshold_solve(model);
  EXPECT_GE(ts.n_star, 1u);
  EXPECT_LE(ts.n_star,
            static_cast<std::size_t>(model.params().sweep_cycle));
  EXPECT_GT(ts.policy_evaluations, 0u);
  EXPECT_EQ(ts.solution.policy.size(), model.num_states());
  EXPECT_EQ(ts.solution.q.size(), model.num_states());
}

TEST(MdpThreshold, DrivesStructureCheckerCleanly) {
  // The Thm. III.4–III.5 battery itself, solved by threshold_solve instead
  // of value iteration, over a reduced grid (the full paper grid is the
  // conformance bench's job).
  conformance::StructureCheckOptions options;
  options.lj_grid = {25.0, 100.0};
  options.lh_grid = {10.0, 50.0};
  options.cycle_grid = {3, 4, 8};
  options.solver = [](const mdp::AntijamMdp& model) {
    return mdp::threshold_solve(model).solution;
  };
  const auto result = conformance::check_policy_structure(options);
  for (const auto& d : result.divergences) {
    ADD_FAILURE() << d.describe();
  }
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.points.empty());
}

}  // namespace
