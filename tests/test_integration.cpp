// Cross-module integration tests and edge cases: the experiment harness,
// deployment ε, packet-level field runs, degenerate slot budgets, and
// spectrum corners.
#include <gtest/gtest.h>

#include "channel/spectrum.hpp"
#include "core/experiment.hpp"
#include "core/field.hpp"
#include "core/mdp_scheme.hpp"
#include "core/random_fh.hpp"
#include "core/rl_fh.hpp"
#include "net/star_network.hpp"

namespace ctj {
namespace {

using namespace core;

TEST(ExperimentConfig, SyncDimensionsPropagatesEnv) {
  RlExperimentConfig config;
  config.env = EnvironmentConfig::defaults();
  config.env.num_channels = 8;
  config.env.tx_levels = {6, 7, 8};
  config.sync_dimensions();
  EXPECT_EQ(config.scheme.num_channels, 8);
  EXPECT_EQ(config.scheme.num_power_levels, 3u);
}

TEST(DqnScheme, DeployEpsilonValidated) {
  DqnScheme::Config config;
  config.history = 2;
  config.hidden = {8};
  DqnScheme scheme(config);
  EXPECT_THROW(scheme.set_deploy_epsilon(1.0), CheckFailure);
  EXPECT_THROW(scheme.set_deploy_epsilon(-0.1), CheckFailure);
  scheme.set_deploy_epsilon(0.3);
  EXPECT_DOUBLE_EQ(scheme.deploy_epsilon(), 0.3);
}

TEST(DqnScheme, DeployEpsilonRandomizesActions) {
  DqnScheme::Config config;
  config.history = 2;
  config.hidden = {8};
  config.deploy_epsilon = 0.5;
  DqnScheme scheme(config);
  scheme.set_training(false);
  std::set<int> channels;
  for (int i = 0; i < 300; ++i) {
    const auto d = scheme.decide();
    channels.insert(d.channel);
    SlotFeedback fb;
    fb.success = true;
    fb.channel = d.channel;
    fb.power_index = d.power_index;
    scheme.feedback(fb);
  }
  // With 50% exploration the channel pattern cannot be a fixed point.
  EXPECT_GT(channels.size(), 4u);
}

TEST(DqnScheme, ZeroDeployEpsilonIsDeterministicGivenHistory) {
  DqnScheme::Config config;
  config.history = 2;
  config.hidden = {8};
  config.deploy_epsilon = 0.0;
  config.seed = 5;
  DqnScheme a(config), b(config);
  a.set_training(false);
  b.set_training(false);
  for (int i = 0; i < 20; ++i) {
    const auto da = a.decide();
    const auto db = b.decide();
    EXPECT_EQ(da.channel, db.channel);
    EXPECT_EQ(da.power_index, db.power_index);
    SlotFeedback fb;
    fb.success = true;
    fb.channel = da.channel;
    fb.power_index = da.power_index;
    a.feedback(fb);
    b.feedback(fb);
  }
}

TEST(MdpOracle, UsesPowerControlInRandomMode) {
  // Against the hidden-mode jammer, the oracle's optimal actions include
  // raised power levels (the hybrid FH+PC behaviour of Sec. III).
  MdpOracleScheme::Config config;
  config.params = mdp::AntijamParams::defaults();
  config.params.mode = JammerPowerMode::kRandomPower;
  MdpOracleScheme oracle(config);
  auto env_config = EnvironmentConfig::defaults();
  env_config.mode = JammerPowerMode::kRandomPower;
  CompetitionEnvironment env(env_config);
  const auto metrics = evaluate(oracle, env, 8000);
  EXPECT_GT(metrics.ap, 0.1);
  EXPECT_GT(metrics.st, 0.75);
}

TEST(MdpOracle, HopsLeaveTheJammerGroup) {
  MdpOracleScheme::Config config;
  config.params.loss_jam = 1e5;  // hop-always policy
  config.params.loss_hop = 0.1;
  MdpOracleScheme oracle(config);
  int prev = oracle.decide().channel;
  SlotFeedback fb;
  fb.success = true;
  for (int i = 0; i < 200; ++i) {
    oracle.feedback(fb);
    const int next = oracle.decide().channel;
    if (next != prev) {
      EXPECT_NE(next / 4, prev / 4) << "hop stayed inside the jammed group";
    }
    prev = next;
  }
}

TEST(Field, PacketLevelFieldRunWorksUnderJamming) {
  RandomFhScheme scheme{RandomFhScheme::Config{}};
  FieldConfig config = FieldConfig::defaults();
  config.network.num_peripherals = 2;
  config.network.slot_duration_s = 0.5;
  config.network.packet_level = true;  // real frames end to end
  config.network.seed = 21;
  config.seed = 22;
  FieldExperiment experiment(config, scheme);
  const auto result = experiment.run(60);
  EXPECT_GT(result.goodput_packets_per_slot, 0.0);
  EXPECT_GT(experiment.network().hub().total_delivered(), 0u);
}

TEST(StarNetwork, TinySlotCarriesNothing) {
  net::StarNetworkConfig config;
  config.num_peripherals = 2;
  config.slot_duration_s = 0.01;  // smaller than the fixed overhead
  config.seed = 9;
  net::StarNetwork network(config);
  net::SlotDecision decision;
  decision.channel = 0;
  const auto stats = network.run_slot(decision, std::nullopt);
  EXPECT_EQ(stats.packets_attempted, 0u);
  EXPECT_FALSE(stats.success);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio, 0.0);
}

TEST(Field, DisabledJammerStillAdvancesClock) {
  RandomFhScheme scheme{RandomFhScheme::Config{}};
  FieldConfig config = FieldConfig::defaults();
  config.jammer_enabled = false;
  config.network.seed = 31;
  config.seed = 32;
  FieldExperiment experiment(config, scheme);
  const auto r = experiment.run(10);
  EXPECT_EQ(r.slots, 10u);
  EXPECT_FALSE(experiment.jammer().locked());
}

TEST(Spectrum, TopZigbeeChannelsEscapeWifi) {
  // ZigBee channels 25/26 (indices 14/15) sit above Wi-Fi channel 11's band:
  // no North-American Wi-Fi channel covers them — the classic "safe
  // channels" of coexistence folklore.
  EXPECT_EQ(channel::wifi_channel_covering(15), -1);
}

TEST(Spectrum, EveryWifiChannelHasDistinctCoverageWindow) {
  std::set<std::vector<int>> windows;
  for (int w = 1; w <= 11; ++w) {
    windows.insert(channel::zigbee_channels_covered(w));
  }
  EXPECT_EQ(windows.size(), 11u);
}

TEST(Trainer, RewardWindowShorterThanRun) {
  auto env_config = EnvironmentConfig::defaults();
  CompetitionEnvironment env(env_config);
  DqnScheme::Config scheme_config;
  scheme_config.history = 2;
  scheme_config.hidden = {8};
  DqnScheme scheme(scheme_config);
  TrainerConfig config;
  config.max_slots = 100;
  config.reward_window = 1000;  // larger than the run: mean over all slots
  const auto stats = train(scheme, env, config);
  EXPECT_EQ(stats.slots_trained, 100u);
  EXPECT_LT(stats.final_mean_reward, 0.0);
}

TEST(Evaluate, OracleMatchesItsOwnThresholdPrediction) {
  // Internal consistency: the oracle's FH adoption rate is bounded by the
  // threshold structure — at threshold n*, roughly one hop per n* slots in
  // steady jam-free stretches, plus escapes.
  MdpOracleScheme::Config config;
  MdpOracleScheme oracle(config);
  CompetitionEnvironment env(EnvironmentConfig::defaults());
  const auto metrics = evaluate(oracle, env, 10000);
  EXPECT_GT(metrics.ah, 0.0);
  EXPECT_LT(metrics.ah, 0.8);
}

}  // namespace
}  // namespace ctj
