// PHY hot-path regression battery (ctest label: phy).
//
// The kernel-layer rewrite of the Viterbi decoder and the Eq. (1)/(2)
// quantization path promises *bit-identical* outputs to the straight-line
// implementations it replaced. The references below are verbatim
// transcriptions of the pre-kernel decoder and quantization loop; this TU is
// compiled with -ffp-contract=off (see tests/CMakeLists.txt) so the
// references' arithmetic cannot be fused differently from the scalar
// kernel's plain operations.
//
// Coverage:
//  - hard/soft decode vs transcribed reference, all three code rates,
//    including erasure inputs;
//  - encode → decode roundtrip (tail-terminated) at all rates;
//  - decode_batch == per-symbol decode;
//  - viterbi_acs_hard/soft cross-level bit-identity (scalar vs AVX2 vs
//    AVX-512, whichever the host supports), including unreachable-metric
//    patterns;
//  - qam64_error: scalar kernel bit-exact vs the transcribed loop, SIMD
//    levels within tolerance;
//  - AlphaSearch: cold path identical to optimal_alpha, warm path never
//    worse than the full scan, fallback counting.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/kernels.hpp"
#include "common/rng.hpp"
#include "phy/convolutional.hpp"
#include "phy/emulation.hpp"
#include "phy/qam.hpp"

namespace {

using namespace ctj;
using phy::Bits;
using phy::CodeRate;
using phy::ConvolutionalCode;

// ------------------------------------------------------------------ refs --
// Transcribed pre-kernel implementations (git history: the versions this PR
// replaced). Do not "fix" or modernize these — their exact arithmetic is the
// bit-identity contract.

int ref_parity(unsigned v) { return __builtin_popcount(v) & 1; }

std::vector<bool> ref_keep_mask(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate1of2: return {true, true};
    case CodeRate::kRate2of3: return {true, true, true, false};
    case CodeRate::kRate3of4: return {true, true, true, false, false, true};
  }
  return {};
}

Bits ref_depuncture(std::span<const std::uint8_t> coded, CodeRate rate) {
  const auto mask = ref_keep_mask(rate);
  const std::size_t kept_per_period = static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), true));
  EXPECT_EQ(coded.size() % kept_per_period, 0u);
  const std::size_t periods = coded.size() / kept_per_period;
  Bits mother(periods * mask.size(), 2);  // 2 marks an erasure
  std::size_t src = 0;
  for (std::size_t i = 0; i < mother.size(); ++i) {
    if (mask[i % mask.size()]) mother[i] = coded[src++];
  }
  return mother;
}

Bits ref_decode_hard(std::span<const std::uint8_t> coded, CodeRate rate) {
  Bits mother;
  if (rate == CodeRate::kRate1of2) {
    mother.assign(coded.begin(), coded.end());
  } else {
    mother = ref_depuncture(coded, rate);
  }
  const std::size_t steps = mother.size() / 2;
  constexpr std::size_t kStates = ConvolutionalCode::kStates;

  constexpr auto kInf = std::numeric_limits<int>::max() / 4;
  std::vector<int> metric(kStates, kInf);
  metric[0] = 0;
  std::vector<std::vector<std::uint16_t>> survivor(
      steps, std::vector<std::uint16_t>(kStates, 0));

  std::array<std::array<std::uint8_t, 2>, kStates * 2> expected{};
  for (unsigned s = 0; s < kStates; ++s) {
    for (unsigned in = 0; in < 2; ++in) {
      const unsigned reg = (in << 6) | s;
      expected[s * 2 + in] = {
          static_cast<std::uint8_t>(ref_parity(reg & ConvolutionalCode::kG0)),
          static_cast<std::uint8_t>(ref_parity(reg & ConvolutionalCode::kG1))};
    }
  }

  std::vector<int> next_metric(kStates);
  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    const std::uint8_t r0 = mother[2 * t];
    const std::uint8_t r1 = mother[2 * t + 1];
    for (unsigned s = 0; s < kStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (unsigned in = 0; in < 2; ++in) {
        const auto& exp = expected[s * 2 + in];
        int cost = 0;
        if (r0 <= 1) cost += (exp[0] != r0);
        if (r1 <= 1) cost += (exp[1] != r1);
        const unsigned ns = (((in << 6) | s) >> 1);
        const int m = metric[s] + cost;
        if (m < next_metric[ns]) {
          next_metric[ns] = m;
          survivor[t][ns] = static_cast<std::uint16_t>((s << 1) | in);
        }
      }
    }
    metric.swap(next_metric);
  }

  unsigned state = static_cast<unsigned>(
      std::min_element(metric.begin(), metric.end()) - metric.begin());
  Bits info(steps);
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint16_t sv = survivor[t][state];
    info[t] = static_cast<std::uint8_t>(sv & 1U);
    state = sv >> 1;
  }
  return info;
}

Bits ref_decode_soft(std::span<const double> llrs) {
  const std::size_t steps = llrs.size() / 2;
  constexpr std::size_t kStates = ConvolutionalCode::kStates;

  constexpr double kInf = 1e300;
  std::vector<double> metric(kStates, kInf);
  metric[0] = 0.0;
  std::vector<std::vector<std::uint16_t>> survivor(
      steps, std::vector<std::uint16_t>(kStates, 0));

  std::array<std::array<std::uint8_t, 2>, kStates * 2> expected{};
  for (unsigned s = 0; s < kStates; ++s) {
    for (unsigned in = 0; in < 2; ++in) {
      const unsigned reg = (in << 6) | s;
      expected[s * 2 + in] = {
          static_cast<std::uint8_t>(ref_parity(reg & ConvolutionalCode::kG0)),
          static_cast<std::uint8_t>(ref_parity(reg & ConvolutionalCode::kG1))};
    }
  }

  std::vector<double> next_metric(kStates);
  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    const double l0 = llrs[2 * t];
    const double l1 = llrs[2 * t + 1];
    for (unsigned s = 0; s < kStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (unsigned in = 0; in < 2; ++in) {
        const auto& exp = expected[s * 2 + in];
        double cost = 0.0;
        cost += exp[0] ? std::max(0.0, -l0) : std::max(0.0, l0);
        cost += exp[1] ? std::max(0.0, -l1) : std::max(0.0, l1);
        const unsigned ns = (((in << 6) | s) >> 1);
        const double m = metric[s] + cost;
        if (m < next_metric[ns]) {
          next_metric[ns] = m;
          survivor[t][ns] = static_cast<std::uint16_t>((s << 1) | in);
        }
      }
    }
    metric.swap(next_metric);
  }

  unsigned state = static_cast<unsigned>(
      std::min_element(metric.begin(), metric.end()) - metric.begin());
  Bits info(steps);
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint16_t sv = survivor[t][state];
    info[t] = static_cast<std::uint8_t>(sv & 1U);
    state = sv >> 1;
  }
  return info;
}

double ref_quantization_error(std::span<const phy::Cplx> targets,
                              double alpha) {
  double err = 0.0;
  for (const phy::Cplx& t : targets) {
    err += std::norm(phy::Qam64::quantize(t, alpha) - t);
  }
  return err;
}

std::size_t info_len_for(CodeRate rate, std::size_t periods) {
  switch (rate) {
    case CodeRate::kRate1of2: return periods;
    case CodeRate::kRate2of3: return 2 * periods;
    case CodeRate::kRate3of4: return 3 * periods;
  }
  return 0;
}

const std::array<CodeRate, 3> kAllRates = {
    CodeRate::kRate1of2, CodeRate::kRate2of3, CodeRate::kRate3of4};

// Available dispatch levels beyond scalar on this host.
std::vector<std::pair<const char*, const kern::KernelOps*>> simd_levels() {
  std::vector<std::pair<const char*, const kern::KernelOps*>> levels;
  if (kern::avx2_ops() != nullptr && kern::cpu_supports_avx2()) {
    levels.emplace_back("avx2", kern::avx2_ops());
  }
  if (kern::avx512_ops() != nullptr && kern::cpu_supports_avx512()) {
    levels.emplace_back("avx512", kern::avx512_ops());
  }
  return levels;
}

// ------------------------------------------------------------ decoder ----

TEST(PhyHotpath, HardDecodeBitIdenticalToReference) {
  Rng rng(101);
  for (CodeRate rate : kAllRates) {
    for (std::size_t trial = 0; trial < 20; ++trial) {
      const std::size_t info_len = info_len_for(rate, 8 + rng.index(40));
      const Bits info = phy::random_bits(info_len, rng);
      Bits coded = ConvolutionalCode::encode(info, rate);
      // Channel noise: flip ~10% of coded bits.
      for (auto& b : coded) {
        if (rng.uniform() < 0.1) b ^= 1;
      }
      const Bits expected = ref_decode_hard(coded, rate);
      const Bits actual = ConvolutionalCode::decode(coded, rate);
      ASSERT_EQ(actual, expected)
          << "rate " << static_cast<int>(rate) << " trial " << trial;
    }
  }
}

TEST(PhyHotpath, HardDecodeHandlesExplicitErasures) {
  // The decoder's contract for mother-grid inputs: any value > 1 is an
  // erasure (zero branch cost), exactly as the reference treated it.
  Rng rng(102);
  for (std::size_t trial = 0; trial < 10; ++trial) {
    Bits coded(2 * (16 + rng.index(32)));
    for (auto& b : coded) {
      const double u = rng.uniform();
      b = u < 0.4 ? 0 : (u < 0.8 ? 1 : 2);
    }
    const Bits expected = ref_decode_hard(coded, CodeRate::kRate1of2);
    const Bits actual = ConvolutionalCode::decode(coded, CodeRate::kRate1of2);
    ASSERT_EQ(actual, expected) << "trial " << trial;
  }
}

TEST(PhyHotpath, SoftDecodeBitIdenticalToReference) {
  Rng rng(103);
  for (std::size_t trial = 0; trial < 20; ++trial) {
    std::vector<double> llrs(2 * (16 + rng.index(48)));
    for (auto& l : llrs) l = 4.0 * rng.normal();
    const Bits expected = ref_decode_soft(llrs);
    const Bits actual = ConvolutionalCode::decode_soft(llrs);
    ASSERT_EQ(actual, expected) << "trial " << trial;
  }
}

TEST(PhyHotpath, SoftDecodePuncturedMatchesReferenceOnMotherGrid) {
  // Punctured soft decode = expand the kept LLRs onto the mother grid with
  // LLR 0 at erased positions, then run the rate-1/2 trellis.
  Rng rng(104);
  for (CodeRate rate : {CodeRate::kRate2of3, CodeRate::kRate3of4}) {
    const auto mask = ref_keep_mask(rate);
    for (std::size_t trial = 0; trial < 10; ++trial) {
      const std::size_t periods = 6 + rng.index(20);
      const std::size_t kept = static_cast<std::size_t>(
          std::count(mask.begin(), mask.end(), true));
      std::vector<double> llrs(periods * kept);
      for (auto& l : llrs) l = 4.0 * rng.normal();

      std::vector<double> mother(periods * mask.size(), 0.0);
      std::size_t src = 0;
      for (std::size_t i = 0; i < mother.size(); ++i) {
        if (mask[i % mask.size()]) mother[i] = llrs[src++];
      }
      const Bits expected = ref_decode_soft(mother);
      const Bits actual = ConvolutionalCode::decode_soft(llrs, rate);
      ASSERT_EQ(actual, expected)
          << "rate " << static_cast<int>(rate) << " trial " << trial;
    }
  }
}

TEST(PhyHotpath, EncodeDecodeRoundtripAllRates) {
  Rng rng(105);
  for (CodeRate rate : kAllRates) {
    for (std::size_t trial = 0; trial < 10; ++trial) {
      // Tail-terminated: 6 zeros drive the encoder back to state 0, making
      // the clean-channel decode exact.
      std::size_t info_len = info_len_for(rate, 10 + rng.index(30));
      Bits info = phy::random_bits(info_len, rng);
      for (std::size_t i = 0; i < 6 && i < info.size(); ++i) {
        info[info.size() - 1 - i] = 0;
      }
      const Bits coded = ConvolutionalCode::encode(info, rate);
      EXPECT_EQ(coded.size(), phy::coded_length(info.size(), rate));
      const Bits decoded = ConvolutionalCode::decode(coded, rate);
      ASSERT_EQ(decoded, info)
          << "rate " << static_cast<int>(rate) << " trial " << trial;
    }
  }
}

TEST(PhyHotpath, DecodeBatchMatchesPerSymbolDecode) {
  Rng rng(106);
  for (CodeRate rate : kAllRates) {
    const std::size_t symbols = 7;
    const std::size_t info_len = info_len_for(rate, 24);
    Bits coded_all;
    std::vector<Bits> per_symbol;
    for (std::size_t s = 0; s < symbols; ++s) {
      const Bits info = phy::random_bits(info_len, rng);
      Bits coded = ConvolutionalCode::encode(info, rate);
      for (auto& b : coded) {
        if (rng.uniform() < 0.05) b ^= 1;
      }
      per_symbol.push_back(ConvolutionalCode::decode(coded, rate));
      coded_all.insert(coded_all.end(), coded.begin(), coded.end());
    }
    const Bits batched =
        ConvolutionalCode::decode_batch(coded_all, symbols, rate);
    Bits expected;
    for (const Bits& b : per_symbol) {
      expected.insert(expected.end(), b.begin(), b.end());
    }
    ASSERT_EQ(batched, expected) << "rate " << static_cast<int>(rate);
  }
}

// ------------------------------------------------------ ACS kernels ------

TEST(PhyHotpath, ViterbiAcsHardCrossLevelBitIdentity) {
  const kern::KernelOps& scalar = kern::scalar_ops();
  Rng rng(107);
  constexpr auto kInf = std::numeric_limits<std::int32_t>::max() / 4;
  for (std::size_t trial = 0; trial < 200; ++trial) {
    alignas(64) std::int32_t metric[64];
    alignas(64) std::int32_t cost0[64];
    alignas(64) std::int32_t cost1[64];
    for (auto& m : metric) {
      // Mix reachable metrics with unreachable kInf sentinels, as the first
      // trellis steps do (only state 0 is reachable at t = 0).
      m = rng.uniform() < 0.25 ? kInf
                               : static_cast<std::int32_t>(rng.index(1000));
    }
    for (auto& c : cost0) c = static_cast<std::int32_t>(rng.index(3));
    for (auto& c : cost1) c = static_cast<std::int32_t>(rng.index(3));

    alignas(64) std::int32_t next_scalar[64];
    std::uint64_t chosen_scalar = 0;
    scalar.viterbi_acs_hard(metric, cost0, cost1, next_scalar,
                            &chosen_scalar);

    for (const auto& [name, ops] : simd_levels()) {
      alignas(64) std::int32_t next_simd[64];
      std::uint64_t chosen_simd = 0;
      ops->viterbi_acs_hard(metric, cost0, cost1, next_simd, &chosen_simd);
      for (int s = 0; s < 64; ++s) {
        ASSERT_EQ(next_simd[s], next_scalar[s])
            << name << " trial " << trial << " state " << s;
      }
      ASSERT_EQ(chosen_simd, chosen_scalar) << name << " trial " << trial;
    }
  }
}

TEST(PhyHotpath, ViterbiAcsSoftCrossLevelBitIdentity) {
  const kern::KernelOps& scalar = kern::scalar_ops();
  Rng rng(108);
  constexpr double kInf = 1e300;
  for (std::size_t trial = 0; trial < 200; ++trial) {
    alignas(64) double metric[64];
    alignas(64) double cost0[64];
    alignas(64) double cost1[64];
    for (auto& m : metric) {
      m = rng.uniform() < 0.25 ? kInf : std::abs(rng.normal()) * 10.0;
    }
    for (auto& c : cost0) c = std::abs(rng.normal());
    for (auto& c : cost1) c = std::abs(rng.normal());

    alignas(64) double next_scalar[64];
    std::uint64_t chosen_scalar = 0;
    scalar.viterbi_acs_soft(metric, cost0, cost1, next_scalar,
                            &chosen_scalar);

    for (const auto& [name, ops] : simd_levels()) {
      alignas(64) double next_simd[64];
      std::uint64_t chosen_simd = 0;
      ops->viterbi_acs_soft(metric, cost0, cost1, next_simd, &chosen_simd);
      for (int s = 0; s < 64; ++s) {
        // Bit-identical, not approximately equal: the soft ACS is pure
        // add/compare, so every level must produce the same doubles.
        ASSERT_EQ(next_simd[s], next_scalar[s])
            << name << " trial " << trial << " state " << s;
      }
      ASSERT_EQ(chosen_simd, chosen_scalar) << name << " trial " << trial;
    }
  }
}

// -------------------------------------------------------- Eq. (1)/(2) ----

TEST(PhyHotpath, Qam64ErrorScalarKernelBitExact) {
  Rng rng(109);
  const kern::KernelOps& scalar = kern::scalar_ops();
  for (std::size_t trial = 0; trial < 20; ++trial) {
    phy::IqBuffer targets(1 + rng.index(100));
    for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
    const double alpha = 0.1 + 3.0 * rng.uniform();
    const double expected = ref_quantization_error(targets, alpha);
    const double actual = scalar.qam64_error(
        reinterpret_cast<const double*>(targets.data()), targets.size(),
        alpha, phy::Qam64::normalization());
    ASSERT_EQ(actual, expected) << "trial " << trial << " alpha " << alpha;
  }
}

TEST(PhyHotpath, Qam64ErrorSimdWithinTolerance) {
  // SIMD levels reassociate the accumulation (and snap to the grid with
  // floor(x+0.5) instead of round), so they carry a tolerance bound like the
  // matmul kernels — not a bit-identity claim.
  Rng rng(110);
  const kern::KernelOps& scalar = kern::scalar_ops();
  for (std::size_t trial = 0; trial < 20; ++trial) {
    phy::IqBuffer targets(1 + rng.index(200));
    for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
    const double alpha = 0.1 + 3.0 * rng.uniform();
    const double expected = scalar.qam64_error(
        reinterpret_cast<const double*>(targets.data()), targets.size(),
        alpha, phy::Qam64::normalization());
    for (const auto& [name, ops] : simd_levels()) {
      const double actual = ops->qam64_error(
          reinterpret_cast<const double*>(targets.data()), targets.size(),
          alpha, phy::Qam64::normalization());
      ASSERT_NEAR(actual, expected, 1e-9 * (1.0 + expected))
          << name << " trial " << trial;
    }
  }
}

TEST(PhyHotpath, QuantizationErrorMatchesReference) {
  // The dispatched public entry point agrees with the transcribed loop to
  // within the SIMD tolerance at whatever level CTJ_SIMD resolved.
  Rng rng(111);
  phy::IqBuffer targets(137);
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  for (double alpha : {0.3, 0.9, 1.3, 2.4}) {
    const double expected = ref_quantization_error(targets, alpha);
    const double actual = phy::quantization_error(targets, alpha);
    EXPECT_NEAR(actual, expected, 1e-9 * (1.0 + expected)) << alpha;
  }
}

TEST(PhyHotpath, AlphaSearchColdPathEqualsOptimalAlpha) {
  Rng rng(112);
  phy::IqBuffer targets(96);
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  phy::AlphaSearch search;
  EXPECT_FALSE(search.warm());
  // First call runs the full scan; its result is the full scan's, exactly.
  const double cold = search.solve(targets);
  EXPECT_EQ(cold, phy::optimal_alpha(targets));
  EXPECT_TRUE(search.warm());
  EXPECT_EQ(search.cold_solves(), 1u);
}

TEST(PhyHotpath, AlphaSearchWarmNeverWorseThanFullScan) {
  Rng rng(113);
  phy::IqBuffer targets(128);
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  phy::AlphaSearch search;
  search.solve(targets);
  for (std::size_t step = 0; step < 8; ++step) {
    // Successive packets of a streaming attack: same waveform plus a little
    // noise, so the E(α) basin moves slightly between solves.
    for (auto& t : targets) {
      t += phy::Cplx(0.02 * rng.normal(), 0.02 * rng.normal());
    }
    const double warm = search.solve(targets);
    const double full = phy::optimal_alpha(targets);
    const double warm_err = phy::quantization_error(targets, warm);
    const double full_err = phy::quantization_error(targets, full);
    ASSERT_LE(warm_err, full_err * (1.0 + 1e-9)) << "step " << step;
  }
}

TEST(PhyHotpath, AlphaSearchFallsBackOnForeignTargets) {
  // A seed from one target set must not trap the search in a stale basin
  // when the targets change completely: the cross-check triggers a rescan,
  // and the rescan result equals optimal_alpha exactly.
  Rng rng(114);
  phy::IqBuffer small(64), large(64);
  for (auto& t : small) {
    t = phy::Cplx(0.05 * rng.normal(), 0.05 * rng.normal());
  }
  for (auto& t : large) t = phy::Cplx(9.0 * rng.normal(), 9.0 * rng.normal());
  phy::AlphaSearch search;
  search.solve(small);
  const std::size_t cold_before = search.cold_solves();
  const double alpha = search.solve(large);
  EXPECT_EQ(alpha, phy::optimal_alpha(large));
  EXPECT_GT(search.cold_solves(), cold_before);

  // reset() drops the seed outright.
  search.reset();
  EXPECT_FALSE(search.warm());
}

}  // namespace
