// ThreadSanitizer driver for the serve engine: the worker pool, MPMC ready
// ring, wake protocol and eviction path all exercised under contention, with
// a determinism check on top. Built with TSan instrumentation (and
// engine.cpp compiled into this binary so the scheduler itself is
// instrumented) whenever the toolchain supports it — see tests/CMakeLists.
//
// Exit code 0 = no races reported and results bit-identical across worker
// counts; TSan itself fails the process on a race.
#include <cstdio>
#include <string>
#include <vector>

#include "serve/engine.hpp"

using namespace ctj;

namespace {

std::vector<serve::JobSpec> make_jobs() {
  std::vector<serve::JobSpec> jobs;
  const char* schemes[] = {"ql", "passive", "random"};
  for (int i = 0; i < 12; ++i) {
    serve::JobSpec spec;
    spec.scheme = schemes[i % 3];
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    spec.slots = 384;
    spec.reward_window = 128;
    if (i % 4 == 0) spec.jammer = jammer::JammerSpec::defaults("sweep");
    jobs.push_back(spec);
  }
  return jobs;
}

std::vector<serve::JobResult> run_fleet(std::size_t workers,
                                        std::size_t max_resident,
                                        const std::string& spool) {
  serve::ServeConfig config;
  config.workers = workers;
  config.max_resident = max_resident;
  config.quantum_slots = 64;
  config.spool_dir = spool;
  serve::ServeEngine engine(config);
  std::vector<std::uint64_t> ids;
  for (const auto& spec : make_jobs()) ids.push_back(engine.submit(spec));
  std::vector<serve::JobResult> results;
  for (std::uint64_t id : ids) results.push_back(engine.wait(id));
  return results;
}

}  // namespace

int main() {
  // Tight residency cap (4 << 12 jobs) forces the evict/revive path to run
  // concurrently with stepping; 4 workers contend on the ready ring.
  const auto contended = run_fleet(4, 4, "tsan_serve_spool_a");
  const auto serial = run_fleet(1, 1024, "tsan_serve_spool_b");
  if (contended.size() != serial.size()) {
    std::fprintf(stderr, "result count mismatch\n");
    return 1;
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (contended[i].reward_crc != serial[i].reward_crc ||
        contended[i].state_crc != serial[i].state_crc ||
        contended[i].slots_run != serial[i].slots_run) {
      std::fprintf(stderr, "job %zu diverged across worker counts\n", i);
      return 1;
    }
  }
  std::printf("tsan_serve_engine: %zu jobs bit-identical across 4w/cap4 vs "
              "1w/uncapped\n",
              serial.size());
  return 0;
}
