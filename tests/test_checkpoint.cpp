// Checkpoint & resume tests for the training stack: RNG stream round trips,
// agent/scheme state round trips with the strong no-mutation-on-failure
// guarantee, replay-ring persistence, and the headline property — a killed
// and resumed training run is bit-identical to an uninterrupted one, for
// both the sequential and the batched trainer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/environment.hpp"
#include "core/trainer.hpp"
#include "io/container.hpp"
#include "rl/replay.hpp"

using namespace ctj;
using namespace ctj::core;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

DqnScheme::Config small_scheme_config() {
  DqnScheme::Config config;
  config.history = 2;
  config.hidden = {8};
  config.epsilon_decay_steps = 200;
  config.seed = 99;
  return config;
}

EnvironmentConfig small_env_config() {
  auto config = EnvironmentConfig::defaults();
  config.seed = 5;
  return config;
}

std::string scheme_bytes(const DqnScheme& scheme) {
  io::ContainerWriter out;
  scheme.save_state(out);
  return out.to_bytes();
}

rl::Transition make_transition(double tag) {
  rl::Transition t;
  t.state = {tag, tag + 0.25};
  t.action = static_cast<std::size_t>(tag) % 3;
  t.reward = -tag;
  t.next_state = {tag + 0.5, tag + 0.75};
  t.done = false;
  return t;
}

void expect_same_transition(const rl::Transition& a, const rl::Transition& b) {
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.reward, b.reward);
  EXPECT_EQ(a.next_state, b.next_state);
  EXPECT_EQ(a.done, b.done);
}

}  // namespace

TEST(RngState, RoundTripPreservesDrawStream) {
  Rng rng(1234);
  rng.uniform();
  // One normal draw primes the Box–Muller spare — the half of the
  // distribution state a naive engine-only serialization would lose.
  rng.normal();

  const std::string state = rng.serialize_state();
  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) {
    expected.push_back(rng.uniform());
    expected.push_back(rng.normal());
    expected.push_back(static_cast<double>(rng.index(1000)));
  }

  Rng restored(1);  // different seed: state must come wholly from the text
  restored.restore_state(state);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(restored.uniform(), expected[3 * i]);
    EXPECT_EQ(restored.normal(), expected[3 * i + 1]);
    EXPECT_EQ(static_cast<double>(restored.index(1000)), expected[3 * i + 2]);
  }
}

TEST(RngState, MalformedStateThrowsWithoutMutating) {
  Rng rng(7);
  const std::string before = rng.serialize_state();
  EXPECT_THROW(rng.restore_state("not an rng state"), CheckFailure);
  EXPECT_EQ(rng.serialize_state(), before);
}

TEST(ReplayState, MidWrapRoundTrip) {
  rl::ReplayBuffer ring(4);
  for (int i = 0; i < 6; ++i) ring.push(make_transition(i));  // wrapped twice
  ASSERT_EQ(ring.size(), 4u);
  ASSERT_EQ(ring.cursor(), 2u);

  io::ByteWriter w;
  ring.save_state(w);
  rl::ReplayBuffer restored(4);
  io::ByteReader r(w.buffer());
  restored.load_state(r);

  EXPECT_EQ(restored.size(), ring.size());
  EXPECT_EQ(restored.cursor(), ring.cursor());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    expect_same_transition(restored.at(i), ring.at(i));
  }

  // The restored ring keeps overwriting exactly where the original would.
  ring.push(make_transition(50));
  restored.push(make_transition(50));
  EXPECT_EQ(restored.cursor(), ring.cursor());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    expect_same_transition(restored.at(i), ring.at(i));
  }
}

TEST(ReplayState, SamplingOrderIsDeterministicAcrossSaveLoad) {
  rl::ReplayBuffer ring(16);
  for (int i = 0; i < 12; ++i) ring.push(make_transition(i));
  Rng rng(42);
  rng.uniform();  // advance to a non-trivial point
  const std::string rng_state = rng.serialize_state();

  io::ByteWriter w;
  ring.save_state(w);

  const auto batch_a = ring.sample(8, rng);

  rl::ReplayBuffer restored(16);
  io::ByteReader r(w.buffer());
  restored.load_state(r);
  Rng rng_b(7);
  rng_b.restore_state(rng_state);
  const auto batch_b = restored.sample(8, rng_b);

  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    expect_same_transition(*batch_a[i], *batch_b[i]);
  }
}

TEST(ReplayState, CapacityMismatchThrowsWithoutMutating) {
  rl::ReplayBuffer ring(4);
  for (int i = 0; i < 3; ++i) ring.push(make_transition(i));
  io::ByteWriter w;
  ring.save_state(w);

  rl::ReplayBuffer other(8);
  other.push(make_transition(77));
  io::ByteReader r(w.buffer());
  try {
    other.load_state(r);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
  ASSERT_EQ(other.size(), 1u);
  expect_same_transition(other.at(0), make_transition(77));
}

TEST(SchemeState, SaveLoadSaveIsByteIdentical) {
  DqnScheme trained(small_scheme_config());
  CompetitionEnvironment env(small_env_config());
  TrainerConfig config;
  config.max_slots = 350;
  config.reward_window = 50;
  train(trained, env, config);

  const std::string first = scheme_bytes(trained);

  DqnScheme restored(small_scheme_config());
  restored.load_state(io::ContainerReader::from_bytes(first));
  EXPECT_EQ(scheme_bytes(restored), first);

  // The restored scheme also behaves identically.
  const auto obs = trained.observation();
  EXPECT_EQ(restored.observation(), obs);
  EXPECT_EQ(restored.agent().act_greedy(obs), trained.agent().act_greedy(obs));
}

TEST(SchemeState, ReadConfigReconstructsMatchingScheme) {
  DqnScheme source(small_scheme_config());
  const std::string path = temp_path("ctj_scheme_cfg.ctjs");
  save_scheme(source, path);

  const DqnScheme::Config config = read_scheme_config(path);
  EXPECT_EQ(config.history, small_scheme_config().history);
  EXPECT_EQ(config.hidden, small_scheme_config().hidden);
  EXPECT_EQ(config.seed, small_scheme_config().seed);

  DqnScheme clone(config);
  load_scheme(clone, path);
  EXPECT_EQ(scheme_bytes(clone), scheme_bytes(source));
  std::filesystem::remove(path);
}

TEST(SchemeState, ConfigMismatchThrowsWithoutMutating) {
  DqnScheme source(small_scheme_config());
  io::ContainerWriter out;
  source.save_state(out);
  const io::ContainerReader in = io::ContainerReader::from_bytes(out.to_bytes());

  auto other_config = small_scheme_config();
  other_config.hidden = {16};
  DqnScheme other(other_config);
  const std::string before = scheme_bytes(other);
  try {
    other.load_state(in);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
  EXPECT_EQ(scheme_bytes(other), before);
}

TEST(SchemeState, CorruptChunkPayloadThrowsWithoutMutating) {
  DqnScheme source(small_scheme_config());
  CompetitionEnvironment env(small_env_config());
  TrainerConfig config;
  config.max_slots = 300;
  config.reward_window = 50;
  train(source, env, config);

  // Rebuild the container with the replay payload truncated: CRCs are
  // re-stamped so only the payload decoder can catch it.
  io::ContainerWriter original;
  source.save_state(original);
  const io::ContainerReader in =
      io::ContainerReader::from_bytes(original.to_bytes());
  io::ContainerWriter tampered;
  for (const io::ChunkInfo& chunk : in.chunks()) {
    std::string payload(in.chunk(chunk.tag));
    if (chunk.tag == "REPLAY") payload.resize(payload.size() - 8);
    tampered.add_chunk(chunk.tag, std::move(payload));
  }

  DqnScheme victim(small_scheme_config());
  const std::string before = scheme_bytes(victim);
  EXPECT_THROW(
      victim.load_state(io::ContainerReader::from_bytes(tampered.to_bytes())),
      io::IoError);
  EXPECT_EQ(scheme_bytes(victim), before);
}

TEST(SchemeState, FlippedBytesInModelFileAlwaysThrow) {
  DqnScheme source(small_scheme_config());
  io::ContainerWriter out;
  add_meta_chunk(out, "model");
  source.save_state(out);
  const std::string bytes = out.to_bytes();
  // Sampled single-byte corruption sweep over a real model file (every
  // byte is exercised exhaustively at container level in test_io.cpp).
  for (std::size_t i = 0; i < bytes.size(); i += 13) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    EXPECT_THROW(io::ContainerReader::from_bytes(std::move(corrupt)),
                 io::IoError)
        << "flipped byte " << i << " went undetected";
  }
}

TEST(PolicyState, LoadPolicyRestoresGreedyBehaviourOnly) {
  DqnScheme trained(small_scheme_config());
  CompetitionEnvironment env(small_env_config());
  TrainerConfig config;
  config.max_slots = 300;
  config.reward_window = 50;
  train(trained, env, config);
  const std::string path = temp_path("ctj_policy.ctjs");
  save_scheme(trained, path);

  DqnScheme fresh(small_scheme_config());
  load_policy(fresh, path);
  const auto obs = trained.observation();
  EXPECT_EQ(fresh.agent().act_greedy(obs), trained.agent().act_greedy(obs));
  // Training state was deliberately not restored.
  EXPECT_EQ(fresh.agent().steps(), 0u);
  std::filesystem::remove(path);
}

TEST(TrainerCheckpoint, KillResumeIsBitIdenticalSequential) {
  const std::string path = temp_path("ctj_resume_seq.ctjs");
  std::filesystem::remove(path);

  TrainerConfig config;
  config.max_slots = 400;
  config.reward_window = 50;

  // Reference: one uninterrupted run.
  std::vector<double> ref_rewards;
  config.on_slot = [&](std::size_t, double r) { ref_rewards.push_back(r); };
  DqnScheme ref(small_scheme_config());
  CompetitionEnvironment ref_env(small_env_config());
  const auto ref_stats = train(ref, ref_env, config);
  ASSERT_EQ(ref_rewards.size(), 400u);

  // Killed + resumed: phase 1 stops at slot 250, phase 2 picks the
  // checkpoint up with the full budget in a fresh process-equivalent
  // (new scheme and environment objects).
  std::vector<double> rewards;
  config.on_slot = [&](std::size_t, double r) { rewards.push_back(r); };
  config.checkpoint = CheckpointOptions{path, 100, true};
  {
    TrainerConfig phase1 = config;
    phase1.max_slots = 250;
    DqnScheme scheme(small_scheme_config());
    CompetitionEnvironment env(small_env_config());
    train(scheme, env, phase1);
  }
  DqnScheme resumed(small_scheme_config());
  CompetitionEnvironment env(small_env_config());
  const auto stats = train(resumed, env, config);

  EXPECT_EQ(stats.slots_trained, 400u);
  EXPECT_EQ(stats.final_mean_reward, ref_stats.final_mean_reward);
  EXPECT_EQ(rewards, ref_rewards);  // identical per-slot reward stream
  EXPECT_EQ(scheme_bytes(resumed), scheme_bytes(ref));  // bit-identical state
  std::filesystem::remove(path);
}

TEST(TrainerCheckpoint, KillResumeIsBitIdenticalAdaptiveJammer) {
  // Same kill/resume discipline against the behavioural adaptive jammer:
  // its checkpoint payload must carry BOTH of its RNG streams (own + nested
  // sweeper) and the visit histogram, or the resumed run diverges from the
  // reference within a few slots.
  const std::string path = temp_path("ctj_resume_adaptive.ctjs");
  std::filesystem::remove(path);

  EnvironmentConfig env_config = small_env_config();
  env_config.jammer = jammer::JammerSpec::defaults("adaptive");

  TrainerConfig config;
  config.max_slots = 400;
  config.reward_window = 50;

  std::vector<double> ref_rewards;
  config.on_slot = [&](std::size_t, double r) { ref_rewards.push_back(r); };
  DqnScheme ref(small_scheme_config());
  CompetitionEnvironment ref_env(env_config);
  const auto ref_stats = train(ref, ref_env, config);
  ASSERT_EQ(ref_rewards.size(), 400u);

  std::vector<double> rewards;
  config.on_slot = [&](std::size_t, double r) { rewards.push_back(r); };
  config.checkpoint = CheckpointOptions{path, 100, true};
  {
    TrainerConfig phase1 = config;
    phase1.max_slots = 250;
    DqnScheme scheme(small_scheme_config());
    CompetitionEnvironment env(env_config);
    train(scheme, env, phase1);
  }
  DqnScheme resumed(small_scheme_config());
  CompetitionEnvironment env(env_config);
  const auto stats = train(resumed, env, config);

  EXPECT_EQ(stats.slots_trained, 400u);
  EXPECT_EQ(stats.final_mean_reward, ref_stats.final_mean_reward);
  EXPECT_EQ(rewards, ref_rewards);
  EXPECT_EQ(scheme_bytes(resumed), scheme_bytes(ref));
  std::filesystem::remove(path);
}

TEST(TrainerCheckpoint, ResumeRejectsDifferentJammerSpec) {
  // A checkpoint written against one adversary must not resume against
  // another: the JAMRCFG chunk check throws kStateMismatch.
  const std::string path = temp_path("ctj_resume_wrong_jammer.ctjs");
  std::filesystem::remove(path);

  EnvironmentConfig env_config = small_env_config();
  env_config.jammer = jammer::JammerSpec::defaults("reactive");

  TrainerConfig config;
  config.max_slots = 150;
  config.reward_window = 50;
  config.checkpoint = CheckpointOptions{path, 100, true};
  {
    DqnScheme scheme(small_scheme_config());
    CompetitionEnvironment env(env_config);
    train(scheme, env, config);
  }

  EnvironmentConfig other = small_env_config();
  other.jammer = jammer::JammerSpec::defaults("sweep");
  DqnScheme resumed(small_scheme_config());
  CompetitionEnvironment env(other);
  config.max_slots = 400;
  EXPECT_THROW(train(resumed, env, config), io::IoError);
  std::filesystem::remove(path);
}

TEST(TrainerCheckpoint, KillResumeIsBitIdenticalBatched) {
  const std::string path = temp_path("ctj_resume_batched.ctjs");
  std::filesystem::remove(path);
  const std::size_t replicas = 3;

  TrainerConfig config;
  config.max_slots = 402;  // multiple of the replica count
  config.reward_window = 50;

  std::vector<double> ref_rewards;
  config.on_slot = [&](std::size_t, double r) { ref_rewards.push_back(r); };
  DqnScheme ref(small_scheme_config());
  const auto ref_stats =
      train_batched(ref, small_env_config(), config, replicas);
  ASSERT_EQ(ref_rewards.size(), 402u);

  std::vector<double> rewards;
  config.on_slot = [&](std::size_t, double r) { rewards.push_back(r); };
  config.checkpoint = CheckpointOptions{path, 100, true};
  {
    TrainerConfig phase1 = config;
    phase1.max_slots = 201;
    DqnScheme scheme(small_scheme_config());
    train_batched(scheme, small_env_config(), phase1, replicas);
  }
  DqnScheme resumed(small_scheme_config());
  const auto stats =
      train_batched(resumed, small_env_config(), config, replicas);

  EXPECT_EQ(stats.slots_trained, 402u);
  EXPECT_EQ(stats.final_mean_reward, ref_stats.final_mean_reward);
  EXPECT_EQ(rewards, ref_rewards);
  EXPECT_EQ(scheme_bytes(resumed), scheme_bytes(ref));
  std::filesystem::remove(path);
}

TEST(TrainerCheckpoint, ResumeWithNothingLeftToDoIsStable) {
  const std::string path = temp_path("ctj_resume_done.ctjs");
  std::filesystem::remove(path);

  TrainerConfig config;
  config.max_slots = 200;
  config.reward_window = 50;
  config.checkpoint = CheckpointOptions{path, 0, true};
  {
    DqnScheme scheme(small_scheme_config());
    CompetitionEnvironment env(small_env_config());
    train(scheme, env, config);
  }
  std::ifstream f1(path, std::ios::binary);
  std::stringstream s1;
  s1 << f1.rdbuf();

  std::size_t extra_slots = 0;
  config.on_slot = [&](std::size_t, double) { ++extra_slots; };
  DqnScheme scheme(small_scheme_config());
  CompetitionEnvironment env(small_env_config());
  const auto stats = train(scheme, env, config);
  EXPECT_EQ(stats.slots_trained, 200u);
  EXPECT_EQ(extra_slots, 0u);  // no retraining happened

  std::ifstream f2(path, std::ios::binary);
  std::stringstream s2;
  s2 << f2.rdbuf();
  EXPECT_EQ(s1.str(), s2.str());  // rewrite is byte-identical
  std::filesystem::remove(path);
}

TEST(TrainerCheckpoint, ResumeValidatesTrainerConfig) {
  const std::string path = temp_path("ctj_resume_cfg.ctjs");
  std::filesystem::remove(path);

  TrainerConfig config;
  config.max_slots = 150;
  config.reward_window = 50;
  config.checkpoint = CheckpointOptions{path, 0, true};
  {
    DqnScheme scheme(small_scheme_config());
    CompetitionEnvironment env(small_env_config());
    train(scheme, env, config);
  }

  TrainerConfig changed = config;
  changed.reward_window = 60;
  DqnScheme scheme(small_scheme_config());
  CompetitionEnvironment env(small_env_config());
  try {
    train(scheme, env, changed);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }

  // A batched trainer must refuse a sequential checkpoint outright.
  DqnScheme batched(small_scheme_config());
  TrainerConfig batched_config = config;
  batched_config.max_slots = 150;
  try {
    train_batched(batched, small_env_config(), batched_config, 3);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kStateMismatch);
  }
  std::filesystem::remove(path);
}
