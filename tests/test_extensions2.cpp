// Tests for the second round of extensions: soft-decision Viterbi decoding
// and the adaptive pattern-tracking jammer.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/rng.hpp"
#include "core/environment.hpp"
#include "core/energy.hpp"
#include "core/rl_fh.hpp"
#include "core/trainer.hpp"
#include "jammer/stealth.hpp"
#include "net/mac.hpp"
#include "net/node.hpp"
#include "phy/wifi_preamble.hpp"
#include "phy/zigbee_packet.hpp"
#include "jammer/adaptive_jammer.hpp"
#include "phy/convolutional.hpp"

namespace ctj {
namespace {

// -------------------------------------------------------- soft Viterbi ----

phy::Bits encode(const phy::Bits& info) {
  return phy::ConvolutionalCode::encode(info);
}

std::vector<double> to_llrs(const phy::Bits& coded, double confidence) {
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? confidence : -confidence;
  }
  return llrs;
}

TEST(SoftViterbi, CleanRoundTrip) {
  Rng rng(1);
  const phy::Bits info = phy::random_bits(200, rng);
  const auto llrs = to_llrs(encode(info), 2.0);
  EXPECT_EQ(phy::ConvolutionalCode::decode_soft(llrs), info);
}

TEST(SoftViterbi, ErasuresAreNeutral) {
  // Zero LLR = no information; scattered erasures must not corrupt decoding.
  Rng rng(2);
  const phy::Bits info = phy::random_bits(150, rng);
  auto llrs = to_llrs(encode(info), 1.0);
  for (std::size_t i = 5; i < llrs.size(); i += 17) llrs[i] = 0.0;
  EXPECT_EQ(phy::ConvolutionalCode::decode_soft(llrs), info);
}

TEST(SoftViterbi, LowConfidenceFlipsAreOutvoted) {
  // A flipped bit with tiny confidence should lose against confident
  // neighbours — the soft decoder's advantage over hard decisions.
  Rng rng(3);
  const phy::Bits info = phy::random_bits(150, rng);
  auto llrs = to_llrs(encode(info), 2.0);
  for (std::size_t i = 10; i < llrs.size(); i += 9) {
    llrs[i] = -0.1 * (llrs[i] > 0 ? 1.0 : -1.0);  // weak wrong values
  }
  EXPECT_EQ(phy::ConvolutionalCode::decode_soft(llrs), info);
}

TEST(SoftViterbi, BeatsHardDecisionsInAwgn) {
  Rng rng(4);
  std::size_t soft_errors = 0, hard_errors = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const phy::Bits info = phy::random_bits(144, rng);
    const phy::Bits coded = encode(info);
    std::vector<double> llrs(coded.size());
    phy::Bits hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      // BPSK over AWGN at ~1.5 dB Eb/N0-ish.
      const double tx = coded[i] ? 1.0 : -1.0;
      const double rx = tx + rng.normal(0.0, 0.85);
      llrs[i] = rx;
      hard[i] = rx >= 0.0 ? 1 : 0;
    }
    soft_errors += phy::hamming_distance(
        phy::ConvolutionalCode::decode_soft(llrs), info);
    hard_errors += phy::hamming_distance(
        phy::ConvolutionalCode::decode(hard), info);
  }
  EXPECT_LT(soft_errors, hard_errors);
}

// ------------------------------------------------------ adaptive jammer ----

TEST(AdaptiveJammer, LearnsTheHotGroup) {
  jammer::AdaptiveJammer jx(jammer::AdaptiveJammerConfig::defaults(), 5);
  // Victim lives on channel 9 (group 2) for a long stretch.
  for (int slot = 0; slot < 200; ++slot) jx.step(9);
  EXPECT_EQ(jx.most_visited_group(), 2);
  EXPECT_GT(jx.top_group_weight(), 0.5);
}

TEST(AdaptiveJammer, PunishesPredictableVictimsMoreThanSweep) {
  // A victim with a strong channel preference (75 % of slots on channel 9,
  // otherwise uniform): the adaptive jammer camps on the hot group and hits
  // more often than the blind sweeper, which must re-find the victim after
  // every excursion.
  auto config = jammer::AdaptiveJammerConfig::defaults();
  config.exploit_probability = 0.9;
  jammer::AdaptiveJammer adaptive(config, 6);
  jammer::SweepJammer sweep(jammer::SweepJammerConfig::defaults(), 6);

  Rng victim_rng(60);
  int adaptive_hits = 0, sweep_hits = 0;
  for (int slot = 0; slot < 4000; ++slot) {
    const int victim =
        victim_rng.bernoulli(0.75) ? 9 : victim_rng.uniform_int(0, 15);
    adaptive_hits += adaptive.step(victim).hit ? 1 : 0;
    sweep_hits += sweep.step(victim).hit ? 1 : 0;
  }
  EXPECT_GT(adaptive_hits, sweep_hits);
  // Exploiting the hot group alone hits ~0.9 · 0.75 of all slots.
  EXPECT_GT(adaptive_hits, 2000);
}

TEST(AdaptiveJammer, AlternatingVictimStaysAStepAhead) {
  // The flip side (and why the paper's random-hop escape works): a strict
  // two-channel alternation keeps the histogram pointing at *yesterday's*
  // group, so the exploit mode whiffs almost every slot.
  auto config = jammer::AdaptiveJammerConfig::defaults();
  config.exploit_probability = 1.0;
  jammer::AdaptiveJammer adaptive(config, 61);
  int hits = 0;
  for (int slot = 0; slot < 2000; ++slot) {
    hits += adaptive.step(slot % 2 == 0 ? 3 : 9).hit ? 1 : 0;
  }
  EXPECT_LT(hits, 300);
}

TEST(AdaptiveJammer, UniformVictimLimitsTheAdvantage) {
  // Against a uniformly hopping victim the histogram stays flat and the
  // exploit mode is no better than 1/4 per slot.
  auto config = jammer::AdaptiveJammerConfig::defaults();
  config.exploit_probability = 1.0;
  jammer::AdaptiveJammer jx(config, 7);
  Rng rng(8);
  int hits = 0;
  const int slots = 4000;
  for (int slot = 0; slot < slots; ++slot) {
    hits += jx.step(rng.uniform_int(0, 15)).hit ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / slots, 0.25, 0.05);
}

TEST(AdaptiveJammer, ResetForgetsHistory) {
  jammer::AdaptiveJammer jx(jammer::AdaptiveJammerConfig::defaults(), 9);
  for (int slot = 0; slot < 100; ++slot) jx.step(12);
  EXPECT_EQ(jx.most_visited_group(), 3);
  jx.reset();
  EXPECT_NEAR(jx.top_group_weight(), 0.25, 1e-9);
}

TEST(AdaptiveJammer, RejectsBadConfig) {
  auto config = jammer::AdaptiveJammerConfig::defaults();
  config.exploit_probability = 1.5;
  EXPECT_THROW(jammer::AdaptiveJammer(config, 1), CheckFailure);
  config = jammer::AdaptiveJammerConfig::defaults();
  config.decay = 0.0;
  EXPECT_THROW(jammer::AdaptiveJammer(config, 1), CheckFailure);
}

}  // namespace
}  // namespace ctj
namespace ctj {
namespace {

// ------------------------------------------------- late coverage additions ----

TEST(DqnSchemeIo, TrainedPolicySurvivesSaveLoadThroughScheme) {
  core::DqnScheme::Config config;
  config.history = 2;
  config.hidden = {16};
  config.deploy_epsilon = 0.0;
  config.seed = 77;
  core::DqnScheme a(config);
  // Perturb weights with a short training burst.
  core::CompetitionEnvironment env(core::EnvironmentConfig::defaults());
  core::TrainerConfig trainer;
  trainer.max_slots = 600;
  core::train(a, env, trainer);
  a.set_training(false);
  a.reset();

  const std::string path = "/tmp/ctj_scheme_io.bin";
  a.agent().save_file(path);
  core::DqnScheme b(config);
  b.agent().load_file(path);
  b.set_training(false);
  b.reset();

  for (int i = 0; i < 30; ++i) {
    const auto da = a.decide();
    const auto db = b.decide();
    EXPECT_EQ(da.channel, db.channel);
    EXPECT_EQ(da.power_index, db.power_index);
    core::SlotFeedback fb;
    fb.success = i % 3 != 0;
    fb.channel = da.channel;
    fb.power_index = da.power_index;
    a.feedback(fb);
    b.feedback(fb);
  }
  std::filesystem::remove(path);
}

TEST(HubCoverage, DuplicateSequencesCounted) {
  net::Hub hub;
  net::MacFrame frame;
  frame.type = net::MacFrameType::kData;
  frame.src_addr = 2;
  frame.sequence = 5;
  frame.payload = {2, 5, 0, 9};
  const auto bytes = phy::ZigbeeFrame::build(frame.serialize());
  EXPECT_TRUE(hub.receive(bytes));
  EXPECT_TRUE(hub.receive(bytes));  // retransmission of the same sequence
  EXPECT_EQ(hub.record(2).duplicates, 1u);
  EXPECT_EQ(hub.record(2).delivered, 2u);
}

TEST(StealthCoverage, WindowlessConfigValidated) {
  jammer::StealthConfig config;
  config.idle_overlap_probability = 0.2;
  const auto r = jammer::analyze_detectability(
      channel::JammingSignalType::kEmuBee, true, config);
  EXPECT_DOUBLE_EQ(r.p_energy, 0.2);
  EXPECT_DOUBLE_EQ(r.p_attributable, 0.2);  // frame evidence never fires
}

TEST(EnergyCoverage, RxOnlySlot) {
  core::EnergyModelConfig config;
  config.tx_duty = 0.0;  // pure listening
  config.rx_power_mw = 12.0;
  core::EnergyAccumulator acc(config);
  acc.record_slot(15.0, 2.0, false);
  EXPECT_DOUBLE_EQ(acc.report().tx_mj, 0.0);
  EXPECT_NEAR(acc.report().total_mj, 24.0, 1e-9);
}

TEST(PreambleCoverage, FullFramePreambleThenSignalParses) {
  // Assemble STF | LTF | SIGNAL as a transmitter would, then detect and
  // parse from the receiver side.
  phy::IqBuffer frame = phy::WifiPreamble::short_training_field();
  const auto ltf = phy::WifiPreamble::long_training_field();
  frame.insert(frame.end(), ltf.begin(), ltf.end());
  phy::WifiSignalField signal;
  signal.rate_code = 0b0011;
  signal.length_bytes = 1500;
  const auto sig_symbol = signal.modulate();
  frame.insert(frame.end(), sig_symbol.begin(), sig_symbol.end());

  EXPECT_TRUE(phy::WifiPreamble::detect_stf(frame));
  const std::span<const phy::Cplx> sig_span(frame.data() + 320, 80);
  const auto decoded = phy::WifiSignalField::demodulate(sig_span);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->length_bytes, 1500);
}

TEST(CsmaCoverage, BackoffExponentGrowsDelayOnBusyChannel) {
  net::CsmaCa csma;
  Rng rng(20);
  // With a busy channel, later backoffs draw from larger windows: the mean
  // delay of failures exceeds 3 unit-backoff draws from BE=3 alone.
  double total = 0.0;
  int failures = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto attempt = csma.attempt(1.0, rng);
    if (!attempt.success) {
      total += attempt.delay_s;
      ++failures;
    }
  }
  ASSERT_GT(failures, 0);
  const double mean_fail_delay = total / failures;
  // Expected: (3.5 + 7.5 + 15.5 + 15.5) × 320 µs + 4 CCA ≈ 13.9 ms.
  EXPECT_NEAR(mean_fail_delay, 13.9e-3, 1.5e-3);
}

}  // namespace
}  // namespace ctj
namespace ctj {
namespace {

TEST(GroupAwareHops, SameGroupHopBehavesLikeStayButPaysHopCost) {
  // Hopping from channel 0 to channel 1 stays inside the jammer's 4-channel
  // group: the discovery hazard must match the *stay* kernel (1/(N−n)),
  // even though the L_H cost is charged.
  auto config = core::EnvironmentConfig::defaults();
  config.seed = 99;
  core::CompetitionEnvironment env(config);
  std::map<int, std::pair<int, int>> jams_by_n;
  for (int slot = 0; slot < 80000; ++slot) {
    if (env.hidden_kind() ==
        core::CompetitionEnvironment::HiddenKind::kCounting) {
      if (env.current_channel() > 1) {
        // Coming back from an escape: re-enter the observed group first
        // (an out-of-group hop — excluded from the statistics).
        env.step(0, 0);
        continue;
      }
      const int n = env.hidden_n();
      // Toggle between channels 0 and 1 — always the same group.
      const int next = env.current_channel() == 0 ? 1 : 0;
      const auto step = env.step(next, 0);
      EXPECT_TRUE(step.hopped);
      EXPECT_DOUBLE_EQ(step.reward,
                       -config.tx_levels[0] - config.loss_hop -
                           (step.success ? 0.0 : config.loss_jam));
      auto& [jammed, total] = jams_by_n[n];
      ++total;
      if (step.outcome != core::SlotOutcome::kClear) ++jammed;
    } else {
      env.step((env.current_channel() + 5) % 16, 0);  // real escape
    }
  }
  for (int n = 1; n <= 3; ++n) {
    const auto [jammed, total] = jams_by_n[n];
    if (total < 800) continue;
    EXPECT_NEAR(static_cast<double>(jammed) / total, 1.0 / (4 - n), 0.035)
        << "n = " << n;
  }
}

TEST(GroupAwareHops, SameGroupHopDoesNotEscapeDwellingJammer) {
  auto config = core::EnvironmentConfig::defaults();
  config.mode = JammerPowerMode::kMaxPower;
  config.seed = 101;
  core::CompetitionEnvironment env(config);
  // Get jammed by staying put.
  while (env.hidden_kind() ==
         core::CompetitionEnvironment::HiddenKind::kCounting) {
    env.step(env.current_channel(), 0);
  }
  // In-group hops never escape (Case 5 applies, q = 0 in max mode).
  for (int i = 0; i < 30; ++i) {
    const int next = env.current_channel() == 0 ? 1 : 0;
    const auto step = env.step(next, 0);
    EXPECT_EQ(step.outcome, core::SlotOutcome::kJammedFailed);
  }
  // One out-of-group hop escapes immediately (Case 6).
  EXPECT_TRUE(env.step(8, 0).success);
}

}  // namespace
}  // namespace ctj
