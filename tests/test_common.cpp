// Tests for the common substrate: checks, RNG, units, math utilities,
// statistics and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "common/modes.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace ctj {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(CTJ_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckFailure) {
  EXPECT_THROW(CTJ_CHECK(false), CheckFailure);
}

TEST(Check, MessageIsIncluded) {
  try {
    CTJ_CHECK_MSG(false, "the answer is " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is 42"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  const std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(1);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(w), CheckFailure);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  EXPECT_NE(a.uniform(), child.uniform());
}

TEST(Units, DbmMwRoundTrip) {
  for (double dbm : {-90.0, -30.0, 0.0, 20.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-12);
  }
}

TEST(Units, KnownConversions) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(20.0), 100.0, 1e-9);  // the Wi-Fi jammer's 100 mW
  EXPECT_NEAR(ratio_to_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_ratio(3.0), 1.995, 0.01);
}

TEST(Units, NoiseFloor2MHz) {
  // kTB for 2 MHz ≈ −111 dBm.
  EXPECT_NEAR(noise_floor_dbm(2e6), -111.0, 0.2);
}

TEST(MathUtil, LinspaceEndpointsAndSpacing) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_NEAR(v[1] - v[0], 0.5, 1e-12);
}

TEST(MathUtil, LinspaceSinglePoint) {
  const auto v = linspace(2.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(MathUtil, ArgmaxArgminFirstOnTies) {
  const std::vector<double> v = {1.0, 5.0, 5.0, -2.0, -2.0};
  EXPECT_EQ(argmax(v), 1u);
  EXPECT_EQ(argmin(v), 3u);
}

TEST(MathUtil, ClampBounds) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtil, MinimizeUnimodalQuadratic) {
  const double x = minimize_unimodal(
      [](double v) { return (v - 1.7) * (v - 1.7) + 3.0; }, -10.0, 10.0);
  EXPECT_NEAR(x, 1.7, 1e-6);
}

TEST(MathUtil, MinimizeUnimodalAsymmetric) {
  const double x = minimize_unimodal(
      [](double v) { return std::abs(v - 0.25) + 0.1 * v; }, 0.0, 1.0);
  EXPECT_NEAR(x, 0.25, 1e-6);
}

TEST(MathUtil, MeanAndStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(sample_stddev(v), 2.138, 0.01);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : v) stats.add(x);
  EXPECT_EQ(stats.count(), v.size());
  EXPECT_DOUBLE_EQ(stats.mean(), mean(v));
  EXPECT_NEAR(stats.stddev(), sample_stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    if (i % 2 == 0) a.add(x); else b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RateCounter, RateAndEdgeCases) {
  RateCounter c;
  EXPECT_DOUBLE_EQ(c.rate(), 0.0);
  c.record(true);
  c.record(false);
  c.record(true);
  c.record(true);
  EXPECT_DOUBLE_EQ(c.rate(), 0.75);
  EXPECT_EQ(c.trials(), 4u);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamps to 0
  h.add(50.0);  // clamps to 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.5);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"x", "value"});
  t.add_row(std::vector<std::string>{"1", "10.00"});
  t.add_row(std::vector<double>{1.0, 2.5}, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), CheckFailure);
}

TEST(Modes, ToString) {
  EXPECT_STREQ(to_string(JammerPowerMode::kMaxPower), "max-power");
  EXPECT_STREQ(to_string(JammerPowerMode::kRandomPower), "random-power");
}

}  // namespace
}  // namespace ctj
