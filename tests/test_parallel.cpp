// Tests for the parallel sweep engine: thread-pool plumbing, parallel_map
// semantics (ordering, exceptions, nesting) and the load-bearing guarantee
// that a parallel sweep is bit-identical to a sequential one at any thread
// count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "core/experiment.hpp"

namespace ctj {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SharedPoolHasAtLeastFourWorkers) {
  // The shared pool is intentionally sized >= 4 even on small machines so
  // determinism tests exercise real concurrency.
  EXPECT_GE(ThreadPool::shared().size(), 4u);
}

TEST(ParallelMap, PreservesIndexOrder) {
  const auto out = parallel_map(
      100, [](std::size_t i) { return 3 * i + 1; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ParallelMap, SingleThreadAndEmptyInput) {
  const auto one = parallel_map(5, [](std::size_t i) { return i * i; }, 1);
  ASSERT_EQ(one.size(), 5u);
  EXPECT_EQ(one[4], 16u);
  const auto none = parallel_map(0, [](std::size_t i) { return i; }, 4);
  EXPECT_TRUE(none.empty());
}

TEST(ParallelMap, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_map(
          16,
          [](std::size_t i) -> int {
            if (i == 7) throw std::runtime_error("boom");
            return 0;
          },
          4),
      std::runtime_error);
}

TEST(ParallelMap, NestedCallsRunInline) {
  // A parallel_map issued from inside a worker must not deadlock waiting on
  // the pool it is already occupying.
  const auto outer = parallel_map(
      8,
      [](std::size_t i) {
        const auto inner =
            parallel_map(4, [](std::size_t j) { return j + 1; }, 4);
        return i * std::accumulate(inner.begin(), inner.end(), std::size_t{0});
      },
      4);
  for (std::size_t i = 0; i < outer.size(); ++i) EXPECT_EQ(outer[i], 10 * i);
}

core::MetricsReport mini_rl_point(std::size_t index) {
  core::RlExperimentConfig config;
  config.env = core::EnvironmentConfig::defaults();
  config.env.loss_jam = 40.0 + 20.0 * static_cast<double>(index);
  config.env.seed = 7 + index;
  config.eval_seed = 1007 + index;
  config.scheme.history = 2;
  config.scheme.hidden = {8, 8};
  config.scheme.epsilon_decay_steps = 200;
  config.scheme.seed = 507 + index;
  config.train_slots = 600;
  config.eval_slots = 300;
  return core::run_rl_experiment(config).metrics;
}

// Regression guard for the central determinism claim: fanning a sweep over
// the pool must produce byte-for-byte the metrics of the sequential run,
// independent of the thread count.
TEST(ParallelMap, RlSweepBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kPoints = 4;
  const auto run = [](std::size_t threads) {
    return parallel_map(kPoints, mini_rl_point, threads);
  };
  const auto sequential = run(1);
  ASSERT_EQ(sequential.size(), kPoints);
  for (std::size_t threads : {2u, 4u}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) {
      // Exact equality on purpose: the engine promises bit-identical
      // results, not approximately-equal ones.
      EXPECT_EQ(sequential[i].st, parallel[i].st) << "threads=" << threads;
      EXPECT_EQ(sequential[i].ah, parallel[i].ah) << "threads=" << threads;
      EXPECT_EQ(sequential[i].sh, parallel[i].sh) << "threads=" << threads;
      EXPECT_EQ(sequential[i].ap, parallel[i].ap) << "threads=" << threads;
      EXPECT_EQ(sequential[i].sp, parallel[i].sp) << "threads=" << threads;
      EXPECT_EQ(sequential[i].mean_reward, parallel[i].mean_reward)
          << "threads=" << threads;
      EXPECT_EQ(sequential[i].slots, parallel[i].slots)
          << "threads=" << threads;
    }
  }
}

TEST(DefaultParallelism, HonorsEnvOverride) {
  // setenv/getenv in a single-threaded test body is safe; restore after.
  const char* old = std::getenv("CTJ_BENCH_THREADS");
  const std::string saved = old ? old : "";
  ::setenv("CTJ_BENCH_THREADS", "3", 1);
  EXPECT_EQ(default_parallelism(), 3u);
  ::setenv("CTJ_BENCH_THREADS", "0", 1);
  EXPECT_GE(default_parallelism(), 1u);
  if (old) {
    ::setenv("CTJ_BENCH_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("CTJ_BENCH_THREADS");
  }
}

}  // namespace
}  // namespace ctj
