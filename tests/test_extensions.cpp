// Tests for the extension modules: tabular Q-learning (the paper's point of
// comparison for the DQN), Double-DQN, the energy model, the stealthiness
// analysis, the 802.15.4 MAC sublayer, and the Wi-Fi legacy preamble.
#include <gtest/gtest.h>

#include <cmath>

#include "core/energy.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "core/qlearning_scheme.hpp"
#include "jammer/stealth.hpp"
#include "net/mac.hpp"
#include "phy/wifi_preamble.hpp"
#include "rl/qlearning.hpp"

namespace ctj {
namespace {

// ------------------------------------------------------------ Q-learning ----

TEST(QLearning, LearnsContextualBandit) {
  rl::QLearningConfig config;
  config.state_dim = 2;
  config.num_actions = 2;
  config.bins_per_dim = 2;
  config.epsilon_decay_steps = 500;
  config.reward_scale = 1.0;
  config.seed = 1;
  rl::QLearningAgent agent(config);
  Rng rng(2);
  for (int step = 0; step < 4000; ++step) {
    const bool which = rng.bernoulli(0.5);
    const std::vector<double> s = {which ? 1.0 : 0.0, which ? 0.0 : 1.0};
    const std::size_t a = agent.act(s);
    const double r = (a == (which ? 1u : 0u)) ? 1.0 : 0.0;
    agent.update(s, a, r, s);
  }
  EXPECT_EQ(agent.act_greedy(std::vector<double>{0.0, 1.0}), 0u);
  EXPECT_EQ(agent.act_greedy(std::vector<double>{1.0, 0.0}), 1u);
}

TEST(QLearning, TableGrowsWithVisitedStates) {
  rl::QLearningConfig config;
  config.state_dim = 3;
  config.num_actions = 4;
  config.bins_per_dim = 4;
  config.seed = 3;
  rl::QLearningAgent agent(config);
  Rng rng(4);
  std::vector<double> s(3);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : s) v = rng.uniform();
    agent.update(s, 0, 0.1, s);
  }
  EXPECT_GT(agent.table_size(), 20u);
  EXPECT_LE(agent.table_size(), 64u);  // at most bins^dims distinct keys
}

TEST(QLearning, EpsilonDecays) {
  rl::QLearningConfig config;
  config.state_dim = 1;
  config.num_actions = 2;
  config.epsilon_decay_steps = 100;
  rl::QLearningAgent agent(config);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
  const std::vector<double> s = {0.5};
  for (int i = 0; i < 100; ++i) agent.update(s, 0, 0.0, s);
  EXPECT_NEAR(agent.epsilon(), config.epsilon_end, 1e-9);
}

TEST(QLearningScheme, RunsAgainstEnvironment) {
  core::QLearningScheme::Config config;
  config.history = 2;
  core::QLearningScheme scheme(config);
  core::CompetitionEnvironment env(core::EnvironmentConfig::defaults());
  const auto metrics = core::evaluate(scheme, env, 3000);
  EXPECT_EQ(metrics.slots, 3000u);
  EXPECT_GT(scheme.agent().table_size(), 0u);
}

TEST(QLearningScheme, DqnOutlearnsTabularOnEqualBudget) {
  // The paper's Sec. III.C claim: on this observation space the DQN reaches
  // a better policy than tabular Q-learning for the same number of slots.
  const std::size_t budget = 10000;
  auto env_config = core::EnvironmentConfig::defaults();
  env_config.mode = JammerPowerMode::kMaxPower;

  core::QLearningScheme::Config ql_config;
  ql_config.history = 4;
  ql_config.epsilon_decay_steps = budget / 4;
  core::QLearningScheme ql(ql_config);
  {
    env_config.seed = 71;
    core::CompetitionEnvironment env(env_config);
    for (std::size_t slot = 0; slot < budget; ++slot) {
      const auto d = ql.decide();
      const auto step = env.step(d.channel, d.power_index);
      core::SlotFeedback fb;
      fb.success = step.success;
      fb.jammed = step.outcome != core::SlotOutcome::kClear;
      fb.channel = step.channel;
      fb.power_index = d.power_index;
      fb.reward = step.reward;
      ql.feedback(fb);
    }
    ql.set_training(false);
  }
  env_config.seed = 72;
  core::CompetitionEnvironment ql_env(env_config);
  const auto ql_metrics = core::evaluate(ql, ql_env, 8000);

  core::RlExperimentConfig dqn_config;
  dqn_config.env = env_config;
  dqn_config.env.seed = 71;
  dqn_config.eval_seed = 72;
  dqn_config.scheme.history = 4;
  dqn_config.scheme.hidden = {32, 32};
  dqn_config.scheme.epsilon_decay_steps = budget / 4;
  dqn_config.train_slots = budget;
  dqn_config.eval_slots = 8000;
  const auto dqn_metrics = core::run_rl_experiment(dqn_config).metrics;

  EXPECT_GT(dqn_metrics.st, ql_metrics.st);
}

// ------------------------------------------------------------ Double DQN ----

TEST(DoubleDqn, TrainsAndActs) {
  rl::DqnConfig config;
  config.state_dim = 2;
  config.num_actions = 2;
  config.hidden = {16};
  config.double_dqn = true;
  config.min_replay_before_training = 32;
  config.reward_scale = 1.0;
  config.seed = 5;
  rl::DqnAgent agent(config);
  Rng rng(6);
  for (int step = 0; step < 1500; ++step) {
    const bool which = rng.bernoulli(0.5);
    const std::vector<double> s = {which ? 1.0 : 0.0, which ? 0.0 : 1.0};
    const std::size_t a = agent.act(s);
    const double r = (a == (which ? 1u : 0u)) ? 1.0 : 0.0;
    agent.observe({s, a, r, s, false});
  }
  EXPECT_EQ(agent.act_greedy(std::vector<double>{1.0, 0.0}), 1u);
}

// ---------------------------------------------------------------- energy ----

TEST(Energy, SingleSlotHandComputed) {
  core::EnergyModelConfig config;
  config.rx_power_mw = 10.0;
  config.tx_duty = 0.5;
  config.hop_energy_mj = 2.0;
  core::EnergyAccumulator acc(config);
  // Level 10 → 0 dBm → 1 mW. Slot 2 s: tx 1 mW × 1 s + rx 10 mW × 1 s + hop.
  acc.record_slot(10.0, 2.0, true);
  const auto r = acc.report();
  EXPECT_NEAR(r.tx_mj, 1.0, 1e-9);
  EXPECT_NEAR(r.hop_mj, 2.0, 1e-9);
  EXPECT_NEAR(r.total_mj, 1.0 + 10.0 + 2.0, 1e-9);
  EXPECT_NEAR(r.mean_mw, 6.5, 1e-9);
  EXPECT_EQ(r.slots, 1u);
}

TEST(Energy, HigherLevelsCostMore) {
  core::EnergyAccumulator low, high;
  low.record_slot(6.0, 1.0, false);
  high.record_slot(15.0, 1.0, false);
  EXPECT_GT(high.report().total_mj, low.report().total_mj);
}

TEST(Energy, BatteryLifeInverseToDraw) {
  core::EnergyAccumulator acc;
  acc.record_slot(10.0, 1.0, false);
  const auto r = acc.report();
  EXPECT_NEAR(r.battery_life_hours, acc.config().battery_mwh / r.mean_mw,
              1e-9);
}

TEST(Energy, ResetClears) {
  core::EnergyAccumulator acc;
  acc.record_slot(10.0, 1.0, true);
  acc.reset();
  EXPECT_EQ(acc.report().slots, 0u);
  EXPECT_DOUBLE_EQ(acc.report().total_mj, 0.0);
}

// ---------------------------------------------------------------- stealth ----

TEST(Stealth, EmuBeeIsLeastAttributable) {
  using channel::JammingSignalType;
  const auto emubee = jammer::analyze_detectability(JammingSignalType::kEmuBee, true);
  const auto zigbee = jammer::analyze_detectability(JammingSignalType::kZigbee, true);
  EXPECT_LT(emubee.p_attributable, zigbee.p_attributable);
  // All effective jammers show up in the error rate — that alone does not
  // identify an attacker.
  EXPECT_DOUBLE_EQ(emubee.p_error_rate, 1.0);
  EXPECT_DOUBLE_EQ(zigbee.p_error_rate, 1.0);
}

TEST(Stealth, IneffectiveJamOnlyEnergyDetectable) {
  const auto r = jammer::analyze_detectability(
      channel::JammingSignalType::kZigbee, /*jam_effective=*/false);
  EXPECT_DOUBLE_EQ(r.p_frame, 0.0);
  EXPECT_DOUBLE_EQ(r.p_error_rate, 0.0);
  EXPECT_GT(r.p_energy, 0.0);
}

TEST(Stealth, SimulationMatchesAnalysis) {
  Rng rng(7);
  for (auto type : {channel::JammingSignalType::kEmuBee,
                    channel::JammingSignalType::kZigbee,
                    channel::JammingSignalType::kWifi}) {
    const auto analytic = jammer::analyze_detectability(type, true);
    const auto simulated = jammer::simulate_detectability(type, 20000, rng);
    EXPECT_NEAR(simulated.p_frame, analytic.p_frame, 0.02);
    EXPECT_NEAR(simulated.p_energy, analytic.p_energy, 0.01);
    EXPECT_NEAR(simulated.p_attributable, analytic.p_attributable, 0.02);
  }
}

// -------------------------------------------------------------------- MAC ----

TEST(Mac, DataFrameRoundTrip) {
  net::MacFrame frame;
  frame.type = net::MacFrameType::kData;
  frame.ack_request = true;
  frame.sequence = 42;
  frame.pan_id = 0xBEEF;
  frame.dest_addr = 0x0001;
  frame.src_addr = 0x0A0B;
  frame.payload = {1, 2, 3, 4};
  const auto bytes = frame.serialize();
  const auto parsed = net::MacFrame::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, net::MacFrameType::kData);
  EXPECT_TRUE(parsed->ack_request);
  EXPECT_EQ(parsed->sequence, 42);
  EXPECT_EQ(parsed->pan_id, 0xBEEF);
  EXPECT_EQ(parsed->dest_addr, 0x0001);
  EXPECT_EQ(parsed->src_addr, 0x0A0B);
  EXPECT_EQ(parsed->payload, frame.payload);
}

TEST(Mac, AckFrameIsMinimal) {
  net::MacFrame data;
  data.sequence = 9;
  data.ack_request = true;
  const net::MacFrame ack = data.make_ack();
  const auto bytes = ack.serialize();
  EXPECT_EQ(bytes.size(), 3u);  // FCF + sequence only
  const auto parsed = net::MacFrame::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(data.acked_by(*parsed));
}

TEST(Mac, WrongSequenceDoesNotAck) {
  net::MacFrame data;
  data.sequence = 9;
  net::MacFrame ack = data.make_ack();
  ack.sequence = 10;
  EXPECT_FALSE(data.acked_by(ack));
}

TEST(Mac, ParseRejectsGarbage) {
  const std::vector<std::uint8_t> tiny = {0x01};
  EXPECT_FALSE(net::MacFrame::parse(tiny).has_value());
  // Addressed frame truncated before the addressing fields.
  std::vector<std::uint8_t> truncated = {0x01, 0x08, 0x05, 0xFE};
  EXPECT_FALSE(net::MacFrame::parse(truncated).has_value());
}

TEST(Mac, FrameTypeNames) {
  EXPECT_STREQ(net::to_string(net::MacFrameType::kAck), "ack");
  EXPECT_STREQ(net::to_string(net::MacFrameType::kBeacon), "beacon");
}

TEST(CsmaCa, IdleChannelGrantsQuickly) {
  net::CsmaCa csma;
  Rng rng(8);
  const auto attempt = csma.attempt(0.0, rng);
  EXPECT_TRUE(attempt.success);
  EXPECT_EQ(attempt.backoffs, 1);
  // Max first backoff: 7 units × 320 µs + one CCA.
  EXPECT_LE(attempt.delay_s, 7 * 320e-6 + 128e-6 + 1e-12);
}

TEST(CsmaCa, AlwaysBusyChannelFails) {
  net::CsmaCa csma;
  Rng rng(9);
  const auto attempt = csma.attempt(1.0, rng);
  EXPECT_FALSE(attempt.success);
  EXPECT_EQ(attempt.backoffs, csma.config().max_backoffs);
}

TEST(CsmaCa, DelayGrowsWithBusyProbability) {
  net::CsmaCa csma;
  Rng rng(10);
  auto mean_delay = [&](double busy) {
    double total = 0.0;
    const int trials = 3000;
    for (int i = 0; i < trials; ++i) total += csma.attempt(busy, rng).delay_s;
    return total / trials;
  };
  EXPECT_LT(mean_delay(0.0), mean_delay(0.5));
  EXPECT_LT(mean_delay(0.5), mean_delay(0.9));
}

TEST(CsmaCa, SuccessRateMatchesGeometricBound) {
  net::CsmaCa csma;
  Rng rng(11);
  const double busy = 0.5;
  int successes = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    successes += csma.attempt(busy, rng).success ? 1 : 0;
  }
  // P(success) = 1 − busy^max_backoffs = 1 − 0.5^4.
  EXPECT_NEAR(static_cast<double>(successes) / trials, 1.0 - std::pow(0.5, 4),
              0.02);
}

// --------------------------------------------------------- Wi-Fi preamble ----

TEST(WifiPreamble, StfHas16SamplePeriodicity) {
  const auto stf = phy::WifiPreamble::short_training_field();
  ASSERT_EQ(stf.size(), 160u);
  for (std::size_t i = 0; i + 16 < stf.size(); ++i) {
    EXPECT_NEAR(std::abs(stf[i] - stf[i + 16]), 0.0, 1e-9);
  }
}

TEST(WifiPreamble, StfAutocorrelationNearOne) {
  const auto stf = phy::WifiPreamble::short_training_field();
  EXPECT_NEAR(phy::WifiPreamble::autocorrelation(stf, 16), 1.0, 1e-6);
}

TEST(WifiPreamble, DetectsStfUnderNoise) {
  Rng rng(12);
  auto stf = phy::WifiPreamble::short_training_field();
  const double signal_rms = std::sqrt(phy::average_power(stf));
  for (auto& s : stf) {
    s += phy::Cplx(rng.normal(0.0, 0.15 * signal_rms),
                   rng.normal(0.0, 0.15 * signal_rms));
  }
  EXPECT_TRUE(phy::WifiPreamble::detect_stf(stf));
}

TEST(WifiPreamble, NoiseDoesNotTriggerDetection) {
  Rng rng(13);
  phy::IqBuffer noise(160);
  for (auto& s : noise) s = phy::Cplx(rng.normal(), rng.normal());
  EXPECT_FALSE(phy::WifiPreamble::detect_stf(noise));
}

TEST(WifiPreamble, LtfSymbolsRepeat) {
  const auto ltf = phy::WifiPreamble::long_training_field();
  ASSERT_EQ(ltf.size(), 160u);
  for (std::size_t i = 32; i + 64 < ltf.size(); ++i) {
    EXPECT_NEAR(std::abs(ltf[i] - ltf[i + 64]), 0.0, 1e-9);
  }
}

TEST(WifiSignal, BitsRoundTrip) {
  phy::WifiSignalField field;
  field.rate_code = 0b1101;
  field.length_bytes = 1432;
  const auto bits = field.encode_bits();
  ASSERT_EQ(bits.size(), 24u);
  const auto decoded = phy::WifiSignalField::decode_bits(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rate_code, 0b1101);
  EXPECT_EQ(decoded->length_bytes, 1432);
}

TEST(WifiSignal, ParityViolationRejected) {
  phy::WifiSignalField field;
  field.length_bytes = 100;
  auto bits = field.encode_bits();
  bits[3] ^= 1;  // flip a rate bit without fixing parity
  EXPECT_FALSE(phy::WifiSignalField::decode_bits(bits).has_value());
}

TEST(WifiSignal, OfdmSymbolRoundTrip) {
  phy::WifiSignalField field;
  field.rate_code = 0b0011;  // 54 Mbps, the EmuBee operating point
  field.length_bytes = 2047;
  const auto symbol = field.modulate();
  EXPECT_EQ(symbol.size(), 80u);
  const auto decoded = phy::WifiSignalField::demodulate(symbol);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rate_code, field.rate_code);
  EXPECT_EQ(decoded->length_bytes, field.length_bytes);
}

TEST(WifiSignal, LengthFieldBounds) {
  phy::WifiSignalField field;
  field.length_bytes = 4096;  // 13 bits: invalid
  EXPECT_THROW(field.encode_bits(), CheckFailure);
}

}  // namespace
}  // namespace ctj
