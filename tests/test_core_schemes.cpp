// Tests for the anti-jamming schemes: the Passive-FH and Random-FH baselines,
// the MDP oracle, and the DQN scheme end-to-end (training on the competition
// environment and beating the baselines, as the paper reports).
#include <gtest/gtest.h>

#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "core/mdp_scheme.hpp"
#include "core/passive_fh.hpp"
#include "core/random_fh.hpp"
#include "core/rl_fh.hpp"
#include "core/trainer.hpp"

namespace ctj::core {
namespace {

// ------------------------------------------------------------- baselines ----

TEST(PassiveFh, StaysUntilJammed) {
  PassiveFhScheme::Config config;
  PassiveFhScheme scheme(config);
  const auto first = scheme.decide();
  // Report clean slots: the scheme must not move.
  for (int i = 0; i < 5; ++i) {
    SlotFeedback fb;
    fb.success = true;
    fb.channel = first.channel;
    scheme.feedback(fb);
    const auto d = scheme.decide();
    EXPECT_EQ(d.channel, first.channel);
    EXPECT_EQ(d.power_index, first.power_index);
  }
}

TEST(PassiveFh, HopsAfterDetectorFires) {
  PassiveFhScheme::Config config;
  config.detector_window = 2;
  config.detector_threshold = 0.5;
  PassiveFhScheme scheme(config);
  const auto first = scheme.decide();
  SlotFeedback fb;
  fb.success = false;
  fb.channel = first.channel;
  scheme.feedback(fb);
  scheme.feedback(fb);
  const auto d = scheme.decide();
  EXPECT_NE(d.channel, first.channel);
}

TEST(PassiveFh, EscalatesPowerAfterRepeatedFailedHops) {
  PassiveFhScheme::Config config;
  config.detector_window = 1;
  config.detector_threshold = 1.0;
  config.escalate_after_failed_hops = 2;
  PassiveFhScheme scheme(config);
  std::size_t initial_power = scheme.decide().power_index;
  // Keep failing: every slot triggers a hop, hops keep failing.
  std::size_t final_power = initial_power;
  for (int i = 0; i < 12; ++i) {
    SlotFeedback fb;
    fb.success = false;
    scheme.feedback(fb);
    final_power = scheme.decide().power_index;
  }
  EXPECT_GT(final_power, initial_power);
}

TEST(RandomFh, HopFrequencyMatchesProbability) {
  RandomFhScheme::Config config;
  config.hop_probability = 0.5;
  RandomFhScheme scheme(config);
  int prev = scheme.decide().channel;
  int hops = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto d = scheme.decide();
    if (d.channel != prev) ++hops;
    prev = d.channel;
  }
  EXPECT_NEAR(static_cast<double>(hops) / n, 0.5, 0.03);
}

TEST(RandomFh, PcSlotsPickRandomPower) {
  RandomFhScheme::Config config;
  config.hop_probability = 0.0;  // always PC
  RandomFhScheme scheme(config);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(scheme.decide().power_index);
  EXPECT_EQ(seen.size(), config.num_power_levels);
}

// ------------------------------------------------------------ MDP oracle ----

TEST(MdpOracle, ThresholdPolicyAgainstEnvironment) {
  MdpOracleScheme::Config config;
  config.params = mdp::AntijamParams::defaults();
  MdpOracleScheme oracle(config);
  EXPECT_GE(oracle.threshold(), 1);
  EXPECT_LE(oracle.threshold(), 4);

  auto env_config = EnvironmentConfig::defaults();
  env_config.seed = 51;
  CompetitionEnvironment env(env_config);
  const auto metrics = evaluate(oracle, env, 20000);
  // The paper's effectiveness bar: ST >= 75 % beats the 25 % random-jamming
  // baseline rate (Sec. IV.C.1).
  EXPECT_GE(metrics.st, 0.70);
}

TEST(MdpOracle, TracksHiddenStateConsistently) {
  MdpOracleScheme::Config config;
  MdpOracleScheme oracle(config);
  // Clean successes advance the internal counter; a jam resets to T_J/J.
  SlotFeedback fb;
  fb.success = true;
  fb.jammed = false;
  oracle.decide();
  oracle.feedback(fb);
  oracle.decide();
  fb.success = false;
  oracle.feedback(fb);  // now in J
  // From J the optimal action is always to hop (Case 6 dominates).
  const auto d = oracle.decide();
  (void)d;  // the hop target is random; correctness is checked statistically
  SUCCEED();
}

// ------------------------------------------------------------ DQN scheme ----

DqnScheme::Config small_scheme(std::uint64_t seed) {
  DqnScheme::Config c;
  c.num_channels = 16;
  c.num_power_levels = 10;
  c.history = 4;
  c.hidden = {32, 32};
  c.learning_rate = 1.5e-3;
  c.epsilon_decay_steps = 3000;
  c.epsilon_end = 0.05;
  c.seed = seed;
  return c;
}

TEST(DqnScheme, ObservationEncodesHistory) {
  DqnScheme scheme(small_scheme(1));
  EXPECT_EQ(scheme.observation().size(), 12u);  // 3 × I, I = 4
  const auto d = scheme.decide();
  SlotFeedback fb;
  fb.success = true;
  fb.channel = d.channel;
  fb.power_index = d.power_index;
  scheme.feedback(fb);
  const auto obs = scheme.observation();
  // The newest record sits at the tail: success flag must be 1.
  EXPECT_DOUBLE_EQ(obs[9], 1.0);
  EXPECT_NEAR(obs[10], d.channel / 15.0, 1e-9);
  EXPECT_NEAR(obs[11], d.power_index / 9.0, 1e-9);
}

TEST(DqnScheme, ActionDecodesToChannelAndPower) {
  DqnScheme scheme(small_scheme(2));
  scheme.set_training(false);
  const auto d = scheme.decide();
  EXPECT_GE(d.channel, 0);
  EXPECT_LT(d.channel, 16);
  EXPECT_LT(d.power_index, 10u);
}

TEST(DqnScheme, DeploymentModeDoesNotLearn) {
  DqnScheme scheme(small_scheme(3));
  scheme.set_training(false);
  const auto d = scheme.decide();
  SlotFeedback fb;
  fb.success = true;
  fb.channel = d.channel;
  fb.power_index = d.power_index;
  scheme.feedback(fb);
  EXPECT_EQ(scheme.agent().steps(), 0u);
}

TEST(DqnScheme, DecisionTimeIsNineMilliseconds) {
  DqnScheme scheme(small_scheme(4));
  EXPECT_DOUBLE_EQ(scheme.decision_time_s(), 9e-3);
}

TEST(Trainer, RunsAndReportsStats) {
  auto env_config = EnvironmentConfig::defaults();
  CompetitionEnvironment env(env_config);
  DqnScheme scheme(small_scheme(5));
  TrainerConfig config;
  config.max_slots = 500;
  const auto stats = train(scheme, env, config);
  EXPECT_EQ(stats.slots_trained, 500u);
  EXPECT_FALSE(stats.early_stopped);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_EQ(scheme.agent().steps(), 500u);
}

TEST(Trainer, EarlyStopsOnRewardTarget) {
  auto env_config = EnvironmentConfig::defaults();
  CompetitionEnvironment env(env_config);
  DqnScheme scheme(small_scheme(6));
  TrainerConfig config;
  config.max_slots = 100000;
  config.reward_window = 50;
  config.target_mean_reward = -1000.0;  // trivially reachable
  const auto stats = train(scheme, env, config);
  EXPECT_TRUE(stats.early_stopped);
  EXPECT_LT(stats.slots_trained, 200u);
}

// The headline integration test: trained RL FH beats the baselines on the
// default max-power scenario (Fig. 11(a) ordering at the slot level).
TEST(Integration, RlBeatsBaselinesAfterTraining) {
  auto env_config = EnvironmentConfig::defaults();
  env_config.mode = JammerPowerMode::kMaxPower;

  // Baselines.
  PassiveFhScheme::Config passive_config;
  PassiveFhScheme passive(passive_config);
  env_config.seed = 101;
  CompetitionEnvironment env_passive(env_config);
  const auto m_passive = evaluate(passive, env_passive, 12000);

  RandomFhScheme::Config random_config;
  RandomFhScheme random_scheme(random_config);
  env_config.seed = 101;
  CompetitionEnvironment env_random(env_config);
  const auto m_random = evaluate(random_scheme, env_random, 12000);

  // RL FH.
  RlExperimentConfig rl;
  rl.env = env_config;
  rl.env.seed = 33;
  rl.scheme = small_scheme(7);
  rl.train_slots = 15000;
  rl.eval_slots = 12000;
  rl.eval_seed = 101;
  const auto rl_result = run_rl_experiment(rl);

  // Ordering per the paper: RL > random > passive.
  EXPECT_GT(m_random.st, m_passive.st);
  EXPECT_GT(rl_result.metrics.st, m_passive.st + 0.05);
  EXPECT_GT(rl_result.metrics.st, m_random.st);
  // The paper's effectiveness bar for the trained scheme.
  EXPECT_GE(rl_result.metrics.st, 0.6);
}

TEST(Evaluate, MetricsSlotsMatchRequest) {
  RandomFhScheme scheme{RandomFhScheme::Config{}};
  CompetitionEnvironment env(EnvironmentConfig::defaults());
  const auto metrics = evaluate(scheme, env, 1234);
  EXPECT_EQ(metrics.slots, 1234u);
}

}  // namespace
}  // namespace ctj::core
