// Tests for the star-network substrate: timing model, medium, nodes and the
// slot executor.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "net/star_network.hpp"
#include "net/timing.hpp"

namespace ctj::net {
namespace {

// ---------------------------------------------------------------- timing ----

TEST(Timing, PacketServiceTimeMatchesFig10Calibration) {
  TimingModel t;
  // RTT 0.9 ms + processing 0.6 ms + LBT ≈ 6.15 ms: a 3 s slot minus ~80 ms
  // overhead carries ~470 packets, the Fig. 10(a) scale.
  EXPECT_NEAR(t.packet_service_s(), 6.15e-3, 1e-4);
}

TEST(Timing, SampleJitterCentersOnNominal) {
  TimingModel t;
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(t.sample(9e-3, rng));
  EXPECT_NEAR(stats.mean(), 9e-3, 2e-4);
  EXPECT_GT(stats.stddev(), 1e-4);
}

TEST(Timing, ZeroJitterIsDeterministic) {
  TimingModel t;
  t.jitter_fraction = 0.0;
  Rng rng(2);
  EXPECT_DOUBLE_EQ(t.sample(9e-3, rng), 9e-3);
}

TEST(Timing, NegotiationScalesWithNodes) {
  TimingModel t;
  t.node_loss_probability = 0.0;
  t.jitter_fraction = 0.0;
  Rng rng(3);
  EXPECT_NEAR(t.negotiation_time_s(5, rng), 5 * 13.1e-3, 1e-9);
  EXPECT_NEAR(t.negotiation_time_s(10, rng), 10 * 13.1e-3, 1e-9);
}

TEST(Timing, LostNodesCauseSecondsLongTail) {
  // Fig. 9(b): with lost nodes the negotiation can take seconds.
  TimingModel t;
  t.node_loss_probability = 1.0;  // force every node to be lost once
  Rng rng(4);
  int lost = 0;
  const double total = t.negotiation_time_s(5, rng, &lost);
  EXPECT_EQ(lost, 5);
  EXPECT_GT(total, 1.0);
}

TEST(Timing, MeanNegotiationGrowsWithNetworkSize) {
  TimingModel t;
  Rng rng(5);
  double prev = 0.0;
  for (int nodes : {1, 4, 7, 10}) {
    RunningStats stats;
    for (int trial = 0; trial < 400; ++trial) {
      stats.add(t.negotiation_time_s(nodes, rng));
    }
    EXPECT_GT(stats.mean(), prev);
    prev = stats.mean();
  }
}

// ---------------------------------------------------------------- medium ----

TEST(Medium, NoJammingMeansCleanSinr) {
  Medium medium{channel::ZigbeeLink()};
  const double sinr = medium.sinr_db(3, 0.0, 3.0);
  EXPECT_GT(sinr, 20.0);  // 1 mW at 3 m is far above the noise floor
}

TEST(Medium, JammingOnOtherChannelIsHarmless) {
  Medium medium{channel::ZigbeeLink()};
  ActiveJamming jam;
  jam.channel = 7;
  medium.set_jamming(jam);
  EXPECT_NEAR(medium.sinr_db(3, 0.0, 3.0), medium.sinr_db(4, 0.0, 3.0), 1e-9);
  EXPECT_LT(medium.sinr_db(7, 0.0, 3.0), medium.sinr_db(3, 0.0, 3.0));
}

TEST(Medium, EmuBeeJamKillsWeakLink) {
  Medium medium{channel::ZigbeeLink()};
  ActiveJamming jam;
  jam.channel = 5;
  jam.type = channel::JammingSignalType::kEmuBee;
  jam.tx_power_dbm = 20.0;
  jam.distance_m = 8.0;
  medium.set_jamming(jam);
  EXPECT_GT(medium.packet_error_rate(5, -4.0, 3.0), 0.95);
}

TEST(Medium, DutyCycleInterpolatesPer) {
  Medium medium{channel::ZigbeeLink()};
  ActiveJamming jam;
  jam.channel = 5;
  jam.tx_power_dbm = 20.0;
  jam.distance_m = 8.0;
  jam.duty_cycle = 1.0;
  medium.set_jamming(jam);
  const double per_full = medium.packet_error_rate(5, -4.0, 3.0);
  jam.duty_cycle = 0.5;
  medium.set_jamming(jam);
  const double per_half = medium.packet_error_rate(5, -4.0, 3.0);
  jam.duty_cycle = 0.0;
  medium.set_jamming(jam);
  const double per_zero = medium.packet_error_rate(5, -4.0, 3.0);
  EXPECT_NEAR(per_half, 0.5 * per_full + 0.5 * per_zero, 1e-9);
}

TEST(Medium, CcaSeesZigbeeLikeSignalsOnly) {
  Medium medium{channel::ZigbeeLink()};
  ActiveJamming jam;
  jam.channel = 5;
  jam.tx_power_dbm = 20.0;
  jam.distance_m = 3.0;
  jam.type = channel::JammingSignalType::kEmuBee;
  medium.set_jamming(jam);
  EXPECT_TRUE(medium.channel_busy(5));
  EXPECT_FALSE(medium.channel_busy(6));
  jam.type = channel::JammingSignalType::kWifi;
  medium.set_jamming(jam);
  // Plain Wi-Fi fails the chip-correlation CCA: invisible to LBT.
  EXPECT_FALSE(medium.channel_busy(5));
}

TEST(Medium, CorruptRespectsBer) {
  Medium medium{channel::ZigbeeLink()};
  std::vector<std::uint8_t> frame(1000, 0x00);
  const auto zero = medium.corrupt(frame, 0.0);
  EXPECT_EQ(zero, frame);
  const auto heavy = medium.corrupt(frame, 0.5);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < heavy.size(); ++i) {
    flipped += static_cast<std::size_t>(__builtin_popcount(heavy[i]));
  }
  EXPECT_NEAR(static_cast<double>(flipped) / 8000.0, 0.5, 0.05);
}

// ------------------------------------------------------------------ nodes ----

TEST(Node, PeripheralFramesCarryIdAndSequence) {
  Peripheral p(3, 2.0);
  Rng rng(6);
  const auto f1 = p.next_frame(10, rng);
  const auto f2 = p.next_frame(10, rng);
  const auto in1 = phy::ZigbeeFrame::inspect(f1);
  const auto in2 = phy::ZigbeeFrame::inspect(f2);
  ASSERT_EQ(in1.status, phy::FrameStatus::kOk);
  const auto mac1 = MacFrame::parse(in1.payload);
  const auto mac2 = MacFrame::parse(in2.payload);
  ASSERT_TRUE(mac1.has_value());
  ASSERT_TRUE(mac2.has_value());
  EXPECT_EQ(mac1->src_addr, 3);
  EXPECT_TRUE(mac1->ack_request);
  EXPECT_EQ(mac1->payload[0], 3);
  const auto seq1 = static_cast<int>(mac1->payload[1] | (mac1->payload[2] << 8));
  const auto seq2 = static_cast<int>(mac2->payload[1] | (mac2->payload[2] << 8));
  EXPECT_EQ(seq2, seq1 + 1);
}

TEST(Node, HubProducesMatchingAck) {
  Hub hub;
  Peripheral p(4, 2.0);
  Rng rng(8);
  const auto frame = p.next_frame(12, rng);
  ASSERT_TRUE(hub.receive(frame));
  const auto& ack_bytes = hub.last_ack_bytes();
  ASSERT_FALSE(ack_bytes.empty());
  const auto inspection = phy::ZigbeeFrame::inspect(ack_bytes);
  ASSERT_EQ(inspection.status, phy::FrameStatus::kOk);
  const auto ack = MacFrame::parse(inspection.payload);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(p.last_mac_frame().acked_by(*ack));
}

TEST(Node, HubCountsDeliveredAndCorrupted) {
  Hub hub;
  Peripheral p(1, 2.0);
  Rng rng(7);
  const auto good = p.next_frame(10, rng);
  EXPECT_TRUE(hub.receive(good));
  auto bad = p.next_frame(10, rng);
  bad[8] ^= 0xFF;
  EXPECT_FALSE(hub.receive(bad));
  EXPECT_EQ(hub.total_delivered(), 1u);
  EXPECT_EQ(hub.total_corrupted(), 1u);
  EXPECT_EQ(hub.record(1).delivered, 1u);
}

TEST(Node, AnnouncementUpdatesChannelAndPower) {
  Peripheral p(2, 3.0);
  p.apply_announcement(9, 2.5);
  EXPECT_EQ(p.channel(), 9);
  EXPECT_DOUBLE_EQ(p.tx_power_dbm(), 2.5);
}

// ---------------------------------------------------------- star network ----

StarNetworkConfig quick_config() {
  StarNetworkConfig c;
  c.num_peripherals = 4;
  c.slot_duration_s = 1.0;
  c.timing.jitter_fraction = 0.0;
  c.timing.node_loss_probability = 0.0;
  c.seed = 11;
  return c;
}

TEST(StarNetwork, PowerLevelMapping) {
  EXPECT_DOUBLE_EQ(tx_level_to_dbm(6.0), -4.0);
  EXPECT_DOUBLE_EQ(tx_level_to_dbm(15.0), 5.0);
  EXPECT_DOUBLE_EQ(jam_level_to_dbm(11.0), 11.0);
  EXPECT_DOUBLE_EQ(jam_level_to_dbm(20.0), 20.0);
}

TEST(StarNetwork, CleanSlotDeliversNearlyEverything) {
  StarNetwork net(quick_config());
  SlotDecision decision;
  decision.channel = 3;
  decision.tx_power_dbm = 0.0;
  const auto stats = net.run_slot(decision, std::nullopt);
  EXPECT_GT(stats.packets_attempted, 100u);
  EXPECT_GT(stats.delivery_ratio, 0.98);
  EXPECT_TRUE(stats.success);
  EXPECT_FALSE(stats.jammed);
}

TEST(StarNetwork, JammedSlotFails) {
  StarNetwork net(quick_config());
  SlotDecision decision;
  decision.channel = 3;
  decision.tx_power_dbm = -4.0;  // lowest victim power
  ActiveJamming jam;
  jam.channel = 3;
  jam.type = channel::JammingSignalType::kEmuBee;
  jam.tx_power_dbm = 20.0;
  jam.distance_m = 8.0;
  const auto stats = net.run_slot(decision, jam);
  EXPECT_TRUE(stats.jammed);
  EXPECT_LT(stats.delivery_ratio, 0.1);
  EXPECT_FALSE(stats.success);
}

TEST(StarNetwork, OverheadReducesWindow) {
  StarNetwork net(quick_config());
  SlotDecision decision;
  decision.channel = 0;
  decision.decision_time_s = 9e-3;
  const auto stats = net.run_slot(decision, std::nullopt);
  // 4 nodes × 13.1 ms polling + 9 ms DQN ≈ 61 ms overhead.
  EXPECT_NEAR(stats.overhead_s, 0.0614, 0.002);
  EXPECT_NEAR(stats.window_s, 1.0 - stats.overhead_s, 1e-9);
}

TEST(StarNetwork, GoodputScalesWithSlotDuration) {
  // Fig. 10(a): longer slots carry more packets per slot.
  double prev = 0.0;
  for (double duration : {1.0, 3.0, 5.0}) {
    auto config = quick_config();
    config.slot_duration_s = duration;
    StarNetwork net(config);
    SlotDecision decision;
    decision.channel = 2;
    decision.tx_power_dbm = 0.0;
    for (int i = 0; i < 10; ++i) net.run_slot(decision, std::nullopt);
    EXPECT_GT(net.goodput_packets_per_slot(), prev);
    prev = net.goodput_packets_per_slot();
  }
}

TEST(StarNetwork, UtilizationImprovesWithSlotDuration) {
  // Fig. 10(b): fixed overhead amortizes over longer slots.
  double prev = 0.0;
  for (double duration : {1.0, 3.0, 5.0}) {
    auto config = quick_config();
    config.slot_duration_s = duration;
    StarNetwork net(config);
    SlotDecision decision;
    decision.channel = 2;
    for (int i = 0; i < 10; ++i) net.run_slot(decision, std::nullopt);
    EXPECT_GT(net.mean_utilization(), prev);
    prev = net.mean_utilization();
  }
  EXPECT_GT(prev, 0.97);  // ~98.6 % at 5 s in the paper
}

TEST(StarNetwork, PacketLevelModeExercisesRealFrames) {
  auto config = quick_config();
  config.packet_level = true;
  config.slot_duration_s = 0.5;
  StarNetwork net(config);
  SlotDecision decision;
  decision.channel = 1;
  decision.tx_power_dbm = 0.0;
  const auto stats = net.run_slot(decision, std::nullopt);
  EXPECT_GT(stats.packets_delivered, 0u);
  EXPECT_EQ(net.hub().total_delivered(), stats.packets_delivered);
}

TEST(StarNetwork, AccountingResets) {
  StarNetwork net(quick_config());
  SlotDecision decision;
  decision.channel = 0;
  net.run_slot(decision, std::nullopt);
  EXPECT_EQ(net.slots_run(), 1u);
  net.reset_accounting();
  EXPECT_EQ(net.slots_run(), 0u);
  EXPECT_DOUBLE_EQ(net.goodput_packets_per_slot(), 0.0);
}

TEST(StarNetwork, RejectsBadChannel) {
  StarNetwork net(quick_config());
  SlotDecision decision;
  decision.channel = 99;
  EXPECT_THROW(net.run_slot(decision, std::nullopt), CheckFailure);
}

}  // namespace
}  // namespace ctj::net
