// Tests for the Wi-Fi DSP substrate: FFT, bit utilities, scrambler,
// convolutional code, interleaver, 64-QAM and OFDM.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "phy/bits.hpp"
#include "phy/convolutional.hpp"
#include "phy/fft.hpp"
#include "phy/interleaver.hpp"
#include "phy/iq.hpp"
#include "phy/ofdm.hpp"
#include "phy/qam.hpp"
#include "phy/scrambler.hpp"

namespace ctj::phy {
namespace {

// ---------------------------------------------------------------- FFT ----

TEST(Fft, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  IqBuffer x(8, Cplx(0, 0));
  x[0] = Cplx(1, 0);
  const IqBuffer X = fft(x);
  for (const Cplx& v : X) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t k = 5;
  IqBuffer x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(k * i) /
                         static_cast<double>(n);
    x[i] = Cplx(std::cos(phase), std::sin(phase));
  }
  const IqBuffer X = fft(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == k) {
      EXPECT_NEAR(std::abs(X[i]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(X[i]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  Rng rng(1);
  IqBuffer x(128);
  for (Cplx& v : x) v = Cplx(rng.normal(), rng.normal());
  const IqBuffer y = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(2);
  IqBuffer x(64);
  for (Cplx& v : x) v = Cplx(rng.normal(), rng.normal());
  const IqBuffer X = fft(x);
  EXPECT_NEAR(energy(X) / 64.0, energy(x), 1e-9);
}

TEST(Fft, Linearity) {
  Rng rng(3);
  IqBuffer a(32), b(32), sum(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = Cplx(rng.normal(), rng.normal());
    b[i] = Cplx(rng.normal(), rng.normal());
    sum[i] = a[i] + 2.0 * b[i];
  }
  const IqBuffer A = fft(a), B = fft(b), S = fft(sum);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(std::abs(S[i] - (A[i] + 2.0 * B[i])), 0.0, 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  IqBuffer x(48, Cplx(1, 0));
  EXPECT_THROW(fft_inplace(x), CheckFailure);
}

TEST(FftPlan, RoundTripIdentity) {
  for (std::size_t n : {std::size_t{64}, std::size_t{128}}) {
    const FftPlan& plan = FftPlan::for_size(n);
    EXPECT_EQ(plan.size(), n);
    Rng rng(11);
    IqBuffer x(n);
    for (Cplx& v : x) v = Cplx(rng.normal(), rng.normal());
    IqBuffer y = x;
    plan.forward(y);
    plan.inverse(y);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
    }
  }
}

TEST(FftPlan, MatchesDirectDft) {
  // Cross-check the cached-plan transform against the O(n²) definition.
  const std::size_t n = 64;
  Rng rng(12);
  IqBuffer x(n);
  for (Cplx& v : x) v = Cplx(rng.normal(), rng.normal());
  IqBuffer fast = x;
  FftPlan::for_size(n).forward(fast);
  for (std::size_t k = 0; k < n; ++k) {
    Cplx ref(0, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const double phase = -2.0 * std::numbers::pi *
                           static_cast<double>(k * i) / static_cast<double>(n);
      ref += x[i] * Cplx(std::cos(phase), std::sin(phase));
    }
    EXPECT_NEAR(std::abs(fast[k] - ref), 0.0, 1e-9) << "bin " << k;
  }
}

TEST(FftPlan, CacheReturnsSameInstance) {
  const FftPlan& a = FftPlan::for_size(64);
  const FftPlan& b = FftPlan::for_size(64);
  EXPECT_EQ(&a, &b);
  const FftPlan& c = FftPlan::for_size(128);
  EXPECT_NE(&a, &c);
}

// --------------------------------------------------------------- bits ----

TEST(Bits, BytesBitsRoundTrip) {
  Rng rng(4);
  std::vector<std::uint8_t> bytes(57);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(Bits, LsbFirstConvention) {
  const std::vector<std::uint8_t> bytes = {0x01};
  const Bits bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 8u);
  EXPECT_EQ(bits[0], 1);  // LSB first
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(Bits, HammingDistance) {
  const Bits a = {0, 1, 1, 0};
  const Bits b = {1, 1, 0, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(Bits, Crc16KnownVector) {
  // "123456789" under CRC-16/XMODEM (poly 0x1021, init 0) → 0x31C3.
  const std::string s = "123456789";
  const std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc16_itu(bytes), 0x31C3);
}

TEST(Bits, CrcDetectsSingleBitFlip) {
  Rng rng(5);
  std::vector<std::uint8_t> bytes(32);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const std::uint16_t crc = crc16_itu(bytes);
  bytes[10] ^= 0x04;
  EXPECT_NE(crc16_itu(bytes), crc);
}

// ---------------------------------------------------------- scrambler ----

TEST(Scrambler, SelfInverse) {
  Rng rng(6);
  const Bits data = random_bits(300, rng);
  Scrambler a(0x5D), b(0x5D);
  EXPECT_EQ(b.process(a.process(data)), data);
}

TEST(Scrambler, KeystreamPeriod127) {
  Scrambler s(0x7F);
  std::vector<std::uint8_t> first(127);
  for (auto& b : first) b = s.next_keystream_bit();
  for (int i = 0; i < 127; ++i) {
    EXPECT_EQ(s.next_keystream_bit(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Scrambler, KnownPrefixForAllOnesSeed) {
  // 802.11 reference: seed 1111111 produces 00001110 1111001... We check the
  // documented first 8 bits 0,0,0,0,1,1,1,0.
  Scrambler s(0x7F);
  const std::uint8_t expected[8] = {0, 0, 0, 0, 1, 1, 1, 0};
  for (std::uint8_t e : expected) EXPECT_EQ(s.next_keystream_bit(), e);
}

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0x00), CheckFailure);
}

TEST(Scrambler, BalancedKeystream) {
  Scrambler s(0x2A);
  int ones = 0;
  for (int i = 0; i < 127; ++i) ones += s.next_keystream_bit();
  EXPECT_EQ(ones, 64);  // maximal-length LFSR property
}

// ------------------------------------------------------- convolutional ----

TEST(Convolutional, CodedLength) {
  EXPECT_EQ(coded_length(100, CodeRate::kRate1of2), 200u);
  EXPECT_EQ(coded_length(100, CodeRate::kRate2of3), 150u);
  EXPECT_EQ(coded_length(99, CodeRate::kRate3of4), 132u);
}

TEST(Convolutional, KnownEncoding) {
  // All-zero input stays all-zero (linear code).
  const Bits zeros(16, 0);
  const Bits coded = ConvolutionalCode::encode(zeros);
  for (std::uint8_t b : coded) EXPECT_EQ(b, 0);
  // A single 1 produces the generator impulse response 133/171 (octal).
  Bits impulse(8, 0);
  impulse[0] = 1;
  const Bits out = ConvolutionalCode::encode(impulse);
  // g0 = 1011011, g1 = 1111001 (MSB = current input bit).
  const Bits expected = {1, 1, 0, 1, 1, 1, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0};
  EXPECT_EQ(out, expected);
}

TEST(Convolutional, CleanRoundTripRate12) {
  Rng rng(7);
  const Bits info = random_bits(240, rng);
  const Bits coded = ConvolutionalCode::encode(info);
  EXPECT_EQ(ConvolutionalCode::decode(coded), info);
}

TEST(Convolutional, CleanRoundTripPuncturedRates) {
  Rng rng(8);
  for (CodeRate rate : {CodeRate::kRate2of3, CodeRate::kRate3of4}) {
    const Bits info = random_bits(144, rng);
    const Bits coded = ConvolutionalCode::encode(info, rate);
    EXPECT_EQ(coded.size(), coded_length(info.size(), rate));
    EXPECT_EQ(ConvolutionalCode::decode(coded, rate), info);
  }
}

TEST(Convolutional, CorrectsScatteredErrors) {
  Rng rng(9);
  const Bits info = random_bits(200, rng);
  Bits coded = ConvolutionalCode::encode(info);
  // Flip well-separated bits — within the free distance budget.
  for (std::size_t pos : {10u, 90u, 170u, 250u, 330u}) {
    coded[pos] ^= 1;
  }
  EXPECT_EQ(ConvolutionalCode::decode(coded), info);
}

class ConvolutionalNoise : public ::testing::TestWithParam<double> {};

TEST_P(ConvolutionalNoise, LowBerIsCorrected) {
  const double ber = GetParam();
  Rng rng(10 + static_cast<std::uint64_t>(ber * 1e4));
  std::size_t bit_errors = 0, total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Bits info = random_bits(144, rng);
    Bits coded = ConvolutionalCode::encode(info);
    for (auto& b : coded) {
      if (rng.bernoulli(ber)) b ^= 1;
    }
    const Bits decoded = ConvolutionalCode::decode(coded);
    bit_errors += hamming_distance(decoded, info);
    total += info.size();
  }
  // K=7 rate-1/2 code corrects a couple percent channel BER comfortably.
  EXPECT_LT(static_cast<double>(bit_errors) / static_cast<double>(total),
            ber / 2.0 + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(BerSweep, ConvolutionalNoise,
                         ::testing::Values(0.005, 0.01, 0.02));

// --------------------------------------------------------- interleaver ----

TEST(Interleaver, RoundTrip288) {
  Interleaver il(288, 6);
  Rng rng(11);
  const Bits in = random_bits(288, rng);
  EXPECT_EQ(il.deinterleave(il.interleave(in)), in);
}

TEST(Interleaver, IsNontrivialPermutation) {
  Interleaver il(288, 6);
  Bits in(288, 0);
  in[0] = 1;
  in[1] = 1;
  const Bits out = il.interleave(in);
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i]) positions.push_back(i);
  }
  ASSERT_EQ(positions.size(), 2u);
  // Adjacent coded bits must land far apart.
  EXPECT_GT(positions[1] - positions[0], 5u);
}

TEST(Interleaver, SpreadsAdjacentBitsAcrossSubcarriers) {
  Interleaver il(288, 6);
  // Positions of consecutive input bits, mapped to subcarrier index (j/6).
  Bits probe(288, 0);
  std::vector<std::size_t> subcarrier(4);
  for (std::size_t k = 0; k < 4; ++k) {
    std::fill(probe.begin(), probe.end(), 0);
    probe[k] = 1;
    const Bits out = il.interleave(probe);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i]) subcarrier[k] = i / 6;
    }
  }
  // All four consecutive bits land on distinct subcarriers.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      EXPECT_NE(subcarrier[a], subcarrier[b]);
    }
  }
}

TEST(Interleaver, RejectsWrongLength) {
  Interleaver il(288, 6);
  const Bits bad(100, 0);
  EXPECT_THROW(il.interleave(bad), CheckFailure);
}

// ----------------------------------------------------------------- QAM ----

TEST(Qam64, UnitAveragePower) {
  double power = 0.0;
  for (std::size_t i = 0; i < Qam64::kPoints; ++i) {
    power += std::norm(Qam64::point(i));
  }
  EXPECT_NEAR(power / 64.0, 1.0, 1e-12);
}

TEST(Qam64, MapDemapRoundTripAllSymbols) {
  for (unsigned v = 0; v < 64; ++v) {
    Bits bits(6);
    for (int i = 0; i < 6; ++i) bits[static_cast<std::size_t>(i)] = (v >> (5 - i)) & 1;
    const Cplx p = Qam64::map(bits);
    EXPECT_EQ(Qam64::demap(p), bits);
  }
}

TEST(Qam64, GrayNeighborsDifferInOneBit) {
  // Horizontally adjacent constellation points must differ in exactly one of
  // the three I-axis bits.
  for (int hi = 0; hi < 7; ++hi) {
    Cplx a(0, 0), b(0, 0);
    // Find points with I level (2*hi-7) and (2*hi-5), same Q.
    const double scale = 1.0 / std::sqrt(42.0);
    a = Cplx((2.0 * hi - 7.0) * scale, 7.0 * scale);
    b = Cplx((2.0 * hi - 5.0) * scale, 7.0 * scale);
    EXPECT_EQ(hamming_distance(Qam64::demap(a), Qam64::demap(b)), 1u);
  }
}

TEST(Qam64, DemapIsNearestNeighbor) {
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    const Cplx target(rng.uniform(-1.6, 1.6), rng.uniform(-1.6, 1.6));
    const Cplx quantized = Qam64::quantize(target);
    // Exhaustive check: no constellation point is closer.
    for (std::size_t i = 0; i < Qam64::kPoints; ++i) {
      EXPECT_LE(std::norm(quantized - target),
                std::norm(Qam64::point(i) - target) + 1e-12);
    }
  }
}

TEST(Qam64, QuantizeScalesWithAlpha) {
  const Cplx target(3.0, -2.0);
  const double alpha = 2.5;
  const Cplx q = Qam64::quantize(target, alpha);
  // The result lies on the α-scaled grid.
  const std::size_t idx = Qam64::nearest_index(target, alpha);
  EXPECT_NEAR(std::abs(q - Qam64::point(idx) * alpha), 0.0, 1e-12);
}

TEST(Qam64, MapAllLength) {
  Rng rng(13);
  const Bits bits = random_bits(288, rng);
  EXPECT_EQ(Qam64::map_all(bits).size(), 48u);
}

// ---------------------------------------------------------------- OFDM ----

TEST(Ofdm, DataSubcarrierLayout) {
  const auto& dsc = Ofdm::data_subcarriers();
  EXPECT_EQ(dsc.size(), 48u);
  for (int k : dsc) {
    EXPECT_NE(k, 0);
    EXPECT_NE(std::abs(k), 7);
    EXPECT_NE(std::abs(k), 21);
    EXPECT_LE(std::abs(k), 26);
  }
}

TEST(Ofdm, BinMapping) {
  EXPECT_EQ(Ofdm::bin_of(0), 0u);
  EXPECT_EQ(Ofdm::bin_of(1), 1u);
  EXPECT_EQ(Ofdm::bin_of(-1), 63u);
  EXPECT_EQ(Ofdm::bin_of(-26), 38u);
}

TEST(Ofdm, ModulateDemodulateRoundTrip) {
  Rng rng(14);
  IqBuffer data(48);
  for (Cplx& v : data) v = Cplx(rng.normal(), rng.normal());
  const IqBuffer symbol = Ofdm::modulate_symbol(data);
  EXPECT_EQ(symbol.size(), Ofdm::kSymbolLength);
  const IqBuffer recovered = Ofdm::demodulate_symbol(symbol);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_NEAR(std::abs(recovered[i] - data[i]), 0.0, 1e-9);
  }
}

TEST(Ofdm, CyclicPrefixIsCopyOfTail) {
  Rng rng(15);
  IqBuffer data(48);
  for (Cplx& v : data) v = Cplx(rng.normal(), rng.normal());
  const IqBuffer symbol = Ofdm::modulate_symbol(data);
  for (std::size_t i = 0; i < Ofdm::kCpLength; ++i) {
    EXPECT_NEAR(std::abs(symbol[i] - symbol[Ofdm::kFftSize + i]), 0.0, 1e-12);
  }
}

TEST(Ofdm, PilotsCarryPilotValue) {
  IqBuffer data(48, Cplx(0, 0));
  const IqBuffer symbol = Ofdm::modulate_symbol(data, Cplx(1, 0));
  const IqBuffer spectrum = Ofdm::symbol_spectrum(symbol);
  for (int p : Ofdm::pilot_subcarriers()) {
    EXPECT_NEAR(std::abs(spectrum[Ofdm::bin_of(p)] - Cplx(1, 0)), 0.0, 1e-9);
  }
}

// --------------------------------------------------------------- misc ----

TEST(Iq, EvmZeroForIdenticalBuffers) {
  Rng rng(16);
  IqBuffer x(32);
  for (Cplx& v : x) v = Cplx(rng.normal(), rng.normal());
  EXPECT_NEAR(evm(x, x), 0.0, 1e-12);
}

TEST(Iq, NormalizePowerSetsTarget) {
  Rng rng(17);
  IqBuffer x(64);
  for (Cplx& v : x) v = Cplx(rng.normal(), rng.normal());
  normalize_power(x, 2.0);
  EXPECT_NEAR(average_power(x), 2.0, 1e-12);
}

TEST(Iq, FrequencyShiftPreservesPower) {
  Rng rng(18);
  IqBuffer x(128);
  for (Cplx& v : x) v = Cplx(rng.normal(), rng.normal());
  const double p0 = average_power(x);
  frequency_shift(x, 3e6, 20e6);
  EXPECT_NEAR(average_power(x), p0, 1e-9);
}

TEST(Iq, FrequencyShiftRoundTrip) {
  Rng rng(19);
  IqBuffer x(64);
  for (Cplx& v : x) v = Cplx(rng.normal(), rng.normal());
  IqBuffer y = x;
  frequency_shift(y, 5e6, 20e6);
  frequency_shift(y, -5e6, 20e6);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace ctj::phy
