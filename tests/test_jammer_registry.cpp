// Tests for the adversary-zoo registry (jammer/registry.hpp): spec codec,
// typed errors, registry/direct bit-identity, archetype behaviour units,
// the archetype-agnostic invariants checker and the kernel-conformance
// smoke for the sweep-reducible configurations, plus the behavioural
// environment mode end to end (save/load round-trip and spec mismatch).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "conformance/conformance.hpp"
#include "core/environment.hpp"
#include "jammer/adaptive_jammer.hpp"
#include "jammer/colluding_jammer.hpp"
#include "jammer/duty_cycle_jammer.hpp"
#include "jammer/reactive_jammer.hpp"
#include "jammer/registry.hpp"
#include "jammer/sweep_jammer.hpp"

namespace ctj::jammer {
namespace {

const std::vector<std::string> kBuiltins = {"adaptive", "colluding",
                                            "duty_cycle", "reactive", "sweep"};

void expect_same_reports(Jammer& a, Jammer& b, const std::vector<int>& script) {
  for (std::size_t i = 0; i < script.size(); ++i) {
    const JammerSlotReport ra = a.step(script[i]);
    const JammerSlotReport rb = b.step(script[i]);
    ASSERT_EQ(ra.hit, rb.hit) << "slot " << i;
    ASSERT_EQ(ra.power, rb.power) << "slot " << i;
    ASSERT_EQ(ra.jammed_group_start, rb.jammed_group_start) << "slot " << i;
    ASSERT_EQ(ra.emitting, rb.emitting) << "slot " << i;
  }
}

std::vector<int> victim_script(int num_channels, std::size_t slots,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> script;
  int channel = 0;
  for (std::size_t i = 0; i < slots; ++i) {
    if (rng.bernoulli(0.3)) channel = static_cast<int>(rng.index(
        static_cast<std::size_t>(num_channels)));
    script.push_back(channel);
  }
  return script;
}

// --------------------------------------------------------------- registry ----

TEST(JammerRegistry, ListsBuiltinArchetypes) {
  const auto keys = registered_archetypes();
  EXPECT_EQ(keys, kBuiltins);  // sorted
  for (const auto& key : kBuiltins) EXPECT_TRUE(is_registered(key));
  EXPECT_FALSE(is_registered("kernel"));
}

TEST(JammerRegistry, UnknownArchetypeThrowsTypedError) {
  JammerSpec spec = JammerSpec::defaults("barrage");
  EXPECT_THROW(make_jammer(spec, 1), RegistryError);
  try {
    make_jammer(spec, 1);
  } catch (const RegistryError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("barrage"), std::string::npos);
    EXPECT_NE(what.find("sweep"), std::string::npos);  // lists registered keys
  }
}

TEST(JammerRegistry, KernelSentinelIsNotConstructible) {
  EXPECT_THROW(make_jammer(JammerSpec::kernel(), 1), RegistryError);
}

TEST(JammerRegistry, KernelKeyIsReserved) {
  EXPECT_THROW(register_jammer("kernel",
                               [](const JammerSpec&, std::uint64_t) {
                                 return std::unique_ptr<Jammer>();
                               }),
               RegistryError);
}

TEST(JammerRegistry, MakeJammerReportsRequestedArchetype) {
  for (const auto& key : kBuiltins) {
    const auto jam = make_jammer(JammerSpec::defaults(key), 3);
    EXPECT_EQ(jam->archetype(), key);
    EXPECT_EQ(jam->num_channels(), 16);
    EXPECT_EQ(jam->channels_per_sweep(), 4);
  }
}

// ------------------------------------------------------------- spec codec ----

TEST(JammerSpec, RoundTripsEveryArchetype) {
  for (const auto& key : kBuiltins) {
    JammerSpec spec = JammerSpec::defaults(key);
    spec.num_channels = 8;
    spec.channels_per_sweep = 2;
    spec.mode = JammerPowerMode::kRandomPower;
    spec.exploit_probability = 0.4;
    spec.decay = 0.9;
    spec.dwell_slots = 7;
    spec.energy_capacity = 20.0;
    spec.emit_cost = 5.0;
    spec.recharge_per_slot = 2.0;
    spec.num_colluders = 3;

    io::ByteWriter out;
    spec.encode(out);
    const std::string payload = out.take();
    io::ByteReader in(payload);
    const JammerSpec decoded = JammerSpec::decode(in);
    in.expect_end();
    EXPECT_EQ(decoded, spec) << key;
  }
}

TEST(JammerSpec, DecodeRejectsBadGeometry) {
  JammerSpec spec = JammerSpec::defaults();
  spec.channels_per_sweep = 32;  // m > K
  io::ByteWriter out;
  spec.encode(out);
  const std::string payload = out.take();
  io::ByteReader in(payload);
  EXPECT_THROW(JammerSpec::decode(in), io::IoError);
}

// ----------------------------------------------- registry vs direct types ----

TEST(JammerRegistry, SweepFactoryMatchesDirectConstruction) {
  SweepJammer direct(SweepJammerConfig::defaults(), 42);
  const auto via_registry = make_jammer(JammerSpec::defaults("sweep"), 42);
  expect_same_reports(direct, *via_registry, victim_script(16, 500, 9));
}

TEST(JammerRegistry, AdaptiveFactoryMatchesDirectConstruction) {
  AdaptiveJammer direct(AdaptiveJammerConfig::defaults(), 42);
  const auto via_registry = make_jammer(JammerSpec::defaults("adaptive"), 42);
  expect_same_reports(direct, *via_registry, victim_script(16, 500, 10));
}

TEST(JammerRegistry, ColludingTeamOfOneMatchesSweep) {
  // k = 1 degenerates to exactly the sweep strategy (same RNG draws).
  JammerSpec spec = JammerSpec::defaults("colluding");
  spec.num_colluders = 1;
  const auto team = make_jammer(spec, 42);
  SweepJammer lone(SweepJammerConfig::defaults(), 42);
  expect_same_reports(lone, *team, victim_script(16, 500, 11));
}

// ------------------------------------------------------ archetype behaviour ----

TEST(ReactiveJammerBehaviour, ListensSilentlyUntilTriggeredThenDwells) {
  ReactiveJammerConfig config = ReactiveJammerConfig::defaults();
  config.dwell_slots = 3;
  ReactiveJammer jam(config, 5);
  // Until the listen cursor reaches the victim's group nothing is emitted.
  int silent_slots = 0;
  JammerSlotReport report;
  for (int i = 0; i < 4; ++i) {
    report = jam.step(9);
    if (report.hit) break;
    EXPECT_FALSE(report.emitting);  // listening is silent
    ++silent_slots;
  }
  ASSERT_TRUE(report.hit);  // cyclic listen over 4 groups must trigger
  EXPECT_LT(silent_slots, 4);
  EXPECT_TRUE(jam.locked());
  // Victim stays: the dwell refreshes and every slot hits.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(jam.step(9).hit);
  // Victim escapes: the jammer keeps blanketing the vacated group for
  // dwell_slots slots (emitting but not hitting), then falls back to
  // listening.
  for (int i = 0; i < 3; ++i) {
    report = jam.step(0);
    EXPECT_FALSE(report.hit);
    EXPECT_TRUE(report.emitting);
    EXPECT_EQ(report.jammed_group_start, 8);
  }
  EXPECT_FALSE(jam.locked());
}

TEST(DutyCycleJammerBehaviour, BatteryThrottlesLockOnDuty) {
  DutyCycleJammerConfig config = DutyCycleJammerConfig::defaults();
  DutyCycleJammer jam(config, 6);
  // Lock onto a stationary victim, then count emissions over a long camp.
  while (!jam.step(9).hit) {
  }
  int hits = 0;
  const int slots = 300;
  for (int i = 0; i < slots; ++i) {
    if (jam.step(9).hit) ++hits;
  }
  // recharge 1 / cost 3: the steady-state duty cycle is ~1/3, never full.
  EXPECT_GT(hits, slots / 5);
  EXPECT_LT(hits, slots / 2);
  EXPECT_LE(jam.energy(), config.energy_capacity);
}

TEST(DutyCycleJammerBehaviour, ZeroCostReducesToSweep) {
  DutyCycleJammerConfig config = DutyCycleJammerConfig::defaults();
  config.emit_cost = 0.0;
  DutyCycleJammer free_jam(config, 42);
  SweepJammer sweep(config.sweep, 42);
  expect_same_reports(sweep, free_jam, victim_script(16, 500, 12));
}

TEST(ColludingJammerBehaviour, TeamFindsVictimFasterThanLoneSweeper) {
  // With k = 2 colluders over 4 groups a stationary victim must be found
  // within ⌈N/k⌉ = 2 slots; a lone sweeper needs up to 4.
  JammerSpec spec = JammerSpec::defaults("colluding");
  spec.num_colluders = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto team = make_jammer(spec, seed);
    int found_at = 0;
    for (int slot = 1; slot <= 4; ++slot) {
      if (team->step(9).hit) {
        found_at = slot;
        break;
      }
    }
    EXPECT_GE(found_at, 1) << "seed " << seed;
    EXPECT_LE(found_at, 2) << "seed " << seed;
  }
}

TEST(ColludingJammerBehaviour, ClampsTeamToGroupCount) {
  JammerSpec spec = JammerSpec::defaults("colluding");
  spec.num_colluders = 99;  // > ⌈16/4⌉ groups
  const auto team = make_jammer(spec, 2);
  const auto* colluding = dynamic_cast<const ColludingJammer*>(team.get());
  ASSERT_NE(colluding, nullptr);
  EXPECT_EQ(colluding->num_colluders(), 4);
}

// ------------------------------------------------- invariants + conformance ----

conformance::KernelCheckOptions smoke_options(std::uint64_t seed,
                                              std::size_t slots) {
  conformance::KernelCheckOptions options;
  options.slots = slots;
  options.seed = seed;
  return options;
}

TEST(JammerInvariants, EveryArchetypeHonoursTheContract) {
  for (const auto& key : kBuiltins) {
    const auto result = conformance::check_jammer_invariants(
        JammerSpec::defaults(key), smoke_options(21, 20000), key);
    for (const auto& d : result.divergences) ADD_FAILURE() << d.describe();
  }
}

TEST(JammerInvariants, RandomPowerModeToo) {
  for (const auto& key : kBuiltins) {
    JammerSpec spec = JammerSpec::defaults(key);
    spec.mode = JammerPowerMode::kRandomPower;
    const auto result = conformance::check_jammer_invariants(
        spec, smoke_options(22, 20000), key + "_random");
    for (const auto& d : result.divergences) ADD_FAILURE() << d.describe();
  }
}

TEST(JammerConformance, SweepReducibleConfigsMatchKernel) {
  // The four registry configurations whose dynamics reduce to the sweep
  // model, each smoke-checked against the analytic MDP at a reduced slot
  // budget (the deep sweep lives in bench_conformance).
  struct ReducibleCase {
    std::string label;
    JammerSpec spec;
  };
  std::vector<ReducibleCase> cases;
  cases.push_back({"sweep", JammerSpec::defaults("sweep")});
  {
    JammerSpec spec = JammerSpec::defaults("adaptive");
    spec.exploit_probability = 0.0;  // never exploits → pure sweeper
    cases.push_back({"adaptive_explore_only", spec});
  }
  {
    JammerSpec spec = JammerSpec::defaults("duty_cycle");
    spec.emit_cost = 0.0;  // free emissions → unthrottled sweeper
    cases.push_back({"duty_cycle_free", spec});
  }
  {
    JammerSpec spec = JammerSpec::defaults("colluding");
    spec.num_colluders = 1;  // team of one → lone sweeper
    cases.push_back({"colluding_solo", spec});
  }

  std::vector<double> tx_levels;
  for (int v = 6; v <= 15; ++v) tx_levels.push_back(v);
  for (auto& c : cases) {
    const auto options = smoke_options(31, 60000);
    auto jam = make_jammer(c.spec, options.seed * 0x9e3779b9ULL + 17);
    const auto result = conformance::check_sweep_kernel(
        *jam, c.spec.power_levels, c.spec.mode, tx_levels,
        /*loss_jam=*/100.0, /*loss_hop=*/50.0, options, c.label);
    EXPECT_GT(result.cells_checked, 0u) << c.label;
    for (const auto& d : result.divergences) ADD_FAILURE() << d.describe();
  }
}

// ------------------------------------------------- behavioural environment ----

TEST(BehaviouralEnvironment, SaveLoadRoundTripContinuesBitIdentically) {
  core::EnvironmentConfig config = core::EnvironmentConfig::defaults();
  config.jammer = JammerSpec::defaults("reactive");
  core::CompetitionEnvironment env(config);
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    env.step(static_cast<int>(rng.index(16)), rng.index(10));
  }

  io::ByteWriter out;
  env.save_state(out);
  const std::string payload = out.take();
  core::CompetitionEnvironment restored(config);
  io::ByteReader in(payload);
  restored.load_state(in);
  in.expect_end();

  for (int i = 0; i < 500; ++i) {
    const int channel = static_cast<int>(rng.index(16));
    const std::size_t power = rng.index(10);
    const auto a = env.step(channel, power);
    const auto b = restored.step(channel, power);
    ASSERT_EQ(a.outcome, b.outcome) << "slot " << i;
    ASSERT_EQ(a.reward, b.reward) << "slot " << i;
  }
}

TEST(BehaviouralEnvironment, RejectsCheckpointFromDifferentJammerSpec) {
  core::EnvironmentConfig config = core::EnvironmentConfig::defaults();
  config.jammer = JammerSpec::defaults("reactive");
  core::CompetitionEnvironment env(config);
  env.step(3, 2);
  io::ByteWriter out;
  env.save_state(out);
  const std::string payload = out.take();

  core::EnvironmentConfig other = config;
  other.jammer = JammerSpec::defaults("duty_cycle");
  core::CompetitionEnvironment victim(other);
  io::ByteReader in(payload);
  EXPECT_THROW(victim.load_state(in), io::IoError);
}

TEST(BehaviouralEnvironment, EveryArchetypeRunsAgainstTheEnvironment) {
  for (const auto& key : kBuiltins) {
    core::EnvironmentConfig config = core::EnvironmentConfig::defaults();
    config.jammer = JammerSpec::defaults(key);
    config.seed = 91;
    core::CompetitionEnvironment env(config);
    EXPECT_FALSE(env.kernel_mode());
    ASSERT_NE(env.behavioural_jammer(), nullptr);
    EXPECT_EQ(env.behavioural_jammer()->archetype(), key);
    Rng rng(13);
    int jammed = 0;
    for (int i = 0; i < 2000; ++i) {
      const auto step = env.step(static_cast<int>(rng.index(16)), 0);
      if (step.outcome != core::SlotOutcome::kClear) ++jammed;
    }
    EXPECT_GT(jammed, 0) << key;  // every archetype actually attacks
  }
}

}  // namespace
}  // namespace ctj::jammer
