// Tests for the behavioural sweeping cross-technology jammer and the
// victim-side error-rate detector.
#include <gtest/gtest.h>

#include <set>

#include "common/stats.hpp"
#include "jammer/detector.hpp"
#include "jammer/sweep_jammer.hpp"

namespace ctj::jammer {
namespace {

TEST(SweepJammerConfig, DefaultsMatchPaper) {
  const auto c = SweepJammerConfig::defaults();
  EXPECT_EQ(c.num_channels, 16);
  EXPECT_EQ(c.channels_per_sweep, 4);
  EXPECT_EQ(c.sweep_cycle(), 4);
  EXPECT_EQ(c.power_levels.size(), 10u);
}

TEST(SweepJammerConfig, SweepCycleCeiling) {
  SweepJammerConfig c = SweepJammerConfig::defaults();
  c.num_channels = 10;
  c.channels_per_sweep = 4;
  EXPECT_EQ(c.sweep_cycle(), 3);  // ⌈10/4⌉
}

TEST(SweepJammer, FindsStationaryVictimWithinOneCycle) {
  // A victim that never hops must be found within ⌈K/m⌉ = 4 slots.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SweepJammer jammer(SweepJammerConfig::defaults(), seed);
    int slots_to_find = 0;
    for (int slot = 1; slot <= 4; ++slot) {
      if (jammer.step(5).hit) {
        slots_to_find = slot;
        break;
      }
    }
    EXPECT_GE(slots_to_find, 1) << "seed " << seed;
    EXPECT_LE(slots_to_find, 4) << "seed " << seed;
  }
}

TEST(SweepJammer, LocksOnAndKeepsJamming) {
  SweepJammer jammer(SweepJammerConfig::defaults(), 3);
  // Force discovery.
  while (!jammer.step(7).hit) {
  }
  EXPECT_TRUE(jammer.locked());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(jammer.step(7).hit);
  }
}

TEST(SweepJammer, ResumesSweepWhenVictimLeaves) {
  SweepJammer jammer(SweepJammerConfig::defaults(), 4);
  while (!jammer.step(7).hit) {
  }
  EXPECT_TRUE(jammer.locked());
  // Victim hops far away (different group): the jammer must unlock.
  const auto report = jammer.step(12);
  EXPECT_FALSE(report.hit && jammer.locked_channel() == 7);
  // Eventually it finds the victim again.
  bool found = false;
  for (int i = 0; i < 4; ++i) {
    if (jammer.step(12).hit) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SweepJammer, StaysLockedWhenVictimMovesWithinGroup) {
  // The jammer's 20 MHz emission covers the whole 4-channel group: hopping
  // inside the group does not escape it.
  SweepJammer jammer(SweepJammerConfig::defaults(), 5);
  while (!jammer.step(4).hit) {
  }
  EXPECT_TRUE(jammer.step(5).hit);  // channels 4..7 share a group
  EXPECT_TRUE(jammer.step(6).hit);
}

TEST(SweepJammer, HazardRateMatchesMdpModel) {
  // Statistical check of the 1/(N−n) discovery hazard: over many fresh
  // cycles, a stationary victim is found in slot 1, 2, 3, 4 with equal
  // probability 1/4 (uniform random sweep order).
  std::vector<int> found_at(5, 0);
  SweepJammerConfig config = SweepJammerConfig::defaults();
  for (std::uint64_t seed = 0; seed < 4000; ++seed) {
    SweepJammer jammer(config, seed);
    for (int slot = 1; slot <= 4; ++slot) {
      if (jammer.step(9).hit) {
        ++found_at[static_cast<std::size_t>(slot)];
        break;
      }
    }
  }
  for (int slot = 1; slot <= 4; ++slot) {
    EXPECT_NEAR(found_at[static_cast<std::size_t>(slot)] / 4000.0, 0.25, 0.03)
        << "slot " << slot;
  }
}

TEST(SweepJammer, MaxPowerModeAlwaysTop) {
  SweepJammerConfig config = SweepJammerConfig::defaults();
  config.mode = JammerPowerMode::kMaxPower;
  SweepJammer jammer(config, 6);
  while (!jammer.step(2).hit) {
  }
  for (int i = 0; i < 20; ++i) {
    const auto report = jammer.step(2);
    ASSERT_TRUE(report.hit);
    EXPECT_DOUBLE_EQ(report.power, 20.0);
  }
}

TEST(SweepJammer, RandomPowerModeSpansLevels) {
  SweepJammerConfig config = SweepJammerConfig::defaults();
  config.mode = JammerPowerMode::kRandomPower;
  SweepJammer jammer(config, 7);
  while (!jammer.step(2).hit) {
  }
  std::set<double> seen;
  for (int i = 0; i < 300; ++i) {
    const auto report = jammer.step(2);
    ASSERT_TRUE(report.hit);
    seen.insert(report.power);
  }
  EXPECT_EQ(seen.size(), 10u);  // all levels 11..20 appear
  EXPECT_EQ(*seen.begin(), 11.0);
  EXPECT_EQ(*seen.rbegin(), 20.0);
}

TEST(SweepJammer, ResetRestartsSweep) {
  SweepJammer jammer(SweepJammerConfig::defaults(), 8);
  while (!jammer.step(3).hit) {
  }
  EXPECT_TRUE(jammer.locked());
  jammer.reset();
  EXPECT_FALSE(jammer.locked());
}

TEST(SweepJammer, RejectsBadConfig) {
  SweepJammerConfig config = SweepJammerConfig::defaults();
  config.power_levels.clear();
  EXPECT_THROW(SweepJammer(config, 1), CheckFailure);
  config = SweepJammerConfig::defaults();
  config.channels_per_sweep = 32;
  EXPECT_THROW(SweepJammer(config, 1), CheckFailure);
}

TEST(SweepJammer, SingleGroupNetworkIsAlwaysCovered) {
  // K == m boundary: one group covers the whole spectrum, so the
  // 1/(⌈K/m⌉ − 1) vacated-group-exclusion hazard would be ill-defined. The
  // jammer must keep sweeping the single group (never exclude it) and a
  // victim can never escape.
  SweepJammerConfig config = SweepJammerConfig::defaults();
  config.num_channels = 4;
  config.channels_per_sweep = 4;
  ASSERT_EQ(config.sweep_cycle(), 1);
  SweepJammer jammer(config, 11);
  EXPECT_TRUE(jammer.step(2).hit);  // the first slot finds it with certainty
  EXPECT_TRUE(jammer.locked());
  for (int ch = 0; ch < 4; ++ch) {
    EXPECT_TRUE(jammer.step(ch).hit);  // in-group hops cannot escape
    EXPECT_TRUE(jammer.locked());
  }
  jammer.reset();
  EXPECT_TRUE(jammer.step(0).hit);  // the refilled cycle is the only group
}

TEST(SweepJammer, TwoGroupEscapeRefindsWithCertainty) {
  // K == m + 1 boundary: two groups, the second holding a single channel.
  // After an escape the vacated group is excluded, so the post-escape
  // hazard is 1/(N − 1) = 1 — the next slot must re-find the victim, in
  // both escape directions, for every seed.
  SweepJammerConfig config = SweepJammerConfig::defaults();
  config.num_channels = 5;
  config.channels_per_sweep = 4;
  ASSERT_EQ(config.sweep_cycle(), 2);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SweepJammer jammer(config, seed);
    while (!jammer.step(1).hit) {
    }
    EXPECT_TRUE(jammer.locked()) << "seed " << seed;
    EXPECT_FALSE(jammer.step(4).hit) << "seed " << seed;  // escape slot safe
    EXPECT_FALSE(jammer.locked()) << "seed " << seed;
    EXPECT_TRUE(jammer.step(4).hit) << "seed " << seed;  // certain re-find
    EXPECT_FALSE(jammer.step(0).hit) << "seed " << seed;  // escape back
    EXPECT_TRUE(jammer.step(0).hit) << "seed " << seed;
  }
}

TEST(SweepJammer, RejectsOutOfRangeVictimChannel) {
  SweepJammer jammer(SweepJammerConfig::defaults(), 9);
  EXPECT_THROW(jammer.step(16), CheckFailure);
  EXPECT_THROW(jammer.step(-1), CheckFailure);
}

// ---------------------------------------------------------------- detector ----

TEST(Detector, TriggersAtThreshold) {
  ErrorRateDetector det(4, 0.5);
  det.record(false);
  det.record(false);
  EXPECT_FALSE(det.jammed());
  det.record(true);
  det.record(true);
  EXPECT_TRUE(det.jammed());  // 2/4 = 0.5 >= 0.5
}

TEST(Detector, SlidingWindowForgets) {
  ErrorRateDetector det(3, 0.9);
  det.record(true);
  det.record(true);
  det.record(true);
  EXPECT_TRUE(det.jammed());
  det.record(false);
  det.record(false);
  det.record(false);
  EXPECT_FALSE(det.jammed());
  EXPECT_DOUBLE_EQ(det.error_rate(), 0.0);
}

TEST(Detector, ResetClearsHistory) {
  ErrorRateDetector det(2, 0.5);
  det.record(true);
  det.record(true);
  EXPECT_TRUE(det.jammed());
  det.reset();
  EXPECT_FALSE(det.jammed());
  EXPECT_DOUBLE_EQ(det.error_rate(), 0.0);
}

TEST(Detector, SingleSlotWindowReactsImmediately) {
  ErrorRateDetector det(1, 1.0);
  det.record(true);
  EXPECT_TRUE(det.jammed());
  det.record(false);
  EXPECT_FALSE(det.jammed());
}

TEST(Detector, RejectsBadParameters) {
  EXPECT_THROW(ErrorRateDetector(0, 0.5), CheckFailure);
  EXPECT_THROW(ErrorRateDetector(4, 0.0), CheckFailure);
  EXPECT_THROW(ErrorRateDetector(4, 1.5), CheckFailure);
}

}  // namespace
}  // namespace ctj::jammer
