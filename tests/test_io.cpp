// CTJS container format tests: byte codec, CRC32, chunk round trips, atomic
// writes, and the corruption matrix — every single-byte flip, every
// truncation point, and a bumped version must yield a typed io::IoError,
// never UB or a silently wrong read.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/json.hpp"
#include "io/bytes.hpp"
#include "io/container.hpp"
#include "io/crc32.hpp"
#include "io/tensors.hpp"

using namespace ctj;
using namespace ctj::io;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

ContainerWriter small_container() {
  ContainerWriter out;
  ByteWriter a;
  a.u64(42);
  a.f64(3.5);
  a.str("hello");
  out.add_chunk(tags::kMeta, a.take());
  ByteWriter b;
  b.f64_vec({1.0, -2.0, 0.25});
  out.add_chunk(tags::kTrainProgress, b.take());
  return out;
}

}  // namespace

TEST(Crc32, KnownVector) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t crc = 0;
  for (char c : data) crc = crc32_update(crc, &c, 1);
  EXPECT_EQ(crc, crc32(data));
}

TEST(Bytes, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-7);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.str("chunky");
  w.f64_vec({1.5, 2.5});

  ByteReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(std::signbit(r.f64()), true);  // -0.0 bit pattern preserved
  EXPECT_TRUE(std::isnan(r.f64()));        // NaN survives (bit-exact travel)
  EXPECT_EQ(r.str(), "chunky");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, 2.5}));
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Bytes, OverReadThrowsBadPayload) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.buffer());
  r.u16();
  try {
    r.u32();
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kBadPayload);
  }
}

TEST(Bytes, TrailingBytesThrow) {
  ByteWriter w;
  w.u64(5);
  w.u8(9);
  ByteReader r(w.buffer());
  r.u64();
  try {
    r.expect_end();
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kBadPayload);
  }
}

TEST(Bytes, HugeVectorLengthThrowsInsteadOfAllocating) {
  ByteWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max() / 2);  // absurd count
  ByteReader r(w.buffer());
  EXPECT_THROW(r.f64_vec(), IoError);
}

TEST(Container, RoundTripPreservesChunksAndOrder) {
  const std::string bytes = small_container().to_bytes();
  const ContainerReader in = ContainerReader::from_bytes(bytes);
  EXPECT_EQ(in.format_version(), kFormatVersion);
  ASSERT_EQ(in.chunks().size(), 2u);
  EXPECT_EQ(in.chunks()[0].tag, "META");
  EXPECT_EQ(in.chunks()[1].tag, "TRAINPRG");
  ByteReader meta(in.chunk(tags::kMeta));
  EXPECT_EQ(meta.u64(), 42u);
  EXPECT_EQ(meta.f64(), 3.5);
  EXPECT_EQ(meta.str(), "hello");
}

TEST(Container, SaveLoadSaveIsByteIdentical) {
  const std::string first = small_container().to_bytes();
  const ContainerReader in = ContainerReader::from_bytes(first);
  ContainerWriter out;
  for (const ChunkInfo& chunk : in.chunks()) {
    out.add_chunk(chunk.tag, std::string(in.chunk(chunk.tag)));
  }
  EXPECT_EQ(out.to_bytes(), first);
}

TEST(Container, MissingChunkThrows) {
  const std::string bytes = small_container().to_bytes();
  const ContainerReader in = ContainerReader::from_bytes(bytes);
  EXPECT_FALSE(in.has_chunk(tags::kReplay));
  try {
    in.chunk(tags::kReplay);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMissingChunk);
  }
}

TEST(Container, BadMagicThrows) {
  std::string bytes = small_container().to_bytes();
  bytes[0] = 'X';
  try {
    ContainerReader::from_bytes(bytes);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kBadMagic);
  }
}

TEST(Container, VersionBumpThrowsVersionMismatch) {
  std::string bytes = small_container().to_bytes();
  // Bump format_version (offset 4, u16 LE) and re-stamp the header CRC so
  // only the version check can fire.
  bytes[4] = 2;
  const std::uint32_t crc = crc32(bytes.data(), 20);
  for (int i = 0; i < 4; ++i) {
    bytes[20 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  try {
    ContainerReader::from_bytes(bytes);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kVersionMismatch);
  }
}

TEST(Container, EveryTruncationPointThrows) {
  const std::string bytes = small_container().to_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(ContainerReader::from_bytes(bytes.substr(0, len)), IoError)
        << "silently accepted a file truncated to " << len << " bytes";
  }
}

TEST(Container, EverySingleByteFlipThrows) {
  const std::string bytes = small_container().to_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (unsigned char flip : {0x01, 0x80}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      EXPECT_THROW(ContainerReader::from_bytes(corrupt), IoError)
          << "flip of bit in byte " << i << " went undetected";
    }
  }
}

TEST(Container, AppendedTrailingBytesThrow) {
  std::string bytes = small_container().to_bytes();
  bytes.push_back('\0');
  try {
    ContainerReader::from_bytes(bytes);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTruncated);
  }
}

TEST(Container, WriteFileIsAtomicAndLeavesNoTemp) {
  const std::string path = temp_path("ctj_io_atomic.ctjs");
  std::filesystem::remove(path);
  small_container().write_file(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(read_file(path), small_container().to_bytes());
  // from_file sees exactly what from_bytes sees.
  const ContainerReader in = ContainerReader::from_file(path);
  EXPECT_EQ(in.chunks().size(), 2u);
  std::filesystem::remove(path);
}

TEST(Container, WriteToUnwritablePathThrowsAndLeavesTargetAlone) {
  const std::string path = temp_path("ctj_io_noexist_dir") + "/sub/out.ctjs";
  EXPECT_THROW(small_container().write_file(path), IoError);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Container, OpenMissingFileThrowsOpenFailed) {
  try {
    ContainerReader::from_file(temp_path("ctj_io_does_not_exist.ctjs"));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kOpenFailed);
  }
}

TEST(Meta, EncodeDecodeRoundTrip) {
  std::map<std::string, std::string> meta;
  meta["format"] = "ctjs";
  meta["simd_level"] = "avx2";
  meta["type"] = "model";
  EXPECT_EQ(decode_meta(encode_meta(meta)), meta);
}

TEST(Tensors, RoundTrip) {
  std::vector<NamedTensor> tensors(2);
  tensors[0] = {"w", 2, 3, {1, 2, 3, 4, 5, 6}};
  tensors[1] = {"b", 1, 3, {0.5, -0.5, 0.0}};
  ByteWriter w;
  write_tensors(w, tensors);
  ByteReader r(w.buffer());
  const auto back = read_tensors(r);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "w");
  EXPECT_EQ(back[0].rows, 2u);
  EXPECT_EQ(back[0].cols, 3u);
  EXPECT_EQ(back[0].data, tensors[0].data);
  EXPECT_EQ(back[1].data, tensors[1].data);
}

TEST(Tensors, ElementCountMismatchThrows) {
  ByteWriter w;
  w.u32(1);
  w.str("w");
  w.u64(2);
  w.u64(2);
  w.u64(3);  // 3 doubles declared for a 2x2 tensor
  w.f64(0);
  w.f64(0);
  w.f64(0);
  ByteReader r(w.buffer());
  try {
    read_tensors(r);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kBadPayload);
  }
}

// Satellite regression: non-finite doubles must never leak "nan"/"inf" into
// JSON output. Release builds emit null; debug builds trip a CTJ_CHECK.
TEST(Json, NonFiniteNumbersNeverProduceInvalidJson) {
  JsonValue doc = JsonValue::object();
  doc["bad"] = std::numeric_limits<double>::quiet_NaN();
  doc["worse"] = std::numeric_limits<double>::infinity();
#ifdef NDEBUG
  std::ostringstream os;
  doc.dump(os, 0);
  const std::string text = os.str();
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  EXPECT_NE(text.find("null"), std::string::npos) << text;
#else
  std::ostringstream os;
  EXPECT_THROW(doc.dump(os, 0), CheckFailure);
#endif
}
