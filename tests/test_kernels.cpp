// SIMD kernel layer: scalar vs AVX2/AVX-512 parity (bit-exact where
// promised, ULP-bounded where FMA contraction is allowed), TD/Huber
// semantics against the straightforward reference, and the CTJ_SIMD
// dispatch resolver.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/kernels.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "rl/nn.hpp"

namespace ctj {
namespace {

using kern::KernelOps;
using kern::SimdLevel;
using kern::TdHuberArgs;

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

/// Every SIMD level the build carries AND this CPU can execute. Parity tests
/// loop over these so the AVX-512 level gets the same coverage as AVX2
/// wherever hardware allows.
std::vector<const KernelOps*> simd_levels() {
  std::vector<const KernelOps*> levels;
  if (kern::cpu_supports_avx2() && kern::avx2_ops() != nullptr) {
    levels.push_back(kern::avx2_ops());
  }
  if (kern::cpu_supports_avx512() && kern::avx512_ops() != nullptr) {
    levels.push_back(kern::avx512_ops());
  }
  return levels;
}

#define REQUIRE_SIMD(levels_var)                                    \
  const std::vector<const KernelOps*> levels_var = simd_levels();   \
  if (levels_var.empty())                                           \
  GTEST_SKIP() << "no SIMD kernel level available on this CPU/build"

TEST(KernelDispatch, ResolveLevelHonorsOverridesAndCpu) {
  const bool have_avx2 = kern::avx2_ops() != nullptr;
  const bool have_avx512 = kern::avx512_ops() != nullptr;
  // Explicit off/scalar wins regardless of CPU capabilities.
  EXPECT_EQ(kern::resolve_level("off", true, true), SimdLevel::kScalar);
  EXPECT_EQ(kern::resolve_level("scalar", true, true), SimdLevel::kScalar);
  EXPECT_EQ(kern::resolve_level("OFF", true, true), SimdLevel::kScalar);
  // No CPU support at all -> scalar whatever was asked.
  EXPECT_EQ(kern::resolve_level(nullptr, false, false), SimdLevel::kScalar);
  EXPECT_EQ(kern::resolve_level("", false, false), SimdLevel::kScalar);
  EXPECT_EQ(kern::resolve_level("avx2", false, false), SimdLevel::kScalar);
  EXPECT_EQ(kern::resolve_level("bogus", false, false), SimdLevel::kScalar);
  if (have_avx2) {
    EXPECT_EQ(kern::resolve_level("avx2", true, false), SimdLevel::kAvx2);
    EXPECT_EQ(kern::resolve_level("AVX2", true, false), SimdLevel::kAvx2);
    EXPECT_EQ(kern::resolve_level(nullptr, true, false), SimdLevel::kAvx2);
    EXPECT_EQ(kern::resolve_level("", true, false), SimdLevel::kAvx2);
    // Unknown values warn and fall back to auto-detection.
    EXPECT_EQ(kern::resolve_level("bogus", true, false), SimdLevel::kAvx2);
    // Pinning avx2 on an AVX-512 machine must not upgrade.
    EXPECT_EQ(kern::resolve_level("avx2", true, true), SimdLevel::kAvx2);
  }
  if (have_avx512) {
    EXPECT_EQ(kern::resolve_level("avx512", true, true), SimdLevel::kAvx512);
    EXPECT_EQ(kern::resolve_level("AVX512", true, true), SimdLevel::kAvx512);
    // Auto-detection prefers the widest usable level.
    EXPECT_EQ(kern::resolve_level(nullptr, true, true), SimdLevel::kAvx512);
    EXPECT_EQ(kern::resolve_level("", true, true), SimdLevel::kAvx512);
    EXPECT_EQ(kern::resolve_level("bogus", true, true), SimdLevel::kAvx512);
  }
  if (have_avx2) {
    // avx512 requested on a CPU without it falls back to the best level,
    // not to scalar.
    EXPECT_EQ(kern::resolve_level("avx512", true, false), SimdLevel::kAvx2);
  }
}

TEST(KernelDispatch, ActiveOpsNamedConsistently) {
  const std::string name = kern::simd_level_name();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "avx512");
  EXPECT_STREQ(kern::ops().name, name.c_str());
}

TEST(KernelParity, MatmulUlpBounded) {
  REQUIRE_SIMD(levels);
  const KernelOps& scalar = kern::scalar_ops();
  // Shapes cover the DQN layers plus ragged tails for the stripe cascades
  // (64/32/8/4-wide in the AVX-512 level, 32/8/4-wide in AVX2).
  const struct { std::size_t m, k, n; } shapes[] = {
      {1, 24, 45},  {32, 24, 45}, {32, 45, 45},  {32, 45, 160},
      {45, 32, 160}, {3, 7, 5},   {2, 4, 17},    {8, 16, 33},
      {4, 12, 67},  {16, 24, 130},
  };
  for (const KernelOps* simd : levels) {
    SCOPED_TRACE(simd->name);
    Rng rng(11);
    for (const auto& s : shapes) {
      const auto a = random_vec(s.m * s.k, rng);
      const auto b = random_vec(s.k * s.n, rng);
      std::vector<double> c_ref(s.m * s.n, 0.0);
      std::vector<double> c_simd(s.m * s.n, 0.0);
      scalar.matmul_acc(c_ref.data(), a.data(), b.data(), s.m, s.k, s.n);
      simd->matmul_acc(c_simd.data(), a.data(), b.data(), s.m, s.k, s.n);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        // Condition-aware bound: both levels run the same k-order sum, the
        // only divergence is one rounding per FMA, so the difference is tiny
        // relative to Σ|a·b| even when the signed sum cancels.
        const std::size_t row = i / s.n, col = i % s.n;
        double abs_sum = 0.0;
        for (std::size_t k = 0; k < s.k; ++k) {
          abs_sum += std::abs(a[row * s.k + k] * b[k * s.n + col]);
        }
        EXPECT_LE(std::abs(c_ref[i] - c_simd[i]), 1e-13 * (abs_sum + 1.0))
            << "matmul " << s.m << "x" << s.k << "x" << s.n << " elem " << i
            << ": " << c_ref[i] << " vs " << c_simd[i];
      }
    }
  }
}

TEST(KernelParity, MatmulSkipsExactZeros) {
  REQUIRE_SIMD(levels);
  for (const KernelOps* simd : levels) {
    SCOPED_TRACE(simd->name);
    Rng rng(12);
    // One-hot A rows (the DQN output gradient): both levels must produce the
    // single-term products exactly.
    const std::size_t m = 6, k = 160, n = 45;
    std::vector<double> a(m * k, 0.0);
    for (std::size_t i = 0; i < m; ++i) a[i * k + rng.index(k)] = rng.normal();
    const auto b = random_vec(k * n, rng);
    std::vector<double> c_ref(m * n, 0.0), c_simd(m * n, 0.0);
    kern::scalar_ops().matmul_acc(c_ref.data(), a.data(), b.data(), m, k, n);
    simd->matmul_acc(c_simd.data(), a.data(), b.data(), m, k, n);
    for (std::size_t i = 0; i < c_ref.size(); ++i) {
      EXPECT_EQ(c_ref[i], c_simd[i]);
    }
  }
}

TEST(KernelParity, SaxpyUlpBounded) {
  REQUIRE_SIMD(levels);
  for (const KernelOps* simd : levels) {
    SCOPED_TRACE(simd->name);
    Rng rng(13);
    for (std::size_t n : {1u, 3u, 4u, 7u, 8u, 17u, 45u, 160u, 161u}) {
      const auto x = random_vec(n, rng);
      const auto y0 = random_vec(n, rng);
      auto y_ref = y0;
      auto y_simd = y0;
      const double alpha = rng.normal();
      kern::scalar_ops().saxpy(n, alpha, x.data(), y_ref.data());
      simd->saxpy(n, alpha, x.data(), y_simd.data());
      for (std::size_t i = 0; i < n; ++i) {
        // FMA saves one rounding of a·x, so the paths differ by at most one
        // ulp of the operand magnitudes (not of the possibly-cancelled sum).
        const double tol = 1e-15 * (std::abs(alpha * x[i]) + std::abs(y0[i]));
        EXPECT_LE(std::abs(y_ref[i] - y_simd[i]), tol)
            << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelParity, BiasActBitExact) {
  REQUIRE_SIMD(levels);
  for (const KernelOps* simd : levels) {
    SCOPED_TRACE(simd->name);
    Rng rng(14);
    for (const bool relu : {false, true}) {
      for (std::size_t cols : {1u, 5u, 45u, 160u}) {
        const std::size_t rows = 9;
        const auto bias = random_vec(cols, rng);
        auto y_ref = random_vec(rows * cols, rng);
        auto y_simd = y_ref;
        kern::scalar_ops().bias_act(y_ref.data(), bias.data(), rows, cols,
                                    relu);
        simd->bias_act(y_simd.data(), bias.data(), rows, cols, relu);
        for (std::size_t i = 0; i < y_ref.size(); ++i) {
          EXPECT_EQ(y_ref[i], y_simd[i])
              << "relu=" << relu << " cols=" << cols;
        }
        if (relu) {
          for (double v : y_simd) EXPECT_GE(v, 0.0);
        }
      }
    }
  }
}

TEST(KernelParity, RowMaxAndArgmaxBitExact) {
  REQUIRE_SIMD(levels);
  for (const KernelOps* simd : levels) {
    SCOPED_TRACE(simd->name);
    Rng rng(15);
    for (std::size_t n : {1u, 2u, 7u, 8u, 9u, 16u, 45u, 160u, 163u}) {
      const auto x = random_vec(n, rng);
      EXPECT_EQ(kern::scalar_ops().row_max(x.data(), n),
                simd->row_max(x.data(), n));
      const std::size_t ref = kern::scalar_ops().row_argmax(x.data(), n);
      EXPECT_EQ(ref, simd->row_argmax(x.data(), n));
      EXPECT_EQ(ref, argmax(std::span<const double>(x)));
    }
  }
}

TEST(KernelParity, ArgmaxFirstOnTies) {
  REQUIRE_SIMD(levels);
  for (const KernelOps* simd : levels) {
    SCOPED_TRACE(simd->name);
    for (std::size_t n : {6u, 12u, 40u}) {
      std::vector<double> x(n, -1.0);
      // Duplicate maxima in different SIMD lanes: both levels must report
      // the first occurrence, like std::max_element.
      x[2] = 3.5;
      x[n - 1] = 3.5;
      EXPECT_EQ(kern::scalar_ops().row_argmax(x.data(), n), 2u);
      EXPECT_EQ(simd->row_argmax(x.data(), n), 2u);
    }
  }
}

/// Straight-line reference for the fused TD/Huber kernel, written against
/// the rl:: Huber helpers rather than kernels_detail.
double td_huber_reference(const TdHuberArgs& a, std::vector<double>& grad) {
  grad.assign(a.batch * a.num_actions, 0.0);
  double loss = 0.0;
  for (std::size_t i = 0; i < a.batch; ++i) {
    const double* nq = a.next_q + i * a.num_actions;
    double max_next;
    if (a.next_q_online != nullptr) {
      const double* nqo = a.next_q_online + i * a.num_actions;
      max_next = nq[argmax(std::span<const double>(nqo, a.num_actions))];
    } else {
      max_next = nq[argmax(std::span<const double>(nq, a.num_actions))];
    }
    const double r = a.rewards[i] * a.reward_scale;
    const double target = a.dones[i] ? r : r + a.gamma * max_next;
    const double error = a.q[i * a.num_actions + a.actions[i]] - target;
    loss += rl::huber_loss(error, a.huber_delta);
    grad[i * a.num_actions + a.actions[i]] =
        rl::huber_grad(error, a.huber_delta) / a.grad_div;
  }
  return loss;
}

TdHuberArgs make_td_args(std::size_t batch, std::size_t num_actions) {
  TdHuberArgs a;
  a.batch = batch;
  a.num_actions = num_actions;
  a.gamma = 0.9;
  a.reward_scale = 0.01;
  a.grad_div = static_cast<double>(batch);
  a.huber_delta = 1.0;
  return a;
}

class TdHuberTest : public ::testing::TestWithParam<bool> {};

TEST_P(TdHuberTest, MatchesReferenceAndAvx2BitExact) {
  const bool double_dqn = GetParam();
  Rng rng(16);
  const std::size_t B = 32, A = 160;
  const auto q = random_vec(B * A, rng);
  // Spread Q values wide enough to exercise both Huber branches.
  auto next_q = random_vec(B * A, rng);
  for (double& v : next_q) v *= 40.0;
  const auto next_q_online = random_vec(B * A, rng);
  std::vector<std::size_t> actions(B);
  std::vector<double> rewards(B);
  std::vector<std::uint8_t> dones(B);
  for (std::size_t i = 0; i < B; ++i) {
    actions[i] = rng.index(A);
    rewards[i] = rng.uniform(-160.0, 0.0);
    dones[i] = rng.bernoulli(0.2) ? 1 : 0;
  }

  TdHuberArgs args = make_td_args(B, A);
  args.q = q.data();
  args.next_q = next_q.data();
  args.next_q_online = double_dqn ? next_q_online.data() : nullptr;
  args.actions = actions.data();
  args.rewards = rewards.data();
  args.dones = dones.data();

  std::vector<double> grad_ref;
  const double loss_ref = td_huber_reference(args, grad_ref);

  std::vector<double> grad_scalar(B * A, 0.0);
  const double loss_scalar =
      kern::scalar_ops().td_huber_batch(args, grad_scalar.data());
  EXPECT_EQ(loss_scalar, loss_ref);
  EXPECT_EQ(grad_scalar, grad_ref);

  // The SIMD variants only swap in the vector max/argmax, which are
  // bit-exact (the AVX-512 table inherits this kernel from AVX2 outright);
  // the whole fused kernel must therefore agree to the last bit.
  for (const KernelOps* simd : simd_levels()) {
    SCOPED_TRACE(simd->name);
    std::vector<double> grad_simd(B * A, 0.0);
    const double loss_simd = simd->td_huber_batch(args, grad_simd.data());
    EXPECT_EQ(loss_simd, loss_ref);
    EXPECT_EQ(grad_simd, grad_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(VanillaAndDouble, TdHuberTest, ::testing::Bool());

TEST(KernelParity, AdamUpdateBitExact) {
  REQUIRE_SIMD(levels);
  for (const KernelOps* simd : levels) {
    SCOPED_TRACE(simd->name);
    Rng rng(17);
    for (std::size_t n : {1u, 3u, 4u, 45u, 1080u, 7200u + 3u}) {
      auto p_ref = random_vec(n, rng);
      auto m_ref = random_vec(n, rng);
      auto v_ref = random_vec(n, rng);
      for (double& x : v_ref) x = std::abs(x);  // second moments are >= 0
      const auto g = random_vec(n, rng);
      auto p_simd = p_ref, m_simd = m_ref, v_simd = v_ref;
      const double beta1 = 0.9, beta2 = 0.999, lr = 1e-3, eps = 1e-8;
      const double bc1 = 1.0 - std::pow(beta1, 7.0);
      const double bc2 = 1.0 - std::pow(beta2, 7.0);
      kern::scalar_ops().adam_update(p_ref.data(), m_ref.data(), v_ref.data(),
                                     g.data(), n, beta1, beta2, lr, bc1, bc2,
                                     eps);
      simd->adam_update(p_simd.data(), m_simd.data(), v_simd.data(), g.data(),
                        n, beta1, beta2, lr, bc1, bc2, eps);
      EXPECT_EQ(p_ref, p_simd) << "n=" << n;
      EXPECT_EQ(m_ref, m_simd) << "n=" << n;
      EXPECT_EQ(v_ref, v_simd) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace ctj
