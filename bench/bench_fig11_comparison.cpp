// Fig. 11 — the headline comparison.
// (a) Goodput of the anti-jamming schemes under the EmuBee sweeping jammer:
//     Passive FH, Random FH, RL FH (DQN trained on the competition
//     environment, then deployed), the MDP oracle as an idealized reference,
//     and the no-jammer ceiling.
//     Paper: 216 / 311 / 431 pkts/slot and 575 without the jammer —
//     i.e. 37.6% / 54.1% / 78.5% of the normal scenario.
// (b) Goodput vs the jammer's own slot duration (0.5..5 s) at a 3 s victim
//     slot. Paper: best when the clocks match, degrading on both sides.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/environment.hpp"
#include "core/field.hpp"
#include "core/mdp_scheme.hpp"
#include "core/passive_fh.hpp"
#include "core/random_fh.hpp"
#include "core/rl_fh.hpp"
#include "core/trainer.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::core;

namespace {

FieldConfig field_config(std::uint64_t seed, bool jammer_enabled,
                         double jammer_slot_s = 3.0) {
  FieldConfig config = FieldConfig::defaults();
  config.network.num_peripherals = 4;
  config.network.slot_duration_s = 3.0;
  config.network.seed = seed;
  config.jammer_enabled = jammer_enabled;
  config.jammer_slot_s = jammer_slot_s;
  config.signal_type = channel::JammingSignalType::kEmuBee;
  config.seed = seed + 1;
  return config;
}

std::unique_ptr<DqnScheme> train_rl_scheme() {
  DqnScheme::Config config;
  config.history = 4;
  config.hidden = {32, 32};
  config.learning_rate = 1.5e-3;
  config.epsilon_decay_steps = 4000;
  config.seed = 77;
  auto scheme = std::make_unique<DqnScheme>(config);

  auto env_config = EnvironmentConfig::defaults();
  env_config.mode = JammerPowerMode::kMaxPower;
  env_config.seed = 13;
  CompetitionEnvironment env(env_config);
  TrainerConfig trainer;
  trainer.max_slots = 16000;
  trainer.checkpoint = checkpoint_options("fig11_rl_fh");
  const auto stats = train(*scheme, env, trainer);
  std::cout << "trained RL FH: " << stats.slots_trained
            << " slots, final mean reward "
            << TextTable::fmt(stats.final_mean_reward, 1) << "\n";
  scheme->set_training(false);
  scheme->reset();
  return scheme;
}

}  // namespace

int main() {
  std::cout << "Fig. 11 reproduction: anti-jamming scheme comparison "
               "(field simulator, EmuBee sweeping jammer, 3 s slots)\n\n";
  BenchReport report("fig11_comparison");

  // The trained DQN is shared by every comparison run below, so this bench
  // stays sequential.
  auto rl = train_rl_scheme();
  constexpr std::size_t kSlots = 400;
  report.add_slots(16000);

  double goodput_normal = 0.0;
  {
    std::cout << "\n=== Fig. 11(a): goodput by scheme ===\n";
    TextTable table({"scheme", "goodput (pkts/slot)", "% of normal",
                     "ST (%)"});

    RandomFhScheme no_jam_probe{RandomFhScheme::Config{}};
    FieldExperiment normal(field_config(501, /*jammer_enabled=*/false),
                           no_jam_probe);
    const auto r_normal = normal.run(kSlots);
    goodput_normal = r_normal.goodput_packets_per_slot;

    PassiveFhScheme passive{PassiveFhScheme::Config{}};
    FieldExperiment exp_passive(field_config(501, true), passive);
    const auto r_passive = exp_passive.run(kSlots);

    RandomFhScheme random_scheme{RandomFhScheme::Config{}};
    FieldExperiment exp_random(field_config(501, true), random_scheme);
    const auto r_random = exp_random.run(kSlots);

    FieldExperiment exp_rl(field_config(501, true), *rl);
    const auto r_rl = exp_rl.run(kSlots);

    MdpOracleScheme oracle{MdpOracleScheme::Config{}};
    FieldExperiment exp_oracle(field_config(501, true), oracle);
    const auto r_oracle = exp_oracle.run(kSlots);

    JsonValue rows = JsonValue::array();
    auto add = [&](const std::string& name, const FieldResult& r) {
      table.add_row({name, TextTable::fmt(r.goodput_packets_per_slot, 0),
                     TextTable::fmt(100.0 * r.goodput_packets_per_slot /
                                        goodput_normal, 1),
                     TextTable::fmt(100.0 * r.metrics.st, 1)});
      JsonValue row = JsonValue::object();
      row["scheme"] = name;
      row["goodput_packets_per_slot"] = r.goodput_packets_per_slot;
      row["fraction_of_normal"] =
          r.goodput_packets_per_slot / goodput_normal;
      row["st"] = r.metrics.st;
      rows.push_back(std::move(row));
      report.add_slots(kSlots);
    };
    add("PSV FH", r_passive);
    add("Rand FH", r_random);
    add("RL FH (DQN)", r_rl);
    add("MDP oracle (ideal)", r_oracle);
    add("w/o Jx (normal)", r_normal);
    report.add_sweep("goodput_by_scheme", std::move(rows));
    table.print(std::cout);
    std::cout << "paper: PSV 216 (37.6%), Rand 311 (54.1%), RL 431 (78.5%), "
                 "normal 575 pkts/slot\n";
  }

  {
    std::cout << "\n=== Fig. 11(b): goodput vs Jx slot duration (Tx slot "
                 "3 s, RL FH) ===\n";
    TextTable table({"Jx slot (s)", "goodput (pkts/slot)", "% of normal"});
    JsonValue rows = JsonValue::array();
    for (double jx : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0}) {
      rl->reset();
      FieldExperiment experiment(field_config(601, true, jx), *rl);
      const auto r = experiment.run(kSlots);
      table.add_row({jx, r.goodput_packets_per_slot,
                     100.0 * r.goodput_packets_per_slot / goodput_normal});
      JsonValue row = JsonValue::object();
      row["jammer_slot_s"] = jx;
      row["goodput_packets_per_slot"] = r.goodput_packets_per_slot;
      row["fraction_of_normal"] =
          r.goodput_packets_per_slot / goodput_normal;
      rows.push_back(std::move(row));
      report.add_slots(kSlots);
    }
    report.add_sweep("goodput_vs_jammer_slot", std::move(rows));
    table.print(std::cout);
    std::cout << "paper: peak ~421 pkts/slot at the matched 3 s, degrading "
                 "for faster or slower jammer clocks\n";
  }
  return 0;
}
