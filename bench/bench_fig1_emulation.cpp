// Fig. 1 / Eqs. (1)–(2) — the EmuBee emulation pipeline: quantization error
// E(α) as a function of α, the optimized α, and the emulation fidelity
// (EVM, chip error rate, symbol error rate) with and without the paper's
// quantization optimization. Also times the α search to support the
// O(M log M) claim.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "phy/emulation.hpp"
#include "phy/ofdm.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::phy;

namespace {

std::vector<std::size_t> random_symbols(std::size_t n, Rng& rng) {
  std::vector<std::size_t> syms(n);
  for (auto& s : syms) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  return syms;
}

IqBuffer collect_targets(const IqBuffer& designed_padded) {
  IqBuffer targets;
  const auto& dsc = Ofdm::data_subcarriers();
  for (std::size_t b = 0; b < designed_padded.size() / Ofdm::kFftSize; ++b) {
    const IqBuffer spec = Ofdm::symbol_spectrum(std::span<const Cplx>(
        designed_padded.data() + b * Ofdm::kFftSize, Ofdm::kFftSize));
    for (int k : dsc) targets.push_back(spec[Ofdm::bin_of(k)]);
  }
  return targets;
}

}  // namespace

int main() {
  // Construct first so wall_seconds covers the waveform design and target
  // extraction below, not just the measured sections (see bench_util.hpp).
  BenchReport report("fig1_emulation");
  Rng rng(2022);
  const auto syms = random_symbols(64, rng);
  const IqBuffer designed = design_zigbee_waveform(syms);

  // Pad exactly as the emulator does, then pull the Eq. (1) target set.
  IqBuffer padded = designed;
  if (padded.size() % Ofdm::kFftSize != 0) {
    padded.resize(padded.size() + Ofdm::kFftSize - padded.size() % Ofdm::kFftSize,
                  Cplx(0, 0));
  }
  const IqBuffer targets = collect_targets(padded);

  std::cout << "Fig. 1 / Eqs. (1)-(2) reproduction: EmuBee emulation\n"
            << "designed waveform: " << syms.size() << " ZigBee symbols, "
            << targets.size() << " constellation targets (M)\n";

  const double alpha_star = optimal_alpha(targets);
  report.set_metric("num_targets", JsonValue(targets.size()));
  report.set_metric("alpha_star", JsonValue(alpha_star));
  report.set_metric("quantization_error_at_alpha_star",
                    JsonValue(quantization_error(targets, alpha_star)));
  {
    std::cout << "\n=== E(alpha) around the optimum (convex per the paper) ===\n";
    TextTable table({"alpha", "E(alpha)"});
    for (double f : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}) {
      const double a = alpha_star * f;
      table.add_row({a, quantization_error(targets, a)});
    }
    table.print(std::cout);
    std::cout << "optimal alpha (Eq. 2): " << TextTable::fmt(alpha_star, 4)
              << ", E(alpha*) = "
              << TextTable::fmt(quantization_error(targets, alpha_star), 4)
              << "\n";
  }

  {
    std::cout << "\n=== emulation fidelity: optimized vs naive quantization ===\n";
    EmuBeeEmulator::Config opt_cfg;
    opt_cfg.optimize_alpha = true;
    EmuBeeEmulator::Config naive_cfg;
    naive_cfg.optimize_alpha = false;
    naive_cfg.fixed_alpha = 1.0;

    TextTable table({"variant", "alpha", "E(alpha)", "EVM", "chip err (%)",
                     "sym err (%)"});
    JsonValue rows = JsonValue::array();
    for (const auto& [name, cfg] :
         {std::pair{std::string("optimized (paper)"), opt_cfg},
          std::pair{std::string("naive alpha=1"), naive_cfg}}) {
      const auto result = EmuBeeEmulator(cfg).emulate(designed);
      const auto fidelity = assess_fidelity(result, syms);
      table.add_row({name, TextTable::fmt(result.alpha, 3),
                     TextTable::fmt(result.quantization_error, 2),
                     TextTable::fmt(fidelity.evm, 3),
                     TextTable::fmt(100.0 * fidelity.chip_error_rate, 2),
                     TextTable::fmt(100.0 * fidelity.symbol_error_rate, 2)});
      JsonValue row = JsonValue::object();
      row["variant"] = name;
      row["alpha"] = result.alpha;
      row["quantization_error"] = result.quantization_error;
      row["evm"] = fidelity.evm;
      row["chip_error_rate"] = fidelity.chip_error_rate;
      row["symbol_error_rate"] = fidelity.symbol_error_rate;
      rows.push_back(std::move(row));
    }
    report.add_sweep("fidelity", std::move(rows));
    table.print(std::cout);
    std::cout << "expected shape: optimized E(alpha) << naive; chip/symbol "
                 "error low enough that a ZigBee receiver decodes the "
                 "emulated waveform as ZigBee\n";
  }

  {
    std::cout << "\n=== alpha search cost vs M (O(M log M) claim) ===\n";
    TextTable table({"M (targets)", "time (ms)"});
    JsonValue rows = JsonValue::array();
    for (std::size_t n_syms : {16u, 64u, 256u}) {
      Rng local(7);
      const auto s = random_symbols(n_syms, local);
      IqBuffer wave = design_zigbee_waveform(s);
      if (wave.size() % Ofdm::kFftSize != 0) {
        wave.resize(wave.size() + Ofdm::kFftSize - wave.size() % Ofdm::kFftSize,
                    Cplx(0, 0));
      }
      const IqBuffer t = collect_targets(wave);
      const auto t0 = std::chrono::steady_clock::now();
      (void)optimal_alpha(t);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      table.add_row({static_cast<double>(t.size()), ms});
      JsonValue row = JsonValue::object();
      row["num_targets"] = t.size();
      row["time_ms"] = ms;
      rows.push_back(std::move(row));
    }
    report.add_sweep("alpha_search_cost", std::move(rows));
    table.print(std::cout);
  }
  return 0;
}
