#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/kernels.hpp"
#include "common/math_util.hpp"
#include "common/parallel.hpp"

// Build-time revision stamp (see cmake/git_rev.cmake); falls back to
// "unknown" when the generated header is absent (e.g. non-CMake builds).
#if __has_include("ctj_git_rev.hpp")
#include "ctj_git_rev.hpp"
#endif
#ifndef CTJ_GIT_REV
#define CTJ_GIT_REV "unknown"
#endif

namespace ctj::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double bench_scale() {
  if (const char* s = std::getenv("CTJ_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

std::size_t bench_threads() { return default_parallelism(); }

std::size_t eval_slots() {
  return std::max<std::size_t>(500, static_cast<std::size_t>(20000 * bench_scale()));
}

std::size_t train_slots() {
  return std::max<std::size_t>(1000, static_cast<std::size_t>(16000 * bench_scale()));
}

std::optional<core::CheckpointOptions> checkpoint_options(
    const std::string& tag) {
  const char* dir = std::getenv("CTJ_CKPT_DIR");
  if (dir == nullptr || *dir == '\0' || tag.empty()) return std::nullopt;
  core::CheckpointOptions options;
  options.path = std::string(dir) + "/" + tag + ".ctjs";
  options.every_slots = 5000;
  if (const char* every = std::getenv("CTJ_CKPT_EVERY")) {
    const long v = std::atol(every);
    if (v > 0) options.every_slots = static_cast<std::size_t>(v);
  }
  options.resume = true;
  return options;
}

core::MetricsReport run_rl_point(core::EnvironmentConfig env,
                                 std::uint64_t seed,
                                 const std::string& ckpt_tag) {
  core::RlExperimentConfig config;
  config.env = env;
  config.env.seed = seed;
  config.eval_seed = seed + 1000;
  config.scheme.history = 4;
  config.scheme.hidden = {32, 32};
  config.scheme.learning_rate = 1.5e-3;
  config.scheme.epsilon_decay_steps = train_slots() / 4;
  config.scheme.epsilon_end = 0.05;
  config.scheme.seed = seed + 500;
  config.train_slots = train_slots();
  config.eval_slots = eval_slots();
  config.checkpoint = checkpoint_options(ckpt_tag);
  return core::run_rl_experiment(config).metrics;
}

std::vector<ModeSweepPoint> run_mode_sweep(
    const std::vector<double>& xs,
    core::EnvironmentConfig (*make_env)(double, JammerPowerMode),
    std::uint64_t seed) {
  // One work item per (x, mode): every item builds its whole experiment
  // from (x, mode, seed) alone, so the fan-out is deterministic.
  const auto flat = parallel_map(
      xs.size() * 2,
      [&](std::size_t item) {
        const double x = xs[item / 2];
        const JammerPowerMode mode = (item % 2 == 0)
                                         ? JammerPowerMode::kMaxPower
                                         : JammerPowerMode::kRandomPower;
        return run_rl_point(make_env(x, mode), seed);
      },
      bench_threads());

  std::vector<ModeSweepPoint> points(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    points[i].x = xs[i];
    points[i].max_mode = flat[2 * i];
    points[i].rand_mode = flat[2 * i + 1];
  }
  return points;
}

std::vector<double> lj_sweep() { return linspace(10.0, 100.0, 10); }

std::vector<int> sweep_cycle_sweep() { return {2, 4, 6, 8, 10, 12, 14, 16}; }

std::vector<double> lh_sweep() { return linspace(0.0, 100.0, 11); }

std::vector<double> lp_lower_sweep() { return {6, 7, 8, 9, 10, 11, 12, 13, 14}; }

core::EnvironmentConfig env_with_lj(double lj, JammerPowerMode mode) {
  auto env = core::EnvironmentConfig::defaults();
  env.loss_jam = lj;
  env.mode = mode;
  return env;
}

core::EnvironmentConfig env_with_cycle(int cycle, JammerPowerMode mode) {
  auto env = core::EnvironmentConfig::defaults();
  // The hazard structure only depends on N = ⌈K/m⌉, so sweep the cycle with
  // m = 1 and K = cycle; this keeps the DQN action space (C × PL) small for
  // large cycles.
  env.channels_per_sweep = 1;
  env.num_channels = cycle;
  env.mode = mode;
  return env;
}

core::EnvironmentConfig env_with_lh(double lh, JammerPowerMode mode) {
  auto env = core::EnvironmentConfig::defaults();
  env.loss_hop = lh;
  env.mode = mode;
  return env;
}

core::EnvironmentConfig env_with_lp_lower(double lower, JammerPowerMode mode) {
  auto env = core::EnvironmentConfig::defaults();
  env.tx_levels.clear();
  for (int i = 0; i < 10; ++i) env.tx_levels.push_back(lower + i);
  env.mode = mode;
  return env;
}

void print_header(const std::string& title, const std::string& paper_note) {
  std::cout << "\n=== " << title << " ===\n";
  if (!paper_note.empty()) std::cout << "paper: " << paper_note << "\n";
}

JsonValue metrics_json(const core::MetricsReport& m) {
  JsonValue j = JsonValue::object();
  j["st"] = m.st;
  j["ah"] = m.ah;
  j["sh"] = m.sh;
  j["ap"] = m.ap;
  j["sp"] = m.sp;
  j["mean_reward"] = m.mean_reward;
  j["slots"] = m.slots;
  return j;
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_seconds_(now_seconds()) {}

BenchReport::~BenchReport() {
  if (!written_) write();
}

void BenchReport::add_sweep(const std::string& name, JsonValue rows) {
  sweeps_[name] = std::move(rows);
}

void BenchReport::set_metric(const std::string& key, JsonValue value) {
  metrics_[key] = std::move(value);
}

void BenchReport::write() {
  written_ = true;
  const double wall = now_seconds() - start_seconds_;

  JsonValue doc = JsonValue::object();
  doc["schema_version"] = 1;
  doc["bench"] = name_;
  doc["git_rev"] = CTJ_GIT_REV;
  doc["simd_level"] = kern::simd_level_name();
  doc["threads"] = bench_threads();
  doc["scale"] = bench_scale();
  doc["train_slots_per_point"] = train_slots();
  doc["eval_slots_per_point"] = eval_slots();
  doc["wall_seconds"] = wall;
  doc["simulated_slots"] = simulated_slots_;
  doc["slots_per_second"] =
      wall > 0.0 ? static_cast<double>(simulated_slots_) / wall : 0.0;
  if (sweeps_.size() > 0) doc["sweeps"] = std::move(sweeps_);
  if (metrics_.size() > 0) doc["metrics"] = std::move(metrics_);

  std::string dir = ".";
  if (const char* d = std::getenv("CTJ_BENCH_JSON_DIR")) {
    if (*d != '\0') dir = d;
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream os(path);
  if (!os.is_open()) {
    std::cerr << "BenchReport: cannot open " << path << " for writing\n";
    return;
  }
  doc.dump(os, 2);
  os << '\n';
  std::cout << "\nperf record: " << path << " (wall "
            << static_cast<long>(wall * 1000.0) << " ms, threads "
            << bench_threads() << ")\n";
}

}  // namespace ctj::bench
