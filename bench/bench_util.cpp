#include "bench_util.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace ctj::bench {
namespace {

double bench_scale() {
  if (const char* s = std::getenv("CTJ_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

}  // namespace

std::size_t eval_slots() {
  return std::max<std::size_t>(500, static_cast<std::size_t>(20000 * bench_scale()));
}

std::size_t train_slots() {
  return std::max<std::size_t>(1000, static_cast<std::size_t>(16000 * bench_scale()));
}

core::MetricsReport run_rl_point(core::EnvironmentConfig env,
                                 std::uint64_t seed) {
  core::RlExperimentConfig config;
  config.env = env;
  config.env.seed = seed;
  config.eval_seed = seed + 1000;
  config.scheme.history = 4;
  config.scheme.hidden = {32, 32};
  config.scheme.learning_rate = 1.5e-3;
  config.scheme.epsilon_decay_steps = train_slots() / 4;
  config.scheme.epsilon_end = 0.05;
  config.scheme.seed = seed + 500;
  config.train_slots = train_slots();
  config.eval_slots = eval_slots();
  return core::run_rl_experiment(config).metrics;
}

std::vector<double> lj_sweep() { return linspace(10.0, 100.0, 10); }

std::vector<int> sweep_cycle_sweep() { return {2, 4, 6, 8, 10, 12, 14, 16}; }

std::vector<double> lh_sweep() { return linspace(0.0, 100.0, 11); }

std::vector<double> lp_lower_sweep() { return {6, 7, 8, 9, 10, 11, 12, 13, 14}; }

core::EnvironmentConfig env_with_lj(double lj, JammerPowerMode mode) {
  auto env = core::EnvironmentConfig::defaults();
  env.loss_jam = lj;
  env.mode = mode;
  return env;
}

core::EnvironmentConfig env_with_cycle(int cycle, JammerPowerMode mode) {
  auto env = core::EnvironmentConfig::defaults();
  // The hazard structure only depends on N = ⌈K/m⌉, so sweep the cycle with
  // m = 1 and K = cycle; this keeps the DQN action space (C × PL) small for
  // large cycles.
  env.channels_per_sweep = 1;
  env.num_channels = cycle;
  env.mode = mode;
  return env;
}

core::EnvironmentConfig env_with_lh(double lh, JammerPowerMode mode) {
  auto env = core::EnvironmentConfig::defaults();
  env.loss_hop = lh;
  env.mode = mode;
  return env;
}

core::EnvironmentConfig env_with_lp_lower(double lower, JammerPowerMode mode) {
  auto env = core::EnvironmentConfig::defaults();
  env.tx_levels.clear();
  for (int i = 0; i < 10; ++i) env.tx_levels.push_back(lower + i);
  env.mode = mode;
  return env;
}

void print_header(const std::string& title, const std::string& paper_note) {
  std::cout << "\n=== " << title << " ===\n";
  if (!paper_note.empty()) std::cout << "paper: " << paper_note << "\n";
}

}  // namespace ctj::bench
