// Fig. 10 — goodput (packets per slot) and slot utilization rate as a
// function of the Tx slot duration (1..5 s), in normal operation with the
// DQN scheme running at the hub (9 ms decision + per-slot polling overhead).
// The five durations are independent and fan out across CTJ_BENCH_THREADS
// cores; every work item builds its own scheme and field simulator.
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/field.hpp"
#include "core/rl_fh.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::core;

namespace {

FieldResult run_duration(double duration) {
  DqnScheme::Config scheme_config;
  scheme_config.history = 4;
  scheme_config.hidden = {32, 32};
  DqnScheme scheme(scheme_config);
  scheme.set_training(false);  // deployed network; decisions cost 9 ms

  FieldConfig config = FieldConfig::defaults();
  config.jammer_enabled = false;  // normal scenario
  config.network.num_peripherals = 4;
  config.network.slot_duration_s = duration;
  // Normal operation: nodes rarely miss the announcement (the Fig. 9(b)
  // loss model is driven by jamming, absent here).
  config.network.timing.node_loss_probability = 0.005;
  config.network.seed = 7 + static_cast<std::uint64_t>(duration * 10);

  FieldExperiment experiment(config, scheme);
  return experiment.run(120);
}

}  // namespace

int main() {
  std::cout << "Fig. 10 reproduction: goodput & slot utilization vs Tx slot "
               "duration\n"
            << "paper: goodput 148 -> 806 pkts/slot and utilization "
               "91.75% -> 98.58% as the slot grows 1 s -> 5 s\n"
            << "threads: " << bench_threads() << "\n\n";
  BenchReport report("fig10_goodput");

  const double durations[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto results = parallel_map(
      5, [&](std::size_t i) { return run_duration(durations[i]); },
      bench_threads());

  TextTable table({"slot (s)", "goodput (pkts/slot)", "utilization (%)",
                   "overhead (s)"});
  JsonValue rows = JsonValue::array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    table.add_row({durations[i], result.goodput_packets_per_slot,
                   100.0 * result.utilization,
                   durations[i] * (1.0 - result.utilization)});
    JsonValue row = JsonValue::object();
    row["slot_duration_s"] = durations[i];
    row["goodput_packets_per_slot"] = result.goodput_packets_per_slot;
    row["utilization"] = result.utilization;
    rows.push_back(std::move(row));
    report.add_slots(120);
  }
  table.print(std::cout);
  report.add_sweep("goodput_vs_slot_duration", std::move(rows));
  std::cout << "(per-slot overhead stays ~constant -> utilization rises "
               "with duration, exactly the Fig. 10(b) mechanism)\n";
  return 0;
}
