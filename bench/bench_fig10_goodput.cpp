// Fig. 10 — goodput (packets per slot) and slot utilization rate as a
// function of the Tx slot duration (1..5 s), in normal operation with the
// DQN scheme running at the hub (9 ms decision + per-slot polling overhead).
#include <iostream>

#include "common/table.hpp"
#include "core/field.hpp"
#include "core/rl_fh.hpp"

using namespace ctj;
using namespace ctj::core;

int main() {
  std::cout << "Fig. 10 reproduction: goodput & slot utilization vs Tx slot "
               "duration\n"
            << "paper: goodput 148 -> 806 pkts/slot and utilization "
               "91.75% -> 98.58% as the slot grows 1 s -> 5 s\n\n";

  TextTable table({"slot (s)", "goodput (pkts/slot)", "utilization (%)",
                   "overhead (s)"});
  for (double duration : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    DqnScheme::Config scheme_config;
    scheme_config.history = 4;
    scheme_config.hidden = {32, 32};
    DqnScheme scheme(scheme_config);
    scheme.set_training(false);  // deployed network; decisions cost 9 ms

    FieldConfig config = FieldConfig::defaults();
    config.jammer_enabled = false;  // normal scenario
    config.network.num_peripherals = 4;
    config.network.slot_duration_s = duration;
    // Normal operation: nodes rarely miss the announcement (the Fig. 9(b)
    // loss model is driven by jamming, absent here).
    config.network.timing.node_loss_probability = 0.005;
    config.network.seed = 7 + static_cast<std::uint64_t>(duration * 10);

    FieldExperiment experiment(config, scheme);
    const auto result = experiment.run(120);
    table.add_row({duration, result.goodput_packets_per_slot,
                   100.0 * result.utilization,
                   duration * (1.0 - result.utilization)});
  }
  table.print(std::cout);
  std::cout << "(per-slot overhead stays ~constant -> utilization rises "
               "with duration, exactly the Fig. 10(b) mechanism)\n";
  return 0;
}
