// Micro-benchmarks (google-benchmark) of the hot paths: FFT (plan cache vs
// per-call), matmul (blocked kernel vs naive reference), MLP forward
// (cached vs allocation-free eval), Viterbi (single-symbol and batched),
// ZigBee despreading, 64-QAM quantization, the Eq. (2) α search (cold and
// warm-start), end-to-end EmuBee packet emulation, DQN inference and
// training step, environment step, and the MDP solvers (full value
// iteration vs the threshold-family solver).
//
// On top of the static benchmarks, main() registers one benchmark per
// (kernel, SIMD level) pair — scalar always, AVX2/AVX-512 when the CPU
// supports them — by calling scalar_ops()/avx2_ops()/avx512_ops() directly,
// so one run measures every level regardless of the CTJ_SIMD dispatch
// choice. A pair of rollout
// benches compares per-slot greedy evaluation against the batched
// VectorEnv + act_greedy_batch path at the same work per decision.
//
// Unlike BENCHMARK_MAIN(), the custom main funnels every result through a
// capturing reporter and writes the measured times (plus derived
// SIMD-vs-scalar and batched-vs-per-slot speedups) to BENCH_micro.json via
// BenchReport, so the perf record is generated from the run that produced
// the console output rather than maintained by hand.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/kernels.hpp"
#include "common/rng.hpp"
#include "core/environment.hpp"
#include "core/vector_env.hpp"
#include "mdp/analysis.hpp"
#include "mdp/value_iteration.hpp"
#include "phy/convolutional.hpp"
#include "phy/emulation.hpp"
#include "phy/fft.hpp"
#include "phy/qam.hpp"
#include "phy/zigbee_phy.hpp"
#include "rl/dqn.hpp"
#include "rl/matrix.hpp"
#include "rl/nn.hpp"

namespace {

using namespace ctj;

// Slots actually simulated by the environment-driving benches (each bench
// invocation adds its iteration count), reported as simulated_slots /
// slots_per_second in BENCH_micro.json.
std::size_t g_simulated_slots = 0;

rl::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  rl::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = rng.normal();
  return m;
}

// Reference triple loop with the same ikj order and k-accumulation as the
// blocked kernel — the baseline the blocked variant is measured against.
void matmul_naive(rl::Matrix& c, const rl::Matrix& a, const rl::Matrix& b) {
  c.resize(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
}

void BM_Fft64(benchmark::State& state) {
  Rng rng(1);
  phy::IqBuffer x(64);
  for (auto& v : x) v = phy::Cplx(rng.normal(), rng.normal());
  for (auto _ : state) {
    phy::IqBuffer y = x;
    phy::fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Fft64);

void BM_FftPlanCached(benchmark::State& state) {
  // Same transform as BM_Fft64 at N=range(0), but through the explicit plan
  // handle — isolates the (tiny) cache-lookup overhead of fft_inplace.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  phy::IqBuffer x(n);
  for (auto& v : x) v = phy::Cplx(rng.normal(), rng.normal());
  const phy::FftPlan& plan = phy::FftPlan::for_size(n);
  for (auto _ : state) {
    phy::IqBuffer y = x;
    plan.forward(y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftPlanCached)->Arg(64)->Arg(256);

void BM_MatmulNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  rl::Matrix c;
  for (auto _ : state) {
    matmul_naive(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulNaive)->Arg(32)->Arg(64)->Arg(160);

void BM_MatmulBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  rl::Matrix c;
  for (auto _ : state) {
    rl::matmul_into(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulBlocked)->Arg(32)->Arg(64)->Arg(160);

void BM_MlpForwardAlloc(benchmark::State& state) {
  // Per-call allocating forward (the thread-safe const path).
  Rng rng(7);
  rl::Mlp mlp({24, 45, 45, 160}, rng);
  const auto x = random_matrix(32, 24, rng);
  for (auto _ : state) {
    rl::Matrix y = mlp.forward_const(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MlpForwardAlloc);

void BM_MlpForwardEval(benchmark::State& state) {
  // Allocation-free eval path used by the train-step target computations.
  Rng rng(7);
  rl::Mlp mlp({24, 45, 45, 160}, rng);
  const auto x = random_matrix(32, 24, rng);
  rl::Matrix y;
  for (auto _ : state) {
    mlp.forward_eval(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MlpForwardEval);

void BM_ViterbiDecodeSymbol(benchmark::State& state) {
  Rng rng(2);
  const phy::Bits info = phy::random_bits(144, rng);
  const phy::Bits coded = phy::ConvolutionalCode::encode(info);
  for (auto _ : state) {
    auto decoded = phy::ConvolutionalCode::decode(coded);
    benchmark::DoNotOptimize(decoded.data());
  }
}
BENCHMARK(BM_ViterbiDecodeSymbol);

void BM_ViterbiDecodeBatch(benchmark::State& state) {
  // decode_batch over range(0) symbols — the shape decode_payload_points
  // feeds it (one OFDM payload per call, trellis tables and scratch reused
  // across symbols).
  const std::size_t symbols = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  phy::Bits coded_all;
  for (std::size_t s = 0; s < symbols; ++s) {
    const phy::Bits info = phy::random_bits(144, rng);
    const phy::Bits coded = phy::ConvolutionalCode::encode(info);
    coded_all.insert(coded_all.end(), coded.begin(), coded.end());
  }
  for (auto _ : state) {
    auto decoded = phy::ConvolutionalCode::decode_batch(coded_all, symbols);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(symbols));
}
BENCHMARK(BM_ViterbiDecodeBatch)->Arg(8);

void BM_ZigbeeDespreadSymbol(benchmark::State& state) {
  phy::ZigbeePhy phy(4);
  const std::vector<std::size_t> syms = {7};
  const auto wave = phy.modulate_symbols(syms);
  for (auto _ : state) {
    auto decoded = phy.demodulate_symbols(wave, 1);
    benchmark::DoNotOptimize(decoded.data());
  }
}
BENCHMARK(BM_ZigbeeDespreadSymbol);

void BM_QamQuantize48(benchmark::State& state) {
  Rng rng(3);
  phy::IqBuffer targets(48);
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  for (auto _ : state) {
    double err = phy::quantization_error(targets, 1.3);
    benchmark::DoNotOptimize(err);
  }
}
BENCHMARK(BM_QamQuantize48);

void BM_OptimalAlpha(benchmark::State& state) {
  Rng rng(4);
  phy::IqBuffer targets(static_cast<std::size_t>(state.range(0)));
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  for (auto _ : state) {
    double alpha = phy::optimal_alpha(targets);
    benchmark::DoNotOptimize(alpha);
  }
}
BENCHMARK(BM_OptimalAlpha)->Arg(48)->Arg(480);

void BM_AlphaWarmStart(benchmark::State& state) {
  // Steady-state AlphaSearch::solve on a repeated target set — the Eq. (2)
  // cost EmuBee actually pays per packet after the first (the cold first
  // solve runs outside the timed loop). Compare against BM_OptimalAlpha at
  // the same size for the warm-start win.
  Rng rng(4);
  phy::IqBuffer targets(static_cast<std::size_t>(state.range(0)));
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  phy::AlphaSearch search;
  double cold = search.solve(targets);
  benchmark::DoNotOptimize(cold);
  for (auto _ : state) {
    double alpha = search.solve(targets);
    benchmark::DoNotOptimize(alpha);
  }
}
BENCHMARK(BM_AlphaWarmStart)->Arg(480);

void BM_EmulatePacket(benchmark::State& state) {
  // One EmuBee packet end to end: designed ZigBee waveform → per-symbol
  // spectra → Eq. (2) α → inverse Wi-Fi chain (quantize, demap,
  // deinterleave, batched Viterbi, descramble) → forward chain → EVM.
  // 4 ZigBee symbols = 1280 samples = 20 OFDM symbols. Warm-start α applies
  // from the second iteration, as in a streaming attack.
  const std::vector<std::size_t> syms = {3, 14, 7, 9};
  const phy::IqBuffer designed = phy::design_zigbee_waveform(syms);
  phy::EmuBeeEmulator emulator;
  for (auto _ : state) {
    auto result = emulator.emulate(designed);
    benchmark::DoNotOptimize(result.payload_bits.data());
  }
}
BENCHMARK(BM_EmulatePacket);

void BM_DqnInference(benchmark::State& state) {
  rl::DqnConfig config;  // the Fig. 4 network: 24-45-45-160
  rl::DqnAgent agent(config);
  std::vector<double> obs(config.state_dim, 0.3);
  for (auto _ : state) {
    auto action = agent.act_greedy(obs);
    benchmark::DoNotOptimize(action);
  }
}
BENCHMARK(BM_DqnInference);

void BM_DqnTrainStep(benchmark::State& state) {
  rl::DqnConfig config;
  config.min_replay_before_training = 32;
  rl::DqnAgent agent(config);
  Rng rng(5);
  std::vector<double> obs(config.state_dim);
  for (int i = 0; i < 256; ++i) {
    for (auto& v : obs) v = rng.uniform();
    agent.observe({obs, rng.index(config.num_actions), -10.0, obs, false});
  }
  for (auto _ : state) {
    auto loss = agent.train_step();
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_DqnTrainStep);

void BM_EnvironmentStep(benchmark::State& state) {
  core::CompetitionEnvironment env(core::EnvironmentConfig::defaults());
  int channel = 0;
  for (auto _ : state) {
    channel = (channel + 1) % 16;
    auto step = env.step(channel, 3);
    benchmark::DoNotOptimize(step.reward);
  }
  g_simulated_slots += static_cast<std::size_t>(state.iterations());
}
BENCHMARK(BM_EnvironmentStep);

void BM_ValueIterationSolve(benchmark::State& state) {
  auto params = mdp::AntijamParams::defaults();
  params.sweep_cycle = static_cast<int>(state.range(0));
  params.mode = JammerPowerMode::kRandomPower;
  for (auto _ : state) {
    const mdp::AntijamMdp model(params);
    auto sol = mdp::solve(model);
    benchmark::DoNotOptimize(sol.value.data());
  }
}
BENCHMARK(BM_ValueIterationSolve)->Arg(4)->Arg(16);

void BM_ThresholdSolve(benchmark::State& state) {
  // Same model-build-plus-solve shape as BM_ValueIterationSolve, but through
  // the Thm. III.4–III.5 threshold-family solver (restricted policy
  // iteration + Bellman certificate) instead of fixed-point value iteration.
  auto params = mdp::AntijamParams::defaults();
  params.sweep_cycle = static_cast<int>(state.range(0));
  params.mode = JammerPowerMode::kRandomPower;
  for (auto _ : state) {
    const mdp::AntijamMdp model(params);
    auto sol = mdp::threshold_solve(model);
    benchmark::DoNotOptimize(sol.solution.value.data());
  }
}
BENCHMARK(BM_ThresholdSolve)->Arg(4)->Arg(16);

// ----------------------------------------------- rollout: per-slot batched --
// Both benches do the same work per decision (one greedy action, one
// environment step, one observation-window slide); the batched variant
// amortizes a single [R × 24] forward pass across R replicas. One iteration
// of the batched bench is R decisions, so the per-decision speedup is
// per_slot_ns / (batched_ns / R).

constexpr std::size_t kEvalReplicas = 16;

void BM_EvalPerSlotDecision(benchmark::State& state) {
  rl::DqnConfig config;
  rl::DqnAgent agent(config);
  const auto envc = core::EnvironmentConfig::defaults();
  const std::size_t pl = envc.tx_levels.size();
  core::VectorEnv venv(envc, 1);
  core::ObservationWindows windows(1, config.state_dim / 3, envc.num_channels,
                                   pl);
  std::vector<double> obs;
  int channel[1];
  std::size_t power[1];
  for (auto _ : state) {
    const auto row = windows.row(0);
    obs.assign(row.begin(), row.end());
    const std::size_t a = agent.act_greedy(obs);
    channel[0] = static_cast<int>(a / pl);
    power[0] = a % pl;
    venv.step(channel, power);
    windows.push(0, venv.successes()[0] != 0, venv.channels()[0], power[0]);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
  g_simulated_slots += static_cast<std::size_t>(state.iterations());
}
BENCHMARK(BM_EvalPerSlotDecision);

// The per-slot eval path as it stood before the kernel layer: the scalar
// reference kernels (bit-identical arithmetic to the pre-kernel Matrix/Mlp
// loops, verified by the conformance harness) and a fresh observation vector
// per slot — the heap churn DqnAgent::act_greedy used to pay. Runs the
// manual forward on the agent's real weights so the ReLU sparsity the
// kernels exploit is the same in all three eval benches.
void BM_EvalPerSlotScalarDecision(benchmark::State& state) {
  rl::DqnConfig config;
  rl::DqnAgent agent(config);
  const auto envc = core::EnvironmentConfig::defaults();
  const std::size_t pl = envc.tx_levels.size();
  core::VectorEnv venv(envc, 1);
  core::ObservationWindows windows(1, config.state_dim / 3, envc.num_channels,
                                   pl);
  const kern::KernelOps& ops = kern::scalar_ops();
  const rl::Mlp& net = agent.online_network();
  rl::Matrix act_a(1, config.state_dim), act_b(1, config.state_dim);
  int channel[1];
  std::size_t power[1];
  for (auto _ : state) {
    const auto row = windows.row(0);
    std::vector<double> obs(row.begin(), row.end());  // per-slot allocation
    rl::Matrix* x = &act_a;
    rl::Matrix* y = &act_b;
    x->resize(1, config.state_dim);
    std::copy(obs.begin(), obs.end(), x->data());
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const rl::Matrix& w = net.layer(l).weights();
      const rl::Matrix& bias = net.layer(l).bias();
      y->resize(1, w.cols());
      y->fill(0.0);
      ops.matmul_acc(y->data(), x->data(), w.data(), 1, w.rows(), w.cols());
      ops.bias_act(y->data(), bias.data(), 1, w.cols(),
                   l + 1 < net.num_layers());
      std::swap(x, y);
    }
    const std::size_t a = ops.row_argmax(x->data(), x->cols());
    channel[0] = static_cast<int>(a / pl);
    power[0] = a % pl;
    venv.step(channel, power);
    windows.push(0, venv.successes()[0] != 0, venv.channels()[0], power[0]);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
  g_simulated_slots += static_cast<std::size_t>(state.iterations());
}
BENCHMARK(BM_EvalPerSlotScalarDecision);

void BM_EvalBatchedDecision(benchmark::State& state) {
  const std::size_t replicas = static_cast<std::size_t>(state.range(0));
  rl::DqnConfig config;
  rl::DqnAgent agent(config);
  const auto envc = core::EnvironmentConfig::defaults();
  const std::size_t pl = envc.tx_levels.size();
  core::VectorEnv venv(envc, replicas);
  core::ObservationWindows windows(replicas, config.state_dim / 3,
                                   envc.num_channels, pl);
  std::vector<std::size_t> actions(replicas);
  std::vector<int> channels(replicas);
  std::vector<std::size_t> powers(replicas);
  for (auto _ : state) {
    agent.act_greedy_batch(windows.states(), actions);
    for (std::size_t r = 0; r < replicas; ++r) {
      channels[r] = static_cast<int>(actions[r] / pl);
      powers[r] = actions[r] % pl;
    }
    venv.step(channels, powers);
    for (std::size_t r = 0; r < replicas; ++r) {
      windows.push(r, venv.successes()[r] != 0, venv.channels()[r], powers[r]);
    }
    benchmark::DoNotOptimize(actions.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(replicas));
  g_simulated_slots += static_cast<std::size_t>(state.iterations()) * replicas;
}
BENCHMARK(BM_EvalBatchedDecision)->Arg(kEvalReplicas);

// -------------------------------------------- kernel-level SIMD vs scalar --
// One benchmark per (kernel, level) pair, registered at run time so a single
// run measures the scalar reference and — when the CPU has AVX2+FMA — the
// AVX2 set side by side, independent of the CTJ_SIMD dispatch choice.
// Shapes are the DQN hot-path shapes: batch 32, hidden 45, 160 actions.

void register_kernel_benches() {
  struct Level {
    const char* name;
    const kern::KernelOps* ops;
  };
  std::vector<Level> levels = {{"scalar", &kern::scalar_ops()}};
  if (kern::avx2_ops() != nullptr && kern::cpu_supports_avx2()) {
    levels.push_back({"avx2", kern::avx2_ops()});
  }
  if (kern::avx512_ops() != nullptr && kern::cpu_supports_avx512()) {
    levels.push_back({"avx512", kern::avx512_ops()});
  }

  constexpr std::size_t kBatch = 32;
  constexpr std::size_t kHidden = 45;
  constexpr std::size_t kActions = 160;

  Rng rng(11);
  const auto a = random_matrix(kBatch, kHidden, rng);
  const auto b = random_matrix(kHidden, kActions, rng);
  const auto q = random_matrix(kBatch, kActions, rng);
  const auto next_q = random_matrix(kBatch, kActions, rng);
  const auto next_q_online = random_matrix(kBatch, kActions, rng);
  std::vector<std::size_t> actions(kBatch);
  std::vector<double> rewards(kBatch);
  std::vector<std::uint8_t> dones(kBatch, 0);
  for (std::size_t i = 0; i < kBatch; ++i) {
    actions[i] = rng.index(kActions);
    rewards[i] = rng.uniform() < 0.5 ? -10.0 : 1.0;
  }
  std::vector<double> bias(kActions);
  std::vector<double> saxpy_x(kActions);
  for (auto& v : bias) v = rng.normal();
  for (auto& v : saxpy_x) v = rng.normal();
  const std::size_t adam_n = kHidden * kActions;
  std::vector<double> grad_flat(adam_n);
  for (auto& v : grad_flat) v = 0.01 * rng.normal();

  // PHY kernel shapes: one 64-state ACS trellis step (hard and soft) and one
  // 480-point Eq. (1) evaluation (an EmuBee packet's worth of targets).
  std::vector<std::int32_t> acs_metric(64);
  std::vector<std::int32_t> acs_cost0(64);
  std::vector<std::int32_t> acs_cost1(64);
  for (auto& v : acs_metric) v = static_cast<std::int32_t>(rng.index(100));
  for (auto& v : acs_cost0) v = static_cast<std::int32_t>(rng.index(3));
  for (auto& v : acs_cost1) v = static_cast<std::int32_t>(rng.index(3));
  std::vector<double> acs_metric_d(64);
  std::vector<double> acs_cost0_d(64);
  std::vector<double> acs_cost1_d(64);
  for (auto& v : acs_metric_d) v = std::abs(rng.normal());
  for (auto& v : acs_cost0_d) v = std::abs(rng.normal());
  for (auto& v : acs_cost1_d) v = std::abs(rng.normal());
  std::vector<double> qam_iq(2 * 480);
  for (auto& v : qam_iq) v = rng.normal();

  for (const Level& level : levels) {
    const kern::KernelOps* ops = level.ops;
    const std::string suffix = std::string("_") + level.name;

    benchmark::RegisterBenchmark(
        ("BM_KernMatmul" + suffix).c_str(),
        [ops, a, b](benchmark::State& state) {
          rl::Matrix c(a.rows(), b.cols());
          for (auto _ : state) {
            std::fill(c.data(), c.data() + c.size(), 0.0);
            ops->matmul_acc(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                            b.cols());
            benchmark::DoNotOptimize(c.data());
          }
        });

    benchmark::RegisterBenchmark(
        ("BM_KernSaxpy" + suffix).c_str(),
        [ops, saxpy_x](benchmark::State& state) {
          std::vector<double> y(saxpy_x.size(), 0.25);
          for (auto _ : state) {
            ops->saxpy(y.size(), 0.125, saxpy_x.data(), y.data());
            benchmark::DoNotOptimize(y.data());
          }
        });

    benchmark::RegisterBenchmark(
        ("BM_KernBiasRelu" + suffix).c_str(),
        [ops, q, bias](benchmark::State& state) {
          rl::Matrix y = q;
          for (auto _ : state) {
            ops->bias_act(y.data(), bias.data(), y.rows(), y.cols(), true);
            benchmark::DoNotOptimize(y.data());
          }
        });

    benchmark::RegisterBenchmark(
        ("BM_KernRowMax" + suffix).c_str(),
        [ops, q](benchmark::State& state) {
          // Max + argmax over every batch row, as the greedy path does.
          for (auto _ : state) {
            double acc = 0.0;
            for (std::size_t r = 0; r < q.rows(); ++r) {
              const double* row = q.data() + r * q.cols();
              acc += ops->row_max(row, q.cols());
              acc += static_cast<double>(ops->row_argmax(row, q.cols()));
            }
            benchmark::DoNotOptimize(acc);
          }
        });

    benchmark::RegisterBenchmark(
        ("BM_KernTdHuberBatch" + suffix).c_str(),
        [ops, q, next_q, next_q_online, actions, rewards,
         dones](benchmark::State& state) {
          rl::Matrix grad(q.rows(), q.cols());
          kern::TdHuberArgs args;
          args.q = q.data();
          args.next_q = next_q.data();
          args.next_q_online = next_q_online.data();
          args.actions = actions.data();
          args.rewards = rewards.data();
          args.dones = dones.data();
          args.gamma = 0.9;
          args.reward_scale = 0.1;
          args.grad_div = static_cast<double>(q.rows());
          args.batch = q.rows();
          args.num_actions = q.cols();
          for (auto _ : state) {
            std::fill(grad.data(), grad.data() + grad.size(), 0.0);
            const double loss = ops->td_huber_batch(args, grad.data());
            benchmark::DoNotOptimize(loss);
            benchmark::DoNotOptimize(grad.data());
          }
        });

    benchmark::RegisterBenchmark(
        ("BM_KernAdamUpdate" + suffix).c_str(),
        [ops, grad_flat, adam_n](benchmark::State& state) {
          std::vector<double> p(adam_n, 0.1);
          std::vector<double> m(adam_n, 0.0);
          std::vector<double> v(adam_n, 0.0);
          for (auto _ : state) {
            ops->adam_update(p.data(), m.data(), v.data(), grad_flat.data(),
                             adam_n, 0.9, 0.999, 1e-3, 0.5, 0.3, 1e-8);
            benchmark::DoNotOptimize(p.data());
          }
        });

    benchmark::RegisterBenchmark(
        ("BM_KernViterbiAcsHard" + suffix).c_str(),
        [ops, acs_metric, acs_cost0, acs_cost1](benchmark::State& state) {
          alignas(64) std::int32_t next[64];
          std::uint64_t chosen = 0;
          for (auto _ : state) {
            ops->viterbi_acs_hard(acs_metric.data(), acs_cost0.data(),
                                  acs_cost1.data(), next, &chosen);
            benchmark::DoNotOptimize(next);
            benchmark::DoNotOptimize(chosen);
          }
        });

    benchmark::RegisterBenchmark(
        ("BM_KernViterbiAcsSoft" + suffix).c_str(),
        [ops, acs_metric_d, acs_cost0_d,
         acs_cost1_d](benchmark::State& state) {
          alignas(64) double next[64];
          std::uint64_t chosen = 0;
          for (auto _ : state) {
            ops->viterbi_acs_soft(acs_metric_d.data(), acs_cost0_d.data(),
                                  acs_cost1_d.data(), next, &chosen);
            benchmark::DoNotOptimize(next);
            benchmark::DoNotOptimize(chosen);
          }
        });

    benchmark::RegisterBenchmark(
        ("BM_KernQam64Error" + suffix).c_str(),
        [ops, qam_iq](benchmark::State& state) {
          const double norm = phy::Qam64::normalization();
          for (auto _ : state) {
            double err = ops->qam64_error(qam_iq.data(), qam_iq.size() / 2,
                                          1.3, norm);
            benchmark::DoNotOptimize(err);
          }
        });
  }
}

// ------------------------------------------------------- JSON perf record --

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  // benchmark name → adjusted real time in the benchmark's time unit (all
  // benches in this binary use the default, nanoseconds).
  std::map<std::string, double> real_ns;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // RT_Iteration only (no aggregates); `error_occurred` is not checked
      // because the field was renamed across the google-benchmark versions
      // this builds against (1.7 local, 1.8 CI).
      if (run.run_type == Run::RT_Iteration) {
        real_ns[run.benchmark_name()] = run.GetAdjustedRealTime();
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

void write_report(bench::BenchReport& report,
                  const std::map<std::string, double>& real_ns) {
  for (const auto& [name, ns] : real_ns) {
    std::string key = name;
    std::replace(key.begin(), key.end(), '/', '_');
    report.set_metric(key + "_ns", ns);
  }

  // Derived speedups, when both sides ran (a --benchmark_filter smoke run
  // may measure only a subset).
  auto ratio = [&](const char* num, const char* den) -> double {
    const auto n = real_ns.find(num);
    const auto d = real_ns.find(den);
    if (n == real_ns.end() || d == real_ns.end() || d->second <= 0.0) {
      return 0.0;
    }
    return n->second / d->second;
  };
  const struct {
    const char* metric;
    const char* scalar_name;
    const char* simd_name;
  } kSpeedups[] = {
      {"speedup_matmul_avx2", "BM_KernMatmul_scalar", "BM_KernMatmul_avx2"},
      {"speedup_saxpy_avx2", "BM_KernSaxpy_scalar", "BM_KernSaxpy_avx2"},
      {"speedup_bias_relu_avx2", "BM_KernBiasRelu_scalar",
       "BM_KernBiasRelu_avx2"},
      {"speedup_row_max_avx2", "BM_KernRowMax_scalar", "BM_KernRowMax_avx2"},
      {"speedup_td_huber_avx2", "BM_KernTdHuberBatch_scalar",
       "BM_KernTdHuberBatch_avx2"},
      {"speedup_adam_avx2", "BM_KernAdamUpdate_scalar",
       "BM_KernAdamUpdate_avx2"},
      {"speedup_matmul_avx512", "BM_KernMatmul_scalar",
       "BM_KernMatmul_avx512"},
      {"speedup_saxpy_avx512", "BM_KernSaxpy_scalar", "BM_KernSaxpy_avx512"},
      {"speedup_viterbi_acs_hard_avx2", "BM_KernViterbiAcsHard_scalar",
       "BM_KernViterbiAcsHard_avx2"},
      {"speedup_viterbi_acs_hard_avx512", "BM_KernViterbiAcsHard_scalar",
       "BM_KernViterbiAcsHard_avx512"},
      {"speedup_viterbi_acs_soft_avx2", "BM_KernViterbiAcsSoft_scalar",
       "BM_KernViterbiAcsSoft_avx2"},
      {"speedup_viterbi_acs_soft_avx512", "BM_KernViterbiAcsSoft_scalar",
       "BM_KernViterbiAcsSoft_avx512"},
      {"speedup_qam64_error_avx2", "BM_KernQam64Error_scalar",
       "BM_KernQam64Error_avx2"},
      {"speedup_qam64_error_avx512", "BM_KernQam64Error_scalar",
       "BM_KernQam64Error_avx512"},
      // Algorithmic (not SIMD) wins from this PR, as before/after ratios of
      // same-binary benches: threshold-family MDP solve vs full value
      // iteration, and warm-start Eq. (2) vs the cold full scan.
      {"speedup_threshold_solve_16", "BM_ValueIterationSolve/16",
       "BM_ThresholdSolve/16"},
      {"speedup_alpha_warm_480", "BM_OptimalAlpha/480",
       "BM_AlphaWarmStart/480"},
  };
  for (const auto& s : kSpeedups) {
    const double r = ratio(s.scalar_name, s.simd_name);
    if (r > 0.0) report.set_metric(s.metric, r);
  }

  // Two batched-eval speedups, against the two meanings of "the per-slot
  // path": the pre-kernel-layer path this PR replaced (scalar kernels +
  // per-slot allocation — the headline engine speedup), and the per-slot
  // path of this same binary at the dispatched SIMD level (the residual
  // batching win once both paths use the fast kernels; bounded by the
  // host's compute-to-memory-bandwidth ratio, see EXPERIMENTS.md).
  const auto batched = real_ns.find(
      "BM_EvalBatchedDecision/" + std::to_string(kEvalReplicas));
  if (batched != real_ns.end() && batched->second > 0.0) {
    const double batched_per_decision =
        batched->second / static_cast<double>(kEvalReplicas);
    const auto scalar_slot = real_ns.find("BM_EvalPerSlotScalarDecision");
    if (scalar_slot != real_ns.end()) {
      report.set_metric(
          "speedup_batched_eval_r" + std::to_string(kEvalReplicas),
          scalar_slot->second / batched_per_decision);
    }
    const auto per_slot = real_ns.find("BM_EvalPerSlotDecision");
    if (per_slot != real_ns.end()) {
      report.set_metric("speedup_batched_eval_same_level_r" +
                            std::to_string(kEvalReplicas),
                        per_slot->second / batched_per_decision);
    }
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Construct the report before running anything so wall_seconds spans the
  // whole run (constructing it inside write_report used to clock only the
  // JSON serialization — the committed record showed wall_seconds ≈ 3e-5).
  bench::BenchReport report("micro");
  register_kernel_benches();
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.add_slots(g_simulated_slots);
  write_report(report, reporter.real_ns);
  return 0;
}
