// Micro-benchmarks (google-benchmark) of the hot paths: FFT (plan cache vs
// per-call), matmul (blocked kernel vs naive reference), MLP forward
// (cached vs allocation-free eval), Viterbi, ZigBee despreading, 64-QAM
// quantization, the Eq. (2) α search, DQN inference and training step,
// environment step and value iteration.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/environment.hpp"
#include "mdp/analysis.hpp"
#include "phy/convolutional.hpp"
#include "phy/emulation.hpp"
#include "phy/fft.hpp"
#include "phy/qam.hpp"
#include "phy/zigbee_phy.hpp"
#include "rl/dqn.hpp"
#include "rl/matrix.hpp"
#include "rl/nn.hpp"

namespace {

using namespace ctj;

rl::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  rl::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = rng.normal();
  return m;
}

// Reference triple loop with the same ikj order and k-accumulation as the
// blocked kernel — the baseline the blocked variant is measured against.
void matmul_naive(rl::Matrix& c, const rl::Matrix& a, const rl::Matrix& b) {
  c.resize(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
}

void BM_Fft64(benchmark::State& state) {
  Rng rng(1);
  phy::IqBuffer x(64);
  for (auto& v : x) v = phy::Cplx(rng.normal(), rng.normal());
  for (auto _ : state) {
    phy::IqBuffer y = x;
    phy::fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Fft64);

void BM_FftPlanCached(benchmark::State& state) {
  // Same transform as BM_Fft64 at N=range(0), but through the explicit plan
  // handle — isolates the (tiny) cache-lookup overhead of fft_inplace.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  phy::IqBuffer x(n);
  for (auto& v : x) v = phy::Cplx(rng.normal(), rng.normal());
  const phy::FftPlan& plan = phy::FftPlan::for_size(n);
  for (auto _ : state) {
    phy::IqBuffer y = x;
    plan.forward(y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftPlanCached)->Arg(64)->Arg(256);

void BM_MatmulNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  rl::Matrix c;
  for (auto _ : state) {
    matmul_naive(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulNaive)->Arg(32)->Arg(64)->Arg(160);

void BM_MatmulBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  rl::Matrix c;
  for (auto _ : state) {
    rl::matmul_into(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulBlocked)->Arg(32)->Arg(64)->Arg(160);

void BM_MlpForwardAlloc(benchmark::State& state) {
  // Per-call allocating forward (the thread-safe const path).
  Rng rng(7);
  rl::Mlp mlp({24, 45, 45, 160}, rng);
  const auto x = random_matrix(32, 24, rng);
  for (auto _ : state) {
    rl::Matrix y = mlp.forward_const(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MlpForwardAlloc);

void BM_MlpForwardEval(benchmark::State& state) {
  // Allocation-free eval path used by the train-step target computations.
  Rng rng(7);
  rl::Mlp mlp({24, 45, 45, 160}, rng);
  const auto x = random_matrix(32, 24, rng);
  rl::Matrix y;
  for (auto _ : state) {
    mlp.forward_eval(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MlpForwardEval);

void BM_ViterbiDecodeSymbol(benchmark::State& state) {
  Rng rng(2);
  const phy::Bits info = phy::random_bits(144, rng);
  const phy::Bits coded = phy::ConvolutionalCode::encode(info);
  for (auto _ : state) {
    auto decoded = phy::ConvolutionalCode::decode(coded);
    benchmark::DoNotOptimize(decoded.data());
  }
}
BENCHMARK(BM_ViterbiDecodeSymbol);

void BM_ZigbeeDespreadSymbol(benchmark::State& state) {
  phy::ZigbeePhy phy(4);
  const std::vector<std::size_t> syms = {7};
  const auto wave = phy.modulate_symbols(syms);
  for (auto _ : state) {
    auto decoded = phy.demodulate_symbols(wave, 1);
    benchmark::DoNotOptimize(decoded.data());
  }
}
BENCHMARK(BM_ZigbeeDespreadSymbol);

void BM_QamQuantize48(benchmark::State& state) {
  Rng rng(3);
  phy::IqBuffer targets(48);
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  for (auto _ : state) {
    double err = phy::quantization_error(targets, 1.3);
    benchmark::DoNotOptimize(err);
  }
}
BENCHMARK(BM_QamQuantize48);

void BM_OptimalAlpha(benchmark::State& state) {
  Rng rng(4);
  phy::IqBuffer targets(static_cast<std::size_t>(state.range(0)));
  for (auto& t : targets) t = phy::Cplx(rng.normal(), rng.normal());
  for (auto _ : state) {
    double alpha = phy::optimal_alpha(targets);
    benchmark::DoNotOptimize(alpha);
  }
}
BENCHMARK(BM_OptimalAlpha)->Arg(48)->Arg(480);

void BM_DqnInference(benchmark::State& state) {
  rl::DqnConfig config;  // the Fig. 4 network: 24-45-45-160
  rl::DqnAgent agent(config);
  std::vector<double> obs(config.state_dim, 0.3);
  for (auto _ : state) {
    auto action = agent.act_greedy(obs);
    benchmark::DoNotOptimize(action);
  }
}
BENCHMARK(BM_DqnInference);

void BM_DqnTrainStep(benchmark::State& state) {
  rl::DqnConfig config;
  config.min_replay_before_training = 32;
  rl::DqnAgent agent(config);
  Rng rng(5);
  std::vector<double> obs(config.state_dim);
  for (int i = 0; i < 256; ++i) {
    for (auto& v : obs) v = rng.uniform();
    agent.observe({obs, rng.index(config.num_actions), -10.0, obs, false});
  }
  for (auto _ : state) {
    auto loss = agent.train_step();
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_DqnTrainStep);

void BM_EnvironmentStep(benchmark::State& state) {
  core::CompetitionEnvironment env(core::EnvironmentConfig::defaults());
  int channel = 0;
  for (auto _ : state) {
    channel = (channel + 1) % 16;
    auto step = env.step(channel, 3);
    benchmark::DoNotOptimize(step.reward);
  }
}
BENCHMARK(BM_EnvironmentStep);

void BM_ValueIterationSolve(benchmark::State& state) {
  auto params = mdp::AntijamParams::defaults();
  params.sweep_cycle = static_cast<int>(state.range(0));
  params.mode = JammerPowerMode::kRandomPower;
  for (auto _ : state) {
    const mdp::AntijamMdp model(params);
    auto sol = mdp::solve(model);
    benchmark::DoNotOptimize(sol.value.data());
  }
}
BENCHMARK(BM_ValueIterationSolve)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
