// Parallel-trainer scaling bench: train-slots/sec of the actor-learner
// trainer (core/train_parallel) across worker thread counts, against the
// single-threaded batched trainer as baseline, plus the equal-reuse
// learner-batching comparison (large minibatch at a proportionally lower
// step cadence — same sample-reuse ratio, fewer kernel launches).
//
// Writes BENCH_train.json. The thread-scaling rows are honest wall-clock
// measurements on whatever machine runs the bench: "host_cpus" records the
// hardware concurrency so a reader can tell a 1-core container (where
// threads > 1 cannot speed anything up) from a real multicore run. The
// deterministic schedule produces identical output at every thread count,
// so the rows measure the same computation throughout.
#include <cstddef>
#include <cstdint>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "core/rl_fh.hpp"
#include "core/train_parallel.hpp"
#include "core/trainer.hpp"

namespace {

using namespace ctj;
using namespace ctj::core;

struct RunResult {
  double wall_seconds = 0.0;
  std::size_t slots = 0;
  double slots_per_sec = 0.0;
};

DqnScheme::Config scheme_config() {
  DqnScheme::Config config;  // paper-sized network: 24 → 45 → 45 → 160
  config.seed = 23;
  return config;
}

EnvironmentConfig env_config() {
  auto config = EnvironmentConfig::defaults();
  config.seed = 7;
  return config;
}

RunResult run_parallel(std::size_t slots, const ParallelTrainerConfig& p) {
  DqnScheme scheme(scheme_config());
  TrainerConfig config;
  config.max_slots = slots;
  config.reward_window = 2000;
  const auto stats = train_parallel(scheme, env_config(), config, p);
  RunResult r;
  r.wall_seconds = stats.wall_seconds;
  r.slots = stats.slots_trained;
  r.slots_per_sec = stats.wall_seconds > 0.0
                        ? static_cast<double>(stats.slots_trained) /
                              stats.wall_seconds
                        : 0.0;
  return r;
}

RunResult run_batched_baseline(std::size_t slots, std::size_t replicas) {
  DqnScheme scheme(scheme_config());
  TrainerConfig config;
  config.max_slots = slots;
  config.reward_window = 2000;
  const auto stats = train_batched(scheme, env_config(), config, replicas);
  RunResult r;
  r.wall_seconds = stats.wall_seconds;
  r.slots = stats.slots_trained;
  r.slots_per_sec = stats.wall_seconds > 0.0
                        ? static_cast<double>(stats.slots_trained) /
                              stats.wall_seconds
                        : 0.0;
  return r;
}

}  // namespace

int main() {
  bench::BenchReport report("train");
  const std::size_t host_cpus = std::thread::hardware_concurrency();

  ParallelTrainerConfig base;
  base.actors = 8;
  base.replicas_per_actor = 4;
  base.sync_every_rounds = 16;
  const std::size_t group = base.actors * base.replicas_per_actor;
  // Budget per configuration, rounded to the deterministic schedule's
  // round granularity.
  std::size_t slots = static_cast<std::size_t>(16000 * bench::bench_scale());
  slots = std::max<std::size_t>(group, slots / group * group);

  std::cout << "train-slots/sec scaling (" << slots << " slots per run, "
            << base.actors << " actors x " << base.replicas_per_actor
            << " replicas, host_cpus " << host_cpus << ")\n\n";

  // Baseline: the PR-6 batched trainer, one thread, same replica count.
  const RunResult batched = run_batched_baseline(slots, group);
  std::cout << "  train_batched (1 thread):  " << batched.slots_per_sec
            << " slots/s\n";
  report.add_slots(batched.slots);

  // Thread-scaling curve over the deterministic actor-learner schedule.
  JsonValue scaling = JsonValue::array();
  double base_rate = 0.0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    ParallelTrainerConfig p = base;
    p.threads = threads;
    const RunResult r = run_parallel(slots, p);
    if (threads == 1) base_rate = r.slots_per_sec;
    const double speedup = base_rate > 0.0 ? r.slots_per_sec / base_rate : 0.0;
    std::cout << "  train_parallel " << threads
              << (threads == 1 ? " thread:  " : " threads: ")
              << r.slots_per_sec << " slots/s  (x" << speedup << " vs 1)\n";
    JsonValue row = JsonValue::object();
    row["threads"] = threads;
    row["slots"] = r.slots;
    row["wall_seconds"] = r.wall_seconds;
    row["slots_per_sec"] = r.slots_per_sec;
    row["speedup_vs_1t"] = speedup;
    scaling.push_back(std::move(row));
    report.add_slots(r.slots);
    if (threads == 8) {
      report.set_metric("train_slots_per_sec_8t", r.slots_per_sec);
      report.set_metric("thread_scaling_8t", speedup);
    }
  }
  report.add_sweep("thread_scaling", std::move(scaling));
  report.set_metric("train_slots_per_sec_1t", base_rate);
  report.set_metric("train_slots_per_sec_batched", batched.slots_per_sec);

  // Throughput mode at the full thread count (no deterministic gating).
  {
    ParallelTrainerConfig p = base;
    p.threads = 8;
    p.deterministic = false;
    const RunResult r = run_parallel(slots, p);
    std::cout << "  throughput mode 8 threads: " << r.slots_per_sec
              << " slots/s\n";
    report.set_metric("train_slots_per_sec_throughput_8t", r.slots_per_sec);
    report.add_slots(r.slots);
  }

  // Learner batching at equal sample reuse: batch 256 every 8 slots has the
  // same reuse ratio as batch 32 every slot, but 8x fewer forward/backward
  // launches over 8x taller (more SIMD-friendly) matrices. This is the
  // single-core learner-efficiency win, independent of thread scaling.
  JsonValue batching = JsonValue::array();
  double small_rate = 0.0;
  for (const auto& [batch, every] :
       {std::pair<std::size_t, std::size_t>{32, 1},
        std::pair<std::size_t, std::size_t>{256, 8}}) {
    ParallelTrainerConfig p = base;
    p.threads = 1;
    p.learner_batch = batch;
    p.train_every_slots = every;
    const RunResult r = run_parallel(slots, p);
    if (small_rate == 0.0) small_rate = r.slots_per_sec;
    std::cout << "  learner batch " << batch << " / every " << every
              << ":   " << r.slots_per_sec << " slots/s\n";
    JsonValue row = JsonValue::object();
    row["learner_batch"] = batch;
    row["train_every_slots"] = every;
    row["slots_per_sec"] = r.slots_per_sec;
    batching.push_back(std::move(row));
    report.add_slots(r.slots);
    if (batch == 256) {
      report.set_metric("bigbatch_equal_reuse_speedup",
                        small_rate > 0.0 ? r.slots_per_sec / small_rate : 0.0);
    }
  }
  report.add_sweep("learner_batching", std::move(batching));

  report.set_metric("host_cpus", host_cpus);
  report.write();
  return 0;
}
