// Fig. 2(b) — jamming effect of the three signal types (EmuBee, Wi-Fi,
// ZigBee) on a star ZigBee network, as a function of jamming distance
// 1..15 m: packet error rate and throughput.
//
// Mirrors the paper's verification experiment: four-node star network with
// LBT, the jammer continuously emitting on the victim's channel from
// different distances. EmuBee and Wi-Fi jammers transmit at Wi-Fi power
// (100 mW); the conventional ZigBee jammer at ZigBee-class power (+5 dBm).
// The 15 distances x 3 signal types are independent measurements and fan
// out across CTJ_BENCH_THREADS cores.
#include <iostream>

#include "bench_util.hpp"
#include "channel/link.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "net/star_network.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::net;
using channel::JammingSignalType;

namespace {

struct Point {
  double per_pct;
  double throughput_kbps;
};

Point measure(JammingSignalType type, double jam_power_dbm, double distance) {
  StarNetworkConfig config;
  config.num_peripherals = 3;
  config.peripheral_distance_m = 2.0;
  config.slot_duration_s = 1.0;
  config.payload_bytes = 30;
  config.timing.jitter_fraction = 0.02;
  config.timing.node_loss_probability = 0.0;  // isolate the PHY effect
  config.seed = 97 + static_cast<std::uint64_t>(distance * 10);
  StarNetwork net(config);

  ActiveJamming jam;
  jam.channel = 5;
  jam.type = type;
  jam.tx_power_dbm = jam_power_dbm;
  jam.distance_m = distance;

  SlotDecision decision;
  decision.channel = 5;           // no anti-jamming: fixed channel
  decision.tx_power_dbm = 0.0;    // 1 mW ZigBee transmitters
  decision.decision_time_s = 0.0;

  std::size_t attempted = 0, delivered = 0;
  for (int slot = 0; slot < 30; ++slot) {
    const auto stats = net.run_slot(decision, jam);
    attempted += stats.packets_attempted;
    delivered += stats.packets_delivered;
  }
  Point p;
  p.per_pct = attempted == 0
                  ? 100.0
                  : 100.0 * (1.0 - static_cast<double>(delivered) /
                                       static_cast<double>(attempted));
  // Throughput: delivered payload bits per second of slot time.
  p.throughput_kbps = static_cast<double>(delivered) * 30.0 * 8.0 /
                      (30.0 * config.slot_duration_s) / 1000.0;
  return p;
}

}  // namespace

int main() {
  std::cout << "Fig. 2(b) reproduction: PER and throughput vs jamming "
               "distance\n"
            << "paper: PER decreases / throughput increases with distance; "
               "ranking EmuBee > ZigBee > WiFi (EmuBee strongest jammer)\n"
            << "threads: " << bench_threads() << "\n\n";
  BenchReport report("fig2b_jamming_effect");

  const JammingSignalType types[] = {JammingSignalType::kEmuBee,
                                     JammingSignalType::kZigbee,
                                     JammingSignalType::kWifi};
  const double powers_dbm[] = {20.0, 5.0, 20.0};
  constexpr std::size_t kDistances = 15;

  // Item layout: distance-major, type-minor — index alone determines the
  // measurement.
  const auto flat = parallel_map(
      kDistances * 3,
      [&](std::size_t item) {
        const double distance = static_cast<double>(item / 3 + 1);
        const std::size_t t = item % 3;
        return measure(types[t], powers_dbm[t], distance);
      },
      bench_threads());

  TextTable table({"dist (m)", "PER EmuBee", "PER ZigBee", "PER WiFi",
                   "Tput EmuBee", "Tput ZigBee", "Tput WiFi"});
  JsonValue rows = JsonValue::array();
  for (std::size_t d = 0; d < kDistances; ++d) {
    const Point& emubee = flat[d * 3 + 0];
    const Point& zigbee = flat[d * 3 + 1];
    const Point& wifi = flat[d * 3 + 2];
    table.add_row({static_cast<double>(d + 1), emubee.per_pct, zigbee.per_pct,
                   wifi.per_pct, emubee.throughput_kbps,
                   zigbee.throughput_kbps, wifi.throughput_kbps});
    JsonValue row = JsonValue::object();
    row["distance_m"] = d + 1;
    for (std::size_t t = 0; t < 3; ++t) {
      JsonValue cell = JsonValue::object();
      cell["per_pct"] = flat[d * 3 + t].per_pct;
      cell["throughput_kbps"] = flat[d * 3 + t].throughput_kbps;
      row[channel::to_string(types[t])] = std::move(cell);
    }
    rows.push_back(std::move(row));
    report.add_slots(3 * 30);
  }
  table.print(std::cout);
  report.add_sweep("per_throughput_vs_distance", std::move(rows));
  std::cout << "(PER in %, throughput in kbps; jammers: EmuBee/WiFi at "
               "100 mW, conventional ZigBee at +5 dBm)\n";
  return 0;
}
