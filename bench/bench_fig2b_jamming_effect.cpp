// Fig. 2(b) — jamming effect of the three signal types (EmuBee, Wi-Fi,
// ZigBee) on a star ZigBee network, as a function of jamming distance
// 1..15 m: packet error rate and throughput.
//
// Mirrors the paper's verification experiment: four-node star network with
// LBT, the jammer continuously emitting on the victim's channel from
// different distances. EmuBee and Wi-Fi jammers transmit at Wi-Fi power
// (100 mW); the conventional ZigBee jammer at ZigBee-class power (+5 dBm).
#include <iostream>

#include "channel/link.hpp"
#include "common/table.hpp"
#include "net/star_network.hpp"

using namespace ctj;
using namespace ctj::net;
using channel::JammingSignalType;

namespace {

struct Point {
  double per_pct;
  double throughput_kbps;
};

Point measure(JammingSignalType type, double jam_power_dbm, double distance) {
  StarNetworkConfig config;
  config.num_peripherals = 3;
  config.peripheral_distance_m = 2.0;
  config.slot_duration_s = 1.0;
  config.payload_bytes = 30;
  config.timing.jitter_fraction = 0.02;
  config.timing.node_loss_probability = 0.0;  // isolate the PHY effect
  config.seed = 97 + static_cast<std::uint64_t>(distance * 10);
  StarNetwork net(config);

  ActiveJamming jam;
  jam.channel = 5;
  jam.type = type;
  jam.tx_power_dbm = jam_power_dbm;
  jam.distance_m = distance;

  SlotDecision decision;
  decision.channel = 5;           // no anti-jamming: fixed channel
  decision.tx_power_dbm = 0.0;    // 1 mW ZigBee transmitters
  decision.decision_time_s = 0.0;

  std::size_t attempted = 0, delivered = 0;
  for (int slot = 0; slot < 30; ++slot) {
    const auto stats = net.run_slot(decision, jam);
    attempted += stats.packets_attempted;
    delivered += stats.packets_delivered;
  }
  Point p;
  p.per_pct = attempted == 0
                  ? 100.0
                  : 100.0 * (1.0 - static_cast<double>(delivered) /
                                       static_cast<double>(attempted));
  // Throughput: delivered payload bits per second of slot time.
  p.throughput_kbps = static_cast<double>(delivered) * 30.0 * 8.0 /
                      (30.0 * config.slot_duration_s) / 1000.0;
  return p;
}

}  // namespace

int main() {
  std::cout << "Fig. 2(b) reproduction: PER and throughput vs jamming "
               "distance\n"
            << "paper: PER decreases / throughput increases with distance; "
               "ranking EmuBee > ZigBee > WiFi (EmuBee strongest jammer)\n\n";

  TextTable table({"dist (m)", "PER EmuBee", "PER ZigBee", "PER WiFi",
                   "Tput EmuBee", "Tput ZigBee", "Tput WiFi"});
  for (int d = 1; d <= 15; ++d) {
    const auto emubee = measure(JammingSignalType::kEmuBee, 20.0, d);
    const auto zigbee = measure(JammingSignalType::kZigbee, 5.0, d);
    const auto wifi = measure(JammingSignalType::kWifi, 20.0, d);
    table.add_row({static_cast<double>(d), emubee.per_pct, zigbee.per_pct,
                   wifi.per_pct, emubee.throughput_kbps,
                   zigbee.throughput_kbps, wifi.throughput_kbps});
  }
  table.print(std::cout);
  std::cout << "(PER in %, throughput in kbps; jammers: EmuBee/WiFi at "
               "100 mW, conventional ZigBee at +5 dBm)\n";
  return 0;
}
