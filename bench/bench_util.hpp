// Shared helpers for the figure-reproduction benches.
//
// Figs. 6–8 all sweep the same four parameters (L_J, sweep cycle, L_H, and
// the lower bound of the transmit-power range) under the two jammer modes;
// each bench binary prints a different subset of the Table-I metrics from
// the same kind of run: train a fresh DQN on the configuration, freeze it,
// evaluate 20 000 slots.
//
// Sweep points are embarrassingly parallel (every point trains its own
// independently seeded DQN), so run_mode_sweep() fans them out over
// bench_threads() workers; results are returned in x order and are
// bit-identical to a sequential run regardless of the thread count.
//
// Every bench also writes a machine-readable BENCH_<name>.json next to its
// text output (see BenchReport) so the perf trajectory is tracked run-over-run.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/experiment.hpp"

namespace ctj::bench {

/// CTJ_BENCH_SCALE multiplier applied to the per-point slot budgets (e.g.
/// 0.1 for a smoke run); 1.0 when unset.
double bench_scale();

/// Worker threads for sweep fan-out: CTJ_BENCH_THREADS when set, otherwise
/// hardware_concurrency.
std::size_t bench_threads();

/// Evaluation slots per sweep point (the paper uses 20 000); scaled down by
/// the CTJ_BENCH_SCALE environment variable (e.g. 0.1 for a smoke run).
std::size_t eval_slots();

/// Training slots per sweep point.
std::size_t train_slots();

/// Training checkpoint options for a bench work item. When CTJ_CKPT_DIR is
/// set (and `tag` is non-empty), training checkpoints land in
/// <dir>/<tag>.ctjs every CTJ_CKPT_EVERY slots (default 5000) with resume
/// enabled, so a killed bench re-run picks up where it stopped instead of
/// retraining from scratch. Returns nullopt (checkpointing off) when the
/// variable is unset.
std::optional<core::CheckpointOptions> checkpoint_options(
    const std::string& tag);

/// Run one sweep point: train + evaluate a DQN on the environment config.
/// A non-empty `ckpt_tag` opts the training phase into checkpoint_options().
core::MetricsReport run_rl_point(core::EnvironmentConfig env,
                                 std::uint64_t seed = 7,
                                 const std::string& ckpt_tag = "");

/// One x of a Figs. 6–8 sweep: the Table-I metrics under both jammer modes.
struct ModeSweepPoint {
  double x = 0.0;
  core::MetricsReport max_mode;
  core::MetricsReport rand_mode;
};

/// Train + evaluate a fresh DQN per (x, jammer mode) work item, fanned out
/// across bench_threads() cores.
std::vector<ModeSweepPoint> run_mode_sweep(
    const std::vector<double>& xs,
    core::EnvironmentConfig (*make_env)(double, JammerPowerMode),
    std::uint64_t seed = 7);

/// The four parameter sweeps of Figs. 6–8 (paper x-axes).
std::vector<double> lj_sweep();          // L_J: 10..100
std::vector<int> sweep_cycle_sweep();    // 2..16 time slots
std::vector<double> lh_sweep();          // L_H: 0..100
std::vector<double> lp_lower_sweep();    // lower bound of L^T_p: 6..14

/// Build the default environment with one parameter overridden.
core::EnvironmentConfig env_with_lj(double lj, JammerPowerMode mode);
core::EnvironmentConfig env_with_cycle(int cycle, JammerPowerMode mode);
core::EnvironmentConfig env_with_lh(double lh, JammerPowerMode mode);
core::EnvironmentConfig env_with_lp_lower(double lower, JammerPowerMode mode);

/// Print a section header in the bench output.
void print_header(const std::string& title, const std::string& paper_note);

/// The full Table-I metric set of one run as a JSON object.
JsonValue metrics_json(const core::MetricsReport& m);

/// Machine-readable perf record emitted by every bench binary.
///
/// On write() (or destruction) the report lands in BENCH_<name>.json under
/// CTJ_BENCH_JSON_DIR (default: the current directory) with the schema:
///
///   {
///     "schema_version": 1,
///     "bench": "<name>",            // e.g. "fig6_success_rate"
///     "git_rev": "<short rev>",     // of the build ("-dirty" when the tree
///                                   // had uncommitted changes), "unknown"
///                                   // outside git
///     "simd_level": "scalar"|"avx2"|"avx512",  // active kernel set
///     "threads": N,                 // bench_threads() at run time
///     "scale": S,                   // CTJ_BENCH_SCALE
///     "train_slots_per_point": …, "eval_slots_per_point": …,
///     "wall_seconds": W,            // whole-binary wall clock
///     "simulated_slots": T,         // total slots counted via add_slots()
///     "slots_per_second": T / W,
///     "sweeps": { "<sweep name>": [ {row}, … ], … },
///     "metrics": { … }              // optional bench-specific scalars
///   }
class BenchReport {
 public:
  explicit BenchReport(std::string name);
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Add a named sweep: an array of per-point row objects.
  void add_sweep(const std::string& name, JsonValue rows);

  /// Record a bench-specific scalar under "metrics".
  void set_metric(const std::string& key, JsonValue value);

  /// Count simulated slots toward the slots/sec figure.
  void add_slots(std::size_t n) { simulated_slots_ += n; }

  /// Finalize and write BENCH_<name>.json; called by the destructor if the
  /// bench did not call it explicitly.
  void write();

 private:
  std::string name_;
  JsonValue sweeps_ = JsonValue::object();
  JsonValue metrics_ = JsonValue::object();
  std::size_t simulated_slots_ = 0;
  double start_seconds_ = 0.0;
  bool written_ = false;
};

}  // namespace ctj::bench
