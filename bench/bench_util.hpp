// Shared helpers for the figure-reproduction benches.
//
// Figs. 6–8 all sweep the same four parameters (L_J, sweep cycle, L_H, and
// the lower bound of the transmit-power range) under the two jammer modes;
// each bench binary prints a different subset of the Table-I metrics from
// the same kind of run: train a fresh DQN on the configuration, freeze it,
// evaluate 20 000 slots.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace ctj::bench {

/// Evaluation slots per sweep point (the paper uses 20 000); scaled down by
/// the CTJ_BENCH_SCALE environment variable (e.g. 0.1 for a smoke run).
std::size_t eval_slots();

/// Training slots per sweep point.
std::size_t train_slots();

/// Run one sweep point: train + evaluate a DQN on the environment config.
core::MetricsReport run_rl_point(core::EnvironmentConfig env,
                                 std::uint64_t seed = 7);

/// The four parameter sweeps of Figs. 6–8 (paper x-axes).
std::vector<double> lj_sweep();          // L_J: 10..100
std::vector<int> sweep_cycle_sweep();    // 2..16 time slots
std::vector<double> lh_sweep();          // L_H: 0..100
std::vector<double> lp_lower_sweep();    // lower bound of L^T_p: 6..14

/// Build the default environment with one parameter overridden.
core::EnvironmentConfig env_with_lj(double lj, JammerPowerMode mode);
core::EnvironmentConfig env_with_cycle(int cycle, JammerPowerMode mode);
core::EnvironmentConfig env_with_lh(double lh, JammerPowerMode mode);
core::EnvironmentConfig env_with_lp_lower(double lower, JammerPowerMode mode);

/// Print a section header in the bench output.
void print_header(const std::string& title, const std::string& paper_note);

}  // namespace ctj::bench
