// Adversary-zoo scenario matrix: defender scheme × jammer archetype ×
// network size.
//
// The figure benches evaluate against the paper's sweeping jammer only; this
// bench crosses every anti-jamming scheme (PSV FH, Rand FH, tabular QL FH,
// RL FH) with every registered behavioural archetype (sweep, adaptive,
// reactive, duty_cycle, colluding) at K ∈ {8, 16, 32} ZigBee channels
// (m = 4), all through the behavioural environment mode — each slot's
// outcome comes from the archetype's live sense/emit decisions, not the
// closed-form kernel. The learning schemes train a fresh agent per cell
// against the same archetype they are evaluated on.
//
// Cells are embarrassingly parallel (every cell derives all of its state
// from its index alone), so the matrix fans out over bench_threads()
// workers and the emitted rows are bit-identical to a sequential run.
// Output: BENCH_scenarios.json with one "matrix" sweep row per cell.
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "arena/learned_jammer.hpp"
#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "core/passive_fh.hpp"
#include "core/qlearning_scheme.hpp"
#include "core/random_fh.hpp"
#include "jammer/registry.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::core;

namespace {

const std::vector<std::string> kSchemes = {"PSV FH", "Rand FH", "QL FH",
                                           "RL FH (DQN)"};
const std::vector<std::string> kArchetypes = {"sweep",      "adaptive",
                                              "reactive",   "duty_cycle",
                                              "colluding",  "learned"};
const std::vector<int> kNetworkSizes = {8, 16, 32};

struct Cell {
  std::string scheme;
  std::string archetype;
  int num_channels = 0;
  MetricsReport metrics;
  std::size_t slots_simulated = 0;  // train + eval
};

EnvironmentConfig cell_env(const std::string& archetype, int num_channels,
                           std::uint64_t seed) {
  EnvironmentConfig config = EnvironmentConfig::defaults();
  config.num_channels = num_channels;
  config.mode = JammerPowerMode::kMaxPower;
  config.seed = seed;
  config.jammer = jammer::JammerSpec::defaults(archetype);
  return config;
}

MetricsReport run_ql_cell(const EnvironmentConfig& env_config,
                          std::uint64_t seed) {
  QLearningScheme::Config config;
  config.num_channels = env_config.num_channels;
  config.num_power_levels = env_config.num_power_levels();
  config.history = 4;
  config.epsilon_decay_steps = train_slots() / 4;
  config.seed = seed + 500;
  QLearningScheme ql(config);

  CompetitionEnvironment env(env_config);
  for (std::size_t slot = 0; slot < train_slots(); ++slot) {
    const auto d = ql.decide();
    const auto step = env.step(d.channel, d.power_index);
    SlotFeedback fb;
    fb.success = step.success;
    fb.jammed = step.outcome != SlotOutcome::kClear;
    fb.channel = step.channel;
    fb.power_index = d.power_index;
    fb.reward = step.reward;
    ql.feedback(fb);
  }
  ql.set_training(false);
  ql.reset();

  EnvironmentConfig eval_config = env_config;
  eval_config.seed = seed + 1000;
  CompetitionEnvironment eval_env(eval_config);
  return evaluate(ql, eval_env, eval_slots());
}

Cell run_cell(std::size_t index) {
  const std::size_t num_arch = kArchetypes.size();
  const std::size_t num_sizes = kNetworkSizes.size();
  const std::size_t per_scheme = num_arch * num_sizes;

  Cell cell;
  cell.scheme = kSchemes[index / per_scheme];
  cell.archetype = kArchetypes[(index % per_scheme) / num_sizes];
  cell.num_channels = kNetworkSizes[index % num_sizes];

  const std::uint64_t seed = 901 + 13 * static_cast<std::uint64_t>(index);
  const EnvironmentConfig env_config =
      cell_env(cell.archetype, cell.num_channels, seed);

  if (cell.scheme == "PSV FH") {
    PassiveFhScheme::Config config;
    config.num_channels = env_config.num_channels;
    config.num_power_levels = env_config.num_power_levels();
    PassiveFhScheme scheme(config);
    CompetitionEnvironment env(env_config);
    cell.metrics = evaluate(scheme, env, eval_slots());
    cell.slots_simulated = eval_slots();
  } else if (cell.scheme == "Rand FH") {
    RandomFhScheme::Config config;
    config.num_channels = env_config.num_channels;
    config.num_power_levels = env_config.num_power_levels();
    config.seed = seed + 500;
    RandomFhScheme scheme(config);
    CompetitionEnvironment env(env_config);
    cell.metrics = evaluate(scheme, env, eval_slots());
    cell.slots_simulated = eval_slots();
  } else if (cell.scheme == "QL FH") {
    cell.metrics = run_ql_cell(env_config, seed);
    cell.slots_simulated = train_slots() + eval_slots();
  } else {
    cell.metrics = run_rl_point(env_config, seed, "");
    cell.slots_simulated = train_slots() + eval_slots();
  }
  return cell;
}

}  // namespace

int main() {
  // The "learned" archetype lives in ctj_arena, not the built-in zoo.
  arena::ensure_registered();
  std::cout << "Adversary-zoo scenario matrix: scheme x archetype x network "
               "size (behavioural environment mode, m = 4)\n";
  BenchReport report("scenarios");

  const std::size_t num_cells =
      kSchemes.size() * kArchetypes.size() * kNetworkSizes.size();
  std::cout << num_cells << " cells, " << train_slots()
            << " train / " << eval_slots() << " eval slots per cell, "
            << bench_threads() << " threads\n\n";

  const auto cells =
      parallel_map(num_cells, [](std::size_t i) { return run_cell(i); },
                   bench_threads());

  JsonValue rows = JsonValue::array();
  for (const std::string& archetype : kArchetypes) {
    TextTable table({"scheme", "K", "ST (%)", "mean reward"});
    for (const Cell& cell : cells) {
      if (cell.archetype != archetype) continue;
      table.add_row({cell.scheme, std::to_string(cell.num_channels),
                     TextTable::fmt(100.0 * cell.metrics.st, 1),
                     TextTable::fmt(cell.metrics.mean_reward, 1)});
      JsonValue row = metrics_json(cell.metrics);
      row["scheme"] = cell.scheme;
      row["archetype"] = cell.archetype;
      row["num_channels"] = cell.num_channels;
      rows.push_back(std::move(row));
      report.add_slots(cell.slots_simulated);
    }
    std::cout << "=== archetype: " << archetype << " ===\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  report.add_sweep("matrix", std::move(rows));
  report.set_metric("cells", JsonValue(num_cells));
  report.write();
  return 0;
}
