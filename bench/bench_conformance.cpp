// Kernel-conformance deep sweep: prove the simulators match Eqs. (6)–(14).
//
// Drives CompetitionEnvironment and the behavioural SweepJammer for millions
// of slots per configuration under scripted policies, bins every transition
// by hidden state {n=1..N−1, T_J, J} × action (stay|hop) × power level, and
// compares each cell's empirical next-state distribution and mean reward
// against the analytic AntijamMdp row (union-corrected Hoeffding bounds +
// total variation). Also runs the policy-structure checks of
// Thms. III.4–III.5 across the L_J / L_H / ⌈K/m⌉ grids.
//
// Output: a per-configuration summary, a divergence-triage list naming every
// offending (state, action) cell, and BENCH_conformance.json. Exit status is
// non-zero when any divergence survives — CI treats this bench as a gate.
#include <iostream>
#include <variant>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "conformance/conformance.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::conformance;

namespace {

std::vector<double> levels(int lo, int hi) {
  std::vector<double> v;
  for (int x = lo; x <= hi; ++x) v.push_back(x);
  return v;
}

struct EnvCase {
  std::string label;
  core::EnvironmentConfig config;
};

struct JammerCase {
  std::string label;
  jammer::SweepJammerConfig config;
  std::vector<double> tx_levels;
};

std::vector<EnvCase> env_cases() {
  std::vector<EnvCase> cases;
  {
    auto c = core::EnvironmentConfig::defaults();
    cases.push_back({"default_max", c});
    c.mode = JammerPowerMode::kRandomPower;
    cases.push_back({"default_random", c});
  }
  {
    // Overlapping power ranges: q spans (0, 1] including the certain-survival
    // edge, so the T_J-heavy rows get exercised too.
    auto c = core::EnvironmentConfig::defaults();
    c.mode = JammerPowerMode::kRandomPower;
    c.jam_levels = levels(4, 13);
    cases.push_back({"overlap_random", c});
  }
  {
    // Shortest sweep cycle the MDP admits: N = 2, a single counting state.
    auto c = core::EnvironmentConfig::defaults();
    c.mode = JammerPowerMode::kRandomPower;
    c.num_channels = 8;
    cases.push_back({"cycle2_random", c});
  }
  {
    // Narrowband jammer (m = 1) with a longer cycle.
    auto c = core::EnvironmentConfig::defaults();
    c.mode = JammerPowerMode::kRandomPower;
    c.num_channels = 6;
    c.channels_per_sweep = 1;
    cases.push_back({"n6_random", c});
  }
  return cases;
}

std::vector<JammerCase> jammer_cases() {
  std::vector<JammerCase> cases;
  {
    auto c = jammer::SweepJammerConfig::defaults();
    cases.push_back({"default_max", c, levels(6, 15)});
    c.mode = JammerPowerMode::kRandomPower;
    cases.push_back({"default_random", c, levels(6, 15)});
  }
  {
    auto c = jammer::SweepJammerConfig::defaults();
    c.mode = JammerPowerMode::kRandomPower;
    c.power_levels = levels(4, 13);
    cases.push_back({"overlap_random", c, levels(6, 15)});
  }
  {
    auto c = jammer::SweepJammerConfig::defaults();
    c.mode = JammerPowerMode::kRandomPower;
    c.num_channels = 6;
    c.channels_per_sweep = 1;
    cases.push_back({"n6_random", c, levels(6, 15)});
  }
  return cases;
}

void print_kernel_summary(const std::vector<KernelCheckResult>& results) {
  TextTable table({"path", "config", "slots", "binned", "checked", "skipped",
                   "max tv", "divergences"});
  for (const auto& r : results) {
    table.add_row({r.source, r.config,
                   TextTable::fmt(static_cast<double>(r.slots), 0),
                   TextTable::fmt(static_cast<double>(r.binned), 0),
                   TextTable::fmt(static_cast<double>(r.cells_checked), 0),
                   TextTable::fmt(static_cast<double>(r.cells_skipped), 0),
                   TextTable::fmt(r.max_tv, 4),
                   TextTable::fmt(static_cast<double>(r.divergences.size()), 0)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Kernel conformance: simulator vs Eqs. (6)-(14) / Eq. (5) "
               "oracle, plus Thms. III.4-III.5 structure\n";
  BenchReport report("conformance");

  const double scale = bench_scale();
  KernelCheckOptions deep;
  deep.slots = static_cast<std::size_t>(
      std::max(200000.0, 2000000.0 * scale));
  deep.min_samples = 200;
  deep.confidence_delta = 1e-6;

  const auto envs = env_cases();
  const auto jammers = jammer_cases();

  // Every check is independent and deterministically seeded: fan out.
  const std::size_t total = envs.size() + jammers.size();
  const auto results = parallel_map(
      total,
      [&](std::size_t item) {
        KernelCheckOptions options = deep;
        options.seed = 101 + 31 * item;
        if (item < envs.size()) {
          return check_environment(envs[item].config, options,
                                   envs[item].label);
        }
        const auto& jc = jammers[item - envs.size()];
        return check_sweep_jammer(jc.config, jc.tx_levels, /*loss_jam=*/100.0,
                                  /*loss_hop=*/50.0, options, jc.label);
      },
      bench_threads());

  print_header("Empirical kernel vs analytic MDP",
               "every (state, action) cell within exact Hoeffding/TV bounds");
  print_kernel_summary(results);

  std::vector<Divergence> all;
  std::size_t checked_cells = 0;
  double max_tv = 0.0;
  for (const auto& r : results) {
    report.add_sweep(r.source + "_" + r.config + "_cells", cells_json(r));
    report.add_slots(r.slots);
    all.insert(all.end(), r.divergences.begin(), r.divergences.end());
    checked_cells += r.cells_checked;
    max_tv = std::max(max_tv, r.max_tv);
  }

  print_header("Policy structure (Thms. III.4-III.5)",
               "threshold form + n* monotone in L_J, L_H, cycle; both modes");
  const auto structure = check_policy_structure(StructureCheckOptions::defaults());
  std::cout << structure.points.size() << " grid points solved, "
            << structure.divergences.size() << " violations\n";
  report.add_sweep("policy_structure", structure_json(structure));
  all.insert(all.end(), structure.divergences.begin(),
             structure.divergences.end());

  print_header("Divergence triage", "");
  if (all.empty()) {
    std::cout << "none: every cell conforms (" << checked_cells
              << " cells checked, max tv " << max_tv << ")\n";
  } else {
    for (const auto& d : all) std::cout << "  " << d.describe() << "\n";
  }

  report.add_sweep("divergences", divergences_json(all));
  report.set_metric("kernel_cells_checked", checked_cells);
  report.set_metric("kernel_max_tv", max_tv);
  report.set_metric("structure_points", structure.points.size());
  report.set_metric("num_divergences", all.size());
  report.set_metric("conformant", JsonValue(all.empty()));
  report.write();

  return all.empty() ? 0 : 1;
}
