// Fig. 8 — Success rates of frequency hopping (SH) and power control (SP)
// against L_J, sweep cycle, L_H and the lower bound of the transmit power
// range, under both jammer modes (8 sub-figures).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace ctj;
using namespace ctj::bench;

namespace {

void sweep_and_print(const std::string& title, const std::string& xlabel,
                     const std::vector<double>& xs,
                     core::EnvironmentConfig (*make_env)(double,
                                                         JammerPowerMode),
                     const std::string& note) {
  TextTable table({xlabel, "SH max (%)", "SH rand (%)", "SP max (%)",
                   "SP rand (%)"});
  for (double x : xs) {
    const auto max_m = run_rl_point(make_env(x, JammerPowerMode::kMaxPower));
    const auto rnd_m = run_rl_point(make_env(x, JammerPowerMode::kRandomPower));
    table.add_row({x, 100.0 * max_m.sh, 100.0 * rnd_m.sh, 100.0 * max_m.sp,
                   100.0 * rnd_m.sp});
  }
  print_header(title, note);
  table.print(std::cout);
}

core::EnvironmentConfig env_cycle_d(double cycle, JammerPowerMode mode) {
  return env_with_cycle(static_cast<int>(cycle), mode);
}

}  // namespace

int main() {
  std::cout << "Fig. 8 reproduction: success rate of FH (SH) and PC (SP)\n"
            << "train slots/point: " << train_slots()
            << ", eval slots/point: " << eval_slots() << "\n";

  sweep_and_print("Fig. 8(a)/(b): SH and SP vs L_J", "L_J", lj_sweep(),
                  env_with_lj,
                  "SH rises rapidly for 35<L_J<55 then tapers; SP differs "
                  "between the modes for 15<L_J<55 (PC only works in the "
                  "random mode)");

  std::vector<double> cycles;
  for (int c : sweep_cycle_sweep()) cycles.push_back(c);
  sweep_and_print("Fig. 8(c)/(d): SH and SP vs sweep cycle", "cycle", cycles,
                  env_cycle_d,
                  "both decrease with the cycle; FH dominant (77.8%..20.6%), "
                  "PC low (19.5%..1.3%)");

  sweep_and_print("Fig. 8(e)/(f): SH and SP vs L_H", "L_H", lh_sweep(),
                  env_with_lh,
                  "modes diverge past L_H>85: PC replaces FH in the random "
                  "mode, FH irreplaceable in the max mode");

  sweep_and_print("Fig. 8(g)/(h): SH and SP vs L_p lower bound", "L_p lower",
                  lp_lower_sweep(), env_with_lp_lower,
                  "opposite trends: PC replaces FH as the power budget grows");
  return 0;
}
