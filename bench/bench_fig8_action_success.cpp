// Fig. 8 — Success rates of frequency hopping (SH) and power control (SP)
// against L_J, sweep cycle, L_H and the lower bound of the transmit power
// range, under both jammer modes (8 sub-figures). Sweep points fan out
// across CTJ_BENCH_THREADS cores.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace ctj;
using namespace ctj::bench;

namespace {

void sweep_and_print(BenchReport& report, const std::string& sweep_name,
                     const std::string& title, const std::string& xlabel,
                     const std::vector<double>& xs,
                     core::EnvironmentConfig (*make_env)(double,
                                                         JammerPowerMode),
                     const std::string& note) {
  const auto points = run_mode_sweep(xs, make_env);

  TextTable table({xlabel, "SH max (%)", "SH rand (%)", "SP max (%)",
                   "SP rand (%)"});
  JsonValue rows = JsonValue::array();
  for (const auto& p : points) {
    table.add_row({p.x, 100.0 * p.max_mode.sh, 100.0 * p.rand_mode.sh,
                   100.0 * p.max_mode.sp, 100.0 * p.rand_mode.sp});
    JsonValue row = JsonValue::object();
    row["x"] = p.x;
    row["max_power"] = metrics_json(p.max_mode);
    row["random_power"] = metrics_json(p.rand_mode);
    rows.push_back(std::move(row));
  }
  print_header(title, note);
  table.print(std::cout);
  report.add_sweep(sweep_name, std::move(rows));
  report.add_slots(points.size() * 2 * (train_slots() + eval_slots()));
}

core::EnvironmentConfig env_cycle_d(double cycle, JammerPowerMode mode) {
  return env_with_cycle(static_cast<int>(cycle), mode);
}

}  // namespace

int main() {
  std::cout << "Fig. 8 reproduction: success rate of FH (SH) and PC (SP)\n"
            << "train slots/point: " << train_slots()
            << ", eval slots/point: " << eval_slots()
            << ", threads: " << bench_threads() << "\n";
  BenchReport report("fig8_action_success");

  sweep_and_print(report, "sh_sp_vs_lj",
                  "Fig. 8(a)/(b): SH and SP vs L_J", "L_J", lj_sweep(),
                  env_with_lj,
                  "SH rises rapidly for 35<L_J<55 then tapers; SP differs "
                  "between the modes for 15<L_J<55 (PC only works in the "
                  "random mode)");

  std::vector<double> cycles;
  for (int c : sweep_cycle_sweep()) cycles.push_back(c);
  sweep_and_print(report, "sh_sp_vs_cycle",
                  "Fig. 8(c)/(d): SH and SP vs sweep cycle", "cycle", cycles,
                  env_cycle_d,
                  "both decrease with the cycle; FH dominant (77.8%..20.6%), "
                  "PC low (19.5%..1.3%)");

  sweep_and_print(report, "sh_sp_vs_lh",
                  "Fig. 8(e)/(f): SH and SP vs L_H", "L_H", lh_sweep(),
                  env_with_lh,
                  "modes diverge past L_H>85: PC replaces FH in the random "
                  "mode, FH irreplaceable in the max mode");

  sweep_and_print(report, "sh_sp_vs_lp_lower",
                  "Fig. 8(g)/(h): SH and SP vs L_p lower bound", "L_p lower",
                  lp_lower_sweep(), env_with_lp_lower,
                  "opposite trends: PC replaces FH as the power budget grows");
  return 0;
}
