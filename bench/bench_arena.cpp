// Self-play arena bench: alternating best-response training between the DQN
// defender and the learned jammer, with exploitability tracked across
// generations.
//
// Runs one arena (4 generations, frozen-opponent pools) on the paper's
// default 16-channel geometry and reports throughput (generations/sec,
// slots/sec over every training and evaluation slot the arena simulated)
// plus the learning trajectory: per-generation jammer hit rate, defender
// reward vs the pool and vs the fresh best response, and their gap — the
// exploitability that should shrink as the defender hardens. The final
// head-to-head cross table (every pooled defender vs every pooled jammer)
// lands in the record too.
//
// With CTJ_CKPT_DIR set the arena checkpoints each generation boundary into
// <dir>/arena_selfplay.ctjs with resume enabled, so a killed bench re-run
// picks up after the last completed generation (CI inspects this file with
// ctj_ckpt info). Slot budgets scale with CTJ_BENCH_SCALE.
// Output: BENCH_arena.json.
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "arena/learned_jammer.hpp"
#include "arena/self_play.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/environment.hpp"

using namespace ctj;
using namespace ctj::bench;

namespace {

std::size_t scaled(std::size_t slots) {
  const auto s = static_cast<std::size_t>(static_cast<double>(slots) *
                                          bench_scale());
  return s > 0 ? s : 1;
}

}  // namespace

int main() {
  std::cout << "Self-play arena: alternating best-response training, "
               "exploitability per generation\n";
  BenchReport report("arena");

  arena::SelfPlayConfig config = arena::SelfPlayConfig::defaults();
  config.generations = 6;
  config.warmup_slots = scaled(16000);
  config.jammer_slots = scaled(6000);
  config.defender_slots = scaled(16000);
  config.eval_slots = scaled(3000);
  config.pool_capacity = 8;
  config.seed = 13;
  config.env.seed = 13;
  config.defender.num_channels = config.env.num_channels;
  config.defender.num_power_levels = config.env.num_power_levels();
  config.defender.history = 4;
  config.defender.hidden = {32, 32};
  config.defender.seed = 20;
  config.jammer = jammer::JammerSpec::defaults("learned");
  config.checkpoint = checkpoint_options("arena_selfplay");

  std::cout << config.generations << " generations, " << config.jammer_slots
            << " jammer / " << config.defender_slots
            << " defender train slots per generation, " << config.eval_slots
            << " eval slots per probe\n\n";

  arena::SelfPlay arena_run(config);
  const arena::SelfPlayResult result = arena_run.run();
  if (result.resumed) {
    std::cout << "(resumed from checkpoint — timing covers the remaining "
                 "generations only)\n\n";
  }

  TextTable table({"gen", "jam hit%", "def train R", "R vs pool", "R vs BR",
                   "exploitability"});
  JsonValue rows = JsonValue::array();
  for (const arena::GenerationResult& g : result.generations) {
    table.add_row({std::to_string(g.generation),
                   TextTable::fmt(100.0 * g.jammer_hit_rate, 1),
                   TextTable::fmt(g.defender_train_reward, 1),
                   TextTable::fmt(g.reward_vs_pool, 1),
                   TextTable::fmt(g.reward_vs_best_response, 1),
                   TextTable::fmt(g.exploitability, 2)});
    JsonValue row = JsonValue::object();
    row["generation"] = g.generation;
    row["jammer_hit_rate"] = g.jammer_hit_rate;
    row["defender_train_reward"] = g.defender_train_reward;
    row["reward_vs_pool"] = g.reward_vs_pool;
    row["reward_vs_best_response"] = g.reward_vs_best_response;
    row["exploitability"] = g.exploitability;
    rows.push_back(std::move(row));
  }
  table.print(std::cout);
  report.add_sweep("generations", std::move(rows));

  std::cout << "\nhead-to-head cross table (defender generation x jammer "
               "generation, mean defender reward):\n";
  std::vector<std::string> header = {"def \\ jam"};
  for (std::size_t g : result.jammer_generations) {
    header.push_back("g" + std::to_string(g));
  }
  TextTable cross(header);
  JsonValue cross_rows = JsonValue::array();
  for (std::size_t i = 0; i < result.cross_table.size(); ++i) {
    std::vector<std::string> cells = {
        "g" + std::to_string(result.defender_generations[i])};
    JsonValue row = JsonValue::object();
    row["defender_generation"] = result.defender_generations[i];
    JsonValue vs = JsonValue::array();
    for (std::size_t j = 0; j < result.cross_table[i].size(); ++j) {
      cells.push_back(TextTable::fmt(result.cross_table[i][j], 1));
      vs.push_back(result.cross_table[i][j]);
    }
    row["reward_vs_jammers"] = std::move(vs);
    cross_rows.push_back(std::move(row));
    cross.add_row(cells);
  }
  cross.print(std::cout);
  report.add_sweep("cross_table", std::move(cross_rows));

  report.add_slots(result.slots_total);
  const double wall = result.wall_seconds > 0.0 ? result.wall_seconds : 1e-9;
  const double gens_per_sec =
      static_cast<double>(result.generations.size()) / wall;
  const double slots_per_sec =
      static_cast<double>(result.slots_total) / wall;
  report.set_metric("arena_generations_per_sec", JsonValue(gens_per_sec));
  report.set_metric("arena_slots_per_sec", JsonValue(slots_per_sec));
  report.set_metric("final_exploitability",
                    JsonValue(result.generations.empty()
                                  ? 0.0
                                  : result.generations.back().exploitability));
  report.set_metric(
      "first_exploitability",
      JsonValue(result.generations.empty()
                    ? 0.0
                    : result.generations.front().exploitability));
  report.set_metric("resumed",
                    JsonValue(static_cast<std::size_t>(result.resumed)));

  std::cout << "\n" << TextTable::fmt(gens_per_sec, 3)
            << " generations/sec, " << TextTable::fmt(slots_per_sec, 0)
            << " arena slots/sec (" << result.slots_total << " slots in "
            << TextTable::fmt(wall, 1) << " s)\n";
  report.write();
  return 0;
}
