// Fig. 6 — Success rate of transmission (ST) of the DQN anti-jamming scheme
// against (a) L_J, (b) the jammer's sweep cycle, (c) L_H, and (d) the lower
// bound of the transmit power range, under the max-power and random-power
// jammer modes. Each point trains a fresh DQN and evaluates 20 000 slots;
// points fan out across CTJ_BENCH_THREADS cores.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace ctj;
using namespace ctj::bench;

namespace {

void report_sweep(BenchReport& report, const std::string& sweep_name,
                  const std::string& xlabel,
                  const std::vector<ModeSweepPoint>& points) {
  JsonValue rows = JsonValue::array();
  for (const auto& p : points) {
    JsonValue row = JsonValue::object();
    row[xlabel] = p.x;
    row["max_power"] = metrics_json(p.max_mode);
    row["random_power"] = metrics_json(p.rand_mode);
    rows.push_back(std::move(row));
  }
  report.add_sweep(sweep_name, std::move(rows));
  report.add_slots(points.size() * 2 * (train_slots() + eval_slots()));
}

void print_st_table(const std::string& xlabel,
                    const std::vector<ModeSweepPoint>& points) {
  TextTable table({xlabel, "ST max-pwr (%)", "ST rand-pwr (%)"});
  for (const auto& p : points) {
    table.add_row({p.x, 100.0 * p.max_mode.st, 100.0 * p.rand_mode.st});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Fig. 6 reproduction: success rate of transmission (ST, %)\n"
            << "train slots/point: " << train_slots()
            << ", eval slots/point: " << eval_slots()
            << ", threads: " << bench_threads() << "\n";
  BenchReport report("fig6_success_rate");

  {
    print_header("Fig. 6(a): ST vs L_J",
                 "ST ~0 for L_J<=15, rising to ~78% for L_J>50; random mode "
                 "rises earlier than max mode in 15<L_J<=50");
    const auto points = run_mode_sweep(lj_sweep(), env_with_lj);
    print_st_table("L_J", points);
    report_sweep(report, "st_vs_lj", "lj", points);
  }

  {
    print_header("Fig. 6(b): ST vs sweep cycle",
                 "ST increases with the sweep cycle (~70% at 4 to ~90% at 15)");
    std::vector<double> cycles;
    for (int c : sweep_cycle_sweep()) cycles.push_back(c);
    const auto points = run_mode_sweep(
        cycles, [](double cycle, JammerPowerMode mode) {
          return env_with_cycle(static_cast<int>(cycle), mode);
        });
    print_st_table("cycle", points);
    report_sweep(report, "st_vs_cycle", "cycle", points);
  }

  {
    print_header("Fig. 6(c): ST vs L_H",
                 "ST decreases with L_H; random mode drops sharply past "
                 "L_H>85 while max mode keeps hopping");
    const auto points = run_mode_sweep(lh_sweep(), env_with_lh);
    print_st_table("L_H", points);
    report_sweep(report, "st_vs_lh", "lh", points);
  }

  {
    print_header("Fig. 6(d): ST vs lower bound of L^T_p",
                 "slow rise for 6-9, ST ~100% once the bound reaches 11 "
                 "(tx power then always beats the jammer)");
    const auto points = run_mode_sweep(lp_lower_sweep(), env_with_lp_lower);
    print_st_table("L_p lower", points);
    report_sweep(report, "st_vs_lp_lower", "lp_lower", points);
  }
  return 0;
}
