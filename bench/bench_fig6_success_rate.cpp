// Fig. 6 — Success rate of transmission (ST) of the DQN anti-jamming scheme
// against (a) L_J, (b) the jammer's sweep cycle, (c) L_H, and (d) the lower
// bound of the transmit power range, under the max-power and random-power
// jammer modes. Each point trains a fresh DQN and evaluates 20 000 slots.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace ctj;
using namespace ctj::bench;

int main() {
  std::cout << "Fig. 6 reproduction: success rate of transmission (ST, %)\n"
            << "train slots/point: " << train_slots()
            << ", eval slots/point: " << eval_slots() << "\n";

  {
    print_header("Fig. 6(a): ST vs L_J",
                 "ST ~0 for L_J<=15, rising to ~78% for L_J>50; random mode "
                 "rises earlier than max mode in 15<L_J<=50");
    TextTable table({"L_J", "ST max-pwr (%)", "ST rand-pwr (%)"});
    for (double lj : lj_sweep()) {
      const auto max_m = run_rl_point(env_with_lj(lj, JammerPowerMode::kMaxPower));
      const auto rnd_m = run_rl_point(env_with_lj(lj, JammerPowerMode::kRandomPower));
      table.add_row({lj, 100.0 * max_m.st, 100.0 * rnd_m.st});
    }
    table.print(std::cout);
  }

  {
    print_header("Fig. 6(b): ST vs sweep cycle",
                 "ST increases with the sweep cycle (~70% at 4 to ~90% at 15)");
    TextTable table({"cycle", "ST max-pwr (%)", "ST rand-pwr (%)"});
    for (int cycle : sweep_cycle_sweep()) {
      const auto max_m = run_rl_point(env_with_cycle(cycle, JammerPowerMode::kMaxPower));
      const auto rnd_m = run_rl_point(env_with_cycle(cycle, JammerPowerMode::kRandomPower));
      table.add_row({static_cast<double>(cycle), 100.0 * max_m.st,
                     100.0 * rnd_m.st});
    }
    table.print(std::cout);
  }

  {
    print_header("Fig. 6(c): ST vs L_H",
                 "ST decreases with L_H; random mode drops sharply past "
                 "L_H>85 while max mode keeps hopping");
    TextTable table({"L_H", "ST max-pwr (%)", "ST rand-pwr (%)"});
    for (double lh : lh_sweep()) {
      const auto max_m = run_rl_point(env_with_lh(lh, JammerPowerMode::kMaxPower));
      const auto rnd_m = run_rl_point(env_with_lh(lh, JammerPowerMode::kRandomPower));
      table.add_row({lh, 100.0 * max_m.st, 100.0 * rnd_m.st});
    }
    table.print(std::cout);
  }

  {
    print_header("Fig. 6(d): ST vs lower bound of L^T_p",
                 "slow rise for 6-9, ST ~100% once the bound reaches 11 "
                 "(tx power then always beats the jammer)");
    TextTable table({"L_p lower", "ST max-pwr (%)", "ST rand-pwr (%)"});
    for (double lower : lp_lower_sweep()) {
      const auto max_m = run_rl_point(env_with_lp_lower(lower, JammerPowerMode::kMaxPower));
      const auto rnd_m = run_rl_point(env_with_lp_lower(lower, JammerPowerMode::kRandomPower));
      table.add_row({lower, 100.0 * max_m.st, 100.0 * rnd_m.st});
    }
    table.print(std::cout);
  }
  return 0;
}
