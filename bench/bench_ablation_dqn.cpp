// Ablations of the DQN design choices (beyond the paper's figures, but
// answering the design questions Sec. III.C raises): the observation history
// length I (the 3×I input layer), the hidden width of the two fully
// connected layers, and the deployed ε of the ε-greedy communication policy.
// Each point trains on the default max-power scenario and reports ST and the
// mean reward. The training-variant sections fan their points out across
// CTJ_BENCH_THREADS cores; the deployed-ε study trains one scheme and
// redeploys it sequentially (the scheme object is mutated between runs).
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/field.hpp"
#include "core/qlearning_scheme.hpp"
#include "core/trainer.hpp"
#include "core/experiment.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::core;

namespace {

MetricsReport run_variant(std::size_t history, std::vector<std::size_t> hidden,
                          double deploy_epsilon, std::uint64_t seed,
                          const std::string& ckpt_tag = "") {
  RlExperimentConfig config;
  config.env = EnvironmentConfig::defaults();
  config.env.mode = JammerPowerMode::kMaxPower;
  config.env.seed = seed;
  config.eval_seed = seed + 1000;
  config.scheme.history = history;
  config.scheme.hidden = std::move(hidden);
  config.scheme.learning_rate = 1.5e-3;
  config.scheme.epsilon_decay_steps = train_slots() / 4;
  config.scheme.deploy_epsilon = deploy_epsilon;
  config.scheme.seed = seed + 500;
  config.train_slots = train_slots();
  config.eval_slots = eval_slots();
  config.checkpoint = checkpoint_options(ckpt_tag);
  return run_rl_experiment(config).metrics;
}

}  // namespace

int main() {
  std::cout << "DQN design ablations (max-power jammer, paper defaults "
               "otherwise)\n"
            << "train slots/point: " << train_slots()
            << ", eval slots/point: " << eval_slots()
            << ", threads: " << bench_threads() << "\n";
  BenchReport report("ablation_dqn");

  {
    print_header("history length I (input layer = 3*I neurons)",
                 "the paper uses the previous I slots; too little history "
                 "hides the jammer's sweep phase");
    const std::size_t histories[] = {1, 2, 4, 8};
    const auto ms = parallel_map(
        4,
        [&](std::size_t i) {
          return run_variant(histories[i], {32, 32}, 0.05, 11,
                             "ablation_hist" + std::to_string(histories[i]));
        },
        bench_threads());
    TextTable table({"I", "ST (%)", "mean reward"});
    JsonValue rows = JsonValue::array();
    for (std::size_t i = 0; i < ms.size(); ++i) {
      table.add_row({static_cast<double>(histories[i]), 100.0 * ms[i].st,
                     ms[i].mean_reward});
      JsonValue row = JsonValue::object();
      row["history"] = histories[i];
      row["metrics"] = metrics_json(ms[i]);
      rows.push_back(std::move(row));
    }
    table.print(std::cout);
    report.add_sweep("history_length", std::move(rows));
    report.add_slots(ms.size() * (train_slots() + eval_slots()));
  }

  {
    print_header("hidden width (two fully connected layers, Fig. 4)",
                 "the paper: two hidden layers suffice; width trades "
                 "capacity against on-device footprint");
    const std::size_t widths[] = {16, 32, 45, 64};
    const auto ms = parallel_map(
        4,
        [&](std::size_t i) {
          return run_variant(4, {widths[i], widths[i]}, 0.05, 22,
                             "ablation_width" + std::to_string(widths[i]));
        },
        bench_threads());
    TextTable table({"width", "ST (%)", "mean reward"});
    JsonValue rows = JsonValue::array();
    for (std::size_t i = 0; i < ms.size(); ++i) {
      table.add_row({static_cast<double>(widths[i]), 100.0 * ms[i].st,
                     ms[i].mean_reward});
      JsonValue row = JsonValue::object();
      row["width"] = widths[i];
      row["metrics"] = metrics_json(ms[i]);
      rows.push_back(std::move(row));
    }
    table.print(std::cout);
    report.add_sweep("hidden_width", std::move(rows));
    report.add_slots(ms.size() * (train_slots() + eval_slots()));
  }

  {
    print_header("deployed epsilon of the eps-greedy communication policy",
                 "evaluated in the FIELD simulator, where the behavioural "
                 "sweeping jammer can track a deterministic channel "
                 "pattern: eps = 0 collapses, a little exploration "
                 "restores the escape behaviour, too much wastes slots");
    // Train once, redeploy with different epsilons. The scheme object is
    // mutated between deployments, so this section stays sequential.
    DqnScheme::Config scheme_config;
    scheme_config.history = 4;
    scheme_config.hidden = {32, 32};
    scheme_config.epsilon_decay_steps = train_slots() / 4;
    scheme_config.seed = 533;
    DqnScheme scheme(scheme_config);
    {
      auto env_config = EnvironmentConfig::defaults();
      env_config.mode = JammerPowerMode::kMaxPower;
      env_config.seed = 33;
      CompetitionEnvironment env(env_config);
      TrainerConfig trainer;
      trainer.max_slots = train_slots();
      trainer.checkpoint = checkpoint_options("ablation_deploy_eps");
      train(scheme, env, trainer);
      scheme.set_training(false);
      report.add_slots(train_slots());
    }
    TextTable table({"deploy eps", "field ST (%)", "goodput (pkts/slot)"});
    JsonValue rows = JsonValue::array();
    for (double eps : {0.0, 0.02, 0.05, 0.1, 0.2}) {
      scheme.set_deploy_epsilon(eps);
      scheme.reset();
      FieldConfig field = FieldConfig::defaults();
      field.network.num_peripherals = 4;
      field.network.slot_duration_s = 3.0;
      field.network.seed = 62;
      field.seed = 63;
      FieldExperiment experiment(field, scheme);
      const auto r = experiment.run(300);
      table.add_row({eps, 100.0 * r.metrics.st, r.goodput_packets_per_slot});
      JsonValue row = JsonValue::object();
      row["deploy_epsilon"] = eps;
      row["field_st"] = r.metrics.st;
      row["goodput_packets_per_slot"] = r.goodput_packets_per_slot;
      rows.push_back(std::move(row));
      report.add_slots(300);
    }
    table.print(std::cout);
    report.add_sweep("deploy_epsilon", std::move(rows));
  }

  {
    print_header("agent family: tabular Q-learning vs DQN vs Double DQN",
                 "Sec. III.C's motivation: the Q table over the 3*I "
                 "observation space converges far slower than the DQN for "
                 "the same slot budget");
    // Three independent trainings: run them as one parallel batch. Each item
    // builds all of its state from the index alone.
    struct FamilyResult {
      MetricsReport metrics;
      std::size_t table_size = 0;  // only for the tabular agent
    };
    const auto family = parallel_map(
        3,
        [&](std::size_t i) -> FamilyResult {
          if (i == 0) {
            auto env_config = EnvironmentConfig::defaults();
            env_config.mode = JammerPowerMode::kMaxPower;
            env_config.seed = 55;
            QLearningScheme::Config ql_config;
            ql_config.history = 4;
            ql_config.epsilon_decay_steps = train_slots() / 4;
            QLearningScheme ql(ql_config);
            CompetitionEnvironment env(env_config);
            for (std::size_t slot = 0; slot < train_slots(); ++slot) {
              const auto d = ql.decide();
              const auto step = env.step(d.channel, d.power_index);
              SlotFeedback fb;
              fb.success = step.success;
              fb.jammed = step.outcome != SlotOutcome::kClear;
              fb.channel = step.channel;
              fb.power_index = d.power_index;
              fb.reward = step.reward;
              ql.feedback(fb);
            }
            ql.set_training(false);
            env_config.seed = 56;
            CompetitionEnvironment eval_env(env_config);
            return {evaluate(ql, eval_env, eval_slots()),
                    ql.agent().table_size()};
          }
          if (i == 1) {
            return {run_variant(4, {32, 32}, 0.05, 55, "ablation_dqn"), 0};
          }
          RlExperimentConfig config;
          config.env = EnvironmentConfig::defaults();
          config.env.mode = JammerPowerMode::kMaxPower;
          config.env.seed = 55;
          config.eval_seed = 56;
          config.scheme.history = 4;
          config.scheme.hidden = {32, 32};
          config.scheme.epsilon_decay_steps = train_slots() / 4;
          config.scheme.double_dqn = true;
          config.scheme.seed = 555;
          config.train_slots = train_slots();
          config.eval_slots = eval_slots();
          config.checkpoint = checkpoint_options("ablation_double_dqn");
          return {run_rl_experiment(config).metrics, 0};
        },
        bench_threads());
    const char* const family_names[] = {"tabular Q-learning", "DQN (paper)",
                                        "Double DQN"};
    TextTable table({"agent", "ST (%)", "notes"});
    JsonValue rows = JsonValue::array();
    for (std::size_t i = 0; i < family.size(); ++i) {
      table.add_row({family_names[i],
                     TextTable::fmt(100 * family[i].metrics.st, 2),
                     i == 0 ? "table size " +
                                  std::to_string(family[i].table_size)
                            : "-"});
      JsonValue row = JsonValue::object();
      row["agent"] = family_names[i];
      row["metrics"] = metrics_json(family[i].metrics);
      if (i == 0) row["table_size"] = family[i].table_size;
      rows.push_back(std::move(row));
    }
    table.print(std::cout);
    report.add_sweep("agent_family", std::move(rows));
    report.add_slots(family.size() * (train_slots() + eval_slots()));
  }

  {
    print_header("target network update rule",
                 "the paper hard-copies the target every 250 gradient steps; "
                 "syncing every step removes the stale-target stabilizer, a "
                 "Polyak soft update (tau = 0.01) tracks continuously, and "
                 "Double DQN decouples action selection from evaluation on "
                 "top of it");
    struct TargetVariant {
      const char* name;
      std::size_t sync_interval;
      double tau;
      bool double_dqn;
    };
    const TargetVariant variants[] = {
        {"hard sync / 250 (paper)", 250, 0.0, false},
        {"hard sync / 1 (no frozen target)", 1, 0.0, false},
        {"soft tau = 0.01", 0, 0.01, false},
        {"double DQN + soft tau = 0.01", 0, 0.01, true},
    };
    const auto ms = parallel_map(
        4,
        [&](std::size_t i) {
          RlExperimentConfig config;
          config.env = EnvironmentConfig::defaults();
          config.env.mode = JammerPowerMode::kMaxPower;
          config.env.seed = 66;
          config.eval_seed = 67;
          config.scheme.history = 4;
          config.scheme.hidden = {32, 32};
          config.scheme.epsilon_decay_steps = train_slots() / 4;
          config.scheme.target_sync_interval = variants[i].sync_interval;
          config.scheme.target_tau = variants[i].tau;
          config.scheme.double_dqn = variants[i].double_dqn;
          config.scheme.seed = 660 + i;
          config.train_slots = train_slots();
          config.eval_slots = eval_slots();
          config.checkpoint =
              checkpoint_options("ablation_target" + std::to_string(i));
          return run_rl_experiment(config).metrics;
        },
        bench_threads());
    TextTable table({"update rule", "ST (%)", "mean reward"});
    JsonValue rows = JsonValue::array();
    for (std::size_t i = 0; i < ms.size(); ++i) {
      table.add_row({variants[i].name, TextTable::fmt(100.0 * ms[i].st, 2),
                     TextTable::fmt(ms[i].mean_reward, 2)});
      JsonValue row = JsonValue::object();
      row["update_rule"] = variants[i].name;
      row["target_sync_interval"] = variants[i].sync_interval;
      row["target_tau"] = variants[i].tau;
      row["double_dqn"] = variants[i].double_dqn;
      row["metrics"] = metrics_json(ms[i]);
      rows.push_back(std::move(row));
    }
    table.print(std::cout);
    report.add_sweep("target_network", std::move(rows));
    report.add_slots(ms.size() * (train_slots() + eval_slots()));
  }

  {
    print_header("single vs two hidden layers",
                 "checks the paper's claim that 2 FC layers are sufficient");
    const std::pair<std::string, std::vector<std::size_t>> variants[] = {
        {"1 x 32", {32}},
        {"2 x 32", {32, 32}},
        {"3 x 32", {32, 32, 32}},
    };
    const auto ms = parallel_map(
        3,
        [&](std::size_t i) {
          return run_variant(4, variants[i].second, 0.05, 44,
                             "ablation_depth" + std::to_string(i + 1));
        },
        bench_threads());
    TextTable table({"architecture", "ST (%)", "mean reward"});
    JsonValue rows = JsonValue::array();
    for (std::size_t i = 0; i < ms.size(); ++i) {
      table.add_row({variants[i].first, TextTable::fmt(100.0 * ms[i].st, 2),
                     TextTable::fmt(ms[i].mean_reward, 2)});
      JsonValue row = JsonValue::object();
      row["architecture"] = variants[i].first;
      row["metrics"] = metrics_json(ms[i]);
      rows.push_back(std::move(row));
    }
    table.print(std::cout);
    report.add_sweep("depth", std::move(rows));
    report.add_slots(ms.size() * (train_slots() + eval_slots()));
  }
  return 0;
}
