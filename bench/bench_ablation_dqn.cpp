// Ablations of the DQN design choices (beyond the paper's figures, but
// answering the design questions Sec. III.C raises): the observation history
// length I (the 3×I input layer), the hidden width of the two fully
// connected layers, and the deployed ε of the ε-greedy communication policy.
// Each point trains on the default max-power scenario and reports ST and the
// mean reward.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/field.hpp"
#include "core/qlearning_scheme.hpp"
#include "core/trainer.hpp"
#include "core/experiment.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::core;

namespace {

MetricsReport run_variant(std::size_t history, std::vector<std::size_t> hidden,
                          double deploy_epsilon, std::uint64_t seed) {
  RlExperimentConfig config;
  config.env = EnvironmentConfig::defaults();
  config.env.mode = JammerPowerMode::kMaxPower;
  config.env.seed = seed;
  config.eval_seed = seed + 1000;
  config.scheme.history = history;
  config.scheme.hidden = std::move(hidden);
  config.scheme.learning_rate = 1.5e-3;
  config.scheme.epsilon_decay_steps = train_slots() / 4;
  config.scheme.deploy_epsilon = deploy_epsilon;
  config.scheme.seed = seed + 500;
  config.train_slots = train_slots();
  config.eval_slots = eval_slots();
  return run_rl_experiment(config).metrics;
}

}  // namespace

int main() {
  std::cout << "DQN design ablations (max-power jammer, paper defaults "
               "otherwise)\n"
            << "train slots/point: " << train_slots()
            << ", eval slots/point: " << eval_slots() << "\n";

  {
    print_header("history length I (input layer = 3*I neurons)",
                 "the paper uses the previous I slots; too little history "
                 "hides the jammer's sweep phase");
    TextTable table({"I", "ST (%)", "mean reward"});
    for (std::size_t I : {1u, 2u, 4u, 8u}) {
      const auto m = run_variant(I, {32, 32}, 0.05, 11);
      table.add_row({static_cast<double>(I), 100.0 * m.st, m.mean_reward});
    }
    table.print(std::cout);
  }

  {
    print_header("hidden width (two fully connected layers, Fig. 4)",
                 "the paper: two hidden layers suffice; width trades "
                 "capacity against on-device footprint");
    TextTable table({"width", "ST (%)", "mean reward"});
    for (std::size_t w : {16u, 32u, 45u, 64u}) {
      const auto m = run_variant(4, {w, w}, 0.05, 22);
      table.add_row({static_cast<double>(w), 100.0 * m.st, m.mean_reward});
    }
    table.print(std::cout);
  }

  {
    print_header("deployed epsilon of the eps-greedy communication policy",
                 "evaluated in the FIELD simulator, where the behavioural "
                 "sweeping jammer can track a deterministic channel "
                 "pattern: eps = 0 collapses, a little exploration "
                 "restores the escape behaviour, too much wastes slots");
    // Train once, redeploy with different epsilons.
    DqnScheme::Config scheme_config;
    scheme_config.history = 4;
    scheme_config.hidden = {32, 32};
    scheme_config.epsilon_decay_steps = train_slots() / 4;
    scheme_config.seed = 533;
    DqnScheme scheme(scheme_config);
    {
      auto env_config = EnvironmentConfig::defaults();
      env_config.mode = JammerPowerMode::kMaxPower;
      env_config.seed = 33;
      CompetitionEnvironment env(env_config);
      TrainerConfig trainer;
      trainer.max_slots = train_slots();
      train(scheme, env, trainer);
      scheme.set_training(false);
    }
    TextTable table({"deploy eps", "field ST (%)", "goodput (pkts/slot)"});
    for (double eps : {0.0, 0.02, 0.05, 0.1, 0.2}) {
      scheme.set_deploy_epsilon(eps);
      scheme.reset();
      FieldConfig field = FieldConfig::defaults();
      field.network.num_peripherals = 4;
      field.network.slot_duration_s = 3.0;
      field.network.seed = 62;
      field.seed = 63;
      FieldExperiment experiment(field, scheme);
      const auto r = experiment.run(300);
      table.add_row({eps, 100.0 * r.metrics.st, r.goodput_packets_per_slot});
    }
    table.print(std::cout);
  }

  {
    print_header("agent family: tabular Q-learning vs DQN vs Double DQN",
                 "Sec. III.C's motivation: the Q table over the 3*I "
                 "observation space converges far slower than the DQN for "
                 "the same slot budget");
    TextTable table({"agent", "ST (%)", "notes"});
    // Tabular Q-learning on the same budget.
    {
      auto env_config = EnvironmentConfig::defaults();
      env_config.mode = JammerPowerMode::kMaxPower;
      env_config.seed = 55;
      QLearningScheme::Config ql_config;
      ql_config.history = 4;
      ql_config.epsilon_decay_steps = train_slots() / 4;
      QLearningScheme ql(ql_config);
      CompetitionEnvironment env(env_config);
      for (std::size_t slot = 0; slot < train_slots(); ++slot) {
        const auto d = ql.decide();
        const auto step = env.step(d.channel, d.power_index);
        SlotFeedback fb;
        fb.success = step.success;
        fb.jammed = step.outcome != SlotOutcome::kClear;
        fb.channel = step.channel;
        fb.power_index = d.power_index;
        fb.reward = step.reward;
        ql.feedback(fb);
      }
      ql.set_training(false);
      env_config.seed = 56;
      CompetitionEnvironment eval_env(env_config);
      const auto m = evaluate(ql, eval_env, eval_slots());
      table.add_row({"tabular Q-learning", TextTable::fmt(100 * m.st, 2),
                     "table size " + std::to_string(ql.agent().table_size())});
    }
    {
      const auto m = run_variant(4, {32, 32}, 0.05, 55);
      table.add_row({"DQN (paper)", TextTable::fmt(100 * m.st, 2), "-"});
    }
    {
      RlExperimentConfig config;
      config.env = EnvironmentConfig::defaults();
      config.env.mode = JammerPowerMode::kMaxPower;
      config.env.seed = 55;
      config.eval_seed = 56;
      config.scheme.history = 4;
      config.scheme.hidden = {32, 32};
      config.scheme.epsilon_decay_steps = train_slots() / 4;
      config.scheme.double_dqn = true;
      config.scheme.seed = 555;
      config.train_slots = train_slots();
      config.eval_slots = eval_slots();
      const auto m = run_rl_experiment(config).metrics;
      table.add_row({"Double DQN", TextTable::fmt(100 * m.st, 2), "-"});
    }
    table.print(std::cout);
  }

  {
    print_header("single vs two hidden layers",
                 "checks the paper's claim that 2 FC layers are sufficient");
    TextTable table({"architecture", "ST (%)", "mean reward"});
    const std::pair<std::string, std::vector<std::size_t>> variants[] = {
        {"1 x 32", {32}},
        {"2 x 32", {32, 32}},
        {"3 x 32", {32, 32, 32}},
    };
    for (const auto& [name, hidden] : variants) {
      const auto m = run_variant(4, hidden, 0.05, 44);
      table.add_row({name, TextTable::fmt(100.0 * m.st, 2),
                     TextTable::fmt(m.mean_reward, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}
