// Fig. 7 — Adoption rates of frequency hopping (AH) and power control (AP)
// against L_J, sweep cycle, L_H and the lower bound of the transmit power
// range, under both jammer modes (8 sub-figures). Sweep points fan out
// across CTJ_BENCH_THREADS cores.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace ctj;
using namespace ctj::bench;

namespace {

void sweep_and_print(BenchReport& report, const std::string& sweep_name,
                     const std::string& name_a, const std::string& name_b,
                     const std::string& xlabel,
                     const std::vector<double>& xs,
                     core::EnvironmentConfig (*make_env)(double,
                                                         JammerPowerMode),
                     const std::string& note_ah, const std::string& note_ap) {
  const auto points = run_mode_sweep(xs, make_env);

  TextTable table({xlabel, "AH max (%)", "AH rand (%)", "AP max (%)",
                   "AP rand (%)"});
  JsonValue rows = JsonValue::array();
  for (const auto& p : points) {
    table.add_row({p.x, 100.0 * p.max_mode.ah, 100.0 * p.rand_mode.ah,
                   100.0 * p.max_mode.ap, 100.0 * p.rand_mode.ap});
    JsonValue row = JsonValue::object();
    row["x"] = p.x;
    row["max_power"] = metrics_json(p.max_mode);
    row["random_power"] = metrics_json(p.rand_mode);
    rows.push_back(std::move(row));
  }
  print_header(name_a + " / " + name_b, note_ah + " | " + note_ap);
  table.print(std::cout);
  report.add_sweep(sweep_name, std::move(rows));
  report.add_slots(points.size() * 2 * (train_slots() + eval_slots()));
}

core::EnvironmentConfig env_cycle_d(double cycle, JammerPowerMode mode) {
  return env_with_cycle(static_cast<int>(cycle), mode);
}

}  // namespace

int main() {
  std::cout << "Fig. 7 reproduction: adoption rate of FH (AH) and PC (AP)\n"
            << "train slots/point: " << train_slots()
            << ", eval slots/point: " << eval_slots()
            << ", threads: " << bench_threads() << "\n";
  BenchReport report("fig7_adoption_rate");

  sweep_and_print(
      report, "ah_ap_vs_lj",
      "Fig. 7(a): AH vs L_J", "Fig. 7(b): AP vs L_J", "L_J", lj_sweep(),
      env_with_lj,
      "AH ~0 until L_J~35, then rises toward ~50%",
      "AP low in max mode (PC useless against max power), high in random mode");

  std::vector<double> cycles;
  for (int c : sweep_cycle_sweep()) cycles.push_back(c);
  sweep_and_print(
      report, "ah_ap_vs_cycle",
      "Fig. 7(c): AH vs sweep cycle", "Fig. 7(d): AP vs sweep cycle", "cycle",
      cycles, env_cycle_d,
      "AH decreases with the cycle (less jamming pressure)",
      "AP decreases with the cycle; rand mode usually above max mode");

  sweep_and_print(
      report, "ah_ap_vs_lh",
      "Fig. 7(e): AH vs L_H", "Fig. 7(f): AP vs L_H", "L_H", lh_sweep(),
      env_with_lh,
      "AH decreases with L_H; modes diverge past L_H>85",
      "AP picks up the slack in random mode when FH becomes expensive");

  sweep_and_print(
      report, "ah_ap_vs_lp_lower",
      "Fig. 7(g): AH vs L_p lower bound", "Fig. 7(h): AP vs L_p lower bound",
      "L_p lower", lp_lower_sweep(), env_with_lp_lower,
      "AH falls once power suffices (inflection at 11)",
      "AP rises with the power budget");
  return 0;
}
