// Fleet-scale serving throughput (src/serve): how many concurrent tenant
// simulations one ServeEngine sustains, and what the multiplexing costs
// relative to running the same tenants back to back.
//
// Scenarios (tenant budgets scale with CTJ_BENCH_SCALE; tenant counts are
// fixed so the concurrency level is what the record says it is):
//
//   dqn_100   100 concurrent DQN tenants, residency capped at 64 so the
//             evict/revive path runs at full scale (smoke tenants finish
//             inside one quantum and never get evicted)
//   dqn_1k    1000 concurrent DQN tenants, residency capped at 64
//             (bounded memory is the point; a tight cap also keeps the
//             resident working set cache-friendly) — skipped below scale 0.5
//   mixed_4k  4000 QL/passive/random tenants — skipped below scale 0.5
//
// Headline metrics: serve_tenants_per_sec_* (completed tenants per wall
// second), serve_steady_slots_per_sec_* (aggregate slot rate sampled in the
// 25%..75% slice of the run, excluding ramp-up/drain), and
// serve_mux_efficiency_* = steady slots/sec ÷ (sequential single-tenant
// slots/sec × workers) — 1.0 would mean multiplexing is free.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "serve/engine.hpp"

using namespace ctj;
using bench::BenchReport;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One (time, slots) observation of the engine's global slot counter.
struct Sample {
  double t = 0.0;
  std::uint64_t slots = 0;
};

serve::JobSpec dqn_spec(std::uint64_t seed, double scale) {
  serve::JobSpec spec;
  spec.scheme = "dqn";
  spec.seed = seed;
  spec.replicas = 4;
  spec.history = 4;
  spec.hidden = {24, 24};
  spec.reward_window = 256;
  const auto rounds = static_cast<std::uint64_t>(512.0 * scale / 4.0);
  spec.slots = std::max<std::uint64_t>(1, rounds) * 4;
  return spec;
}

serve::JobSpec slot_spec(const char* scheme, std::uint64_t seed,
                         double scale) {
  serve::JobSpec spec;
  spec.scheme = scheme;
  spec.seed = seed;
  spec.reward_window = 64;
  spec.slots = std::max<std::uint64_t>(8, static_cast<std::uint64_t>(128.0 * scale));
  return spec;
}

struct ScenarioResult {
  double wall_seconds = 0.0;
  double tenants_per_sec = 0.0;
  double steady_slots_per_sec = 0.0;
  std::uint64_t slots_total = 0;
  std::uint64_t evictions = 0;
  std::uint64_t revivals = 0;
};

/// Run one fleet through a fresh engine, sampling the global slot counter so
/// the steady-state rate can be read off the middle of the run.
ScenarioResult run_scenario(const std::vector<serve::JobSpec>& jobs,
                            std::size_t workers, std::size_t max_resident,
                            const std::string& spool) {
  serve::ServeConfig config;
  config.workers = workers;
  config.max_resident = max_resident;
  config.quantum_slots = 256;
  config.spool_dir = spool;
  config.queue_capacity = 8192;

  ScenarioResult out;
  const double t0 = now_seconds();
  {
    serve::ServeEngine engine(config);
    std::atomic<bool> running{true};
    std::vector<Sample> samples;
    std::thread sampler([&] {
      while (running.load(std::memory_order_acquire)) {
        samples.push_back({now_seconds(), engine.slots_total()});
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    for (const auto& spec : jobs) engine.submit(spec);
    engine.wait_all();
    running.store(false, std::memory_order_release);
    sampler.join();

    const auto stats = engine.stats();
    out.slots_total = stats.slots_total;
    out.evictions = stats.evictions;
    out.revivals = stats.revivals;
    out.wall_seconds = now_seconds() - t0;
    out.tenants_per_sec =
        static_cast<double>(jobs.size()) / out.wall_seconds;

    // Steady-state rate: slope of the slot counter between 25% and 75% of
    // the total, so ramp-up and drain (when few tenants remain and workers
    // idle) don't flatter or penalize the figure.
    const auto lo = static_cast<std::uint64_t>(0.25 * static_cast<double>(out.slots_total));
    const auto hi = static_cast<std::uint64_t>(0.75 * static_cast<double>(out.slots_total));
    const Sample* first = nullptr;
    const Sample* last = nullptr;
    for (const auto& s : samples) {
      if (first == nullptr && s.slots >= lo) first = &s;
      if (s.slots <= hi) last = &s;
    }
    if (first != nullptr && last != nullptr && last->t > first->t &&
        last->slots > first->slots) {
      out.steady_slots_per_sec =
          static_cast<double>(last->slots - first->slots) /
          (last->t - first->t);
    } else {
      // Run too short to sample a middle slice — fall back to the average.
      out.steady_slots_per_sec =
          static_cast<double>(out.slots_total) / out.wall_seconds;
    }
  }
  std::filesystem::remove_all(spool);
  return out;
}

}  // namespace

int main() {
  BenchReport report("serve");
  const double scale = bench::bench_scale();
  const std::size_t workers = bench::bench_threads();
  report.set_metric(
      "host_cpus",
      JsonValue(static_cast<std::size_t>(std::thread::hardware_concurrency())));
  report.set_metric("workers", JsonValue(workers));

  const std::string spool_root =
      (std::filesystem::temp_directory_path() /
       ("ctj_bench_serve_" + std::to_string(::getpid())))
          .string();

  bench::print_header(
      "Fleet-scale serving (sharded multi-tenant ctj_serve engine)",
      "tenants/sec and aggregate slots/sec at 100/1k/4k concurrent tenants");

  // Baseline: the same DQN tenant run sequentially, no engine in the way.
  // Per-core multiplexing efficiency is measured against this, so its noise
  // propagates into every mux figure: one 8-run window on a busy host can
  // land on a frequency dip or a neighbour's burst and skew the whole
  // record. Three independent 8-run windows are measured and the median
  // window rate is the baseline — a single outlier window cannot move it.
  double single_run_slots_per_sec = 0.0;
  {
    // Warm-up run outside the timed windows: first-touch page faults and
    // frequency ramp-up otherwise land entirely on the first window.
    serve::TenantRunner::create(dqn_spec(8999, scale))->run(1u << 30);
    std::vector<double> window_rates;
    for (std::uint64_t w = 0; w < 3; ++w) {
      const double t0 = now_seconds();
      std::uint64_t slots = 0;
      for (std::uint64_t i = 0; i < 8; ++i) {
        auto runner =
            serve::TenantRunner::create(dqn_spec(9000 + 8 * w + i, scale));
        runner->run(1u << 30);
        slots += runner->slots_done();
      }
      window_rates.push_back(static_cast<double>(slots) /
                             (now_seconds() - t0));
      report.add_slots(static_cast<std::size_t>(slots));
    }
    std::sort(window_rates.begin(), window_rates.end());
    single_run_slots_per_sec = window_rates[window_rates.size() / 2];
  }
  report.set_metric("serve_single_run_slots_per_sec",
                    JsonValue(single_run_slots_per_sec));
  std::printf("sequential single-tenant baseline: %.0f slots/sec\n\n",
              single_run_slots_per_sec);

  TextTable table({"scenario", "tenants", "wall s", "tenants/s",
                   "steady slots/s", "mux eff", "evictions"});
  JsonValue rows = JsonValue::array();

  const auto record = [&](const std::string& tag, std::size_t tenants,
                          const ScenarioResult& r) {
    const double mux =
        r.steady_slots_per_sec /
        (single_run_slots_per_sec * static_cast<double>(workers));
    report.add_slots(static_cast<std::size_t>(r.slots_total));
    report.set_metric("serve_tenants_per_sec_" + tag,
                      JsonValue(r.tenants_per_sec));
    report.set_metric("serve_steady_slots_per_sec_" + tag,
                      JsonValue(r.steady_slots_per_sec));
    report.set_metric("serve_mux_efficiency_" + tag, JsonValue(mux));
    report.set_metric("serve_evictions_" + tag,
                      JsonValue(static_cast<std::size_t>(r.evictions)));
    JsonValue row = JsonValue::object();
    row["scenario"] = JsonValue(tag);
    row["tenants"] = JsonValue(tenants);
    row["wall_seconds"] = JsonValue(r.wall_seconds);
    row["tenants_per_sec"] = JsonValue(r.tenants_per_sec);
    row["steady_slots_per_sec"] = JsonValue(r.steady_slots_per_sec);
    row["mux_efficiency"] = JsonValue(mux);
    row["slots_total"] = JsonValue(static_cast<std::size_t>(r.slots_total));
    row["evictions"] = JsonValue(static_cast<std::size_t>(r.evictions));
    row["revivals"] = JsonValue(static_cast<std::size_t>(r.revivals));
    rows.push_back(std::move(row));
    table.add_row({tag, TextTable::fmt(static_cast<double>(tenants), 0),
                   TextTable::fmt(r.wall_seconds, 2),
                   TextTable::fmt(r.tenants_per_sec, 1),
                   TextTable::fmt(r.steady_slots_per_sec, 0),
                   TextTable::fmt(mux, 2),
                   TextTable::fmt(static_cast<double>(r.evictions), 0)});
  };

  {
    std::vector<serve::JobSpec> jobs;
    for (std::uint64_t i = 0; i < 100; ++i) jobs.push_back(dqn_spec(100 + i, scale));
    // Cap below the tenant count so full-scale runs exercise eviction
    // (smoke tenants finish inside one quantum, so residency never builds).
    record("100", jobs.size(),
           run_scenario(jobs, workers, 64, spool_root + "/dqn100"));
  }

  if (scale >= 0.5) {
    std::vector<serve::JobSpec> jobs;
    for (std::uint64_t i = 0; i < 1000; ++i) jobs.push_back(dqn_spec(2000 + i, scale));
    record("1k", jobs.size(),
           run_scenario(jobs, workers, 64, spool_root + "/dqn1k"));
  } else {
    std::printf("skipping dqn_1k (scale %.2f < 0.5)\n", scale);
  }

  if (scale >= 0.5) {
    std::vector<serve::JobSpec> jobs;
    const char* schemes[] = {"ql", "passive", "random"};
    for (std::uint64_t i = 0; i < 4000; ++i) {
      jobs.push_back(slot_spec(schemes[i % 3], 40000 + i, scale));
    }
    record("4k", jobs.size(),
           run_scenario(jobs, workers, 512, spool_root + "/mixed4k"));
  } else {
    std::printf("skipping mixed_4k (scale %.2f < 0.5)\n", scale);
  }

  table.print(std::cout);
  report.add_sweep("serve_scenarios", std::move(rows));
  report.write();
  return 0;
}
