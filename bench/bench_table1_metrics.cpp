// Table I — the five evaluation metrics (ST, AH, SH, AP, SP) instantiated on
// the paper's default configuration (L_J = 100, L_H = 50, sweep cycle 4,
// L^T_p in [6,15]) for every scheme, under both jammer modes. The eight
// (scheme, mode) cells are independent and fan out across
// CTJ_BENCH_THREADS cores; each work item constructs its own scheme so no
// state is shared between threads.
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/mdp_scheme.hpp"
#include "core/passive_fh.hpp"
#include "core/random_fh.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::core;

namespace {

constexpr std::size_t kNumSchemes = 4;
const char* const kSchemeNames[kNumSchemes] = {"PSV FH", "Rand FH",
                                               "MDP oracle", "RL FH (DQN)"};
const char* const kSchemeKeys[kNumSchemes] = {"passive_fh", "random_fh",
                                              "mdp_oracle", "rl_fh_dqn"};

MetricsReport eval_scheme(AntiJammingScheme& scheme, JammerPowerMode mode,
                          std::uint64_t seed) {
  auto env_config = EnvironmentConfig::defaults();
  env_config.mode = mode;
  env_config.seed = seed;
  CompetitionEnvironment env(env_config);
  return evaluate(scheme, env, eval_slots());
}

MetricsReport run_cell(std::size_t scheme_index, JammerPowerMode mode) {
  switch (scheme_index) {
    case 0: {
      PassiveFhScheme scheme{PassiveFhScheme::Config{}};
      return eval_scheme(scheme, mode, 301);
    }
    case 1: {
      RandomFhScheme scheme{RandomFhScheme::Config{}};
      return eval_scheme(scheme, mode, 301);
    }
    case 2: {
      MdpOracleScheme::Config oracle_config;
      oracle_config.params.mode = mode;
      MdpOracleScheme scheme(oracle_config);
      return eval_scheme(scheme, mode, 301);
    }
    default: {
      auto env_config = EnvironmentConfig::defaults();
      env_config.mode = mode;
      // One training run per jammer mode, and the cells run in parallel: the
      // checkpoint tag must be distinct per mode or the runs would race on
      // (and cross-resume) a single file.
      return run_rl_point(env_config, 301,
                          mode == JammerPowerMode::kMaxPower
                              ? "table1_rl_max"
                              : "table1_rl_rand");
    }
  }
}

void add_metrics_row(TextTable& table, const std::string& name,
                     const MetricsReport& m) {
  table.add_row({name, TextTable::fmt(100.0 * m.st, 1),
                 TextTable::fmt(100.0 * m.ah, 1),
                 TextTable::fmt(100.0 * m.sh, 1),
                 TextTable::fmt(100.0 * m.ap, 1),
                 TextTable::fmt(100.0 * m.sp, 1),
                 TextTable::fmt(m.mean_reward, 1)});
}

}  // namespace

int main() {
  std::cout << "Table I metrics on the default configuration "
               "(L_J=100, L_H=50, cycle 4, L_p in [6,15])\n"
            << "ST: success rate of transmission; AH/AP: adoption rates of "
               "FH/PC; SH/SP: success rates of FH/PC\n"
            << "threads: " << bench_threads() << "\n";
  BenchReport report("table1_metrics");

  const JammerPowerMode modes[] = {JammerPowerMode::kMaxPower,
                                   JammerPowerMode::kRandomPower};
  // Item layout: mode-major, scheme-minor — index alone determines the cell.
  const auto cells = parallel_map(
      2 * kNumSchemes,
      [&](std::size_t item) {
        return run_cell(item % kNumSchemes, modes[item / kNumSchemes]);
      },
      bench_threads());

  for (std::size_t mi = 0; mi < 2; ++mi) {
    std::cout << "\n=== jammer mode: " << to_string(modes[mi]) << " ===\n";
    TextTable table({"scheme", "ST (%)", "AH (%)", "SH (%)", "AP (%)",
                     "SP (%)", "mean reward"});
    JsonValue rows = JsonValue::array();
    for (std::size_t si = 0; si < kNumSchemes; ++si) {
      const auto& m = cells[mi * kNumSchemes + si];
      add_metrics_row(table, kSchemeNames[si], m);
      JsonValue row = JsonValue::object();
      row["scheme"] = kSchemeKeys[si];
      row["metrics"] = metrics_json(m);
      rows.push_back(std::move(row));
      // The DQN cell trains before evaluating; the fixed schemes only
      // evaluate.
      report.add_slots(eval_slots() + (si == 3 ? train_slots() : 0));
    }
    table.print(std::cout);
    report.add_sweep(mi == 0 ? "max_power" : "random_power", std::move(rows));
  }
  std::cout << "\nexpected shape: RL FH approaches the MDP oracle and "
               "clearly beats PSV/Rand FH on ST (paper: ST ~78% with "
               "jamming present)\n";
  return 0;
}
