// Table I — the five evaluation metrics (ST, AH, SH, AP, SP) instantiated on
// the paper's default configuration (L_J = 100, L_H = 50, sweep cycle 4,
// L^T_p in [6,15]) for every scheme, under both jammer modes.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/mdp_scheme.hpp"
#include "core/passive_fh.hpp"
#include "core/random_fh.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::core;

namespace {

MetricsReport run_scheme(AntiJammingScheme& scheme, JammerPowerMode mode,
                         std::uint64_t seed) {
  auto env_config = EnvironmentConfig::defaults();
  env_config.mode = mode;
  env_config.seed = seed;
  CompetitionEnvironment env(env_config);
  return evaluate(scheme, env, eval_slots());
}

void add_metrics_row(TextTable& table, const std::string& name,
                     const MetricsReport& m) {
  table.add_row({name, TextTable::fmt(100.0 * m.st, 1),
                 TextTable::fmt(100.0 * m.ah, 1),
                 TextTable::fmt(100.0 * m.sh, 1),
                 TextTable::fmt(100.0 * m.ap, 1),
                 TextTable::fmt(100.0 * m.sp, 1),
                 TextTable::fmt(m.mean_reward, 1)});
}

}  // namespace

int main() {
  std::cout << "Table I metrics on the default configuration "
               "(L_J=100, L_H=50, cycle 4, L_p in [6,15])\n"
            << "ST: success rate of transmission; AH/AP: adoption rates of "
               "FH/PC; SH/SP: success rates of FH/PC\n";

  for (JammerPowerMode mode :
       {JammerPowerMode::kMaxPower, JammerPowerMode::kRandomPower}) {
    std::cout << "\n=== jammer mode: " << to_string(mode) << " ===\n";
    TextTable table({"scheme", "ST (%)", "AH (%)", "SH (%)", "AP (%)",
                     "SP (%)", "mean reward"});

    PassiveFhScheme passive{PassiveFhScheme::Config{}};
    add_metrics_row(table, "PSV FH", run_scheme(passive, mode, 301));

    RandomFhScheme random_scheme{RandomFhScheme::Config{}};
    add_metrics_row(table, "Rand FH", run_scheme(random_scheme, mode, 301));

    MdpOracleScheme::Config oracle_config;
    oracle_config.params.mode = mode;
    MdpOracleScheme oracle(oracle_config);
    add_metrics_row(table, "MDP oracle", run_scheme(oracle, mode, 301));

    auto env_config = EnvironmentConfig::defaults();
    env_config.mode = mode;
    add_metrics_row(table, "RL FH (DQN)", run_rl_point(env_config, 301));

    table.print(std::cout);
  }
  std::cout << "\nexpected shape: RL FH approaches the MDP oracle and "
               "clearly beats PSV/Rand FH on ST (paper: ST ~78% with "
               "jamming present)\n";
  return 0;
}
