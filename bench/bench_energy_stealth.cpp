// Extension benches grounded in the paper's discussion sections:
//  * energy vs the transmit-power range (Sec. IV.C.2's closing paragraph:
//    shifting L^T_p up lowers FH adoption and can save energy per delivered
//    slot) — the DQN is retrained per point and its policy is metered by
//    the energy model; the five points fan out across CTJ_BENCH_THREADS
//    cores;
//  * stealthiness comparison of the three jamming-signal types
//    (Sec. II.B): how often the victim can *attribute* its losses to a
//    jammer, per signal type (sequential: the three detectability runs
//    share one RNG stream by design).
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/energy.hpp"
#include "core/trainer.hpp"
#include "jammer/stealth.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::core;

namespace {

struct EnergyPoint {
  MetricsReport metrics;
  EnergyReport energy;
};

EnergyPoint run_energy_point(double lp_lower) {
  auto env_config = env_with_lp_lower(lp_lower, JammerPowerMode::kRandomPower);
  env_config.seed = 7;

  DqnScheme::Config scheme_config;
  scheme_config.num_channels = env_config.num_channels;
  scheme_config.num_power_levels = env_config.num_power_levels();
  scheme_config.history = 4;
  scheme_config.hidden = {32, 32};
  scheme_config.epsilon_decay_steps = train_slots() / 4;
  scheme_config.seed = 507;
  DqnScheme scheme(scheme_config);

  CompetitionEnvironment train_env(env_config);
  TrainerConfig trainer;
  trainer.max_slots = train_slots();
  trainer.checkpoint =
      checkpoint_options("energy_lp" + std::to_string(static_cast<int>(lp_lower)));
  train(scheme, train_env, trainer);
  scheme.set_training(false);
  scheme.reset();

  env_config.seed = 1007;
  CompetitionEnvironment env(env_config);
  MetricsAccumulator metrics;
  EnergyAccumulator energy;
  const double slot_s = 3.0;
  for (std::size_t slot = 0; slot < eval_slots(); ++slot) {
    const SchemeDecision d = scheme.decide();
    const EnvStep step = env.step(d.channel, d.power_index);
    SlotFeedback fb;
    fb.success = step.success;
    fb.jammed = step.outcome != SlotOutcome::kClear;
    fb.channel = step.channel;
    fb.power_index = d.power_index;
    fb.reward = step.reward;
    scheme.feedback(fb);
    metrics.record(step, d.power_index);
    energy.record_slot(env_config.tx_levels[d.power_index], slot_s,
                       step.hopped);
  }
  return {metrics.report(), energy.report()};
}

}  // namespace

int main() {
  std::cout << "Energy & stealth extension benches\n"
            << "threads: " << bench_threads() << "\n";
  BenchReport report("energy_stealth");

  {
    print_header(
        "energy vs lower bound of L^T_p (DQN, random-power jammer)",
        "Sec. IV.C.2: raising the power range trades FH (hop energy) for PC; "
        "energy per *successful* slot is the figure of merit");
    const double lowers[] = {6.0, 8.0, 10.0, 12.0, 14.0};
    const auto points = parallel_map(
        5, [&](std::size_t i) { return run_energy_point(lowers[i]); },
        bench_threads());
    TextTable table({"L_p lower", "ST (%)", "AH (%)", "AP (%)", "mean mW",
                     "mJ/success", "battery (h)"});
    JsonValue rows = JsonValue::array();
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& point = points[i];
      const double successes =
          point.metrics.st * static_cast<double>(point.metrics.slots);
      const double mj_per_success =
          successes > 0 ? point.energy.total_mj / successes : 0.0;
      table.add_row({lowers[i], 100 * point.metrics.st,
                     100 * point.metrics.ah, 100 * point.metrics.ap,
                     point.energy.mean_mw, mj_per_success,
                     point.energy.battery_life_hours});
      JsonValue row = JsonValue::object();
      row["lp_lower"] = lowers[i];
      row["metrics"] = metrics_json(point.metrics);
      row["mean_mw"] = point.energy.mean_mw;
      row["mj_per_success"] = mj_per_success;
      row["battery_life_hours"] = point.energy.battery_life_hours;
      rows.push_back(std::move(row));
      report.add_slots(train_slots() + eval_slots());
    }
    table.print(std::cout);
    report.add_sweep("energy_vs_lp_lower", std::move(rows));
  }

  {
    print_header("stealthiness by jamming-signal type (Sec. II.B)",
                 "EmuBee: effective yet unattributable; ZigBee: effective "
                 "but loggable frames; WiFi: invisible to ZigBee monitors "
                 "but also weak");
    Rng rng(42);
    TextTable table({"signal", "P(energy det.)", "P(frame det.)",
                     "P(error-rate det.)", "P(attributable)"});
    JsonValue rows = JsonValue::array();
    for (auto type : {channel::JammingSignalType::kEmuBee,
                      channel::JammingSignalType::kZigbee,
                      channel::JammingSignalType::kWifi}) {
      const auto r = jammer::simulate_detectability(type, 50000, rng);
      table.add_row({channel::to_string(type), TextTable::fmt(r.p_energy, 3),
                     TextTable::fmt(r.p_frame, 3),
                     TextTable::fmt(r.p_error_rate, 3),
                     TextTable::fmt(r.p_attributable, 3)});
      JsonValue row = JsonValue::object();
      row["signal"] = channel::to_string(type);
      row["p_energy"] = r.p_energy;
      row["p_frame"] = r.p_frame;
      row["p_error_rate"] = r.p_error_rate;
      row["p_attributable"] = r.p_attributable;
      rows.push_back(std::move(row));
      report.add_slots(50000);
    }
    table.print(std::cout);
    report.add_sweep("stealth_by_signal_type", std::move(rows));
  }
  return 0;
}
