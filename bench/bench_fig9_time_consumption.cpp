// Fig. 9 — time consumption of the hub's four functions (DQN decision, data
// round trip / ACK, data processing, per-node polling), 100 trials each, and
// the FH negotiation time as the network grows from 1 to 10 nodes.
//
// Two layers of evidence: (1) the calibrated timing model reproduces the
// paper's means (9 ms / 0.9 ms / 0.6 ms / 13.1 ms); (2) we *measure* our own
// DQN's inference wall-clock to show a software DQN of the paper's size fits
// comfortably inside the 9 ms budget the TI LaunchPad needed.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/rl_fh.hpp"
#include "net/timing.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::net;

int main() {
  BenchReport report("fig9_time_consumption");
  TimingModel timing;
  Rng rng(99);

  std::cout << "Fig. 9(a) reproduction: time consumption of typical "
               "functions (100 trials each)\n"
            << "paper means: DQN 9 ms, ACK round trip 0.9 ms, processing "
               "0.6 ms, polling 13.1 ms/node\n\n";
  {
    TextTable table({"function", "mean (ms)", "min (ms)", "max (ms)"});
    const std::pair<std::string, double> functions[] = {
        {"DQN decision", timing.dqn_decision_s},
        {"ACK round trip", timing.round_trip_s},
        {"data processing", timing.processing_s},
        {"polling (per node)", timing.polling_per_node_s},
    };
    JsonValue rows = JsonValue::array();
    for (const auto& [name, nominal] : functions) {
      RunningStats stats;
      for (int trial = 0; trial < 100; ++trial) {
        stats.add(timing.sample(nominal, rng) * 1e3);
      }
      table.add_row({name, TextTable::fmt(stats.mean(), 2),
                     TextTable::fmt(stats.min(), 2),
                     TextTable::fmt(stats.max(), 2)});
      JsonValue row = JsonValue::object();
      row["function"] = name;
      row["mean_ms"] = stats.mean();
      row["min_ms"] = stats.min();
      row["max_ms"] = stats.max();
      rows.push_back(std::move(row));
    }
    report.add_sweep("function_timings", std::move(rows));
    table.print(std::cout);
  }

  {
    std::cout << "\n=== measured: our DQN inference (Fig. 4 architecture, "
                 "10.5k params) ===\n";
    core::DqnScheme::Config config;
    config.history = 8;
    config.hidden = {45, 45};
    core::DqnScheme scheme(config);
    scheme.set_training(false);
    RunningStats stats;
    for (int trial = 0; trial < 100; ++trial) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)scheme.decide();
      stats.add(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
      core::SlotFeedback fb;
      fb.success = true;
      scheme.feedback(fb);
    }
    std::cout << "mean " << TextTable::fmt(stats.mean(), 4) << " ms, max "
              << TextTable::fmt(stats.max(), 4)
              << " ms (paper hardware budget: 9 ms)\n";
    report.set_metric("dqn_inference_mean_ms", JsonValue(stats.mean()));
    report.set_metric("dqn_inference_max_ms", JsonValue(stats.max()));
  }

  std::cout << "\nFig. 9(b) reproduction: FH negotiation time vs network "
               "size (1..10 nodes, 300 trials each)\n"
            << "paper: grows with node count; multi-second tail when nodes "
               "must be recovered over the control channel\n\n";
  {
    TextTable table({"# nodes", "mean (s)", "p95 (s)", "max (s)",
                     "mean lost nodes"});
    JsonValue rows = JsonValue::array();
    for (int nodes = 1; nodes <= 10; ++nodes) {
      RunningStats stats;
      RunningStats lost_stats;
      std::vector<double> samples;
      for (int trial = 0; trial < 300; ++trial) {
        int lost = 0;
        const double t = timing.negotiation_time_s(nodes, rng, &lost);
        stats.add(t);
        lost_stats.add(lost);
        samples.push_back(t);
      }
      std::sort(samples.begin(), samples.end());
      const double p95 = samples[static_cast<std::size_t>(0.95 * samples.size())];
      table.add_row({static_cast<double>(nodes), stats.mean(), p95,
                     stats.max(), lost_stats.mean()});
      JsonValue row = JsonValue::object();
      row["nodes"] = nodes;
      row["mean_s"] = stats.mean();
      row["p95_s"] = p95;
      row["max_s"] = stats.max();
      row["mean_lost_nodes"] = lost_stats.mean();
      rows.push_back(std::move(row));
    }
    report.add_sweep("negotiation_time", std::move(rows));
    table.print(std::cout);
  }
  return 0;
}
