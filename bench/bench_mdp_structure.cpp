// Ablation bench for the MDP structure results (Sec. III.B): prints the
// Q*(n, stay) / Q*(n, hop) curves (Lemmas III.2–III.3), the threshold n* of
// the optimal policy (Theorem III.4), and how n* moves with L_J, L_H and the
// sweep cycle (Theorem III.5).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "mdp/analysis.hpp"

using namespace ctj;
using namespace ctj::bench;
using namespace ctj::mdp;

namespace {

AntijamParams base_params() {
  auto p = AntijamParams::defaults();
  p.sweep_cycle = 8;  // more n-states make the curves visible
  p.mode = JammerPowerMode::kRandomPower;
  return p;
}

}  // namespace

int main() {
  BenchReport report("mdp_structure");
  std::cout << "MDP structure (Sec. III.B): Q-curve monotonicity and the "
               "threshold policy\n";

  {
    const AntijamParams params = base_params();
    const AntijamMdp model(params);
    const Solution sol = solve(model);
    std::cout << "\n=== Q*(n, stay) vs Q*(n, hop), tx power level 10 "
                 "(cycle 8, random mode) ===\n";
    TextTable table({"n", "Q(n, stay)", "Q(n, hop)", "optimal"});
    const QCurves curves = q_curves(model, sol, 9);
    JsonValue rows = JsonValue::array();
    for (std::size_t i = 0; i < curves.stay.size(); ++i) {
      table.add_row({static_cast<std::string>(TextTable::fmt(i + 1.0, 0)),
                     TextTable::fmt(curves.stay[i], 2),
                     TextTable::fmt(curves.hop[i], 2),
                     curves.hop[i] >= curves.stay[i] ? "hop" : "stay"});
      JsonValue row = JsonValue::object();
      row["n"] = i + 1;
      row["q_stay"] = curves.stay[i];
      row["q_hop"] = curves.hop[i];
      rows.push_back(std::move(row));
    }
    report.add_sweep("q_curves", std::move(rows));
    table.print(std::cout);
    std::cout << "Lemma III.2 (stay decreasing): "
              << (stay_curve_decreasing(curves) ? "holds" : "VIOLATED")
              << "; Lemma III.3 (hop increasing): "
              << (hop_curve_increasing(curves) ? "holds" : "VIOLATED")
              << "; threshold form (Thm. III.4): "
              << (policy_has_threshold_form(model, sol) ? "holds" : "VIOLATED")
              << "; n* = " << threshold_n_star(model, sol) << "\n";
    // 0/1 rather than bool: schema v1 metrics are numbers or strings, and
    // booleans serialize as neither.
    report.set_metric("stay_curve_decreasing",
                      JsonValue(stay_curve_decreasing(curves) ? 1 : 0));
    report.set_metric("hop_curve_increasing",
                      JsonValue(hop_curve_increasing(curves) ? 1 : 0));
    report.set_metric("policy_has_threshold_form",
                      JsonValue(policy_has_threshold_form(model, sol) ? 1 : 0));
    report.set_metric("n_star", JsonValue(threshold_n_star(model, sol)));
  }

  {
    std::cout << "\n=== Thm. III.5: n* vs L_J (decreasing) ===\n";
    TextTable table({"L_J", "n*"});
    JsonValue rows = JsonValue::array();
    for (double lj : {10.0, 30.0, 60.0, 100.0, 200.0, 400.0}) {
      auto params = base_params();
      params.loss_jam = lj;
      const AntijamMdp model(params);
      const auto n_star = threshold_n_star(model, solve(model));
      table.add_row({lj, static_cast<double>(n_star)});
      JsonValue row = JsonValue::object();
      row["lj"] = lj;
      row["n_star"] = n_star;
      rows.push_back(std::move(row));
    }
    report.add_sweep("n_star_vs_lj", std::move(rows));
    table.print(std::cout);
  }

  {
    std::cout << "\n=== Thm. III.5: n* vs L_H (increasing) ===\n";
    TextTable table({"L_H", "n*"});
    JsonValue rows = JsonValue::array();
    for (double lh : {5.0, 20.0, 50.0, 100.0, 200.0, 400.0}) {
      auto params = base_params();
      params.loss_hop = lh;
      const AntijamMdp model(params);
      const auto n_star = threshold_n_star(model, solve(model));
      table.add_row({lh, static_cast<double>(n_star)});
      JsonValue row = JsonValue::object();
      row["lh"] = lh;
      row["n_star"] = n_star;
      rows.push_back(std::move(row));
    }
    report.add_sweep("n_star_vs_lh", std::move(rows));
    table.print(std::cout);
  }

  {
    std::cout << "\n=== Thm. III.5: n* vs sweep cycle (increasing) ===\n";
    TextTable table({"cycle", "n*"});
    JsonValue rows = JsonValue::array();
    for (int cycle : {2, 4, 6, 8, 12, 16}) {
      auto params = base_params();
      params.sweep_cycle = cycle;
      const AntijamMdp model(params);
      const auto n_star = threshold_n_star(model, solve(model));
      table.add_row({static_cast<double>(cycle), static_cast<double>(n_star)});
      JsonValue row = JsonValue::object();
      row["cycle"] = cycle;
      row["n_star"] = n_star;
      rows.push_back(std::move(row));
    }
    report.add_sweep("n_star_vs_cycle", std::move(rows));
    table.print(std::cout);
  }
  return 0;
}
