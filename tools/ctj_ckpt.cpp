// ctj_ckpt — inspect, validate and diff CTJS checkpoint files.
//
//   ctj_ckpt info   <file>          chunk table, META keys, tensor shapes
//   ctj_ckpt verify <file>...       full structural + CRC validation;
//                                   exit 1 on the first invalid file
//   ctj_ckpt diff   <a> <b>         chunk-level comparison; weight tensors
//                                   are compared element-wise (max |Δ|)
//
// The tool links only the container layer (ctj_io): tensor chunks are
// self-describing (io/tensors.hpp), so shapes and diffs need no knowledge
// of the network that wrote them.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "io/container.hpp"
#include "io/tensors.hpp"
#include "jammer/registry.hpp"

namespace {

using ctj::io::ByteReader;
using ctj::io::ChunkInfo;
using ctj::io::ContainerReader;
using ctj::io::IoError;
using ctj::io::NamedTensor;

// Chunks whose payload is (or ends in) a named-tensor blob.
bool is_tensor_chunk(const std::string& tag) {
  return tag == "NETONLN" || tag == "NETTGT" || tag == "ADAMOPT";
}

// Decode the tensor blob of a chunk; ADAMOPT carries a u64 step count first.
std::vector<NamedTensor> tensors_of(const ContainerReader& in,
                                    const std::string& tag,
                                    std::uint64_t* adam_step = nullptr) {
  ByteReader r(in.chunk(tag.c_str()));
  if (tag == "ADAMOPT") {
    const std::uint64_t step = r.u64();
    if (adam_step) *adam_step = step;
  }
  std::vector<NamedTensor> tensors = ctj::io::read_tensors(r);
  r.expect_end();
  return tensors;
}

int cmd_info(const std::string& path) {
  const ContainerReader in = ContainerReader::from_file(path);
  std::printf("%s: CTJS v%u, %zu chunks\n", path.c_str(),
              static_cast<unsigned>(in.format_version()), in.chunks().size());
  std::printf("  %-8s %12s %10s  %s\n", "tag", "bytes", "crc32", "offset");
  for (const ChunkInfo& chunk : in.chunks()) {
    std::printf("  %-8s %12llu 0x%08x  %llu\n", chunk.tag.c_str(),
                static_cast<unsigned long long>(chunk.size), chunk.crc32,
                static_cast<unsigned long long>(chunk.offset));
  }
  if (in.has_chunk("META")) {
    std::printf("META:\n");
    for (const auto& [key, value] : ctj::io::decode_meta(in.chunk("META"))) {
      std::printf("  %s = %s\n", key.c_str(), value.c_str());
    }
  }
  if (in.has_chunk("JAMRCFG ")) {
    ByteReader r(in.chunk("JAMRCFG "));
    const ctj::jammer::JammerSpec spec = ctj::jammer::JammerSpec::decode(r);
    r.expect_end();
    std::printf("JAMRCFG:\n");
    std::printf("  archetype = %s\n", spec.archetype.c_str());
    std::printf("  K = %d, m = %d, %zu power levels, mode = %s\n",
                spec.num_channels, spec.channels_per_sweep,
                spec.power_levels.size(), ctj::to_string(spec.mode));
    if (spec.archetype == "adaptive") {
      std::printf("  exploit_probability = %g, decay = %g\n",
                  spec.exploit_probability, spec.decay);
    } else if (spec.archetype == "reactive") {
      std::printf("  dwell_slots = %d\n", spec.dwell_slots);
    } else if (spec.archetype == "duty_cycle") {
      std::printf("  energy_capacity = %g, emit_cost = %g, "
                  "recharge_per_slot = %g\n",
                  spec.energy_capacity, spec.emit_cost,
                  spec.recharge_per_slot);
    } else if (spec.archetype == "colluding") {
      std::printf("  num_colluders = %d\n", spec.num_colluders);
    } else if (spec.archetype == "learned") {
      std::printf("  learn_history = %d, learn_hidden = %d, learn_rate = %g\n"
                  "  learn_epsilon_decay = %d, learn_emit_cost = %g\n",
                  spec.learn_history, spec.learn_hidden, spec.learn_rate,
                  spec.learn_epsilon_decay, spec.learn_emit_cost);
    }
  }
  // Arena checkpoints: the progress record and the opponent pool store their
  // summary counters up front so a container-level tool can print them
  // without the arena library.
  if (in.has_chunk("ARENAPRG")) {
    ByteReader r(in.chunk("ARENAPRG"));
    const unsigned version = r.u8();
    const std::uint64_t generations_done = r.u64();
    const std::uint64_t slots_total = r.u64();
    std::printf("ARENAPRG:\n");
    std::printf("  version = %u, generations_done = %llu, slots_total = "
                "%llu\n",
                version, static_cast<unsigned long long>(generations_done),
                static_cast<unsigned long long>(slots_total));
  }
  if (in.has_chunk("OPPPOOL ")) {
    ByteReader r(in.chunk("OPPPOOL "));
    const std::uint64_t jammers = r.u64();
    const std::uint64_t defenders = r.u64();
    std::printf("OPPPOOL:\n");
    std::printf("  %llu pooled jammers, %llu pooled defender policies\n",
                static_cast<unsigned long long>(jammers),
                static_cast<unsigned long long>(defenders));
  }
  if (in.has_chunk("JAMPOLCY")) {
    std::printf("JAMPOLCY:\n");
    std::printf("  learned-jammer state, %zu bytes (nested agent container "
                "+ observation window)\n",
                in.chunk("JAMPOLCY").size());
  }
  for (const ChunkInfo& chunk : in.chunks()) {
    if (!is_tensor_chunk(chunk.tag)) continue;
    std::uint64_t adam_step = 0;
    const std::vector<NamedTensor> tensors =
        tensors_of(in, chunk.tag, &adam_step);
    std::printf("%s:", chunk.tag.c_str());
    if (chunk.tag == "ADAMOPT") {
      std::printf(" step=%llu", static_cast<unsigned long long>(adam_step));
    }
    std::printf(" %zu tensors\n", tensors.size());
    for (const NamedTensor& tensor : tensors) {
      std::printf("  %-12s f64[%llu x %llu]\n", tensor.name.c_str(),
                  static_cast<unsigned long long>(tensor.rows),
                  static_cast<unsigned long long>(tensor.cols));
    }
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    // from_file re-checks everything: magic, header CRC, version, declared
    // file size, chunk bounds and every chunk's CRC over tag + payload. Any
    // single flipped byte lands in one of those checks.
    const ContainerReader in = ContainerReader::from_file(path);
    std::printf("%s: OK (v%u, %zu chunks)\n", path.c_str(),
                static_cast<unsigned>(in.format_version()), in.chunks().size());
  }
  return 0;
}

const ChunkInfo* find_chunk(const ContainerReader& in, const std::string& tag) {
  for (const ChunkInfo& chunk : in.chunks()) {
    if (chunk.tag == tag) return &chunk;
  }
  return nullptr;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const ContainerReader a = ContainerReader::from_file(path_a);
  const ContainerReader b = ContainerReader::from_file(path_b);
  bool differ = false;

  std::set<std::string> tags;
  for (const ChunkInfo& chunk : a.chunks()) tags.insert(chunk.tag);
  for (const ChunkInfo& chunk : b.chunks()) tags.insert(chunk.tag);

  for (const std::string& tag : tags) {
    const ChunkInfo* in_a = find_chunk(a, tag);
    const ChunkInfo* in_b = find_chunk(b, tag);
    if (!in_a || !in_b) {
      std::printf("%-8s only in %s\n", tag.c_str(),
                  (in_a ? path_a : path_b).c_str());
      differ = true;
      continue;
    }
    if (in_a->crc32 == in_b->crc32 && in_a->size == in_b->size) {
      std::printf("%-8s identical (%llu bytes)\n", tag.c_str(),
                  static_cast<unsigned long long>(in_a->size));
      continue;
    }
    differ = true;
    if (!is_tensor_chunk(tag)) {
      std::printf("%-8s differs (%llu vs %llu bytes)\n", tag.c_str(),
                  static_cast<unsigned long long>(in_a->size),
                  static_cast<unsigned long long>(in_b->size));
      continue;
    }
    // Element-wise tensor comparison.
    const std::vector<NamedTensor> ta = tensors_of(a, tag);
    const std::vector<NamedTensor> tb = tensors_of(b, tag);
    std::map<std::string, const NamedTensor*> by_name;
    for (const NamedTensor& tensor : tb) by_name[tensor.name] = &tensor;
    std::printf("%-8s differs:\n", tag.c_str());
    for (const NamedTensor& ours : ta) {
      const auto it = by_name.find(ours.name);
      if (it == by_name.end()) {
        std::printf("  %-12s only in %s\n", ours.name.c_str(), path_a.c_str());
        continue;
      }
      const NamedTensor& theirs = *it->second;
      by_name.erase(it);
      if (ours.rows != theirs.rows || ours.cols != theirs.cols) {
        std::printf("  %-12s shape [%llu x %llu] vs [%llu x %llu]\n",
                    ours.name.c_str(),
                    static_cast<unsigned long long>(ours.rows),
                    static_cast<unsigned long long>(ours.cols),
                    static_cast<unsigned long long>(theirs.rows),
                    static_cast<unsigned long long>(theirs.cols));
        continue;
      }
      double max_abs = 0.0;
      std::size_t at = 0;
      for (std::size_t i = 0; i < ours.data.size(); ++i) {
        const double d = std::fabs(ours.data[i] - theirs.data[i]);
        if (d > max_abs) {
          max_abs = d;
          at = i;
        }
      }
      if (max_abs == 0.0) {
        std::printf("  %-12s equal\n", ours.name.c_str());
      } else {
        std::printf("  %-12s max |delta| = %.17g at [%zu, %zu]\n",
                    ours.name.c_str(), max_abs, at / ours.cols,
                    at % ours.cols);
      }
    }
    for (const auto& [name, tensor] : by_name) {
      (void)tensor;
      std::printf("  %-12s only in %s\n", name.c_str(), path_b.c_str());
    }
  }
  return differ ? 2 : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ctj_ckpt info <file>\n"
               "       ctj_ckpt verify <file>...\n"
               "       ctj_ckpt diff <a> <b>\n"
               "\n"
               "exit: 0 ok / identical, 1 invalid file or usage error,\n"
               "      2 files differ (diff)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "info" && argc == 3) return cmd_info(argv[2]);
    if (command == "verify" && argc >= 3) {
      return cmd_verify(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (command == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
  } catch (const IoError& error) {
    std::fprintf(stderr, "ctj_ckpt: %s\n", error.what());
    return 1;
  }
  return usage();
}
