#!/usr/bin/env python3
"""Validate BENCH_*.json perf records against schema v1 (see bench_util.hpp).

Usage: validate_bench_schema.py FILE [FILE...]

Stdlib only; exits non-zero and prints one line per violation when any file
fails. Used by CI after the bench_micro smoke run so a harness regression
that silently stops emitting (or emits malformed) perf records fails the
build instead of going unnoticed.
"""

import json
import numbers
import sys

SIMD_LEVELS = {"scalar", "avx2", "avx512"}


def _is_number(value):
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def validate(doc, errors):
    """Append one message per schema violation found in `doc` to `errors`."""
    if not isinstance(doc, dict):
        errors.append("top-level JSON value is not an object")
        return

    def require(key, pred, desc):
        if key not in doc:
            errors.append(f"missing required key '{key}'")
        elif not pred(doc[key]):
            errors.append(f"'{key}' is not {desc} (got {doc[key]!r})")

    require("schema_version", lambda v: v == 1, "the integer 1")
    require("bench", lambda v: isinstance(v, str) and v, "a non-empty string")
    require("git_rev", lambda v: isinstance(v, str) and v, "a non-empty string")
    require("simd_level", lambda v: v in SIMD_LEVELS,
            "one of " + "/".join(sorted(SIMD_LEVELS)))
    require("threads", lambda v: isinstance(v, int) and v > 0,
            "a positive integer")
    require("scale", lambda v: _is_number(v) and v > 0, "a positive number")
    # Every bench binary runs for at least milliseconds; a sub-millisecond
    # wall clock means the report was constructed right before being written
    # instead of at program start (the bug the pre-overhaul micro record
    # shipped with: wall_seconds ≈ 3e-5).
    require("wall_seconds", lambda v: _is_number(v) and v >= 1e-3,
            "a number >= 1e-3 (whole-binary wall clock)")
    require("simulated_slots", lambda v: isinstance(v, int) and v >= 0,
            "a non-negative integer")
    require("slots_per_second", lambda v: _is_number(v) and v >= 0,
            "a non-negative number")

    # Cross-field consistency: slots_per_second is defined as
    # simulated_slots / wall_seconds, so the three must agree; zero
    # throughput with nonzero slots (or vice versa) means the counters were
    # never wired up.
    wall = doc.get("wall_seconds")
    slots = doc.get("simulated_slots")
    sps = doc.get("slots_per_second")
    if _is_number(wall) and wall > 0 and isinstance(slots, int) \
            and _is_number(sps):
        if (slots > 0) != (sps > 0):
            errors.append(
                f"simulated_slots={slots} but slots_per_second={sps}: "
                "one is zero and the other is not")
        elif slots > 0:
            expected = slots / wall
            if abs(sps - expected) > 0.05 * expected:
                errors.append(
                    f"slots_per_second={sps} inconsistent with "
                    f"simulated_slots/wall_seconds={expected:.6g}")

    # The micro record drives the environment in several benches; a full
    # (unfiltered) run must therefore report simulated slots. Filtered smoke
    # runs that skip the env benches simply lack the metric and stay exempt.
    metrics_obj = doc.get("metrics")
    if doc.get("bench") == "micro" and isinstance(metrics_obj, dict) \
            and "BM_EnvironmentStep_ns" in metrics_obj \
            and isinstance(slots, int) and slots == 0:
        errors.append(
            "micro record measured BM_EnvironmentStep but reports "
            "simulated_slots=0 (slot counting is broken)")

    # The train and serve records scale their headline throughput with the
    # host's core count, so a record without host_cpus cannot be compared
    # across machines; require it where it matters instead of schema-wide so
    # older single-threaded bench records stay valid.
    if doc.get("bench") in ("train", "serve"):
        host_cpus = metrics_obj.get("host_cpus") \
            if isinstance(metrics_obj, dict) else None
        if not (isinstance(host_cpus, int)
                and not isinstance(host_cpus, bool) and host_cpus > 0):
            errors.append(
                f"bench {doc.get('bench')!r} requires a positive integer "
                f"'metrics.host_cpus' (got {host_cpus!r})")

    # Optional sections.
    sweeps = doc.get("sweeps")
    if sweeps is not None:
        if not isinstance(sweeps, dict):
            errors.append("'sweeps' is not an object")
        else:
            for name, rows in sweeps.items():
                if not isinstance(rows, list) or not all(
                        isinstance(r, dict) for r in rows):
                    errors.append(f"sweep '{name}' is not an array of objects")

    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            errors.append("'metrics' is not an object")
        else:
            for key, value in metrics.items():
                if not (_is_number(value) or isinstance(value, str)):
                    errors.append(
                        f"metric '{key}' is neither a number nor a string")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = []
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(str(exc))
            doc = None
        if doc is not None:
            validate(doc, errors)
        if errors:
            failed = True
            for message in errors:
                print(f"{path}: {message}")
        else:
            print(f"{path}: ok (bench={doc['bench']}, "
                  f"git_rev={doc['git_rev']}, simd={doc['simd_level']})")
            # A committed perf record should come from a clean tree — a
            # "-dirty" rev measured something no commit corresponds to.
            # Warning only: local iteration legitimately produces dirty
            # records, they just should not be checked in.
            rev = doc.get("git_rev")
            if isinstance(rev, str) and rev.endswith("-dirty"):
                print(f"{path}: WARNING git_rev '{rev}' is from a dirty "
                      "tree; regenerate from a clean checkout before "
                      "committing this record")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
