// ctj_cli — flag-driven experiment runner for the anti-jamming library.
//
// Runs any scheme against either the slot-level competition environment or
// the full field simulator, with the paper's parameters exposed as flags:
//
//   ./build/examples/ctj_cli --scheme=rl --mode=max --slots=20000
//   ./build/examples/ctj_cli --scheme=oracle --mode=random --lj=60 --lh=20
//   ./build/examples/ctj_cli --scheme=passive --field --slot-duration=3
//   ./build/examples/ctj_cli --scheme=rl --field --signal=wifi --train=30000
//
// Subcommands for persistent models (CTJS checkpoints, see src/io):
//
//   ./build/examples/ctj_cli train --out=model.ctjs --checkpoint-every=5000
//   ./build/examples/ctj_cli train --out=model.ctjs --resume   # pick up a
//                                                    # killed run, bit-identical
//   ./build/examples/ctj_cli eval --model=model.ctjs --slots=20000
//
// Subcommand for the self-play arena (src/arena, ctj_arena):
//
//   ./build/examples/ctj_cli arena --generations=4 --out=arena.ctjs
//   ./build/examples/ctj_cli arena --generations=6 --out=arena.ctjs --resume
//
// Subcommands for the fleet-scale serve daemon (src/serve, ctj_serve):
//
//   ./build/examples/ctj_cli serve --socket=/tmp/ctj.sock --workers=4
//   ./build/examples/ctj_cli submit --socket=/tmp/ctj.sock --scheme=ql
//       --archetype=sweep --slots=4000 --wait
//   ./build/examples/ctj_cli status --socket=/tmp/ctj.sock --id=3
//   ./build/examples/ctj_cli results --socket=/tmp/ctj.sock --id=3 --wait
//   ./build/examples/ctj_cli stats --socket=/tmp/ctj.sock
//   ./build/examples/ctj_cli shutdown --socket=/tmp/ctj.sock
//
// Flags: --scheme=rl|ql|oracle|passive|random  --mode=max|random
//        --slots=N --train=N --lj=X --lh=X --cycle=N --seed=N
//        --field --slot-duration=S --jx-slot=S --nodes=N
//        --signal=emubee|wifi|zigbee --no-jammer
//        train: --out=FILE --checkpoint-every=N --resume
//        eval:  --model=FILE
//        arena: --generations=G --warmup-slots=N --jammer-slots=N
//               --defender-slots=N
//               --eval-slots=N --pool=N --out=FILE --resume
//        serve: --socket=PATH --workers=N --max-resident=N --quantum=N
//               --spool=DIR
//        submit: --socket=PATH --scheme=... --archetype=NAME|kernel
//                --channels=K --sweep=m --mode=max|random --seed=N
//                --slots=N --replicas=N --window=N --history=N
//                --record-rewards --wait
//        status/results: --socket=PATH --id=N (--wait blocks for results)
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arena/self_play.hpp"
#include "common/table.hpp"
#include "core/checkpoint.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "core/field.hpp"
#include "core/mdp_scheme.hpp"
#include "core/passive_fh.hpp"
#include "core/qlearning_scheme.hpp"
#include "core/random_fh.hpp"
#include "core/rl_fh.hpp"
#include "core/trainer.hpp"
#include "io/format.hpp"
#include "serve/engine.hpp"
#include "serve/wire.hpp"

using namespace ctj;
using namespace ctj::core;

namespace {

/// Minimal --key=value parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unknown argument: " << arg << "\n";
        std::exit(2);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

std::unique_ptr<AntiJammingScheme> make_scheme(const std::string& name,
                                               JammerPowerMode mode,
                                               std::uint64_t seed) {
  if (name == "passive") {
    PassiveFhScheme::Config config;
    config.seed = seed;
    return std::make_unique<PassiveFhScheme>(config);
  }
  if (name == "random") {
    RandomFhScheme::Config config;
    config.seed = seed;
    return std::make_unique<RandomFhScheme>(config);
  }
  if (name == "oracle") {
    MdpOracleScheme::Config config;
    config.params.mode = mode;
    config.seed = seed;
    return std::make_unique<MdpOracleScheme>(config);
  }
  if (name == "ql") {
    QLearningScheme::Config config;
    config.seed = seed;
    return std::make_unique<QLearningScheme>(config);
  }
  if (name == "rl") {
    DqnScheme::Config config;
    config.history = 4;
    config.hidden = {32, 32};
    config.seed = seed;
    return std::make_unique<DqnScheme>(config);
  }
  std::cerr << "unknown scheme '" << name
            << "' (use rl|ql|oracle|passive|random)\n";
  std::exit(2);
}

/// Train learners on the slot-level environment before deployment.
void maybe_train(AntiJammingScheme& scheme, const EnvironmentConfig& env_config,
                 std::size_t train_slots) {
  auto* rl = dynamic_cast<DqnScheme*>(&scheme);
  auto* ql = dynamic_cast<QLearningScheme*>(&scheme);
  if (rl == nullptr && ql == nullptr) return;
  std::cout << "training on " << train_slots << " slots...\n";
  CompetitionEnvironment env(env_config);
  if (rl != nullptr) {
    TrainerConfig trainer;
    trainer.max_slots = train_slots;
    train(*rl, env, trainer);
    rl->set_training(false);
    rl->reset();
  } else {
    for (std::size_t slot = 0; slot < train_slots; ++slot) {
      const auto d = ql->decide();
      const auto step = env.step(d.channel, d.power_index);
      SlotFeedback fb;
      fb.success = step.success;
      fb.jammed = step.outcome != SlotOutcome::kClear;
      fb.channel = step.channel;
      fb.power_index = d.power_index;
      fb.reward = step.reward;
      ql->feedback(fb);
    }
    ql->set_training(false);
    ql->reset();
  }
}

channel::JammingSignalType parse_signal(const std::string& name) {
  if (name == "emubee") return channel::JammingSignalType::kEmuBee;
  if (name == "wifi") return channel::JammingSignalType::kWifi;
  if (name == "zigbee") return channel::JammingSignalType::kZigbee;
  std::cerr << "unknown signal '" << name << "'\n";
  std::exit(2);
}

EnvironmentConfig env_from_flags(const Flags& flags, JammerPowerMode mode,
                                 std::uint64_t seed) {
  auto env_config = EnvironmentConfig::defaults();
  env_config.mode = mode;
  env_config.loss_jam = flags.get_num("lj", env_config.loss_jam);
  env_config.loss_hop = flags.get_num("lh", env_config.loss_hop);
  if (flags.has("cycle")) {
    env_config.channels_per_sweep = 1;
    env_config.num_channels = static_cast<int>(flags.get_num("cycle", 4));
  }
  env_config.seed = seed;
  return env_config;
}

/// `ctj_cli train`: train a DQN with periodic CTJS checkpoints. The output
/// file doubles as the resume point (--resume) and as an eval model.
int cmd_train(const Flags& flags) {
  const std::string out = flags.get("out", "");
  if (out.empty()) {
    std::cerr << "train needs --out=FILE (the checkpoint to write)\n";
    return 2;
  }
  const auto mode = flags.get("mode", "max") == "random"
                        ? JammerPowerMode::kRandomPower
                        : JammerPowerMode::kMaxPower;
  const auto seed = static_cast<std::uint64_t>(flags.get_num("seed", 1));
  const auto env_config = env_from_flags(flags, mode, seed);

  DqnScheme::Config scheme_config;
  scheme_config.num_channels = env_config.num_channels;
  scheme_config.num_power_levels = env_config.num_power_levels();
  scheme_config.history = 4;
  scheme_config.hidden = {32, 32};
  scheme_config.seed = seed + 7;
  DqnScheme scheme(scheme_config);
  CompetitionEnvironment env(env_config);

  TrainerConfig trainer;
  trainer.max_slots = static_cast<std::size_t>(flags.get_num("train", 16000));
  CheckpointOptions ckpt;
  ckpt.path = out;
  ckpt.every_slots =
      static_cast<std::size_t>(flags.get_num("checkpoint-every", 0));
  ckpt.resume = flags.has("resume");
  trainer.checkpoint = ckpt;

  const auto stats = train(scheme, env, trainer);
  std::cout << "trained " << stats.slots_trained << " slots, final mean reward "
            << TextTable::fmt(stats.final_mean_reward, 2) << "\n"
            << "checkpoint: " << out << "\n";
  return 0;
}

/// `ctj_cli eval`: reconstruct the scheme a checkpoint was trained with,
/// restore its full state, freeze and evaluate it.
int cmd_eval(const Flags& flags) {
  const std::string model = flags.get("model", "");
  if (model.empty()) {
    std::cerr << "eval needs --model=FILE (a checkpoint written by "
                 "`ctj_cli train` or the trainer)\n";
    return 2;
  }
  DqnScheme scheme(read_scheme_config(model));
  load_scheme(scheme, model);
  scheme.set_training(false);
  scheme.reset();

  const auto mode = flags.get("mode", "max") == "random"
                        ? JammerPowerMode::kRandomPower
                        : JammerPowerMode::kMaxPower;
  const auto seed = static_cast<std::uint64_t>(flags.get_num("seed", 1));
  const auto slots = static_cast<std::size_t>(flags.get_num("slots", 20000));
  auto env_config = env_from_flags(flags, mode, seed + 1000);
  CompetitionEnvironment env(env_config);
  const auto m = evaluate(scheme, env, slots);

  TextTable table({"metric", "value"});
  table.add_row({"model", model});
  table.add_row({"jammer mode", std::string(to_string(mode))});
  table.add_row({"ST (%)", TextTable::fmt(100 * m.st, 2)});
  table.add_row({"AH (%)", TextTable::fmt(100 * m.ah, 2)});
  table.add_row({"AP (%)", TextTable::fmt(100 * m.ap, 2)});
  table.add_row({"mean reward", TextTable::fmt(m.mean_reward, 2)});
  table.print(std::cout);
  return 0;
}

/// `ctj_cli arena`: run the self-play arena — alternating best-response
/// training between the DQN defender and the learned jammer, with
/// per-generation exploitability and a final head-to-head cross table.
/// --out=FILE checkpoints every generation; --resume picks a killed arena
/// up after the last completed generation (and a larger --generations
/// extends a finished one).
int cmd_arena(const Flags& flags) {
  const auto mode = flags.get("mode", "max") == "random"
                        ? JammerPowerMode::kRandomPower
                        : JammerPowerMode::kMaxPower;
  const auto seed = static_cast<std::uint64_t>(flags.get_num("seed", 1));

  arena::SelfPlayConfig config = arena::SelfPlayConfig::defaults();
  config.env = env_from_flags(flags, mode, seed);
  config.jammer = jammer::JammerSpec::defaults("learned");
  config.defender.num_channels = config.env.num_channels;
  config.defender.num_power_levels = config.env.num_power_levels();
  config.defender.history = 4;
  config.defender.hidden = {32, 32};
  config.defender.seed = seed + 7;
  config.generations =
      static_cast<std::size_t>(flags.get_num("generations", 4));
  config.warmup_slots =
      static_cast<std::size_t>(flags.get_num("warmup-slots", 4000));
  config.jammer_slots =
      static_cast<std::size_t>(flags.get_num("jammer-slots", 4000));
  config.defender_slots =
      static_cast<std::size_t>(flags.get_num("defender-slots", 4000));
  config.eval_slots =
      static_cast<std::size_t>(flags.get_num("eval-slots", 2000));
  config.pool_capacity =
      static_cast<std::size_t>(flags.get_num("pool", 8));
  config.seed = seed;
  const std::string out = flags.get("out", "");
  if (!out.empty()) {
    CheckpointOptions ckpt;
    ckpt.path = out;
    ckpt.resume = flags.has("resume");
    config.checkpoint = ckpt;
  } else if (flags.has("resume")) {
    std::cerr << "arena --resume needs --out=FILE (the checkpoint)\n";
    return 2;
  }

  arena::SelfPlay arena_run(std::move(config));
  const arena::SelfPlayResult result = arena_run.run();
  if (result.resumed) std::cout << "(resumed from " << out << ")\n";

  TextTable table({"gen", "jam hit%", "def train R", "R vs pool", "R vs BR",
                   "exploitability"});
  for (const arena::GenerationResult& g : result.generations) {
    table.add_row({std::to_string(g.generation),
                   TextTable::fmt(100.0 * g.jammer_hit_rate, 1),
                   TextTable::fmt(g.defender_train_reward, 1),
                   TextTable::fmt(g.reward_vs_pool, 1),
                   TextTable::fmt(g.reward_vs_best_response, 1),
                   TextTable::fmt(g.exploitability, 2)});
  }
  table.print(std::cout);

  std::cout << "\nhead-to-head (mean defender reward, defender generation "
               "down, jammer generation across):\n";
  std::vector<std::string> header = {"def \\ jam"};
  for (std::size_t g : result.jammer_generations) {
    header.push_back("g" + std::to_string(g));
  }
  TextTable cross(header);
  for (std::size_t i = 0; i < result.cross_table.size(); ++i) {
    std::vector<std::string> cells = {
        "g" + std::to_string(result.defender_generations[i])};
    for (double r : result.cross_table[i]) {
      cells.push_back(TextTable::fmt(r, 1));
    }
    cross.add_row(cells);
  }
  cross.print(std::cout);
  std::cout << "\n" << result.slots_total << " arena slots in "
            << TextTable::fmt(result.wall_seconds, 1) << " s\n";
  if (!out.empty()) std::cout << "checkpoint: " << out << "\n";
  return 0;
}

/// `ctj_cli serve`: host a ServeEngine on a unix socket in-process (same
/// loop as the ctj_serve daemon) until a client sends shutdown.
int cmd_serve(const Flags& flags) {
  serve::ServeConfig config;
  config.workers = static_cast<std::size_t>(flags.get_num("workers", 1));
  config.max_resident =
      static_cast<std::size_t>(flags.get_num("max-resident", 256));
  config.quantum_slots =
      static_cast<std::size_t>(flags.get_num("quantum", 256));
  config.spool_dir = flags.get("spool", ".ctj_serve_spool");
  const std::string socket_path = flags.get("socket", "/tmp/ctj_serve.sock");
  serve::ServeEngine engine(config);
  std::cout << "serving on " << socket_path << " with " << config.workers
            << " workers\n";
  serve::run_server(engine, socket_path);
  return 0;
}

serve::JobSpec spec_from_flags(const Flags& flags) {
  serve::JobSpec spec;
  std::string scheme = flags.get("scheme", "dqn");
  if (scheme == "rl") scheme = "dqn";  // accept the classic ctj_cli name
  spec.scheme = scheme;
  const std::string archetype = flags.get("archetype", "kernel");
  if (archetype == "kernel") {
    spec.jammer = jammer::JammerSpec::kernel();
  } else {
    spec.jammer = jammer::JammerSpec::defaults(archetype);
  }
  spec.num_channels = static_cast<int>(flags.get_num("channels", 16));
  spec.channels_per_sweep = static_cast<int>(flags.get_num("sweep", 4));
  spec.mode = flags.get("mode", "max") == "random"
                  ? JammerPowerMode::kRandomPower
                  : JammerPowerMode::kMaxPower;
  spec.loss_jam = flags.get_num("lj", spec.loss_jam);
  spec.loss_hop = flags.get_num("lh", spec.loss_hop);
  spec.seed = static_cast<std::uint64_t>(flags.get_num("seed", 1));
  spec.slots = static_cast<std::uint64_t>(flags.get_num("slots", 4000));
  spec.replicas = static_cast<std::uint64_t>(flags.get_num("replicas", 1));
  spec.reward_window =
      static_cast<std::uint64_t>(flags.get_num("window", 2000));
  spec.history = static_cast<std::uint64_t>(flags.get_num("history", 4));
  spec.record_rewards = flags.has("record-rewards");
  // Keep the jammer geometry in sync with the environment's (the env would
  // override it anyway; syncing here keeps JAMRCFG checks transparent).
  spec.jammer.num_channels = spec.num_channels;
  spec.jammer.channels_per_sweep = spec.channels_per_sweep;
  spec.jammer.mode = spec.mode;
  return spec;
}

void print_result(std::uint64_t id, const serve::JobResult& result) {
  TextTable table({"metric", "value"});
  table.add_row({"job", TextTable::fmt(static_cast<double>(id), 0)});
  table.add_row(
      {"slots", TextTable::fmt(static_cast<double>(result.slots_run), 0)});
  table.add_row({"final mean reward",
                 TextTable::fmt(result.final_mean_reward, 2)});
  table.add_row({"success rate (%)",
                 TextTable::fmt(100.0 * static_cast<double>(result.successes) /
                                    static_cast<double>(result.slots_run),
                                2)});
  table.add_row(
      {"hops", TextTable::fmt(static_cast<double>(result.hops), 0)});
  table.add_row({"evictions",
                 TextTable::fmt(static_cast<double>(result.evictions), 0)});
  table.add_row({"reward crc", std::to_string(result.reward_crc)});
  table.add_row({"state crc", std::to_string(result.state_crc)});
  table.print(std::cout);
}

/// `ctj_cli submit`: send a JobSpec to a running daemon; --wait blocks for
/// and prints the result.
int cmd_submit(const Flags& flags) {
  serve::ServeClient client(flags.get("socket", "/tmp/ctj_serve.sock"));
  const serve::JobSpec spec = spec_from_flags(flags);
  const std::uint64_t id = client.submit(spec);
  std::cout << "job " << id << " submitted\n";
  if (flags.has("wait")) {
    const auto result = client.result(id, /*wait=*/true);
    print_result(id, *result);
  }
  return 0;
}

int cmd_status(const Flags& flags) {
  serve::ServeClient client(flags.get("socket", "/tmp/ctj_serve.sock"));
  const auto id = static_cast<std::uint64_t>(flags.get_num("id", 0));
  const serve::JobStatus status = client.status(id);
  std::cout << "job " << id << ": " << to_string(status.state) << " "
            << status.slots_done << "/" << status.slots_total << " slots, "
            << status.evictions << " evictions, "
            << (status.resident ? "resident" : "not resident") << "\n";
  return 0;
}

int cmd_results(const Flags& flags) {
  serve::ServeClient client(flags.get("socket", "/tmp/ctj_serve.sock"));
  const auto id = static_cast<std::uint64_t>(flags.get_num("id", 0));
  const auto result = client.result(id, flags.has("wait"));
  if (!result.has_value()) {
    std::cout << "job " << id << " still running\n";
    return 3;
  }
  print_result(id, *result);
  return 0;
}

int cmd_stats(const Flags& flags) {
  serve::ServeClient client(flags.get("socket", "/tmp/ctj_serve.sock"));
  const serve::EngineStats stats = client.stats();
  TextTable table({"metric", "value"});
  const auto row = [&](const char* name, std::uint64_t v) {
    table.add_row({name, TextTable::fmt(static_cast<double>(v), 0)});
  };
  row("submitted", stats.submitted);
  row("completed", stats.completed);
  row("failed", stats.failed);
  row("resident", stats.resident);
  row("evictions", stats.evictions);
  row("revivals", stats.revivals);
  row("slots total", stats.slots_total);
  table.print(std::cout);
  return 0;
}

int cmd_shutdown(const Flags& flags) {
  serve::ServeClient client(flags.get("socket", "/tmp/ctj_serve.sock"));
  client.shutdown();
  std::cout << "shutdown requested\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A non-flag first argument selects a subcommand; the remaining arguments
  // stay --key=value flags.
  if (argc > 1 && argv[1][0] != '-') {
    const std::string command = argv[1];
    const Flags sub_flags(argc - 1, argv + 1);
    try {
      if (command == "train") return cmd_train(sub_flags);
      if (command == "eval") return cmd_eval(sub_flags);
      if (command == "arena") return cmd_arena(sub_flags);
      if (command == "serve") return cmd_serve(sub_flags);
      if (command == "submit") return cmd_submit(sub_flags);
      if (command == "status") return cmd_status(sub_flags);
      if (command == "results") return cmd_results(sub_flags);
      if (command == "stats") return cmd_stats(sub_flags);
      if (command == "shutdown") return cmd_shutdown(sub_flags);
    } catch (const io::IoError& error) {
      std::cerr << "ctj_cli " << command << ": " << error.what() << "\n";
      return 1;
    } catch (const std::exception& error) {
      std::cerr << "ctj_cli " << command << ": " << error.what() << "\n";
      return 1;
    }
    std::cerr << "unknown subcommand '" << command
              << "' (use train|eval|arena|serve|submit|status|results|stats|"
                 "shutdown)\n";
    return 2;
  }

  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::cout << "see the header comment of examples/ctj_cli.cpp\n";
    return 0;
  }

  const auto mode = flags.get("mode", "max") == "random"
                        ? JammerPowerMode::kRandomPower
                        : JammerPowerMode::kMaxPower;
  const auto seed = static_cast<std::uint64_t>(flags.get_num("seed", 1));
  const auto slots = static_cast<std::size_t>(flags.get_num("slots", 20000));
  const auto train_slots =
      static_cast<std::size_t>(flags.get_num("train", 16000));

  auto env_config = env_from_flags(flags, mode, seed);

  auto scheme = make_scheme(flags.get("scheme", "rl"), mode, seed + 7);
  maybe_train(*scheme, env_config, train_slots);

  if (!flags.has("field")) {
    env_config.seed = seed + 1000;
    CompetitionEnvironment env(env_config);
    const auto m = evaluate(*scheme, env, slots);
    TextTable table({"metric", "value"});
    table.add_row({"scheme", scheme->name()});
    table.add_row({"jammer mode", std::string(to_string(mode))});
    table.add_row({"ST (%)", TextTable::fmt(100 * m.st, 2)});
    table.add_row({"AH (%)", TextTable::fmt(100 * m.ah, 2)});
    table.add_row({"SH (%)", TextTable::fmt(100 * m.sh, 2)});
    table.add_row({"AP (%)", TextTable::fmt(100 * m.ap, 2)});
    table.add_row({"SP (%)", TextTable::fmt(100 * m.sp, 2)});
    table.add_row({"mean reward", TextTable::fmt(m.mean_reward, 2)});
    table.print(std::cout);
    return 0;
  }

  FieldConfig field = FieldConfig::defaults();
  field.jammer.mode = mode;
  field.jammer_enabled = !flags.has("no-jammer");
  field.network.slot_duration_s = flags.get_num("slot-duration", 3.0);
  field.jammer_slot_s = flags.get_num("jx-slot", field.network.slot_duration_s);
  field.network.num_peripherals = static_cast<int>(flags.get_num("nodes", 4));
  field.signal_type = parse_signal(flags.get("signal", "emubee"));
  field.network.seed = seed + 11;
  field.seed = seed + 12;

  const std::size_t field_slots =
      static_cast<std::size_t>(flags.get_num("slots", 300));
  FieldExperiment experiment(field, *scheme);
  const auto result = experiment.run(field_slots);

  TextTable table({"metric", "value"});
  table.add_row({"scheme", scheme->name()});
  table.add_row({"signal", std::string(channel::to_string(field.signal_type))});
  table.add_row({"slots", TextTable::fmt(static_cast<double>(result.slots), 0)});
  table.add_row({"goodput (pkts/slot)",
                 TextTable::fmt(result.goodput_packets_per_slot, 1)});
  table.add_row({"ST (%)", TextTable::fmt(100 * result.metrics.st, 2)});
  table.add_row({"utilization (%)", TextTable::fmt(100 * result.utilization, 2)});
  table.add_row({"negotiation (ms/slot)",
                 TextTable::fmt(1000 * result.mean_negotiation_s, 1)});
  table.print(std::cout);
  return 0;
}
