// Smart-home scenario: a four-node ZigBee star network (hub + three sensors)
// in a living room, attacked by an EmuBee cross-technology jammer hidden in a
// Wi-Fi access point eight meters away. Runs the full field simulator and
// compares every anti-jamming scheme end to end.
//
//   ./build/examples/smart_home [slots]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/environment.hpp"
#include "core/field.hpp"
#include "core/mdp_scheme.hpp"
#include "core/passive_fh.hpp"
#include "core/random_fh.hpp"
#include "core/rl_fh.hpp"
#include "core/trainer.hpp"

using namespace ctj;
using namespace ctj::core;

namespace {

FieldConfig home_config(std::uint64_t seed, bool jammer_enabled) {
  FieldConfig config = FieldConfig::defaults();
  config.network.num_peripherals = 3;       // door, thermostat, camera
  config.network.peripheral_distance_m = 4.0;
  config.network.slot_duration_s = 3.0;
  config.network.seed = seed;
  config.jammer_enabled = jammer_enabled;
  config.signal_type = channel::JammingSignalType::kEmuBee;
  config.jammer_distance_m = 8.0;
  config.seed = seed + 1;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t slots =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 300;
  std::cout << "smart-home field experiment (" << slots
            << " slots of 3 s, EmuBee jammer at 8 m)\n\n";

  // Train the RL scheme offline (as the paper does before flashing the hub).
  DqnScheme::Config rl_config;
  rl_config.history = 4;
  rl_config.hidden = {32, 32};
  auto rl = std::make_unique<DqnScheme>(rl_config);
  {
    auto env_config = EnvironmentConfig::defaults();
    env_config.mode = JammerPowerMode::kMaxPower;
    CompetitionEnvironment env(env_config);
    TrainerConfig trainer;
    trainer.max_slots = 15000;
    trainer.target_mean_reward = -70.0;  // early stop when good enough
    const auto stats = train(*rl, env, trainer);
    std::cout << "offline DQN training: " << stats.slots_trained << " slots"
              << (stats.early_stopped ? " (early stop)" : "") << "\n\n";
    rl->set_training(false);
    rl->reset();
  }

  TextTable table({"scheme", "goodput (pkts/slot)", "ST (%)",
                   "FH adoption (%)", "mean negotiation (ms)"});
  auto run_scheme = [&](const std::string& name, AntiJammingScheme& scheme,
                        bool jammer_enabled) {
    FieldExperiment experiment(home_config(404, jammer_enabled), scheme);
    const auto result = experiment.run(slots);
    table.add_row({name, TextTable::fmt(result.goodput_packets_per_slot, 0),
                   TextTable::fmt(100 * result.metrics.st, 1),
                   TextTable::fmt(100 * result.metrics.ah, 1),
                   TextTable::fmt(1000 * result.mean_negotiation_s, 1)});
    return result.goodput_packets_per_slot;
  };

  PassiveFhScheme passive{PassiveFhScheme::Config{}};
  RandomFhScheme random_scheme{RandomFhScheme::Config{}};
  MdpOracleScheme oracle{MdpOracleScheme::Config{}};

  run_scheme("Passive FH", passive, true);
  run_scheme("Random FH", random_scheme, true);
  const double rl_goodput = run_scheme("RL FH (DQN)", *rl, true);
  run_scheme("MDP oracle", oracle, true);
  RandomFhScheme probe{RandomFhScheme::Config{}};
  const double normal = run_scheme("no jammer", probe, false);

  table.print(std::cout);
  std::cout << "\nRL FH retains "
            << TextTable::fmt(100.0 * rl_goodput / normal, 1)
            << "% of the jam-free goodput (paper: ~78%).\n";
  return 0;
}
