// ctj_serve — the fleet-scale simulation daemon.
//
// Hosts a ServeEngine behind a unix-domain socket and serves tenant jobs
// until a client requests shutdown:
//
//   ./build/examples/ctj_serve --socket=/tmp/ctj.sock --workers=4 &
//   ./build/examples/ctj_cli submit --socket=/tmp/ctj.sock --scheme=ql
//       --archetype=sweep --slots=4000 --wait
//   ./build/examples/ctj_cli shutdown --socket=/tmp/ctj.sock
//
// Flags: --socket=PATH       (default /tmp/ctj_serve.sock)
//        --workers=N         (default hardware concurrency)
//        --max-resident=N    (default 256 tenant runners in memory)
//        --quantum=N         (default 256 slots per scheduling turn)
//        --spool=DIR         (default .ctj_serve_spool)
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "serve/engine.hpp"
#include "serve/wire.hpp"

using namespace ctj;

namespace {

/// Minimal --key=value parser (same shape as ctj_cli's).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unknown argument: " << arg << "\n";
        std::exit(2);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::cout << "see the header comment of examples/ctj_serve.cpp\n";
    return 0;
  }

  serve::ServeConfig config;
  const unsigned hw = std::thread::hardware_concurrency();
  config.workers = static_cast<std::size_t>(
      flags.get_num("workers", hw > 0 ? hw : 1));
  config.max_resident =
      static_cast<std::size_t>(flags.get_num("max-resident", 256));
  config.quantum_slots = static_cast<std::size_t>(flags.get_num("quantum", 256));
  config.spool_dir = flags.get("spool", ".ctj_serve_spool");
  const std::string socket_path = flags.get("socket", "/tmp/ctj_serve.sock");

  try {
    serve::ServeEngine engine(config);
    std::cout << "ctj_serve: " << config.workers << " workers, max "
              << config.max_resident << " resident, quantum "
              << config.quantum_slots << " slots, socket " << socket_path
              << "\n";
    serve::run_server(engine, socket_path);
    const auto stats = engine.stats();
    std::cout << "ctj_serve: shutting down (" << stats.completed << "/"
              << stats.submitted << " jobs completed, " << stats.slots_total
              << " slots, " << stats.evictions << " evictions)\n";
  } catch (const std::exception& e) {
    std::cerr << "ctj_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
