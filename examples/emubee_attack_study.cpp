// Attacker-side study (Sec. II): build an EmuBee jamming waveform with the
// full Wi-Fi PHY inverse chain, quantify the emulation fidelity, check its
// stealth against the ZigBee frame validator, and map the jamming range of
// the three signal types with the link model.
//
//   ./build/examples/emubee_attack_study
#include <iostream>

#include "channel/link.hpp"
#include "channel/spectrum.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "phy/emulation.hpp"
#include "phy/zigbee_packet.hpp"

using namespace ctj;
using namespace ctj::phy;

int main() {
  std::cout << "EmuBee attack study (Sec. II of the paper)\n";

  // --- 1. Spectral positioning -------------------------------------------
  std::cout << "\n[1] spectrum: Wi-Fi channel 6 covers ZigBee channels ";
  for (int z : channel::zigbee_channels_covered(6)) {
    std::cout << channel::zigbee_channel_number(z) << " ";
  }
  std::cout << "- one Wi-Fi frame can jam m = 4 consecutive ZigBee channels\n";

  // --- 2. Waveform emulation ---------------------------------------------
  Rng rng(2024);
  std::vector<std::size_t> symbols(64);
  for (auto& s : symbols) s = static_cast<std::size_t>(rng.uniform_int(0, 15));
  const IqBuffer designed = design_zigbee_waveform(symbols);

  EmuBeeEmulator emulator;
  const auto result = emulator.emulate(designed);
  const auto fidelity = assess_fidelity(result, symbols);
  std::cout << "\n[2] emulation (Fig. 1 pipeline): alpha* = "
            << TextTable::fmt(result.alpha, 3) << ", E(alpha*) = "
            << TextTable::fmt(result.quantization_error, 0)
            << "\n    chip error rate after ZigBee despreading: "
            << TextTable::fmt(100 * fidelity.chip_error_rate, 2)
            << "%  (symbol error rate: "
            << TextTable::fmt(100 * fidelity.symbol_error_rate, 2) << "%)\n"
            << "    payload handed to the Wi-Fi card: "
            << result.payload_bits.size() << " bits\n";

  // --- 3. Stealthiness -----------------------------------------------------
  // An EmuBee burst carries a valid preamble but no frame structure: the
  // victim's receiver locks on and stalls ("meaningless decoding").
  std::vector<std::uint8_t> burst(32, 0x00);
  burst[4] = 0x3C;  // garbage where the SFD should be
  const auto inspection = ZigbeeFrame::inspect(burst, 256);
  std::cout << "\n[3] stealth: victim inspects the burst -> "
            << to_string(inspection.status) << ", receiver stalled for "
            << inspection.occupied_symbol_periods
            << " symbol periods without flagging a jammer\n";

  // --- 4. Jamming range by signal type -------------------------------------
  std::cout << "\n[4] jamming range (PER of a 1 mW ZigBee link at 3 m vs "
               "jammer distance):\n";
  channel::ZigbeeLink link;
  TextTable table({"jam dist (m)", "EmuBee 100mW", "WiFi 100mW",
                   "ZigBee 5dBm"});
  for (double d : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0}) {
    auto per = [&](double power, channel::JammingSignalType type) {
      return 100.0 * link.per_with_jammer(0.0, 3.0, power, d, type);
    };
    table.add_row({d, per(20.0, channel::JammingSignalType::kEmuBee),
                   per(20.0, channel::JammingSignalType::kWifi),
                   per(5.0, channel::JammingSignalType::kZigbee)});
  }
  table.print(std::cout);
  std::cout << "EmuBee keeps near-100% PER to roughly 3x the distance of a "
               "conventional ZigBee jammer (the paper's '4x higher jamming "
               "performance' claim); plain Wi-Fi dies quickly against "
               "DSSS.\n";
  return 0;
}
