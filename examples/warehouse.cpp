// Smart-warehouse scenario (the paper's motivating dense deployment): a
// larger star network (8 forklift/inventory nodes), a *hidden-mode* jammer
// that randomizes its power to stay covert, and longer time slots. Shows how
// the hybrid scheme leans on power control when the jammer is not always at
// full power, and how polling overhead scales with network size.
//
//   ./build/examples/warehouse [slots]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/environment.hpp"
#include "core/field.hpp"
#include "core/mdp_scheme.hpp"
#include "core/passive_fh.hpp"
#include "core/rl_fh.hpp"
#include "core/trainer.hpp"

using namespace ctj;
using namespace ctj::core;

int main(int argc, char** argv) {
  const std::size_t slots =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 250;
  std::cout << "warehouse field experiment: 8-node network, hidden-mode "
               "(random-power) EmuBee jammer, 4 s slots\n\n";

  // Train against the random-power jammer: power control now pays off.
  DqnScheme::Config rl_config;
  rl_config.history = 4;
  rl_config.hidden = {32, 32};
  DqnScheme rl(rl_config);
  {
    auto env_config = EnvironmentConfig::defaults();
    env_config.mode = JammerPowerMode::kRandomPower;
    CompetitionEnvironment env(env_config);
    TrainerConfig trainer;
    trainer.max_slots = 15000;
    train(rl, env, trainer);
    rl.set_training(false);
    rl.reset();
  }

  auto make_config = [&](std::uint64_t seed) {
    FieldConfig config = FieldConfig::defaults();
    config.network.num_peripherals = 8;
    config.network.peripheral_distance_m = 6.0;
    config.network.slot_duration_s = 4.0;
    config.network.seed = seed;
    config.jammer.mode = JammerPowerMode::kRandomPower;
    config.signal_type = channel::JammingSignalType::kEmuBee;
    config.jammer_distance_m = 10.0;
    config.seed = seed + 1;
    return config;
  };

  TextTable table({"scheme", "goodput (pkts/slot)", "ST (%)", "AH (%)",
                   "AP (%)", "negotiation (ms/slot)"});
  auto run_scheme = [&](const std::string& name, AntiJammingScheme& scheme) {
    FieldExperiment experiment(make_config(808), scheme);
    const auto result = experiment.run(slots);
    table.add_row({name, TextTable::fmt(result.goodput_packets_per_slot, 0),
                   TextTable::fmt(100 * result.metrics.st, 1),
                   TextTable::fmt(100 * result.metrics.ah, 1),
                   TextTable::fmt(100 * result.metrics.ap, 1),
                   TextTable::fmt(1000 * result.mean_negotiation_s, 1)});
  };

  PassiveFhScheme passive{PassiveFhScheme::Config{}};
  MdpOracleScheme::Config oracle_config;
  oracle_config.params.mode = JammerPowerMode::kRandomPower;
  MdpOracleScheme oracle(oracle_config);

  run_scheme("Passive FH", passive);
  run_scheme("RL FH (DQN)", rl);
  run_scheme("MDP oracle", oracle);
  table.print(std::cout);

  std::cout << "\nagainst a hidden-mode jammer, power control (AP) carries "
               "part of the defense — the hybrid advantage of Sec. III; "
               "note the 8-node polling cost per slot (Fig. 9(b) effect).\n";
  return 0;
}
