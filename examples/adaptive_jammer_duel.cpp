// Robustness study: the trained anti-jamming schemes against an *adaptive*
// pattern-tracking jammer (extension beyond the paper's sweep model).
//
// The slot semantics mirror the competition environment: each slot the
// victim picks (channel, power); the jammer either camps on the learned hot
// group or sweeps; a hit becomes a failed slot unless the victim's power
// beats the jamming power. Shows why the deployed ε-greedy policy matters:
// a deterministic channel pattern is learnable by the attacker.
//
//   ./build/examples/adaptive_jammer_duel [slots]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/environment.hpp"
#include "core/mdp_scheme.hpp"
#include "core/metrics.hpp"
#include "core/passive_fh.hpp"
#include "core/rl_fh.hpp"
#include "core/trainer.hpp"
#include "jammer/adaptive_jammer.hpp"
#include "net/star_network.hpp"

using namespace ctj;
using namespace ctj::core;

namespace {

/// Run a scheme against the adaptive jammer at the slot level.
MetricsReport duel(AntiJammingScheme& scheme, double exploit_probability,
                   std::size_t slots, std::uint64_t seed) {
  auto config = jammer::AdaptiveJammerConfig::defaults();
  config.exploit_probability = exploit_probability;
  jammer::AdaptiveJammer jx(config, seed);
  Rng rng(seed + 1);
  const auto env = EnvironmentConfig::defaults();

  MetricsAccumulator metrics;
  int prev_channel = 0;
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const SchemeDecision d = scheme.decide();
    const auto report = jx.step(d.channel);
    bool success = true;
    if (report.hit) {
      // Power duel, as in the competition environment.
      success = env.tx_levels[d.power_index] >= report.power;
    }
    const bool hopped = d.channel != prev_channel;
    const double reward = -env.tx_levels[d.power_index] -
                          (hopped ? env.loss_hop : 0.0) -
                          (success ? 0.0 : env.loss_jam);
    SlotFeedback fb;
    fb.success = success;
    fb.jammed = report.hit;
    fb.channel = d.channel;
    fb.power_index = d.power_index;
    fb.reward = reward;
    scheme.feedback(fb);
    metrics.record(success, hopped, d.power_index > 0, reward);
    prev_channel = d.channel;
  }
  return metrics.report();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t slots =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 20000;
  std::cout << "adaptive-jammer duel (" << slots
            << " slots): sweep jammer vs pattern-tracking jammer\n\n";

  // Train the DQN against the standard sweeping competition (as deployed).
  DqnScheme::Config rl_config;
  rl_config.history = 4;
  rl_config.hidden = {32, 32};
  DqnScheme rl(rl_config);
  {
    auto env_config = EnvironmentConfig::defaults();
    env_config.mode = JammerPowerMode::kMaxPower;
    CompetitionEnvironment env(env_config);
    TrainerConfig trainer;
    trainer.max_slots = 15000;
    train(rl, env, trainer);
    rl.set_training(false);
  }

  TextTable table({"scheme", "deploy eps", "ST vs sweep (%)",
                   "ST vs adaptive (%)"});
  auto run_pair = [&](const std::string& name, AntiJammingScheme& scheme,
                      const std::string& eps_label) {
    scheme.reset();
    const auto vs_sweep = duel(scheme, /*exploit=*/0.0, slots, 91);
    scheme.reset();
    const auto vs_adaptive = duel(scheme, /*exploit=*/0.7, slots, 92);
    table.add_row({name, eps_label, TextTable::fmt(100 * vs_sweep.st, 1),
                   TextTable::fmt(100 * vs_adaptive.st, 1)});
  };

  rl.set_deploy_epsilon(0.0);
  run_pair("RL FH", rl, "0.00");
  rl.set_deploy_epsilon(0.05);
  run_pair("RL FH", rl, "0.05");

  MdpOracleScheme oracle{MdpOracleScheme::Config{}};
  run_pair("MDP oracle (random hops)", oracle, "n/a");

  PassiveFhScheme passive{PassiveFhScheme::Config{}};
  run_pair("Passive FH", passive, "n/a");

  table.print(std::cout);
  std::cout << "\nreading: randomized hop targets (deploy eps > 0, or the "
               "oracle's uniform hops) blunt the adaptive jammer; "
               "deterministic patterns get tracked.\n";
  return 0;
}
