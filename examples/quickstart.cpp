// Quickstart: train the DQN-based hybrid anti-jamming scheme against the
// cross-technology sweeping jammer and compare it with the passive baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/table.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "core/passive_fh.hpp"
#include "core/rl_fh.hpp"
#include "core/trainer.hpp"

using namespace ctj;
using namespace ctj::core;

int main() {
  std::cout << "ctj quickstart: DQN anti-jamming vs a Wi-Fi sweeping jammer\n\n";

  // 1. The competition: 16 ZigBee channels, the jammer sweeps 4 per slot
  //    (one Wi-Fi channel worth) at max power. Paper-default losses.
  auto env_config = EnvironmentConfig::defaults();
  env_config.mode = JammerPowerMode::kMaxPower;
  CompetitionEnvironment train_env(env_config);

  // 2. The scheme: a small DQN over the last 4 slots of (outcome, channel,
  //    power) observations, choosing a (channel, power) action each slot.
  DqnScheme::Config scheme_config;
  scheme_config.history = 4;
  scheme_config.hidden = {32, 32};
  DqnScheme rl(scheme_config);

  // 3. Train.
  TrainerConfig trainer_config;
  trainer_config.max_slots = 15000;
  const auto stats = train(rl, train_env, trainer_config);
  std::cout << "trained for " << stats.slots_trained << " slots in "
            << TextTable::fmt(stats.wall_seconds, 1)
            << " s, final mean reward "
            << TextTable::fmt(stats.final_mean_reward, 1) << "\n\n";

  // 4. Deploy and evaluate (frozen policy, fresh environment seed).
  rl.set_training(false);
  rl.reset();
  env_config.seed = 99;
  CompetitionEnvironment eval_env(env_config);
  const auto rl_metrics = evaluate(rl, eval_env, 20000);

  PassiveFhScheme passive{PassiveFhScheme::Config{}};
  env_config.seed = 99;
  CompetitionEnvironment eval_env2(env_config);
  const auto passive_metrics = evaluate(passive, eval_env2, 20000);

  TextTable table({"scheme", "ST (%)", "AH (%)", "AP (%)", "mean reward"});
  auto add = [&](const std::string& name, const MetricsReport& m) {
    table.add_row({name, TextTable::fmt(100 * m.st, 1),
                   TextTable::fmt(100 * m.ah, 1), TextTable::fmt(100 * m.ap, 1),
                   TextTable::fmt(m.mean_reward, 1)});
  };
  add("RL FH (ours)", rl_metrics);
  add("Passive FH", passive_metrics);
  table.print(std::cout);

  std::cout << "\nST = fraction of slots whose data got through; the paper "
               "reports ~78% for the DQN scheme under jamming.\n";
  return rl_metrics.st > passive_metrics.st ? 0 : 1;
}
