#include "arena/self_play.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "arena/learned_jammer.hpp"
#include "common/check.hpp"
#include "core/checkpoint.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "io/container.hpp"

namespace ctj::arena {

namespace {

constexpr std::uint8_t kArenaVersion = 1;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic per-phase seed derivation (splitmix64 finalizer) — every
/// duel's seed is a pure function of (arena seed, phase tag), so a resumed
/// run replays exactly the streams the uninterrupted run would draw.
std::uint64_t mix(std::uint64_t seed, std::uint64_t tag) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (tag + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Phase tags: generation-scoped streams never collide across phases.
std::uint64_t phase_tag(std::size_t generation, std::uint64_t phase,
                        std::uint64_t sub = 0) {
  return (static_cast<std::uint64_t>(generation) << 16) | (phase << 8) | sub;
}

}  // namespace

SelfPlayConfig SelfPlayConfig::defaults() {
  SelfPlayConfig config;
  config.env = core::EnvironmentConfig::defaults();
  config.jammer = jammer::JammerSpec::defaults("learned");
  return config;
}

SelfPlay::SelfPlay(SelfPlayConfig config)
    : config_(std::move(config)), defender_(config_.defender) {
  ensure_registered();
  CTJ_CHECK_MSG(config_.jammer.archetype == "learned",
                "the arena trains the \"learned\" archetype, got \""
                    << config_.jammer.archetype << '"');
  CTJ_CHECK(config_.defender.num_channels == config_.env.num_channels);
  CTJ_CHECK(config_.defender.num_power_levels == config_.env.tx_levels.size());
  CTJ_CHECK(config_.jammer_slots > 0);
  CTJ_CHECK(config_.defender_slots > 0);
  CTJ_CHECK(config_.eval_slots > 0);
  CTJ_CHECK(config_.pool_capacity > 0);

  // The jammer pool opens with the untrained generation-0 member — the
  // naive adversary (random ε-greedy emissions) — so the cross table keeps
  // a naive column and the defender never forgets the baseline. The
  // generation-0 *defender* entry is pushed by run() after the warmup
  // phase, so it snapshots a competent (but unhardened) policy.
  {
    jammer::JammerSpec spec = config_.jammer;
    spec.num_channels = config_.env.num_channels;
    spec.channels_per_sweep = config_.env.channels_per_sweep;
    spec.power_levels = config_.env.jam_levels;
    spec.mode = config_.env.mode;
    LearnedJammer naive(LearnedJammerConfig::from_spec(spec),
                        mix(config_.seed, phase_tag(0, 0)));
    naive.set_frozen(true);
    io::ByteWriter out;
    naive.save_state(out);
    jammer_pool_.push_back({0, out.take()});
  }
}

core::EnvironmentConfig SelfPlay::env_config(std::uint64_t seed) const {
  core::EnvironmentConfig env = config_.env;
  env.seed = seed;
  env.jammer = config_.jammer;
  return env;
}

core::CompetitionEnvironment SelfPlay::make_env(std::uint64_t seed,
                                                const std::string& state,
                                                bool frozen) const {
  core::CompetitionEnvironment env(env_config(seed));
  auto* jam = dynamic_cast<LearnedJammer*>(env.behavioural_jammer());
  CTJ_CHECK_MSG(jam != nullptr, "arena environment has no learned jammer");
  if (!state.empty()) {
    io::ByteReader in(state);
    jam->load_state(in);
    in.expect_end();
  }
  jam->set_frozen(frozen);
  return env;
}

std::string SelfPlay::extract_jammer(core::CompetitionEnvironment& env) {
  auto* jam = dynamic_cast<LearnedJammer*>(env.behavioural_jammer());
  CTJ_CHECK(jam != nullptr);
  io::ByteWriter out;
  jam->save_state(out);
  return out.take();
}

double SelfPlay::eval_defender(const core::DqnScheme& defender,
                               const std::string& jammer_state,
                               std::uint64_t seed) {
  core::CompetitionEnvironment env = make_env(seed, jammer_state,
                                              /*frozen=*/true);
  core::DqnScheme copy = defender;
  copy.set_training(false);
  copy.reset();
  const core::MetricsReport metrics =
      core::evaluate(copy, env, config_.eval_slots);
  slots_total_ += config_.eval_slots;
  return metrics.mean_reward;
}

std::string SelfPlay::defender_policy_snapshot() const {
  io::ContainerWriter out;
  io::ByteWriter net;
  defender_.agent().online_network().save_state(net);
  out.add_chunk(io::tags::kNetOnline, net.take());
  return out.to_bytes();
}

void SelfPlay::run_generation(std::size_t g) {
  GenerationResult result;
  result.generation = g;

  // Phase 1 — jammer best response: the carried jammer keeps training
  // online against a frozen copy of the current defender.
  {
    core::CompetitionEnvironment env = make_env(
        mix(config_.seed, phase_tag(g, 1)), jammer_state_, /*frozen=*/false);
    core::DqnScheme frozen_defender = defender_;
    frozen_defender.set_training(false);
    frozen_defender.reset();
    std::size_t jam_hits = 0;
    for (std::size_t slot = 0; slot < config_.jammer_slots; ++slot) {
      const core::SchemeDecision decision = frozen_defender.decide();
      const core::EnvStep step =
          env.step(decision.channel, decision.power_index);
      core::SlotFeedback feedback;
      feedback.success = step.success;
      feedback.jammed = step.outcome != core::SlotOutcome::kClear;
      feedback.channel = step.channel;
      feedback.power_index = decision.power_index;
      feedback.reward = step.reward;
      frozen_defender.feedback(feedback);
      if (feedback.jammed) ++jam_hits;
    }
    slots_total_ += config_.jammer_slots;
    result.jammer_hit_rate = static_cast<double>(jam_hits) /
                             static_cast<double>(config_.jammer_slots);
    jammer_state_ = extract_jammer(env);
  }

  // Phase 2 — exploitability probe on the still-frozen defender: pool mean
  // (the adversaries it was hardened against) minus the fresh best response
  // (the worst case). Evaluated before the pool absorbs the best response.
  result.reward_vs_best_response =
      eval_defender(defender_, jammer_state_, mix(config_.seed, phase_tag(g, 2)));
  {
    double sum = 0.0;
    for (std::size_t k = 0; k < jammer_pool_.size(); ++k) {
      sum += eval_defender(defender_, jammer_pool_[k].state,
                           mix(config_.seed, phase_tag(g, 3, k)));
    }
    result.reward_vs_pool = sum / static_cast<double>(jammer_pool_.size());
  }
  result.exploitability =
      result.reward_vs_pool - result.reward_vs_best_response;

  jammer_pool_.push_back({g + 1, jammer_state_});
  while (jammer_pool_.size() > config_.pool_capacity) {
    jammer_pool_.erase(jammer_pool_.begin());
  }

  // Phase 3 — defender update: train round-robin across the frozen pool so
  // the new policy cannot overfit the newest adversary.
  {
    const std::size_t pool = jammer_pool_.size();
    const std::size_t share = config_.defender_slots / pool;
    double weighted_reward = 0.0;
    std::size_t trained = 0;
    for (std::size_t k = 0; k < pool; ++k) {
      std::size_t slots = share;
      if (k == pool - 1) slots += config_.defender_slots % pool;
      if (slots == 0) continue;
      core::CompetitionEnvironment env =
          make_env(mix(config_.seed, phase_tag(g, 4, k)),
                   jammer_pool_[k].state, /*frozen=*/true);
      core::TrainerConfig trainer;
      trainer.max_slots = slots;
      trainer.reward_window = std::min<std::size_t>(500, slots);
      const core::TrainingStats stats = core::train(defender_, env, trainer);
      weighted_reward +=
          stats.final_mean_reward * static_cast<double>(stats.slots_trained);
      trained += stats.slots_trained;
    }
    slots_total_ += trained;
    result.defender_train_reward =
        trained > 0 ? weighted_reward / static_cast<double>(trained) : 0.0;
  }

  defender_pool_.push_back({g + 1, defender_policy_snapshot()});
  while (defender_pool_.size() > config_.pool_capacity) {
    defender_pool_.erase(defender_pool_.begin());
  }

  history_.push_back(result);
  if (config_.on_generation) config_.on_generation(result);
}

void SelfPlay::save_checkpoint() const {
  CTJ_CHECK(config_.checkpoint.has_value());
  io::ContainerWriter out;
  core::add_meta_chunk(out, "arena");
  defender_.save_state(out);

  jammer::JammerSpec spec = config_.jammer;
  spec.num_channels = config_.env.num_channels;
  spec.channels_per_sweep = config_.env.channels_per_sweep;
  spec.power_levels = config_.env.jam_levels;
  spec.mode = config_.env.mode;
  core::write_jammer_config(out, spec);

  out.add_chunk(io::tags::kJammerPolicy, jammer_state_);

  io::ByteWriter pool;
  pool.u64(jammer_pool_.size());
  pool.u64(defender_pool_.size());
  for (const PoolEntry& entry : jammer_pool_) {
    pool.u64(entry.generation);
    pool.str(entry.state);
  }
  for (const PoolEntry& entry : defender_pool_) {
    pool.u64(entry.generation);
    pool.str(entry.state);
  }
  out.add_chunk(io::tags::kOpponentPool, pool.take());

  io::ByteWriter prg;
  prg.u8(kArenaVersion);
  prg.u64(generations_done_);
  prg.u64(slots_total_);
  // Config digest: everything a resume must not silently change.
  // `generations` is deliberately absent — extending the budget is allowed.
  prg.u64(config_.warmup_slots);
  prg.u64(config_.jammer_slots);
  prg.u64(config_.defender_slots);
  prg.u64(config_.eval_slots);
  prg.u64(config_.pool_capacity);
  prg.u64(config_.seed);
  prg.i32(config_.env.num_channels);
  prg.i32(config_.env.channels_per_sweep);
  prg.f64_vec(config_.env.tx_levels);
  prg.f64_vec(config_.env.jam_levels);
  prg.u8(config_.env.mode == JammerPowerMode::kMaxPower ? 0 : 1);
  prg.f64(config_.env.loss_jam);
  prg.f64(config_.env.loss_hop);
  prg.u64(config_.env.seed);
  prg.u64(history_.size());
  for (const GenerationResult& r : history_) {
    prg.u64(r.generation);
    prg.f64(r.jammer_hit_rate);
    prg.f64(r.defender_train_reward);
    prg.f64(r.reward_vs_pool);
    prg.f64(r.reward_vs_best_response);
    prg.f64(r.exploitability);
  }
  out.add_chunk(io::tags::kArenaProgress, prg.take());

  out.write_file(config_.checkpoint->path);
}

bool SelfPlay::try_resume() {
  if (!config_.checkpoint || !config_.checkpoint->resume) return false;
  if (!std::filesystem::exists(config_.checkpoint->path)) return false;
  const io::ContainerReader in =
      io::ContainerReader::from_file(config_.checkpoint->path);

  io::ByteReader prg(in.chunk(io::tags::kArenaProgress));
  const std::uint8_t version = prg.u8();
  if (version != kArenaVersion) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "arena progress version " + std::to_string(version) +
                          " not understood");
  }
  const std::uint64_t generations_done = prg.u64();
  const std::uint64_t slots_total = prg.u64();
  const auto mismatch = [](const std::string& what) -> io::IoError {
    return io::IoError(io::ErrorKind::kStateMismatch,
                       "arena checkpoint differs in " + what);
  };
  if (prg.u64() != config_.warmup_slots) throw mismatch("warmup_slots");
  if (prg.u64() != config_.jammer_slots) throw mismatch("jammer_slots");
  if (prg.u64() != config_.defender_slots) throw mismatch("defender_slots");
  if (prg.u64() != config_.eval_slots) throw mismatch("eval_slots");
  if (prg.u64() != config_.pool_capacity) throw mismatch("pool_capacity");
  if (prg.u64() != config_.seed) throw mismatch("seed");
  if (prg.i32() != config_.env.num_channels) throw mismatch("num_channels");
  if (prg.i32() != config_.env.channels_per_sweep) {
    throw mismatch("channels_per_sweep");
  }
  if (prg.f64_vec() != config_.env.tx_levels) throw mismatch("tx_levels");
  if (prg.f64_vec() != config_.env.jam_levels) throw mismatch("jam_levels");
  if (prg.u8() !=
      (config_.env.mode == JammerPowerMode::kMaxPower ? 0 : 1)) {
    throw mismatch("power mode");
  }
  if (prg.f64() != config_.env.loss_jam) throw mismatch("loss_jam");
  if (prg.f64() != config_.env.loss_hop) throw mismatch("loss_hop");
  if (prg.u64() != config_.env.seed) throw mismatch("env seed");
  const std::uint64_t history_count = prg.u64();
  if (history_count != generations_done || history_count > 1u << 20) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "arena history count inconsistent");
  }
  std::vector<GenerationResult> history;
  for (std::uint64_t i = 0; i < history_count; ++i) {
    GenerationResult r;
    r.generation = static_cast<std::size_t>(prg.u64());
    r.jammer_hit_rate = prg.f64();
    r.defender_train_reward = prg.f64();
    r.reward_vs_pool = prg.f64();
    r.reward_vs_best_response = prg.f64();
    r.exploitability = prg.f64();
    history.push_back(std::move(r));
  }
  prg.expect_end();

  jammer::JammerSpec spec = config_.jammer;
  spec.num_channels = config_.env.num_channels;
  spec.channels_per_sweep = config_.env.channels_per_sweep;
  spec.power_levels = config_.env.jam_levels;
  spec.mode = config_.env.mode;
  core::check_jammer_config(in, spec);

  std::string jammer_state{in.chunk(io::tags::kJammerPolicy)};

  io::ByteReader pool_in(in.chunk(io::tags::kOpponentPool));
  const std::uint64_t jammer_count = pool_in.u64();
  const std::uint64_t defender_count = pool_in.u64();
  if (jammer_count == 0 || jammer_count > config_.pool_capacity ||
      defender_count == 0 || defender_count > config_.pool_capacity) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "arena pool sizes out of range");
  }
  std::vector<PoolEntry> jammer_pool;
  for (std::uint64_t i = 0; i < jammer_count; ++i) {
    PoolEntry entry;
    entry.generation = static_cast<std::size_t>(pool_in.u64());
    entry.state = pool_in.str();
    jammer_pool.push_back(std::move(entry));
  }
  std::vector<PoolEntry> defender_pool;
  for (std::uint64_t i = 0; i < defender_count; ++i) {
    PoolEntry entry;
    entry.generation = static_cast<std::size_t>(pool_in.u64());
    entry.state = pool_in.str();
    defender_pool.push_back(std::move(entry));
  }
  pool_in.expect_end();

  // Everything local decoded and validated; the scheme restore below is
  // itself strong (no mutation on failure), so on any throw this SelfPlay
  // is unchanged. Commit order: defender first, then the locals.
  defender_.load_state(in);
  jammer_state_ = std::move(jammer_state);
  jammer_pool_ = std::move(jammer_pool);
  defender_pool_ = std::move(defender_pool);
  history_ = std::move(history);
  generations_done_ = static_cast<std::size_t>(generations_done);
  slots_total_ = static_cast<std::size_t>(slots_total);
  return true;
}

SelfPlayResult SelfPlay::run() {
  const double t0 = now_seconds();
  resumed_ = try_resume();
  if (!resumed_) {
    // Warmup: the defender trains against the naive frozen jammer before
    // generation 0, so the first exploitability probe measures a competent
    // but unhardened policy (see SelfPlayConfig::warmup_slots). The
    // generation-0 defender pool entry snapshots the warmed-up policy. A
    // run killed during warmup simply restarts it — the first checkpoint
    // is written after generation 0.
    if (config_.warmup_slots > 0) {
      core::CompetitionEnvironment env =
          make_env(mix(config_.seed, phase_tag(0, 6)),
                   jammer_pool_.front().state, /*frozen=*/true);
      core::TrainerConfig trainer;
      trainer.max_slots = config_.warmup_slots;
      trainer.reward_window = std::min<std::size_t>(500, config_.warmup_slots);
      const core::TrainingStats stats = core::train(defender_, env, trainer);
      slots_total_ += stats.slots_trained;
    }
    defender_pool_.push_back({0, defender_policy_snapshot()});
  }
  for (std::size_t g = generations_done_; g < config_.generations; ++g) {
    run_generation(g);
    ++generations_done_;
    if (config_.checkpoint) save_checkpoint();
  }

  SelfPlayResult result;
  result.generations = history_;
  result.resumed = resumed_;
  for (const PoolEntry& entry : defender_pool_) {
    result.defender_generations.push_back(entry.generation);
  }
  for (const PoolEntry& entry : jammer_pool_) {
    result.jammer_generations.push_back(entry.generation);
  }
  // Head-to-head cross table: every pooled defender vs every pooled jammer.
  for (std::size_t i = 0; i < defender_pool_.size(); ++i) {
    core::DqnScheme scheme(config_.defender);
    scheme.agent().load_policy(
        io::ContainerReader::from_bytes(defender_pool_[i].state));
    scheme.set_training(false);
    std::vector<double> row;
    for (std::size_t j = 0; j < jammer_pool_.size(); ++j) {
      row.push_back(eval_defender(
          scheme, jammer_pool_[j].state,
          mix(config_.seed, phase_tag(config_.generations, 5,
                                      i * config_.pool_capacity + j))));
    }
    result.cross_table.push_back(std::move(row));
  }
  result.slots_total = slots_total_;
  result.wall_seconds = now_seconds() - t0;
  return result;
}

}  // namespace ctj::arena
