// Learning adversary (registry key "learned").
//
// Where every other archetype in the zoo follows a fixed rule, this jammer
// carries its own DQN and trains it online against whatever defender it is
// facing — the smart-jammer framing of arXiv:2512.14013 layered on the
// game-theoretic duel of arXiv:1607.06255. Its observation is strictly what
// a real attacker can sense: its own recent actions and whether each one
// landed on the victim's group (hit/ACK feedback); it never reads the
// victim's channel directly. Each slot it picks an m-aligned channel group
// (and, in random-power mode, a power level), blankets it, and rewards
// itself +1 for a hit minus a small emission cost, so camping on the
// victim's hopping pattern is learned, not scripted.
//
// The arena (arena/self_play.hpp) freezes and thaws this jammer between
// best-response phases: frozen it plays its greedy policy without drawing
// exploration randomness or taking gradient steps, so a frozen opponent is
// a fixed strategy. save_state()/load_state() round-trip the full agent
// (networks, Adam moments, replay ring, RNG streams) plus the observation
// window, so a trained adversary revives bit-identically anywhere — the
// conformance contract every archetype honours.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/modes.hpp"
#include "jammer/jammer.hpp"
#include "jammer/registry.hpp"
#include "rl/dqn.hpp"

namespace ctj::arena {

struct LearnedJammerConfig {
  int num_channels = 16;
  int channels_per_sweep = 4;
  std::vector<double> power_levels;
  JammerPowerMode mode = JammerPowerMode::kMaxPower;
  /// Slots of (hit, group, power) feedback the policy observes.
  int history = 8;
  /// Width of both hidden layers of the internal DQN.
  int hidden = 24;
  double learning_rate = 1e-3;
  /// ε anneal horizon in slots (0 = fixed at epsilon_end).
  int epsilon_decay_slots = 2000;
  /// Reward penalty for one slot of emission at max power (scaled down
  /// proportionally at lower levels) — keeps "always jam everything" from
  /// being free, mirroring the duty-cycle archetype's energy pressure.
  double emit_cost = 0.05;

  static LearnedJammerConfig defaults();
  /// Map the registry's flat spec (shared geometry/power fields + the
  /// learn_* tunables) onto this config.
  static LearnedJammerConfig from_spec(const jammer::JammerSpec& spec);

  int sweep_cycle() const;  // ⌈K/m⌉
};

class LearnedJammer : public jammer::Jammer {
 public:
  explicit LearnedJammer(LearnedJammerConfig config, std::uint64_t seed = 41);

  jammer::JammerSlotReport step(int victim_channel) override;
  void reset() override;

  std::string archetype() const override { return "learned"; }
  int num_channels() const override { return config_.num_channels; }
  int channels_per_sweep() const override { return config_.channels_per_sweep; }
  /// Locked while the last emission landed on the victim.
  bool locked() const override { return last_hit_; }
  const LearnedJammerConfig& config() const { return config_; }

  /// Frozen: play the greedy policy only — no exploration draws, no
  /// replay writes, no gradient steps. A frozen jammer is a fixed
  /// strategy, which is what the arena's opponent pool stores.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  bool frozen() const { return frozen_; }

  const rl::DqnAgent& agent() const { return agent_; }
  std::uint64_t slots() const { return slots_; }
  std::uint64_t hits() const { return hits_; }

  std::unique_ptr<Jammer> clone() const override;
  void save_state(io::ByteWriter& out) const override;
  void load_state(io::ByteReader& in) override;

 private:
  std::vector<double> observation() const { return window_; }
  rl::DqnConfig agent_config(std::uint64_t seed) const;

  LearnedJammerConfig config_;
  std::size_t power_actions_ = 1;  // PL in random-power mode, 1 in max
  std::size_t real_actions_ = 2;   // groups × power_actions_
  double max_power_ = 0.0;
  rl::DqnAgent agent_;
  /// Flat (hit, group/groups, power/max) triples, oldest first, always
  /// exactly 3·history doubles — the policy's input vector.
  std::vector<double> window_;
  bool frozen_ = false;
  bool last_hit_ = false;
  std::uint64_t slots_ = 0;
  std::uint64_t hits_ = 0;
};

/// Register the "learned" archetype with the jammer registry (idempotent).
/// Linking ctj_arena does this from a static initializer, but a consumer
/// that only reaches the factory through make_jammer() should call it
/// explicitly — a registrar object in a static library is otherwise fair
/// game for the linker to drop.
void ensure_registered();

}  // namespace ctj::arena
