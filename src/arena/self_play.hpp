// Self-play arena: alternating best-response training between the DQN
// defender (core::DqnScheme) and the learning jammer (LearnedJammer), with
// frozen-opponent pools and per-generation exploitability tracking.
//
// Before generation 0 the defender warms up against the naive (untrained)
// jammer for `warmup_slots`, so the first probe measures a competent but
// unhardened policy rather than an untrained one. One generation:
//   1. Freeze the defender; the jammer trains online for `jammer_slots`
//      against it (its best response to the current defense).
//   2. Exploitability probe: the frozen defender's mean reward against the
//      opponent pool minus its mean reward against the fresh best response.
//      The pool is the "average adversary" the defender was hardened
//      against; the best response is the worst case — the gap shrinks as
//      the defender approaches a policy no single jammer can exploit (the
//      ε-Nash reading of arXiv:1607.06255).
//   3. The best-response jammer joins the opponent pool (oldest entry
//      evicted beyond `pool_capacity`).
//   4. Freeze the jammer pool; the defender trains for `defender_slots`
//      split round-robin across the pool (so it cannot overfit the newest
//      adversary), then a frozen policy snapshot joins the defender pool.
//
// After the last generation the arena plays every pooled defender against
// every pooled jammer for `eval_slots` each — the head-to-head cross table
// whose rows tighten as generations converge.
//
// Persistence: a checkpoint at every generation boundary (META + the
// defender's full scheme state + JAMRCFG + JAMPOLCY + OPPPOOL + ARENAPRG)
// through the CTJS layer; a killed arena resumed from it finishes with a
// bit-identical final checkpoint (test-proven). Resume validates the stored
// arena/env digest and the jammer spec (io::IoError kStateMismatch on any
// drift); `generations` may grow between runs — extending a finished
// arena's budget is the point.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/rl_fh.hpp"
#include "core/trainer.hpp"
#include "jammer/registry.hpp"

namespace ctj::arena {

struct GenerationResult {
  std::size_t generation = 0;
  /// Fraction of jammer-phase slots the (training) jammer hit the victim.
  double jammer_hit_rate = 0.0;
  /// Windowed mean defender reward at the end of the defender phase.
  double defender_train_reward = 0.0;
  /// Frozen defender's mean reward vs the opponent pool (pre-update).
  double reward_vs_pool = 0.0;
  /// Frozen defender's mean reward vs the fresh best-response jammer.
  double reward_vs_best_response = 0.0;
  /// reward_vs_pool − reward_vs_best_response (≥ 0 in expectation; → 0 as
  /// the defender becomes unexploitable).
  double exploitability = 0.0;
};

struct SelfPlayConfig {
  /// Environment template (geometry, power model, losses, base seed). The
  /// jammer field is overwritten with `jammer` below.
  core::EnvironmentConfig env;
  /// Defender construction config; channel/power dimensions must match the
  /// environment's.
  core::DqnScheme::Config defender;
  /// Adversary spec; must be the "learned" archetype.
  jammer::JammerSpec jammer;
  std::size_t generations = 4;
  /// Defender pre-training budget against the naive (untrained, frozen)
  /// jammer before generation 0. Without it the first exploitability probe
  /// measures an untrained defender — which is bad against *everything*, so
  /// the pool/best-response gap starts artificially small and the series
  /// rises before it falls. Warming up makes generation 0 the honest
  /// starting point: a competent but unhardened defender, maximally
  /// exploitable, with the generations driving the gap down. 0 disables.
  std::size_t warmup_slots = 4000;
  /// Jammer best-response training budget per generation.
  std::size_t jammer_slots = 4000;
  /// Defender training budget per generation (split across the pool).
  std::size_t defender_slots = 4000;
  /// Evaluation budget per exploitability probe / cross-table cell.
  std::size_t eval_slots = 2000;
  /// Frozen opponents kept per side (oldest evicted).
  std::size_t pool_capacity = 8;
  std::uint64_t seed = 1;
  /// Checkpoint at every completed generation; resume picks up after the
  /// last one. every_slots is ignored — generation boundaries are the only
  /// points where both populations are between phases.
  std::optional<core::CheckpointOptions> checkpoint;
  std::function<void(const GenerationResult&)> on_generation;

  static SelfPlayConfig defaults();
};

struct SelfPlayResult {
  std::vector<GenerationResult> generations;
  /// Pool-resident generation tags, oldest first (the cross-table axes).
  std::vector<std::size_t> defender_generations;
  std::vector<std::size_t> jammer_generations;
  /// cross_table[i][j]: mean defender reward of pooled defender i against
  /// pooled jammer j over eval_slots.
  std::vector<std::vector<double>> cross_table;
  std::size_t slots_total = 0;
  double wall_seconds = 0.0;
  bool resumed = false;
};

class SelfPlay {
 public:
  explicit SelfPlay(SelfPlayConfig config);
  SelfPlayResult run();

 private:
  struct PoolEntry {
    std::size_t generation = 0;
    std::string state;  // jammer: full save_state bytes; defender: policy
  };

  core::EnvironmentConfig env_config(std::uint64_t seed) const;
  /// Fresh environment with `state` (may be empty = untrained) injected
  /// into its learned jammer, frozen or live.
  core::CompetitionEnvironment make_env(std::uint64_t seed,
                                        const std::string& state,
                                        bool frozen) const;
  static std::string extract_jammer(core::CompetitionEnvironment& env);
  double eval_defender(const core::DqnScheme& defender,
                       const std::string& jammer_state, std::uint64_t seed);
  void run_generation(std::size_t g);
  std::string defender_policy_snapshot() const;

  void save_checkpoint() const;
  bool try_resume();

  SelfPlayConfig config_;
  core::DqnScheme defender_;
  std::string jammer_state_;  // carried across generations; empty = fresh
  std::vector<PoolEntry> jammer_pool_;
  std::vector<PoolEntry> defender_pool_;
  std::vector<GenerationResult> history_;
  std::size_t generations_done_ = 0;
  std::size_t slots_total_ = 0;
  bool resumed_ = false;
};

}  // namespace ctj::arena
