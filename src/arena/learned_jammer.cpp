#include "arena/learned_jammer.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "io/container.hpp"

namespace ctj::arena {

LearnedJammerConfig LearnedJammerConfig::defaults() {
  LearnedJammerConfig config;
  for (int v = 11; v <= 20; ++v) config.power_levels.push_back(v);
  return config;
}

LearnedJammerConfig LearnedJammerConfig::from_spec(
    const jammer::JammerSpec& spec) {
  LearnedJammerConfig config;
  config.num_channels = spec.num_channels;
  config.channels_per_sweep = spec.channels_per_sweep;
  config.power_levels = spec.power_levels;
  config.mode = spec.mode;
  config.history = spec.learn_history;
  config.hidden = spec.learn_hidden;
  config.learning_rate = spec.learn_rate;
  config.epsilon_decay_slots = spec.learn_epsilon_decay;
  config.emit_cost = spec.learn_emit_cost;
  return config;
}

int LearnedJammerConfig::sweep_cycle() const {
  CTJ_CHECK(num_channels > 0 && channels_per_sweep > 0);
  return (num_channels + channels_per_sweep - 1) / channels_per_sweep;
}

rl::DqnConfig LearnedJammer::agent_config(std::uint64_t seed) const {
  rl::DqnConfig dqn;
  dqn.state_dim = static_cast<std::size_t>(3 * config_.history);
  // DqnAgent needs ≥ 2 actions; a single-group max-power geometry (K == m)
  // pads the action set and step() folds the pad back with a modulo.
  dqn.num_actions = std::max<std::size_t>(2, real_actions_);
  dqn.hidden = {static_cast<std::size_t>(config_.hidden),
                static_cast<std::size_t>(config_.hidden)};
  dqn.learning_rate = config_.learning_rate;
  dqn.gamma = 0.9;
  // Rewards are already O(1) (hit indicator minus emit cost) — no rescale.
  dqn.reward_scale = 1.0;
  dqn.epsilon_start = 1.0;
  dqn.epsilon_end = 0.05;
  dqn.epsilon_decay_steps =
      static_cast<std::size_t>(config_.epsilon_decay_slots);
  dqn.batch_size = 32;
  dqn.replay_capacity = 4000;
  dqn.min_replay_before_training = 128;
  dqn.seed = seed;
  return dqn;
}

namespace {

std::size_t power_actions_of(const LearnedJammerConfig& config) {
  return config.mode == JammerPowerMode::kRandomPower
             ? config.power_levels.size()
             : 1;
}

std::size_t real_actions_of(const LearnedJammerConfig& config) {
  return static_cast<std::size_t>(config.sweep_cycle()) *
         power_actions_of(config);
}

}  // namespace

LearnedJammer::LearnedJammer(LearnedJammerConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      power_actions_(power_actions_of(config_)),
      real_actions_(real_actions_of(config_)),
      max_power_(*std::max_element(config_.power_levels.begin(),
                                   config_.power_levels.end())),
      agent_(agent_config(seed)),
      window_(static_cast<std::size_t>(3 * config_.history), 0.0) {
  CTJ_CHECK(config_.num_channels > 0);
  CTJ_CHECK(config_.channels_per_sweep > 0 &&
            config_.channels_per_sweep <= config_.num_channels);
  CTJ_CHECK(!config_.power_levels.empty());
  CTJ_CHECK(config_.history > 0);
  CTJ_CHECK(config_.hidden > 0);
  CTJ_CHECK(config_.emit_cost >= 0.0);
  CTJ_CHECK(max_power_ > 0.0);
}

jammer::JammerSlotReport LearnedJammer::step(int victim_channel) {
  CTJ_CHECK(victim_channel >= 0 && victim_channel < config_.num_channels);
  const int m = config_.channels_per_sweep;
  const int groups = config_.sweep_cycle();

  std::vector<double> state = observation();
  const std::size_t raw =
      frozen_ ? agent_.act_greedy(state) : agent_.act(state);
  const std::size_t action = raw % real_actions_;
  const int group = static_cast<int>(action / power_actions_);
  const double power = config_.mode == JammerPowerMode::kRandomPower
                           ? config_.power_levels[action % power_actions_]
                           : max_power_;

  jammer::JammerSlotReport report;
  report.jammed_group_start = group * m;
  report.emitting = true;
  report.hit = victim_channel >= report.jammed_group_start &&
               victim_channel < report.jammed_group_start + m;
  report.power = power;

  last_hit_ = report.hit;
  ++slots_;
  if (report.hit) ++hits_;

  // Slide the observation window: (hit, normalized group, normalized power)
  // for this slot, oldest triple dropped.
  window_.erase(window_.begin(), window_.begin() + 3);
  window_.push_back(report.hit ? 1.0 : 0.0);
  window_.push_back(static_cast<double>(group) / static_cast<double>(groups));
  window_.push_back(power / max_power_);

  if (!frozen_) {
    rl::Transition transition;
    transition.state = std::move(state);
    transition.action = raw;
    transition.reward = (report.hit ? 1.0 : 0.0) -
                        config_.emit_cost * (power / max_power_);
    transition.next_state = observation();
    agent_.observe(std::move(transition));
  }
  return report;
}

void LearnedJammer::reset() {
  std::fill(window_.begin(), window_.end(), 0.0);
  last_hit_ = false;
  slots_ = 0;
  hits_ = 0;
}

std::unique_ptr<jammer::Jammer> LearnedJammer::clone() const {
  return std::make_unique<LearnedJammer>(*this);
}

void LearnedJammer::save_state(io::ByteWriter& out) const {
  // The agent's own CTJS container (networks, Adam, replay, RNG, counters)
  // nests as one length-prefixed blob inside the jammer's flat payload.
  io::ContainerWriter agent_out;
  agent_.save_state(agent_out);
  out.str(agent_out.to_bytes());
  out.u8(frozen_ ? 1 : 0);
  out.u8(last_hit_ ? 1 : 0);
  out.u64(slots_);
  out.u64(hits_);
  out.f64_vec(window_);
}

void LearnedJammer::load_state(io::ByteReader& in) {
  // Decode and validate everything before touching any member (the strong
  // no-mutation-on-failure rule every archetype follows).
  std::string agent_bytes{in.str()};
  const std::uint8_t frozen = in.u8();
  const std::uint8_t last_hit = in.u8();
  if (frozen > 1 || last_hit > 1) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "learned jammer flags out of range");
  }
  const std::uint64_t slots = in.u64();
  const std::uint64_t hits = in.u64();
  std::vector<double> window = in.f64_vec();
  if (window.size() != window_.size()) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "learned jammer window size mismatch");
  }
  for (double v : window) {
    if (!(v >= 0.0 && v <= 1.0)) {
      throw io::IoError(io::ErrorKind::kBadPayload,
                        "learned jammer window value out of range");
    }
  }
  io::ContainerReader agent_in =
      io::ContainerReader::from_bytes(std::move(agent_bytes));
  // The restore shell may have been constructed with a different seed (a
  // revived opponent keeps its own RNG stream); everything else about the
  // stored agent must match this config, and a mismatch leaves the agent
  // untouched (kStateMismatch propagates as-is so callers can tell a wrong
  // spec from corrupt bytes).
  agent_.load_state_adopt_seed(agent_in);
  frozen_ = frozen != 0;
  last_hit_ = last_hit != 0;
  slots_ = slots;
  hits_ = hits;
  window_ = std::move(window);
}

void ensure_registered() {
  static const bool once = [] {
    jammer::register_jammer(
        "learned", [](const jammer::JammerSpec& spec, std::uint64_t seed) {
          return std::unique_ptr<jammer::Jammer>(
              new LearnedJammer(LearnedJammerConfig::from_spec(spec), seed));
        });
    return true;
  }();
  (void)once;
}

namespace {
// Best-effort static registration for consumers that happen to pull this
// translation unit in; ensure_registered() is the guaranteed path.
const bool kRegistered = (ensure_registered(), true);
}  // namespace

}  // namespace ctj::arena
