// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit Rng (or a seed)
// so that experiments are reproducible run-to-run. Rng wraps std::mt19937_64
// with the handful of draws the simulators need.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace ctj {

/// Seeded pseudo-random generator with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    CTJ_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    CTJ_CHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t index in [0, n).
  std::size_t index(std::size_t n) {
    CTJ_CHECK(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    CTJ_CHECK(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Standard normal draw.
  double normal() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    CTJ_CHECK(stddev >= 0.0);
    return mean + stddev * normal();
  }

  /// Exponential draw with the given rate (lambda > 0).
  double exponential(double rate) {
    CTJ_CHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& choice(std::span<const T> items) {
    CTJ_CHECK(!items.empty());
    return items[index(items.size())];
  }

  template <typename T>
  const T& choice(const std::vector<T>& items) {
    return choice(std::span<const T>(items));
  }

  /// Sample an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng(engine_()); }

  /// Full generator state as text: the mt19937_64 engine stream-serialized
  /// plus both cached distributions (normal_distribution keeps a Box–Muller
  /// spare that must survive a save/restore for draws to stay bit-identical).
  std::string serialize_state() const;
  /// Restore a state produced by serialize_state(); throws CheckFailure on
  /// malformed input without touching the current state.
  void restore_state(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace ctj
