#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ctj {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::mean() const {
  CTJ_CHECK(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  CTJ_CHECK(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  CTJ_CHECK(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  CTJ_CHECK(n_ > 0);
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CTJ_CHECK(hi > lo);
  CTJ_CHECK(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  CTJ_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_center(std::size_t i) const {
  CTJ_CHECK(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(i) + 0.5);
}

double Histogram::bin_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bin_count(i)) / static_cast<double>(total_);
}

}  // namespace ctj
