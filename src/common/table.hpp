// ASCII table printer for benchmark output.
//
// Every figure-reproduction bench prints its series through TextTable so the
// output can be diffed against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ctj {

/// Simple right-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  void add_row(const std::vector<double>& row, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Render with column separators and a rule under the header.
  std::string to_string() const;
  void print(std::ostream& os) const;

  /// Format a double with fixed precision (shared helper).
  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ctj
