#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ctj {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  CTJ_CHECK(n >= 1);
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid accumulated rounding on the endpoint
  return out;
}

std::size_t argmax(std::span<const double> values) {
  CTJ_CHECK(!values.empty());
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

std::size_t argmin(std::span<const double> values) {
  CTJ_CHECK(!values.empty());
  return static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
}

double clamp(double v, double lo, double hi) {
  CTJ_CHECK(lo <= hi);
  return std::min(hi, std::max(lo, v));
}

double minimize_unimodal(const std::function<double(double)>& f, double lo,
                         double hi, double tol, std::size_t max_iter) {
  CTJ_CHECK(lo <= hi);
  CTJ_CHECK(tol > 0.0);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/golden ratio
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  for (std::size_t it = 0; it < max_iter && (b - a) > tol; ++it) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

bool almost_equal(double a, double b, double abs_tol, double rel_tol) {
  return std::abs(a - b) <=
         abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

double mean(std::span<const double> values) {
  CTJ_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double sample_stddev(std::span<const double> values) {
  CTJ_CHECK(values.size() >= 2);
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

}  // namespace ctj
