#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace ctj {
namespace {

thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

std::size_t default_parallelism() {
  if (const char* s = std::getenv("CTJ_BENCH_THREADS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

bool ThreadPool::on_worker_thread() const { return current_pool == this; }

ThreadPool& ThreadPool::shared() {
  // At least 4 workers so parallel_map(n, fn, k) exercises real concurrency
  // for k > hardware_concurrency (the determinism tests sweep thread counts
  // on whatever machine they land on). Never destroyed: tears down at
  // process exit without racing static destruction order against in-flight
  // jobs.
  static ThreadPool* pool =
      new ThreadPool(std::max<std::size_t>(default_parallelism(), 4));
  return *pool;
}

}  // namespace ctj
