// Shared bodies for the kernel layer, included by the scalar and the SIMD
// translation units so the levels differ only in the vectorized primitives,
// never in the surrounding arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/kernels.hpp"

namespace ctj::kern::detail {

// Per-thread packing scratch for the compressed-nonzero matmul: one
// (value, k-index) list per A row of the current row chunk. Thread-local in
// the SIMD TUs so concurrent sweep workers never share buffers; the vectors
// only ever grow, so steady-state calls are allocation-free.
struct MatmulScratch {
  std::vector<double> vals;
  std::vector<std::int32_t> idx;
  std::vector<std::int32_t> cnt;

  void reserve_chunk(std::size_t rows, std::size_t kk) {
    if (vals.size() < rows * kk) {
      vals.resize(rows * kk);
      idx.resize(rows * kk);
    }
    if (cnt.size() < rows) cnt.resize(rows);
  }
};

// Branchless pack of a row's nonzero entries (value + k index) into v/ix.
// Every slot is written, but the cursor only advances past nonzeros, so the
// packed prefix skips exactly the entries the scalar reference's
// `if (aik == 0.0) continue` skips — with no data-dependent branch for the
// predictor to miss on ~half-zero ReLU activations.
inline std::size_t pack_nonzeros(const double* arow, std::size_t kk,
                                 double* v, std::int32_t* ix) {
  std::size_t t = 0;
  for (std::size_t k = 0; k < kk; ++k) {
    v[t] = arow[k];
    ix[t] = static_cast<std::int32_t>(k);
    t += arow[k] != 0.0 ? 1 : 0;
  }
  return t;
}

// Huber derivative/objective for a scalar TD error — same arithmetic as
// rl::huber_grad / rl::huber_loss, restated here so the kernel layer stays
// below the RL library in the dependency order.
inline double huber_grad(double error, double delta) {
  if (error > delta) return delta;
  if (error < -delta) return -delta;
  return error;
}

inline double huber_loss(double error, double delta) {
  const double abs_error = error < 0.0 ? -error : error;
  if (abs_error <= delta) return 0.5 * error * error;
  return delta * (abs_error - 0.5 * delta);
}

// The per-row epilogue of the fused TD + Huber kernel. The row reductions
// (the O(batch × num_actions) part) are the injected primitives; everything
// after them is a handful of scalar ops per row, written identically in both
// levels so a level switch can only move results through the reductions.
template <typename RowMaxFn, typename RowArgmaxFn>
double td_huber_epilogue(const TdHuberArgs& a, double* grad, RowMaxFn row_max,
                         RowArgmaxFn row_argmax) {
  const std::size_t A = a.num_actions;
  double loss = 0.0;
  for (std::size_t i = 0; i < a.batch; ++i) {
    const double* nq = a.next_q + i * A;
    double max_next;
    if (a.next_q_online != nullptr) {
      // Double-DQN: the online network selects the bootstrap action, the
      // target network evaluates it.
      max_next = nq[row_argmax(a.next_q_online + i * A, A)];
    } else {
      max_next = row_max(nq, A);
    }
    const double r = a.rewards[i] * a.reward_scale;
    const double target = a.dones[i] ? r : r + a.gamma * max_next;
    const double error = a.q[i * A + a.actions[i]] - target;
    loss += huber_loss(error, a.huber_delta);
    grad[i * A + a.actions[i]] = huber_grad(error, a.huber_delta) / a.grad_div;
  }
  return loss;
}

}  // namespace ctj::kern::detail
