#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ctj {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CTJ_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  CTJ_CHECK_MSG(row.size() == headers_.size(),
                "row arity " << row.size() << " != " << headers_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

}  // namespace ctj
