// Physical-unit helpers for the 2.4 GHz ISM band simulations.
//
// Power is handled in dBm and milliwatts; conversions are centralized here so
// the channel model and the jammer agree on the arithmetic.
#pragma once

#include <cmath>

#include "common/check.hpp"

namespace ctj {

/// Convert a power in milliwatts to dBm.
inline double mw_to_dbm(double mw) {
  CTJ_CHECK(mw > 0.0);
  return 10.0 * std::log10(mw);
}

/// Convert a power in dBm to milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Convert a linear power ratio to dB.
inline double ratio_to_db(double ratio) {
  CTJ_CHECK(ratio > 0.0);
  return 10.0 * std::log10(ratio);
}

/// Convert dB to a linear power ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Speed of light (m/s), used by free-space path loss.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Thermal noise power density at 290 K in dBm/Hz (kTB with B = 1 Hz).
inline constexpr double kThermalNoiseDbmPerHz = -174.0;

/// Thermal noise floor in dBm for a bandwidth in Hz.
inline double noise_floor_dbm(double bandwidth_hz) {
  CTJ_CHECK(bandwidth_hz > 0.0);
  return kThermalNoiseDbmPerHz + 10.0 * std::log10(bandwidth_hz);
}

namespace units {

/// Frequency helpers (all return Hz).
inline constexpr double mhz(double v) { return v * 1e6; }
inline constexpr double ghz(double v) { return v * 1e9; }

/// Time helpers (all return seconds).
inline constexpr double ms(double v) { return v * 1e-3; }
inline constexpr double us(double v) { return v * 1e-6; }

}  // namespace units
}  // namespace ctj
