#include "common/kernels.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/kernels_detail.hpp"
#include "common/logging.hpp"

namespace ctj::kern {
namespace {

// ------------------------------------------------------- scalar kernels ----
// These are the determinism baseline: matmul_acc is the blocked ikj product
// that lived in rl/matrix.cpp (same tile sizes, same zero-skip, same
// k-accumulation order), bias_act is the two-pass bias-then-ReLU the MLP
// forward used to run, and the reductions fold left to right exactly like
// the loops they replaced. This TU is built with -ffp-contract=off, so a
// CTJ_SIMD=off run produces the same bits on a native and a portable build.

// Tile sizes for the blocked matmul: a kI×kJ tile of C plus the touched rows
// of B stay L1-resident while the k loop streams over them. k itself is never
// tiled, so each C element accumulates in the same order as the naive ikj
// product.
constexpr std::size_t kBlockI = 32;
constexpr std::size_t kBlockJ = 128;

void matmul_acc_scalar(double* c, const double* a, const double* b,
                       std::size_t m, std::size_t kk, std::size_t n) {
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockI) {
    const std::size_t i1 = std::min(m, i0 + kBlockI);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const std::size_t j1 = std::min(n, j0 + kBlockJ);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* arow = a + i * kk;
        double* crow = c + i * n;
        for (std::size_t k = 0; k < kk; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          const double* brow = b + k * n;
          for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void saxpy_scalar(std::size_t n, double a, const double* x, double* y) {
  for (std::size_t j = 0; j < n; ++j) y[j] += a * x[j];
}

void bias_act_scalar(double* y, const double* bias, std::size_t rows,
                     std::size_t cols, bool relu) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = y + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
  if (relu) {
    for (std::size_t k = 0; k < rows * cols; ++k) {
      if (y[k] < 0.0) y[k] = 0.0;
    }
  }
}

double row_max_scalar(const double* x, std::size_t n) {
  double m = x[0];
  for (std::size_t j = 1; j < n; ++j) {
    if (x[j] > m) m = x[j];
  }
  return m;
}

std::size_t row_argmax_scalar(const double* x, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t j = 1; j < n; ++j) {
    if (x[j] > x[best]) best = j;
  }
  return best;
}

double td_huber_batch_scalar(const TdHuberArgs& args, double* grad) {
  return detail::td_huber_epilogue(args, grad, row_max_scalar,
                                   row_argmax_scalar);
}

void adam_update_scalar(double* p, double* m, double* v, const double* g,
                        std::size_t n, double beta1, double beta2, double lr,
                        double bc1, double bc2, double epsilon) {
  for (std::size_t k = 0; k < n; ++k) {
    const double gk = g[k];
    m[k] = beta1 * m[k] + (1.0 - beta1) * gk;
    v[k] = beta2 * v[k] + (1.0 - beta2) * gk * gk;
    const double mhat = m[k] / bc1;
    const double vhat = v[k] / bc2;
    p[k] -= lr * mhat / (std::sqrt(vhat) + epsilon);
  }
}

void viterbi_acs_hard_scalar(const std::int32_t* metric,
                             const std::int32_t* cost0,
                             const std::int32_t* cost1, std::int32_t* next,
                             std::uint64_t* chosen) {
  std::uint64_t bits = 0;
  for (unsigned ns = 0; ns < 64; ++ns) {
    const unsigned j = ns & 31;
    const std::int32_t v0 = metric[2 * j] + cost0[ns];
    const std::int32_t v1 = metric[2 * j + 1] + cost1[ns];
    const bool odd = v1 < v0;
    next[ns] = odd ? v1 : v0;
    bits |= static_cast<std::uint64_t>(odd) << ns;
  }
  *chosen = bits;
}

void viterbi_acs_soft_scalar(const double* metric, const double* cost0,
                             const double* cost1, double* next,
                             std::uint64_t* chosen) {
  std::uint64_t bits = 0;
  for (unsigned ns = 0; ns < 64; ++ns) {
    const unsigned j = ns & 31;
    const double v0 = metric[2 * j] + cost0[ns];
    const double v1 = metric[2 * j + 1] + cost1[ns];
    const bool odd = v1 < v0;
    next[ns] = odd ? v1 : v0;
    bits |= static_cast<std::uint64_t>(odd) << ns;
  }
  *chosen = bits;
}

// The reference arithmetic mirrors the Qam64::quantize path exactly:
// x·(1/(α·norm)) onto the slot grid via std::round((x+7)/2) clamped to
// [0, 7], back through level = −7 + 2·slot, (level·norm)·α, and a
// left-to-right err += dre² + dim² fold — so the scalar kernel is
// bit-identical to the pre-kernel quantization_error loop.
double qam64_error_scalar(const double* iq, std::size_t n, double alpha,
                          double norm) {
  const double scale = 1.0 / (alpha * norm);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double re = iq[2 * i];
    const double im = iq[2 * i + 1];
    double si = std::round((re * scale + 7.0) / 2.0);
    if (si < 0.0) si = 0.0;
    if (si > 7.0) si = 7.0;
    double sq = std::round((im * scale + 7.0) / 2.0);
    if (sq < 0.0) sq = 0.0;
    if (sq > 7.0) sq = 7.0;
    const double dre = ((-7.0 + 2.0 * si) * norm) * alpha - re;
    const double dim = ((-7.0 + 2.0 * sq) * norm) * alpha - im;
    err += dre * dre + dim * dim;
  }
  return err;
}

}  // namespace

const KernelOps& scalar_ops() {
  static constexpr KernelOps kOps{
      "scalar",         matmul_acc_scalar, saxpy_scalar,
      bias_act_scalar,  row_max_scalar,    row_argmax_scalar,
      td_huber_batch_scalar, adam_update_scalar,
      viterbi_acs_hard_scalar, viterbi_acs_soft_scalar, qam64_error_scalar,
  };
  return kOps;
}

// ------------------------------------------------------------- dispatch ----

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return cpu_supports_avx2() && __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

SimdLevel resolve_level(const char* override_value, bool cpu_has_avx2,
                        bool cpu_has_avx512) {
  std::string v = override_value ? override_value : "";
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const bool avx2_usable = avx2_ops() != nullptr && cpu_has_avx2;
  const bool avx512_usable =
      avx512_ops() != nullptr && cpu_has_avx2 && cpu_has_avx512;
  const SimdLevel best = avx512_usable ? SimdLevel::kAvx512
                         : avx2_usable ? SimdLevel::kAvx2
                                       : SimdLevel::kScalar;
  if (v == "off" || v == "scalar") return SimdLevel::kScalar;
  if (v == "avx2") {
    if (avx2_usable) return SimdLevel::kAvx2;
    CTJ_WARN(
        "CTJ_SIMD=avx2 requested but AVX2+FMA is unavailable on this "
        "build/CPU; falling back to scalar kernels");
    return SimdLevel::kScalar;
  }
  if (v == "avx512") {
    if (avx512_usable) return SimdLevel::kAvx512;
    CTJ_WARN("CTJ_SIMD=avx512 requested but AVX-512F is unavailable on this "
             "build/CPU; falling back to the best supported level");
    return best;
  }
  if (!v.empty()) {
    CTJ_WARN("unrecognized CTJ_SIMD value '"
             << v
             << "' (expected off, scalar, avx2 or avx512); auto-detecting");
  }
  return best;
}

SimdLevel active_level() {
  static const SimdLevel level = resolve_level(
      std::getenv("CTJ_SIMD"), cpu_supports_avx2(), cpu_supports_avx512());
  return level;
}

const KernelOps& ops() {
  switch (active_level()) {
    case SimdLevel::kAvx512:
      return *avx512_ops();
    case SimdLevel::kAvx2:
      return *avx2_ops();
    case SimdLevel::kScalar:
      break;
  }
  return scalar_ops();
}

const char* simd_level_name() { return ops().name; }

}  // namespace ctj::kern
