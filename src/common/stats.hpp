// Streaming statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace ctj {

/// Welford-style running mean / variance / min / max accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1); requires count() >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merge another accumulator into this one.
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ratio counter: occurrences / trials, e.g. the Table-I adoption rates.
class RateCounter {
 public:
  void record(bool hit) {
    ++trials_;
    if (hit) ++hits_;
  }
  std::size_t trials() const { return trials_; }
  std::size_t hits() const { return hits_; }
  /// Rate in [0,1]; 0 when no trials were recorded.
  double rate() const {
    return trials_ == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(trials_);
  }

 private:
  std::size_t trials_ = 0;
  std::size_t hits_ = 0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Center x-value of bin i.
  double bin_center(std::size_t i) const;
  /// Fraction of mass in bin i (0 when empty).
  double bin_fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ctj
