// Minimal JSON document builder for the bench perf-tracking output.
//
// Build-only (no parser): the benches assemble a tree of values and dump it
// to a stream. Insertion order of object keys is preserved so the emitted
// files diff cleanly run-to-run. Non-finite doubles serialize as null —
// BENCH_*.json must always be valid JSON.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ctj {

class JsonValue {
 public:
  JsonValue() = default;  // null
  JsonValue(bool value);
  JsonValue(int value);
  JsonValue(std::size_t value);
  JsonValue(double value);
  JsonValue(const char* value);
  JsonValue(std::string value);

  static JsonValue object();
  static JsonValue array();

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object field accessor: inserts a null member on first use.
  JsonValue& operator[](const std::string& key);

  /// Append to an array.
  JsonValue& push_back(JsonValue value);

  std::size_t size() const;

  /// Serialize; indent = 0 emits a single line, otherwise pretty-prints
  /// with the given indent width.
  void dump(std::ostream& os, int indent = 2) const;
  std::string dump(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

/// JSON string escaping (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace ctj
