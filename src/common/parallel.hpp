// Reusable thread pool and a deterministic parallel_map for embarrassingly
// parallel sweeps.
//
// The figure benches train and evaluate an independent DQN per sweep point —
// ideal fan-out work. parallel_map(n, fn) applies fn(i) for i in [0, n) on a
// shared pool and returns the results in index order. Determinism contract:
// as long as fn(i) depends only on i (every bench point seeds its own Rng),
// the result vector is bit-identical for ANY thread count, including the
// sequential num_threads == 1 path — scheduling order only changes *when*
// each item runs, never what it computes or where its result lands.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ctj {

/// Worker-thread count for bench fan-out: the CTJ_BENCH_THREADS environment
/// variable when set to a positive integer, otherwise hardware_concurrency().
std::size_t default_parallelism();

/// Fixed-size pool of worker threads consuming a FIFO job queue.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job; runs on some worker thread.
  void submit(std::function<void()> job);

  /// Block until every job submitted so far has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Process-wide pool with default_parallelism() workers, created on first
  /// use. Benches share it so repeated parallel_map calls reuse the threads.
  static ThreadPool& shared();

  /// True when called from inside one of this pool's workers (parallel_map
  /// uses it to run nested calls inline instead of deadlocking on the pool).
  bool on_worker_thread() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Apply fn(i) for each i in [0, n) and return {fn(0), …, fn(n−1)}.
///
/// Work is distributed over `num_threads` workers of the shared pool
/// (0 = default_parallelism()). Runs inline when only one thread is asked
/// for, when there is at most one item, or when already on a pool worker.
/// The first exception thrown by any fn(i) is rethrown on the caller.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t num_threads = 0)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using Result = decltype(fn(std::size_t{}));
  if (num_threads == 0) num_threads = default_parallelism();

  std::vector<Result> results(n);
  if (n == 0) return results;
  if (num_threads <= 1 || n == 1 || ThreadPool::shared().on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  const std::size_t total = n;

  auto drain = [state, total, &results, &fn]() {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= total) break;
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1) + 1 == total) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
  };

  // The caller participates too, so num_threads counts it plus the workers.
  const std::size_t helpers = std::min(num_threads - 1, total - 1);
  for (std::size_t t = 0; t < helpers; ++t) ThreadPool::shared().submit(drain);
  drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock,
                       [&] { return state->done.load() == total; });
  if (state->error) std::rethrow_exception(state->error);
  return results;
}

}  // namespace ctj
