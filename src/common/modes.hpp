// Domain enums shared by the MDP model, the behavioural jammer and the
// experiment harnesses.
#pragma once

#include <span>

namespace ctj {

/// Jammer power-selection behaviour (Sec. II.C.1 of the paper):
/// high-performance mode always transmits at the top power level; hidden
/// (random) mode draws uniformly from its power levels each slot.
enum class JammerPowerMode { kMaxPower, kRandomPower };

const char* to_string(JammerPowerMode mode);

/// The power duel of Eqs. (7)–(8): q = P(p^T >= τ), the probability a
/// transmission at `tx_level` survives a jamming attempt when the jammer
/// draws its power τ per `mode` from `jam_levels`. Shared by the analytic
/// MDP (src/mdp) and the sampling simulator (src/core) so the two cannot
/// silently drift apart.
double duel_success_prob(double tx_level, std::span<const double> jam_levels,
                         JammerPowerMode mode);

}  // namespace ctj
