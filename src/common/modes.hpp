// Domain enums shared by the MDP model, the behavioural jammer and the
// experiment harnesses.
#pragma once

namespace ctj {

/// Jammer power-selection behaviour (Sec. II.C.1 of the paper):
/// high-performance mode always transmits at the top power level; hidden
/// (random) mode draws uniformly from its power levels each slot.
enum class JammerPowerMode { kMaxPower, kRandomPower };

const char* to_string(JammerPowerMode mode);

}  // namespace ctj
