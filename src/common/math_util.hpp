// Small numeric utilities shared across modules.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace ctj {

/// n evenly spaced points from lo to hi inclusive (n >= 2), or {lo} for n == 1.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Index of the maximum element (first on ties). Span must be non-empty.
std::size_t argmax(std::span<const double> values);

/// Index of the minimum element (first on ties). Span must be non-empty.
std::size_t argmin(std::span<const double> values);

/// Clamp v into [lo, hi].
double clamp(double v, double lo, double hi);

/// Minimize a unimodal (e.g. convex) function over [lo, hi] by golden-section
/// search. Returns the minimizing x; |interval| shrinks below tol.
/// This is the search the paper invokes for the quantization scale α (Eq. 2).
double minimize_unimodal(const std::function<double(double)>& f, double lo,
                         double hi, double tol = 1e-9,
                         std::size_t max_iter = 200);

/// True if |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool almost_equal(double a, double b, double abs_tol = 1e-9,
                  double rel_tol = 1e-9);

/// Arithmetic mean of a non-empty span.
double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator) of a span with >= 2 elements.
double sample_stddev(std::span<const double> values);

}  // namespace ctj
