#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ctj {

JsonValue::JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
JsonValue::JsonValue(int value)
    : kind_(Kind::kNumber), number_(value), integral_(true) {}
JsonValue::JsonValue(std::size_t value)
    : kind_(Kind::kNumber), number_(static_cast<double>(value)),
      integral_(true) {}
JsonValue::JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
JsonValue::JsonValue(const char* value)
    : kind_(Kind::kString), string_(value) {}
JsonValue::JsonValue(std::string value)
    : kind_(Kind::kString), string_(std::move(value)) {}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  CTJ_CHECK_MSG(kind_ == Kind::kNull || kind_ == Kind::kObject,
                "operator[] on a non-object JSON value");
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, JsonValue());
  return members_.back().second;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  CTJ_CHECK_MSG(kind_ == Kind::kNull || kind_ == Kind::kArray,
                "push_back on a non-array JSON value");
  kind_ = Kind::kArray;
  elements_.push_back(std::move(value));
  return elements_.back();
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return elements_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_number(std::ostream& os, double v, bool integral) {
  if (!std::isfinite(v)) {
#ifndef NDEBUG
    // A NaN/Inf reaching serialization is a bug upstream; surface it loudly
    // in debug builds. Release emits valid JSON (null) instead of "nan".
    CTJ_CHECK_MSG(false, "non-finite number in JSON output");
#endif
    os << "null";
    return;
  }
  if (integral || v == std::floor(v)) {
    // Integers (and doubles that happen to be integral) print exactly when
    // they fit; avoids "20000.0" noise in slot counts.
    if (std::abs(v) < 9.007199254740992e15) {
      os << static_cast<long long>(v);
      return;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void put_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void JsonValue::dump_impl(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: dump_number(os, number_, integral_); break;
    case Kind::kString: os << '"' << json_escape(string_) << '"'; break;
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        put_newline_indent(os, indent, depth + 1);
        os << '"' << json_escape(members_[i].first) << "\": ";
        members_[i].second.dump_impl(os, indent, depth + 1);
        if (i + 1 < members_.size()) os << ',';
      }
      put_newline_indent(os, indent, depth);
      os << '}';
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        put_newline_indent(os, indent, depth + 1);
        elements_[i].dump_impl(os, indent, depth + 1);
        if (i + 1 < elements_.size()) os << ',';
      }
      put_newline_indent(os, indent, depth);
      os << ']';
      break;
    }
  }
}

void JsonValue::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

}  // namespace ctj
