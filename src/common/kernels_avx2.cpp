// AVX2/FMA kernel set. This translation unit is compiled with -mavx2 -mfma
// regardless of the global architecture flags, so even a portable
// (-DCTJ_NATIVE=OFF) binary carries these paths; kern::ops() only selects
// them when CPUID reports AVX2+FMA at run time.
//
// Numerics: the matmul/saxpy kernels contract multiply-add into FMA (one
// rounding instead of two) while keeping the scalar k-accumulation order, so
// they are ULP-close but not bit-identical to the scalar reference. The
// max/argmax reductions, bias_act and adam_update contain no FMA: max is
// order-independent for non-NaN input and the Adam step is elementwise over
// correctly rounded operations, so those kernels are bit-exact against the
// scalar level.
#include "common/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

#include "common/kernels_detail.hpp"

namespace ctj::kern {
namespace {

// Register-blocked compressed-nonzero C += A·B. Each A row of the current
// chunk is packed once into a (value, k-index) list of its nonzeros — a
// branchless pass, so the ~half-zero ReLU activation rows that made a
// data-dependent `if (aik == 0.0) continue` mispredict catastrophically cost
// nothing here — and the FMA loops then run over the packed list only. That
// skips exactly the entries the scalar reference skips (one-hot DQN output
// gradients stay bit-exact) and halves both FMAs and B-row loads on ReLU
// activations. The FMA body keeps a 32-wide stripe of one C row in eight ymm
// accumulators across the whole packed loop: eight independent dependency
// chains cover the FMA latency, and C traffic drops k-fold versus the
// load/store-per-k pattern the autovectorizer produces. Stripes stay in the
// outer loop so the touched B columns remain L1-resident while the row loop
// streams over them. Per C element the packed accumulation preserves the
// scalar k order, so results stay ULP-bounded against the scalar reference.
void matmul_acc_avx2(double* c, const double* a, const double* b,
                     std::size_t m, std::size_t kk, std::size_t n) {
  constexpr std::size_t kRowChunk = 32;
  static thread_local detail::MatmulScratch scratch;
  scratch.reserve_chunk(std::min(m, kRowChunk), kk);
  for (std::size_t i0 = 0; i0 < m; i0 += kRowChunk) {
    const std::size_t i1 = std::min(m, i0 + kRowChunk);
    for (std::size_t i = i0; i < i1; ++i) {
      scratch.cnt[i - i0] = static_cast<std::int32_t>(detail::pack_nonzeros(
          a + i * kk, kk, scratch.vals.data() + (i - i0) * kk,
          scratch.idx.data() + (i - i0) * kk));
    }
    std::size_t j0 = 0;
    for (; j0 + 32 <= n; j0 += 32) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m256d c0 = _mm256_loadu_pd(crow + 0);
        __m256d c1 = _mm256_loadu_pd(crow + 4);
        __m256d c2 = _mm256_loadu_pd(crow + 8);
        __m256d c3 = _mm256_loadu_pd(crow + 12);
        __m256d c4 = _mm256_loadu_pd(crow + 16);
        __m256d c5 = _mm256_loadu_pd(crow + 20);
        __m256d c6 = _mm256_loadu_pd(crow + 24);
        __m256d c7 = _mm256_loadu_pd(crow + 28);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          const __m256d va = _mm256_set1_pd(v[t]);
          const double* brow = bcol + static_cast<std::size_t>(ix[t]) * n;
          c0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 0), c0);
          c1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 4), c1);
          c2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 8), c2);
          c3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 12), c3);
          c4 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 16), c4);
          c5 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 20), c5);
          c6 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 24), c6);
          c7 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 28), c7);
        }
        _mm256_storeu_pd(crow + 0, c0);
        _mm256_storeu_pd(crow + 4, c1);
        _mm256_storeu_pd(crow + 8, c2);
        _mm256_storeu_pd(crow + 12, c3);
        _mm256_storeu_pd(crow + 16, c4);
        _mm256_storeu_pd(crow + 20, c5);
        _mm256_storeu_pd(crow + 24, c6);
        _mm256_storeu_pd(crow + 28, c7);
      }
    }
    for (; j0 + 8 <= n; j0 += 8) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m256d c0 = _mm256_loadu_pd(crow + 0);
        __m256d c1 = _mm256_loadu_pd(crow + 4);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          const __m256d va = _mm256_set1_pd(v[t]);
          const double* brow = bcol + static_cast<std::size_t>(ix[t]) * n;
          c0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 0), c0);
          c1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 4), c1);
        }
        _mm256_storeu_pd(crow + 0, c0);
        _mm256_storeu_pd(crow + 4, c1);
      }
    }
    for (; j0 + 4 <= n; j0 += 4) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m256d c0 = _mm256_loadu_pd(crow);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          c0 = _mm256_fmadd_pd(
              _mm256_set1_pd(v[t]),
              _mm256_loadu_pd(bcol + static_cast<std::size_t>(ix[t]) * n),
              c0);
        }
        _mm256_storeu_pd(crow, c0);
      }
    }
    if (j0 < n) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n;
        for (std::size_t j = j0; j < n; ++j) {
          double s = crow[j];
          for (std::size_t t = 0; t < nnz; ++t) {
            s = __builtin_fma(v[t], b[static_cast<std::size_t>(ix[t]) * n + j],
                              s);
          }
          crow[j] = s;
        }
      }
    }
  }
}

void saxpy_avx2(std::size_t n, double a, const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + j),
                               _mm256_loadu_pd(y + j)));
    _mm256_storeu_pd(
        y + j + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + j + 4),
                                   _mm256_loadu_pd(y + j + 4)));
  }
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + j),
                               _mm256_loadu_pd(y + j)));
  }
  for (; j < n; ++j) y[j] = __builtin_fma(a, x[j], y[j]);
}

// Single-pass fused bias + ReLU (the scalar reference makes two passes, as
// the pre-kernel MLP forward did). Plain add + max: no FMA, bit-exact
// against the scalar level.
void bias_act_avx2(double* y, const double* bias, std::size_t rows,
                   std::size_t cols, bool relu) {
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = y + r * cols;
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      __m256d v =
          _mm256_add_pd(_mm256_loadu_pd(row + c), _mm256_loadu_pd(bias + c));
      if (relu) v = _mm256_max_pd(v, zero);
      _mm256_storeu_pd(row + c, v);
    }
    for (; c < cols; ++c) {
      double v = row[c] + bias[c];
      if (relu && v < 0.0) v = 0.0;
      row[c] = v;
    }
  }
}

double row_max_avx2(const double* x, std::size_t n) {
  if (n < 8) {
    double m = x[0];
    for (std::size_t j = 1; j < n; ++j) {
      if (x[j] > m) m = x[j];
    }
    return m;
  }
  __m256d m0 = _mm256_loadu_pd(x);
  __m256d m1 = _mm256_loadu_pd(x + 4);
  std::size_t j = 8;
  for (; j + 8 <= n; j += 8) {
    m0 = _mm256_max_pd(m0, _mm256_loadu_pd(x + j));
    m1 = _mm256_max_pd(m1, _mm256_loadu_pd(x + j + 4));
  }
  m0 = _mm256_max_pd(m0, m1);
  const __m128d lo = _mm256_castpd256_pd128(m0);
  const __m128d hi = _mm256_extractf128_pd(m0, 1);
  __m128d m2 = _mm_max_pd(lo, hi);
  m2 = _mm_max_sd(m2, _mm_unpackhi_pd(m2, m2));
  double m = _mm_cvtsd_f64(m2);
  for (; j < n; ++j) {
    if (x[j] > m) m = x[j];
  }
  return m;
}

// First index of the maximum: SIMD max reduction, then a compare+movemask
// scan for the first element equal to it (first-on-ties, like ctj::argmax).
std::size_t row_argmax_avx2(const double* x, std::size_t n) {
  if (n < 8) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < n; ++j) {
      if (x[j] > x[best]) best = j;
    }
    return best;
  }
  const double m = row_max_avx2(x, n);
  const __m256d vm = _mm256_set1_pd(m);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(x + j), vm, _CMP_EQ_OQ));
    if (mask != 0) {
      return j + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  for (; j < n; ++j) {
    if (x[j] == m) return j;
  }
  return 0;  // only reachable for NaN input; mirror the scalar fold
}

double td_huber_batch_avx2(const TdHuberArgs& args, double* grad) {
  return detail::td_huber_epilogue(args, grad, row_max_avx2, row_argmax_avx2);
}

// Elementwise Adam step. Deliberately FMA-free — mul+add, _mm256_div_pd and
// _mm256_sqrt_pd are all correctly rounded, so this path is bit-exact with
// the scalar reference while retiring the per-parameter sqrt + three
// divisions four lanes at a time (they dominate the optimizer cost).
void adam_update_avx2(double* p, double* m, double* v, const double* g,
                      std::size_t n, double beta1, double beta2, double lr,
                      double bc1, double bc2, double epsilon) {
  const __m256d vb1 = _mm256_set1_pd(beta1);
  const __m256d vb2 = _mm256_set1_pd(beta2);
  const __m256d vomb1 = _mm256_set1_pd(1.0 - beta1);
  const __m256d vomb2 = _mm256_set1_pd(1.0 - beta2);
  const __m256d vbc1 = _mm256_set1_pd(bc1);
  const __m256d vbc2 = _mm256_set1_pd(bc2);
  const __m256d vlr = _mm256_set1_pd(lr);
  const __m256d veps = _mm256_set1_pd(epsilon);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d gk = _mm256_loadu_pd(g + k);
    const __m256d mk = _mm256_add_pd(_mm256_mul_pd(vb1, _mm256_loadu_pd(m + k)),
                                     _mm256_mul_pd(vomb1, gk));
    // ((1−β₂)·g)·g, in the scalar reference's association order.
    const __m256d vk = _mm256_add_pd(
        _mm256_mul_pd(vb2, _mm256_loadu_pd(v + k)),
        _mm256_mul_pd(_mm256_mul_pd(vomb2, gk), gk));
    _mm256_storeu_pd(m + k, mk);
    _mm256_storeu_pd(v + k, vk);
    const __m256d mhat = _mm256_div_pd(mk, vbc1);
    const __m256d vhat = _mm256_div_pd(vk, vbc2);
    const __m256d step = _mm256_div_pd(
        _mm256_mul_pd(vlr, mhat), _mm256_add_pd(_mm256_sqrt_pd(vhat), veps));
    _mm256_storeu_pd(p + k, _mm256_sub_pd(_mm256_loadu_pd(p + k), step));
  }
  for (; k < n; ++k) {
    const double gk = g[k];
    m[k] = beta1 * m[k] + (1.0 - beta1) * gk;
    v[k] = beta2 * v[k] + (1.0 - beta2) * gk * gk;
    const double mhat = m[k] / bc1;
    const double vhat = v[k] / bc2;
    p[k] -= lr * mhat / (__builtin_sqrt(vhat) + epsilon);
  }
}

// 64-state butterfly ACS, 8 next states per ymm. The 64 predecessors split
// into four 16-metric ranges; each range is deinterleaved once into an
// even/odd pair (permutevar + permute2x128) and reused by the two 8-state
// blocks that draw on it (ns and ns+32 share j = ns & 31). Integer adds and
// min_epi32 only, so the result is bit-exact with the scalar reference; the
// odd-wins mask comes from cmpgt(v0, v1), which matches the scalar strict
// `v1 < v0` tie-break.
void viterbi_acs_hard_avx2(const std::int32_t* metric,
                           const std::int32_t* cost0,
                           const std::int32_t* cost1, std::int32_t* next,
                           std::uint64_t* chosen) {
  const __m256i deint = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  __m256i even[4];
  __m256i odd[4];
  for (int k = 0; k < 4; ++k) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(metric + 16 * k));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(metric + 16 * k + 8));
    const __m256i pa = _mm256_permutevar8x32_epi32(a, deint);
    const __m256i pb = _mm256_permutevar8x32_epi32(b, deint);
    even[k] = _mm256_permute2x128_si256(pa, pb, 0x20);
    odd[k] = _mm256_permute2x128_si256(pa, pb, 0x31);
  }
  std::uint64_t bits = 0;
  for (int b = 0; b < 8; ++b) {
    const __m256i v0 = _mm256_add_epi32(
        even[b & 3],
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cost0 + 8 * b)));
    const __m256i v1 = _mm256_add_epi32(
        odd[b & 3],
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cost1 + 8 * b)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(next + 8 * b),
                        _mm256_min_epi32(v0, v1));
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(v0, v1))));
    bits |= static_cast<std::uint64_t>(mask) << (8 * b);
  }
  *chosen = bits;
}

// Double-metric flavor, 4 next states per ymm: deinterleave each 8-metric
// predecessor range via permute2f128 + unpack, plain adds and min_pd.
// min_pd(v1, v0) returns v0 on ties, matching the scalar even-wins rule,
// and _CMP_LT_OQ(v1, v0) is exactly the scalar `v1 < v0` chosen bit.
void viterbi_acs_soft_avx2(const double* metric, const double* cost0,
                           const double* cost1, double* next,
                           std::uint64_t* chosen) {
  __m256d even[8];
  __m256d odd[8];
  for (int k = 0; k < 8; ++k) {
    const __m256d a = _mm256_loadu_pd(metric + 8 * k);
    const __m256d b = _mm256_loadu_pd(metric + 8 * k + 4);
    const __m256d t0 = _mm256_permute2f128_pd(a, b, 0x20);
    const __m256d t1 = _mm256_permute2f128_pd(a, b, 0x31);
    even[k] = _mm256_unpacklo_pd(t0, t1);
    odd[k] = _mm256_unpackhi_pd(t0, t1);
  }
  std::uint64_t bits = 0;
  for (int b = 0; b < 16; ++b) {
    const __m256d v0 = _mm256_add_pd(even[b & 7], _mm256_loadu_pd(cost0 + 4 * b));
    const __m256d v1 = _mm256_add_pd(odd[b & 7], _mm256_loadu_pd(cost1 + 4 * b));
    _mm256_storeu_pd(next + 4 * b, _mm256_min_pd(v1, v0));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v1, v0, _CMP_LT_OQ)));
    bits |= static_cast<std::uint64_t>(mask) << (4 * b);
  }
  *chosen = bits;
}

// Four components (two complex points) per iteration; re and im go through
// the identical snap, so no deinterleave is needed. floor(v + 0.5) replaces
// round-half-away (equal for the clamped v ≥ 0 range except exact-boundary
// ULP cases) and the four-lane accumulator reassociates the sum, so this
// level is tolerance-bound against the scalar reference, like matmul.
double qam64_error_avx2(const double* iq, std::size_t n, double alpha,
                        double norm) {
  const double scale = 1.0 / (alpha * norm);
  const std::size_t total = 2 * n;
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vseven = _mm256_set1_pd(7.0);
  const __m256d vhalf = _mm256_set1_pd(0.5);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vtwo = _mm256_set1_pd(2.0);
  const __m256d vnorm_alpha = _mm256_set1_pd(norm * alpha);
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= total; j += 4) {
    const __m256d v = _mm256_loadu_pd(iq + j);
    const __m256d x =
        _mm256_mul_pd(_mm256_add_pd(_mm256_mul_pd(v, vscale), vseven), vhalf);
    __m256d slot = _mm256_floor_pd(_mm256_add_pd(x, vhalf));
    slot = _mm256_min_pd(_mm256_max_pd(slot, vzero), vseven);
    const __m256d level = _mm256_sub_pd(_mm256_mul_pd(slot, vtwo), vseven);
    const __m256d d = _mm256_sub_pd(_mm256_mul_pd(level, vnorm_alpha), v);
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  __m128d sum2 = _mm_add_pd(lo, hi);
  sum2 = _mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2));
  double err = _mm_cvtsd_f64(sum2);
  for (; j < total; ++j) {
    const double x = (iq[j] * scale + 7.0) * 0.5;
    double slot = __builtin_floor(x + 0.5);
    if (slot < 0.0) slot = 0.0;
    if (slot > 7.0) slot = 7.0;
    const double d = (slot * 2.0 - 7.0) * (norm * alpha) - iq[j];
    err += d * d;
  }
  return err;
}

}  // namespace

const KernelOps* avx2_ops() {
  static constexpr KernelOps kOps{
      "avx2",        matmul_acc_avx2, saxpy_avx2,
      bias_act_avx2, row_max_avx2,    row_argmax_avx2,
      td_huber_batch_avx2, adam_update_avx2,
      viterbi_acs_hard_avx2, viterbi_acs_soft_avx2, qam64_error_avx2,
  };
  return &kOps;
}

}  // namespace ctj::kern

#else  // !(__AVX2__ && __FMA__)

namespace ctj::kern {

const KernelOps* avx2_ops() { return nullptr; }

}  // namespace ctj::kern

#endif
