// Runtime-dispatched SIMD kernel layer for the NN/DSP hot paths.
//
// Every kernel exists twice: a portable scalar reference — the same loops
// and accumulation order as the pre-kernel-layer implementations, compiled
// with FP contraction disabled so the arithmetic is plain IEEE mul/add and
// bit-identical across native and portable builds (the determinism
// baseline) — and an AVX2/FMA variant compiled into its own translation
// unit with -mavx2 -mfma so even a portable (-DCTJ_NATIVE=OFF) build
// carries the fast path and selects it at run time from CPUID. The AVX2 kernels preserve the
// scalar per-element accumulation *order* — register blocking only tiles the
// data-parallel dimensions — so the only numeric divergence from the scalar
// reference is FMA contraction (verified ULP-bounded by tests/test_kernels);
// row_max / row_argmax / bias_act contain no FMA and match bit for bit.
//
// Selection: CTJ_SIMD=off|scalar|avx2|avx512 overrides, otherwise the best
// level the CPU supports. The choice is resolved once, on first use, for the
// whole process — set the variable before the first kernel call.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ctj::kern {

enum class SimdLevel { kScalar, kAvx2, kAvx512 };

/// Inputs of the fused batched TD-target + Huber loss/grad kernel — the body
/// of DqnAgent::train_step after the forward passes. All matrices row-major.
struct TdHuberArgs {
  const double* q = nullptr;        // [batch × num_actions] online Q(s, ·)
  const double* next_q = nullptr;   // [batch × num_actions] target Q(s', ·)
  /// Online Q(s', ·) for Double-DQN action selection; nullptr for vanilla
  /// max-operator bootstrapping.
  const double* next_q_online = nullptr;
  const std::size_t* actions = nullptr;  // [batch] taken actions
  const double* rewards = nullptr;       // [batch] raw (unscaled) rewards
  const std::uint8_t* dones = nullptr;   // [batch] episode-termination flags
  double gamma = 0.9;
  double reward_scale = 1.0;
  /// Per-sample gradients are divided by this (the batch size, so the
  /// gradient matches the mean-loss objective).
  double grad_div = 1.0;
  double huber_delta = 1.0;
  std::size_t batch = 0;
  std::size_t num_actions = 0;
};

/// One resolved kernel set. All pointers are non-null.
struct KernelOps {
  const char* name;  // "scalar" | "avx2" | "avx512"

  /// C += A·B over row-major buffers (callers zero C for a plain product).
  /// Per-element accumulation runs over k in increasing order.
  void (*matmul_acc)(double* c, const double* a, const double* b,
                     std::size_t m, std::size_t k, std::size_t n);

  /// y += a·x over n doubles.
  void (*saxpy)(std::size_t n, double a, const double* x, double* y);

  /// Row-broadcast bias add, optionally fused with ReLU:
  /// y[r][c] += bias[c], then y = max(y, 0) when relu is set.
  void (*bias_act)(double* y, const double* bias, std::size_t rows,
                   std::size_t cols, bool relu);

  /// Maximum of a non-empty array (order-independent, bit-exact across
  /// kernel levels for non-NaN input).
  double (*row_max)(const double* x, std::size_t n);

  /// Index of the maximum, first on ties (matches ctj::argmax).
  std::size_t (*row_argmax)(const double* x, std::size_t n);

  /// Fused TD target + Huber loss/gradient over a minibatch. Writes the
  /// clipped gradients into `grad` (pre-zeroed [batch × num_actions]; only
  /// the taken-action entries are touched) and returns the summed Huber
  /// loss (callers divide by the batch size for the mean).
  double (*td_huber_batch)(const TdHuberArgs& args, double* grad);

  /// One Adam update over n parameters: moment EMAs, bias correction by
  /// division with (1−βᵗ), and the sqrt-damped step. Elementwise with no
  /// reductions and no FMA, so every level is bit-exact with the scalar
  /// reference (div/sqrt are correctly rounded under IEEE-754).
  void (*adam_update)(double* p, double* m, double* v, const double* g,
                      std::size_t n, double beta1, double beta2, double lr,
                      double bc1, double bc2, double epsilon);

  /// One hard-decision add-compare-select step over the 64-state K=7
  /// convolutional trellis in butterfly order. For next state ns the two
  /// predecessors are 2·(ns & 31) and 2·(ns & 31)+1, so
  ///   next[ns] = min(metric[2j] + cost0[ns], metric[2j+1] + cost1[ns])
  /// with ties to the even predecessor; bit ns of *chosen is set when the
  /// odd predecessor wins strictly. cost0/cost1 are 64-entry per-next-state
  /// branch-cost tables the caller precomputes from the received pair.
  /// Integer adds, so every level is bit-exact with the scalar reference.
  void (*viterbi_acs_hard)(const std::int32_t* metric,
                           const std::int32_t* cost0,
                           const std::int32_t* cost1, std::int32_t* next,
                           std::uint64_t* chosen);

  /// Soft-metric (double) flavor of the same butterfly step. One correctly
  /// rounded add per candidate and a min — no reductions, no FMA — so every
  /// level is bit-exact with the scalar reference.
  void (*viterbi_acs_soft)(const double* metric, const double* cost0,
                           const double* cost1, double* next,
                           std::uint64_t* chosen);

  /// Σ_i |α·Q(z_i) − z_i|² where Q snaps each component of z_i/(α·norm) to
  /// the nearest odd level in {±1,±3,±5,±7} and scales back by norm·α — the
  /// 64-QAM nearest-point error of Eq. (1). `iq` holds n interleaved
  /// (re, im) pairs. The scalar level reproduces the Qam64::quantize-based
  /// loop bit for bit (left-to-right accumulation, std::round snapping);
  /// SIMD levels reassociate the sum across lanes and are tolerance-bound
  /// only, like matmul.
  double (*qam64_error)(const double* iq, std::size_t n, double alpha,
                        double norm);
};

/// The portable reference kernels (always available).
const KernelOps& scalar_ops();

/// The AVX2/FMA kernels, or nullptr when the build targets a non-x86
/// architecture or the compiler cannot emit AVX2.
const KernelOps* avx2_ops();

/// The AVX-512 kernels (matmul/saxpy widened to 512 bits, the rest shared
/// with the AVX2 table), or nullptr when unavailable at build time.
const KernelOps* avx512_ops();

/// True when the CPU this process runs on supports AVX2 and FMA.
bool cpu_supports_avx2();

/// True when the CPU this process runs on supports AVX-512F (and AVX2+FMA).
bool cpu_supports_avx512();

/// Pure resolver (exposed for tests): pick a level from the CTJ_SIMD
/// override string (nullptr/empty = auto) and the CPU capabilities.
SimdLevel resolve_level(const char* override_value, bool cpu_has_avx2,
                        bool cpu_has_avx512);

/// The process-wide kernel set: resolved once from CTJ_SIMD + CPUID.
const KernelOps& ops();

SimdLevel active_level();
/// Name of the active level ("scalar", "avx2" or "avx512") — stamped into
/// perf JSON.
const char* simd_level_name();

}  // namespace ctj::kern
