// Bounded lock-free multi-producer/multi-consumer queue.
//
// The serve engine (src/serve/engine.hpp) uses one of these as its job
// submission/ready ring: client threads and every worker push tenant ids,
// every worker pops them, so unlike the SPSC rings of the actor-learner
// trainer both ends are contended. The slots carry a per-cell sequence
// number (Vyukov's bounded MPMC design): a producer claims a cell by CASing
// the shared tail, writes the value, then publishes by bumping the cell's
// sequence; a consumer symmetrically claims via the head and releases the
// cell for the producer one lap later. Each push/pop is one CAS on the
// shared cursor plus one release store on the cell — no locks, no spurious
// blocking: try_push fails only when the ring is full, try_pop only when it
// is empty.
//
// Blocking/wakeup is deliberately left to the caller (the engine pairs the
// ring with a condition variable), so the queue itself stays allocation-free
// and usable from contexts that must not sleep.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/spsc_queue.hpp"  // kCacheLineSize, next_pow2

namespace ctj {

/// Bounded MPMC queue of movable elements. Capacity is rounded up to a
/// power of two (minimum 2). Any number of threads may push and pop.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : mask_(next_pow2(capacity < 2 ? 2 : capacity) - 1),
        cells_(mask_ + 1) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Move `value` in; false (value untouched) when the ring is full.
  bool try_push(T& value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // The cell is free this lap; claim it by advancing the tail.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // a full lap behind: the ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the race, retry
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_push(T&& value) {
    T moved = std::move(value);
    return try_push(moved);
  }

  /// Move the oldest element out; false when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // nothing published at this position yet
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    // Release the cell for the producer one lap ahead.
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate element count (racy by nature; exact when quiescent).
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  const std::size_t mask_;
  std::vector<Cell> cells_;
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
};

}  // namespace ctj
