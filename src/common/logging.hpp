// Minimal leveled logging to stderr.
//
// The simulators are library code, so logging defaults to warnings only;
// examples and benches raise the level when narrating progress is useful.
#pragma once

#include <sstream>
#include <string>

namespace ctj {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace ctj

#define CTJ_LOG(level, msg)                                      \
  do {                                                           \
    if (static_cast<int>(level) >= static_cast<int>(::ctj::log_level())) { \
      std::ostringstream ctj_log_os_;                            \
      ctj_log_os_ << msg;                                        \
      ::ctj::detail::log_emit(level, ctj_log_os_.str());         \
    }                                                            \
  } while (false)

#define CTJ_DEBUG(msg) CTJ_LOG(::ctj::LogLevel::kDebug, msg)
#define CTJ_INFO(msg) CTJ_LOG(::ctj::LogLevel::kInfo, msg)
#define CTJ_WARN(msg) CTJ_LOG(::ctj::LogLevel::kWarn, msg)
#define CTJ_ERROR(msg) CTJ_LOG(::ctj::LogLevel::kError, msg)
