#include "common/modes.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ctj {

const char* to_string(JammerPowerMode mode) {
  switch (mode) {
    case JammerPowerMode::kMaxPower: return "max-power";
    case JammerPowerMode::kRandomPower: return "random-power";
  }
  return "?";
}

double duel_success_prob(double tx_level, std::span<const double> jam_levels,
                         JammerPowerMode mode) {
  CTJ_CHECK_MSG(!jam_levels.empty(), "power duel needs jammer levels");
  if (mode == JammerPowerMode::kMaxPower) {
    const double max_jam =
        *std::max_element(jam_levels.begin(), jam_levels.end());
    return tx_level >= max_jam ? 1.0 : 0.0;
  }
  // Random power: τ drawn uniformly from the jammer's levels each slot.
  std::size_t survivable = 0;
  for (double j : jam_levels) {
    if (tx_level >= j) ++survivable;
  }
  return static_cast<double>(survivable) /
         static_cast<double>(jam_levels.size());
}

}  // namespace ctj
