#include "common/modes.hpp"

namespace ctj {

const char* to_string(JammerPowerMode mode) {
  switch (mode) {
    case JammerPowerMode::kMaxPower: return "max-power";
    case JammerPowerMode::kRandomPower: return "random-power";
  }
  return "?";
}

}  // namespace ctj
