// Bounded lock-free single-producer/single-consumer queues.
//
// The parallel actor-learner trainer (core/train_parallel) wires one queue
// per actor shard: the actor thread is the only producer, the learner thread
// the only consumer, so a classic two-index ring with acquire/release
// publication is race-free without a single lock on the hot path. Both
// queues here share that index protocol through SpscIndex:
//
//   producer: read head (consumer cursor) to check space, write the slot,
//             then tail.store(release) — the release publishes the slot's
//             bytes to the consumer's matching acquire load;
//   consumer: read tail (acquire), read the slot, then head.store(release).
//
// Each side keeps a cached copy of the other's cursor so the common case
// (queue neither full nor empty) touches only its own cache line.
//
// SpscQueue<T> is the generic movable-element queue; TransitionQueue in
// rl/replay_shard.hpp builds on the same index core with a flat fixed-stride
// payload so the trainer's transition stream moves without any allocation.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace ctj {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// value is part of the struct layout, and GCC warns (-Winterference-size)
// that the standard constant can drift across compiler versions/-mtune.
// 64 bytes is correct for every x86-64 and the common AArch64 cores.
inline constexpr std::size_t kCacheLineSize = 64;

/// Round up to the next power of two (minimum 1).
constexpr std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// The index protocol of a bounded SPSC ring: monotonically increasing
/// head (consumed count) and tail (produced count), capacity a power of two
/// so ring positions are a mask away. Holds no payload — the owning queue
/// stores slots however it likes and calls acquire/commit (producer) and
/// front/release (consumer).
class SpscIndex {
 public:
  explicit SpscIndex(std::size_t capacity_pow2) : capacity_(capacity_pow2) {
    CTJ_CHECK_MSG(capacity_pow2 > 0 && (capacity_pow2 & (capacity_pow2 - 1)) == 0,
                  "SPSC capacity must be a power of two");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t mask() const { return capacity_ - 1; }

  /// Producer: ring position to write next, or false when full.
  bool try_acquire(std::size_t& pos) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    pos = tail & mask();
    return true;
  }

  /// Producer: publish the slot written after try_acquire().
  void commit() {
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Consumer: ring position of the oldest element, or false when empty.
  bool try_front(std::size_t& pos) const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    pos = head & mask();
    return true;
  }

  /// Consumer: release the slot returned by try_front().
  void release() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Approximate element count (exact on the consumer thread).
  std::size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t capacity_;
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};  // producer-owned
  std::size_t head_cache_ = 0;                                // producer-local
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(kCacheLineSize) mutable std::size_t tail_cache_ = 0;  // consumer-local
};

/// Bounded SPSC queue of movable elements. Capacity is rounded up to a
/// power of two. Exactly one thread may push, exactly one may pop.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : index_(next_pow2(capacity)), slots_(index_.capacity()) {}

  std::size_t capacity() const { return index_.capacity(); }
  std::size_t size_approx() const { return index_.size_approx(); }

  /// Producer: move `value` in; false (value untouched) when full.
  bool try_push(T& value) {
    std::size_t pos;
    if (!index_.try_acquire(pos)) return false;
    slots_[pos] = std::move(value);
    index_.commit();
    return true;
  }

  bool try_push(T&& value) {
    T moved = std::move(value);
    return try_push(moved);
  }

  /// Consumer: move the oldest element out; false when empty.
  bool try_pop(T& out) {
    std::size_t pos;
    if (!index_.try_front(pos)) return false;
    out = std::move(slots_[pos]);
    index_.release();
    return true;
  }

 private:
  SpscIndex index_;
  std::vector<T> slots_;
};

}  // namespace ctj
