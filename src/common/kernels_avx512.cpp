// AVX-512 kernel set. This translation unit is compiled with -mavx512f -mfma
// regardless of the global architecture flags; kern::ops() only selects it
// when CPUID reports AVX-512F (plus AVX2+FMA) at run time.
//
// Only the kernels where the 512-bit width actually pays are reimplemented:
// matmul_acc (the batched-forward bottleneck — doubling the FMA width
// doubles the compute roofline on machines whose 256-bit FMA throughput
// matches their L2 streaming bandwidth, which is exactly the regime where
// batched inference is otherwise compute-bound) and saxpy. Everything else
// (bias_act, reductions, TD/Huber, Adam) is inherited from the AVX2 table:
// those kernels are bandwidth-bound or tiny, so a wider vector buys nothing.
//
// Numerics match the AVX2 level's contract: FMA contraction only,
// per-element k-accumulation order unchanged and exact zeros skipped like
// the scalar reference, so results are ULP-bounded against it (and exact for
// one-hot rows).
#include "common/kernels.hpp"

#if defined(__AVX512F__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

#include "common/kernels_detail.hpp"

namespace ctj::kern {
namespace {

void saxpy_avx512(std::size_t n, double a, const double* x, double* y) {
  const __m512d va = _mm512_set1_pd(a);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_pd(
        y + j, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + j),
                               _mm512_loadu_pd(y + j)));
    _mm512_storeu_pd(
        y + j + 8, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + j + 8),
                                   _mm512_loadu_pd(y + j + 8)));
  }
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(
        y + j, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + j),
                               _mm512_loadu_pd(y + j)));
  }
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(_mm256_set1_pd(a), _mm256_loadu_pd(x + j),
                               _mm256_loadu_pd(y + j)));
  }
  for (; j < n; ++j) y[j] = __builtin_fma(a, x[j], y[j]);
}

// Same compressed-nonzero structure as the AVX2 matmul (branchless per-row
// nonzero packing, stripes-outer FMA body over the packed lists — see
// kernels_avx2.cpp for the full rationale) with 512-bit accumulators: a
// 64-wide stripe of one C row lives in eight zmm registers, so the eight
// independent FMA chains cover the FMA latency at twice the AVX2 width.
void matmul_acc_avx512(double* c, const double* a, const double* b,
                       std::size_t m, std::size_t kk, std::size_t n) {
  constexpr std::size_t kRowChunk = 32;
  static thread_local detail::MatmulScratch scratch;
  scratch.reserve_chunk(std::min(m, kRowChunk), kk);
  for (std::size_t i0 = 0; i0 < m; i0 += kRowChunk) {
    const std::size_t i1 = std::min(m, i0 + kRowChunk);
    for (std::size_t i = i0; i < i1; ++i) {
      scratch.cnt[i - i0] = static_cast<std::int32_t>(detail::pack_nonzeros(
          a + i * kk, kk, scratch.vals.data() + (i - i0) * kk,
          scratch.idx.data() + (i - i0) * kk));
    }
    std::size_t j0 = 0;
    for (; j0 + 64 <= n; j0 += 64) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m512d c0 = _mm512_loadu_pd(crow + 0);
        __m512d c1 = _mm512_loadu_pd(crow + 8);
        __m512d c2 = _mm512_loadu_pd(crow + 16);
        __m512d c3 = _mm512_loadu_pd(crow + 24);
        __m512d c4 = _mm512_loadu_pd(crow + 32);
        __m512d c5 = _mm512_loadu_pd(crow + 40);
        __m512d c6 = _mm512_loadu_pd(crow + 48);
        __m512d c7 = _mm512_loadu_pd(crow + 56);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          const __m512d va = _mm512_set1_pd(v[t]);
          const double* brow = bcol + static_cast<std::size_t>(ix[t]) * n;
          c0 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 0), c0);
          c1 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 8), c1);
          c2 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 16), c2);
          c3 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 24), c3);
          c4 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 32), c4);
          c5 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 40), c5);
          c6 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 48), c6);
          c7 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 56), c7);
        }
        _mm512_storeu_pd(crow + 0, c0);
        _mm512_storeu_pd(crow + 8, c1);
        _mm512_storeu_pd(crow + 16, c2);
        _mm512_storeu_pd(crow + 24, c3);
        _mm512_storeu_pd(crow + 32, c4);
        _mm512_storeu_pd(crow + 40, c5);
        _mm512_storeu_pd(crow + 48, c6);
        _mm512_storeu_pd(crow + 56, c7);
      }
    }
    for (; j0 + 32 <= n; j0 += 32) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m512d c0 = _mm512_loadu_pd(crow + 0);
        __m512d c1 = _mm512_loadu_pd(crow + 8);
        __m512d c2 = _mm512_loadu_pd(crow + 16);
        __m512d c3 = _mm512_loadu_pd(crow + 24);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          const __m512d va = _mm512_set1_pd(v[t]);
          const double* brow = bcol + static_cast<std::size_t>(ix[t]) * n;
          c0 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 0), c0);
          c1 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 8), c1);
          c2 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 16), c2);
          c3 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 24), c3);
        }
        _mm512_storeu_pd(crow + 0, c0);
        _mm512_storeu_pd(crow + 8, c1);
        _mm512_storeu_pd(crow + 16, c2);
        _mm512_storeu_pd(crow + 24, c3);
      }
    }
    for (; j0 + 8 <= n; j0 += 8) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m512d c0 = _mm512_loadu_pd(crow);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          c0 = _mm512_fmadd_pd(
              _mm512_set1_pd(v[t]),
              _mm512_loadu_pd(bcol + static_cast<std::size_t>(ix[t]) * n),
              c0);
        }
        _mm512_storeu_pd(crow, c0);
      }
    }
    for (; j0 + 4 <= n; j0 += 4) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m256d c0 = _mm256_loadu_pd(crow);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          c0 = _mm256_fmadd_pd(
              _mm256_set1_pd(v[t]),
              _mm256_loadu_pd(bcol + static_cast<std::size_t>(ix[t]) * n),
              c0);
        }
        _mm256_storeu_pd(crow, c0);
      }
    }
    if (j0 < n) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n;
        for (std::size_t j = j0; j < n; ++j) {
          double s = crow[j];
          for (std::size_t t = 0; t < nnz; ++t) {
            s = __builtin_fma(v[t], b[static_cast<std::size_t>(ix[t]) * n + j],
                              s);
          }
          crow[j] = s;
        }
      }
    }
  }
}

}  // namespace

const KernelOps* avx512_ops() {
  const KernelOps* base = avx2_ops();
  if (base == nullptr) return nullptr;
  static const KernelOps kOps = [base] {
    KernelOps ops = *base;  // inherit bias_act/reductions/td_huber/adam
    ops.name = "avx512";
    ops.matmul_acc = matmul_acc_avx512;
    ops.saxpy = saxpy_avx512;
    return ops;
  }();
  return &kOps;
}

}  // namespace ctj::kern

#else  // !(__AVX512F__ && __FMA__)

namespace ctj::kern {

const KernelOps* avx512_ops() { return nullptr; }

}  // namespace ctj::kern

#endif
