// AVX-512 kernel set. This translation unit is compiled with -mavx512f -mfma
// regardless of the global architecture flags; kern::ops() only selects it
// when CPUID reports AVX-512F (plus AVX2+FMA) at run time.
//
// Only the kernels where the 512-bit width actually pays are reimplemented:
// matmul_acc (the batched-forward bottleneck — doubling the FMA width
// doubles the compute roofline on machines whose 256-bit FMA throughput
// matches their L2 streaming bandwidth, which is exactly the regime where
// batched inference is otherwise compute-bound), saxpy, and the PHY hot-path
// kernels (Viterbi ACS hard/soft, 64-QAM quantization error) whose fixed
// 64-state / long-stream shapes fill full zmm lanes. Everything else
// (bias_act, reductions, TD/Huber, Adam) is inherited from the AVX2 table:
// those kernels are bandwidth-bound or tiny, so a wider vector buys nothing.
//
// Numerics match the AVX2 level's contract: FMA contraction only,
// per-element k-accumulation order unchanged and exact zeros skipped like
// the scalar reference, so results are ULP-bounded against it (and exact for
// one-hot rows).
#include "common/kernels.hpp"

#if defined(__AVX512F__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

#include "common/kernels_detail.hpp"

namespace ctj::kern {
namespace {

void saxpy_avx512(std::size_t n, double a, const double* x, double* y) {
  const __m512d va = _mm512_set1_pd(a);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_pd(
        y + j, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + j),
                               _mm512_loadu_pd(y + j)));
    _mm512_storeu_pd(
        y + j + 8, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + j + 8),
                                   _mm512_loadu_pd(y + j + 8)));
  }
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(
        y + j, _mm512_fmadd_pd(va, _mm512_loadu_pd(x + j),
                               _mm512_loadu_pd(y + j)));
  }
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(_mm256_set1_pd(a), _mm256_loadu_pd(x + j),
                               _mm256_loadu_pd(y + j)));
  }
  for (; j < n; ++j) y[j] = __builtin_fma(a, x[j], y[j]);
}

// Same compressed-nonzero structure as the AVX2 matmul (branchless per-row
// nonzero packing, stripes-outer FMA body over the packed lists — see
// kernels_avx2.cpp for the full rationale) with 512-bit accumulators: a
// 64-wide stripe of one C row lives in eight zmm registers, so the eight
// independent FMA chains cover the FMA latency at twice the AVX2 width.
void matmul_acc_avx512(double* c, const double* a, const double* b,
                       std::size_t m, std::size_t kk, std::size_t n) {
  constexpr std::size_t kRowChunk = 32;
  static thread_local detail::MatmulScratch scratch;
  scratch.reserve_chunk(std::min(m, kRowChunk), kk);
  for (std::size_t i0 = 0; i0 < m; i0 += kRowChunk) {
    const std::size_t i1 = std::min(m, i0 + kRowChunk);
    for (std::size_t i = i0; i < i1; ++i) {
      scratch.cnt[i - i0] = static_cast<std::int32_t>(detail::pack_nonzeros(
          a + i * kk, kk, scratch.vals.data() + (i - i0) * kk,
          scratch.idx.data() + (i - i0) * kk));
    }
    std::size_t j0 = 0;
    for (; j0 + 64 <= n; j0 += 64) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m512d c0 = _mm512_loadu_pd(crow + 0);
        __m512d c1 = _mm512_loadu_pd(crow + 8);
        __m512d c2 = _mm512_loadu_pd(crow + 16);
        __m512d c3 = _mm512_loadu_pd(crow + 24);
        __m512d c4 = _mm512_loadu_pd(crow + 32);
        __m512d c5 = _mm512_loadu_pd(crow + 40);
        __m512d c6 = _mm512_loadu_pd(crow + 48);
        __m512d c7 = _mm512_loadu_pd(crow + 56);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          const __m512d va = _mm512_set1_pd(v[t]);
          const double* brow = bcol + static_cast<std::size_t>(ix[t]) * n;
          c0 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 0), c0);
          c1 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 8), c1);
          c2 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 16), c2);
          c3 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 24), c3);
          c4 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 32), c4);
          c5 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 40), c5);
          c6 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 48), c6);
          c7 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 56), c7);
        }
        _mm512_storeu_pd(crow + 0, c0);
        _mm512_storeu_pd(crow + 8, c1);
        _mm512_storeu_pd(crow + 16, c2);
        _mm512_storeu_pd(crow + 24, c3);
        _mm512_storeu_pd(crow + 32, c4);
        _mm512_storeu_pd(crow + 40, c5);
        _mm512_storeu_pd(crow + 48, c6);
        _mm512_storeu_pd(crow + 56, c7);
      }
    }
    for (; j0 + 32 <= n; j0 += 32) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m512d c0 = _mm512_loadu_pd(crow + 0);
        __m512d c1 = _mm512_loadu_pd(crow + 8);
        __m512d c2 = _mm512_loadu_pd(crow + 16);
        __m512d c3 = _mm512_loadu_pd(crow + 24);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          const __m512d va = _mm512_set1_pd(v[t]);
          const double* brow = bcol + static_cast<std::size_t>(ix[t]) * n;
          c0 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 0), c0);
          c1 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 8), c1);
          c2 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 16), c2);
          c3 = _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + 24), c3);
        }
        _mm512_storeu_pd(crow + 0, c0);
        _mm512_storeu_pd(crow + 8, c1);
        _mm512_storeu_pd(crow + 16, c2);
        _mm512_storeu_pd(crow + 24, c3);
      }
    }
    for (; j0 + 8 <= n; j0 += 8) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m512d c0 = _mm512_loadu_pd(crow);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          c0 = _mm512_fmadd_pd(
              _mm512_set1_pd(v[t]),
              _mm512_loadu_pd(bcol + static_cast<std::size_t>(ix[t]) * n),
              c0);
        }
        _mm512_storeu_pd(crow, c0);
      }
    }
    for (; j0 + 4 <= n; j0 += 4) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n + j0;
        __m256d c0 = _mm256_loadu_pd(crow);
        const double* bcol = b + j0;
        for (std::size_t t = 0; t < nnz; ++t) {
          c0 = _mm256_fmadd_pd(
              _mm256_set1_pd(v[t]),
              _mm256_loadu_pd(bcol + static_cast<std::size_t>(ix[t]) * n),
              c0);
        }
        _mm256_storeu_pd(crow, c0);
      }
    }
    if (j0 < n) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double* v = scratch.vals.data() + (i - i0) * kk;
        const std::int32_t* ix = scratch.idx.data() + (i - i0) * kk;
        const std::size_t nnz = static_cast<std::size_t>(scratch.cnt[i - i0]);
        double* crow = c + i * n;
        for (std::size_t j = j0; j < n; ++j) {
          double s = crow[j];
          for (std::size_t t = 0; t < nnz; ++t) {
            s = __builtin_fma(v[t], b[static_cast<std::size_t>(ix[t]) * n + j],
                              s);
          }
          crow[j] = s;
        }
      }
    }
  }
}

// 16 next states per zmm, the whole 64-state butterfly in four blocks. The
// even/odd predecessor deinterleave is a single permutex2var over two
// 16-metric ranges; blocks 0/2 draw on metric[0..31], blocks 1/3 on
// metric[32..63] (j = ns & 31). Integer adds and min_epi32 keep the result
// bit-exact with the scalar reference; cmpgt_epi32_mask(v0, v1) is the
// scalar strict `v1 < v0` odd-wins bit.
void viterbi_acs_hard_avx512(const std::int32_t* metric,
                             const std::int32_t* cost0,
                             const std::int32_t* cost1, std::int32_t* next,
                             std::uint64_t* chosen) {
  const __m512i idx_even = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16,
                                             18, 20, 22, 24, 26, 28, 30);
  const __m512i idx_odd = _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17,
                                            19, 21, 23, 25, 27, 29, 31);
  const __m512i m0 =
      _mm512_loadu_si512(reinterpret_cast<const void*>(metric));
  const __m512i m1 =
      _mm512_loadu_si512(reinterpret_cast<const void*>(metric + 16));
  const __m512i m2 =
      _mm512_loadu_si512(reinterpret_cast<const void*>(metric + 32));
  const __m512i m3 =
      _mm512_loadu_si512(reinterpret_cast<const void*>(metric + 48));
  const __m512i even[2] = {_mm512_permutex2var_epi32(m0, idx_even, m1),
                           _mm512_permutex2var_epi32(m2, idx_even, m3)};
  const __m512i odd[2] = {_mm512_permutex2var_epi32(m0, idx_odd, m1),
                          _mm512_permutex2var_epi32(m2, idx_odd, m3)};
  std::uint64_t bits = 0;
  for (int b = 0; b < 4; ++b) {
    const __m512i v0 = _mm512_add_epi32(
        even[b & 1], _mm512_loadu_si512(
                         reinterpret_cast<const void*>(cost0 + 16 * b)));
    const __m512i v1 = _mm512_add_epi32(
        odd[b & 1], _mm512_loadu_si512(
                        reinterpret_cast<const void*>(cost1 + 16 * b)));
    _mm512_storeu_si512(reinterpret_cast<void*>(next + 16 * b),
                        _mm512_min_epi32(v0, v1));
    const std::uint64_t mask = _mm512_cmpgt_epi32_mask(v0, v1);
    bits |= mask << (16 * b);
  }
  *chosen = bits;
}

// Double-metric flavor, 8 next states per zmm over 8 blocks; four
// permutex2var even/odd pairs each cover a 16-metric predecessor range.
// Plain adds and min_pd(v1, v0) (ties return v0 — the even predecessor)
// keep every level bit-exact with the scalar reference.
void viterbi_acs_soft_avx512(const double* metric, const double* cost0,
                             const double* cost1, double* next,
                             std::uint64_t* chosen) {
  const __m512i idx_even = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const __m512i idx_odd = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
  __m512d even[4];
  __m512d odd[4];
  for (int k = 0; k < 4; ++k) {
    const __m512d a = _mm512_loadu_pd(metric + 16 * k);
    const __m512d b = _mm512_loadu_pd(metric + 16 * k + 8);
    even[k] = _mm512_permutex2var_pd(a, idx_even, b);
    odd[k] = _mm512_permutex2var_pd(a, idx_odd, b);
  }
  std::uint64_t bits = 0;
  for (int b = 0; b < 8; ++b) {
    const __m512d v0 =
        _mm512_add_pd(even[b & 3], _mm512_loadu_pd(cost0 + 8 * b));
    const __m512d v1 =
        _mm512_add_pd(odd[b & 3], _mm512_loadu_pd(cost1 + 8 * b));
    _mm512_storeu_pd(next + 8 * b, _mm512_min_pd(v1, v0));
    const std::uint64_t mask = _mm512_cmp_pd_mask(v1, v0, _CMP_LT_OQ);
    bits |= mask << (8 * b);
  }
  *chosen = bits;
}

// Eight components (four complex points) per iteration; same
// floor(v + 0.5) snap and lane-reassociated accumulator as the AVX2 level,
// so tolerance-bound against the scalar reference.
double qam64_error_avx512(const double* iq, std::size_t n, double alpha,
                          double norm) {
  const double scale = 1.0 / (alpha * norm);
  const std::size_t total = 2 * n;
  const __m512d vscale = _mm512_set1_pd(scale);
  const __m512d vseven = _mm512_set1_pd(7.0);
  const __m512d vhalf = _mm512_set1_pd(0.5);
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d vtwo = _mm512_set1_pd(2.0);
  const __m512d vnorm_alpha = _mm512_set1_pd(norm * alpha);
  __m512d acc = _mm512_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= total; j += 8) {
    const __m512d v = _mm512_loadu_pd(iq + j);
    const __m512d x =
        _mm512_mul_pd(_mm512_add_pd(_mm512_mul_pd(v, vscale), vseven), vhalf);
    __m512d slot = _mm512_roundscale_pd(
        _mm512_add_pd(x, vhalf), _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
    slot = _mm512_min_pd(_mm512_max_pd(slot, vzero), vseven);
    const __m512d level = _mm512_sub_pd(_mm512_mul_pd(slot, vtwo), vseven);
    const __m512d d = _mm512_sub_pd(_mm512_mul_pd(level, vnorm_alpha), v);
    acc = _mm512_fmadd_pd(d, d, acc);
  }
  double err = _mm512_reduce_add_pd(acc);
  for (; j < total; ++j) {
    const double x = (iq[j] * scale + 7.0) * 0.5;
    double slot = __builtin_floor(x + 0.5);
    if (slot < 0.0) slot = 0.0;
    if (slot > 7.0) slot = 7.0;
    const double d = (slot * 2.0 - 7.0) * (norm * alpha) - iq[j];
    err += d * d;
  }
  return err;
}

}  // namespace

const KernelOps* avx512_ops() {
  const KernelOps* base = avx2_ops();
  if (base == nullptr) return nullptr;
  static const KernelOps kOps = [base] {
    KernelOps ops = *base;  // inherit bias_act/reductions/td_huber/adam
    ops.name = "avx512";
    ops.matmul_acc = matmul_acc_avx512;
    ops.saxpy = saxpy_avx512;
    ops.viterbi_acs_hard = viterbi_acs_hard_avx512;
    ops.viterbi_acs_soft = viterbi_acs_soft_avx512;
    ops.qam64_error = qam64_error_avx512;
    return ops;
  }();
  return &kOps;
}

}  // namespace ctj::kern

#else  // !(__AVX512F__ && __FMA__)

namespace ctj::kern {

const KernelOps* avx512_ops() { return nullptr; }

}  // namespace ctj::kern

#endif
