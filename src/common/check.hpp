// Always-on invariant and precondition checking.
//
// Unlike assert(), these checks stay enabled in release builds: the library is
// a research artifact and silent invariant violations would invalidate
// experiment output. The cost is negligible relative to the simulation work.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ctj {

/// Thrown when a CTJ_CHECK precondition or invariant fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CTJ_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace ctj

/// Verify a condition that must hold; throws ctj::CheckFailure otherwise.
#define CTJ_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::ctj::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// CTJ_CHECK with an explanatory message (streamed, e.g. "got " << x).
#define CTJ_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream ctj_check_os_;                              \
      ctj_check_os_ << msg;                                          \
      ::ctj::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  ctj_check_os_.str());              \
    }                                                                \
  } while (false)
