#include "common/rng.hpp"

#include <numeric>

namespace ctj {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  CTJ_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CTJ_CHECK_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  CTJ_CHECK_MSG(total > 0.0, "all weights are zero");
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // guard against rounding at the top end
}

}  // namespace ctj
