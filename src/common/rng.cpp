#include "common/rng.hpp"

#include <numeric>
#include <sstream>

namespace ctj {

std::string Rng::serialize_state() const {
  // Stream serialization is the one portable, loss-free representation the
  // standard guarantees for both the engine and the distributions
  // ([rand.req.eng]/[rand.req.dist] equality after operator>>).
  std::ostringstream os;
  os << engine_ << ' ' << unit_ << ' ' << normal_;
  CTJ_CHECK_MSG(os.good(), "RNG state serialization failed");
  return os.str();
}

void Rng::restore_state(const std::string& state) {
  std::mt19937_64 engine;
  std::uniform_real_distribution<double> unit;
  std::normal_distribution<double> normal;
  std::istringstream is(state);
  is >> engine >> unit >> normal;
  CTJ_CHECK_MSG(!is.fail(), "malformed RNG state");
  engine_ = engine;
  unit_ = unit;
  normal_ = normal;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  CTJ_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CTJ_CHECK_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  CTJ_CHECK_MSG(total > 0.0, "all weights are zero");
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // guard against rounding at the top end
}

}  // namespace ctj
