// Little-endian byte-buffer codec for CTJS chunk payloads.
//
// ByteWriter appends primitives to an in-memory buffer; ByteReader decodes
// the same sequence and throws a typed IoError (kBadPayload) the moment a
// read would run past the end — a truncated or corrupted payload can never
// yield silently wrong values. Doubles travel as their IEEE-754 bit
// patterns, so serialization is exact: save → load → save is byte-identical
// and restored training state is bit-identical, not merely close.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/format.hpp"

namespace ctj::io {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  /// Length-prefixed string (u64 byte count + raw bytes).
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  /// Length-prefixed vector of doubles.
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(next(1)[0]); }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(get_le<std::uint32_t>()); }
  double f64() { return std::bit_cast<double>(get_le<std::uint64_t>()); }

  std::string str() {
    const std::uint64_t n = u64();
    const std::string_view s = next(checked_size(n));
    return std::string(s);
  }

  std::vector<double> f64_vec() {
    const std::uint64_t n = u64();
    if (n > remaining() / 8) {
      throw IoError(ErrorKind::kBadPayload,
                    "f64 vector of " + std::to_string(n) +
                        " elements exceeds remaining payload " +
                        std::to_string(remaining()));
    }
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

  /// Decoders call this after consuming a payload: trailing garbage means
  /// the payload does not have the structure its tag promises.
  void expect_end() const {
    if (!at_end()) {
      throw IoError(ErrorKind::kBadPayload,
                    "trailing bytes after payload (" +
                        std::to_string(remaining()) + " left)");
    }
  }

 private:
  std::string_view next(std::size_t n) {
    if (n > remaining()) {
      throw IoError(ErrorKind::kBadPayload,
                    "payload ends mid-field (wanted " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()) + ")");
    }
    const std::string_view s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  /// A length prefix larger than the remaining payload is corruption, not a
  /// request to allocate petabytes.
  std::size_t checked_size(std::uint64_t n) {
    if (n > remaining()) {
      throw IoError(ErrorKind::kBadPayload,
                    "length prefix " + std::to_string(n) +
                        " exceeds remaining payload " +
                        std::to_string(remaining()));
    }
    return static_cast<std::size_t>(n);
  }

  template <typename T>
  T get_le() {
    const std::string_view s = next(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(s[i])) << (8 * i);
    }
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ctj::io
