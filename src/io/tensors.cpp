#include "io/tensors.hpp"

namespace ctj::io {

void write_tensors(ByteWriter& out, const std::vector<NamedTensor>& tensors) {
  out.u32(static_cast<std::uint32_t>(tensors.size()));
  for (const NamedTensor& t : tensors) {
    out.str(t.name);
    out.u64(t.rows);
    out.u64(t.cols);
    out.u64(t.data.size());
    for (double v : t.data) out.f64(v);
  }
}

std::vector<NamedTensor> read_tensors(ByteReader& in) {
  const std::uint32_t count = in.u32();
  std::vector<NamedTensor> tensors;
  tensors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    NamedTensor t;
    t.name = in.str();
    t.rows = in.u64();
    t.cols = in.u64();
    t.data = in.f64_vec();
    if (t.data.size() != t.rows * t.cols) {
      throw IoError(ErrorKind::kBadPayload,
                    "tensor " + t.name + " has " +
                        std::to_string(t.data.size()) + " elements for shape " +
                        std::to_string(t.rows) + "x" + std::to_string(t.cols));
    }
    tensors.push_back(std::move(t));
  }
  return tensors;
}

}  // namespace ctj::io
