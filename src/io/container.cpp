#include "io/container.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/bytes.hpp"
#include "io/crc32.hpp"

namespace ctj::io {

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kOpenFailed: return "open failed";
    case ErrorKind::kWriteFailed: return "write failed";
    case ErrorKind::kBadMagic: return "bad magic";
    case ErrorKind::kVersionMismatch: return "format version mismatch";
    case ErrorKind::kTruncated: return "truncated file";
    case ErrorKind::kCrcMismatch: return "CRC mismatch";
    case ErrorKind::kMissingChunk: return "missing chunk";
    case ErrorKind::kBadPayload: return "bad chunk payload";
    case ErrorKind::kStateMismatch: return "state mismatch";
  }
  return "unknown io error";
}

std::string padded_tag(std::string_view tag) {
  if (tag.empty() || tag.size() > kTagSize) {
    throw IoError(ErrorKind::kBadPayload,
                  "chunk tag must be 1.." + std::to_string(kTagSize) +
                      " bytes, got \"" + std::string(tag) + "\"");
  }
  for (char c : tag) {
    if (static_cast<unsigned char>(c) < 0x20 ||
        static_cast<unsigned char>(c) > 0x7E) {
      throw IoError(ErrorKind::kBadPayload, "chunk tag must be printable ASCII");
    }
  }
  std::string padded(tag);
  padded.resize(kTagSize, ' ');
  return padded;
}

namespace {

std::string strip_tag(std::string_view padded) {
  std::size_t end = padded.size();
  while (end > 0 && padded[end - 1] == ' ') --end;
  return std::string(padded.substr(0, end));
}

}  // namespace

void ContainerWriter::add_chunk(std::string_view tag, std::string payload) {
  Chunk chunk;
  chunk.tag = padded_tag(tag);
  chunk.payload = std::move(payload);
  chunks_.push_back(std::move(chunk));
}

bool ContainerWriter::has_chunk(std::string_view tag) const {
  const std::string padded = padded_tag(tag);
  for (const Chunk& c : chunks_) {
    if (c.tag == padded) return true;
  }
  return false;
}

std::string ContainerWriter::to_bytes() const {
  std::uint64_t file_size = kHeaderSize;
  for (const Chunk& c : chunks_) {
    file_size += kChunkHeaderSize + c.payload.size();
  }

  ByteWriter out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u16(kFormatVersion);
  out.u16(0);  // flags
  out.u32(static_cast<std::uint32_t>(chunks_.size()));
  out.u64(file_size);
  out.u32(crc32(out.buffer().data(), out.buffer().size()));

  for (const Chunk& c : chunks_) {
    std::uint32_t crc = crc32(c.tag);
    crc = crc32_update(crc, c.payload.data(), c.payload.size());
    out.bytes(c.tag.data(), c.tag.size());
    out.u64(c.payload.size());
    out.u32(crc);
    out.u32(0);  // reserved
    out.bytes(c.payload.data(), c.payload.size());
  }
  return out.take();
}

void ContainerWriter::write(std::ostream& os) const {
  const std::string bytes = to_bytes();
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ContainerWriter::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) {
      throw IoError(ErrorKind::kOpenFailed, "cannot open " + tmp);
    }
    write(os);
    os.flush();
    if (!os.good()) {
      std::remove(tmp.c_str());
      throw IoError(ErrorKind::kWriteFailed, "short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError(ErrorKind::kWriteFailed,
                  "cannot rename " + tmp + " to " + path);
  }
}

ContainerReader ContainerReader::from_bytes(std::string bytes) {
  ContainerReader reader;
  reader.bytes_ = std::move(bytes);
  const std::string& buf = reader.bytes_;

  if (buf.size() < kHeaderSize) {
    throw IoError(ErrorKind::kTruncated,
                  "file is " + std::to_string(buf.size()) +
                      " bytes, smaller than the " +
                      std::to_string(kHeaderSize) + "-byte header");
  }
  if (std::string_view(buf.data(), 4) != std::string_view(kMagic, 4)) {
    throw IoError(ErrorKind::kBadMagic, "not a CTJS container");
  }

  ByteReader header(std::string_view(buf.data() + 4, kHeaderSize - 4));
  const std::uint16_t version = header.u16();
  header.u16();  // flags (reserved; ignored in v1)
  const std::uint32_t chunk_count = header.u32();
  const std::uint64_t file_size = header.u64();
  const std::uint32_t header_crc = header.u32();

  const std::uint32_t actual_header_crc = crc32(buf.data(), kHeaderSize - 4);
  if (header_crc != actual_header_crc) {
    throw IoError(ErrorKind::kCrcMismatch, "file header CRC");
  }
  if (version != kFormatVersion) {
    throw IoError(ErrorKind::kVersionMismatch,
                  "file is format v" + std::to_string(version) +
                      ", this build reads v" +
                      std::to_string(kFormatVersion));
  }
  if (file_size != buf.size()) {
    throw IoError(ErrorKind::kTruncated,
                  "header promises " + std::to_string(file_size) +
                      " bytes, file has " + std::to_string(buf.size()));
  }

  std::size_t pos = kHeaderSize;
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    if (buf.size() - pos < kChunkHeaderSize) {
      throw IoError(ErrorKind::kTruncated,
                    "chunk " + std::to_string(i) + " header out of bounds");
    }
    const std::string_view tag(buf.data() + pos, kTagSize);
    ByteReader chunk_header(
        std::string_view(buf.data() + pos + kTagSize, kChunkHeaderSize - kTagSize));
    const std::uint64_t payload_size = chunk_header.u64();
    const std::uint32_t stored_crc = chunk_header.u32();
    const std::uint32_t reserved = chunk_header.u32();
    if (reserved != 0) {
      throw IoError(ErrorKind::kBadPayload,
                    "chunk " + strip_tag(tag) + " reserved field is non-zero");
    }
    pos += kChunkHeaderSize;
    if (payload_size > buf.size() - pos) {
      throw IoError(ErrorKind::kTruncated,
                    "chunk " + strip_tag(tag) + " payload out of bounds");
    }

    std::uint32_t crc = crc32(tag.data(), tag.size());
    crc = crc32_update(crc, buf.data() + pos,
                       static_cast<std::size_t>(payload_size));
    if (crc != stored_crc) {
      throw IoError(ErrorKind::kCrcMismatch, "chunk " + strip_tag(tag));
    }

    ChunkInfo info;
    info.tag = strip_tag(tag);
    info.size = payload_size;
    info.crc32 = stored_crc;
    info.offset = pos;
    reader.chunks_.push_back(std::move(info));
    pos += static_cast<std::size_t>(payload_size);
  }
  if (pos != buf.size()) {
    throw IoError(ErrorKind::kTruncated,
                  "trailing bytes after the last chunk");
  }
  reader.version_ = version;
  return reader;
}

ContainerReader ContainerReader::from_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    throw IoError(ErrorKind::kOpenFailed, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) {
    throw IoError(ErrorKind::kOpenFailed, "cannot read " + path);
  }
  return from_bytes(std::move(buf).str());
}

bool ContainerReader::has_chunk(std::string_view tag) const {
  const std::string wanted = strip_tag(padded_tag(tag));
  for (const ChunkInfo& c : chunks_) {
    if (c.tag == wanted) return true;
  }
  return false;
}

std::string_view ContainerReader::chunk(std::string_view tag) const {
  const std::string wanted = strip_tag(padded_tag(tag));
  for (const ChunkInfo& c : chunks_) {
    if (c.tag == wanted) {
      return std::string_view(bytes_.data() + c.offset,
                              static_cast<std::size_t>(c.size));
    }
  }
  throw IoError(ErrorKind::kMissingChunk, wanted);
}

std::string encode_meta(const std::map<std::string, std::string>& meta) {
  std::string out;
  for (const auto& [key, value] : meta) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

std::map<std::string, std::string> decode_meta(std::string_view payload) {
  std::map<std::string, std::string> meta;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw IoError(ErrorKind::kBadPayload, "META line without '='");
    }
    meta.emplace(std::string(line.substr(0, eq)),
                 std::string(line.substr(eq + 1)));
    pos = eol + 1;
  }
  return meta;
}

}  // namespace ctj::io
