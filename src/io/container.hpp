// CTJS container: a versioned, CRC32-checksummed, little-endian chunk file
// (format.hpp documents the byte layout).
//
// ContainerWriter accumulates tagged payloads and writes them atomically —
// the file is first written to `<path>.tmp` and renamed into place only
// after every byte is flushed, so a crash mid-write can never leave a
// half-written checkpoint under the final name (the previous checkpoint, if
// any, survives intact).
//
// ContainerReader slurps and fully validates a file up front: magic,
// version, file size, and every chunk's CRC are checked before any payload
// is handed out, each failure mode with its own IoError kind.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "io/format.hpp"

namespace ctj::io {

class ContainerWriter {
 public:
  /// Append a chunk; tag must be 1..8 ASCII bytes (space padded on disk).
  /// Chunk order is preserved, so identical state yields identical files.
  void add_chunk(std::string_view tag, std::string payload);

  bool has_chunk(std::string_view tag) const;

  /// Serialize the container to a stream.
  void write(std::ostream& os) const;

  /// Serialize to `<path>.tmp`, flush, then rename over `path`.
  void write_file(const std::string& path) const;

  /// The serialized container as a byte string (for tests and diffing).
  std::string to_bytes() const;

 private:
  struct Chunk {
    std::string tag;  // padded to kTagSize
    std::string payload;
  };
  std::vector<Chunk> chunks_;
};

struct ChunkInfo {
  std::string tag;          // trailing padding stripped
  std::uint64_t size = 0;   // payload bytes
  std::uint32_t crc32 = 0;  // stored (and verified) tag+payload CRC
  std::uint64_t offset = 0; // payload offset within the file
};

class ContainerReader {
 public:
  /// Parse and fully validate a CTJS byte string (throws IoError).
  static ContainerReader from_bytes(std::string bytes);
  /// Read and validate a CTJS file (throws IoError).
  static ContainerReader from_file(const std::string& path);

  std::uint16_t format_version() const { return version_; }
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }

  bool has_chunk(std::string_view tag) const;
  /// Payload of the chunk with this tag; throws kMissingChunk otherwise.
  std::string_view chunk(std::string_view tag) const;

 private:
  ContainerReader() = default;

  std::string bytes_;
  std::uint16_t version_ = 0;
  std::vector<ChunkInfo> chunks_;
};

/// Pad a tag to the on-disk kTagSize with spaces (validates length/ASCII).
std::string padded_tag(std::string_view tag);

// Key=value metadata codec for the META chunk: one `key=value\n` line per
// entry, keys sorted, values free-form single-line text.
std::string encode_meta(const std::map<std::string, std::string>& meta);
std::map<std::string, std::string> decode_meta(std::string_view payload);

}  // namespace ctj::io
