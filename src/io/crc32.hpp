// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-chunk
// integrity check of the CTJS container format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ctj::io {

/// Incremental CRC-32: feed `crc` from a previous call (or 0 to start).
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size);

/// One-shot CRC-32 of a byte range.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0, data, size);
}

inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace ctj::io
