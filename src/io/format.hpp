// The CTJS checkpoint container format: constants, chunk tags and the typed
// error hierarchy every loader in the persistence subsystem throws.
//
// On-disk layout (all integers little-endian):
//
//   file header (24 bytes)
//     [0]  u8[4]  magic "CTJS"
//     [4]  u16    format_version (currently 1)
//     [6]  u16    flags (0; reserved)
//     [8]  u32    chunk_count
//     [12] u64    file_size — total size of the file in bytes, so a
//                 truncated tail is detected before any chunk is parsed
//     [20] u32    CRC32 of header bytes [0, 20)
//
//   chunk_count × chunk, laid out back to back:
//     [0]  u8[8]  tag — ASCII, space padded (see tags:: below)
//     [8]  u64    payload_size
//     [16] u32    CRC32 over tag (8 bytes) + payload, so a flipped byte in
//                 either the tag or the payload fails verification
//     [20] u32    reserved (0)
//     [24] payload bytes
//
// Chunk order is preserved by the writer, so saving the same state twice
// produces byte-identical files (the round-trip guarantee ctj_ckpt checks).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ctj::io {

/// What went wrong while reading or writing a CTJS file. Every failure mode
/// is distinct so callers (and tests) can assert the exact cause.
enum class ErrorKind {
  kOpenFailed,       // cannot open the file for reading/writing
  kWriteFailed,      // short write or failed atomic rename
  kBadMagic,         // first four bytes are not "CTJS"
  kVersionMismatch,  // format_version is not one this build understands
  kTruncated,        // file shorter than its header/chunk table promises
  kCrcMismatch,      // stored CRC32 does not match the bytes on disk
  kMissingChunk,     // a required chunk tag is absent
  kBadPayload,       // a chunk payload fails structural decoding
  kStateMismatch,    // decoded state is incompatible with the live object
};

const char* to_string(ErrorKind kind);

/// Thrown by the persistence subsystem; never leaves a partially-loaded
/// object behind (loaders decode into temporaries and commit last).
class IoError : public std::runtime_error {
 public:
  IoError(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

inline constexpr char kMagic[4] = {'C', 'T', 'J', 'S'};
inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
inline constexpr std::size_t kChunkHeaderSize = 24;
inline constexpr std::size_t kTagSize = 8;

// Chunk tags (8 ASCII bytes, space padded). The inspector keys its decoding
// off these, so they are part of the format.
namespace tags {
inline constexpr char kMeta[] = "META    ";      // key=value text
inline constexpr char kSchemeCfg[] = "SCHMCFG ";  // DqnScheme::Config
inline constexpr char kSchemeState[] = "SCHMST  ";  // scheme dynamic state
inline constexpr char kNetOnline[] = "NETONLN ";  // tensor blob
inline constexpr char kNetTarget[] = "NETTGT  ";  // tensor blob
inline constexpr char kAdam[] = "ADAMOPT ";       // u64 step + tensor blob
inline constexpr char kReplay[] = "REPLAY  ";     // replay ring + cursor
inline constexpr char kRngAgent[] = "RNGAGNT ";   // mt19937_64 text state
inline constexpr char kAgentCounters[] = "AGCNTRS ";  // env/grad steps + cfg
inline constexpr char kEnvState[] = "ENVSTATE";   // environment replicas
inline constexpr char kJammerCfg[] = "JAMRCFG ";  // adversary JammerSpec
inline constexpr char kObsWindows[] = "OBSWIN  ";  // batched rollout windows
inline constexpr char kTrainProgress[] = "TRAINPRG";  // trainer loop state
inline constexpr char kParallelTrain[] = "PARTRNST";  // parallel trainer state
inline constexpr char kShardReplay[] = "SHRDRPLY";    // sharded replay rings
inline constexpr char kActorShards[] = "ACTSHRDS";    // per-actor env/rng state
inline constexpr char kServeJob[] = "SRVJOB  ";       // serve tenant JobSpec
inline constexpr char kServeProgress[] = "SRVPRG  ";  // serve tenant progress
inline constexpr char kQlState[] = "QLSTATE ";        // tabular QL scheme state
inline constexpr char kFhState[] = "FHSTATE ";        // FH baseline scheme state
inline constexpr char kArenaProgress[] = "ARENAPRG";  // self-play generation progress
inline constexpr char kJammerPolicy[] = "JAMPOLCY";   // learned jammer full state
inline constexpr char kOpponentPool[] = "OPPPOOL ";   // frozen opponent pools
}  // namespace tags

}  // namespace ctj::io
