// Named-tensor blob: the self-describing payload format used by the network
// and optimizer chunks (NETONLN / NETTGT / ADAMOPT).
//
//   u32 tensor_count, then per tensor:
//     str  name        ("layer0.w", "layer0.b.m", …)
//     u64  rows, u64 cols
//     rows·cols f64    (row-major, LE bit patterns)
//
// Self-description is what lets `ctj_ckpt` summarize shapes and diff weight
// tensors between two checkpoints without linking the RL library.
#pragma once

#include <string>
#include <vector>

#include "io/bytes.hpp"

namespace ctj::io {

struct NamedTensor {
  std::string name;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::vector<double> data;  // rows × cols, row-major
};

void write_tensors(ByteWriter& out, const std::vector<NamedTensor>& tensors);

/// Decode a tensor blob; validates per-tensor element counts and that the
/// payload is fully consumed.
std::vector<NamedTensor> read_tensors(ByteReader& in);

}  // namespace ctj::io
