// DQN training loop on the slot-level competition environment (Sec. IV.B).
//
// The paper trains on >120 000 data blocks (each: channel, power, outcome)
// and stops early once the average reward reaches a threshold. We mirror
// that: train for up to `max_slots` environment slots, tracking the mean
// reward over a sliding window, with optional early stopping.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "core/environment.hpp"
#include "core/rl_fh.hpp"

namespace ctj::core {

/// Periodic checkpointing / resume for the training loops. A checkpoint is a
/// CTJS file holding the full scheme+agent state, the environment state
/// (every replica's RNG and hidden MDP state) and the trainer's own loop
/// progress, so a killed run resumed from it is bit-identical — same
/// weights, same RNG draws, same per-slot reward stream — to one that was
/// never interrupted.
struct CheckpointOptions {
  std::string path;
  /// Write a checkpoint every this many trained slots (0 = only at the end;
  /// the trainer always writes a final checkpoint when configured). The
  /// batched trainer rounds up to its next outer-loop boundary, since only
  /// there is the state between-transitions for every replica.
  std::size_t every_slots = 0;
  /// Resume from `path` when the file exists; start fresh when it does not
  /// (so a supervised job can simply always pass resume=true).
  bool resume = false;
};

struct TrainerConfig {
  std::size_t max_slots = 120000;
  /// Early-stop once the windowed mean reward reaches this value (the
  /// "training goal achieved in advance" of Sec. IV.B). Disabled if unset.
  std::optional<double> target_mean_reward;
  std::size_t reward_window = 2000;
  /// Periodic checkpoint/resume; disabled if unset. On resume, the stored
  /// reward_window and target_mean_reward must match this config (max_slots
  /// may differ — extending a finished run's budget is the point).
  std::optional<CheckpointOptions> checkpoint;
  /// Called after every trained slot with (global slot index, reward). The
  /// kill/resume tests use it to compare full reward streams.
  std::function<void(std::size_t, double)> on_slot;
};

struct TrainingStats {
  std::size_t slots_trained = 0;
  double final_mean_reward = 0.0;
  bool early_stopped = false;
  double wall_seconds = 0.0;
};

/// Run the scheme (in training mode) against the environment.
TrainingStats train(DqnScheme& scheme, CompetitionEnvironment& env,
                    const TrainerConfig& config);

/// Lockstep training on `replicas` environment replicas sharing the
/// scheme's agent: one batched ε-greedy forward per slot, then one observed
/// transition per replica (in replica order). config.max_slots counts
/// transitions summed over replicas, so the replay/optimizer work is
/// comparable to a sequential run of the same budget; the reward window and
/// early-stop test also run over the per-transition reward stream. With
/// replicas == 1 this consumes the agent's RNG in exactly the order the
/// sequential trainer does, and reproduces train() slot for slot.
TrainingStats train_batched(DqnScheme& scheme,
                            const EnvironmentConfig& env_config,
                            const TrainerConfig& config,
                            std::size_t replicas);

}  // namespace ctj::core
