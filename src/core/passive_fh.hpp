// Passive FH baseline (Sec. IV.D.3): reacts only *after* being jammed.
//
// The hub keeps transmitting on its channel at a fixed power until the
// error-rate detector declares the channel jammed; then it hops to a random
// fresh channel (and escalates power if hops keep failing).
#pragma once

#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "jammer/detector.hpp"

namespace ctj::core {

class PassiveFhScheme : public AntiJammingScheme {
 public:
  struct Config {
    int num_channels = 16;
    std::size_t num_power_levels = 10;
    std::size_t base_power_index = 0;
    /// Detector: declare jammed when >= threshold of the last `window`
    /// slots failed. The defaults make the scheme *passive* in the paper's
    /// sense: it tolerates several bad slots before reacting, which is why
    /// it loses more goodput than the proactive schemes (Fig. 11(a)).
    std::size_t detector_window = 4;
    double detector_threshold = 0.75;
    /// Escalate power by one level after this many consecutive failed hops.
    std::size_t escalate_after_failed_hops = 3;
    std::uint64_t seed = 21;
  };

  explicit PassiveFhScheme(const Config& config);

  SchemeDecision decide() override;
  void feedback(const SlotFeedback& feedback) override;
  std::string name() const override { return "PSV FH"; }
  void reset() override;

  /// Checkpoint-format serialization (the serve layer's FHSTATE payload):
  /// Config digest, RNG stream, detector window and hop/power state.
  /// load_state throws io::IoError on a digest mismatch or malformed
  /// payload, leaving the scheme unchanged.
  void save_state(io::ByteWriter& out) const;
  void load_state(io::ByteReader& in);

 private:
  Config config_;
  Rng rng_;
  jammer::ErrorRateDetector detector_;
  int channel_ = 0;
  std::size_t power_index_ = 0;
  std::size_t consecutive_failed_hops_ = 0;
  bool last_was_hop_ = false;
};

}  // namespace ctj::core
