#include "core/passive_fh.hpp"

#include "common/check.hpp"

namespace ctj::core {

PassiveFhScheme::PassiveFhScheme(const Config& config)
    : config_(config),
      rng_(config.seed),
      detector_(config.detector_window, config.detector_threshold) {
  CTJ_CHECK(config.num_channels >= 2);
  CTJ_CHECK(config.num_power_levels > 0);
  CTJ_CHECK(config.base_power_index < config.num_power_levels);
  reset();
}

void PassiveFhScheme::reset() {
  detector_.reset();
  channel_ = 0;
  power_index_ = config_.base_power_index;
  consecutive_failed_hops_ = 0;
  last_was_hop_ = false;
}

SchemeDecision PassiveFhScheme::decide() {
  last_was_hop_ = false;
  if (detector_.jammed()) {
    // Passive reaction: leave the jammed channel for a random fresh one.
    int next = rng_.uniform_int(0, config_.num_channels - 2);
    if (next >= channel_) ++next;
    channel_ = next;
    last_was_hop_ = true;
    detector_.reset();
    if (consecutive_failed_hops_ >= config_.escalate_after_failed_hops &&
        power_index_ + 1 < config_.num_power_levels) {
      ++power_index_;  // hops alone are not working; spend power too
      consecutive_failed_hops_ = 0;
    }
  }
  return {channel_, power_index_};
}

void PassiveFhScheme::feedback(const SlotFeedback& feedback) {
  detector_.record(!feedback.success);
  if (last_was_hop_) {
    consecutive_failed_hops_ =
        feedback.success ? 0 : consecutive_failed_hops_ + 1;
  }
}

void PassiveFhScheme::save_state(io::ByteWriter& out) const {
  out.i32(config_.num_channels);
  out.u64(config_.num_power_levels);
  out.u64(config_.base_power_index);
  out.u64(config_.detector_window);
  out.f64(config_.detector_threshold);
  out.u64(config_.escalate_after_failed_hops);
  out.u64(config_.seed);

  out.str(rng_.serialize_state());
  detector_.save_state(out);
  out.i32(channel_);
  out.u64(power_index_);
  out.u64(consecutive_failed_hops_);
  out.u8(last_was_hop_ ? 1 : 0);
}

void PassiveFhScheme::load_state(io::ByteReader& in) {
  const auto num_channels = in.i32();
  const auto num_power_levels = static_cast<std::size_t>(in.u64());
  const auto base_power = static_cast<std::size_t>(in.u64());
  const auto det_window = static_cast<std::size_t>(in.u64());
  const double det_threshold = in.f64();
  const auto escalate = static_cast<std::size_t>(in.u64());
  const std::uint64_t seed = in.u64();
  if (num_channels != config_.num_channels ||
      num_power_levels != config_.num_power_levels ||
      base_power != config_.base_power_index ||
      det_window != config_.detector_window ||
      det_threshold != config_.detector_threshold ||
      escalate != config_.escalate_after_failed_hops ||
      seed != config_.seed) {
    throw io::IoError(io::ErrorKind::kStateMismatch,
                      "stored PassiveFhScheme::Config differs from this "
                      "scheme");
  }

  const std::string rng_text = in.str();
  Rng rng;
  try {
    rng.restore_state(rng_text);
  } catch (const CheckFailure&) {
    throw io::IoError(io::ErrorKind::kBadPayload, "passive FH RNG state");
  }
  // The detector keeps the strong guarantee itself; decode it into a copy
  // and commit everything together below.
  jammer::ErrorRateDetector detector(config_.detector_window,
                                     config_.detector_threshold);
  detector.load_state(in);
  const int channel = in.i32();
  const auto power_index = static_cast<std::size_t>(in.u64());
  const auto failed_hops = static_cast<std::size_t>(in.u64());
  const bool last_was_hop = in.u8() != 0;
  if (channel < 0 || channel >= config_.num_channels ||
      power_index >= config_.num_power_levels) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "passive FH channel/power out of range");
  }

  rng_ = rng;
  detector_ = std::move(detector);
  channel_ = channel;
  power_index_ = power_index;
  consecutive_failed_hops_ = failed_hops;
  last_was_hop_ = last_was_hop;
}

}  // namespace ctj::core
