#include "core/passive_fh.hpp"

#include "common/check.hpp"

namespace ctj::core {

PassiveFhScheme::PassiveFhScheme(const Config& config)
    : config_(config),
      rng_(config.seed),
      detector_(config.detector_window, config.detector_threshold) {
  CTJ_CHECK(config.num_channels >= 2);
  CTJ_CHECK(config.num_power_levels > 0);
  CTJ_CHECK(config.base_power_index < config.num_power_levels);
  reset();
}

void PassiveFhScheme::reset() {
  detector_.reset();
  channel_ = 0;
  power_index_ = config_.base_power_index;
  consecutive_failed_hops_ = 0;
  last_was_hop_ = false;
}

SchemeDecision PassiveFhScheme::decide() {
  last_was_hop_ = false;
  if (detector_.jammed()) {
    // Passive reaction: leave the jammed channel for a random fresh one.
    int next = rng_.uniform_int(0, config_.num_channels - 2);
    if (next >= channel_) ++next;
    channel_ = next;
    last_was_hop_ = true;
    detector_.reset();
    if (consecutive_failed_hops_ >= config_.escalate_after_failed_hops &&
        power_index_ + 1 < config_.num_power_levels) {
      ++power_index_;  // hops alone are not working; spend power too
      consecutive_failed_hops_ = 0;
    }
  }
  return {channel_, power_index_};
}

void PassiveFhScheme::feedback(const SlotFeedback& feedback) {
  detector_.record(!feedback.success);
  if (last_was_hop_) {
    consecutive_failed_hops_ =
        feedback.success ? 0 : consecutive_failed_hops_ + 1;
  }
}

}  // namespace ctj::core
