// Energy accounting for the anti-jamming schemes.
//
// Sec. IV.C.2 closes with an energy argument: the relatively low PC adoption
// in the max-power mode "can avoid unnecessary and meaningless energy
// waste", and energy-constrained users can shift the transmit power range to
// trade power-control adoption for battery life. This module quantifies that
// trade-off: per-slot radio energy from the chosen transmit level and
// airtime, plus hop-negotiation and listening overheads.
#pragma once

#include <cstddef>

#include "common/stats.hpp"

namespace ctj::core {

struct EnergyModelConfig {
  /// Map an abstract power level L^T to transmit power in milliwatts.
  /// Default matches net::tx_level_to_dbm: level − 10 dBm.
  double level_offset_dbm = -10.0;
  /// Radio current draw while receiving/idle-listening, expressed as mW.
  double rx_power_mw = 20.0;
  /// Fraction of a slot spent transmitting (vs listening) at full load.
  double tx_duty = 0.45;
  /// Extra energy per frequency hop (control-channel negotiation), mJ.
  double hop_energy_mj = 2.5;
  /// Battery capacity used for the lifetime estimate (CR2477-class), mWh.
  double battery_mwh = 675.0;
};

struct EnergyReport {
  double total_mj = 0.0;
  double mean_mw = 0.0;          // average power draw
  double tx_mj = 0.0;            // transmit share
  double hop_mj = 0.0;           // negotiation share
  double battery_life_hours = 0.0;
  std::size_t slots = 0;
};

class EnergyAccumulator {
 public:
  EnergyAccumulator() : EnergyAccumulator(EnergyModelConfig{}) {}
  explicit EnergyAccumulator(EnergyModelConfig config);

  /// Record one slot: the abstract transmit level used, the slot duration,
  /// and whether the scheme hopped.
  void record_slot(double tx_level, double slot_duration_s, bool hopped);

  EnergyReport report() const;
  void reset();

  const EnergyModelConfig& config() const { return config_; }

 private:
  EnergyModelConfig config_;
  double total_mj_ = 0.0;
  double tx_mj_ = 0.0;
  double hop_mj_ = 0.0;
  double total_time_s_ = 0.0;
  std::size_t slots_ = 0;
};

}  // namespace ctj::core
