#include "core/checkpoint.hpp"

#include <map>

#include "common/kernels.hpp"

namespace ctj::core {

void add_meta_chunk(io::ContainerWriter& out, const std::string& type) {
  std::map<std::string, std::string> meta;
  meta["format"] = "ctjs";
  meta["type"] = type;
  meta["simd_level"] = kern::simd_level_name();
  out.add_chunk(io::tags::kMeta, io::encode_meta(meta));
}

void save_scheme(const DqnScheme& scheme, const std::string& path) {
  io::ContainerWriter out;
  add_meta_chunk(out, "model");
  scheme.save_state(out);
  out.write_file(path);
}

void load_scheme(DqnScheme& scheme, const std::string& path) {
  const io::ContainerReader in = io::ContainerReader::from_file(path);
  scheme.load_state(in);
}

DqnScheme::Config read_scheme_config(const std::string& path) {
  const io::ContainerReader in = io::ContainerReader::from_file(path);
  return DqnScheme::read_config(in);
}

void load_policy(DqnScheme& scheme, const std::string& path) {
  const io::ContainerReader in = io::ContainerReader::from_file(path);
  scheme.agent().load_policy(in);
}

}  // namespace ctj::core
