#include "core/checkpoint.hpp"

#include <filesystem>
#include <limits>
#include <map>

#include "common/kernels.hpp"

namespace ctj::core {

void add_meta_chunk(io::ContainerWriter& out, const std::string& type) {
  std::map<std::string, std::string> meta;
  meta["format"] = "ctjs";
  meta["type"] = type;
  meta["simd_level"] = kern::simd_level_name();
  out.add_chunk(io::tags::kMeta, io::encode_meta(meta));
}

void save_scheme(const DqnScheme& scheme, const std::string& path) {
  io::ContainerWriter out;
  add_meta_chunk(out, "model");
  scheme.save_state(out);
  out.write_file(path);
}

void load_scheme(DqnScheme& scheme, const std::string& path) {
  const io::ContainerReader in = io::ContainerReader::from_file(path);
  scheme.load_state(in);
}

DqnScheme::Config read_scheme_config(const std::string& path) {
  const io::ContainerReader in = io::ContainerReader::from_file(path);
  return DqnScheme::read_config(in);
}

void load_policy(DqnScheme& scheme, const std::string& path) {
  const io::ContainerReader in = io::ContainerReader::from_file(path);
  scheme.agent().load_policy(in);
}

void write_train_progress(io::ContainerWriter& out,
                          const TrainProgress& progress,
                          const TrainerConfig& config) {
  io::ByteWriter w;
  w.u8(progress.mode);
  w.u64(progress.replicas);
  w.u64(progress.slots_trained);
  w.u8(progress.early_stopped ? 1 : 0);
  w.u64(config.reward_window);
  w.u8(config.target_mean_reward ? 1 : 0);
  w.f64(config.target_mean_reward.value_or(0.0));
  w.f64(progress.window_sum);
  w.u64(progress.window.size());
  for (double r : progress.window) w.f64(r);
  out.add_chunk(io::tags::kTrainProgress, w.take());
}

TrainProgress read_train_progress(const io::ContainerReader& in,
                                  std::uint8_t mode, std::uint64_t replicas,
                                  const TrainerConfig& config) {
  const auto mismatch = [](const std::string& what) -> io::IoError {
    return io::IoError(io::ErrorKind::kStateMismatch,
                       "checkpoint trainer state differs in " + what);
  };
  io::ByteReader r(in.chunk(io::tags::kTrainProgress));
  TrainProgress progress;
  progress.mode = r.u8();
  if (progress.mode != mode) throw mismatch("training mode");
  progress.replicas = r.u64();
  if (progress.replicas != replicas) throw mismatch("replica count");
  progress.slots_trained = r.u64();
  progress.early_stopped = r.u8() != 0;
  if (r.u64() != config.reward_window) throw mismatch("reward_window");
  const bool has_target = r.u8() != 0;
  const double target = r.f64();
  if (has_target != config.target_mean_reward.has_value() ||
      (has_target && target != *config.target_mean_reward)) {
    throw mismatch("target_mean_reward");
  }
  progress.window_sum = r.f64();
  const std::uint64_t count = r.u64();
  if (count > config.reward_window) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "reward window longer than reward_window");
  }
  for (std::uint64_t i = 0; i < count; ++i) progress.window.push_back(r.f64());
  r.expect_end();
  return progress;
}

void write_jammer_config(io::ContainerWriter& out,
                         const jammer::JammerSpec& spec) {
  if (spec.is_kernel()) return;
  io::ByteWriter w;
  spec.encode(w);
  out.add_chunk(io::tags::kJammerCfg, w.take());
}

void check_jammer_config(const io::ContainerReader& in,
                         const jammer::JammerSpec& spec) {
  const auto mismatch = [](const std::string& what) -> io::IoError {
    return io::IoError(io::ErrorKind::kStateMismatch,
                       "checkpoint adversary differs: " + what);
  };
  if (spec.is_kernel()) {
    if (in.has_chunk(io::tags::kJammerCfg)) {
      throw mismatch(
          "checkpoint was trained against a behavioural jammer, the live "
          "environment samples the closed-form kernel");
    }
    return;
  }
  if (!in.has_chunk(io::tags::kJammerCfg)) {
    throw mismatch(
        "checkpoint has no JAMRCFG chunk, the live environment runs \"" +
        spec.archetype + "\"");
  }
  io::ByteReader r(in.chunk(io::tags::kJammerCfg));
  const jammer::JammerSpec stored = jammer::JammerSpec::decode(r);
  r.expect_end();
  if (stored != spec) {
    throw mismatch("checkpoint ran \"" + stored.archetype +
                   "\", the live environment runs \"" + spec.archetype +
                   "\" (or the tunables differ)");
  }
}

bool should_resume_checkpoint(const TrainerConfig& config) {
  if (!config.checkpoint || !config.checkpoint->resume) return false;
  std::error_code ec;
  return std::filesystem::exists(config.checkpoint->path, ec);
}

std::size_t next_checkpoint_after(std::size_t slots, std::size_t every) {
  if (every == 0) return std::numeric_limits<std::size_t>::max();
  return (slots / every + 1) * every;
}

}  // namespace ctj::core
