// MDP-optimal oracle scheme.
//
// Solves the anti-jamming MDP of Sec. III.A exactly (value iteration) and
// plays the resulting threshold policy while tracking the hidden state from
// slot feedback. As the paper notes (Sec. III.C) this is *idealized* — a real
// hub cannot know the jammer's sweep position — so it serves as an upper
// reference against which the model-free DQN is judged.
#pragma once

#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "mdp/analysis.hpp"

namespace ctj::core {

class MdpOracleScheme : public AntiJammingScheme {
 public:
  struct Config {
    mdp::AntijamParams params;  // defaults applied when tx levels empty
    int num_channels = 16;
    /// m: the jammer's emission covers whole m-channel groups, so the
    /// oracle always hops to a channel in a *different* group.
    int channels_per_group = 4;
    std::uint64_t seed = 24;
  };

  explicit MdpOracleScheme(Config config);

  SchemeDecision decide() override;
  void feedback(const SlotFeedback& feedback) override;
  std::string name() const override { return "MDP oracle"; }
  void reset() override;

  const mdp::Solution& solution() const { return solution_; }
  int threshold() const { return threshold_; }

 private:
  std::size_t current_state() const;

  Config config_;
  Rng rng_;
  mdp::AntijamMdp model_;
  mdp::Solution solution_;
  int threshold_;
  int channel_ = 0;
  // Tracked hidden state: n >= 1 counting, or the T_J / J flags.
  int n_ = 1;
  bool in_tj_ = false;
  bool in_j_ = false;
  bool last_was_hop_ = false;
};

}  // namespace ctj::core
