// Tabular Q-learning anti-jamming scheme — the classic-RL baseline the paper
// contrasts the DQN against (Sec. III.C). Same observation window and action
// decoding as DqnScheme, but the policy lives in a discretized Q table whose
// size explodes with the history length — the "curse of
// high-dimensionality" the paper cites.
#pragma once

#include <deque>

#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "rl/qlearning.hpp"

namespace ctj::core {

class QLearningScheme : public AntiJammingScheme {
 public:
  struct Config {
    int num_channels = 16;
    std::size_t num_power_levels = 10;
    std::size_t history = 4;  // I
    std::size_t bins_per_dim = 3;
    double learning_rate = 0.1;
    double gamma = 0.9;
    double epsilon_start = 1.0;
    double epsilon_end = 0.05;
    std::size_t epsilon_decay_steps = 4000;
    double deploy_epsilon = 0.05;
    std::uint64_t seed = 27;
  };

  explicit QLearningScheme(const Config& config);

  SchemeDecision decide() override;
  void feedback(const SlotFeedback& feedback) override;
  std::string name() const override { return "QL FH"; }
  void reset() override;

  void set_training(bool training) { training_ = training; }
  rl::QLearningAgent& agent() { return agent_; }

  /// Checkpoint-format serialization (the serve layer's QLSTATE payload): a
  /// digest of the Config, the deploy RNG, the observation window, the
  /// pending transition and the whole agent (RNG, steps, sorted Q table).
  /// load_state rejects a payload whose Config digest differs from this
  /// scheme's (io::IoError kStateMismatch); the scheme is unchanged on any
  /// failure.
  void save_state(io::ByteWriter& out) const;
  void load_state(io::ByteReader& in);

 private:
  struct SlotRecord {
    double success = 0.0;
    double channel = 0.0;
    double power = 0.0;
  };

  std::vector<double> observation() const;

  Config config_;
  rl::QLearningAgent agent_;
  Rng deploy_rng_;
  bool training_ = true;
  std::deque<SlotRecord> history_;
  std::vector<double> pending_state_;
  std::size_t pending_action_ = 0;
  bool has_pending_ = false;
};

}  // namespace ctj::core
