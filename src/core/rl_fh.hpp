// RL FH — the paper's DQN-based hybrid anti-jamming scheme (Sec. III.C).
//
// The hub feeds the DQN an observation window of the last I slots, three
// observables per slot (success/failure, channel, power level — the indexes
// the victim can actually see), and reads out one of C×PL actions, i.e. a
// (channel, power level) pair that jointly encodes frequency hopping and
// power control.
#pragma once

#include <deque>

#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "io/container.hpp"
#include "rl/dqn.hpp"

namespace ctj::core {

class DqnScheme : public AntiJammingScheme {
 public:
  struct Config {
    int num_channels = 16;
    std::size_t num_power_levels = 10;
    /// I: history slots encoded into the network input (3 × I neurons).
    std::size_t history = 8;
    /// true while learning; set false (or call set_training) to deploy the
    /// frozen policy, as the field experiments do.
    bool training = true;
    /// Exploration kept at deployment (Sec. III.C: "we choose the
    /// communication policy based on the ε-greedy algorithm") — it both
    /// avoids local maxima and randomizes hop targets so the sweeping
    /// jammer cannot track a deterministic channel pattern.
    double deploy_epsilon = 0.05;
    /// Overrides applied to the derived DqnConfig.
    double learning_rate = 1e-3;
    double gamma = 0.9;
    double epsilon_start = 1.0;
    double epsilon_end = 0.05;
    std::size_t epsilon_decay_steps = 4000;
    std::vector<std::size_t> hidden = {45, 45};
    /// Double-DQN bootstrap (ablation; the paper uses vanilla DQN).
    bool double_dqn = false;
    /// Gradient steps between hard target-network syncs (ignored when
    /// target_tau > 0).
    std::size_t target_sync_interval = 250;
    /// Polyak soft target update coefficient; 0 keeps the hard sync.
    double target_tau = 0.0;
    std::uint64_t seed = 23;
  };

  explicit DqnScheme(const Config& config);

  SchemeDecision decide() override;
  void feedback(const SlotFeedback& feedback) override;
  std::string name() const override { return "RL FH"; }
  double decision_time_s() const override { return 9.0e-3; }
  void reset() override;

  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Adjust the deployed exploration rate (for ablations).
  void set_deploy_epsilon(double epsilon);
  double deploy_epsilon() const { return config_.deploy_epsilon; }

  rl::DqnAgent& agent() { return agent_; }
  const rl::DqnAgent& agent() const { return agent_; }

  /// The scheme configuration (batched rollout drivers derive window and
  /// action-space dimensions from it).
  const Config& config() const { return config_; }

  /// The current 3×I observation vector (exposed for tests).
  std::vector<double> observation() const;

  /// Write the scheme's full state into a CTJS container: its Config (so a
  /// matching scheme can be reconstructed from the file alone), the sliding
  /// observation window + pending transition, the deploy RNG, and the whole
  /// agent (networks, optimizer, replay, RNG, counters).
  void save_state(io::ContainerWriter& out) const;

  /// Restore a state written by save_state(). The stored Config must equal
  /// this scheme's (throws io::IoError kStateMismatch otherwise); on any
  /// failure the scheme is unchanged.
  void load_state(const io::ContainerReader& in);

  /// Decode the scheme Config stored in a checkpoint (to construct a
  /// matching DqnScheme before load_state, e.g. `ctj_cli eval --model`).
  static Config read_config(const io::ContainerReader& in);

 private:
  struct SlotRecord {
    double success = 0.0;
    double channel = 0.0;      // normalized to [0, 1]
    double power = 0.0;        // normalized to [0, 1]
  };

  static rl::DqnConfig make_dqn_config(const Config& config);

  Config config_;
  rl::DqnAgent agent_;
  Rng deploy_rng_;
  bool training_ = true;
  std::deque<SlotRecord> history_;
  std::vector<double> pending_state_;
  std::size_t pending_action_ = 0;
  bool has_pending_ = false;
};

}  // namespace ctj::core
