#include "core/metrics.hpp"

namespace ctj::core {

void MetricsAccumulator::record(bool success, bool adopted_fh, bool adopted_pc,
                                double reward) {
  total_.record(success);
  fh_adopted_.record(adopted_fh);
  pc_adopted_.record(adopted_pc);
  if (adopted_fh) fh_.record(success);
  if (adopted_pc) pc_.record(success);
  reward_.add(reward);
}

void MetricsAccumulator::record(const EnvStep& step, std::size_t power_index) {
  record(step.success, step.hopped, power_index > 0, step.reward);
}

MetricsReport MetricsAccumulator::report() const {
  MetricsReport r;
  r.st = total_.rate();
  r.ah = fh_adopted_.rate();
  r.ap = pc_adopted_.rate();
  r.sh = fh_.rate();
  r.sp = pc_.rate();
  r.mean_reward = reward_.empty() ? 0.0 : reward_.sum() / static_cast<double>(reward_.count());
  r.slots = total_.trials();
  return r;
}

void MetricsAccumulator::reset() { *this = MetricsAccumulator(); }

}  // namespace ctj::core
