// Slot-level experiment harness shared by the simulation benches (Figs. 6–8)
// and the examples: evaluate any scheme against the competition environment
// and aggregate the Table-I metrics.
#pragma once

#include <cstddef>

#include "core/environment.hpp"
#include "core/metrics.hpp"
#include "core/rl_fh.hpp"
#include "core/scheme.hpp"
#include "core/trainer.hpp"

namespace ctj::core {

/// Run `slots` evaluation slots of an already-configured scheme.
MetricsReport evaluate(AntiJammingScheme& scheme, CompetitionEnvironment& env,
                       std::size_t slots);

/// End-to-end RL experiment: train a fresh DQN on the environment, then
/// freeze it and evaluate — one point of a Fig. 6/7/8 sweep.
struct RlExperimentConfig {
  EnvironmentConfig env;
  DqnScheme::Config scheme;
  std::size_t train_slots = 30000;
  std::size_t eval_slots = 20000;
  std::uint64_t eval_seed = 97;

  /// Derive consistent scheme dimensions from the environment config.
  void sync_dimensions();
};

struct RlExperimentResult {
  MetricsReport metrics;
  TrainingStats training;
};

RlExperimentResult run_rl_experiment(RlExperimentConfig config);

}  // namespace ctj::core
