// Slot-level experiment harness shared by the simulation benches (Figs. 6–8)
// and the examples: evaluate any scheme against the competition environment
// and aggregate the Table-I metrics.
#pragma once

#include <cstddef>

#include "core/environment.hpp"
#include "core/metrics.hpp"
#include "core/rl_fh.hpp"
#include "core/scheme.hpp"
#include "core/trainer.hpp"

namespace ctj::core {

/// Run `slots` evaluation slots of an already-configured scheme.
MetricsReport evaluate(AntiJammingScheme& scheme, CompetitionEnvironment& env,
                       std::size_t slots);

/// Batched evaluation of a frozen DQN policy: `replicas` VectorEnv replicas
/// (replica r seeded env_config.seed + r) stepped in lockstep for
/// `slots_per_replica` slots each, with one batched forward pass per slot
/// instead of a batch-1 forward per replica. Metrics aggregate all
/// replicas' slots. With deploy_epsilon == 0 and replicas == 1 this
/// reproduces evaluate() on an environment built from env_config exactly;
/// with exploration enabled the batched path draws from its own RNG stream
/// (seeded from env_config.seed), so it matches evaluate() statistically
/// but not slot for slot.
MetricsReport evaluate_batched(const DqnScheme& scheme,
                               const EnvironmentConfig& env_config,
                               std::size_t slots_per_replica,
                               std::size_t replicas);

/// End-to-end RL experiment: train a fresh DQN on the environment, then
/// freeze it and evaluate — one point of a Fig. 6/7/8 sweep.
struct RlExperimentConfig {
  EnvironmentConfig env;
  DqnScheme::Config scheme;
  std::size_t train_slots = 30000;
  std::size_t eval_slots = 20000;
  std::uint64_t eval_seed = 97;
  /// Evaluation environment replicas. 1 (the default) keeps the historical
  /// sequential evaluate() path — figure numbers are unchanged; > 1 runs
  /// eval_slots slots on each of the replicas through the batched rollout
  /// engine (evaluate_batched), amortizing the network forward across them.
  std::size_t eval_replicas = 1;

  /// Optional periodic checkpoint/resume for the training phase (passed
  /// through to TrainerConfig::checkpoint — see CheckpointOptions).
  std::optional<CheckpointOptions> checkpoint;

  /// Derive consistent scheme dimensions from the environment config.
  void sync_dimensions();
};

struct RlExperimentResult {
  MetricsReport metrics;
  TrainingStats training;
};

RlExperimentResult run_rl_experiment(RlExperimentConfig config);

}  // namespace ctj::core
