#include "core/qlearning_scheme.hpp"

#include "common/check.hpp"

namespace ctj::core {
namespace {

rl::QLearningConfig make_agent_config(const QLearningScheme::Config& config) {
  rl::QLearningConfig agent;
  agent.state_dim = 3 * config.history;
  agent.num_actions = static_cast<std::size_t>(config.num_channels) *
                      config.num_power_levels;
  agent.bins_per_dim = config.bins_per_dim;
  agent.learning_rate = config.learning_rate;
  agent.gamma = config.gamma;
  agent.epsilon_start = config.epsilon_start;
  agent.epsilon_end = config.epsilon_end;
  agent.epsilon_decay_steps = config.epsilon_decay_steps;
  agent.seed = config.seed;
  return agent;
}

}  // namespace

QLearningScheme::QLearningScheme(const Config& config)
    : config_(config),
      agent_(make_agent_config(config)),
      deploy_rng_(config.seed ^ 0x91ULL) {
  CTJ_CHECK(config.num_channels >= 2);
  CTJ_CHECK(config.num_power_levels > 0);
  CTJ_CHECK(config.history > 0);
  reset();
}

void QLearningScheme::reset() {
  history_.assign(config_.history, SlotRecord{});
  has_pending_ = false;
}

std::vector<double> QLearningScheme::observation() const {
  std::vector<double> obs;
  obs.reserve(3 * config_.history);
  for (const auto& rec : history_) {
    obs.push_back(rec.success);
    obs.push_back(rec.channel);
    obs.push_back(rec.power);
  }
  return obs;
}

SchemeDecision QLearningScheme::decide() {
  const std::vector<double> obs = observation();
  std::size_t action;
  if (training_) {
    action = agent_.act(obs);
  } else if (config_.deploy_epsilon > 0.0 &&
             deploy_rng_.bernoulli(config_.deploy_epsilon)) {
    action = deploy_rng_.index(agent_.config().num_actions);
  } else {
    action = agent_.act_greedy(obs);
  }
  pending_state_ = obs;
  pending_action_ = action;
  has_pending_ = true;
  SchemeDecision decision;
  decision.channel = static_cast<int>(action / config_.num_power_levels);
  decision.power_index = action % config_.num_power_levels;
  return decision;
}

void QLearningScheme::save_state(io::ByteWriter& out) const {
  out.i32(config_.num_channels);
  out.u64(config_.num_power_levels);
  out.u64(config_.history);
  out.u64(config_.bins_per_dim);
  out.f64(config_.learning_rate);
  out.f64(config_.gamma);
  out.f64(config_.epsilon_start);
  out.f64(config_.epsilon_end);
  out.u64(config_.epsilon_decay_steps);
  out.f64(config_.deploy_epsilon);
  out.u64(config_.seed);

  out.u8(training_ ? 1 : 0);
  out.str(deploy_rng_.serialize_state());
  out.u64(history_.size());
  for (const SlotRecord& rec : history_) {
    out.f64(rec.success);
    out.f64(rec.channel);
    out.f64(rec.power);
  }
  out.u8(has_pending_ ? 1 : 0);
  out.f64_vec(pending_state_);
  out.u64(pending_action_);

  agent_.save_state(out);
}

void QLearningScheme::load_state(io::ByteReader& in) {
  const auto num_channels = in.i32();
  const auto num_power_levels = static_cast<std::size_t>(in.u64());
  const auto history_len = static_cast<std::size_t>(in.u64());
  const auto bins = static_cast<std::size_t>(in.u64());
  const double lr = in.f64();
  const double gamma = in.f64();
  const double eps_start = in.f64();
  const double eps_end = in.f64();
  const auto decay = static_cast<std::size_t>(in.u64());
  const double deploy_eps = in.f64();
  const std::uint64_t seed = in.u64();
  if (num_channels != config_.num_channels ||
      num_power_levels != config_.num_power_levels ||
      history_len != config_.history || bins != config_.bins_per_dim ||
      lr != config_.learning_rate || gamma != config_.gamma ||
      eps_start != config_.epsilon_start || eps_end != config_.epsilon_end ||
      decay != config_.epsilon_decay_steps ||
      deploy_eps != config_.deploy_epsilon || seed != config_.seed) {
    throw io::IoError(io::ErrorKind::kStateMismatch,
                      "stored QLearningScheme::Config differs from this "
                      "scheme");
  }

  const bool training = in.u8() != 0;
  const std::string rng_text = in.str();
  Rng deploy_rng;
  try {
    deploy_rng.restore_state(rng_text);
  } catch (const CheckFailure&) {
    throw io::IoError(io::ErrorKind::kBadPayload, "QL scheme RNG state");
  }
  const std::uint64_t records = in.u64();
  if (records != config_.history) {
    throw io::IoError(io::ErrorKind::kStateMismatch,
                      "stored window has " + std::to_string(records) +
                          " records, scheme history is " +
                          std::to_string(config_.history));
  }
  std::deque<SlotRecord> history;
  for (std::uint64_t i = 0; i < records; ++i) {
    SlotRecord rec;
    rec.success = in.f64();
    rec.channel = in.f64();
    rec.power = in.f64();
    history.push_back(rec);
  }
  const bool has_pending = in.u8() != 0;
  std::vector<double> pending_state = in.f64_vec();
  const std::uint64_t pending_action = in.u64();
  if (has_pending && pending_state.size() != 3 * config_.history) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "pending state has the wrong dimension");
  }
  if (has_pending && pending_action >= agent_.config().num_actions) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "pending action out of range");
  }

  // The agent loader keeps the strong guarantee itself; loading it first
  // means nothing above has mutated the scheme when it throws.
  agent_.load_state(in);
  training_ = training;
  deploy_rng_ = deploy_rng;
  history_ = std::move(history);
  pending_state_ = std::move(pending_state);
  pending_action_ = static_cast<std::size_t>(pending_action);
  has_pending_ = has_pending;
}

void QLearningScheme::feedback(const SlotFeedback& feedback) {
  history_.pop_front();
  SlotRecord rec;
  rec.success = feedback.success ? 1.0 : 0.0;
  rec.channel = config_.num_channels <= 1
                    ? 0.0
                    : static_cast<double>(feedback.channel) /
                          static_cast<double>(config_.num_channels - 1);
  rec.power = config_.num_power_levels <= 1
                  ? 0.0
                  : static_cast<double>(feedback.power_index) /
                        static_cast<double>(config_.num_power_levels - 1);
  history_.push_back(rec);

  if (has_pending_ && training_) {
    agent_.update(pending_state_, pending_action_, feedback.reward,
                  observation());
  }
  has_pending_ = false;
}

}  // namespace ctj::core
