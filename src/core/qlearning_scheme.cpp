#include "core/qlearning_scheme.hpp"

#include "common/check.hpp"

namespace ctj::core {
namespace {

rl::QLearningConfig make_agent_config(const QLearningScheme::Config& config) {
  rl::QLearningConfig agent;
  agent.state_dim = 3 * config.history;
  agent.num_actions = static_cast<std::size_t>(config.num_channels) *
                      config.num_power_levels;
  agent.bins_per_dim = config.bins_per_dim;
  agent.learning_rate = config.learning_rate;
  agent.gamma = config.gamma;
  agent.epsilon_start = config.epsilon_start;
  agent.epsilon_end = config.epsilon_end;
  agent.epsilon_decay_steps = config.epsilon_decay_steps;
  agent.seed = config.seed;
  return agent;
}

}  // namespace

QLearningScheme::QLearningScheme(const Config& config)
    : config_(config),
      agent_(make_agent_config(config)),
      deploy_rng_(config.seed ^ 0x91ULL) {
  CTJ_CHECK(config.num_channels >= 2);
  CTJ_CHECK(config.num_power_levels > 0);
  CTJ_CHECK(config.history > 0);
  reset();
}

void QLearningScheme::reset() {
  history_.assign(config_.history, SlotRecord{});
  has_pending_ = false;
}

std::vector<double> QLearningScheme::observation() const {
  std::vector<double> obs;
  obs.reserve(3 * config_.history);
  for (const auto& rec : history_) {
    obs.push_back(rec.success);
    obs.push_back(rec.channel);
    obs.push_back(rec.power);
  }
  return obs;
}

SchemeDecision QLearningScheme::decide() {
  const std::vector<double> obs = observation();
  std::size_t action;
  if (training_) {
    action = agent_.act(obs);
  } else if (config_.deploy_epsilon > 0.0 &&
             deploy_rng_.bernoulli(config_.deploy_epsilon)) {
    action = deploy_rng_.index(agent_.config().num_actions);
  } else {
    action = agent_.act_greedy(obs);
  }
  pending_state_ = obs;
  pending_action_ = action;
  has_pending_ = true;
  SchemeDecision decision;
  decision.channel = static_cast<int>(action / config_.num_power_levels);
  decision.power_index = action % config_.num_power_levels;
  return decision;
}

void QLearningScheme::feedback(const SlotFeedback& feedback) {
  history_.pop_front();
  SlotRecord rec;
  rec.success = feedback.success ? 1.0 : 0.0;
  rec.channel = config_.num_channels <= 1
                    ? 0.0
                    : static_cast<double>(feedback.channel) /
                          static_cast<double>(config_.num_channels - 1);
  rec.power = config_.num_power_levels <= 1
                  ? 0.0
                  : static_cast<double>(feedback.power_index) /
                        static_cast<double>(config_.num_power_levels - 1);
  history_.push_back(rec);

  if (has_pending_ && training_) {
    agent_.update(pending_state_, pending_action_, feedback.reward,
                  observation());
  }
  has_pending_ = false;
}

}  // namespace ctj::core
