#include "core/train_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/kernels.hpp"
#include "core/checkpoint.hpp"
#include "core/vector_env.hpp"
#include "rl/policy_bus.hpp"
#include "rl/replay_shard.hpp"

namespace ctj::core {
namespace {

/// Effective knob values after resolving the 0 = "inherit from the agent
/// config" defaults.
struct Resolved {
  std::size_t actors = 0;
  std::size_t replicas = 0;
  std::size_t threads = 0;
  bool deterministic = true;
  std::size_t sync = 0;
  std::size_t batch = 0;
  std::size_t train_every = 0;
  std::size_t replay_per_actor = 0;
  std::size_t queue_capacity = 0;
  std::size_t min_replay = 0;

  std::size_t total_replicas() const { return actors * replicas; }
};

Resolved resolve(const rl::DqnConfig& agent_config,
                 const ParallelTrainerConfig& p) {
  CTJ_CHECK(p.actors > 0);
  CTJ_CHECK(p.replicas_per_actor > 0);
  CTJ_CHECK(p.sync_every_rounds > 0);
  Resolved r;
  r.actors = p.actors;
  r.replicas = p.replicas_per_actor;
  r.threads = std::clamp<std::size_t>(p.threads, 1, p.actors);
  r.deterministic = p.deterministic;
  r.sync = p.sync_every_rounds;
  r.batch = p.learner_batch > 0 ? p.learner_batch : agent_config.batch_size;
  r.train_every = p.train_every_slots > 0
                      ? p.train_every_slots
                      : std::max<std::size_t>(1, agent_config.train_every);
  r.replay_per_actor =
      p.replay_capacity_per_actor > 0
          ? p.replay_capacity_per_actor
          : std::max<std::size_t>(1, agent_config.replay_capacity / p.actors);
  r.queue_capacity = p.queue_capacity > 0
                         ? p.queue_capacity
                         : std::max<std::size_t>(64, 4 * r.replicas);
  r.min_replay = agent_config.min_replay_before_training;
  return r;
}

std::vector<std::size_t> layer_sizes(const rl::DqnConfig& config) {
  std::vector<std::size_t> sizes;
  sizes.push_back(config.state_dim);
  sizes.insert(sizes.end(), config.hidden.begin(), config.hidden.end());
  sizes.push_back(config.num_actions);
  return sizes;
}

rl::Mlp make_local_net(const rl::DqnConfig& config) {
  // Placeholder init: every shard applies a bus snapshot before its first
  // forward (deterministic mode gates on epoch 1; throughput mode's initial
  // publish precedes worker spawn).
  Rng init_rng(1);
  return rl::Mlp(layer_sizes(config), init_rng);
}

/// The throughput-mode quiesce point: workers park at round boundaries
/// while the learner drains their queues dry and cuts a checkpoint.
class PauseGate {
 public:
  void request_pause() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
    paused_hint_.store(true, std::memory_order_release);
  }

  bool all_parked(std::size_t count) const {
    return parked_.load(std::memory_order_acquire) >= count;
  }

  void resume() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      paused_ = false;
      paused_hint_.store(false, std::memory_order_release);
    }
    cv_.notify_all();
  }

  /// Wake every parked worker so they can observe a stop request.
  void release_all() { cv_.notify_all(); }

  /// Worker side, top of each round. Returns false when `stop` was
  /// requested; blocks while the gate is paused.
  bool park_if_paused(const std::atomic<bool>& stop) {
    if (!paused_hint_.load(std::memory_order_acquire)) {
      return !stop.load(std::memory_order_acquire);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (paused_ && !stop.load(std::memory_order_acquire)) {
      parked_.fetch_add(1, std::memory_order_release);
      cv_.wait(lock, [&] {
        return !paused_ || stop.load(std::memory_order_acquire);
      });
      parked_.fetch_sub(1, std::memory_order_release);
    }
    return !stop.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool paused_ = false;  // guarded by mutex_
  std::atomic<bool> paused_hint_{false};
  std::atomic<std::size_t> parked_{0};
};

/// One actor shard: an environment replica group, its observation windows,
/// a local policy copy, an exploration RNG stream and the outbound SPSC
/// transition queue. Everything here is touched by exactly one worker
/// thread while the run is live; the learner reads it only at quiesce
/// points (bus gate or pause gate, both of which order the accesses).
struct ActorShard {
  ActorShard(std::size_t id_, const EnvironmentConfig& env_config,
             const DqnScheme::Config& scheme_config,
             const rl::DqnConfig& agent_config, const Resolved& r)
      : id(id_),
        replicas(r.replicas),
        pl(scheme_config.num_power_levels),
        state_dim(agent_config.state_dim),
        num_actions(agent_config.num_actions),
        env(env_config, r.replicas),
        windows(r.replicas, scheme_config.history, scheme_config.num_channels,
                scheme_config.num_power_levels),
        rng(agent_config.seed ^ (0x9E3779B97F4A7C15ULL * (id_ + 1))),
        net(make_local_net(agent_config)),
        queue(r.queue_capacity, agent_config.state_dim),
        pre(r.replicas, agent_config.state_dim),
        actions(r.replicas),
        channels(r.replicas),
        powers(r.replicas),
        weights_scratch(net.param_count()) {}

  void apply_snapshot() { net.copy_flat_from(weights_scratch); }

  /// One round: one ε-greedy decision + environment step + queued
  /// transition per replica. Returns false when `stop` fired while
  /// waiting for queue space.
  bool run_round(const std::atomic<bool>& stop) {
    net.forward_scratch(windows.states(), q, scratch_a, scratch_b);
    const auto& kernels = kern::ops();
    for (std::size_t r = 0; r < replicas; ++r) {
      std::size_t a =
          kernels.row_argmax(q.data() + r * num_actions, num_actions);
      // Same per-replica draw order as DqnAgent::act_batch: a bernoulli
      // per replica, an index only on explore.
      if (eps > 0.0 && rng.bernoulli(eps)) a = rng.index(num_actions);
      actions[r] = a;
      channels[r] = static_cast<int>(a / pl);
      powers[r] = a % pl;
      const auto row = windows.row(r);
      std::copy(row.begin(), row.end(), pre.data() + r * state_dim);
    }
    env.step(channels, powers);
    for (std::size_t r = 0; r < replicas; ++r) {
      windows.push(r, env.successes()[r] != 0, env.channels()[r], powers[r]);
      double* rec;
      while ((rec = queue.try_acquire()) == nullptr) {
        if (stop.load(std::memory_order_acquire)) return false;
        std::this_thread::yield();
      }
      rec[rl::kTransAction] = static_cast<double>(actions[r]);
      rec[rl::kTransReward] = env.rewards()[r];
      rec[rl::kTransDone] = 0.0;  // continuing competition
      std::copy(pre.data() + r * state_dim, pre.data() + (r + 1) * state_dim,
                rec + rl::kTransState);
      const auto next_row = windows.row(r);
      std::copy(next_row.begin(), next_row.end(),
                rec + rl::kTransState + state_dim);
      queue.commit();
    }
    return true;
  }

  const std::size_t id;
  const std::size_t replicas;
  const std::size_t pl;
  const std::size_t state_dim;
  const std::size_t num_actions;
  VectorEnv env;
  ObservationWindows windows;
  Rng rng;
  rl::Mlp net;
  rl::TransitionQueue queue;
  double eps = 0.0;
  std::uint64_t last_seen = 0;  // bus version currently applied
  // Per-round scratch (worker-thread only).
  rl::Matrix q, scratch_a, scratch_b;
  rl::Matrix pre;  // [replicas × state_dim] pre-step observations
  std::vector<std::size_t> actions;
  std::vector<int> channels;
  std::vector<std::size_t> powers;
  std::vector<double> weights_scratch;
};

class ParallelRun {
 public:
  ParallelRun(DqnScheme& scheme, const EnvironmentConfig& env_config,
              const TrainerConfig& config, const Resolved& r)
      : scheme_(scheme),
        agent_(scheme.agent()),
        config_(config),
        r_(r),
        bus_(agent_.param_count()),
        replay_(r.actors, r.replay_per_actor, agent_.config().state_dim),
        flat_(agent_.param_count()),
        learner_rng_(agent_.config().seed ^ 0xD1B54A32D192ED03ULL) {
    shards_.reserve(r_.actors);
    for (std::size_t s = 0; s < r_.actors; ++s) {
      EnvironmentConfig shard_env = env_config;
      // Replica ids stay globally contiguous: shard s's replica i runs
      // with seed env_config.seed + s·replicas + i.
      shard_env.seed = env_config.seed + s * r_.replicas;
      shards_.push_back(std::make_unique<ActorShard>(
          s, shard_env, scheme.config(), agent_.config(), r_));
    }
  }

  TrainingStats run() {
    const auto t0 = std::chrono::steady_clock::now();
    scheme_.set_training(true);

    if (should_resume_checkpoint(config_)) load_checkpoint();
    next_step_at_ =
        (stats_.slots_trained / r_.train_every + 1) * r_.train_every;
    // Restore the bus to the snapshot actors held at the cut. Deterministic
    // mid-epoch resumes gate on it; throughput resumes start from it.
    if (published_version_ > 0) {
      bus_.publish(flat_, eps_pub_, published_version_);
    }

    if (!stats_.early_stopped && stats_.slots_trained < config_.max_slots) {
      try {
        if (r_.deterministic) {
          run_deterministic();
        } else {
          run_throughput();
        }
      } catch (...) {
        shutdown_workers();
        throw;
      }
    }
    shutdown_workers();
    if (error_) std::rethrow_exception(error_);

    // Throughput mode: workers may have stopped mid-round with committed
    // transitions still queued — consume what budget allows so they are
    // not lost. (Deterministic completion leaves the queues empty.)
    if (!r_.deterministic) {
      drain_queues(std::numeric_limits<std::size_t>::max());
    }

    if (config_.checkpoint) save_checkpoint();
    stats_.final_mean_reward =
        window_.empty() ? 0.0
                        : window_sum_ / static_cast<double>(window_.size());
    stats_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return stats_;
  }

 private:
  void run_deterministic() {
    CTJ_CHECK_MSG(
        config_.max_slots % r_.total_replicas() == 0,
        "deterministic mode needs max_slots divisible by actors × replicas");
    const std::size_t total_rounds = config_.max_slots / r_.total_replicas();
    spawn_workers();
    const std::size_t every =
        config_.checkpoint ? config_.checkpoint->every_slots : 0;
    std::size_t next_save = next_checkpoint_after(stats_.slots_trained, every);
    for (std::uint64_t k = start_round_; k < total_rounds; ++k) {
      if (k % r_.sync == 0) {
        if (config_.checkpoint && k > start_round_ &&
            stats_.slots_trained >= next_save &&
            stats_.slots_trained < config_.max_slots) {
          // Every worker is (or is about to be) parked at this epoch's
          // gate with all prior rounds consumed, so the queues are empty
          // and all shard state is quiescent — a clean cut.
          if (bus_.wait_waiters(num_workers_)) {
            save_checkpoint();
            next_save = next_checkpoint_after(stats_.slots_trained, every);
          }
        }
        publish(k / r_.sync + 1);
      }
      for (std::size_t a = 0; a < r_.actors; ++a) {
        for (std::size_t i = 0; i < r_.replicas; ++i) {
          const double* rec = wait_front(a);
          if (rec == nullptr) return;  // stop / worker failure
          consume_slot(a, rec);
          shards_[a]->queue.pop();
          if (stats_.early_stopped) {
            initiate_stop();
            return;
          }
        }
      }
    }
  }

  void run_throughput() {
    publish(published_version_ + 1);
    spawn_workers();
    const std::size_t every =
        config_.checkpoint ? config_.checkpoint->every_slots : 0;
    std::size_t next_save = next_checkpoint_after(stats_.slots_trained, every);
    const std::size_t publish_every = r_.sync * r_.total_replicas();
    std::size_t next_publish = stats_.slots_trained + publish_every;
    while (stats_.slots_trained < config_.max_slots &&
           !stats_.early_stopped) {
      if (stop_.load(std::memory_order_acquire)) return;  // worker failure
      const bool any = drain_queues(r_.replicas);
      if (stats_.early_stopped || stats_.slots_trained >= config_.max_slots) {
        break;
      }
      if (stats_.slots_trained >= next_publish) {
        publish(published_version_ + 1);
        next_publish = stats_.slots_trained + publish_every;
      }
      if (config_.checkpoint && stats_.slots_trained >= next_save &&
          stats_.slots_trained < config_.max_slots) {
        if (quiesce_checkpoint()) {
          next_save = next_checkpoint_after(stats_.slots_trained, every);
        }
      }
      if (!any) std::this_thread::yield();
    }
    initiate_stop();
  }

  /// Throughput-mode checkpoint: park every worker at a round boundary,
  /// drain all queues dry, cut, resume. Returns false when the run ended
  /// (stop/early-stop/budget) before the cut could be taken.
  bool quiesce_checkpoint() {
    gate_.request_pause();
    while (!gate_.all_parked(num_workers_)) {
      if (stop_.load(std::memory_order_acquire) || stats_.early_stopped ||
          stats_.slots_trained >= config_.max_slots) {
        gate_.resume();
        return false;
      }
      // Keep draining: a worker blocked on a full queue cannot reach the
      // gate until the learner makes space.
      drain_queues(r_.replicas);
      std::this_thread::yield();
    }
    for (;;) {
      if (stats_.early_stopped || stats_.slots_trained >= config_.max_slots) {
        gate_.resume();
        return false;
      }
      if (!drain_queues(std::numeric_limits<std::size_t>::max())) break;
    }
    save_checkpoint();
    gate_.resume();
    return true;
  }

  /// Consume up to `budget` queued transitions per shard. Returns whether
  /// anything was consumed.
  bool drain_queues(std::size_t budget) {
    bool any = false;
    for (std::size_t a = 0; a < r_.actors; ++a) {
      for (std::size_t i = 0; i < budget; ++i) {
        if (stats_.slots_trained >= config_.max_slots ||
            stats_.early_stopped) {
          return any;
        }
        const double* rec = shards_[a]->queue.try_front();
        if (rec == nullptr) break;
        consume_slot(a, rec);
        shards_[a]->queue.pop();
        any = true;
      }
    }
    return any;
  }

  /// Learner bookkeeping for one consumed transition: replay append,
  /// reward window, on_slot, early-stop test, and the gradient step due
  /// at fixed consumed-slot counts.
  void consume_slot(std::size_t shard, const double* rec) {
    replay_.append(shard, rec);
    const double reward = rec[rl::kTransReward];
    window_.push_back(reward);
    window_sum_ += reward;
    if (window_.size() > config_.reward_window) {
      window_sum_ -= window_.front();
      window_.pop_front();
    }
    ++stats_.slots_trained;
    if (config_.on_slot) config_.on_slot(stats_.slots_trained - 1, reward);
    if (config_.target_mean_reward &&
        window_.size() == config_.reward_window &&
        window_sum_ / static_cast<double>(window_.size()) >=
            *config_.target_mean_reward) {
      stats_.early_stopped = true;
    }
    if (stats_.slots_trained >= next_step_at_) {
      if (replay_.size() >= r_.min_replay) {
        replay_.sample_into(r_.batch, learner_rng_, batch_states_,
                            batch_next_, batch_actions_, batch_rewards_,
                            batch_dones_);
        agent_.train_on_batch(batch_states_, batch_next_, batch_actions_,
                              batch_rewards_, batch_dones_);
      }
      next_step_at_ += r_.train_every;
    }
  }

  void publish(std::uint64_t version) {
    agent_.online_network().copy_flat_to(flat_);
    eps_pub_ = rl::DqnAgent::epsilon_for(agent_.config(),
                                         stats_.slots_trained);
    bus_.publish(flat_, eps_pub_, version);
    published_version_ = version;
  }

  /// Block until shard `a`'s queue has a record (returns it) or the run
  /// stopped (nullptr).
  const double* wait_front(std::size_t a) {
    for (;;) {
      if (const double* rec = shards_[a]->queue.try_front()) return rec;
      if (stop_.load(std::memory_order_acquire)) return nullptr;
      std::this_thread::yield();
    }
  }

  void spawn_workers() {
    num_workers_ = std::min(r_.threads, r_.actors);
    workers_.reserve(num_workers_);
    for (std::size_t w = 0; w < num_workers_; ++w) {
      const std::size_t lo = w * r_.actors / num_workers_;
      const std::size_t hi = (w + 1) * r_.actors / num_workers_;
      workers_.emplace_back([this, lo, hi] {
        try {
          worker_main(lo, hi);
        } catch (...) {
          fail(std::current_exception());
        }
      });
    }
  }

  void worker_main(std::size_t lo, std::size_t hi) {
    const std::size_t total_rounds =
        config_.max_slots / r_.total_replicas();  // deterministic mode only
    for (std::uint64_t k = start_round_;; ++k) {
      if (r_.deterministic && k >= total_rounds) return;
      for (std::size_t s = lo; s < hi; ++s) {
        ActorShard& shard = *shards_[s];
        if (r_.deterministic) {
          // Epoch gate, plus the first round after a mid-epoch resume
          // (where k/sync + 1 is the stored snapshot, republished before
          // the workers were spawned). At a gate for round k the bus
          // version is exactly k/sync + 1 (see header), so the snapshot
          // applied here is the same whatever the thread count.
          if (k % r_.sync == 0 || k == start_round_) {
            if (!bus_.wait_version(k / r_.sync + 1, shard.weights_scratch,
                                   shard.eps)) {
              return;
            }
            shard.apply_snapshot();
          }
        } else {
          if (!gate_.park_if_paused(stop_)) return;
          if (bus_.fetch_if_newer(shard.last_seen, shard.weights_scratch,
                                  shard.eps)) {
            shard.apply_snapshot();
          }
        }
        if (!shard.run_round(stop_)) return;
      }
    }
  }

  void fail(std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::move(error);
    }
    initiate_stop();
  }

  void initiate_stop() {
    stop_.store(true, std::memory_order_release);
    bus_.stop();
    gate_.release_all();
  }

  void shutdown_workers() {
    initiate_stop();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }

  void save_checkpoint() {
    io::ContainerWriter out;
    add_meta_chunk(out, "trainer");
    TrainProgress progress;
    progress.mode = 2;
    progress.replicas = r_.total_replicas();
    progress.slots_trained = stats_.slots_trained;
    progress.early_stopped = stats_.early_stopped;
    progress.window_sum = window_sum_;
    progress.window = window_;
    write_train_progress(out, progress, config_);
    write_jammer_config(out, shards_.front()->env.env(0).config().jammer);
    scheme_.save_state(out);

    io::ByteWriter pw;
    pw.u64(r_.actors);
    pw.u64(r_.replicas);
    pw.u8(r_.deterministic ? 1 : 0);
    pw.u64(r_.sync);
    pw.u64(r_.batch);
    pw.u64(r_.train_every);
    pw.u64(r_.replay_per_actor);
    // The snapshot actors currently hold (the last publish). The agent's
    // online weights have trained past it, so a resume must republish this
    // exact snapshot, not a fresh flatten, for actors to match.
    pw.u64(published_version_);
    pw.f64(eps_pub_);
    for (double v : flat_) pw.f64(v);
    pw.str(learner_rng_.serialize_state());
    out.add_chunk(io::tags::kParallelTrain, pw.take());

    io::ByteWriter rw;
    replay_.save_state(rw);
    out.add_chunk(io::tags::kShardReplay, rw.take());

    io::ByteWriter sw;
    sw.u64(r_.actors);
    for (const auto& shard : shards_) {
      shard->env.save_state(sw);
      shard->windows.save_state(sw);
      sw.str(shard->rng.serialize_state());
    }
    out.add_chunk(io::tags::kActorShards, sw.take());
    out.write_file(config_.checkpoint->path);
  }

  void load_checkpoint() {
    const io::ContainerReader in =
        io::ContainerReader::from_file(config_.checkpoint->path);
    TrainProgress progress =
        read_train_progress(in, /*mode=*/2, r_.total_replicas(), config_);
    check_jammer_config(in, shards_.front()->env.env(0).config().jammer);
    stats_.slots_trained =
        static_cast<std::size_t>(progress.slots_trained);
    stats_.early_stopped = progress.early_stopped;
    window_ = std::move(progress.window);
    window_sum_ = progress.window_sum;
    // An early-stopped checkpoint is the final cut of a finished run:
    // nothing to rebuild, the resumed call reports stats and returns.
    if (stats_.early_stopped) return;

    const auto mismatch = [](const std::string& what) -> io::IoError {
      return io::IoError(io::ErrorKind::kStateMismatch,
                         "checkpoint parallel-trainer state differs in " +
                             what);
    };
    io::ByteReader pr(in.chunk(io::tags::kParallelTrain));
    if (pr.u64() != r_.actors) throw mismatch("actor count");
    if (pr.u64() != r_.replicas) throw mismatch("replicas per actor");
    if ((pr.u8() != 0) != r_.deterministic) throw mismatch("schedule mode");
    if (pr.u64() != r_.sync) throw mismatch("sync_every_rounds");
    if (pr.u64() != r_.batch) throw mismatch("learner batch");
    if (pr.u64() != r_.train_every) throw mismatch("train_every_slots");
    if (pr.u64() != r_.replay_per_actor) throw mismatch("replay capacity");
    published_version_ = pr.u64();
    eps_pub_ = pr.f64();
    for (double& v : flat_) v = pr.f64();
    const std::string learner_rng_text = pr.str();
    pr.expect_end();

    scheme_.load_state(in);

    io::ByteReader rr(in.chunk(io::tags::kShardReplay));
    replay_.load_state(rr);
    rr.expect_end();

    io::ByteReader sr(in.chunk(io::tags::kActorShards));
    if (sr.u64() != r_.actors) throw mismatch("actor count");
    for (auto& shard : shards_) {
      shard->env.load_state(sr);
      shard->windows.load_state(sr);
      const std::string rng_text = sr.str();
      try {
        shard->rng.restore_state(rng_text);
      } catch (const CheckFailure&) {
        throw io::IoError(io::ErrorKind::kBadPayload, "actor RNG state");
      }
    }
    sr.expect_end();

    try {
      learner_rng_.restore_state(learner_rng_text);
    } catch (const CheckFailure&) {
      throw io::IoError(io::ErrorKind::kBadPayload, "learner RNG state");
    }

    if (r_.deterministic) {
      // Deterministic cuts happen only at round boundaries (periodic cuts
      // at epoch gates, the final cut at the budget end), so the consumed
      // slot count identifies the resume round exactly.
      if (stats_.slots_trained % r_.total_replicas() != 0) {
        throw io::IoError(io::ErrorKind::kBadPayload,
                          "deterministic checkpoint not at a round boundary");
      }
      start_round_ = stats_.slots_trained / r_.total_replicas();
      // At an epoch-gate cut the epoch's publish has not happened yet
      // (stored version = start/sync, republished fresh at the gate);
      // mid-epoch (budget extension from a final cut), workers re-apply
      // the stored snapshot at version start/sync + 1.
      const std::uint64_t expected =
          start_round_ / r_.sync + (start_round_ % r_.sync == 0 ? 0 : 1);
      if (published_version_ != expected) {
        throw io::IoError(
            io::ErrorKind::kBadPayload,
            "checkpoint publish version inconsistent with slot count");
      }
    }
  }

  DqnScheme& scheme_;
  rl::DqnAgent& agent_;
  const TrainerConfig& config_;
  const Resolved r_;
  rl::PolicyBus bus_;
  rl::ShardedReplay replay_;
  std::vector<double> flat_;  // publish scratch
  std::vector<std::unique_ptr<ActorShard>> shards_;
  std::vector<std::thread> workers_;
  std::size_t num_workers_ = 0;
  PauseGate gate_;
  std::atomic<bool> stop_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;  // first worker failure

  TrainingStats stats_;
  std::deque<double> window_;
  double window_sum_ = 0.0;
  Rng learner_rng_;
  std::uint64_t published_version_ = 0;
  double eps_pub_ = 0.0;  // ε of the last published snapshot
  std::size_t next_step_at_ = 0;
  std::size_t start_round_ = 0;
  // Learner minibatch scratch.
  rl::Matrix batch_states_, batch_next_;
  std::vector<std::size_t> batch_actions_;
  std::vector<double> batch_rewards_;
  std::vector<std::uint8_t> batch_dones_;
};

}  // namespace

TrainingStats train_parallel(DqnScheme& scheme,
                             const EnvironmentConfig& env_config,
                             const TrainerConfig& config,
                             const ParallelTrainerConfig& pconfig) {
  CTJ_CHECK(config.max_slots > 0);
  CTJ_CHECK(config.reward_window > 0);
  const Resolved r = resolve(scheme.agent().config(), pconfig);
  ParallelRun run(scheme, env_config, config, r);
  return run.run();
}

}  // namespace ctj::core
