// The evaluation metrics of Table I.
//
//  ST — success rate of transmission: successful slots / total slots.
//  AH — adoption rate of FH: slots that hopped / total slots.
//  SH — success rate of FH: successful slots among the hopping slots.
//  AP — adoption rate of PC: slots that raised power above the minimum
//       level / total slots (the action space always carries a power, so
//       "adopting power control" means spending more than the base power).
//  SP — success rate of PC: successful slots among the PC slots.
#pragma once

#include <cstddef>

#include "common/stats.hpp"
#include "core/environment.hpp"

namespace ctj::core {

struct MetricsReport {
  double st = 0.0;
  double ah = 0.0;
  double sh = 0.0;
  double ap = 0.0;
  double sp = 0.0;
  double mean_reward = 0.0;
  std::size_t slots = 0;
};

class MetricsAccumulator {
 public:
  /// Record one slot: its outcome and whether FH / PC were adopted.
  void record(bool success, bool adopted_fh, bool adopted_pc, double reward);

  /// Convenience overload for environment steps; PC adoption is derived
  /// from the power index (> 0 means above the minimum level).
  void record(const EnvStep& step, std::size_t power_index);

  MetricsReport report() const;
  std::size_t slots() const { return total_.trials(); }
  void reset();

 private:
  RateCounter total_;      // hit == success → ST
  RateCounter fh_;         // trials: FH slots; hit: successful FH slot
  RateCounter pc_;         // trials: PC slots; hit: successful PC slot
  RateCounter fh_adopted_; // over all slots
  RateCounter pc_adopted_;
  RunningStats reward_;
};

}  // namespace ctj::core
