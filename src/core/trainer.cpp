#include "core/trainer.hpp"

#include <chrono>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "core/vector_env.hpp"

namespace ctj::core {

TrainingStats train(DqnScheme& scheme, CompetitionEnvironment& env,
                    const TrainerConfig& config) {
  CTJ_CHECK(config.max_slots > 0);
  CTJ_CHECK(config.reward_window > 0);
  const auto t0 = std::chrono::steady_clock::now();

  scheme.set_training(true);
  TrainingStats stats;
  std::deque<double> window;
  double window_sum = 0.0;

  for (std::size_t slot = 0; slot < config.max_slots; ++slot) {
    const SchemeDecision decision = scheme.decide();
    const EnvStep step = env.step(decision.channel, decision.power_index);

    SlotFeedback feedback;
    feedback.success = step.success;
    feedback.jammed = step.outcome != SlotOutcome::kClear;
    feedback.channel = step.channel;
    feedback.power_index = decision.power_index;
    feedback.reward = step.reward;
    scheme.feedback(feedback);

    window.push_back(step.reward);
    window_sum += step.reward;
    if (window.size() > config.reward_window) {
      window_sum -= window.front();
      window.pop_front();
    }
    stats.slots_trained = slot + 1;
    if (config.target_mean_reward && window.size() == config.reward_window &&
        window_sum / static_cast<double>(window.size()) >=
            *config.target_mean_reward) {
      stats.early_stopped = true;
      break;
    }
  }

  stats.final_mean_reward =
      window.empty() ? 0.0 : window_sum / static_cast<double>(window.size());
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

TrainingStats train_batched(DqnScheme& scheme,
                            const EnvironmentConfig& env_config,
                            const TrainerConfig& config,
                            std::size_t replicas) {
  CTJ_CHECK(config.max_slots > 0);
  CTJ_CHECK(config.reward_window > 0);
  CTJ_CHECK(replicas > 0);
  const auto t0 = std::chrono::steady_clock::now();

  scheme.set_training(true);
  rl::DqnAgent& agent = scheme.agent();
  const DqnScheme::Config& sc = scheme.config();
  const std::size_t pl = sc.num_power_levels;

  VectorEnv venv(env_config, replicas);
  ObservationWindows windows(replicas, sc.history, sc.num_channels, pl);
  std::vector<std::size_t> actions(replicas);
  std::vector<int> channels(replicas);
  std::vector<std::size_t> powers(replicas);
  std::vector<std::vector<double>> pre_states(replicas);

  TrainingStats stats;
  std::deque<double> window;
  double window_sum = 0.0;

  while (stats.slots_trained < config.max_slots && !stats.early_stopped) {
    // One batched ε-greedy forward decides for every replica. For a single
    // replica the RNG draw order (bernoulli, then index only on explore)
    // matches DqnAgent::act exactly, so train() is reproduced slot for slot.
    agent.act_batch(windows.states(), actions);
    for (std::size_t r = 0; r < replicas; ++r) {
      channels[r] = static_cast<int>(actions[r] / pl);
      powers[r] = actions[r] % pl;
      const auto row = windows.row(r);
      pre_states[r].assign(row.begin(), row.end());
    }
    venv.step(channels, powers);
    for (std::size_t r = 0; r < replicas; ++r) {
      const bool success = venv.successes()[r] != 0;
      windows.push(r, success, venv.channels()[r], powers[r]);

      rl::Transition transition;
      transition.state = std::move(pre_states[r]);
      transition.action = actions[r];
      transition.reward = venv.rewards()[r];
      const auto next_row = windows.row(r);
      transition.next_state.assign(next_row.begin(), next_row.end());
      transition.done = false;  // continuing competition
      agent.observe(std::move(transition));

      window.push_back(venv.rewards()[r]);
      window_sum += venv.rewards()[r];
      if (window.size() > config.reward_window) {
        window_sum -= window.front();
        window.pop_front();
      }
      ++stats.slots_trained;
      if (config.target_mean_reward && window.size() == config.reward_window &&
          window_sum / static_cast<double>(window.size()) >=
              *config.target_mean_reward) {
        stats.early_stopped = true;
        break;
      }
      if (stats.slots_trained >= config.max_slots) break;
    }
  }

  stats.final_mean_reward =
      window.empty() ? 0.0 : window_sum / static_cast<double>(window.size());
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace ctj::core
