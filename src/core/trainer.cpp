#include "core/trainer.hpp"

#include <chrono>
#include <deque>
#include <filesystem>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/checkpoint.hpp"
#include "core/vector_env.hpp"

namespace ctj::core {

// TrainProgress (the TRAINPRG chunk) and the resume/cadence helpers live in
// core/checkpoint.{hpp,cpp}, shared with train_parallel().

TrainingStats train(DqnScheme& scheme, CompetitionEnvironment& env,
                    const TrainerConfig& config) {
  CTJ_CHECK(config.max_slots > 0);
  CTJ_CHECK(config.reward_window > 0);
  const auto t0 = std::chrono::steady_clock::now();

  scheme.set_training(true);
  TrainingStats stats;
  std::deque<double> window;
  double window_sum = 0.0;
  std::size_t start_slot = 0;
  bool resumed_early_stop = false;

  if (should_resume_checkpoint(config)) {
    const io::ContainerReader in =
        io::ContainerReader::from_file(config.checkpoint->path);
    TrainProgress progress = read_train_progress(in, /*mode=*/0, /*replicas=*/1, config);
    check_jammer_config(in, env.config().jammer);
    scheme.load_state(in);
    io::ByteReader env_in(in.chunk(io::tags::kEnvState));
    env.load_state(env_in);
    env_in.expect_end();
    start_slot = static_cast<std::size_t>(progress.slots_trained);
    stats.slots_trained = start_slot;
    window = std::move(progress.window);
    window_sum = progress.window_sum;
    resumed_early_stop = progress.early_stopped;
    stats.early_stopped = resumed_early_stop;
  }

  const auto save = [&]() {
    io::ContainerWriter out;
    add_meta_chunk(out, "trainer");
    TrainProgress progress;
    progress.mode = 0;
    progress.replicas = 1;
    progress.slots_trained = stats.slots_trained;
    progress.early_stopped = stats.early_stopped;
    progress.window_sum = window_sum;
    progress.window = window;
    write_train_progress(out, progress, config);
    write_jammer_config(out, env.config().jammer);
    scheme.save_state(out);
    io::ByteWriter env_out;
    env.save_state(env_out);
    out.add_chunk(io::tags::kEnvState, env_out.take());
    out.write_file(config.checkpoint->path);
  };

  const std::size_t every =
      config.checkpoint ? config.checkpoint->every_slots : 0;
  std::size_t next_save = next_checkpoint_after(start_slot, every);

  if (!resumed_early_stop) {
    for (std::size_t slot = start_slot; slot < config.max_slots; ++slot) {
      const SchemeDecision decision = scheme.decide();
      const EnvStep step = env.step(decision.channel, decision.power_index);

      SlotFeedback feedback;
      feedback.success = step.success;
      feedback.jammed = step.outcome != SlotOutcome::kClear;
      feedback.channel = step.channel;
      feedback.power_index = decision.power_index;
      feedback.reward = step.reward;
      scheme.feedback(feedback);

      window.push_back(step.reward);
      window_sum += step.reward;
      if (window.size() > config.reward_window) {
        window_sum -= window.front();
        window.pop_front();
      }
      stats.slots_trained = slot + 1;
      if (config.on_slot) config.on_slot(slot, step.reward);
      if (config.target_mean_reward && window.size() == config.reward_window &&
          window_sum / static_cast<double>(window.size()) >=
              *config.target_mean_reward) {
        stats.early_stopped = true;
        break;
      }
      if (config.checkpoint && stats.slots_trained >= next_save &&
          stats.slots_trained < config.max_slots) {
        save();
        next_save = next_checkpoint_after(stats.slots_trained, every);
      }
    }
  }

  if (config.checkpoint) save();

  stats.final_mean_reward =
      window.empty() ? 0.0 : window_sum / static_cast<double>(window.size());
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

TrainingStats train_batched(DqnScheme& scheme,
                            const EnvironmentConfig& env_config,
                            const TrainerConfig& config,
                            std::size_t replicas) {
  CTJ_CHECK(config.max_slots > 0);
  CTJ_CHECK(config.reward_window > 0);
  CTJ_CHECK(replicas > 0);
  // Checkpoints cut at outer-loop boundaries (all replicas between
  // transitions); a budget that ends mid-iteration would save a state no
  // uninterrupted run passes through, breaking bit-identical resume.
  CTJ_CHECK_MSG(!config.checkpoint || config.max_slots % replicas == 0,
                "batched checkpointing needs max_slots divisible by replicas");
  const auto t0 = std::chrono::steady_clock::now();

  scheme.set_training(true);
  rl::DqnAgent& agent = scheme.agent();
  const DqnScheme::Config& sc = scheme.config();
  const std::size_t pl = sc.num_power_levels;

  VectorEnv venv(env_config, replicas);
  ObservationWindows windows(replicas, sc.history, sc.num_channels, pl);
  std::vector<std::size_t> actions(replicas);
  std::vector<int> channels(replicas);
  std::vector<std::size_t> powers(replicas);
  std::vector<std::vector<double>> pre_states(replicas);

  TrainingStats stats;
  std::deque<double> window;
  double window_sum = 0.0;

  if (should_resume_checkpoint(config)) {
    const io::ContainerReader in =
        io::ContainerReader::from_file(config.checkpoint->path);
    const TrainProgress progress =
        read_train_progress(in, /*mode=*/1, replicas, config);
    check_jammer_config(in, venv.env(0).config().jammer);
    scheme.load_state(in);
    io::ByteReader env_in(in.chunk(io::tags::kEnvState));
    venv.load_state(env_in);
    env_in.expect_end();
    io::ByteReader win_in(in.chunk(io::tags::kObsWindows));
    windows.load_state(win_in);
    win_in.expect_end();
    stats.slots_trained = static_cast<std::size_t>(progress.slots_trained);
    stats.early_stopped = progress.early_stopped;
    window = progress.window;
    window_sum = progress.window_sum;
  }

  const auto save = [&]() {
    io::ContainerWriter out;
    add_meta_chunk(out, "trainer");
    TrainProgress progress;
    progress.mode = 1;
    progress.replicas = replicas;
    progress.slots_trained = stats.slots_trained;
    progress.early_stopped = stats.early_stopped;
    progress.window_sum = window_sum;
    progress.window = window;
    write_train_progress(out, progress, config);
    write_jammer_config(out, venv.env(0).config().jammer);
    scheme.save_state(out);
    io::ByteWriter env_out;
    venv.save_state(env_out);
    out.add_chunk(io::tags::kEnvState, env_out.take());
    io::ByteWriter win_out;
    windows.save_state(win_out);
    out.add_chunk(io::tags::kObsWindows, win_out.take());
    out.write_file(config.checkpoint->path);
  };

  const std::size_t every =
      config.checkpoint ? config.checkpoint->every_slots : 0;
  std::size_t next_save = next_checkpoint_after(stats.slots_trained, every);

  while (stats.slots_trained < config.max_slots && !stats.early_stopped) {
    // One batched ε-greedy forward decides for every replica. For a single
    // replica the RNG draw order (bernoulli, then index only on explore)
    // matches DqnAgent::act exactly, so train() is reproduced slot for slot.
    agent.act_batch(windows.states(), actions);
    for (std::size_t r = 0; r < replicas; ++r) {
      channels[r] = static_cast<int>(actions[r] / pl);
      powers[r] = actions[r] % pl;
      const auto row = windows.row(r);
      pre_states[r].assign(row.begin(), row.end());
    }
    venv.step(channels, powers);
    for (std::size_t r = 0; r < replicas; ++r) {
      const bool success = venv.successes()[r] != 0;
      windows.push(r, success, venv.channels()[r], powers[r]);

      rl::Transition transition;
      transition.state = std::move(pre_states[r]);
      transition.action = actions[r];
      transition.reward = venv.rewards()[r];
      const auto next_row = windows.row(r);
      transition.next_state.assign(next_row.begin(), next_row.end());
      transition.done = false;  // continuing competition
      agent.observe(std::move(transition));

      window.push_back(venv.rewards()[r]);
      window_sum += venv.rewards()[r];
      if (window.size() > config.reward_window) {
        window_sum -= window.front();
        window.pop_front();
      }
      ++stats.slots_trained;
      if (config.on_slot) {
        config.on_slot(stats.slots_trained - 1, venv.rewards()[r]);
      }
      if (config.target_mean_reward && window.size() == config.reward_window &&
          window_sum / static_cast<double>(window.size()) >=
              *config.target_mean_reward) {
        stats.early_stopped = true;
        break;
      }
      if (stats.slots_trained >= config.max_slots) break;
    }
    // Checkpoints only at outer-loop boundaries: here every replica is
    // between transitions, so the saved state is a clean cut for all of
    // them. An early-stopped cut is saved too (flagged, so a resume does
    // not train past the stop).
    if (config.checkpoint && !stats.early_stopped &&
        stats.slots_trained >= next_save &&
        stats.slots_trained < config.max_slots) {
      save();
      next_save = next_checkpoint_after(stats.slots_trained, every);
    }
  }

  if (config.checkpoint) save();

  stats.final_mean_reward =
      window.empty() ? 0.0 : window_sum / static_cast<double>(window.size());
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace ctj::core
