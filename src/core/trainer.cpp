#include "core/trainer.hpp"

#include <chrono>
#include <deque>

#include "common/check.hpp"

namespace ctj::core {

TrainingStats train(DqnScheme& scheme, CompetitionEnvironment& env,
                    const TrainerConfig& config) {
  CTJ_CHECK(config.max_slots > 0);
  CTJ_CHECK(config.reward_window > 0);
  const auto t0 = std::chrono::steady_clock::now();

  scheme.set_training(true);
  TrainingStats stats;
  std::deque<double> window;
  double window_sum = 0.0;

  for (std::size_t slot = 0; slot < config.max_slots; ++slot) {
    const SchemeDecision decision = scheme.decide();
    const EnvStep step = env.step(decision.channel, decision.power_index);

    SlotFeedback feedback;
    feedback.success = step.success;
    feedback.jammed = step.outcome != SlotOutcome::kClear;
    feedback.channel = step.channel;
    feedback.power_index = decision.power_index;
    feedback.reward = step.reward;
    scheme.feedback(feedback);

    window.push_back(step.reward);
    window_sum += step.reward;
    if (window.size() > config.reward_window) {
      window_sum -= window.front();
      window.pop_front();
    }
    stats.slots_trained = slot + 1;
    if (config.target_mean_reward && window.size() == config.reward_window &&
        window_sum / static_cast<double>(window.size()) >=
            *config.target_mean_reward) {
      stats.early_stopped = true;
      break;
    }
  }

  stats.final_mean_reward =
      window.empty() ? 0.0 : window_sum / static_cast<double>(window.size());
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace ctj::core
