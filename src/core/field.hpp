// Field-experiment simulator (Sec. IV.D): the full stack — star ZigBee
// network with its timing model, the behavioural sweeping jammer with its own
// slot clock, a jamming-signal type from the channel model, and any
// anti-jamming scheme at the hub.
//
// This reproduces Figs. 2(b), 9, 10 and 11: goodput in packets per slot,
// slot utilization, scheme comparisons, and the effect of mismatched
// jammer/victim slot durations.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/metrics.hpp"
#include "core/scheme.hpp"
#include "jammer/registry.hpp"
#include "net/star_network.hpp"

namespace ctj::core {

struct FieldConfig {
  net::StarNetworkConfig network;
  /// Adversary spec resolved through the jammer registry; any registered
  /// archetype runs the full stack (the field always needs a behavioural
  /// jammer, so the "kernel" sentinel is rejected at construction).
  jammer::JammerSpec jammer;
  bool jammer_enabled = true;
  /// The jammer's own slot duration; mismatches with the victim's slot
  /// duration produce the degradation of Fig. 11(b).
  double jammer_slot_s = 3.0;
  channel::JammingSignalType signal_type =
      channel::JammingSignalType::kEmuBee;
  double jammer_distance_m = 8.0;
  /// Victim transmit power levels (abstract, mapped to dBm via
  /// net::tx_level_to_dbm); defaults to the paper's [6, 15].
  std::vector<double> tx_levels;
  double loss_jam = 100.0;
  double loss_hop = 50.0;
  std::uint64_t seed = 31;

  static FieldConfig defaults();
};

struct FieldResult {
  double goodput_packets_per_slot = 0.0;
  double utilization = 0.0;
  MetricsReport metrics;
  double mean_negotiation_s = 0.0;
  std::size_t slots = 0;
};

class FieldExperiment {
 public:
  FieldExperiment(FieldConfig config, AntiJammingScheme& scheme);

  /// Run `slots` victim slots and aggregate.
  FieldResult run(std::size_t slots);

  /// Run a single slot (exposed for tests).
  net::SlotStats run_slot();

  const FieldConfig& config() const { return config_; }
  net::StarNetwork& network() { return network_; }
  jammer::Jammer& jammer() { return *jammer_; }

 private:
  /// Advance the jammer clock across one victim slot; returns the fraction
  /// of the slot during which the jammer transmitted on `victim_channel`
  /// and the power it used.
  std::pair<double, double> advance_jammer(int victim_channel);

  FieldConfig config_;
  net::StarNetwork network_;
  std::unique_ptr<jammer::Jammer> jammer_;
  MetricsAccumulator metrics_;
  AntiJammingScheme& scheme_;
  int previous_channel_ = 0;
  double now_s_ = 0.0;
  double jammer_slot_end_s_ = 0.0;
  jammer::JammerSlotReport current_report_;
  bool report_valid_ = false;
  RunningStats negotiation_;
};

}  // namespace ctj::core
