// Checkpoint assembly: the glue between the CTJS container (src/io) and the
// training stack (DqnScheme + environment + trainer loop).
//
// A model checkpoint written by save_scheme() or by the trainer holds the
// scheme Config (SCHMCFG), its dynamic state (SCHMST), the whole agent
// (networks, optimizer, replay ring, RNG, counters) and a META chunk with
// advisory provenance keys. Trainer checkpoints add ENVSTATE/OBSWIN/TRAINPRG
// so a killed run resumes bit-identically (see trainer.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/rl_fh.hpp"
#include "core/trainer.hpp"
#include "io/container.hpp"
#include "jammer/registry.hpp"

namespace ctj::core {

/// Append the standard META chunk: `format=ctjs`, `type=<type>` and
/// `simd_level=<active kernel level>`. simd_level is advisory only — a
/// checkpoint written under one SIMD level loads under any (all state is
/// plain f64; the kernels only change how fast it is computed).
void add_meta_chunk(io::ContainerWriter& out, const std::string& type);

/// Write a standalone model checkpoint (META + full scheme state) to `path`
/// atomically (temp file + rename).
void save_scheme(const DqnScheme& scheme, const std::string& path);

/// Restore a scheme from a checkpoint written by save_scheme() or the
/// trainer. The stored Config must equal the scheme's (io::IoError
/// kStateMismatch otherwise); on any failure the scheme is unchanged.
void load_scheme(DqnScheme& scheme, const std::string& path);

/// Decode the DqnScheme::Config stored in a checkpoint, so a matching
/// scheme can be constructed from the file alone (`ctj_cli eval --model`).
DqnScheme::Config read_scheme_config(const std::string& path);

/// Load only the online network into the scheme — a frozen policy for
/// deployment/eval; optimizer, replay and RNG state stay untouched. The
/// target net is synced to the loaded online net.
void load_policy(DqnScheme& scheme, const std::string& path);

/// The training loop's own mutable state, as stored in the TRAINPRG chunk.
/// Shared by every trainer flavor: mode 0 = sequential train(), 1 =
/// train_batched(), 2 = train_parallel().
struct TrainProgress {
  std::uint8_t mode = 0;
  std::uint64_t replicas = 1;
  std::uint64_t slots_trained = 0;
  bool early_stopped = false;
  // The sliding window and its running sum. The sum is serialized as the
  // raw double (not recomputed on load): the incremental add/sub stream
  // differs from a fresh summation in floating point, and bit-identical
  // resume requires the exact value the uninterrupted run would carry.
  double window_sum = 0.0;
  std::deque<double> window;
};

/// Append the TRAINPRG chunk (progress + the config fields a resume must
/// match: reward_window and target_mean_reward).
void write_train_progress(io::ContainerWriter& out,
                          const TrainProgress& progress,
                          const TrainerConfig& config);

/// Decode and validate the TRAINPRG chunk: mode, replica count,
/// reward_window and target_mean_reward must all match (io::IoError
/// kStateMismatch otherwise).
TrainProgress read_train_progress(const io::ContainerReader& in,
                                  std::uint8_t mode, std::uint64_t replicas,
                                  const TrainerConfig& config);

/// Append the JAMRCFG chunk naming the adversary the environment competes
/// against. No-op for the closed-form "kernel" sentinel, so kernel-mode
/// checkpoints keep their pre-zoo chunk layout.
void write_jammer_config(io::ContainerWriter& out,
                         const jammer::JammerSpec& spec);

/// Validate a checkpoint's adversary against the live environment's spec:
/// the JAMRCFG chunk must be present exactly when the spec is behavioural,
/// and must decode equal to it — resuming a run against a different
/// adversary is a state mismatch, not a silent behaviour change (throws
/// io::IoError kStateMismatch).
void check_jammer_config(const io::ContainerReader& in,
                         const jammer::JammerSpec& spec);

/// True when the config asks for resume and the checkpoint file exists.
bool should_resume_checkpoint(const TrainerConfig& config);

/// The slot count at which the next periodic checkpoint is due (SIZE_MAX
/// when periodic checkpointing is off).
std::size_t next_checkpoint_after(std::size_t slots, std::size_t every);

}  // namespace ctj::core
