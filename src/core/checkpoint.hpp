// Checkpoint assembly: the glue between the CTJS container (src/io) and the
// training stack (DqnScheme + environment + trainer loop).
//
// A model checkpoint written by save_scheme() or by the trainer holds the
// scheme Config (SCHMCFG), its dynamic state (SCHMST), the whole agent
// (networks, optimizer, replay ring, RNG, counters) and a META chunk with
// advisory provenance keys. Trainer checkpoints add ENVSTATE/OBSWIN/TRAINPRG
// so a killed run resumes bit-identically (see trainer.hpp).
#pragma once

#include <string>

#include "core/rl_fh.hpp"
#include "io/container.hpp"

namespace ctj::core {

/// Append the standard META chunk: `format=ctjs`, `type=<type>` and
/// `simd_level=<active kernel level>`. simd_level is advisory only — a
/// checkpoint written under one SIMD level loads under any (all state is
/// plain f64; the kernels only change how fast it is computed).
void add_meta_chunk(io::ContainerWriter& out, const std::string& type);

/// Write a standalone model checkpoint (META + full scheme state) to `path`
/// atomically (temp file + rename).
void save_scheme(const DqnScheme& scheme, const std::string& path);

/// Restore a scheme from a checkpoint written by save_scheme() or the
/// trainer. The stored Config must equal the scheme's (io::IoError
/// kStateMismatch otherwise); on any failure the scheme is unchanged.
void load_scheme(DqnScheme& scheme, const std::string& path);

/// Decode the DqnScheme::Config stored in a checkpoint, so a matching
/// scheme can be constructed from the file alone (`ctj_cli eval --model`).
DqnScheme::Config read_scheme_config(const std::string& path);

/// Load only the online network into the scheme — a frozen policy for
/// deployment/eval; optimizer, replay and RNG state stay untouched. The
/// target net is synced to the loaded online net.
void load_policy(DqnScheme& scheme, const std::string& path);

}  // namespace ctj::core
