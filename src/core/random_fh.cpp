#include "core/random_fh.hpp"

#include "common/check.hpp"

namespace ctj::core {

RandomFhScheme::RandomFhScheme(const Config& config)
    : config_(config), rng_(config.seed) {
  CTJ_CHECK(config.num_channels >= 2);
  CTJ_CHECK(config.num_power_levels > 0);
  CTJ_CHECK(config.hop_probability >= 0.0 && config.hop_probability <= 1.0);
}

void RandomFhScheme::reset() {
  channel_ = 0;
  power_index_ = 0;
}

SchemeDecision RandomFhScheme::decide() {
  if (rng_.bernoulli(config_.hop_probability)) {
    // FH: jump to a uniformly random other channel.
    int next = rng_.uniform_int(0, config_.num_channels - 2);
    if (next >= channel_) ++next;
    channel_ = next;
  } else {
    // PC: pick a random power level for this slot.
    power_index_ = rng_.index(config_.num_power_levels);
  }
  return {channel_, power_index_};
}

void RandomFhScheme::feedback(const SlotFeedback& /*feedback*/) {
  // Memoryless by design.
}

}  // namespace ctj::core
