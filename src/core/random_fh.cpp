#include "core/random_fh.hpp"

#include "common/check.hpp"

namespace ctj::core {

RandomFhScheme::RandomFhScheme(const Config& config)
    : config_(config), rng_(config.seed) {
  CTJ_CHECK(config.num_channels >= 2);
  CTJ_CHECK(config.num_power_levels > 0);
  CTJ_CHECK(config.hop_probability >= 0.0 && config.hop_probability <= 1.0);
}

void RandomFhScheme::reset() {
  channel_ = 0;
  power_index_ = 0;
}

SchemeDecision RandomFhScheme::decide() {
  if (rng_.bernoulli(config_.hop_probability)) {
    // FH: jump to a uniformly random other channel.
    int next = rng_.uniform_int(0, config_.num_channels - 2);
    if (next >= channel_) ++next;
    channel_ = next;
  } else {
    // PC: pick a random power level for this slot.
    power_index_ = rng_.index(config_.num_power_levels);
  }
  return {channel_, power_index_};
}

void RandomFhScheme::feedback(const SlotFeedback& /*feedback*/) {
  // Memoryless by design.
}

void RandomFhScheme::save_state(io::ByteWriter& out) const {
  out.i32(config_.num_channels);
  out.u64(config_.num_power_levels);
  out.f64(config_.hop_probability);
  out.u64(config_.seed);

  out.str(rng_.serialize_state());
  out.i32(channel_);
  out.u64(power_index_);
}

void RandomFhScheme::load_state(io::ByteReader& in) {
  const auto num_channels = in.i32();
  const auto num_power_levels = static_cast<std::size_t>(in.u64());
  const double hop_probability = in.f64();
  const std::uint64_t seed = in.u64();
  if (num_channels != config_.num_channels ||
      num_power_levels != config_.num_power_levels ||
      hop_probability != config_.hop_probability || seed != config_.seed) {
    throw io::IoError(io::ErrorKind::kStateMismatch,
                      "stored RandomFhScheme::Config differs from this "
                      "scheme");
  }

  const std::string rng_text = in.str();
  Rng rng;
  try {
    rng.restore_state(rng_text);
  } catch (const CheckFailure&) {
    throw io::IoError(io::ErrorKind::kBadPayload, "random FH RNG state");
  }
  const int channel = in.i32();
  const auto power_index = static_cast<std::size_t>(in.u64());
  if (channel < 0 || channel >= config_.num_channels ||
      power_index >= config_.num_power_levels) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "random FH channel/power out of range");
  }

  rng_ = rng;
  channel_ = channel;
  power_index_ = power_index;
}

}  // namespace ctj::core
