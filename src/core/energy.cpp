#include "core/energy.hpp"

#include "common/check.hpp"
#include "common/units.hpp"

namespace ctj::core {

EnergyAccumulator::EnergyAccumulator(EnergyModelConfig config)
    : config_(config) {
  CTJ_CHECK(config.rx_power_mw >= 0.0);
  CTJ_CHECK(config.tx_duty >= 0.0 && config.tx_duty <= 1.0);
  CTJ_CHECK(config.hop_energy_mj >= 0.0);
  CTJ_CHECK(config.battery_mwh > 0.0);
}

void EnergyAccumulator::record_slot(double tx_level, double slot_duration_s,
                                    bool hopped) {
  CTJ_CHECK(slot_duration_s > 0.0);
  const double tx_mw = dbm_to_mw(tx_level + config_.level_offset_dbm);
  const double tx_time = slot_duration_s * config_.tx_duty;
  const double rx_time = slot_duration_s - tx_time;
  const double tx_mj = tx_mw * tx_time;                // mW·s == mJ
  const double rx_mj = config_.rx_power_mw * rx_time;
  const double hop_mj = hopped ? config_.hop_energy_mj : 0.0;
  tx_mj_ += tx_mj;
  hop_mj_ += hop_mj;
  total_mj_ += tx_mj + rx_mj + hop_mj;
  total_time_s_ += slot_duration_s;
  ++slots_;
}

EnergyReport EnergyAccumulator::report() const {
  EnergyReport r;
  r.total_mj = total_mj_;
  r.tx_mj = tx_mj_;
  r.hop_mj = hop_mj_;
  r.slots = slots_;
  if (total_time_s_ > 0.0) {
    r.mean_mw = total_mj_ / total_time_s_;
    if (r.mean_mw > 0.0) {
      r.battery_life_hours = config_.battery_mwh / r.mean_mw;
    }
  }
  return r;
}

void EnergyAccumulator::reset() {
  total_mj_ = 0.0;
  tx_mj_ = 0.0;
  hop_mj_ = 0.0;
  total_time_s_ = 0.0;
  slots_ = 0;
}

}  // namespace ctj::core
