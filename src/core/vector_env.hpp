// Vectorized multi-environment rollout engine.
//
// A VectorEnv steps R CompetitionEnvironment replicas in lockstep and lands
// the per-slot results in structure-of-arrays buffers, so a batched policy
// (DqnAgent::act_greedy_batch / act_batch) amortizes one network forward
// pass across all replicas instead of paying a batch-1 forward per slot.
// Replica r is seeded base_seed + r and owns its RNG stream, so its
// trajectory is identical, seed for seed, to a standalone environment
// constructed with that seed — batching R rollouts is exactly R independent
// rollouts, just interleaved in time.
//
// ObservationWindows is the SoA companion on the agent side: the R sliding
// 3×I observation windows kept as one [R × 3I] matrix that feeds the batched
// forward directly. Row r reproduces DqnScheme::observation() bit for bit
// (per slot, oldest first: success flag, channel/(C−1), power/(PL−1)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/environment.hpp"
#include "rl/matrix.hpp"

namespace ctj::core {

class VectorEnv {
 public:
  /// R replicas of `config`; replica r runs with seed config.seed + r.
  VectorEnv(const EnvironmentConfig& config, std::size_t replicas);

  std::size_t size() const { return envs_.size(); }
  const EnvironmentConfig& config() const { return config_; }

  /// Step every replica: channels and power_indices hold one decision per
  /// replica. Results land in the SoA views below, valid until the next
  /// step(). Replica order is fixed (0..R−1), so the RNG consumption per
  /// replica matches a sequential rollout exactly.
  void step(std::span<const int> channels,
            std::span<const std::size_t> power_indices);

  // SoA views of the most recent step().
  std::span<const double> rewards() const { return rewards_; }
  std::span<const std::uint8_t> successes() const { return successes_; }
  std::span<const std::uint8_t> jammed() const { return jammed_; }
  std::span<const std::uint8_t> hopped() const { return hopped_; }
  std::span<const int> channels() const { return channels_; }
  std::span<const SlotOutcome> outcomes() const { return outcomes_; }

  CompetitionEnvironment& env(std::size_t r);
  const CompetitionEnvironment& env(std::size_t r) const;

  /// Reset every replica's channel/hidden state (RNG streams keep running,
  /// matching CompetitionEnvironment::reset()).
  void reset();

  /// Checkpoint-format serialization: replica count + every replica's full
  /// state, in replica order. load_state throws io::IoError on a replica
  /// count or per-replica config mismatch, leaving all replicas unchanged.
  void save_state(io::ByteWriter& out) const;
  void load_state(io::ByteReader& in);

 private:
  EnvironmentConfig config_;
  std::vector<CompetitionEnvironment> envs_;
  std::vector<double> rewards_;
  std::vector<std::uint8_t> successes_;
  std::vector<std::uint8_t> jammed_;
  std::vector<std::uint8_t> hopped_;
  std::vector<int> channels_;
  std::vector<SlotOutcome> outcomes_;
};

class ObservationWindows {
 public:
  ObservationWindows(std::size_t replicas, std::size_t history,
                     int num_channels, std::size_t num_power_levels);

  std::size_t size() const { return replicas_; }
  std::size_t history() const { return history_; }

  /// All windows back to the all-zero initial history (= DqnScheme::reset).
  void reset();

  /// Slide replica r's window one slot: drop the oldest record, append
  /// (success, channel, power) with DqnScheme's normalization.
  void push(std::size_t r, bool success, int channel, std::size_t power_index);

  /// The [R × 3I] batch of observations — feed directly to
  /// DqnAgent::act_greedy_batch / q_values_batch.
  const rl::Matrix& states() const { return states_; }

  /// Replica r's current observation (equals DqnScheme::observation()).
  std::span<const double> row(std::size_t r) const;

  /// Checkpoint-format serialization of the window matrix (+ dimension
  /// digest); load_state throws io::IoError kStateMismatch on any
  /// dimension difference, leaving the windows unchanged.
  void save_state(io::ByteWriter& out) const;
  void load_state(io::ByteReader& in);

 private:
  std::size_t replicas_;
  std::size_t history_;
  int num_channels_;
  std::size_t num_power_levels_;
  rl::Matrix states_;  // [R × 3·history]
};

}  // namespace ctj::core
