// Parallel actor-learner training (Ape-X-style decoupled acting/learning,
// arXiv:1803.00933, specialized to the paper's slot-level competition).
//
// N actor shards each step their own VectorEnv replica group with a local
// snapshot of the policy network, writing flat transition records into
// per-shard SPSC queues; one learner thread (the caller's) drains those
// queues into a sharded replay buffer and runs SIMD-friendly minibatch
// gradient steps through DqnAgent::train_on_batch, publishing refreshed
// weights back to the actors over a PolicyBus. Actor shards are a fixed
// partition of the rollout — `threads` only controls how many OS threads
// the shards are spread across, so in deterministic mode the output is
// bit-identical for any thread count.
//
// Two scheduling modes:
//
//   deterministic (default): a fixed round-major interleave. In round k
//   every shard steps each of its replicas once (shard order inside a
//   round is immaterial — shards share no state); the learner consumes
//   round k's transitions in shard-major order, takes gradient steps at
//   fixed consumed-slot counts, and publishes weights at epoch gates every
//   sync_every_rounds rounds, where all actors block until the new
//   snapshot is up. At an actor's gate for round k the bus version is
//   exactly k/sync + 1 (the learner cannot publish a later epoch before
//   consuming rounds the actor has not produced yet), so every snapshot an
//   actor ever applies is the same for threads = 1..N — weights and the
//   per-slot reward stream are bit-identical across thread counts.
//
//   throughput (deterministic = false): actors free-run and poll the bus
//   once per round; the learner drains whatever is queued and publishes on
//   a consumed-slot cadence. Maximum hardware utilization, run-to-run
//   reproducibility not guaranteed.
//
// Checkpoint/resume goes through the PR-4 CTJS container: the TRAINPRG
// progress chunk (mode 2) plus the whole agent, the sharded replay rings,
// and every shard's environment replicas, observation windows and RNG
// stream. Deterministic mode cuts only at epoch gates (all actors parked,
// queues provably empty), so a killed-and-resumed run replays the exact
// slot stream of an uninterrupted one; throughput mode quiesces actors at
// a round boundary and drains all queues before cutting.
#pragma once

#include <cstddef>

#include "core/environment.hpp"
#include "core/trainer.hpp"

namespace ctj::core {

struct ParallelTrainerConfig {
  /// Actor shards — the fixed partition of the rollout. Each shard owns
  /// `replicas_per_actor` environment replicas, its own policy copy, RNG
  /// stream and transition queue. Deterministic-mode output depends on
  /// this (and the other schedule knobs), never on `threads`.
  std::size_t actors = 4;
  std::size_t replicas_per_actor = 4;
  /// Worker threads the shards are distributed across (clamped to
  /// `actors`; the learner runs on the calling thread). With 1, all
  /// shards share one worker thread — same output, no parallelism.
  std::size_t threads = 1;
  /// Fixed interleave schedule with bit-identical output across thread
  /// counts (see file comment); false = free-running throughput mode.
  bool deterministic = true;
  /// Weight-publish cadence in rounds (one round = one slot per replica).
  /// In deterministic mode actors gate on the new snapshot every
  /// `sync_every_rounds` rounds; in throughput mode the learner publishes
  /// every `sync_every_rounds × actors × replicas_per_actor` consumed
  /// slots and actors pick it up on their next poll.
  std::size_t sync_every_rounds = 16;
  /// Learner minibatch size (0 = the agent's batch_size). Large batches
  /// amortize the fixed per-step cost over more SIMD-friendly rows.
  std::size_t learner_batch = 0;
  /// One gradient step per this many consumed transitions (0 = the
  /// agent's train_every). learner_batch / train_every_slots is the
  /// sample-reuse ratio; keeping it equal to the serial trainer's
  /// batch_size / train_every makes runs statistically comparable.
  std::size_t train_every_slots = 0;
  /// Per-shard replay ring capacity (0 = agent replay_capacity / actors).
  std::size_t replay_capacity_per_actor = 0;
  /// Per-shard transition queue capacity in records (0 = auto). Rounded
  /// up to a power of two.
  std::size_t queue_capacity = 0;
};

/// Train the scheme's agent with the parallel actor-learner. config.max_slots
/// counts consumed transitions summed over all replicas (as train_batched);
/// in deterministic mode it must be divisible by actors × replicas_per_actor.
/// The reward window, early stop, on_slot callback and checkpoint knobs all
/// run on the learner thread over the consumed-slot stream.
TrainingStats train_parallel(DqnScheme& scheme,
                             const EnvironmentConfig& env_config,
                             const TrainerConfig& config,
                             const ParallelTrainerConfig& pconfig);

}  // namespace ctj::core
