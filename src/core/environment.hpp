// The slot-level anti-jamming competition environment.
//
// This is the environment the DQN trains and evaluates in (Sec. IV.A.1): it
// samples next states from exactly the MDP kernel of Eqs. (6)–(14), with the
// hidden state (n consecutive successes / T_J jammed-but-survived / J jammed)
// evolving against the sweeping cross-technology jammer. The agent does NOT
// see the hidden state — as the paper notes, the victim cannot synchronize
// with the jammer — it only observes each slot's outcome, channel and power,
// which is what the DQN's 3×I history input encodes.
//
// Adversary selection: by default (`config.jammer` == the "kernel" sentinel)
// the environment samples the closed-form kernel above — bit-identical to
// the pre-registry behaviour. Setting `config.jammer.archetype` to any
// registered key instead drives a live behavioural jammer from the adversary
// zoo (jammer/registry.hpp) slot by slot: each slot's outcome comes from the
// jammer's actual sense/emit decisions and the power duel against its
// reported emission, which is how the non-sweep archetypes (reactive,
// duty-cycle, colluding, ...) are trained and evaluated against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/modes.hpp"
#include "common/rng.hpp"
#include "io/bytes.hpp"
#include "jammer/registry.hpp"

namespace ctj::core {

struct EnvironmentConfig {
  int num_channels = 16;       // C == K
  int channels_per_sweep = 4;  // m
  /// Victim transmit power levels L^T (paper default 6..15).
  std::vector<double> tx_levels;
  /// Jammer power levels L^J (paper default 11..20).
  std::vector<double> jam_levels;
  JammerPowerMode mode = JammerPowerMode::kMaxPower;
  double loss_jam = 100.0;  // L_J
  double loss_hop = 50.0;   // L_H
  std::uint64_t seed = 5;
  /// Which adversary the victim competes against. The "kernel" sentinel
  /// samples the closed-form MDP kernel (the paper's sweep jammer in
  /// distribution); any registered archetype drives that behavioural jammer
  /// instead. The spec's channel geometry / power levels / mode are synced
  /// from the fields above at construction, so only `archetype` and the
  /// archetype-specific tunables need setting.
  jammer::JammerSpec jammer = jammer::JammerSpec::kernel();

  static EnvironmentConfig defaults();

  int sweep_cycle() const;  // ⌈K/m⌉
  std::size_t num_power_levels() const { return tx_levels.size(); }
  /// q_i = P(p^T_i >= τ) under the jammer's power mode.
  double success_prob(std::size_t power_index) const;
};

/// Outcome of one slot from the victim's perspective.
enum class SlotOutcome {
  kClear,           // not jammed: data went through
  kJammedSurvived,  // jammed but the tx power beat the jamming power (T_J)
  kJammedFailed,    // completely jammed (J)
};

const char* to_string(SlotOutcome outcome);

struct EnvStep {
  SlotOutcome outcome = SlotOutcome::kClear;
  /// Realized reward per Eq. (5): −L_p − L_H·[hop] − L_J·[outcome == J].
  double reward = 0.0;
  bool hopped = false;
  bool success = false;  // outcome != kJammedFailed
  int channel = 0;       // channel used this slot
};

class CompetitionEnvironment {
 public:
  explicit CompetitionEnvironment(EnvironmentConfig config);

  // Copyable (VectorEnv restores by copying replicas); the behavioural
  // jammer, when present, is deep-cloned with its RNG stream.
  CompetitionEnvironment(const CompetitionEnvironment& other);
  CompetitionEnvironment& operator=(const CompetitionEnvironment& other);
  CompetitionEnvironment(CompetitionEnvironment&&) = default;
  CompetitionEnvironment& operator=(CompetitionEnvironment&&) = default;

  /// Execute one slot: the victim transmits on `channel` at power level
  /// `power_index`. Choosing a channel different from current_channel()
  /// is a frequency hop (and pays L_H); only hops that leave the current
  /// m-channel group actually change the jamming odds, since the
  /// cross-technology jammer's emission covers the whole group.
  EnvStep step(int channel, std::size_t power_index);

  int current_channel() const { return channel_; }
  const EnvironmentConfig& config() const { return config_; }

  /// True when sampling the closed-form kernel ("kernel" sentinel); false
  /// when a behavioural jammer from the registry drives the outcomes.
  bool kernel_mode() const { return jam_ == nullptr; }
  /// The live behavioural jammer, or nullptr in kernel mode.
  const jammer::Jammer* behavioural_jammer() const { return jam_.get(); }
  /// Mutable access for drivers that inject carried jammer state into a
  /// fresh environment (the self-play arena restores a trained opponent
  /// via Jammer::load_state before stepping).
  jammer::Jammer* behavioural_jammer() { return jam_.get(); }

  /// Hidden state inspection for tests/oracles: n in [1, N−1], or N−1+1 →
  /// T_J, J encodings mirroring mdp::AntijamMdp indices.
  enum class HiddenKind { kCounting, kTj, kJ };
  HiddenKind hidden_kind() const { return kind_; }
  int hidden_n() const { return n_; }

  void reset();

  // Checkpoint-format serialization: the RNG stream, current channel and
  // hidden MDP state (plus the behavioural jammer's full state when one is
  // configured), preceded by a digest of the config so a checkpoint cannot
  // be resumed against a differently-parameterized environment (throws
  // io::IoError kStateMismatch; the environment is unchanged on any failed
  // load).
  void save_state(io::ByteWriter& out) const;
  void load_state(io::ByteReader& in);

 private:
  EnvironmentConfig config_;
  Rng rng_;
  int channel_ = 0;
  HiddenKind kind_ = HiddenKind::kCounting;
  int n_ = 1;  // valid when kind_ == kCounting
  std::unique_ptr<jammer::Jammer> jam_;  // null in kernel mode
};

}  // namespace ctj::core
