#include "core/rl_fh.hpp"

#include "common/check.hpp"

namespace ctj::core {

rl::DqnConfig DqnScheme::make_dqn_config(const Config& config) {
  rl::DqnConfig dqn;
  dqn.state_dim = 3 * config.history;
  dqn.num_actions = static_cast<std::size_t>(config.num_channels) *
                    config.num_power_levels;
  dqn.hidden = config.hidden;
  dqn.learning_rate = config.learning_rate;
  dqn.gamma = config.gamma;
  dqn.epsilon_start = config.epsilon_start;
  dqn.epsilon_end = config.epsilon_end;
  dqn.epsilon_decay_steps = config.epsilon_decay_steps;
  dqn.double_dqn = config.double_dqn;
  dqn.target_sync_interval = config.target_sync_interval;
  dqn.target_tau = config.target_tau;
  dqn.seed = config.seed;
  return dqn;
}

DqnScheme::DqnScheme(const Config& config)
    : config_(config),
      agent_(make_dqn_config(config)),
      deploy_rng_(config.seed ^ 0xD09ULL),
      training_(config.training) {
  CTJ_CHECK(config.deploy_epsilon >= 0.0 && config.deploy_epsilon < 1.0);
  CTJ_CHECK(config.num_channels >= 2);
  CTJ_CHECK(config.num_power_levels > 0);
  CTJ_CHECK(config.history > 0);
  reset();
}

void DqnScheme::set_deploy_epsilon(double epsilon) {
  CTJ_CHECK(epsilon >= 0.0 && epsilon < 1.0);
  config_.deploy_epsilon = epsilon;
}

void DqnScheme::reset() {
  history_.assign(config_.history, SlotRecord{});
  has_pending_ = false;
}

std::vector<double> DqnScheme::observation() const {
  std::vector<double> obs;
  obs.reserve(3 * config_.history);
  for (const auto& rec : history_) {
    obs.push_back(rec.success);
    obs.push_back(rec.channel);
    obs.push_back(rec.power);
  }
  return obs;
}

SchemeDecision DqnScheme::decide() {
  const std::vector<double> obs = observation();
  std::size_t action;
  if (training_) {
    action = agent_.act(obs);
  } else if (config_.deploy_epsilon > 0.0 &&
             deploy_rng_.bernoulli(config_.deploy_epsilon)) {
    // Deployed ε-greedy (Sec. III.C): occasional random action keeps the
    // channel pattern unpredictable to the sweeping jammer.
    action = deploy_rng_.index(agent_.config().num_actions);
  } else {
    action = agent_.act_greedy(obs);
  }
  pending_state_ = obs;
  pending_action_ = action;
  has_pending_ = true;
  SchemeDecision decision;
  decision.channel = static_cast<int>(action / config_.num_power_levels);
  decision.power_index = action % config_.num_power_levels;
  return decision;
}

void DqnScheme::save_state(io::ContainerWriter& out) const {
  io::ByteWriter cfg;
  cfg.i32(config_.num_channels);
  cfg.u64(config_.num_power_levels);
  cfg.u64(config_.history);
  cfg.u8(config_.training ? 1 : 0);
  cfg.f64(config_.deploy_epsilon);
  cfg.f64(config_.learning_rate);
  cfg.f64(config_.gamma);
  cfg.f64(config_.epsilon_start);
  cfg.f64(config_.epsilon_end);
  cfg.u64(config_.epsilon_decay_steps);
  cfg.u64(config_.hidden.size());
  for (std::size_t h : config_.hidden) cfg.u64(h);
  cfg.u8(config_.double_dqn ? 1 : 0);
  cfg.u64(config_.target_sync_interval);
  cfg.f64(config_.target_tau);
  cfg.u64(config_.seed);
  out.add_chunk(io::tags::kSchemeCfg, cfg.take());

  io::ByteWriter state;
  state.u8(training_ ? 1 : 0);
  state.str(deploy_rng_.serialize_state());
  state.u64(history_.size());
  for (const SlotRecord& rec : history_) {
    state.f64(rec.success);
    state.f64(rec.channel);
    state.f64(rec.power);
  }
  state.u8(has_pending_ ? 1 : 0);
  state.f64_vec(pending_state_);
  state.u64(pending_action_);
  out.add_chunk(io::tags::kSchemeState, state.take());

  agent_.save_state(out);
}

DqnScheme::Config DqnScheme::read_config(const io::ContainerReader& in) {
  io::ByteReader cfg(in.chunk(io::tags::kSchemeCfg));
  Config config;
  config.num_channels = cfg.i32();
  config.num_power_levels = static_cast<std::size_t>(cfg.u64());
  config.history = static_cast<std::size_t>(cfg.u64());
  config.training = cfg.u8() != 0;
  config.deploy_epsilon = cfg.f64();
  config.learning_rate = cfg.f64();
  config.gamma = cfg.f64();
  config.epsilon_start = cfg.f64();
  config.epsilon_end = cfg.f64();
  config.epsilon_decay_steps = static_cast<std::size_t>(cfg.u64());
  const std::uint64_t hidden_count = cfg.u64();
  if (hidden_count > 1024) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "implausible hidden layer count " +
                          std::to_string(hidden_count));
  }
  config.hidden.clear();
  for (std::uint64_t i = 0; i < hidden_count; ++i) {
    config.hidden.push_back(static_cast<std::size_t>(cfg.u64()));
  }
  config.double_dqn = cfg.u8() != 0;
  config.target_sync_interval = static_cast<std::size_t>(cfg.u64());
  config.target_tau = cfg.f64();
  config.seed = cfg.u64();
  cfg.expect_end();
  return config;
}

void DqnScheme::load_state(const io::ContainerReader& in) {
  const Config stored = read_config(in);
  // `training` is runtime state (set_training flips it after construction),
  // restored from SCHMST below; every constructive field must match.
  if (stored.num_channels != config_.num_channels ||
      stored.num_power_levels != config_.num_power_levels ||
      stored.history != config_.history ||
      stored.deploy_epsilon != config_.deploy_epsilon ||
      stored.learning_rate != config_.learning_rate ||
      stored.gamma != config_.gamma ||
      stored.epsilon_start != config_.epsilon_start ||
      stored.epsilon_end != config_.epsilon_end ||
      stored.epsilon_decay_steps != config_.epsilon_decay_steps ||
      stored.hidden != config_.hidden ||
      stored.double_dqn != config_.double_dqn ||
      stored.target_sync_interval != config_.target_sync_interval ||
      stored.target_tau != config_.target_tau ||
      stored.seed != config_.seed) {
    throw io::IoError(io::ErrorKind::kStateMismatch,
                      "checkpoint DqnScheme::Config differs from this scheme");
  }

  io::ByteReader state(in.chunk(io::tags::kSchemeState));
  const bool training = state.u8() != 0;
  const std::string rng_text = state.str();
  Rng deploy_rng;
  try {
    deploy_rng.restore_state(rng_text);
  } catch (const CheckFailure&) {
    throw io::IoError(io::ErrorKind::kBadPayload, "scheme RNG state");
  }
  const std::uint64_t records = state.u64();
  if (records != config_.history) {
    throw io::IoError(io::ErrorKind::kStateMismatch,
                      "checkpoint window has " + std::to_string(records) +
                          " records, scheme history is " +
                          std::to_string(config_.history));
  }
  std::deque<SlotRecord> history;
  for (std::uint64_t i = 0; i < records; ++i) {
    SlotRecord rec;
    rec.success = state.f64();
    rec.channel = state.f64();
    rec.power = state.f64();
    history.push_back(rec);
  }
  const bool has_pending = state.u8() != 0;
  std::vector<double> pending_state = state.f64_vec();
  const std::uint64_t pending_action = state.u64();
  state.expect_end();
  if (has_pending && pending_state.size() != 3 * config_.history) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "pending state has the wrong dimension");
  }
  if (has_pending && pending_action >= agent_.config().num_actions) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "pending action out of range");
  }

  // The agent loader keeps the strong guarantee itself; putting it last
  // means nothing above has mutated the scheme yet either.
  agent_.load_state(in);
  training_ = training;
  deploy_rng_ = deploy_rng;
  history_ = std::move(history);
  pending_state_ = std::move(pending_state);
  pending_action_ = static_cast<std::size_t>(pending_action);
  has_pending_ = has_pending;
}

void DqnScheme::feedback(const SlotFeedback& feedback) {
  // Slide the observation window.
  history_.pop_front();
  SlotRecord rec;
  rec.success = feedback.success ? 1.0 : 0.0;
  rec.channel = config_.num_channels <= 1
                    ? 0.0
                    : static_cast<double>(feedback.channel) /
                          static_cast<double>(config_.num_channels - 1);
  rec.power = config_.num_power_levels <= 1
                  ? 0.0
                  : static_cast<double>(feedback.power_index) /
                        static_cast<double>(config_.num_power_levels - 1);
  history_.push_back(rec);

  if (has_pending_ && training_) {
    rl::Transition transition;
    transition.state = std::move(pending_state_);
    transition.action = pending_action_;
    transition.reward = feedback.reward;
    transition.next_state = observation();
    transition.done = false;  // continuing competition
    agent_.observe(std::move(transition));
  }
  has_pending_ = false;
}

}  // namespace ctj::core
