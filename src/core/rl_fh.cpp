#include "core/rl_fh.hpp"

#include "common/check.hpp"

namespace ctj::core {

rl::DqnConfig DqnScheme::make_dqn_config(const Config& config) {
  rl::DqnConfig dqn;
  dqn.state_dim = 3 * config.history;
  dqn.num_actions = static_cast<std::size_t>(config.num_channels) *
                    config.num_power_levels;
  dqn.hidden = config.hidden;
  dqn.learning_rate = config.learning_rate;
  dqn.gamma = config.gamma;
  dqn.epsilon_start = config.epsilon_start;
  dqn.epsilon_end = config.epsilon_end;
  dqn.epsilon_decay_steps = config.epsilon_decay_steps;
  dqn.double_dqn = config.double_dqn;
  dqn.seed = config.seed;
  return dqn;
}

DqnScheme::DqnScheme(const Config& config)
    : config_(config),
      agent_(make_dqn_config(config)),
      deploy_rng_(config.seed ^ 0xD09ULL),
      training_(config.training) {
  CTJ_CHECK(config.deploy_epsilon >= 0.0 && config.deploy_epsilon < 1.0);
  CTJ_CHECK(config.num_channels >= 2);
  CTJ_CHECK(config.num_power_levels > 0);
  CTJ_CHECK(config.history > 0);
  reset();
}

void DqnScheme::set_deploy_epsilon(double epsilon) {
  CTJ_CHECK(epsilon >= 0.0 && epsilon < 1.0);
  config_.deploy_epsilon = epsilon;
}

void DqnScheme::reset() {
  history_.assign(config_.history, SlotRecord{});
  has_pending_ = false;
}

std::vector<double> DqnScheme::observation() const {
  std::vector<double> obs;
  obs.reserve(3 * config_.history);
  for (const auto& rec : history_) {
    obs.push_back(rec.success);
    obs.push_back(rec.channel);
    obs.push_back(rec.power);
  }
  return obs;
}

SchemeDecision DqnScheme::decide() {
  const std::vector<double> obs = observation();
  std::size_t action;
  if (training_) {
    action = agent_.act(obs);
  } else if (config_.deploy_epsilon > 0.0 &&
             deploy_rng_.bernoulli(config_.deploy_epsilon)) {
    // Deployed ε-greedy (Sec. III.C): occasional random action keeps the
    // channel pattern unpredictable to the sweeping jammer.
    action = deploy_rng_.index(agent_.config().num_actions);
  } else {
    action = agent_.act_greedy(obs);
  }
  pending_state_ = obs;
  pending_action_ = action;
  has_pending_ = true;
  SchemeDecision decision;
  decision.channel = static_cast<int>(action / config_.num_power_levels);
  decision.power_index = action % config_.num_power_levels;
  return decision;
}

void DqnScheme::feedback(const SlotFeedback& feedback) {
  // Slide the observation window.
  history_.pop_front();
  SlotRecord rec;
  rec.success = feedback.success ? 1.0 : 0.0;
  rec.channel = config_.num_channels <= 1
                    ? 0.0
                    : static_cast<double>(feedback.channel) /
                          static_cast<double>(config_.num_channels - 1);
  rec.power = config_.num_power_levels <= 1
                  ? 0.0
                  : static_cast<double>(feedback.power_index) /
                        static_cast<double>(config_.num_power_levels - 1);
  history_.push_back(rec);

  if (has_pending_ && training_) {
    rl::Transition transition;
    transition.state = std::move(pending_state_);
    transition.action = pending_action_;
    transition.reward = feedback.reward;
    transition.next_state = observation();
    transition.done = false;  // continuing competition
    agent_.observe(std::move(transition));
  }
  has_pending_ = false;
}

}  // namespace ctj::core
