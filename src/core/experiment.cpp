#include "core/experiment.hpp"

#include "common/check.hpp"

namespace ctj::core {

MetricsReport evaluate(AntiJammingScheme& scheme, CompetitionEnvironment& env,
                       std::size_t slots) {
  CTJ_CHECK(slots > 0);
  MetricsAccumulator metrics;
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const SchemeDecision decision = scheme.decide();
    const EnvStep step = env.step(decision.channel, decision.power_index);

    SlotFeedback feedback;
    feedback.success = step.success;
    feedback.jammed = step.outcome != SlotOutcome::kClear;
    feedback.channel = step.channel;
    feedback.power_index = decision.power_index;
    feedback.reward = step.reward;
    scheme.feedback(feedback);

    metrics.record(step, decision.power_index);
  }
  return metrics.report();
}

void RlExperimentConfig::sync_dimensions() {
  scheme.num_channels = env.num_channels;
  scheme.num_power_levels = env.num_power_levels();
}

RlExperimentResult run_rl_experiment(RlExperimentConfig config) {
  config.sync_dimensions();

  CompetitionEnvironment train_env(config.env);
  DqnScheme scheme(config.scheme);

  TrainerConfig trainer;
  trainer.max_slots = config.train_slots;
  RlExperimentResult result;
  result.training = train(scheme, train_env, trainer);

  // Freeze the policy and evaluate on an independently seeded environment,
  // as the paper does when loading the trained network onto the hub.
  scheme.set_training(false);
  scheme.reset();
  EnvironmentConfig eval_config = config.env;
  eval_config.seed = config.eval_seed;
  CompetitionEnvironment eval_env(eval_config);
  result.metrics = evaluate(scheme, eval_env, config.eval_slots);
  return result;
}

}  // namespace ctj::core
