#include "core/experiment.hpp"

#include "common/check.hpp"
#include "core/vector_env.hpp"

namespace ctj::core {

MetricsReport evaluate(AntiJammingScheme& scheme, CompetitionEnvironment& env,
                       std::size_t slots) {
  CTJ_CHECK(slots > 0);
  MetricsAccumulator metrics;
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const SchemeDecision decision = scheme.decide();
    const EnvStep step = env.step(decision.channel, decision.power_index);

    SlotFeedback feedback;
    feedback.success = step.success;
    feedback.jammed = step.outcome != SlotOutcome::kClear;
    feedback.channel = step.channel;
    feedback.power_index = decision.power_index;
    feedback.reward = step.reward;
    scheme.feedback(feedback);

    metrics.record(step, decision.power_index);
  }
  return metrics.report();
}

MetricsReport evaluate_batched(const DqnScheme& scheme,
                               const EnvironmentConfig& env_config,
                               std::size_t slots_per_replica,
                               std::size_t replicas) {
  CTJ_CHECK(slots_per_replica > 0);
  CTJ_CHECK_MSG(!scheme.training(),
                "evaluate_batched expects a frozen (deployed) policy");
  const DqnScheme::Config& sc = scheme.config();
  const rl::DqnAgent& agent = scheme.agent();
  const std::size_t num_actions = agent.config().num_actions;
  const std::size_t pl = sc.num_power_levels;

  VectorEnv venv(env_config, replicas);
  ObservationWindows windows(replicas, sc.history, sc.num_channels, pl);
  std::vector<std::size_t> actions(replicas);
  std::vector<int> channels(replicas);
  std::vector<std::size_t> powers(replicas);
  // Deployed ε-greedy for the batch: one stream for all replicas, seeded
  // from the evaluation environment (not the scheme's deploy RNG, which
  // stays untouched — the scheme is const here).
  Rng explore_rng(env_config.seed ^ 0xD09ULL);
  const double eps = scheme.deploy_epsilon();

  MetricsAccumulator metrics;
  for (std::size_t slot = 0; slot < slots_per_replica; ++slot) {
    agent.act_greedy_batch(windows.states(), actions);
    for (std::size_t r = 0; r < replicas; ++r) {
      if (eps > 0.0 && explore_rng.bernoulli(eps)) {
        actions[r] = explore_rng.index(num_actions);
      }
      channels[r] = static_cast<int>(actions[r] / pl);
      powers[r] = actions[r] % pl;
    }
    venv.step(channels, powers);
    for (std::size_t r = 0; r < replicas; ++r) {
      const bool success = venv.successes()[r] != 0;
      windows.push(r, success, venv.channels()[r], powers[r]);
      metrics.record(success, venv.hopped()[r] != 0, powers[r] > 0,
                     venv.rewards()[r]);
    }
  }
  return metrics.report();
}

void RlExperimentConfig::sync_dimensions() {
  scheme.num_channels = env.num_channels;
  scheme.num_power_levels = env.num_power_levels();
}

RlExperimentResult run_rl_experiment(RlExperimentConfig config) {
  config.sync_dimensions();

  CompetitionEnvironment train_env(config.env);
  DqnScheme scheme(config.scheme);

  TrainerConfig trainer;
  trainer.max_slots = config.train_slots;
  trainer.checkpoint = config.checkpoint;
  RlExperimentResult result;
  result.training = train(scheme, train_env, trainer);

  // Freeze the policy and evaluate on an independently seeded environment,
  // as the paper does when loading the trained network onto the hub.
  scheme.set_training(false);
  scheme.reset();
  EnvironmentConfig eval_config = config.env;
  eval_config.seed = config.eval_seed;
  if (config.eval_replicas > 1) {
    result.metrics = evaluate_batched(scheme, eval_config, config.eval_slots,
                                      config.eval_replicas);
  } else {
    CompetitionEnvironment eval_env(eval_config);
    result.metrics = evaluate(scheme, eval_env, config.eval_slots);
  }
  return result;
}

}  // namespace ctj::core
