// Random FH baseline (Sec. IV.D.3): at the beginning of every slot the hub
// randomly picks either frequency hopping or power control, regardless of
// what the jammer is doing.
#pragma once

#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "io/bytes.hpp"

namespace ctj::core {

class RandomFhScheme : public AntiJammingScheme {
 public:
  struct Config {
    int num_channels = 16;
    std::size_t num_power_levels = 10;
    /// Probability of choosing FH in a slot (else PC).
    double hop_probability = 0.5;
    std::uint64_t seed = 22;
  };

  explicit RandomFhScheme(const Config& config);

  SchemeDecision decide() override;
  void feedback(const SlotFeedback& feedback) override;
  std::string name() const override { return "Rand FH"; }
  void reset() override;

  /// Checkpoint-format serialization (the serve layer's FHSTATE payload):
  /// Config digest, RNG stream and the hop/power state. load_state throws
  /// io::IoError on a digest mismatch or malformed payload, leaving the
  /// scheme unchanged.
  void save_state(io::ByteWriter& out) const;
  void load_state(io::ByteReader& in);

 private:
  Config config_;
  Rng rng_;
  int channel_ = 0;
  std::size_t power_index_ = 0;
};

}  // namespace ctj::core
