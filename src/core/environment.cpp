#include "core/environment.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ctj::core {

namespace {

/// Seed salt for the behavioural jammer's stream: a fixed constant (not an
/// rng_ fork) so adding the jammer leaves the environment's own draw
/// sequence untouched.
constexpr std::uint64_t kJammerSeedSalt = 0x4A414D52ULL;  // "JAMR"

}  // namespace

EnvironmentConfig EnvironmentConfig::defaults() {
  EnvironmentConfig c;
  for (int v = 6; v <= 15; ++v) c.tx_levels.push_back(v);
  for (int v = 11; v <= 20; ++v) c.jam_levels.push_back(v);
  return c;
}

int EnvironmentConfig::sweep_cycle() const {
  CTJ_CHECK(num_channels > 0 && channels_per_sweep > 0);
  return (num_channels + channels_per_sweep - 1) / channels_per_sweep;
}

double EnvironmentConfig::success_prob(std::size_t power_index) const {
  CTJ_CHECK(power_index < tx_levels.size());
  return duel_success_prob(tx_levels[power_index], jam_levels, mode);
}

const char* to_string(SlotOutcome outcome) {
  switch (outcome) {
    case SlotOutcome::kClear: return "clear";
    case SlotOutcome::kJammedSurvived: return "jammed-survived";
    case SlotOutcome::kJammedFailed: return "jammed-failed";
  }
  return "?";
}

CompetitionEnvironment::CompetitionEnvironment(EnvironmentConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  CTJ_CHECK(!config_.tx_levels.empty());
  CTJ_CHECK(!config_.jam_levels.empty());
  if (config_.jammer.is_kernel()) {
    // The closed-form hazard 1/(N − n) needs at least two groups; a
    // single-group network is only meaningful against a behavioural jammer
    // (whose boundary handling the zoo tests pin down).
    CTJ_CHECK_MSG(config_.sweep_cycle() >= 2,
                  "sweep cycle must be >= 2 (got " << config_.sweep_cycle()
                                                   << ")");
  } else {
    // Sync the adversary spec to the environment's geometry and power model
    // so one source of truth (this config) shapes both sides of the duel.
    config_.jammer.num_channels = config_.num_channels;
    config_.jammer.channels_per_sweep = config_.channels_per_sweep;
    config_.jammer.power_levels = config_.jam_levels;
    config_.jammer.mode = config_.mode;
    jam_ = jammer::make_jammer(config_.jammer, config_.seed ^ kJammerSeedSalt);
  }
  reset();
}

CompetitionEnvironment::CompetitionEnvironment(
    const CompetitionEnvironment& other)
    : config_(other.config_),
      rng_(other.rng_),
      channel_(other.channel_),
      kind_(other.kind_),
      n_(other.n_),
      jam_(other.jam_ ? other.jam_->clone() : nullptr) {}

CompetitionEnvironment& CompetitionEnvironment::operator=(
    const CompetitionEnvironment& other) {
  if (this != &other) {
    config_ = other.config_;
    rng_ = other.rng_;
    channel_ = other.channel_;
    kind_ = other.kind_;
    n_ = other.n_;
    jam_ = other.jam_ ? other.jam_->clone() : nullptr;
  }
  return *this;
}

void CompetitionEnvironment::reset() {
  channel_ = 0;
  kind_ = HiddenKind::kCounting;
  n_ = 1;
  if (jam_) jam_->reset();
}

void CompetitionEnvironment::save_state(io::ByteWriter& out) const {
  // Config digest first: every field that shapes the trajectory.
  out.i32(config_.num_channels);
  out.i32(config_.channels_per_sweep);
  out.f64_vec(config_.tx_levels);
  out.f64_vec(config_.jam_levels);
  out.u8(config_.mode == JammerPowerMode::kMaxPower ? 0 : 1);
  out.f64(config_.loss_jam);
  out.f64(config_.loss_hop);
  out.u64(config_.seed);
  config_.jammer.encode(out);
  // Dynamic state.
  out.str(rng_.serialize_state());
  out.i32(channel_);
  out.u8(static_cast<std::uint8_t>(kind_));
  out.i32(n_);
  if (jam_) jam_->save_state(out);
}

void CompetitionEnvironment::load_state(io::ByteReader& in) {
  const auto mismatch = [](const std::string& what) -> io::IoError {
    return io::IoError(io::ErrorKind::kStateMismatch,
                       "checkpoint EnvironmentConfig differs in " + what);
  };
  if (in.i32() != config_.num_channels) throw mismatch("num_channels");
  if (in.i32() != config_.channels_per_sweep) {
    throw mismatch("channels_per_sweep");
  }
  if (in.f64_vec() != config_.tx_levels) throw mismatch("tx_levels");
  if (in.f64_vec() != config_.jam_levels) throw mismatch("jam_levels");
  if (in.u8() != (config_.mode == JammerPowerMode::kMaxPower ? 0 : 1)) {
    throw mismatch("mode");
  }
  if (in.f64() != config_.loss_jam) throw mismatch("loss_jam");
  if (in.f64() != config_.loss_hop) throw mismatch("loss_hop");
  if (in.u64() != config_.seed) throw mismatch("seed");
  if (jammer::JammerSpec::decode(in) != config_.jammer) {
    throw mismatch("jammer");
  }

  const std::string rng_text = in.str();
  Rng rng;
  try {
    rng.restore_state(rng_text);
  } catch (const CheckFailure&) {
    throw io::IoError(io::ErrorKind::kBadPayload, "environment RNG state");
  }
  const int channel = in.i32();
  if (channel < 0 || channel >= config_.num_channels) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "environment channel out of range");
  }
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(HiddenKind::kJ)) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "environment hidden kind out of range");
  }
  const int n = in.i32();
  const HiddenKind hidden = static_cast<HiddenKind>(kind);
  const int max_n = std::max(config_.sweep_cycle() - 1, 1);
  if (hidden == HiddenKind::kCounting && (n < 1 || n > max_n)) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "environment hidden counter out of range");
  }
  std::unique_ptr<jammer::Jammer> jam;
  if (jam_) {
    jam = jam_->clone();
    jam->load_state(in);
  }

  rng_ = rng;
  channel_ = channel;
  kind_ = hidden;
  n_ = n;
  if (jam) jam_ = std::move(jam);
}

EnvStep CompetitionEnvironment::step(int channel, std::size_t power_index) {
  CTJ_CHECK_MSG(channel >= 0 && channel < config_.num_channels,
                "channel " << channel << " out of range");
  CTJ_CHECK(power_index < config_.num_power_levels());

  const bool hop = channel != channel_;
  // A hop only escapes the jammer when it leaves the m-channel group the
  // jammer's (Wi-Fi-wide) emission covers; hopping inside the group pays
  // L_H without changing the jamming odds.
  const bool effective_hop =
      channel / config_.channels_per_sweep !=
      channel_ / config_.channels_per_sweep;
  const int N = config_.sweep_cycle();

  HiddenKind next_kind = HiddenKind::kCounting;
  int next_n = 1;
  if (jam_) {
    // Behavioural mode: the live adversary senses/emits for real and the
    // outcome is the actual power duel against its reported emission. The
    // hidden n is bookkeeping only (consecutive unjammed slots, capped at
    // the kernel's N − 1 range) so hidden-state inspection stays meaningful.
    const jammer::JammerSlotReport report = jam_->step(channel);
    if (report.hit) {
      next_kind = config_.tx_levels[power_index] >= report.power
                      ? HiddenKind::kTj
                      : HiddenKind::kJ;
    } else {
      next_kind = HiddenKind::kCounting;
      next_n = kind_ == HiddenKind::kCounting
                   ? std::min(n_ + 1, std::max(N - 1, 1))
                   : 1;
    }
  } else if (kind_ == HiddenKind::kCounting) {
    const double q = config_.success_prob(power_index);
    if (!effective_hop) {
      // Cases 1–2: the sweeping jammer finds the victim with hazard
      // 1/(N − n); survival of the attempt depends on the power duel.
      const double p_found = 1.0 / static_cast<double>(N - n_);
      if (rng_.bernoulli(p_found)) {
        next_kind = rng_.bernoulli(q) ? HiddenKind::kTj : HiddenKind::kJ;
      } else {
        next_kind = HiddenKind::kCounting;
        next_n = n_ + 1;
        CTJ_CHECK(next_n <= N - 1);
      }
    } else {
      // Cases 3–4: hopping lands in the jammer's next swept group with
      // probability (N−n−1) / ((N−1)(N−n)).
      const double r = static_cast<double>(N - n_ - 1) /
                       (static_cast<double>(N - 1) * static_cast<double>(N - n_));
      if (rng_.bernoulli(r)) {
        next_kind = rng_.bernoulli(q) ? HiddenKind::kTj : HiddenKind::kJ;
      } else {
        next_kind = HiddenKind::kCounting;
        next_n = 1;
      }
    }
  } else {
    const double q = config_.success_prob(power_index);
    if (!effective_hop) {
      // Case 5: the jammer dwells; only the power duel decides.
      next_kind = rng_.bernoulli(q) ? HiddenKind::kTj : HiddenKind::kJ;
    } else {
      // Case 6: escaping a dwelling jammer always works for one slot.
      next_kind = HiddenKind::kCounting;
      next_n = 1;
    }
  }

  kind_ = next_kind;
  n_ = next_kind == HiddenKind::kCounting ? next_n : 0;
  channel_ = channel;

  EnvStep result;
  result.hopped = hop;
  result.channel = channel;
  switch (next_kind) {
    case HiddenKind::kCounting: result.outcome = SlotOutcome::kClear; break;
    case HiddenKind::kTj: result.outcome = SlotOutcome::kJammedSurvived; break;
    case HiddenKind::kJ: result.outcome = SlotOutcome::kJammedFailed; break;
  }
  result.success = result.outcome != SlotOutcome::kJammedFailed;
  result.reward = -config_.tx_levels[power_index] -
                  (hop ? config_.loss_hop : 0.0) -
                  (result.success ? 0.0 : config_.loss_jam);
  return result;
}

}  // namespace ctj::core
