// The anti-jamming scheme interface.
//
// A scheme lives at the hub: at the start of every slot it picks the channel
// and transmit power level for the coming slot, and after the slot it
// receives feedback about how the transmission went. The same interface
// drives both the slot-level competition environment (Figs. 6–8) and the
// field-experiment simulator (Figs. 9–11).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace ctj::core {

/// Decision for the next slot.
struct SchemeDecision {
  int channel = 0;
  std::size_t power_index = 0;
};

/// What the hub learned about the slot after running it.
struct SlotFeedback {
  bool success = false;  // data got through (outcome != J)
  bool jammed = false;   // a jamming emission hit the slot (T_J or J)
  int channel = 0;
  std::size_t power_index = 0;
  double reward = 0.0;   // Eq. (5) reward, when the caller computes one
};

class AntiJammingScheme {
 public:
  virtual ~AntiJammingScheme() = default;

  /// Pick the channel and power level for the next slot.
  virtual SchemeDecision decide() = 0;

  /// Deliver the outcome of the slot that used the last decision.
  virtual void feedback(const SlotFeedback& feedback) = 0;

  virtual std::string name() const = 0;

  /// Hub-side wall-clock cost of decide(), used by the field timing model
  /// (the DQN takes ~9 ms on the paper's hardware; the baselines are cheap).
  virtual double decision_time_s() const { return 0.5e-3; }

  /// Forget all per-run state (channel, detectors, observation history).
  virtual void reset() = 0;
};

}  // namespace ctj::core
