#include "core/mdp_scheme.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ctj::core {
namespace {

mdp::AntijamParams normalize(mdp::AntijamParams params) {
  if (params.tx_levels.empty() || params.jam_levels.empty()) {
    auto defaults = mdp::AntijamParams::defaults();
    if (params.tx_levels.empty()) params.tx_levels = defaults.tx_levels;
    if (params.jam_levels.empty()) params.jam_levels = defaults.jam_levels;
  }
  return params;
}

}  // namespace

MdpOracleScheme::MdpOracleScheme(Config config)
    : config_{normalize(std::move(config.params)), config.num_channels,
              config.channels_per_group, config.seed},
      rng_(config_.seed),
      model_(config_.params),
      solution_(mdp::solve(model_)),
      threshold_(mdp::threshold_n_star(model_, solution_)) {
  CTJ_CHECK(config_.num_channels >= 2);
  reset();
}

void MdpOracleScheme::reset() {
  channel_ = 0;
  n_ = 1;
  in_tj_ = false;
  in_j_ = false;
  last_was_hop_ = false;
}

std::size_t MdpOracleScheme::current_state() const {
  if (in_j_) return model_.state_j();
  if (in_tj_) return model_.state_tj();
  const int capped =
      std::min(n_, config_.params.sweep_cycle - 1);
  return model_.state_n(std::max(1, capped));
}

SchemeDecision MdpOracleScheme::decide() {
  const std::size_t action = solution_.policy[current_state()];
  SchemeDecision decision;
  decision.power_index = model_.power_index_of(action);
  last_was_hop_ = model_.is_hop(action);
  if (last_was_hop_) {
    // Escape the whole m-channel group the jammer covers (fall back to any
    // other channel when the band is a single group).
    const int m = std::max(1, config_.channels_per_group);
    const bool multi_group = config_.num_channels > m;
    int next = channel_;
    do {
      next = rng_.uniform_int(0, config_.num_channels - 1);
    } while (multi_group ? (next / m == channel_ / m) : (next == channel_));
    channel_ = next;
  }
  decision.channel = channel_;
  return decision;
}

void MdpOracleScheme::feedback(const SlotFeedback& feedback) {
  if (!feedback.success) {
    in_j_ = true;
    in_tj_ = false;
    return;
  }
  if (feedback.jammed) {
    in_tj_ = true;
    in_j_ = false;
    return;
  }
  // Clean success: counting state advances (or restarts after a hop).
  if (in_tj_ || in_j_ || last_was_hop_) {
    n_ = 1;
  } else {
    n_ = std::min(n_ + 1, config_.params.sweep_cycle - 1);
  }
  in_tj_ = false;
  in_j_ = false;
}

}  // namespace ctj::core
