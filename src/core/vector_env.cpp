#include "core/vector_env.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ctj::core {

namespace {

EnvironmentConfig replica_config(EnvironmentConfig config, std::size_t r) {
  config.seed += static_cast<std::uint64_t>(r);
  return config;
}

}  // namespace

VectorEnv::VectorEnv(const EnvironmentConfig& config, std::size_t replicas)
    : config_(config) {
  CTJ_CHECK_MSG(replicas > 0, "a VectorEnv needs at least one replica");
  envs_.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    envs_.emplace_back(replica_config(config, r));
  }
  rewards_.resize(replicas, 0.0);
  successes_.resize(replicas, 0);
  jammed_.resize(replicas, 0);
  hopped_.resize(replicas, 0);
  channels_.resize(replicas, 0);
  outcomes_.resize(replicas, SlotOutcome::kClear);
}

void VectorEnv::step(std::span<const int> channels,
                     std::span<const std::size_t> power_indices) {
  CTJ_CHECK(channels.size() == envs_.size());
  CTJ_CHECK(power_indices.size() == envs_.size());
  for (std::size_t r = 0; r < envs_.size(); ++r) {
    const EnvStep step = envs_[r].step(channels[r], power_indices[r]);
    rewards_[r] = step.reward;
    successes_[r] = step.success ? 1 : 0;
    jammed_[r] = step.outcome != SlotOutcome::kClear ? 1 : 0;
    hopped_[r] = step.hopped ? 1 : 0;
    channels_[r] = step.channel;
    outcomes_[r] = step.outcome;
  }
}

CompetitionEnvironment& VectorEnv::env(std::size_t r) {
  CTJ_CHECK(r < envs_.size());
  return envs_[r];
}

const CompetitionEnvironment& VectorEnv::env(std::size_t r) const {
  CTJ_CHECK(r < envs_.size());
  return envs_[r];
}

void VectorEnv::reset() {
  for (auto& env : envs_) env.reset();
}

void VectorEnv::save_state(io::ByteWriter& out) const {
  out.u64(envs_.size());
  for (const auto& env : envs_) env.save_state(out);
}

void VectorEnv::load_state(io::ByteReader& in) {
  const std::uint64_t replicas = in.u64();
  if (replicas != envs_.size()) {
    throw io::IoError(io::ErrorKind::kStateMismatch,
                      "checkpoint has " + std::to_string(replicas) +
                          " environment replicas, VectorEnv has " +
                          std::to_string(envs_.size()));
  }
  // Restore into a copy so a failure on any replica leaves all unchanged.
  std::vector<CompetitionEnvironment> restored = envs_;
  for (auto& env : restored) env.load_state(in);
  envs_ = std::move(restored);
}

ObservationWindows::ObservationWindows(std::size_t replicas,
                                       std::size_t history, int num_channels,
                                       std::size_t num_power_levels)
    : replicas_(replicas),
      history_(history),
      num_channels_(num_channels),
      num_power_levels_(num_power_levels) {
  CTJ_CHECK(replicas > 0);
  CTJ_CHECK(history > 0);
  CTJ_CHECK(num_channels >= 1);
  CTJ_CHECK(num_power_levels >= 1);
  reset();
}

void ObservationWindows::reset() {
  states_.resize(replicas_, 3 * history_, 0.0);
}

void ObservationWindows::push(std::size_t r, bool success, int channel,
                              std::size_t power_index) {
  CTJ_CHECK(r < replicas_);
  double* row = states_.data() + r * states_.cols();
  // Slide left by one slot record and append the new one — the same window
  // DqnScheme keeps in its deque, flattened oldest-first.
  std::copy(row + 3, row + states_.cols(), row);
  double* rec = row + 3 * (history_ - 1);
  rec[0] = success ? 1.0 : 0.0;
  rec[1] = num_channels_ <= 1 ? 0.0
                              : static_cast<double>(channel) /
                                    static_cast<double>(num_channels_ - 1);
  rec[2] = num_power_levels_ <= 1
               ? 0.0
               : static_cast<double>(power_index) /
                     static_cast<double>(num_power_levels_ - 1);
}

std::span<const double> ObservationWindows::row(std::size_t r) const {
  CTJ_CHECK(r < replicas_);
  return {states_.data() + r * states_.cols(), states_.cols()};
}

void ObservationWindows::save_state(io::ByteWriter& out) const {
  out.u64(replicas_);
  out.u64(history_);
  out.i32(num_channels_);
  out.u64(num_power_levels_);
  out.u64(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) out.f64(states_.data()[i]);
}

void ObservationWindows::load_state(io::ByteReader& in) {
  const auto mismatch = [](const std::string& what) -> io::IoError {
    return io::IoError(io::ErrorKind::kStateMismatch,
                       "checkpoint observation windows differ in " + what);
  };
  if (in.u64() != replicas_) throw mismatch("replica count");
  if (in.u64() != history_) throw mismatch("history length");
  if (in.i32() != num_channels_) throw mismatch("channel count");
  if (in.u64() != num_power_levels_) throw mismatch("power level count");
  const std::uint64_t size = in.u64();
  if (size != states_.size()) throw mismatch("window matrix size");
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(size));
  for (std::uint64_t i = 0; i < size; ++i) values.push_back(in.f64());
  std::copy(values.begin(), values.end(), states_.data());
}

}  // namespace ctj::core
