#include "core/field.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ctj::core {

FieldConfig FieldConfig::defaults() {
  FieldConfig c;
  c.jammer = jammer::JammerSpec::defaults();
  for (int v = 6; v <= 15; ++v) c.tx_levels.push_back(v);
  return c;
}

FieldExperiment::FieldExperiment(FieldConfig config, AntiJammingScheme& scheme)
    : config_(std::move(config)),
      network_(config_.network),
      jammer_(jammer::make_jammer(config_.jammer, config_.seed)),
      scheme_(scheme) {
  CTJ_CHECK(!config_.tx_levels.empty());
  CTJ_CHECK(config_.jammer_slot_s > 0.0);
  CTJ_CHECK(config_.network.num_channels == config_.jammer.num_channels);
}

std::pair<double, double> FieldExperiment::advance_jammer(int victim_channel) {
  const double slot = config_.network.slot_duration_s;
  const double t_end = now_s_ + slot;
  double hit_time = 0.0;
  double power = 0.0;
  double t = now_s_;
  const int m = config_.jammer.channels_per_sweep;
  while (t < t_end) {
    if (!report_valid_ || jammer_slot_end_s_ <= t) {
      current_report_ = jammer_->step(victim_channel);
      report_valid_ = true;
      // Align the jammer slot grid: start a fresh jammer slot at t.
      jammer_slot_end_s_ =
          (jammer_slot_end_s_ <= t) ? t + config_.jammer_slot_s
                                    : jammer_slot_end_s_;
    }
    const double seg_end = std::min(t_end, jammer_slot_end_s_);
    // The jammer transmits only when it has locked onto a victim; the
    // emission covers its m-channel group, so it still hits the victim if
    // the victim's current channel falls inside that group.
    const int group_lo = current_report_.jammed_group_start;
    const bool covers = victim_channel >= group_lo && victim_channel < group_lo + m;
    if (current_report_.hit && covers) {
      hit_time += seg_end - t;
      power = std::max(power, current_report_.power);
    }
    t = seg_end;
    if (t >= jammer_slot_end_s_) {
      report_valid_ = false;
      jammer_slot_end_s_ += config_.jammer_slot_s;
      jammer_slot_end_s_ = std::max(jammer_slot_end_s_, t);
    }
  }
  now_s_ = t_end;
  return {hit_time / slot, power};
}

net::SlotStats FieldExperiment::run_slot() {
  const SchemeDecision decision = scheme_.decide();
  CTJ_CHECK(decision.power_index < config_.tx_levels.size());

  std::optional<net::ActiveJamming> jamming;
  if (config_.jammer_enabled) {
    const auto [duty, power] = advance_jammer(decision.channel);
    if (duty > 0.0) {
      // The emission blankets the victim's whole m-channel group (the
      // jammer only transmits while locked onto the victim, so the covered
      // group is the victim's own).
      const int m = config_.jammer.channels_per_sweep;
      net::ActiveJamming jam;
      jam.channel = (decision.channel / m) * m;
      jam.width = m;
      jam.type = config_.signal_type;
      jam.tx_power_dbm = net::jam_level_to_dbm(power);
      jam.distance_m = config_.jammer_distance_m;
      jam.duty_cycle = duty;
      jamming = jam;
    }
  } else {
    now_s_ += config_.network.slot_duration_s;
  }

  net::SlotDecision net_decision;
  net_decision.hop = decision.channel != previous_channel_;
  net_decision.channel = decision.channel;
  net_decision.tx_power_dbm =
      net::tx_level_to_dbm(config_.tx_levels[decision.power_index]);
  net_decision.decision_time_s = scheme_.decision_time_s();

  const net::SlotStats stats = network_.run_slot(net_decision, jamming);
  negotiation_.add(stats.negotiation_s);

  SlotFeedback feedback;
  feedback.success = stats.success;
  feedback.jammed = stats.jammed;
  feedback.channel = decision.channel;
  feedback.power_index = decision.power_index;
  feedback.reward = -config_.tx_levels[decision.power_index] -
                    (net_decision.hop ? config_.loss_hop : 0.0) -
                    (stats.success ? 0.0 : config_.loss_jam);
  scheme_.feedback(feedback);

  metrics_.record(stats.success, net_decision.hop, decision.power_index > 0,
                  feedback.reward);
  previous_channel_ = decision.channel;
  return stats;
}

FieldResult FieldExperiment::run(std::size_t slots) {
  CTJ_CHECK(slots > 0);
  for (std::size_t i = 0; i < slots; ++i) run_slot();
  FieldResult result;
  result.goodput_packets_per_slot = network_.goodput_packets_per_slot();
  result.utilization = network_.mean_utilization();
  result.metrics = metrics_.report();
  result.mean_negotiation_s = negotiation_.empty() ? 0.0 : negotiation_.mean();
  result.slots = network_.slots_run();
  return result;
}

}  // namespace ctj::core
