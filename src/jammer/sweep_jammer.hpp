// The behavioural cross-technology jammer of Sec. II.C.
//
// Time-slotted frequency sweeping: each slot the jammer senses one group of
// m consecutive ZigBee channels (m = 4 for a Wi-Fi jammer, whose 20 MHz band
// covers 4 ZigBee channels). Within a sweep cycle it visits every group once
// in random order, so a stationary victim that has survived n slots is found
// in the next slot with probability 1/(⌈K/m⌉ − n) — exactly the hazard rate
// the MDP of Sec. III.A assumes. Once the victim is found the jammer locks on
// and jams every slot, verifying at each slot start (by eavesdropping on the
// victim's traffic/ACKs) that the victim is still there. When the victim
// hops away, the jammer spends that slot discovering the loss (the escape
// slot is always safe — Case 6 of the MDP) and then resumes sweeping over
// the ⌈K/m⌉ − 1 groups it has not just ruled out, so the first post-escape
// hazard is 1/(⌈K/m⌉ − 1), exactly the MDP's state-n = 1 hazard. On a
// single-group network (⌈K/m⌉ = 1) there is no other group to rule out, so
// the post-escape refill degenerates to the full (one-group) cycle instead.
#pragma once

#include <vector>

#include "common/modes.hpp"
#include "common/rng.hpp"
#include "jammer/jammer.hpp"

namespace ctj::jammer {

struct SweepJammerConfig {
  int num_channels = 16;       // K: ZigBee channels on the 2.4 GHz band
  int channels_per_sweep = 4;  // m: channels covered per slot
  /// Jamming power levels L^J (abstract units matching the MDP's losses).
  std::vector<double> power_levels;
  JammerPowerMode mode = JammerPowerMode::kMaxPower;

  /// Paper defaults: K = 16, m = 4, L^J in [11, 20], max-power mode.
  static SweepJammerConfig defaults();

  int sweep_cycle() const;  // ⌈K/m⌉
};

class SweepJammer : public Jammer {
 public:
  explicit SweepJammer(SweepJammerConfig config, std::uint64_t seed = 7);

  /// Advance one slot. `victim_channel` is the channel the victim transmits
  /// on this slot (0-based index); the jammer only learns it by sweeping
  /// over it or by already being locked onto it.
  JammerSlotReport step(int victim_channel) override;

  bool locked() const override { return locked_channel_ >= 0; }
  int locked_channel() const { return locked_channel_; }
  const SweepJammerConfig& config() const { return config_; }

  /// Restart the sweep from scratch (e.g. when the jammer reboots).
  void reset() override;

  std::string archetype() const override { return "sweep"; }
  int num_channels() const override { return config_.num_channels; }
  int channels_per_sweep() const override { return config_.channels_per_sweep; }
  std::unique_ptr<Jammer> clone() const override;
  void save_state(io::ByteWriter& out) const override;
  void load_state(io::ByteReader& in) override;

 private:
  int group_of(int channel) const { return channel / config_.channels_per_sweep; }
  double pick_power();
  /// Start a fresh shuffled cycle over all groups except `excluded_group`
  /// (−1 for none: a cold start or a cycle that ran dry without a find).
  void refill_sweep_order(int excluded_group = -1);

  SweepJammerConfig config_;
  Rng rng_;
  int locked_channel_ = -1;
  std::vector<int> pending_groups_;  // groups not yet visited this cycle
};

}  // namespace ctj::jammer
