// Adaptive pattern-tracking jammer (extension beyond the paper's sweep
// model, in the spirit of the DeepJam-style attackers its related-work
// section cites): instead of sweeping blindly, it keeps a per-group visit
// histogram of where it has observed the victim and, with probability
// `exploit_probability`, parks on the historically most-visited group —
// punishing anti-jamming schemes with predictable channel preferences.
//
// Used by the robustness example/tests: a scheme that merely cycles a few
// favourite channels collapses against this attacker, while the ε-greedy
// DQN policy keeps its channel distribution flat enough to survive.
#pragma once

#include <vector>

#include "common/modes.hpp"
#include "common/rng.hpp"
#include "jammer/sweep_jammer.hpp"

namespace ctj::jammer {

struct AdaptiveJammerConfig {
  int num_channels = 16;
  int channels_per_sweep = 4;
  std::vector<double> power_levels;
  JammerPowerMode mode = JammerPowerMode::kMaxPower;
  /// Probability of exploiting the visit histogram instead of sweeping.
  double exploit_probability = 0.6;
  /// Exponential forgetting applied to the histogram each slot.
  double decay = 0.995;

  static AdaptiveJammerConfig defaults();
};

class AdaptiveJammer : public Jammer {
 public:
  explicit AdaptiveJammer(AdaptiveJammerConfig config, std::uint64_t seed = 17);

  /// One slot: senses/attacks and learns from the victim's position.
  JammerSlotReport step(int victim_channel) override;

  /// Histogram mass of the group currently believed most popular.
  double top_group_weight() const;
  int most_visited_group() const;

  const AdaptiveJammerConfig& config() const { return config_; }
  void reset() override;

  std::string archetype() const override { return "adaptive"; }
  int num_channels() const override { return config_.num_channels; }
  int channels_per_sweep() const override { return config_.channels_per_sweep; }
  bool locked() const override { return sweeper_.locked(); }
  std::unique_ptr<Jammer> clone() const override;
  /// Serializes the exploration/exploitation RNG, the nested sweeper state
  /// (its RNG included) and the visit histogram — everything a mid-run
  /// resume needs to continue bit-identically.
  void save_state(io::ByteWriter& out) const override;
  void load_state(io::ByteReader& in) override;

 private:
  int group_of(int channel) const { return channel / config_.channels_per_sweep; }
  double pick_power();

  AdaptiveJammerConfig config_;
  Rng rng_;
  SweepJammer sweeper_;          // fallback explorer
  std::vector<double> visits_;   // per-group histogram
};

}  // namespace ctj::jammer
