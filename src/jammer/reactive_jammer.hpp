// Reactive ACK-triggered jammer (registry key "reactive").
//
// The classic energy-stealthy adversary from the reactive-jamming
// literature (the attacker "Borrowing Arrows with Thatched Boats",
// arXiv:1912.11170, is built to deceive): instead of sweeping with its
// transmitter on, it listens silently, cycling its receiver over the
// ⌈K/m⌉ channel groups one per slot. The moment it overhears the victim's
// traffic (data + link-layer ACKs) in the listened group it opens fire on
// that group and dwells there, refreshing the dwell as long as the victim
// keeps showing up. When the victim escapes, the jammer cannot tell
// immediately — ACK silence could be a backoff — so it keeps blanketing the
// vacated group until `dwell_slots` slots pass without a hit, then goes
// back to silent listening. Power is drawn (and the power RNG advanced)
// only on actual hits, keeping the emission pattern stealthy.
#pragma once

#include <vector>

#include "common/modes.hpp"
#include "common/rng.hpp"
#include "jammer/jammer.hpp"

namespace ctj::jammer {

struct ReactiveJammerConfig {
  int num_channels = 16;
  int channels_per_sweep = 4;
  std::vector<double> power_levels;
  JammerPowerMode mode = JammerPowerMode::kMaxPower;
  /// Slots the jammer keeps blanketing a triggered group after the last
  /// overheard victim transmission before falling back to listening.
  int dwell_slots = 4;

  static ReactiveJammerConfig defaults();

  int sweep_cycle() const;  // ⌈K/m⌉
};

class ReactiveJammer : public Jammer {
 public:
  explicit ReactiveJammer(ReactiveJammerConfig config, std::uint64_t seed = 23);

  JammerSlotReport step(int victim_channel) override;
  void reset() override;

  std::string archetype() const override { return "reactive"; }
  int num_channels() const override { return config_.num_channels; }
  int channels_per_sweep() const override { return config_.channels_per_sweep; }
  /// Locked while dwelling on a triggered group.
  bool locked() const override { return dwell_left_ > 0; }
  const ReactiveJammerConfig& config() const { return config_; }

  std::unique_ptr<Jammer> clone() const override;
  void save_state(io::ByteWriter& out) const override;
  void load_state(io::ByteReader& in) override;

 private:
  int group_of(int channel) const { return channel / config_.channels_per_sweep; }
  double pick_power();

  ReactiveJammerConfig config_;
  Rng rng_;
  int listen_cursor_ = 0;   // group the receiver parks on next listen slot
  int target_group_ = -1;   // group being blanketed while dwelling
  int dwell_left_ = 0;      // remaining blanket slots (0 = listening)
};

}  // namespace ctj::jammer
