#include "jammer/detector.hpp"

#include "common/check.hpp"

namespace ctj::jammer {

ErrorRateDetector::ErrorRateDetector(std::size_t window, double threshold)
    : window_(window), threshold_(threshold) {
  CTJ_CHECK(window > 0);
  CTJ_CHECK(threshold > 0.0 && threshold <= 1.0);
}

void ErrorRateDetector::record(bool failed) {
  history_.push_back(failed);
  if (failed) ++failures_;
  if (history_.size() > window_) {
    if (history_.front()) --failures_;
    history_.pop_front();
  }
}

double ErrorRateDetector::error_rate() const {
  if (history_.empty()) return 0.0;
  return static_cast<double>(failures_) / static_cast<double>(history_.size());
}

bool ErrorRateDetector::jammed() const {
  return !history_.empty() && error_rate() >= threshold_;
}

void ErrorRateDetector::reset() {
  history_.clear();
  failures_ = 0;
}

void ErrorRateDetector::save_state(io::ByteWriter& out) const {
  out.u64(history_.size());
  for (bool failed : history_) out.u8(failed ? 1 : 0);
}

void ErrorRateDetector::load_state(io::ByteReader& in) {
  const std::uint64_t count = in.u64();
  if (count > window_) {
    throw io::IoError(io::ErrorKind::kStateMismatch,
                      "detector history of " + std::to_string(count) +
                          " slots exceeds window " + std::to_string(window_));
  }
  std::deque<bool> history;
  std::size_t failures = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool failed = in.u8() != 0;
    history.push_back(failed);
    if (failed) ++failures;
  }
  history_ = std::move(history);
  failures_ = failures;
}

}  // namespace ctj::jammer
