#include "jammer/detector.hpp"

#include "common/check.hpp"

namespace ctj::jammer {

ErrorRateDetector::ErrorRateDetector(std::size_t window, double threshold)
    : window_(window), threshold_(threshold) {
  CTJ_CHECK(window > 0);
  CTJ_CHECK(threshold > 0.0 && threshold <= 1.0);
}

void ErrorRateDetector::record(bool failed) {
  history_.push_back(failed);
  if (failed) ++failures_;
  if (history_.size() > window_) {
    if (history_.front()) --failures_;
    history_.pop_front();
  }
}

double ErrorRateDetector::error_rate() const {
  if (history_.empty()) return 0.0;
  return static_cast<double>(failures_) / static_cast<double>(history_.size());
}

bool ErrorRateDetector::jammed() const {
  return !history_.empty() && error_rate() >= threshold_;
}

void ErrorRateDetector::reset() {
  history_.clear();
  failures_ = 0;
}

}  // namespace ctj::jammer
