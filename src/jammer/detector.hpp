// Victim-side jamming detector (Sec. II.C.2): the hub watches its error rate
// and declares the channel jammed when the failure ratio over a sliding
// window exceeds a threshold. Used by the Passive-FH baseline, which only
// reacts after this detector fires.
#pragma once

#include <cstddef>
#include <deque>

#include "io/bytes.hpp"

namespace ctj::jammer {

class ErrorRateDetector {
 public:
  /// `window`: number of recent slots considered; `threshold`: failure ratio
  /// in (0, 1] at which the channel is declared jammed.
  ErrorRateDetector(std::size_t window, double threshold);

  /// Record one slot outcome.
  void record(bool failed);

  /// Current failure ratio over the window (0 when empty).
  double error_rate() const;

  /// True once the windowed error rate is >= the threshold.
  bool jammed() const;

  /// Forget history (after hopping to a fresh channel).
  void reset();

  std::size_t window() const { return window_; }

  /// Checkpoint-format serialization of the sliding outcome window (the
  /// window size and threshold are constructor parameters and travel in the
  /// owning scheme's config digest). load_state throws io::IoError
  /// kStateMismatch when the stored history exceeds this detector's window,
  /// leaving the detector unchanged.
  void save_state(io::ByteWriter& out) const;
  void load_state(io::ByteReader& in);

 private:
  std::size_t window_;
  double threshold_;
  std::deque<bool> history_;
  std::size_t failures_ = 0;
};

}  // namespace ctj::jammer
