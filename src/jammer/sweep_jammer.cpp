#include "jammer/sweep_jammer.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"

namespace ctj::jammer {

SweepJammerConfig SweepJammerConfig::defaults() {
  SweepJammerConfig c;
  c.num_channels = 16;
  c.channels_per_sweep = 4;
  for (int v = 11; v <= 20; ++v) c.power_levels.push_back(v);
  c.mode = JammerPowerMode::kMaxPower;
  return c;
}

int SweepJammerConfig::sweep_cycle() const {
  CTJ_CHECK(num_channels > 0 && channels_per_sweep > 0);
  return (num_channels + channels_per_sweep - 1) / channels_per_sweep;
}

SweepJammer::SweepJammer(SweepJammerConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  CTJ_CHECK(config_.num_channels > 0);
  CTJ_CHECK(config_.channels_per_sweep > 0 &&
            config_.channels_per_sweep <= config_.num_channels);
  CTJ_CHECK_MSG(!config_.power_levels.empty(), "jammer needs power levels");
  refill_sweep_order();
}

void SweepJammer::reset() {
  locked_channel_ = -1;
  pending_groups_.clear();
  refill_sweep_order();
}

void SweepJammer::refill_sweep_order(int excluded_group) {
  const int groups = config_.sweep_cycle();
  pending_groups_.clear();
  pending_groups_.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    if (g != excluded_group) pending_groups_.push_back(g);
  }
  rng_.shuffle(pending_groups_);
}

double SweepJammer::pick_power() {
  if (config_.mode == JammerPowerMode::kMaxPower) {
    return *std::max_element(config_.power_levels.begin(),
                             config_.power_levels.end());
  }
  return rng_.choice(config_.power_levels);
}

JammerSlotReport SweepJammer::step(int victim_channel) {
  CTJ_CHECK_MSG(victim_channel >= 0 && victim_channel < config_.num_channels,
                "victim channel " << victim_channel << " out of range");
  JammerSlotReport report;

  // Locked: verify the victim is still on the channel (eavesdropping at the
  // slot start) and jam if so. When the victim hopped away, this whole slot
  // goes into discovering the loss — the escape slot is always safe for the
  // victim (Case 6 / Eq. (14) of the MDP) — and the next sweep cycle skips
  // the vacated group, which the jammer now knows is empty. That makes the
  // first post-escape hazard 1/(⌈K/m⌉ − 1), matching the MDP's state n = 1.
  if (locked()) {
    const int vacated_group = group_of(locked_channel_);
    if (vacated_group == group_of(victim_channel)) {
      locked_channel_ = victim_channel;
      report.hit = true;
      report.emitting = true;
      report.power = pick_power();
      report.jammed_group_start = vacated_group * config_.channels_per_sweep;
      return report;
    }
    locked_channel_ = -1;
    // Single-group network (⌈K/m⌉ = 1, i.e. K ≤ m): the 1/(⌈K/m⌉ − 1)
    // exclusion hazard is ill-defined — the vacated group IS the whole
    // spectrum, and excluding it would leave the jammer with nothing to
    // sweep forever. The victim cannot actually leave the group, so refill
    // with the full cycle; the next slot re-finds it with certainty.
    const int exclude =
        config_.sweep_cycle() == 1 ? -1 : vacated_group;
    refill_sweep_order(exclude);
    report.jammed_group_start = vacated_group * config_.channels_per_sweep;
    return report;
  }

  // Sweeping: visit the next unvisited group of this cycle.
  if (pending_groups_.empty()) refill_sweep_order();
  const int group = pending_groups_.back();
  pending_groups_.pop_back();
  report.jammed_group_start = group * config_.channels_per_sweep;

  if (group == group_of(victim_channel)) {
    // Found the victim: jam immediately and lock on.
    locked_channel_ = victim_channel;
    report.hit = true;
    report.emitting = true;
    report.power = pick_power();
  }
  return report;
}

std::unique_ptr<Jammer> SweepJammer::clone() const {
  return std::make_unique<SweepJammer>(*this);
}

void SweepJammer::save_state(io::ByteWriter& out) const {
  out.str(rng_.serialize_state());
  out.i32(locked_channel_);
  out.u64(pending_groups_.size());
  for (int g : pending_groups_) out.i32(g);
}

void SweepJammer::load_state(io::ByteReader& in) {
  const std::string rng_state = in.str();
  const int locked_channel = in.i32();
  const std::uint64_t pending = in.u64();
  const int groups = config_.sweep_cycle();
  if (locked_channel < -1 || locked_channel >= config_.num_channels) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "sweep jammer locked channel " +
                          std::to_string(locked_channel) + " out of range");
  }
  if (pending > static_cast<std::uint64_t>(groups)) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "sweep jammer pending list longer than the cycle");
  }
  std::vector<int> pending_groups;
  pending_groups.reserve(static_cast<std::size_t>(pending));
  for (std::uint64_t i = 0; i < pending; ++i) {
    const int g = in.i32();
    if (g < 0 || g >= groups) {
      throw io::IoError(io::ErrorKind::kBadPayload,
                        "sweep jammer pending group " + std::to_string(g) +
                            " out of range");
    }
    pending_groups.push_back(g);
  }
  Rng rng = rng_;
  try {
    rng.restore_state(rng_state);
  } catch (const CheckFailure& e) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      std::string("sweep jammer rng state: ") + e.what());
  }
  rng_ = rng;
  locked_channel_ = locked_channel;
  pending_groups_ = std::move(pending_groups);
}

}  // namespace ctj::jammer
