// Energy-budgeted duty-cycle jammer (registry key "duty_cycle").
//
// An energy-harvesting-constrained adversary (cf. arXiv:2512.15558): the
// jammer runs the same sweep/lock strategy as the paper's attacker but off
// a battery that recharges `recharge_per_slot` units per slot up to
// `energy_capacity`, with every jamming emission costing `emit_cost`. When
// the battery cannot afford an emission the radio powers down for the slot
// — the sweep clock freezes, the victim transmits unopposed — and the
// jammer wakes once it has recharged. With the defaults (capacity 12,
// cost 3, recharge 1) a locked-on jammer settles into roughly a one-third
// duty cycle. `emit_cost = 0` removes the constraint entirely, reducing the
// archetype to the plain sweep jammer (used by the conformance smoke).
#pragma once

#include "jammer/sweep_jammer.hpp"

namespace ctj::jammer {

struct DutyCycleJammerConfig {
  SweepJammerConfig sweep;          // the underlying sweep strategy
  double energy_capacity = 12.0;    // battery size (abstract energy units)
  double emit_cost = 3.0;           // energy per jamming emission
  double recharge_per_slot = 1.0;   // harvested energy per slot

  static DutyCycleJammerConfig defaults();
};

class DutyCycleJammer : public Jammer {
 public:
  explicit DutyCycleJammer(DutyCycleJammerConfig config,
                           std::uint64_t seed = 29);

  JammerSlotReport step(int victim_channel) override;
  void reset() override;

  std::string archetype() const override { return "duty_cycle"; }
  int num_channels() const override { return config_.sweep.num_channels; }
  int channels_per_sweep() const override {
    return config_.sweep.channels_per_sweep;
  }
  bool locked() const override { return core_.locked(); }
  double energy() const { return energy_; }
  const DutyCycleJammerConfig& config() const { return config_; }

  std::unique_ptr<Jammer> clone() const override;
  void save_state(io::ByteWriter& out) const override;
  void load_state(io::ByteReader& in) override;

 private:
  DutyCycleJammerConfig config_;
  SweepJammer core_;   // the sweep strategy the battery throttles
  double energy_;
};

}  // namespace ctj::jammer
