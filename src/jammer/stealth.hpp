// Stealthiness analysis (Sec. II.B, third bullet).
//
// Quantifies how detectable each jamming-signal type is to a victim that
// runs three standard monitors:
//  * energy detection — unexplained RSSI while the victim is not
//    transmitting. The smart cross-technology jammer emits only while the
//    victim is on the air, so this rarely fires for any type.
//  * frame anomaly detection — a conventional ZigBee jammer must send
//    well-formed ZigBee frames (or its chips do not land on the victim's
//    decoder); those frames parse as foreign traffic and are countable.
//    An EmuBee burst deliberately violates the frame format *after* the
//    preamble, so the receiver just stalls ("meaningless decoding") and
//    logs nothing actionable. Plain Wi-Fi never passes the preamble.
//  * error-rate detection — the generic fallback: the victim sees its PER
//    rise. Fires for any effective jammer, but attributes the loss to
//    "interference", not to a specific attacker.
#pragma once

#include "channel/link.hpp"
#include "common/rng.hpp"

namespace ctj::jammer {

struct StealthConfig {
  /// Probability an emission overlaps the victim's idle (CCA) window —
  /// small because the smart jammer reacts to the victim's own traffic.
  double idle_overlap_probability = 0.03;
  /// Probability a well-formed foreign frame is logged by the victim.
  double frame_log_probability = 0.9;
  /// Slots of observation used by the per-slot detection estimate.
  std::size_t window = 1;
};

struct DetectionReport {
  double p_energy = 0.0;       // per-slot energy-detector hit probability
  double p_frame = 0.0;        // per-slot frame-anomaly hit probability
  double p_error_rate = 0.0;   // per-slot error-rate-detector hit probability
  /// Combined per-slot probability that the victim can *attribute* the loss
  /// to a jammer (energy or frame evidence; error rate alone is ambiguous).
  double p_attributable = 0.0;
};

/// Analytic per-slot detectability of one jamming emission of the given
/// type, assuming the emission is strong enough to corrupt the slot
/// (`jam_effective` false means the emission lost the power duel and at most
/// the energy detector can fire).
DetectionReport analyze_detectability(channel::JammingSignalType type,
                                      bool jam_effective,
                                      const StealthConfig& config = {});

/// Monte-Carlo version over `slots` jammed slots; sanity-checks the analytic
/// probabilities and is what the stealth bench prints.
DetectionReport simulate_detectability(channel::JammingSignalType type,
                                       std::size_t slots, Rng& rng,
                                       const StealthConfig& config = {});

}  // namespace ctj::jammer
