#include "jammer/duty_cycle_jammer.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"

namespace ctj::jammer {

DutyCycleJammerConfig DutyCycleJammerConfig::defaults() {
  DutyCycleJammerConfig c;
  c.sweep = SweepJammerConfig::defaults();
  return c;
}

DutyCycleJammer::DutyCycleJammer(DutyCycleJammerConfig config,
                                 std::uint64_t seed)
    : config_(std::move(config)),
      core_(config_.sweep, seed),
      energy_(config_.energy_capacity) {
  CTJ_CHECK_MSG(config_.energy_capacity >= config_.emit_cost,
                "battery cannot even hold one emission");
  CTJ_CHECK(config_.emit_cost >= 0.0);
  CTJ_CHECK(config_.recharge_per_slot > 0.0);
}

void DutyCycleJammer::reset() {
  core_.reset();
  energy_ = config_.energy_capacity;
}

JammerSlotReport DutyCycleJammer::step(int victim_channel) {
  energy_ = std::min(config_.energy_capacity,
                     energy_ + config_.recharge_per_slot);
  // Radio off while the battery cannot afford an emission: no sensing, no
  // sweeping — the sweep clock freezes until the jammer can act on a find.
  if (energy_ < config_.emit_cost) {
    return JammerSlotReport{};
  }
  JammerSlotReport report = core_.step(victim_channel);
  if (report.hit) energy_ -= config_.emit_cost;
  return report;
}

std::unique_ptr<Jammer> DutyCycleJammer::clone() const {
  return std::make_unique<DutyCycleJammer>(*this);
}

void DutyCycleJammer::save_state(io::ByteWriter& out) const {
  core_.save_state(out);
  out.f64(energy_);
}

void DutyCycleJammer::load_state(io::ByteReader& in) {
  SweepJammer core = core_;
  core.load_state(in);
  const double energy = in.f64();
  if (!(energy >= 0.0 && energy <= config_.energy_capacity)) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "duty-cycle jammer energy out of range");
  }
  core_ = std::move(core);
  energy_ = energy;
}

}  // namespace ctj::jammer
