#include "jammer/stealth.hpp"

#include "common/check.hpp"

namespace ctj::jammer {
namespace {

double frame_anomaly_probability(channel::JammingSignalType type,
                                 const StealthConfig& config) {
  switch (type) {
    case channel::JammingSignalType::kZigbee:
      // Valid ZigBee frames parse and are logged as foreign traffic.
      return config.frame_log_probability;
    case channel::JammingSignalType::kEmuBee:
      // Valid preamble, broken format: the receiver stalls in "meaningless
      // decoding" and produces no attributable log entry.
      return 0.0;
    case channel::JammingSignalType::kWifi:
      // Never passes the ZigBee preamble correlation at all.
      return 0.0;
  }
  CTJ_CHECK_MSG(false, "unreachable");
  return 0.0;
}

}  // namespace

DetectionReport analyze_detectability(channel::JammingSignalType type,
                                      bool jam_effective,
                                      const StealthConfig& config) {
  DetectionReport report;
  report.p_energy = config.idle_overlap_probability;
  report.p_frame = jam_effective ? frame_anomaly_probability(type, config) : 0.0;
  report.p_error_rate = jam_effective ? 1.0 : 0.0;
  report.p_attributable =
      1.0 - (1.0 - report.p_energy) * (1.0 - report.p_frame);
  return report;
}

DetectionReport simulate_detectability(channel::JammingSignalType type,
                                       std::size_t slots, Rng& rng,
                                       const StealthConfig& config) {
  CTJ_CHECK(slots > 0);
  const DetectionReport analytic = analyze_detectability(type, true, config);
  std::size_t energy_hits = 0, frame_hits = 0, error_hits = 0, attributed = 0;
  for (std::size_t s = 0; s < slots; ++s) {
    const bool energy = rng.bernoulli(analytic.p_energy);
    const bool frame = rng.bernoulli(analytic.p_frame);
    const bool error = rng.bernoulli(analytic.p_error_rate);
    energy_hits += energy;
    frame_hits += frame;
    error_hits += error;
    attributed += (energy || frame) ? 1 : 0;
  }
  const auto n = static_cast<double>(slots);
  DetectionReport report;
  report.p_energy = energy_hits / n;
  report.p_frame = frame_hits / n;
  report.p_error_rate = error_hits / n;
  report.p_attributable = attributed / n;
  return report;
}

}  // namespace ctj::jammer
