#include "jammer/adaptive_jammer.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace ctj::jammer {

AdaptiveJammerConfig AdaptiveJammerConfig::defaults() {
  AdaptiveJammerConfig c;
  for (int v = 11; v <= 20; ++v) c.power_levels.push_back(v);
  return c;
}

namespace {

SweepJammerConfig sweep_config_of(const AdaptiveJammerConfig& config) {
  SweepJammerConfig sweep;
  sweep.num_channels = config.num_channels;
  sweep.channels_per_sweep = config.channels_per_sweep;
  sweep.power_levels = config.power_levels;
  sweep.mode = config.mode;
  return sweep;
}

}  // namespace

AdaptiveJammer::AdaptiveJammer(AdaptiveJammerConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      sweeper_(sweep_config_of(config_), seed ^ 0xADA9ULL),
      visits_(static_cast<std::size_t>(
                  sweep_config_of(config_).sweep_cycle()),
              1.0) {
  CTJ_CHECK(!config_.power_levels.empty());
  CTJ_CHECK(config_.exploit_probability >= 0.0 &&
            config_.exploit_probability <= 1.0);
  CTJ_CHECK(config_.decay > 0.0 && config_.decay <= 1.0);
}

void AdaptiveJammer::reset() {
  sweeper_.reset();
  std::fill(visits_.begin(), visits_.end(), 1.0);
}

double AdaptiveJammer::pick_power() {
  if (config_.mode == JammerPowerMode::kMaxPower) {
    return *std::max_element(config_.power_levels.begin(),
                             config_.power_levels.end());
  }
  return rng_.choice(config_.power_levels);
}

int AdaptiveJammer::most_visited_group() const {
  return static_cast<int>(argmax(visits_));
}

double AdaptiveJammer::top_group_weight() const {
  double total = 0.0;
  for (double v : visits_) total += v;
  return visits_[static_cast<std::size_t>(most_visited_group())] / total;
}

JammerSlotReport AdaptiveJammer::step(int victim_channel) {
  CTJ_CHECK(victim_channel >= 0 && victim_channel < config_.num_channels);

  JammerSlotReport report;
  if (rng_.bernoulli(config_.exploit_probability)) {
    // Exploit: camp on the historically hottest group.
    const int group = most_visited_group();
    report.jammed_group_start = group * config_.channels_per_sweep;
    if (group == group_of(victim_channel)) {
      report.hit = true;
      report.emitting = true;
      report.power = pick_power();
    }
  } else {
    // Explore with the plain sweeper.
    report = sweeper_.step(victim_channel);
  }

  // Learn: the jammer eavesdrops the victim's traffic each slot (the paper's
  // attacker monitors the channel / ACKs), so the histogram always updates.
  for (double& v : visits_) v *= config_.decay;
  visits_[static_cast<std::size_t>(group_of(victim_channel))] += 1.0;
  return report;
}

std::unique_ptr<Jammer> AdaptiveJammer::clone() const {
  return std::make_unique<AdaptiveJammer>(*this);
}

void AdaptiveJammer::save_state(io::ByteWriter& out) const {
  out.str(rng_.serialize_state());
  sweeper_.save_state(out);
  out.f64_vec(visits_);
}

void AdaptiveJammer::load_state(io::ByteReader& in) {
  const std::string rng_state = in.str();
  SweepJammer sweeper = sweeper_;
  sweeper.load_state(in);
  std::vector<double> visits = in.f64_vec();
  if (visits.size() != visits_.size()) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "adaptive jammer histogram has " +
                          std::to_string(visits.size()) + " groups, expected " +
                          std::to_string(visits_.size()));
  }
  Rng rng = rng_;
  try {
    rng.restore_state(rng_state);
  } catch (const CheckFailure& e) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      std::string("adaptive jammer rng state: ") + e.what());
  }
  rng_ = rng;
  sweeper_ = std::move(sweeper);
  visits_ = std::move(visits);
}

}  // namespace ctj::jammer
