#include "jammer/registry.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "jammer/adaptive_jammer.hpp"
#include "jammer/colluding_jammer.hpp"
#include "jammer/duty_cycle_jammer.hpp"
#include "jammer/reactive_jammer.hpp"
#include "jammer/sweep_jammer.hpp"

namespace ctj::jammer {

namespace {

constexpr std::uint8_t kSpecVersion = 1;

SweepJammerConfig sweep_config_of(const JammerSpec& spec) {
  SweepJammerConfig c;
  c.num_channels = spec.num_channels;
  c.channels_per_sweep = spec.channels_per_sweep;
  c.power_levels = spec.power_levels;
  c.mode = spec.mode;
  return c;
}

std::map<std::string, JammerFactory>& registry() {
  // The built-ins live in a function-local static so the registry is ready
  // before any static initializer in client code can call make_jammer().
  static std::map<std::string, JammerFactory> jammers = [] {
    std::map<std::string, JammerFactory> m;
    m["sweep"] = [](const JammerSpec& spec, std::uint64_t seed) {
      // Must construct exactly SweepJammer(config, seed): the bit-identity
      // guarantee of the refactor rests on this.
      return std::unique_ptr<Jammer>(
          new SweepJammer(sweep_config_of(spec), seed));
    };
    m["adaptive"] = [](const JammerSpec& spec, std::uint64_t seed) {
      AdaptiveJammerConfig c;
      c.num_channels = spec.num_channels;
      c.channels_per_sweep = spec.channels_per_sweep;
      c.power_levels = spec.power_levels;
      c.mode = spec.mode;
      c.exploit_probability = spec.exploit_probability;
      c.decay = spec.decay;
      return std::unique_ptr<Jammer>(new AdaptiveJammer(std::move(c), seed));
    };
    m["reactive"] = [](const JammerSpec& spec, std::uint64_t seed) {
      ReactiveJammerConfig c;
      c.num_channels = spec.num_channels;
      c.channels_per_sweep = spec.channels_per_sweep;
      c.power_levels = spec.power_levels;
      c.mode = spec.mode;
      c.dwell_slots = spec.dwell_slots;
      return std::unique_ptr<Jammer>(new ReactiveJammer(std::move(c), seed));
    };
    m["duty_cycle"] = [](const JammerSpec& spec, std::uint64_t seed) {
      DutyCycleJammerConfig c;
      c.sweep = sweep_config_of(spec);
      c.energy_capacity = spec.energy_capacity;
      c.emit_cost = spec.emit_cost;
      c.recharge_per_slot = spec.recharge_per_slot;
      return std::unique_ptr<Jammer>(new DutyCycleJammer(std::move(c), seed));
    };
    m["colluding"] = [](const JammerSpec& spec, std::uint64_t seed) {
      ColludingJammerConfig c;
      c.sweep = sweep_config_of(spec);
      c.num_colluders = spec.num_colluders;
      return std::unique_ptr<Jammer>(new ColludingJammer(std::move(c), seed));
    };
    return m;
  }();
  return jammers;
}

}  // namespace

JammerSpec JammerSpec::defaults(const std::string& archetype) {
  JammerSpec spec;
  spec.archetype = archetype;
  for (int v = 11; v <= 20; ++v) spec.power_levels.push_back(v);
  return spec;
}

JammerSpec JammerSpec::kernel() { return defaults("kernel"); }

int JammerSpec::sweep_cycle() const {
  CTJ_CHECK(num_channels > 0 && channels_per_sweep > 0);
  return (num_channels + channels_per_sweep - 1) / channels_per_sweep;
}

void JammerSpec::encode(io::ByteWriter& out) const {
  out.u8(kSpecVersion);
  out.str(archetype);
  out.i32(num_channels);
  out.i32(channels_per_sweep);
  out.f64_vec(power_levels);
  out.u8(mode == JammerPowerMode::kMaxPower ? 0 : 1);
  out.f64(exploit_probability);
  out.f64(decay);
  out.i32(dwell_slots);
  out.f64(energy_capacity);
  out.f64(emit_cost);
  out.f64(recharge_per_slot);
  out.i32(num_colluders);
  // Learned-jammer tunables ride behind the fixed v1 layout, gated on the
  // archetype key (decoded first), so specs for the original archetypes
  // keep their exact byte image.
  if (archetype == "learned") {
    out.i32(learn_history);
    out.i32(learn_hidden);
    out.f64(learn_rate);
    out.i32(learn_epsilon_decay);
    out.f64(learn_emit_cost);
  }
}

JammerSpec JammerSpec::decode(io::ByteReader& in) {
  const std::uint8_t version = in.u8();
  if (version != kSpecVersion) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "jammer spec version " + std::to_string(version) +
                          " not understood");
  }
  JammerSpec spec;
  spec.archetype = in.str();
  spec.num_channels = in.i32();
  spec.channels_per_sweep = in.i32();
  spec.power_levels = in.f64_vec();
  const std::uint8_t mode = in.u8();
  if (mode > 1) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "jammer spec power mode " + std::to_string(mode) +
                          " not understood");
  }
  spec.mode = mode == 0 ? JammerPowerMode::kMaxPower
                        : JammerPowerMode::kRandomPower;
  spec.exploit_probability = in.f64();
  spec.decay = in.f64();
  spec.dwell_slots = in.i32();
  spec.energy_capacity = in.f64();
  spec.emit_cost = in.f64();
  spec.recharge_per_slot = in.f64();
  spec.num_colluders = in.i32();
  if (spec.archetype == "learned") {
    spec.learn_history = in.i32();
    spec.learn_hidden = in.i32();
    spec.learn_rate = in.f64();
    spec.learn_epsilon_decay = in.i32();
    spec.learn_emit_cost = in.f64();
    if (spec.learn_history <= 0 || spec.learn_hidden <= 0 ||
        spec.learn_rate <= 0.0 || spec.learn_epsilon_decay < 0 ||
        spec.learn_emit_cost < 0.0) {
      throw io::IoError(io::ErrorKind::kBadPayload,
                        "learned jammer tunables invalid");
    }
  }
  if (spec.num_channels <= 0 || spec.channels_per_sweep <= 0 ||
      spec.channels_per_sweep > spec.num_channels) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "jammer spec channel geometry invalid (K=" +
                          std::to_string(spec.num_channels) + ", m=" +
                          std::to_string(spec.channels_per_sweep) + ")");
  }
  return spec;
}

std::unique_ptr<Jammer> make_jammer(const JammerSpec& spec,
                                    std::uint64_t seed) {
  const auto& jammers = registry();
  const auto it = jammers.find(spec.archetype);
  if (it == jammers.end()) {
    std::ostringstream os;
    os << "unknown jammer archetype \"" << spec.archetype << '"';
    if (spec.is_kernel()) {
      os << " (the closed-form kernel sentinel has no behavioural jammer)";
    }
    os << "; registered:";
    for (const auto& [key, factory] : jammers) os << ' ' << key;
    throw RegistryError(os.str());
  }
  return it->second(spec, seed);
}

bool is_registered(const std::string& archetype) {
  return registry().count(archetype) > 0;
}

std::vector<std::string> registered_archetypes() {
  std::vector<std::string> keys;
  for (const auto& [key, factory] : registry()) keys.push_back(key);
  return keys;  // std::map iterates sorted
}

void register_jammer(const std::string& archetype, JammerFactory factory) {
  if (archetype == "kernel") {
    throw RegistryError(
        "\"kernel\" is the closed-form sentinel, not an archetype");
  }
  if (archetype.empty()) {
    throw RegistryError("archetype key must be non-empty");
  }
  registry()[archetype] = std::move(factory);
}

}  // namespace ctj::jammer
