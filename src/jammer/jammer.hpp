// The plug-in adversary interface.
//
// Every jammer archetype — the paper's sweeping cross-technology jammer, the
// pattern-tracking adaptive jammer, and the zoo of related-work adversaries
// (reactive ACK-triggered, energy-budgeted duty-cycle, colluding
// multi-jammer) — implements this interface, so the competition environment,
// the field experiment and the conformance/bench harnesses can drive any of
// them without knowing the concrete type. Instances are created by archetype
// name through the string-keyed registry (jammer/registry.hpp).
//
// Contract:
//  · step() advances exactly one victim slot and reports what the jammer
//    did; `hit` is true iff the jammer transmitted on the victim's m-channel
//    group that slot (the cross-technology emission blankets the group).
//  · All randomness comes from the seed passed at construction, so two
//    same-seed instances produce identical report streams.
//  · save_state()/load_state() round-trip the FULL dynamic state including
//    every RNG stream, so a mid-run suspend/resume continues bit-identically
//    (the CTJS checkpoint guarantee; see core/checkpoint.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "io/bytes.hpp"

namespace ctj::jammer {

/// What the jammer did in one slot.
struct JammerSlotReport {
  /// True if the jammer transmitted on the victim's channel this slot.
  bool hit = false;
  /// Power level used when hit (one of power_levels).
  double power = 0.0;
  /// First channel of the group the jammer occupied this slot.
  int jammed_group_start = 0;
  /// True when the jammer radiated at all this slot — hits, but also
  /// off-victim emissions (a reactive jammer dwelling on a vacated group).
  /// Silent sensing/sleep slots leave it false.
  bool emitting = false;
};

class Jammer {
 public:
  virtual ~Jammer() = default;

  /// Advance one slot. `victim_channel` is the channel the victim transmits
  /// on this slot (0-based); the jammer only learns it by sensing the group
  /// that covers it or by already tracking the victim.
  virtual JammerSlotReport step(int victim_channel) = 0;

  /// Restart from the initial state (the RNG stream keeps running).
  virtual void reset() = 0;

  /// Registry key of this archetype ("sweep", "adaptive", ...).
  virtual std::string archetype() const = 0;

  virtual int num_channels() const = 0;
  virtual int channels_per_sweep() const = 0;

  /// True while the jammer is tracking (camping on) a found victim.
  virtual bool locked() const = 0;

  /// Deep copy preserving all dynamic state including RNG streams.
  virtual std::unique_ptr<Jammer> clone() const = 0;

  /// Checkpoint-format serialization of the full dynamic state (RNG streams
  /// included). load_state throws io::IoError kBadPayload on malformed
  /// input, leaving the jammer unchanged.
  virtual void save_state(io::ByteWriter& out) const = 0;
  virtual void load_state(io::ByteReader& in) = 0;
};

}  // namespace ctj::jammer
