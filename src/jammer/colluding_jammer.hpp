// Colluding multi-jammer (registry key "colluding").
//
// A coordinated team of `num_colluders` sweep jammers that has partitioned
// the ⌈K/m⌉ channel groups into disjoint stripes (colluder j owns the
// groups g with g mod k == j) and shares sensing reports over a side
// channel. Each slot every colluder advances its own sweep/lock state over
// its stripe, so a stationary victim is found roughly k times faster than
// by a lone sweeper; once any colluder locks on, the team lets it prosecute
// the victim while the others keep sweeping their stripes to catch the next
// escape quickly. The lock-loss bookkeeping mirrors the single sweep jammer
// per stripe, vacated-group exclusion included (with the same single-group
// clamp). With k = 1 the team degenerates to exactly the sweep strategy,
// which is what the kernel-conformance smoke exercises.
#pragma once

#include <vector>

#include "common/modes.hpp"
#include "common/rng.hpp"
#include "jammer/jammer.hpp"
#include "jammer/sweep_jammer.hpp"

namespace ctj::jammer {

struct ColludingJammerConfig {
  SweepJammerConfig sweep;  // per-colluder sweep strategy + K/m/powers
  /// Team size; clamped to [1, ⌈K/m⌉] (more colluders than groups would
  /// leave some with empty stripes).
  int num_colluders = 2;

  static ColludingJammerConfig defaults();
};

class ColludingJammer : public Jammer {
 public:
  explicit ColludingJammer(ColludingJammerConfig config,
                           std::uint64_t seed = 37);

  JammerSlotReport step(int victim_channel) override;
  void reset() override;

  std::string archetype() const override { return "colluding"; }
  int num_channels() const override { return config_.sweep.num_channels; }
  int channels_per_sweep() const override {
    return config_.sweep.channels_per_sweep;
  }
  bool locked() const override;
  /// Effective team size after clamping.
  int num_colluders() const { return static_cast<int>(colluders_.size()); }
  const ColludingJammerConfig& config() const { return config_; }

  std::unique_ptr<Jammer> clone() const override;
  void save_state(io::ByteWriter& out) const override;
  void load_state(io::ByteReader& in) override;

 private:
  /// Per-colluder sweep/lock state over its stripe of groups.
  struct Colluder {
    int locked_channel = -1;
    std::vector<int> pending;  // stripe groups not yet visited this cycle
  };

  int group_of(int channel) const {
    return channel / config_.sweep.channels_per_sweep;
  }
  double pick_power();
  void refill(Colluder& colluder, int which, int excluded_group);
  /// One colluder's slot, mirroring SweepJammer::step over its stripe.
  JammerSlotReport step_colluder(Colluder& colluder, int which,
                                 int victim_channel);

  ColludingJammerConfig config_;
  Rng rng_;  // shared team RNG, drawn in fixed colluder order
  std::vector<Colluder> colluders_;
};

}  // namespace ctj::jammer
