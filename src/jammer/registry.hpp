// String-keyed jammer registry: the one place that maps adversary archetype
// names to behavioural jammer implementations.
//
// A JammerSpec is the flat, serializable description of an adversary — the
// archetype key plus the union of every archetype's tunables (fields an
// archetype does not use are carried but ignored, so one spec type can
// travel through configs, CTJS checkpoints and the bench matrix without a
// per-archetype variant). make_jammer() turns a spec into a live Jammer.
//
// Built-in archetypes:
//   "sweep"      — the paper's sweeping jammer (SweepJammer)
//   "adaptive"   — pattern-tracking histogram camper (AdaptiveJammer)
//   "reactive"   — ACK-triggered listen/dwell attacker (ReactiveJammer)
//   "duty_cycle" — energy-budgeted sweeper (DutyCycleJammer)
//   "colluding"  — coordinated disjoint-stripe team (ColludingJammer)
//
// The sentinel archetype "kernel" is NOT in the registry: it tells
// CompetitionEnvironment to sample the closed-form MDP transition kernel
// directly (the pre-zoo default) instead of driving a behavioural jammer.
// make_jammer("kernel") therefore throws like any unknown key.
//
// New archetypes register themselves with register_jammer() (e.g. from a
// static initializer in their .cpp); the registry is process-global and not
// thread-safe for concurrent registration, which is expected to happen at
// startup only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/modes.hpp"
#include "io/bytes.hpp"
#include "jammer/jammer.hpp"

namespace ctj::jammer {

/// Flat, serializable adversary description (see file comment).
struct JammerSpec {
  std::string archetype = "sweep";

  // Shared by every archetype.
  int num_channels = 16;       // K
  int channels_per_sweep = 4;  // m
  std::vector<double> power_levels;
  JammerPowerMode mode = JammerPowerMode::kMaxPower;

  // "adaptive"
  double exploit_probability = 0.6;
  double decay = 0.995;

  // "reactive"
  int dwell_slots = 4;

  // "duty_cycle"
  double energy_capacity = 12.0;
  double emit_cost = 3.0;
  double recharge_per_slot = 1.0;

  // "colluding"
  int num_colluders = 2;

  // "learned" (the self-play DQN jammer, src/arena — registered by
  // arena::ensure_registered(), not a built-in). Serialized only for that
  // archetype, so every pre-arena spec byte layout is unchanged.
  int learn_history = 8;            // observation window slots
  int learn_hidden = 24;            // width of both hidden layers
  double learn_rate = 1e-3;         // Adam learning rate
  int learn_epsilon_decay = 2000;   // ε anneal horizon (slots)
  double learn_emit_cost = 0.05;    // reward penalty per slot at max power

  /// Paper-default tunables (power levels 11..20) for the given archetype.
  static JammerSpec defaults(const std::string& archetype = "sweep");
  /// The closed-form-kernel sentinel (no behavioural jammer).
  static JammerSpec kernel();

  bool is_kernel() const { return archetype == "kernel"; }
  int sweep_cycle() const;  // ⌈K/m⌉

  bool operator==(const JammerSpec&) const = default;

  /// CTJS payload codec (versioned). decode throws io::IoError kBadPayload
  /// on malformed input.
  void encode(io::ByteWriter& out) const;
  static JammerSpec decode(io::ByteReader& in);
};

/// Thrown for unknown archetype keys (including the "kernel" sentinel,
/// which has no behavioural implementation to construct).
class RegistryError : public std::runtime_error {
 public:
  explicit RegistryError(const std::string& what) : std::runtime_error(what) {}
};

using JammerFactory =
    std::function<std::unique_ptr<Jammer>(const JammerSpec&, std::uint64_t)>;

/// Construct a live jammer for the spec. Throws RegistryError (listing the
/// registered keys) when the archetype is unknown or the "kernel" sentinel.
std::unique_ptr<Jammer> make_jammer(const JammerSpec& spec,
                                    std::uint64_t seed);

bool is_registered(const std::string& archetype);
/// Registered archetype keys, sorted.
std::vector<std::string> registered_archetypes();
/// Add (or replace) an archetype. "kernel" is reserved and rejected.
void register_jammer(const std::string& archetype, JammerFactory factory);

}  // namespace ctj::jammer
