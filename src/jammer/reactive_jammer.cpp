#include "jammer/reactive_jammer.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"

namespace ctj::jammer {

ReactiveJammerConfig ReactiveJammerConfig::defaults() {
  ReactiveJammerConfig c;
  for (int v = 11; v <= 20; ++v) c.power_levels.push_back(v);
  return c;
}

int ReactiveJammerConfig::sweep_cycle() const {
  CTJ_CHECK(num_channels > 0 && channels_per_sweep > 0);
  return (num_channels + channels_per_sweep - 1) / channels_per_sweep;
}

ReactiveJammer::ReactiveJammer(ReactiveJammerConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  CTJ_CHECK(config_.num_channels > 0);
  CTJ_CHECK(config_.channels_per_sweep > 0 &&
            config_.channels_per_sweep <= config_.num_channels);
  CTJ_CHECK_MSG(!config_.power_levels.empty(), "jammer needs power levels");
  CTJ_CHECK_MSG(config_.dwell_slots >= 1, "dwell must last at least one slot");
}

void ReactiveJammer::reset() {
  listen_cursor_ = 0;
  target_group_ = -1;
  dwell_left_ = 0;
}

double ReactiveJammer::pick_power() {
  if (config_.mode == JammerPowerMode::kMaxPower) {
    return *std::max_element(config_.power_levels.begin(),
                             config_.power_levels.end());
  }
  return rng_.choice(config_.power_levels);
}

JammerSlotReport ReactiveJammer::step(int victim_channel) {
  CTJ_CHECK_MSG(victim_channel >= 0 && victim_channel < config_.num_channels,
                "victim channel " << victim_channel << " out of range");
  JammerSlotReport report;

  // Dwelling: blanket the triggered group. ACK silence is ambiguous (escape
  // or backoff), so the blanket only lifts after dwell_slots consecutive
  // victim-free slots; every overheard transmission refreshes it.
  if (dwell_left_ > 0) {
    report.jammed_group_start = target_group_ * config_.channels_per_sweep;
    report.emitting = true;
    if (target_group_ == group_of(victim_channel)) {
      report.hit = true;
      report.power = pick_power();
      dwell_left_ = config_.dwell_slots;
    } else {
      --dwell_left_;
      if (dwell_left_ == 0) target_group_ = -1;
    }
    return report;
  }

  // Listening: receiver only, cycling deterministically over the groups.
  const int listened = listen_cursor_;
  listen_cursor_ = (listen_cursor_ + 1) % config_.sweep_cycle();
  report.jammed_group_start = listened * config_.channels_per_sweep;
  if (listened == group_of(victim_channel)) {
    // Overheard the victim mid-slot: jam the rest of the slot and dwell.
    target_group_ = listened;
    dwell_left_ = config_.dwell_slots;
    report.hit = true;
    report.emitting = true;
    report.power = pick_power();
  }
  return report;
}

std::unique_ptr<Jammer> ReactiveJammer::clone() const {
  return std::make_unique<ReactiveJammer>(*this);
}

void ReactiveJammer::save_state(io::ByteWriter& out) const {
  out.str(rng_.serialize_state());
  out.i32(listen_cursor_);
  out.i32(target_group_);
  out.i32(dwell_left_);
}

void ReactiveJammer::load_state(io::ByteReader& in) {
  const std::string rng_state = in.str();
  const int listen_cursor = in.i32();
  const int target_group = in.i32();
  const int dwell_left = in.i32();
  const int groups = config_.sweep_cycle();
  if (listen_cursor < 0 || listen_cursor >= groups) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "reactive jammer listen cursor out of range");
  }
  if (target_group < -1 || target_group >= groups ||
      (dwell_left > 0) != (target_group >= 0)) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "reactive jammer dwell state inconsistent");
  }
  if (dwell_left < 0 || dwell_left > config_.dwell_slots) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "reactive jammer dwell counter out of range");
  }
  Rng rng = rng_;
  try {
    rng.restore_state(rng_state);
  } catch (const CheckFailure& e) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      std::string("reactive jammer rng state: ") + e.what());
  }
  rng_ = rng;
  listen_cursor_ = listen_cursor;
  target_group_ = target_group;
  dwell_left_ = dwell_left;
}

}  // namespace ctj::jammer
