#include "jammer/colluding_jammer.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"

namespace ctj::jammer {

ColludingJammerConfig ColludingJammerConfig::defaults() {
  ColludingJammerConfig c;
  c.sweep = SweepJammerConfig::defaults();
  return c;
}

namespace {

/// Number of groups in colluder `which`'s stripe: |{g < groups : g mod k == which}|.
int stripe_size(int groups, int k, int which) {
  return (groups - which + k - 1) / k;
}

}  // namespace

ColludingJammer::ColludingJammer(ColludingJammerConfig config,
                                 std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  CTJ_CHECK(config_.sweep.num_channels > 0);
  CTJ_CHECK(config_.sweep.channels_per_sweep > 0 &&
            config_.sweep.channels_per_sweep <= config_.sweep.num_channels);
  CTJ_CHECK_MSG(!config_.sweep.power_levels.empty(),
                "jammer needs power levels");
  CTJ_CHECK_MSG(config_.num_colluders >= 1, "team needs at least one jammer");
  const int groups = config_.sweep.sweep_cycle();
  const int k = std::min(config_.num_colluders, groups);
  colluders_.resize(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) refill(colluders_[static_cast<std::size_t>(j)], j, -1);
}

void ColludingJammer::reset() {
  for (std::size_t j = 0; j < colluders_.size(); ++j) {
    colluders_[j].locked_channel = -1;
    colluders_[j].pending.clear();
    refill(colluders_[j], static_cast<int>(j), -1);
  }
}

bool ColludingJammer::locked() const {
  for (const Colluder& c : colluders_) {
    if (c.locked_channel >= 0) return true;
  }
  return false;
}

double ColludingJammer::pick_power() {
  if (config_.sweep.mode == JammerPowerMode::kMaxPower) {
    return *std::max_element(config_.sweep.power_levels.begin(),
                             config_.sweep.power_levels.end());
  }
  return rng_.choice(config_.sweep.power_levels);
}

void ColludingJammer::refill(Colluder& colluder, int which,
                             int excluded_group) {
  const int groups = config_.sweep.sweep_cycle();
  const int k = static_cast<int>(colluders_.empty() ? 1 : colluders_.size());
  colluder.pending.clear();
  for (int g = which; g < groups; g += k) {
    if (g != excluded_group) colluder.pending.push_back(g);
  }
  rng_.shuffle(colluder.pending);
}

JammerSlotReport ColludingJammer::step_colluder(Colluder& colluder, int which,
                                                int victim_channel) {
  const int m = config_.sweep.channels_per_sweep;
  JammerSlotReport report;

  // Locked: same verify-or-discover-loss slot structure as SweepJammer,
  // with the vacated-group exclusion applied within this colluder's stripe
  // (and the same clamp when the stripe has a single group).
  if (colluder.locked_channel >= 0) {
    const int vacated_group = group_of(colluder.locked_channel);
    if (vacated_group == group_of(victim_channel)) {
      colluder.locked_channel = victim_channel;
      report.hit = true;
      report.emitting = true;
      report.power = pick_power();
      report.jammed_group_start = vacated_group * m;
      return report;
    }
    colluder.locked_channel = -1;
    const int groups = config_.sweep.sweep_cycle();
    const int k = static_cast<int>(colluders_.size());
    const int exclude =
        stripe_size(groups, k, which) == 1 ? -1 : vacated_group;
    refill(colluder, which, exclude);
    report.jammed_group_start = vacated_group * m;
    return report;
  }

  // Sweeping this colluder's stripe.
  if (colluder.pending.empty()) refill(colluder, which, -1);
  const int group = colluder.pending.back();
  colluder.pending.pop_back();
  report.jammed_group_start = group * m;
  if (group == group_of(victim_channel)) {
    colluder.locked_channel = victim_channel;
    report.hit = true;
    report.emitting = true;
    report.power = pick_power();
  }
  return report;
}

JammerSlotReport ColludingJammer::step(int victim_channel) {
  CTJ_CHECK_MSG(victim_channel >= 0 &&
                    victim_channel < config_.sweep.num_channels,
                "victim channel " << victim_channel << " out of range");
  // Every colluder advances each slot, in fixed order so the shared RNG
  // stream is deterministic. The victim sits in exactly one group and the
  // stripes are disjoint, so at most one colluder can hit.
  JammerSlotReport primary;
  JammerSlotReport hit_report;
  bool any_hit = false;
  for (std::size_t j = 0; j < colluders_.size(); ++j) {
    const JammerSlotReport r =
        step_colluder(colluders_[j], static_cast<int>(j), victim_channel);
    if (j == 0) primary = r;
    if (r.hit) {
      hit_report = r;
      any_hit = true;
    }
  }
  return any_hit ? hit_report : primary;
}

std::unique_ptr<Jammer> ColludingJammer::clone() const {
  return std::make_unique<ColludingJammer>(*this);
}

void ColludingJammer::save_state(io::ByteWriter& out) const {
  out.str(rng_.serialize_state());
  out.u64(colluders_.size());
  for (const Colluder& c : colluders_) {
    out.i32(c.locked_channel);
    out.u64(c.pending.size());
    for (int g : c.pending) out.i32(g);
  }
}

void ColludingJammer::load_state(io::ByteReader& in) {
  const std::string rng_state = in.str();
  const std::uint64_t count = in.u64();
  if (count != colluders_.size()) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      "colluding jammer team size " + std::to_string(count) +
                          " does not match configured " +
                          std::to_string(colluders_.size()));
  }
  const int groups = config_.sweep.sweep_cycle();
  std::vector<Colluder> colluders;
  colluders.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t j = 0; j < count; ++j) {
    Colluder c;
    c.locked_channel = in.i32();
    if (c.locked_channel < -1 ||
        c.locked_channel >= config_.sweep.num_channels) {
      throw io::IoError(io::ErrorKind::kBadPayload,
                        "colluding jammer locked channel out of range");
    }
    const std::uint64_t pending = in.u64();
    if (pending > static_cast<std::uint64_t>(groups)) {
      throw io::IoError(io::ErrorKind::kBadPayload,
                        "colluding jammer pending list longer than the cycle");
    }
    for (std::uint64_t i = 0; i < pending; ++i) {
      const int g = in.i32();
      if (g < 0 || g >= groups) {
        throw io::IoError(io::ErrorKind::kBadPayload,
                          "colluding jammer pending group out of range");
      }
      c.pending.push_back(g);
    }
    colluders.push_back(std::move(c));
  }
  Rng rng = rng_;
  try {
    rng.restore_state(rng_state);
  } catch (const CheckFailure& e) {
    throw io::IoError(io::ErrorKind::kBadPayload,
                      std::string("colluding jammer rng state: ") + e.what());
  }
  rng_ = rng;
  colluders_ = std::move(colluders);
}

}  // namespace ctj::jammer
