#include "channel/pathloss.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "common/units.hpp"

namespace ctj::channel {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

LogDistancePathLoss::LogDistancePathLoss(Config config)
    : config_(config),
      reference_loss_db_(free_space_db(config.reference_m, config.carrier_hz)) {
  CTJ_CHECK(config.carrier_hz > 0.0);
  CTJ_CHECK(config.exponent > 0.0);
  CTJ_CHECK(config.reference_m > 0.0);
  CTJ_CHECK(config.shadowing_sigma_db >= 0.0);
}

double LogDistancePathLoss::free_space_db(double distance_m, double freq_hz) {
  CTJ_CHECK(distance_m > 0.0 && freq_hz > 0.0);
  const double wavelength = kSpeedOfLight / freq_hz;
  return 20.0 * std::log10(4.0 * std::numbers::pi * distance_m / wavelength);
}

double LogDistancePathLoss::mean_loss_db(double distance_m) const {
  const double d = std::max(distance_m, config_.reference_m);
  return reference_loss_db_ +
         10.0 * config_.exponent * std::log10(d / config_.reference_m);
}

double LogDistancePathLoss::sample_loss_db(double distance_m, Rng& rng) const {
  double loss = mean_loss_db(distance_m);
  if (config_.shadowing_sigma_db > 0.0) {
    loss += rng.normal(0.0, config_.shadowing_sigma_db);
  }
  return loss;
}

}  // namespace ctj::channel
