#include "channel/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ctj::channel {

double zigbee_center_hz(int index) {
  CTJ_CHECK_MSG(index >= 0 && index < kZigbeeChannelCount,
                "zigbee channel index " << index << " out of [0,16)");
  return (2405.0 + 5.0 * index) * 1e6;
}

int zigbee_channel_number(int index) {
  CTJ_CHECK(index >= 0 && index < kZigbeeChannelCount);
  return 11 + index;
}

double wifi_center_hz(int wifi_channel) {
  CTJ_CHECK_MSG(wifi_channel >= 1 && wifi_channel <= 11,
                "wifi channel " << wifi_channel << " out of [1,11]");
  return (2412.0 + 5.0 * (wifi_channel - 1)) * 1e6;
}

double overlap_fraction(int zigbee_index, int wifi_channel) {
  const double zc = zigbee_center_hz(zigbee_index);
  const double wc = wifi_center_hz(wifi_channel);
  const double z_lo = zc - kZigbeeBandwidthHz / 2;
  const double z_hi = zc + kZigbeeBandwidthHz / 2;
  const double w_lo = wc - kWifiBandwidthHz / 2;
  const double w_hi = wc + kWifiBandwidthHz / 2;
  const double overlap = std::max(0.0, std::min(z_hi, w_hi) - std::max(z_lo, w_lo));
  return overlap / kZigbeeBandwidthHz;
}

std::vector<int> zigbee_channels_covered(int wifi_channel) {
  std::vector<int> covered;
  for (int z = 0; z < kZigbeeChannelCount; ++z) {
    if (overlap_fraction(z, wifi_channel) >= 1.0) covered.push_back(z);
  }
  return covered;
}

int wifi_channel_covering(int zigbee_index) {
  CTJ_CHECK(zigbee_index >= 0 && zigbee_index < kZigbeeChannelCount);
  for (int w = 1; w <= 11; ++w) {
    if (overlap_fraction(zigbee_index, w) >= 1.0) return w;
  }
  return -1;
}

}  // namespace ctj::channel
