// Propagation models for the field-experiment simulator.
#pragma once

#include "common/rng.hpp"

namespace ctj::channel {

/// A planar position in meters; the field experiments place nodes in a room.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance in meters.
double distance(const Position& a, const Position& b);

/// Log-distance path loss with optional log-normal shadowing:
/// PL(d) = PL(d0) + 10·n·log10(d/d0) + X_sigma, with PL(d0) the free-space
/// loss at the reference distance for the given carrier frequency.
class LogDistancePathLoss {
 public:
  struct Config {
    double carrier_hz = 2.44e9;
    double exponent = 2.7;        // indoor office-like environment
    double reference_m = 1.0;
    double shadowing_sigma_db = 0.0;  // 0 disables shadowing
  };

  LogDistancePathLoss() : LogDistancePathLoss(Config{}) {}
  explicit LogDistancePathLoss(Config config);

  /// Deterministic mean path loss in dB at distance d (meters, d > 0 after
  /// clamping to the reference distance).
  double mean_loss_db(double distance_m) const;

  /// Path loss with a shadowing draw (equals mean when sigma is 0).
  double sample_loss_db(double distance_m, Rng& rng) const;

  /// Free-space path loss in dB at distance d for frequency f.
  static double free_space_db(double distance_m, double freq_hz);

  const Config& config() const { return config_; }

 private:
  Config config_;
  double reference_loss_db_;
};

}  // namespace ctj::channel
