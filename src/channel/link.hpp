// SINR → BER → PER link model for a ZigBee receiver under cross-technology
// interference.
//
// The jamming-signal taxonomy follows Sec. II.B of the paper:
//  * EmuBee — a Wi-Fi-emitted *valid ZigBee chip waveform*. The DSSS
//    despreader correlates with it fully, so it enjoys no processing-gain
//    suppression, and nearly all of its energy is concentrated in the 2 MHz
//    victim band. Transmitted at Wi-Fi power (up to 100 mW).
//  * Plain Wi-Fi — noise-like to the despreader: suppressed by the DSSS
//    processing gain (~9 dB at 2 Mchip/s over 250 kbps) and only ~2/20 of its
//    power falls into the victim's 2 MHz band.
//  * Conventional ZigBee jammer — valid chips, full in-band energy, but
//    limited to ZigBee-class transmit power (1–5 mW).
// This reproduces the paper's observed ranking EmuBee > ZigBee > Wi-Fi.
#pragma once

#include "channel/pathloss.hpp"

namespace ctj::channel {

enum class JammingSignalType { kEmuBee, kWifi, kZigbee };

const char* to_string(JammingSignalType type);

/// DSSS processing gain of the 802.15.4 2.4 GHz PHY: 2 Mchip/s / 250 kbps.
double dsss_processing_gain_db();

/// Per-signal-type suppression applied to the jammer's received power before
/// it enters the SINR denominator: in-band fraction plus (for noise-like
/// signals) the despreader's processing gain.
double jammer_suppression_db(JammingSignalType type);

/// 802.15.4 2.4 GHz O-QPSK BER as a function of *linear* SINR (Zuniga &
/// Krishnamachari's closed form for 16-ary orthogonal signaling over AWGN).
double zigbee_ber(double sinr_linear);

/// Packet error rate for a packet of `bytes` bytes at the given SINR in dB:
/// PER = 1 − (1 − BER)^(8·bytes).
double zigbee_per(double sinr_db, std::size_t bytes);

/// Link-level model combining path loss, the noise floor of a 2 MHz channel,
/// and jammer suppression.
class ZigbeeLink {
 public:
  struct Config {
    LogDistancePathLoss::Config pathloss = {};
    double noise_figure_db = 6.0;  // receiver noise figure
    std::size_t packet_bytes = 64;
  };

  ZigbeeLink() : ZigbeeLink(Config{}) {}
  explicit ZigbeeLink(Config config);

  /// Received power in dBm for a transmitter at `distance_m`.
  double received_power_dbm(double tx_power_dbm, double distance_m) const;

  /// Noise floor of the 2 MHz ZigBee channel including the noise figure.
  double noise_floor_dbm() const;

  /// SINR in dB at the receiver. `jammer_rx_dbm` is the jammer's raw
  /// received power (use -inf / std::nullopt via overload when absent);
  /// suppression for the jammer type is applied internally.
  double sinr_db(double signal_rx_dbm) const;
  double sinr_db(double signal_rx_dbm, double jammer_rx_dbm,
                 JammingSignalType type,
                 double channel_overlap_fraction = 1.0) const;

  /// PER of a data packet at the given SINR.
  double per(double sinr_db_value) const;

  /// Convenience: full path PER for (tx distance, optional jammer distance).
  double per_with_jammer(double tx_power_dbm, double tx_distance_m,
                         double jam_power_dbm, double jam_distance_m,
                         JammingSignalType type,
                         double channel_overlap_fraction = 1.0) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  LogDistancePathLoss pathloss_;
};

}  // namespace ctj::channel
