// The 2.4 GHz ISM band layout shared by Wi-Fi and ZigBee.
//
// ZigBee (802.15.4) channels 11–26: centers 2405 + 5·(ch−11) MHz, 2 MHz wide.
// Wi-Fi channels 1–11: centers 2412 + 5·(ch−1) MHz, 20 MHz wide.
// A Wi-Fi channel therefore covers exactly 4 consecutive ZigBee channels —
// the bandwidth advantage the cross-technology jammer exploits (m = 4 in the
// paper's sweep model).
#pragma once

#include <vector>

namespace ctj::channel {

/// Number of 2.4 GHz ZigBee channels (802.15.4 channels 11..26).
inline constexpr int kZigbeeChannelCount = 16;
inline constexpr double kZigbeeBandwidthHz = 2e6;
inline constexpr double kWifiBandwidthHz = 20e6;

/// Center frequency in Hz of ZigBee channel index 0..15 (802.15.4 ch 11..26).
double zigbee_center_hz(int index);

/// Center frequency in Hz of Wi-Fi channel 1..11.
double wifi_center_hz(int wifi_channel);

/// 802.15.4 channel number (11..26) for an index 0..15.
int zigbee_channel_number(int index);

/// Indices (0..15) of the ZigBee channels whose 2 MHz band lies entirely
/// inside the given Wi-Fi channel's 20 MHz band.
std::vector<int> zigbee_channels_covered(int wifi_channel);

/// Fraction of the ZigBee channel's band overlapped by the Wi-Fi channel,
/// in [0, 1].
double overlap_fraction(int zigbee_index, int wifi_channel);

/// A Wi-Fi channel whose band covers the given ZigBee channel index, or -1.
int wifi_channel_covering(int zigbee_index);

}  // namespace ctj::channel
